GO ?= go

.PHONY: all build test verify bench fmt clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the full pre-merge gate: static analysis plus the whole test
# suite under the race detector.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

# bench runs the telemetry-overhead benchmark (fails if sampling or
# tracing shifts the committed-event rate by >= 5%).
bench:
	$(GO) test -run xxx -bench BenchmarkTelemetry -benchtime 3x .

fmt:
	gofmt -l -w .

clean:
	$(GO) clean ./...
	rm -f run.trace run.json results.csv
