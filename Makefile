GO ?= go

.PHONY: all build test verify bench benchdiff microbench cover fmt clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the full pre-merge gate: static analysis plus the whole test
# suite under the race detector.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

# bench runs the telemetry-overhead benchmark (fails if sampling or
# tracing shifts the committed-event rate by >= 5%), then regenerates
# both benchmark documents: the deterministic virtual-time baseline
# (BENCH_baseline.json, checked in, compared exactly) and the host
# wall-clock/allocation document (BENCH_host.json, machine-dependent,
# never checked in — CI compares it against the PR base with tolerance
# bands via `make benchdiff`).
bench:
	$(GO) test -run xxx -bench BenchmarkTelemetry -benchtime 3x .
	$(GO) run ./cmd/bench -out BENCH_baseline.json -hostout BENCH_host.json

# benchdiff compares a fresh virtual-time baseline against the
# checked-in copy; any difference is a functional/performance
# regression. CI runs this as a blocking gate.
benchdiff:
	$(GO) run ./cmd/bench -out /tmp/BENCH_fresh.json -hostout ""
	$(GO) run ./cmd/benchdiff BENCH_baseline.json /tmp/BENCH_fresh.json

# microbench runs the hot-path microbenchmarks (events/sec, allocs/op)
# for the event queue, rollback storm, and full-engine GVT rounds.
microbench:
	$(GO) test -run xxx -bench . -benchtime 100000x ./internal/eventq
	$(GO) test -run xxx -bench 'RollbackHeavy|GVTRounds' -benchtime 3x ./internal/core

# cover writes a coverage profile over the library packages. CI fails
# if total coverage drops below its recorded floor.
cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	$(GO) tool cover -func=coverage.out | tail -1

fmt:
	gofmt -l -w .

clean:
	$(GO) clean ./...
	rm -f run.trace run.json results.csv BENCH_host.json coverage.out coverage.html
