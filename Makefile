GO ?= go

# serve flags (override on the command line: make serve ADDR=:9090)
ADDR      ?= :8080
WORKERS   ?= 0
QUEUE     ?= 64
CACHESIZE ?= 64

.PHONY: all help build test verify bench benchdiff microbench cover fmt serve smoke obs-smoke durability-smoke cluster-smoke loadgen loadgen-smoke clean

# loadgen flags (override on the command line: make loadgen N=200 RPS=100)
LOADGEN_ADDR ?= http://127.0.0.1:8080
MIX          ?= duplicate
N            ?= 100
RPS          ?= 50

all: build

help:
	@echo "Targets:"
	@echo "  build      compile everything"
	@echo "  test       run the test suite"
	@echo "  verify     pre-merge gate: go vet + full suite under -race"
	@echo "  bench      regenerate BENCH_baseline.json and BENCH_host.json"
	@echo "  benchdiff  compare a fresh virtual-time baseline against the checked-in one"
	@echo "  microbench hot-path microbenchmarks (event queue, rollback storm, GVT rounds)"
	@echo "  cover      coverage profile over ./internal/..."
	@echo "  serve      run the simulation job server (cmd/simd)"
	@echo "  smoke      end-to-end service smoke test (scripts/service_smoke.sh)"
	@echo "  obs-smoke  observability smoke test: live /metrics, flight recorder, pprof, simtop (scripts/obs_smoke.sh)"
	@echo "  durability-smoke  crash-safety smoke test: kill -9 warm restart, degraded mode, corrupt-entry quarantine, job deadline (scripts/durability_smoke.sh)"
	@echo "  cluster-smoke  failover smoke test: 3-node cluster loses a member to kill -9 with zero jobs lost (scripts/cluster_smoke.sh)"
	@echo "  loadgen    replay a job mix against a running service (make loadgen LOADGEN_ADDR=... MIX=duplicate N=100 RPS=50)"
	@echo "  loadgen-smoke  SLO-gated load smoke test: cache absorption, honored 429 backpressure, failing-gate exit code (scripts/loadgen_smoke.sh)"
	@echo "  fmt        gofmt the tree"
	@echo "  clean      remove build and run artifacts"
	@echo ""
	@echo "serve flags (make serve ADDR=:9090 WORKERS=4 QUEUE=128 CACHESIZE=256):"
	@echo "  ADDR       -addr       HTTP listen address            (default :8080)"
	@echo "  WORKERS    -workers    concurrent simulations         (default 0 = GOMAXPROCS)"
	@echo "  QUEUE      -queue      bounded job-queue depth        (default 64; full queue -> 429)"
	@echo "  CACHESIZE  -cachesize  result cache budget in MiB     (default 64; 0 disables)"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the full pre-merge gate: static analysis plus the whole test
# suite under the race detector.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

# bench runs the telemetry-overhead benchmark (fails if sampling or
# tracing shifts the committed-event rate by >= 5%), then regenerates
# both benchmark documents: the deterministic virtual-time baseline
# (BENCH_baseline.json, checked in, compared exactly) and the host
# wall-clock/allocation document (BENCH_host.json, machine-dependent,
# never checked in — CI compares it against the PR base with tolerance
# bands via `make benchdiff`).
bench:
	$(GO) test -run xxx -bench BenchmarkTelemetry -benchtime 3x .
	$(GO) run ./cmd/bench -out BENCH_baseline.json -hostout BENCH_host.json

# benchdiff compares a fresh virtual-time baseline against the
# checked-in copy; any difference is a functional/performance
# regression. CI runs this as a blocking gate.
benchdiff:
	$(GO) run ./cmd/bench -out /tmp/BENCH_fresh.json -hostout ""
	$(GO) run ./cmd/benchdiff BENCH_baseline.json /tmp/BENCH_fresh.json

# microbench runs the hot-path microbenchmarks (events/sec, allocs/op)
# for the event queue, rollback storm, and full-engine GVT rounds.
microbench:
	$(GO) test -run xxx -bench . -benchtime 100000x ./internal/eventq
	$(GO) test -run xxx -bench 'RollbackHeavy|GVTRounds' -benchtime 3x ./internal/core

# cover writes a coverage profile over the library packages — internal
# plus the public SDK. CI fails if total coverage drops below its
# recorded floor.
cover:
	$(GO) test -coverprofile=coverage.out ./internal/... ./pkg/...
	$(GO) tool cover -func=coverage.out | tail -1

# serve runs the simulation job server. See `make help` for the flags.
serve:
	$(GO) run ./cmd/simd -addr $(ADDR) -workers $(WORKERS) -queue $(QUEUE) -cachesize $(CACHESIZE)

# smoke starts a throwaway server, submits the same small PHOLD job
# twice and asserts the second submission is a cache hit with
# byte-identical report bytes. CI runs this as the service gate.
smoke:
	./scripts/service_smoke.sh

# obs-smoke exercises the observability surface against a live daemon:
# mid-run /metrics scrape, flight recorder of a cancelled job, the
# -debug-addr pprof listener, simtop, and structured-log shape. CI runs
# it alongside `smoke` in the service gate.
obs-smoke:
	./scripts/obs_smoke.sh

# durability-smoke proves the crash-safety story against real processes:
# a daemon is SIGKILLed mid-run, its successor on the same -store-dir
# serves completed results byte-identically with zero re-execution and
# re-runs the interrupted job from the journal; a broken store disk
# degrades to memory-only; a corrupt entry is quarantined, never served;
# -job-deadline fails over-budget jobs. CI runs it in the service gate.
durability-smoke:
	./scripts/durability_smoke.sh

# cluster-smoke proves the failover story: a 3-node simdcluster loses a
# member to kill -9 mid-run and no submitted job is lost — queued work
# re-dispatches to live replicas, completed reports survive their
# owner's death byte-identically via the shared store, and repeat
# submissions stay cache hits. CI runs it in the service gate.
cluster-smoke:
	./scripts/cluster_smoke.sh

# loadgen replays a job mix against an already-running service and
# prints an SLO-graded summary (JSON on stdout, table on stderr). See
# cmd/loadgen for the full flag set; this wrapper covers the basics.
loadgen:
	$(GO) run ./cmd/loadgen -addr $(LOADGEN_ADDR) -mix $(MIX) -n $(N) -rps $(RPS)

# loadgen-smoke boots throwaway daemons and drives them with
# cmd/loadgen: a duplicate-heavy mix must be absorbed by the content
# cache (hit ratio >= 0.8, executions == distinct specs), a
# distinct-heavy mix against a 1-worker daemon must surface honored 429
# backpressure with zero lost results, and a deliberately unsatisfiable
# SLO must exit 1. CI runs it in the service gate.
loadgen-smoke:
	./scripts/loadgen_smoke.sh

fmt:
	gofmt -l -w .

clean:
	$(GO) clean ./...
	rm -f run.trace run.json results.csv BENCH_host.json coverage.out coverage.html
