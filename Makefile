GO ?= go

.PHONY: all build test verify bench fmt clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the full pre-merge gate: static analysis plus the whole test
# suite under the race detector.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

# bench runs the telemetry-overhead benchmark (fails if sampling or
# tracing shifts the committed-event rate by >= 5%), then regenerates
# the machine-readable virtual-time baseline. BENCH_baseline.json is
# deterministic — diff it against the checked-in copy to spot
# performance regressions.
bench:
	$(GO) test -run xxx -bench BenchmarkTelemetry -benchtime 3x .
	$(GO) run ./cmd/bench -out BENCH_baseline.json

fmt:
	gofmt -l -w .

clean:
	$(GO) clean ./...
	rm -f run.trace run.json results.csv
