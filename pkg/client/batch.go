package client

import (
	"context"
	"sync"
)

// BatchOptions tunes BatchSubmit.
type BatchOptions struct {
	// Concurrency bounds in-flight jobs (submit→await→report chains).
	// Zero or negative means 4.
	Concurrency int
	// QueueRetries is how many 429 answers each submission absorbs via
	// Retry-After before giving up (default 8; negative disables retry).
	QueueRetries int
	// FetchReport, when set, also fetches each successful job's report.
	FetchReport bool
}

// BatchResult is the outcome for one spec of a batch. Exactly one
// result is emitted per input index, in completion order.
type BatchResult struct {
	// Index is the spec's position in the input slice.
	Index int
	// Submission is valid when the submit itself succeeded.
	Submission Submission
	// Job is the terminal document when the job settled (even if Err is
	// ErrCancelled or a *JobFailedError).
	Job JobStatus
	// Report holds the canonical report bytes when FetchReport was set
	// and the job finished done.
	Report []byte
	// Err is the first failure along submit→await→report, nil on success.
	Err error
}

// BatchSubmit runs every spec through submit→await(→report) with at
// most opts.Concurrency in flight, streaming results on the returned
// channel as jobs settle. The channel closes after exactly len(specs)
// results. Cancelling ctx makes the remaining results carry ctx's
// error; the channel still closes.
func (c *Client) BatchSubmit(ctx context.Context, specs []any, opts BatchOptions) <-chan BatchResult {
	workers := opts.Concurrency
	if workers <= 0 {
		workers = 4
	}
	retries := opts.QueueRetries
	if retries == 0 {
		retries = 8
	} else if retries < 0 {
		retries = 0
	}

	out := make(chan BatchResult)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(idx int, spec any) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				out <- BatchResult{Index: idx, Err: ctx.Err()}
				return
			}
			res := BatchResult{Index: idx}
			res.Submission, res.Err = c.SubmitRetry(ctx, spec, retries)
			if res.Err == nil {
				res.Job, res.Err = c.Await(ctx, res.Submission.ID)
			}
			if res.Err == nil && opts.FetchReport {
				res.Report, res.Err = c.Report(ctx, res.Job.ID)
			}
			out <- res
		}(i, spec)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// BatchSubmitAll collects BatchSubmit into a slice in input order.
func (c *Client) BatchSubmitAll(ctx context.Context, specs []any, opts BatchOptions) []BatchResult {
	results := make([]BatchResult, len(specs))
	for res := range c.BatchSubmit(ctx, specs, opts) {
		results[res.Index] = res
	}
	return results
}
