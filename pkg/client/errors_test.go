package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestErrorStringsAndSentinelMapping(t *testing.T) {
	qf := &QueueFullError{RetryAfter: 3 * time.Second, Hinted: true, Message: "queue full"}
	if s := qf.Error(); !strings.Contains(s, "3s") || !strings.Contains(s, "queue full") {
		t.Errorf("hinted QueueFullError.Error() = %q", s)
	}
	if s := (&QueueFullError{Message: "busy"}).Error(); strings.Contains(s, "retry after") {
		t.Errorf("unhinted QueueFullError.Error() mentions a hint: %q", s)
	}
	if !errors.Is(qf, ErrQueueFull) || errors.Is(qf, ErrNotFound) {
		t.Error("QueueFullError sentinel mapping wrong")
	}

	ae := &APIError{Status: 404, Message: "no such job"}
	if s := ae.Error(); !strings.Contains(s, "404") || !strings.Contains(s, "no such job") {
		t.Errorf("APIError.Error() = %q", s)
	}
	if !errors.Is(ae, ErrNotFound) {
		t.Error("a 404 APIError must answer ErrNotFound")
	}
	if errors.Is(&APIError{Status: 400}, ErrNotFound) {
		t.Error("a 400 APIError must not answer ErrNotFound")
	}

	jf := &JobFailedError{Status: JobStatus{ID: "j1", Error: "engine panic"}}
	if s := jf.Error(); !strings.Contains(s, "j1") || !strings.Contains(s, "engine panic") {
		t.Errorf("JobFailedError.Error() = %q", s)
	}
}

func TestTerminalErrMapping(t *testing.T) {
	if err := terminalErr(JobStatus{ID: "a", State: StateDone}); err != nil {
		t.Errorf("done → %v, want nil", err)
	}
	if err := terminalErr(JobStatus{ID: "a", State: StateCancelled}); !errors.Is(err, ErrCancelled) {
		t.Errorf("cancelled → %v", err)
	}
	if err := terminalErr(JobStatus{ID: "a", State: StateFailed, Error: "job deadline (1s) exceeded"}); !errors.Is(err, ErrDeadline) {
		t.Errorf("deadline failure → %v", err)
	}
	var jf *JobFailedError
	if err := terminalErr(JobStatus{ID: "a", State: StateFailed, Error: "boom"}); !errors.As(err, &jf) {
		t.Errorf("plain failure → %v", err)
	}
	if err := terminalErr(JobStatus{ID: "a", State: StateRunning}); err == nil {
		t.Error("terminalErr on a non-terminal state must error")
	}
}

func TestApiMessageFallsBackToRawBody(t *testing.T) {
	if got := apiMessage([]byte(`{"error":"told you"}`)); got != "told you" {
		t.Errorf("JSON body → %q", got)
	}
	if got := apiMessage([]byte("  plain text 500 page\n")); got != "plain text 500 page" {
		t.Errorf("raw body → %q", got)
	}
	if got := apiMessage(nil); got != "" {
		t.Errorf("empty body → %q", got)
	}
}

func TestTerminalAndStates(t *testing.T) {
	for _, st := range []string{StateDone, StateFailed, StateCancelled} {
		if !Terminal(st) {
			t.Errorf("Terminal(%q) = false", st)
		}
	}
	for _, st := range []string{StateQueued, StateRunning, ""} {
		if Terminal(st) {
			t.Errorf("Terminal(%q) = true", st)
		}
	}
}

func TestOptionsAndBase(t *testing.T) {
	h := &http.Client{}
	c := New("http://example.test/", WithHTTPClient(h), WithPollInterval(time.Second), WithPollInterval(0))
	if c.Base() != "http://example.test" {
		t.Errorf("Base() = %q (trailing slash must be trimmed)", c.Base())
	}
	if c.api.HTTP != h {
		t.Error("WithHTTPClient did not install the client")
	}
	if c.poll != time.Second {
		t.Errorf("poll = %v; WithPollInterval(0) must be ignored", c.poll)
	}
}

func TestTruncateLine(t *testing.T) {
	if got := truncateLine([]byte("short")); got != "short" {
		t.Errorf("short line → %q", got)
	}
	long := strings.Repeat("x", 300)
	if got := truncateLine([]byte(long)); len(got) != 123 || !strings.HasSuffix(got, "...") {
		t.Errorf("long line → %d bytes %q...", len(got), got[:20])
	}
}

func TestAwaitFallsBackToPollingWhenStreamBreaks(t *testing.T) {
	// An events endpoint that dies mid-stream without an end record;
	// status polling must settle the await anyway.
	var polls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs/j1/events", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"type":"progress","round":1}` + "\n"))
		// Connection closes with no end record: a broken stream.
	})
	mux.HandleFunc("GET /jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		if polls.Add(1) < 3 {
			w.Write([]byte(`{"id":"j1","state":"running"}`))
			return
		}
		w.Write([]byte(`{"id":"j1","state":"done"}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(ts.URL, WithPollInterval(2*time.Millisecond))
	st, err := c.Await(context.Background(), "j1")
	if err != nil || st.State != StateDone {
		t.Fatalf("Await over a broken stream: %+v err %v", st, err)
	}
	if polls.Load() < 3 {
		t.Fatalf("await settled after %d polls; the poll fallback never engaged", polls.Load())
	}
}

func TestStreamEventsRejectsGarbageAndErrorStatus(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs/bad/events", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("this is not json\n"))
	})
	mux.HandleFunc("GET /jobs/gone/events", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL)

	err := c.streamEvents(context.Background(), "bad", nil)
	if err == nil || !strings.Contains(err.Error(), "bad stream record") {
		t.Fatalf("garbage stream → %v", err)
	}
	if err := c.streamEvents(context.Background(), "gone", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("404 stream → %v, want ErrNotFound", err)
	}
}

func TestStreamOnMissingJobSettlesNotFound(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer ts.Close()
	c := New(ts.URL)

	s := c.Stream(context.Background(), "nope")
	for range s.Updates() {
	}
	if _, err := s.Wait(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stream on a missing job settled %v, want ErrNotFound", err)
	}
}

func TestStreamCancelledContext(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"type":"progress","round":1}` + "\n"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	c := New(ts.URL)

	ctx, cancel := context.WithCancel(context.Background())
	s := c.Stream(ctx, "j1")
	<-s.Updates() // first update arrived; the stream is live
	cancel()
	if _, err := s.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Stream settled %v, want context.Canceled", err)
	}
}

func TestSubmitRejectsUndecodableAnswerAndBadSpec(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"bad spec"}`, http.StatusBadRequest)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL)

	var ae *APIError
	_, err := c.Submit(context.Background(), map[string]any{"model": "nope"})
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest || ae.Message != "bad spec" {
		t.Fatalf("bad spec → %v", err)
	}
	// A spec that cannot marshal never leaves the client.
	if _, err := c.Submit(context.Background(), func() {}); err == nil {
		t.Fatal("unmarshalable spec must error client-side")
	}
}

func TestCancelStatusAndRunErrorPaths(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("DELETE /jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"id":"j1","state":"cancelled"}`))
	})
	mux.HandleFunc("DELETE /jobs/gone", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL)

	st, err := c.Cancel(context.Background(), "j1")
	if err != nil || st.State != StateCancelled {
		t.Fatalf("Cancel: %+v err %v", st, err)
	}
	if _, err := c.Cancel(context.Background(), "gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel of a missing job → %v", err)
	}

	// Run surfaces the submit failure as-is.
	tsDown := httptest.NewServer(http.NotFoundHandler())
	tsDown.Close()
	if _, _, err := New(tsDown.URL).Run(context.Background(), map[string]any{}); err == nil {
		t.Fatal("Run against a dead service must error")
	}
}
