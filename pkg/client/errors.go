package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Sentinel errors. Match them with errors.Is; the structured errors
// below carry the details and answer Is for the matching sentinel, so
//
//	var qf *client.QueueFullError
//	if errors.Is(err, client.ErrQueueFull) { ... }      // branch
//	if errors.As(err, &qf) { wait(qf.RetryAfter) }      // details
//
// both work on the same returned error.
var (
	// ErrQueueFull: the service's admission control refused the
	// submission (HTTP 429). The *QueueFullError carries the parsed
	// Retry-After hint.
	ErrQueueFull = errors.New("client: queue full")
	// ErrNotFound: no job with that id (HTTP 404) — including a job that
	// evaporated because the daemon restarted.
	ErrNotFound = errors.New("client: job not found")
	// ErrCancelled: the awaited job settled as cancelled.
	ErrCancelled = errors.New("client: job cancelled")
	// ErrDeadline: the awaited job was failed by the service's per-job
	// wall-clock deadline (simd -job-deadline). A *local* context
	// deadline during an await surfaces as context.DeadlineExceeded
	// instead — the job may still be running server-side.
	ErrDeadline = errors.New("client: job wall-clock deadline exceeded")
	// ErrNotReady: the report was requested before the job finished
	// (HTTP 409 on /report).
	ErrNotReady = errors.New("client: report not ready")
	// ErrFinished: cancel arrived after the job reached a terminal state
	// (HTTP 409 on DELETE).
	ErrFinished = errors.New("client: job already finished")
)

// QueueFullError is a 429 admission-control answer. RetryAfter is the
// server's estimate of the queue drain time; Hinted is false when the
// server sent no parseable Retry-After header (RetryAfter is then 0 and
// the caller picks its own backoff).
type QueueFullError struct {
	RetryAfter time.Duration
	Hinted     bool
	Message    string
}

func (e *QueueFullError) Error() string {
	if e.Hinted {
		return fmt.Sprintf("client: queue full (retry after %s): %s", e.RetryAfter, e.Message)
	}
	return "client: queue full: " + e.Message
}

func (e *QueueFullError) Is(target error) bool { return target == ErrQueueFull }

// APIError is any other non-2xx service answer: bad spec (400), not
// found (404), draining (503). It answers errors.Is(err, ErrNotFound)
// for 404s.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: service answered HTTP %d: %s", e.Status, e.Message)
}

func (e *APIError) Is(target error) bool {
	return target == ErrNotFound && e.Status == 404
}

// JobFailedError is a job that settled as failed for a reason other
// than the service deadline; Status carries the full terminal document
// including the server's error message.
type JobFailedError struct {
	Status JobStatus
}

func (e *JobFailedError) Error() string {
	return fmt.Sprintf("client: job %s failed: %s", e.Status.ID, e.Status.Error)
}

// terminalErr maps a terminal job document to the SDK error contract:
// nil for done, ErrCancelled, ErrDeadline (the server's wall-clock
// deadline message is the discriminator, matching simd's execute path),
// or *JobFailedError for everything else.
func terminalErr(st JobStatus) error {
	switch st.State {
	case StateDone:
		return nil
	case StateCancelled:
		return fmt.Errorf("client: job %s: %w", st.ID, ErrCancelled)
	case StateFailed:
		if strings.Contains(st.Error, "deadline") {
			return fmt.Errorf("client: job %s: %s: %w", st.ID, st.Error, ErrDeadline)
		}
		return &JobFailedError{Status: st}
	}
	return fmt.Errorf("client: job %s is still %s", st.ID, st.State)
}

// apiMessage extracts the service's {"error": "..."} body, falling back
// to the raw body for non-JSON answers.
func apiMessage(data []byte) string {
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &doc) == nil && doc.Error != "" {
		return doc.Error
	}
	return strings.TrimSpace(string(data))
}
