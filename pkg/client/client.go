// Package client is the public Go SDK for the simd simulation service.
// It speaks the wire protocol served by cmd/simd and — identically —
// by the cmd/simdcluster router: submit a job spec, await it under a
// context, stream per-GVT-round NDJSON progress, fetch the canonical
// run report, cancel, all with typed errors, plus bounded-concurrency
// batch submission returning results on a channel.
//
// Because the engine is deterministic and results are content-addressed
// by canonical spec hash, a submission can be answered three ways, all
// surfaced on the Submission document: executed for real, served from
// the result cache/persistent store (CacheHitNow/StoreHit), or
// coalesced onto an identical in-flight job (DedupedNow).
//
// Minimal round trip:
//
//	c := client.New("http://127.0.0.1:8080")
//	st, report, err := c.Run(ctx, map[string]any{"model": "phold", "end_time": 50})
//
// Backpressure is a protocol answer, not a failure: a full queue comes
// back as *QueueFullError carrying the server's parsed Retry-After
// hint. SubmitRetry, Run and BatchSubmit honor it automatically.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/simdclient"
)

// Job lifecycle states, as they appear in JobStatus.State.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Terminal reports whether a state is settled: done, failed or
// cancelled.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// JobStatus is the service's job document.
type JobStatus struct {
	ID    string `json:"id"`
	Hash  string `json:"hash"`
	State string `json:"state"`
	// CacheHit marks a job that was born done from the result cache;
	// StoreHit narrows it to the persistent store (it survived a restart
	// or was computed by a sibling daemon).
	CacheHit bool `json:"cache_hit"`
	StoreHit bool `json:"store_hit,omitempty"`
	// Deduped counts later identical submissions coalesced onto this job.
	Deduped int64  `json:"deduped,omitempty"`
	Rounds  int    `json:"rounds"`
	Error   string `json:"error,omitempty"`
	// GVT and Efficiency echo the most recent progress round.
	GVT        float64 `json:"gvt"`
	Efficiency float64 `json:"efficiency"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// Submission is a submit answer: the job document plus how THIS
// submission was satisfied (for a deduped or cache-hit submission the
// job itself may predate it).
type Submission struct {
	JobStatus
	CacheHitNow bool `json:"cache_hit_now"`
	DedupedNow  bool `json:"deduped_now"`
}

// Progress is one per-GVT-round update from the events stream. All
// quantities are cumulative since run start and purely virtual-time.
type Progress struct {
	Round      int64   `json:"round"`
	GVT        float64 `json:"gvt"`
	AtNanos    int64   `json:"at_ns"`
	Sync       bool    `json:"sync"`
	Efficiency float64 `json:"efficiency"`
	Processed  int64   `json:"processed"`
	Committed  int64   `json:"committed"`
	Rollbacks  int64   `json:"rollbacks"`
	RolledBack int64   `json:"rolled_back"`
	Migrations int64   `json:"migrations"`
}

// Client talks to one simd daemon or simdcluster router.
type Client struct {
	api  *simdclient.Client
	poll time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying HTTP client. Leave its Timeout
// zero: request lifetimes are governed by the contexts you pass, and
// the events stream legitimately outlives any fixed deadline.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.api.HTTP = h }
}

// WithPollInterval sets the status poll interval Await falls back to
// when the events stream is unavailable (default 150ms).
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.poll = d
		}
	}
}

// New returns a client for the given base URL, e.g.
// "http://127.0.0.1:8080".
func New(base string, opts ...Option) *Client {
	api := simdclient.New(base)
	// No global timeout: per-request contexts govern lifetimes, and the
	// events stream runs for as long as the simulation does.
	api.HTTP = &http.Client{}
	c := &Client{api: api, poll: 150 * time.Millisecond}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the service root URL this client talks to.
func (c *Client) Base() string { return c.api.Base }

// Submit posts one job spec. spec is marshalled as JSON ([]byte and
// json.RawMessage pass through verbatim), so callers may hand over a
// struct, a map, or raw bytes. A full queue returns *QueueFullError
// (errors.Is ErrQueueFull) carrying the parsed Retry-After hint; other
// non-2xx answers return *APIError.
func (c *Client) Submit(ctx context.Context, spec any) (Submission, error) {
	code, data, hdr, err := c.api.Do(ctx, http.MethodPost, "/jobs", spec)
	if err != nil {
		return Submission{}, fmt.Errorf("client: submit: %w", err)
	}
	switch code {
	case http.StatusOK, http.StatusAccepted:
		var sub Submission
		if err := json.Unmarshal(data, &sub); err != nil {
			return Submission{}, fmt.Errorf("client: submit: undecodable answer: %w", err)
		}
		return sub, nil
	case http.StatusTooManyRequests:
		ra, ok := simdclient.RetryAfterHint(hdr)
		return Submission{}, &QueueFullError{RetryAfter: ra, Hinted: ok, Message: apiMessage(data)}
	default:
		return Submission{}, &APIError{Status: code, Message: apiMessage(data)}
	}
}

// SubmitRetry submits, absorbing up to retries ErrQueueFull answers by
// honoring the server's Retry-After hint between attempts (capped at
// 15s; one second when the server sent no hint). Any other error
// returns immediately.
func (c *Client) SubmitRetry(ctx context.Context, spec any, retries int) (Submission, error) {
	const hintCap = 15 * time.Second
	for attempt := 0; ; attempt++ {
		sub, err := c.Submit(ctx, spec)
		var qf *QueueFullError
		if err == nil || !errors.As(err, &qf) || attempt >= retries {
			return sub, err
		}
		d := qf.RetryAfter
		if !qf.Hinted || d <= 0 {
			d = time.Second
		}
		if d > hintCap {
			d = hintCap
		}
		if err := sleepCtx(ctx, d); err != nil {
			return Submission{}, err
		}
	}
}

// Status fetches one job's current document. errors.Is(err,
// ErrNotFound) identifies a vanished job.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	code, data, _, err := c.api.Do(ctx, http.MethodGet, "/jobs/"+id, nil)
	if err != nil {
		return JobStatus{}, fmt.Errorf("client: status %s: %w", id, err)
	}
	if code != http.StatusOK {
		return JobStatus{}, &APIError{Status: code, Message: apiMessage(data)}
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return JobStatus{}, fmt.Errorf("client: status %s: undecodable answer: %w", id, err)
	}
	return st, nil
}

// Report fetches the canonical run report bytes. 409 before the job is
// done maps to ErrNotReady (await first); for failed or cancelled jobs
// there is no report, ever.
func (c *Client) Report(ctx context.Context, id string) ([]byte, error) {
	code, data, _, err := c.api.Do(ctx, http.MethodGet, "/jobs/"+id+"/report", nil)
	if err != nil {
		return nil, fmt.Errorf("client: report %s: %w", id, err)
	}
	switch code {
	case http.StatusOK:
		return data, nil
	case http.StatusConflict:
		return nil, fmt.Errorf("client: report %s: %s: %w", id, apiMessage(data), ErrNotReady)
	default:
		return nil, &APIError{Status: code, Message: apiMessage(data)}
	}
}

// Cancel requests cancellation: queued jobs settle instantly, running
// jobs abort at the kernel's next dispatch boundary. A job already in a
// terminal state answers ErrFinished.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	code, data, _, err := c.api.Do(ctx, http.MethodDelete, "/jobs/"+id, nil)
	if err != nil {
		return JobStatus{}, fmt.Errorf("client: cancel %s: %w", id, err)
	}
	switch code {
	case http.StatusOK:
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return JobStatus{}, fmt.Errorf("client: cancel %s: undecodable answer: %w", id, err)
		}
		return st, nil
	case http.StatusConflict:
		return JobStatus{}, fmt.Errorf("client: cancel %s: %s: %w", id, apiMessage(data), ErrFinished)
	default:
		return JobStatus{}, &APIError{Status: code, Message: apiMessage(data)}
	}
}

// Await blocks until the job settles or ctx expires, following the
// events stream when it can and falling back to status polls when the
// stream breaks (a daemon restart, a buffering proxy). It returns the
// terminal document plus the outcome error contract: nil for done,
// ErrCancelled, ErrDeadline, or *JobFailedError. A local ctx expiry
// returns ctx's error — the job may still be running server-side.
func (c *Client) Await(ctx context.Context, id string) (JobStatus, error) {
	if err := c.streamEvents(ctx, id, nil); err != nil {
		if ctx.Err() != nil {
			return JobStatus{}, fmt.Errorf("client: await %s: %w", id, ctx.Err())
		}
		if errors.Is(err, ErrNotFound) {
			return JobStatus{}, err
		}
		// Broken stream with a live context: fall through to polling.
	}
	return c.awaitPoll(ctx, id)
}

// awaitPoll polls the status document until the job settles.
func (c *Client) awaitPoll(ctx context.Context, id string) (JobStatus, error) {
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				return JobStatus{}, fmt.Errorf("client: await %s: %w", id, ctx.Err())
			}
			return JobStatus{}, err
		}
		if Terminal(st.State) {
			return st, terminalErr(st)
		}
		if err := sleepCtx(ctx, c.poll); err != nil {
			return st, fmt.Errorf("client: await %s: %w", id, err)
		}
	}
}

// Run is the whole round trip: submit (absorbing up to 8 queue-full
// answers via SubmitRetry), await settlement, fetch the report. The
// returned status is valid whenever the submission succeeded, even when
// the outcome error is non-nil.
func (c *Client) Run(ctx context.Context, spec any) (JobStatus, []byte, error) {
	sub, err := c.SubmitRetry(ctx, spec, 8)
	if err != nil {
		return JobStatus{}, nil, err
	}
	st, err := c.Await(ctx, sub.ID)
	if err != nil {
		return st, nil, err
	}
	report, err := c.Report(ctx, st.ID)
	return st, report, err
}

// sleepCtx sleeps d or returns ctx's error, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// eventLine is one NDJSON record from /jobs/{id}/events: a progress
// update or the terminal end marker.
type eventLine struct {
	Type  string `json:"type"` // "progress" | "end"
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	Progress
}

// streamEvents follows the job's NDJSON stream, invoking fn (when
// non-nil) per progress record, and returns nil once the end record
// arrives. A non-nil fn error aborts the stream and is returned as-is.
func (c *Client) streamEvents(ctx context.Context, id string, fn func(Progress) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.api.Base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.api.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("client: events %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := readBounded(resp)
		return &APIError{Status: resp.StatusCode, Message: apiMessage(data)}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev eventLine
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("client: events %s: bad stream record %q: %w", id, truncateLine(line), err)
		}
		switch ev.Type {
		case "progress":
			if fn != nil {
				if err := fn(ev.Progress); err != nil {
					return err
				}
			}
		case "end":
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: events %s: stream broke: %w", id, err)
	}
	return fmt.Errorf("client: events %s: stream ended without an end record", id)
}

// readBounded drains at most 64 KiB of an error response body.
func readBounded(resp *http.Response) ([]byte, error) {
	buf := make([]byte, 64<<10)
	n, _ := resp.Body.Read(buf)
	return buf[:n], nil
}

func truncateLine(b []byte) string {
	const max = 120
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}
