package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeJob is one job in the fake service below.
type fakeJob struct {
	mu       sync.Mutex
	id       string
	state    string
	errMsg   string
	report   []byte
	progress []Progress
	// settled closes when the job reaches a terminal state, releasing
	// any in-flight events streams.
	settled chan struct{}
}

func (j *fakeJob) settle(state, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if Terminal(j.state) {
		return
	}
	j.state = state
	j.errMsg = errMsg
	close(j.settled)
}

func (j *fakeJob) snapshot() (string, string, []Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg, append([]Progress(nil), j.progress...)
}

// fakeSimd is an httptest stand-in for the simd wire API: just enough
// protocol to exercise every SDK path, with scriptable admission
// control and job outcomes.
type fakeSimd struct {
	mu   sync.Mutex
	jobs map[string]*fakeJob
	seq  int

	// reject429, while positive, answers each submit with 429 and the
	// given Retry-After header, decrementing per rejection.
	reject429  atomic.Int32
	retryAfter string
	// submits counts submit attempts (including rejected ones).
	submits atomic.Int64
	// onSubmit, when non-nil, scripts the new job (settle it, feed
	// progress, leave it running...). Runs on its own goroutine.
	onSubmit func(j *fakeJob)
}

func newFakeSimd() *fakeSimd {
	return &fakeSimd{jobs: map[string]*fakeJob{}, retryAfter: "1"}
}

func (f *fakeSimd) job(id string) *fakeJob {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.jobs[id]
}

func (f *fakeSimd) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		f.submits.Add(1)
		if f.reject429.Load() > 0 {
			f.reject429.Add(-1)
			if f.retryAfter != "" {
				w.Header().Set("Retry-After", f.retryAfter)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		f.mu.Lock()
		f.seq++
		j := &fakeJob{id: fmt.Sprintf("job-%d", f.seq), state: StateQueued, settled: make(chan struct{})}
		f.jobs[j.id] = j
		f.mu.Unlock()
		if f.onSubmit != nil {
			go f.onSubmit(j)
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": j.id, "state": StateQueued})
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j := f.job(r.PathValue("id"))
		if j == nil {
			http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
			return
		}
		state, errMsg, _ := j.snapshot()
		json.NewEncoder(w).Encode(map[string]any{"id": j.id, "state": state, "error": errMsg})
	})
	mux.HandleFunc("GET /jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		j := f.job(r.PathValue("id"))
		if j == nil {
			http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
			return
		}
		state, _, _ := j.snapshot()
		if state != StateDone {
			http.Error(w, `{"error":"report not ready"}`, http.StatusConflict)
			return
		}
		w.Write(j.report)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j := f.job(r.PathValue("id"))
		if j == nil {
			http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
			return
		}
		state, _, _ := j.snapshot()
		if Terminal(state) {
			http.Error(w, `{"error":"already finished"}`, http.StatusConflict)
			return
		}
		j.settle(StateCancelled, "")
		json.NewEncoder(w).Encode(map[string]any{"id": j.id, "state": StateCancelled})
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		j := f.job(r.PathValue("id"))
		if j == nil {
			http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
			return
		}
		enc := json.NewEncoder(w)
		flusher, _ := w.(http.Flusher)
		sent := 0
		for {
			state, errMsg, progress := j.snapshot()
			for _, p := range progress[sent:] {
				enc.Encode(struct {
					Type string `json:"type"`
					Progress
				}{Type: "progress", Progress: p})
				sent++
			}
			if flusher != nil {
				flusher.Flush()
			}
			if Terminal(state) {
				enc.Encode(map[string]any{"type": "end", "state": state, "error": errMsg})
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
			select {
			case <-j.settled:
			case <-r.Context().Done():
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	})
	return mux
}

func start(t *testing.T, f *fakeSimd) *Client {
	t.Helper()
	ts := httptest.NewServer(f.handler())
	t.Cleanup(ts.Close)
	return New(ts.URL, WithPollInterval(5*time.Millisecond))
}

var spec = map[string]any{"model": "phold", "end_time": 10}

func TestSubmitQueueFullCarriesRetryAfter(t *testing.T) {
	f := newFakeSimd()
	f.retryAfter = "2"
	f.reject429.Store(1)
	c := start(t, f)

	_, err := c.Submit(context.Background(), spec)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit against a full queue returned %v, want ErrQueueFull", err)
	}
	var qf *QueueFullError
	if !errors.As(err, &qf) || !qf.Hinted || qf.RetryAfter != 2*time.Second {
		t.Fatalf("QueueFullError = %+v, want hinted 2s", qf)
	}

	// No header: still ErrQueueFull, but unhinted.
	f.retryAfter = ""
	f.reject429.Store(1)
	_, err = c.Submit(context.Background(), spec)
	if !errors.As(err, &qf) || qf.Hinted {
		t.Fatalf("unhinted 429 = %v, want QueueFullError with Hinted=false", err)
	}
}

func TestSubmitRetryHonorsRetryAfter(t *testing.T) {
	f := newFakeSimd()
	f.retryAfter = "0" // parseable, zero → client substitutes its floor; keep the test fast
	f.reject429.Store(2)
	f.onSubmit = func(j *fakeJob) { j.settle(StateDone, "") }
	c := start(t, f)

	t0 := time.Now()
	sub, err := c.SubmitRetry(context.Background(), spec, 5)
	if err != nil {
		t.Fatalf("SubmitRetry: %v", err)
	}
	if sub.ID == "" || f.submits.Load() != 3 {
		t.Fatalf("submits = %d (want 3: two 429s then accept), sub %+v", f.submits.Load(), sub)
	}
	// Two absorbed rejections at the 1s floor each.
	if elapsed := time.Since(t0); elapsed < 2*time.Second {
		t.Fatalf("SubmitRetry returned after %v; it must sleep between rejected attempts", elapsed)
	}

	// Retries exhausted: the 429 surfaces.
	f.reject429.Store(100)
	if _, err := c.SubmitRetry(context.Background(), spec, 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("exhausted SubmitRetry returned %v, want ErrQueueFull", err)
	}
}

func TestAwaitSettlesDone(t *testing.T) {
	f := newFakeSimd()
	f.onSubmit = func(j *fakeJob) {
		j.report = []byte(`{"rounds":3}`)
		for i := 1; i <= 3; i++ {
			j.mu.Lock()
			j.state = StateRunning
			j.progress = append(j.progress, Progress{Round: int64(i), GVT: float64(i) * 10})
			j.mu.Unlock()
			time.Sleep(2 * time.Millisecond)
		}
		j.settle(StateDone, "")
	}
	c := start(t, f)

	st, report, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.State != StateDone || string(report) != `{"rounds":3}` {
		t.Fatalf("Run settled %+v report %q", st, report)
	}
}

func TestAwaitMapsCancelledAndDeadlineAndFailed(t *testing.T) {
	cases := []struct {
		name   string
		state  string
		errMsg string
		want   error
	}{
		{"cancelled", StateCancelled, "", ErrCancelled},
		{"service deadline", StateFailed, "job deadline (1s) exceeded", ErrDeadline},
		{"plain failure", StateFailed, "spec rejected by engine", nil}, // → *JobFailedError
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newFakeSimd()
			f.onSubmit = func(j *fakeJob) { j.settle(tc.state, tc.errMsg) }
			c := start(t, f)

			sub, err := c.Submit(context.Background(), spec)
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			_, err = c.Await(context.Background(), sub.ID)
			if tc.want != nil {
				if !errors.Is(err, tc.want) {
					t.Fatalf("Await returned %v, want %v", err, tc.want)
				}
				return
			}
			var jf *JobFailedError
			if !errors.As(err, &jf) || jf.Status.Error != tc.errMsg {
				t.Fatalf("Await returned %v, want *JobFailedError carrying %q", err, tc.errMsg)
			}
		})
	}
}

func TestAwaitMidStreamCancel(t *testing.T) {
	f := newFakeSimd()
	f.onSubmit = func(j *fakeJob) {
		j.mu.Lock()
		j.state = StateRunning
		j.progress = append(j.progress, Progress{Round: 1})
		j.mu.Unlock()
		// Stays running until cancelled.
	}
	c := start(t, f)

	sub, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	awaitDone := make(chan error, 1)
	go func() {
		_, err := c.Await(context.Background(), sub.ID)
		awaitDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the await attach to the stream
	if _, err := c.Cancel(context.Background(), sub.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	select {
	case err := <-awaitDone:
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("await after mid-stream cancel returned %v, want ErrCancelled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("await did not settle after cancel")
	}

	// A second cancel races a settled job: ErrFinished.
	if _, err := c.Cancel(context.Background(), sub.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("cancel of a finished job returned %v, want ErrFinished", err)
	}
}

func TestAwaitLocalContextDeadline(t *testing.T) {
	f := newFakeSimd()
	f.onSubmit = func(j *fakeJob) {
		j.mu.Lock()
		j.state = StateRunning
		j.mu.Unlock()
		// Never settles — the client's context has to give up.
	}
	c := start(t, f)

	sub, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	_, err = c.Await(ctx, sub.ID)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Await under a local deadline returned %v, want DeadlineExceeded", err)
	}
	if errors.Is(err, ErrDeadline) {
		t.Fatal("a local context deadline must NOT read as the service's job deadline")
	}
}

func TestReportAndStatusErrors(t *testing.T) {
	f := newFakeSimd()
	f.onSubmit = func(j *fakeJob) {
		j.mu.Lock()
		j.state = StateRunning
		j.mu.Unlock()
	}
	c := start(t, f)

	if _, err := c.Status(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Status on a missing job returned %v, want ErrNotFound", err)
	}
	if _, err := c.Report(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Report on a missing job returned %v, want ErrNotFound", err)
	}
	sub, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := c.Report(context.Background(), sub.ID); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Report on a running job returned %v, want ErrNotReady", err)
	}
}

func TestStreamDeliversUpdatesThenSettles(t *testing.T) {
	f := newFakeSimd()
	f.onSubmit = func(j *fakeJob) {
		for i := 1; i <= 5; i++ {
			j.mu.Lock()
			j.state = StateRunning
			j.progress = append(j.progress, Progress{Round: int64(i), GVT: float64(i)})
			j.mu.Unlock()
			time.Sleep(time.Millisecond)
		}
		j.settle(StateDone, "")
	}
	c := start(t, f)

	sub, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	s := c.Stream(context.Background(), sub.ID)
	var rounds []int64
	for p := range s.Updates() {
		rounds = append(rounds, p.Round)
	}
	st, err := s.Wait()
	if err != nil || st.State != StateDone {
		t.Fatalf("Wait: %+v err %v", st, err)
	}
	if len(rounds) != 5 {
		t.Fatalf("got %d progress updates %v, want 5", len(rounds), rounds)
	}
	for i, r := range rounds {
		if r != int64(i+1) {
			t.Fatalf("updates out of order: %v", rounds)
		}
	}
}

func TestStreamWaitWithoutConsuming(t *testing.T) {
	f := newFakeSimd()
	f.onSubmit = func(j *fakeJob) {
		// More updates than the stream buffer holds: Wait must drain, not
		// deadlock against the feeder.
		for i := 1; i <= 64; i++ {
			j.mu.Lock()
			j.state = StateRunning
			j.progress = append(j.progress, Progress{Round: int64(i)})
			j.mu.Unlock()
		}
		j.settle(StateDone, "")
	}
	c := start(t, f)

	sub, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err := c.Stream(context.Background(), sub.ID).Wait()
	if err != nil || st.State != StateDone {
		t.Fatalf("unconsumed Wait: %+v err %v", st, err)
	}
}

func TestBatchSubmitOrderingAndBoundedConcurrency(t *testing.T) {
	var inflight, peak atomic.Int32
	f := newFakeSimd()
	f.onSubmit = func(j *fakeJob) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		inflight.Add(-1)
		j.report = []byte(`{"ok":true}`)
		j.settle(StateDone, "")
	}
	c := start(t, f)

	const n, workers = 12, 3
	specs := make([]any, n)
	for i := range specs {
		specs[i] = map[string]any{"model": "phold", "seed": i}
	}
	results := c.BatchSubmitAll(context.Background(), specs, BatchOptions{Concurrency: workers, FetchReport: true})
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, res := range results {
		if res.Index != i {
			t.Fatalf("result %d carries index %d; BatchSubmitAll must restore input order", i, res.Index)
		}
		if res.Err != nil || res.Job.State != StateDone || string(res.Report) != `{"ok":true}` {
			t.Fatalf("result %d: %+v", i, res)
		}
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d jobs in flight, want at most %d", p, workers)
	}
	if f.submits.Load() != n {
		t.Fatalf("submits = %d, want %d (exactly one per spec)", f.submits.Load(), n)
	}
}

func TestBatchSubmitCancelledContext(t *testing.T) {
	f := newFakeSimd()
	f.onSubmit = func(j *fakeJob) {
		j.mu.Lock()
		j.state = StateRunning
		j.mu.Unlock()
	}
	c := start(t, f)

	ctx, cancel := context.WithCancel(context.Background())
	specs := []any{spec, spec, spec, spec}
	ch := c.BatchSubmit(ctx, specs, BatchOptions{Concurrency: 2})
	cancel()
	var got int
	for res := range ch {
		got++
		if res.Err == nil {
			t.Fatalf("result %d succeeded under a cancelled context", res.Index)
		}
	}
	if got != len(specs) {
		t.Fatalf("channel delivered %d results, want exactly %d", got, len(specs))
	}
}

func TestUnreachableServiceSurfacesTransportError(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close() // nothing listening
	c := New(ts.URL)
	if _, err := c.Submit(context.Background(), spec); err == nil {
		t.Fatal("submit against a dead service must error")
	} else if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrNotFound) {
		t.Fatalf("transport failure mapped to a protocol error: %v", err)
	}
}
