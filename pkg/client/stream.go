package client

import (
	"context"
	"errors"
	"fmt"
)

// Stream is a live progress feed for one job. Consume Updates until it
// closes, then call Wait for the terminal document and outcome error;
// Wait may also be called immediately (it drains unread updates).
//
//	s := c.Stream(ctx, id)
//	for p := range s.Updates() {
//		fmt.Printf("round %d gvt %.1f\n", p.Round, p.GVT)
//	}
//	st, err := s.Wait()
type Stream struct {
	updates chan Progress
	done    chan struct{}
	st      JobStatus
	err     error
}

// Updates returns the progress channel. It is closed when the job
// settles, the stream breaks, or the stream's context expires.
func (s *Stream) Updates() <-chan Progress { return s.updates }

// Wait blocks until the feed finishes and returns the terminal job
// document plus the outcome error (same contract as Await). It drains
// any unread updates, so it never deadlocks against the feeder.
func (s *Stream) Wait() (JobStatus, error) {
	for {
		select {
		case _, ok := <-s.updates:
			if !ok {
				<-s.done
				return s.st, s.err
			}
		case <-s.done:
			// Feeder finished; drain whatever it buffered before returning.
			for range s.updates {
			}
			return s.st, s.err
		}
	}
}

// Stream starts following a job's progress. The returned Stream owns a
// goroutine that feeds Updates from the NDJSON events endpoint (falling
// back to status polling if the stream breaks) and settles Wait when
// the job does.
func (c *Client) Stream(ctx context.Context, id string) *Stream {
	s := &Stream{
		updates: make(chan Progress, 16),
		done:    make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		streamErr := c.streamEvents(ctx, id, func(p Progress) error {
			select {
			case s.updates <- p:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
		close(s.updates)
		if streamErr != nil {
			if ctx.Err() != nil {
				s.err = fmt.Errorf("client: stream %s: %w", id, ctx.Err())
				return
			}
			if errors.Is(streamErr, ErrNotFound) {
				s.err = streamErr
				return
			}
		}
		// End record seen, or the stream broke with a live context:
		// either way the poll settles the terminal document.
		s.st, s.err = c.awaitPoll(ctx, id)
	}()
	return s
}
