package simd

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// allStates enumerates the lifecycle states for per-state series, so a
// scrape always sees every state (zeros included) and dashboards don't
// have to deal with appearing/disappearing series.
var allStates = []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled}

// serviceObs is the server's observability surface: a Prometheus-style
// registry covering the service layer (queue, workers, cache,
// admission) and the engine layer (per-GVT-round signals bridged live
// from the metrics.Recorder progress hook).
//
// Service-side values the server already tracks — pool stats, cache
// stats, atomics — are exposed as func-backed instruments read at
// scrape time, so there is no double bookkeeping. Engine signals have
// no resident source (each run's recorder dies with the run), so the
// bridge accumulates per-round deltas into registry counters as the
// hook fires.
type serviceObs struct {
	reg *obs.Registry

	submissions  *obs.CounterVec // outcome: admitted|cache_hit|deduped|rejected
	jobsFinished *obs.CounterVec // state: done|failed|cancelled
	jobsByState  *obs.GaugeVec   // state: current counts, refreshed per scrape
	queueWait    *obs.Histogram  // seconds from admission to pickup
	runDuration  *obs.Histogram  // seconds from pickup to terminal state

	engRounds     *obs.Counter
	engProcessed  *obs.Counter
	engCommitted  *obs.Counter
	engRollbacks  *obs.Counter
	engRolledBack *obs.Counter
	engMigrations *obs.Counter
	gvtAdvance    *obs.Histogram // virtual time gained per GVT round
}

// newServiceObs builds the registry for a server. The server's pool,
// cache and counters must already exist (func-backed instruments hold
// references into them).
func newServiceObs(s *Server) *serviceObs {
	reg := obs.NewRegistry()
	o := &serviceObs{reg: reg}

	obs.RegisterBuildInfo(reg, "simd_build_info", obs.ReadBuild())
	reg.GaugeFunc("simd_start_time_seconds",
		"Unix time the service started.",
		func() float64 { return float64(s.started.Unix()) })
	reg.GaugeFunc("simd_uptime_seconds",
		"Seconds since the service started.",
		func() float64 { return time.Since(s.started).Seconds() })

	// Admission and lifecycle.
	o.submissions = reg.CounterVec("simd_submissions_total",
		"Submissions by outcome: admitted (queued for execution), cache_hit, store_hit (cache hit filled from the persistent store), deduped (coalesced onto an in-flight job), rejected (queue full, HTTP 429).",
		"outcome")
	for _, oc := range []string{"admitted", "cache_hit", "store_hit", "deduped", "rejected"} {
		o.submissions.With(oc) // pre-create so all outcomes scrape as 0
	}
	o.jobsFinished = reg.CounterVec("simd_jobs_finished_total",
		"Jobs reaching a terminal state, by state.", "state")
	for _, st := range []State{StateDone, StateFailed, StateCancelled} {
		o.jobsFinished.With(string(st))
	}
	o.jobsByState = reg.GaugeVec("simd_jobs",
		"Current jobs by lifecycle state.", "state")
	reg.OnScrape(func() {
		by := s.jobsByState()
		for _, st := range allStates {
			o.jobsByState.With(string(st)).Set(float64(by[string(st)]))
		}
	})
	reg.CounterFunc("simd_executions_total",
		"Engine runs actually started (cache hits and dedup merges bypass this).",
		func() float64 { return float64(s.executions.Load()) })
	reg.CounterFunc("simd_job_deadline_exceeded_total",
		"Jobs failed by the per-job wall-clock deadline.",
		func() float64 { return float64(s.deadlined.Load()) })
	reg.CounterFunc("simd_job_panics_total",
		"Engine panics recovered and converted into job failures.",
		func() float64 { return float64(s.panicked.Load()) })
	reg.GaugeFunc("simd_jobs_recovered",
		"Jobs re-enqueued from the journal at the last warm restart.",
		func() float64 { return float64(s.recovered.Load()) })

	// Queue and workers.
	reg.GaugeFunc("simd_queue_depth",
		"Jobs waiting in the bounded queue.",
		func() float64 { return float64(s.pool.Stats().QueueLen) })
	reg.GaugeFunc("simd_queue_capacity",
		"Bounded queue capacity; submissions past it are rejected.",
		func() float64 { return float64(s.pool.Stats().QueueCap) })
	reg.GaugeFunc("simd_workers",
		"Simulation worker goroutines.",
		func() float64 { return float64(s.pool.Stats().Workers) })
	reg.GaugeFunc("simd_workers_busy",
		"Workers currently executing a job.",
		func() float64 { return float64(s.pool.Stats().Busy) })
	o.queueWait = reg.Histogram("simd_queue_wait_seconds",
		"Wall time from admission to worker pickup.", obs.DefBuckets)
	o.runDuration = reg.Histogram("simd_run_duration_seconds",
		"Wall time from worker pickup to terminal state.", obs.DefBuckets)

	// Result cache.
	reg.CounterFunc("simd_cache_hits_total", "Result-cache hits.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("simd_cache_misses_total", "Result-cache misses.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.CounterFunc("simd_cache_evictions_total", "Result-cache LRU evictions.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	reg.GaugeFunc("simd_cache_entries", "Cached results.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.GaugeFunc("simd_cache_bytes", "Bytes of cached result data.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	reg.GaugeFunc("simd_cache_budget_bytes", "Result-cache byte budget.",
		func() float64 { return float64(s.cache.Stats().Budget) })

	// Persistent store and journal, when configured. Func-backed like the
	// cache: the store keeps its own counters; scrapes just read them.
	if st := s.opts.Store; st != nil {
		reg.CounterFunc("simd_store_hits_total", "Persistent-store hits.",
			func() float64 { return float64(st.Stats().Hits) })
		reg.CounterFunc("simd_store_misses_total", "Persistent-store misses.",
			func() float64 { return float64(st.Stats().Misses) })
		reg.CounterFunc("simd_store_puts_total", "Results published to the persistent store.",
			func() float64 { return float64(st.Stats().Puts) })
		reg.CounterFunc("simd_store_put_errors_total", "Failed persistent-store writes.",
			func() float64 { return float64(st.Stats().PutErrors) })
		reg.CounterFunc("simd_store_quarantined_total",
			"Corrupt entries moved to quarantine on read.",
			func() float64 { return float64(st.Stats().Quarantined) })
		reg.CounterFunc("simd_store_evictions_total", "Persistent-store budget evictions.",
			func() float64 { return float64(st.Stats().Evictions) })
		reg.CounterFunc("simd_store_skipped_total",
			"Store operations bypassed while degraded (memory-only mode).",
			func() float64 { return float64(st.Stats().Skipped) })
		reg.CounterFunc("simd_store_degraded_events_total",
			"Transitions into degraded (memory-only) mode.",
			func() float64 { return float64(st.Stats().DegradedEvents) })
		reg.GaugeFunc("simd_store_degraded",
			"1 while the store is degraded to memory-only, else 0.",
			func() float64 {
				if st.Degraded() {
					return 1
				}
				return 0
			})
		reg.GaugeFunc("simd_store_entries", "Entries in the persistent store.",
			func() float64 { return float64(st.Stats().Entries) })
		reg.GaugeFunc("simd_store_bytes", "Bytes in the persistent store.",
			func() float64 { return float64(st.Stats().Bytes) })
		reg.GaugeFunc("simd_store_budget_bytes", "Persistent-store byte budget (0 = unbounded).",
			func() float64 { return float64(st.Stats().MaxBytes) })
	}
	if jl := s.opts.Journal; jl != nil {
		reg.CounterFunc("simd_journal_appends_total", "Journal records fsynced.",
			func() float64 { return float64(jl.Stats().Appends) })
		reg.CounterFunc("simd_journal_errors_total", "Failed journal appends.",
			func() float64 { return float64(jl.Stats().Errors) })
		reg.GaugeFunc("simd_journal_recovered",
			"Interrupted jobs found in the journal at open.",
			func() float64 { return float64(jl.Stats().Recovered) })
	}

	// Engine signals, bridged live from the per-round progress hook.
	o.engRounds = reg.Counter("simd_engine_gvt_rounds_total",
		"GVT rounds completed across all runs.")
	o.engProcessed = reg.Counter("simd_engine_events_processed_total",
		"Events processed (optimistically) across all runs.")
	o.engCommitted = reg.Counter("simd_engine_events_committed_total",
		"Events committed (processed minus rolled back) across all runs.")
	o.engRollbacks = reg.Counter("simd_engine_rollbacks_total",
		"Rollback episodes across all runs.")
	o.engRolledBack = reg.Counter("simd_engine_events_rolled_back_total",
		"Events undone by rollbacks across all runs.")
	o.engMigrations = reg.Counter("simd_engine_lp_migrations_total",
		"LP migrations committed at GVT points across all runs.")
	o.gvtAdvance = reg.Histogram("simd_engine_gvt_advance",
		"Virtual time gained per GVT round.", obs.ExpBuckets(0.0625, 2, 12))

	return o
}

// bridgeProgress folds one per-round progress update into the live
// engine counters. The update's quantities are cumulative per run, so
// the bridge adds the delta against the previous round, carried by the
// caller (one engine goroutine per run — no locking needed on prev).
// Committed can shrink within a run (a rollback undoes previously
// processed events), so negative deltas are clamped: registry counters
// stay monotone and the small undercount self-corrects on the next
// advancing round.
func (o *serviceObs) bridgeProgress(prev, u metrics.ProgressUpdate) {
	o.engRounds.Inc()
	o.engProcessed.Add(clampNonNeg(u.Processed - prev.Processed))
	o.engCommitted.Add(clampNonNeg(u.Committed - prev.Committed))
	o.engRollbacks.Add(clampNonNeg(u.Rollbacks - prev.Rollbacks))
	o.engRolledBack.Add(clampNonNeg(u.RolledBack - prev.RolledBack))
	o.engMigrations.Add(clampNonNeg(u.Migrations - prev.Migrations))
	if d := u.GVT - prev.GVT; d >= 0 {
		o.gvtAdvance.Observe(d)
	}
}

func clampNonNeg(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// MetricsRegistry exposes the server's observability registry, for
// embedding servers that mount /metrics themselves or register extra
// instruments alongside the service's.
func (s *Server) MetricsRegistry() *obs.Registry { return s.obs.reg }
