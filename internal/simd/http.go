package simd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// maxSpecBytes bounds a submitted spec document; anything larger is a
// client error, not a simulation.
const maxSpecBytes = 1 << 20

// JobStatus is the wire form of a job's lifecycle state.
type JobStatus struct {
	ID       string `json:"id"`
	Hash     string `json:"hash"`
	State    State  `json:"state"`
	CacheHit bool   `json:"cache_hit"`
	// StoreHit marks a cache hit served from the persistent store (it
	// survived a restart or was published by a sibling daemon).
	StoreHit bool `json:"store_hit,omitempty"`
	// Deduped counts later identical submissions coalesced onto this job.
	Deduped int64  `json:"deduped,omitempty"`
	Rounds  int    `json:"rounds"`
	Error   string `json:"error,omitempty"`
	// GVT and Efficiency echo the most recent progress round (0 before
	// the first round), so pollers and simtop can show live progress
	// without streaming /events.
	GVT        float64 `json:"gvt"`
	Efficiency float64 `json:"efficiency"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// status snapshots a job for the wire.
func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Hash: j.hash, State: j.state, CacheHit: j.cacheHit,
		StoreHit: j.storeHit,
		Deduped:  j.deduped, Rounds: int(j.flight.total), Error: j.errMsg,
		SubmittedAt: j.submitted,
	}
	if last, ok := j.flight.last(); ok {
		st.GVT = last.GVT
		st.Efficiency = last.Efficiency
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// submitResponse is the wire form of a submission outcome.
type submitResponse struct {
	JobStatus
	// CacheHitNow is true when THIS submission was served from the cache
	// (JobStatus.CacheHit echoes the job's own birth; for a deduped
	// submission they can differ).
	CacheHitNow bool `json:"cache_hit_now"`
	DedupedNow  bool `json:"deduped_now"`
}

// Handler returns the HTTP API:
//
//	POST   /jobs              submit a JobSpec  (202; 200 on cache hit/dedup; 429 full)
//	GET    /jobs              list job statuses
//	GET    /jobs/{id}         one job's status
//	GET    /jobs/{id}/report  the canonical run report        (409 until done)
//	GET    /jobs/{id}/events  NDJSON per-GVT-round progress stream
//	GET    /jobs/{id}/flight  flight recorder: bounded tail of recent rounds
//	DELETE /jobs/{id}         cancel                           (409 if finished)
//	GET    /metrics           Prometheus text exposition
//	GET    /stats             service counters
//	GET    /healthz           liveness + build identification
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/flight", s.handleFlight)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.Handle("GET /metrics", s.MetricsHandler())
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s.accessLog(mux)
}

// MetricsHandler serves the observability registry in Prometheus text
// exposition format — also mountable on a separate debug listener.
func (s *Server) MetricsHandler() http.Handler { return s.obs.reg.Handler() }

// healthzResponse is the liveness document: enough identity for a
// cluster operator to tell nodes and builds apart, plus the durability
// posture ("ok" | "degraded" — still serving, but memory-only because
// the persistent store's disk is misbehaving).
type healthzResponse struct {
	Status string `json:"status"`
	// NodeID is the daemon's stable cluster identity (Options.NodeID).
	NodeID        string    `json:"node_id,omitempty"`
	Build         obs.Build `json:"build"`
	StartedAt     time.Time `json:"started_at"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	// StoreDir is set when a persistent store is configured.
	StoreDir string `json:"store_dir,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		Status:        "ok",
		NodeID:        s.opts.NodeID,
		Build:         obs.ReadBuild(),
		StartedAt:     s.started,
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
	if st := s.opts.Store; st != nil {
		resp.StoreDir = st.Dir()
		if st.Degraded() {
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusWriter records the response code for access logging while
// passing Flush through to the underlying writer (the NDJSON stream
// depends on it).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// accessLog wraps the API with debug-level request logging; with the
// default nop logger it costs one Enabled check per request.
func (s *Server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.log.Enabled(r.Context(), slog.LevelDebug) {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.log.Debug("http request", "method", r.Method, "path", r.URL.Path,
			"status", sw.code, "duration_seconds", time.Since(start).Seconds())
	})
}

// httpError is the uniform error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(io.LimitReader(r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	res, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Tell the client when retrying is worth it: the estimated queue
		// drain time. Integer seconds, as RFC 9110 specifies.
		w.Header().Set("Retry-After",
			strconv.Itoa(int(math.Ceil(s.RetryAfter().Seconds()))))
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := submitResponse{
		JobStatus:   res.Job.status(),
		CacheHitNow: res.CacheHit,
		DedupedNow:  res.Deduped,
	}
	code := http.StatusAccepted
	if res.CacheHit || res.Deduped {
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// jobFor resolves {id} or answers 404.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return nil, false
	}
	return j, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	data, ok := j.Report()
	if !ok {
		st := j.State()
		if st == StateFailed || st == StateCancelled {
			httpError(w, http.StatusConflict, "job %s is %s; no report", j.ID(), st)
		} else {
			httpError(w, http.StatusConflict, "job %s is %s; report not ready (stream /jobs/%s/events or retry)", j.ID(), st, j.ID())
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Simd-Job", j.ID())
	w.Header().Set("X-Simd-Hash", j.Hash())
	w.Write(data)
}

// progressLine is one NDJSON stream record: the per-round update with a
// discriminator. The stream's final record is an endLine instead.
type progressLine struct {
	Type string `json:"type"` // "progress"
	metrics.ProgressUpdate
}

// endLine closes an NDJSON stream with the job's terminal state.
type endLine struct {
	Type  string `json:"type"` // "end"
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	ctx := r.Context()
	cursor := 0
	for {
		events, state, done := j.WaitEvents(ctx, cursor)
		for _, u := range events {
			enc.Encode(progressLine{Type: "progress", ProgressUpdate: u})
		}
		cursor += len(events)
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			enc.Encode(endLine{Type: "end", State: state, Error: j.Err()})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		if ctx.Err() != nil {
			return // client went away
		}
	}
}

// handleFlight serves the job's flight recorder: the bounded ring of
// its most recent per-GVT-round snapshots plus terminal state, so a
// failed or cancelled job can be post-mortemed without re-running it.
// Unlike /report it answers in every lifecycle state.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, j.Flight())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	if err := s.Cancel(j.ID()); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
