package simd

import (
	"encoding/json"
	"strings"
	"testing"
)

func mustHash(t *testing.T, s JobSpec) string {
	t.Helper()
	h, err := s.Hash()
	if err != nil {
		t.Fatalf("Hash(%+v): %v", s, err)
	}
	return h
}

// TestHashIgnoresJSONFieldOrder decodes two documents whose fields are
// permuted and expects identical content addresses.
func TestHashIgnoresJSONFieldOrder(t *testing.T) {
	a := `{"model":"phold","nodes":2,"gvt":"mattern","seed":7,"end_time":10}`
	b := `{"seed":7,"end_time":10,"gvt":"mattern","model":"phold","nodes":2}`
	var sa, sb JobSpec
	if err := json.Unmarshal([]byte(a), &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b), &sb); err != nil {
		t.Fatal(err)
	}
	if mustHash(t, sa) != mustHash(t, sb) {
		t.Fatal("field order changed the hash")
	}
}

// TestHashOmittedEqualsExplicitDefaults is the canonicalization
// contract: stating a default is the same as omitting it.
func TestHashOmittedEqualsExplicitDefaults(t *testing.T) {
	minimal := JobSpec{}
	explicit := JobSpec{
		Model: "phold", Scenario: "comp",
		Nodes: 2, WorkersPerNode: 4, LPsPerWorker: 8,
		GVT: "mattern", Comm: "dedicated", GVTInterval: 4, CAThreshold: 0.80,
		EndTime: 20, Seed: 1, Queue: "heap", Pool: "on",
		BatchSize: 16, CheckpointInterval: 1, MaxUncommitted: 64,
	}
	if mustHash(t, minimal) != mustHash(t, explicit) {
		t.Fatal("explicit defaults hash differently from omitted fields")
	}
}

// TestHashAliasesCollapse: alias spellings are not semantic.
func TestHashAliasesCollapse(t *testing.T) {
	base := JobSpec{GVT: "ca-gvt"}
	for _, alias := range []string{"ca", "cagvt", "CA-GVT", " ca "} {
		if mustHash(t, base) != mustHash(t, JobSpec{GVT: alias}) {
			t.Fatalf("alias %q hashes differently from ca-gvt", alias)
		}
	}
	if mustHash(t, JobSpec{Faults: "none"}) != mustHash(t, JobSpec{}) {
		t.Fatal(`faults "none" is not the fault-free default`)
	}
	if mustHash(t, JobSpec{Balance: "static"}) != mustHash(t, JobSpec{}) ||
		mustHash(t, JobSpec{Balance: "none"}) != mustHash(t, JobSpec{}) {
		t.Fatal(`balance "static"/"none" is not the static default`)
	}
	if mustHash(t, JobSpec{Model: "PHOLD"}) != mustHash(t, JobSpec{}) {
		t.Fatal("model is case-sensitive")
	}
}

// TestHashClearsInertFields: fields without meaning for the chosen
// model or algorithm must not split the address space.
func TestHashClearsInertFields(t *testing.T) {
	if mustHash(t, JobSpec{Model: "pcs"}) != mustHash(t, JobSpec{Model: "pcs", Scenario: "comm"}) {
		t.Fatal("scenario split the hash for a non-phold model")
	}
	if mustHash(t, JobSpec{GVT: "mattern", CAThreshold: 0.5}) != mustHash(t, JobSpec{GVT: "mattern"}) {
		t.Fatal("ca_threshold split the hash for a non-CA algorithm")
	}
	if mustHash(t, JobSpec{Scenario: "comp", MixComp: 30}) != mustHash(t, JobSpec{Scenario: "comp"}) {
		t.Fatal("mix fractions split the hash outside the mixed scenario")
	}
}

// TestHashChangesWithEverySemanticField mutates each semantic field and
// expects a fresh address every time.
func TestHashChangesWithEverySemanticField(t *testing.T) {
	base := JobSpec{Scenario: "mixed"} // mixed so the mix fields are live
	seen := map[string]string{"base": mustHash(t, base)}
	add := func(name string, s JobSpec) {
		h := mustHash(t, s)
		for prev, ph := range seen {
			if ph == h {
				t.Fatalf("mutation %q collides with %q", name, prev)
			}
		}
		seen[name] = h
	}
	add("model", JobSpec{Model: "pcs"})
	add("scenario", JobSpec{Scenario: "comm"})
	add("mix_comp", JobSpec{Scenario: "mixed", MixComp: 20})
	add("mix_comm", JobSpec{Scenario: "mixed", MixComm: 20})
	add("nodes", JobSpec{Scenario: "mixed", Nodes: 4})
	add("workers", JobSpec{Scenario: "mixed", WorkersPerNode: 2})
	add("lps", JobSpec{Scenario: "mixed", LPsPerWorker: 16})
	add("gvt", JobSpec{Scenario: "mixed", GVT: "barrier"})
	add("comm", JobSpec{Scenario: "mixed", Comm: "shared"})
	add("interval", JobSpec{Scenario: "mixed", GVTInterval: 8})
	add("threshold", JobSpec{Scenario: "mixed", GVT: "ca"})
	add("threshold2", JobSpec{Scenario: "mixed", GVT: "ca", CAThreshold: 0.5})
	add("end", JobSpec{Scenario: "mixed", EndTime: 30})
	add("seed", JobSpec{Scenario: "mixed", Seed: 99})
	add("queue", JobSpec{Scenario: "mixed", Queue: "calendar"})
	add("pool", JobSpec{Scenario: "mixed", Pool: "off"})
	add("batch", JobSpec{Scenario: "mixed", BatchSize: 8})
	add("checkpoint", JobSpec{Scenario: "mixed", CheckpointInterval: 4})
	add("uncommitted", JobSpec{Scenario: "mixed", MaxUncommitted: 128})
	add("faults", JobSpec{Scenario: "mixed", Faults: "drop"})
	add("balance", JobSpec{Scenario: "mixed", Balance: "greedy"})
	add("watchdog", JobSpec{Scenario: "mixed", WatchdogMicros: 500})
}

// TestCanonicalIdempotent: canonicalizing twice is a fixed point.
func TestCanonicalIdempotent(t *testing.T) {
	specs := []JobSpec{
		{},
		{Model: "EPIDEMIC", GVT: "CA", Faults: "NONE", Balance: "Static"},
		{Scenario: "mixed", MaxUncommitted: -5},
		{Engine: "Conservative", Sync: "CMB"},
		{Model: "tandem", Sync: "window"},
	}
	for _, s := range specs {
		once, err := s.Canonical()
		if err != nil {
			t.Fatalf("Canonical(%+v): %v", s, err)
		}
		twice, err := once.Canonical()
		if err != nil {
			t.Fatalf("Canonical^2(%+v): %v", s, err)
		}
		if once != twice {
			t.Fatalf("not idempotent:\nonce  %+v\ntwice %+v", once, twice)
		}
	}
}

// TestCanonicalRejects enumerates invalid specs.
func TestCanonicalRejects(t *testing.T) {
	bad := map[string]JobSpec{
		"model":          {Model: "chess"},
		"scenario":       {Scenario: "storm"},
		"gvt":            {GVT: "quantum"},
		"comm":           {Comm: "telepathy"},
		"queue":          {Queue: "stack"},
		"pool":           {Pool: "maybe"},
		"faults":         {Faults: "asteroid"},
		"balance":        {Balance: "chaotic"},
		"interval":       {GVTInterval: 1},
		"threshold":      {GVT: "ca", CAThreshold: 1.5},
		"mix-sum":        {Scenario: "mixed", MixComp: 60, MixComm: 60},
		"neg-end":        {EndTime: -1},
		"end-cap":        {EndTime: 1e9},
		"node-cap":       {Nodes: 1000},
		"lp-cap":         {Nodes: 64, WorkersPerNode: 64, LPsPerWorker: 4096},
		"neg-watchdog":   {WatchdogMicros: -1},
		"neg-nodes":      {Nodes: -2},
		"neg-batch":      {BatchSize: -1},
		"neg-interval":   {GVTInterval: -3},
		"neg-checkpt":    {CheckpointInterval: -2},
		"mixed-nonsense": {Scenario: "mixed", MixComp: -1, MixComm: 5},
	}
	for name, s := range bad {
		if _, err := s.Canonical(); err == nil {
			t.Errorf("%s: invalid spec %+v accepted", name, s)
		}
		if _, err := s.Hash(); err == nil {
			t.Errorf("%s: invalid spec %+v hashed", name, s)
		}
	}
}

// TestBuildConfigAllModels: every model builds a valid engine config.
func TestBuildConfigAllModels(t *testing.T) {
	for _, model := range []string{"phold", "pcs", "epidemic", "tandem"} {
		spec := JobSpec{Model: model, Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 8, EndTime: 5}
		cfg, err := spec.BuildConfig()
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if cfg.Model == nil {
			t.Fatalf("%s: nil model factory", model)
		}
		if cfg.Topology.TotalLPs() != 32 {
			t.Fatalf("%s: topology %+v", model, cfg.Topology)
		}
	}
	// Scenario and fault plumbing.
	spec := JobSpec{Scenario: "mixed", Faults: "drop", WatchdogMicros: 100}
	cfg, err := spec.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Faults == nil || cfg.FaultLabel != "drop" {
		t.Fatal("fault plan not installed")
	}
	if cfg.WatchdogTimeout <= 0 {
		t.Fatal("watchdog timeout not installed")
	}
	if _, err := (JobSpec{Model: "warp10"}).BuildConfig(); err == nil {
		t.Fatal("invalid spec built a config")
	}
}

// TestEngineCanonicalization pins the engine/sync folding rules: naming
// a conservative protocol implies the engine, aliases collapse, and the
// model's declared lookahead is the default bound.
func TestEngineCanonicalization(t *testing.T) {
	c, err := (JobSpec{Sync: "window"}).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c.Engine != "conservative" || c.Sync != "window" {
		t.Fatalf("sync window folded to engine=%q sync=%q", c.Engine, c.Sync)
	}
	c, err = (JobSpec{Engine: "conservative"}).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c.Sync != "nullmsg" {
		t.Fatalf("default sync %q, want nullmsg", c.Sync)
	}
	if c.Lookahead != 0.1 { // phold's declared lookahead
		t.Fatalf("default lookahead %v, want 0.1", c.Lookahead)
	}
	if c.GVT != "" || c.GVTInterval != 0 || c.CAThreshold != 0 ||
		c.Pool != "" || c.CheckpointInterval != 0 || c.MaxUncommitted != 0 {
		t.Fatalf("rollback-machinery fields not cleared: %+v", c)
	}
	for model, la := range map[string]float64{"pcs": 0.01, "epidemic": 0.2, "tandem": 0.05} {
		c, err := (JobSpec{Engine: "conservative", Model: model}).Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if c.Lookahead != la {
			t.Errorf("%s default lookahead %v, want %v", model, c.Lookahead, la)
		}
	}
	if mustHash(t, JobSpec{Sync: "cmb"}) != mustHash(t, JobSpec{Engine: "conservative", Sync: "nullmsg"}) {
		t.Fatal(`alias "cmb" hashes differently from nullmsg`)
	}
	if mustHash(t, JobSpec{Engine: "timewarp"}) != mustHash(t, JobSpec{}) {
		t.Fatal("explicit timewarp hashes differently from the default")
	}
	if mustHash(t, JobSpec{Engine: "conservative", Lookahead: 0.1}) != mustHash(t, JobSpec{Engine: "conservative"}) {
		t.Fatal("stating the default lookahead split the hash")
	}
	if mustHash(t, JobSpec{Engine: "conservative", Pool: "", CheckpointInterval: 0}) !=
		mustHash(t, JobSpec{Engine: "conservative"}) {
		t.Fatal("inert rollback knobs split the conservative hash")
	}
}

// TestConservativeTwinHashesDiffer is the content-address contract for
// the cross-paradigm grid: a conservative spec and its Time Warp twin
// are distinct results, as are the two conservative protocols and any
// lookahead change.
func TestConservativeTwinHashesDiffer(t *testing.T) {
	tw := mustHash(t, JobSpec{})
	nm := mustHash(t, JobSpec{Engine: "conservative"})
	wd := mustHash(t, JobSpec{Engine: "conservative", Sync: "window"})
	la := mustHash(t, JobSpec{Engine: "conservative", Lookahead: 0.05})
	seen := map[string]string{"timewarp": tw, "nullmsg": nm, "window": wd, "lookahead": la}
	for a, ha := range seen {
		for b, hb := range seen {
			if a != b && ha == hb {
				t.Fatalf("%s and %s share a content address", a, b)
			}
		}
	}
}

// TestEngineRejects enumerates invalid engine/sync combinations.
func TestEngineRejects(t *testing.T) {
	bad := map[string]JobSpec{
		"engine":        {Engine: "psychic"},
		"sync":          {Engine: "conservative", Sync: "vibes"},
		"tw-sync":       {Engine: "timewarp", Sync: "nullmsg"},
		"tw-lookahead":  {Lookahead: 0.5},
		"neg-lookahead": {Engine: "conservative", Lookahead: -1},
		"cons-comm":     {Engine: "conservative", Comm: "shared"},
		"cons-faults":   {Engine: "conservative", Faults: "drop"},
		"cons-balance":  {Engine: "conservative", Balance: "greedy"},
		"cons-watchdog": {Engine: "conservative", WatchdogMicros: 100},
	}
	for name, s := range bad {
		if _, err := s.Canonical(); err == nil {
			t.Errorf("%s: invalid spec %+v accepted", name, s)
		}
	}
}

// TestBuildConservativeConfig: every model builds a valid conservative
// config, and the two Build entry points refuse the other engine's spec.
func TestBuildConservativeConfig(t *testing.T) {
	for _, model := range []string{"phold", "pcs", "epidemic", "tandem"} {
		spec := JobSpec{Engine: "conservative", Model: model, Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 8, EndTime: 5}
		cfg, err := spec.BuildConservativeConfig()
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if cfg.Model == nil || cfg.Lookahead <= 0 {
			t.Fatalf("%s: config %+v", model, cfg)
		}
	}
	if _, err := (JobSpec{Engine: "conservative"}).BuildConfig(); err == nil {
		t.Fatal("BuildConfig accepted a conservative spec")
	}
	if _, err := (JobSpec{}).BuildConservativeConfig(); err == nil {
		t.Fatal("BuildConservativeConfig accepted a timewarp spec")
	}
}

// TestHashIsHex: the content address is a full SHA-256 hex string.
func TestHashIsHex(t *testing.T) {
	h := mustHash(t, JobSpec{})
	if len(h) != 64 || strings.Trim(h, "0123456789abcdef") != "" {
		t.Fatalf("hash %q is not 64 hex chars", h)
	}
}
