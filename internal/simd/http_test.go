package simd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func newTestService(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, submitResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, out
}

func getBody(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// waitDone polls the status endpoint until the job settles.
func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, body, _ := getBody(t, ts.URL+"/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d %s", id, code, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if terminal(st.State) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never settled", id)
	return JobStatus{}
}

const fastBody = `{"nodes":2,"workers_per_node":2,"lps_per_worker":4,"end_time":5}`

// TestHTTPSubmitReportCacheHit is the wire-level acceptance flow:
// submit, fetch the report, submit again, observe a byte-identical
// cached response with no second execution.
func TestHTTPSubmitReportCacheHit(t *testing.T) {
	s, ts := newTestService(t, Options{Workers: 2})

	resp, sub := postJob(t, ts, fastBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d, want 202", resp.StatusCode)
	}
	if sub.CacheHitNow || sub.DedupedNow || sub.State == "" {
		t.Fatalf("first submit response %+v", sub)
	}
	st := waitDone(t, ts, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job settled as %s (%s)", st.State, st.Error)
	}
	if st.Rounds == 0 || st.StartedAt == nil || st.FinishedAt == nil {
		t.Fatalf("status incomplete: %+v", st)
	}

	code, report1, hdr := getBody(t, ts.URL+"/jobs/"+sub.ID+"/report")
	if code != http.StatusOK {
		t.Fatalf("report: %d %s", code, report1)
	}
	if hdr.Get("X-Simd-Job") != sub.ID || hdr.Get("X-Simd-Hash") != sub.Hash {
		t.Fatalf("report headers %v", hdr)
	}
	if !json.Valid(report1) {
		t.Fatal("report is not valid JSON")
	}

	resp2, sub2 := postJob(t, ts, fastBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second submit: %d, want 200 (cache hit)", resp2.StatusCode)
	}
	if !sub2.CacheHitNow || sub2.State != StateDone {
		t.Fatalf("second submit response %+v", sub2)
	}
	if sub2.Hash != sub.Hash {
		t.Fatal("same body hashed differently")
	}
	code, report2, _ := getBody(t, ts.URL+"/jobs/"+sub2.ID+"/report")
	if code != http.StatusOK || !bytes.Equal(report1, report2) {
		t.Fatalf("cached report differs (code %d)", code)
	}
	if got := s.Executions(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
}

// TestHTTPEventsStream: the NDJSON stream replays every progress line
// and terminates with an end record.
func TestHTTPEventsStream(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})
	resp, sub := postJob(t, ts, fastBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	stream, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var progress int
	var lastRound int64
	sawEnd := false
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		var line struct {
			Type  string  `json:"type"`
			Round int64   `json:"round"`
			GVT   float64 `json:"gvt"`
			State State   `json:"state"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch line.Type {
		case "progress":
			if line.Round <= lastRound {
				t.Fatalf("round %d after %d", line.Round, lastRound)
			}
			lastRound = line.Round
			progress++
		case "end":
			sawEnd = true
			if line.State != StateDone {
				t.Fatalf("stream ended with state %s", line.State)
			}
		default:
			t.Fatalf("unknown line type %q", line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawEnd || progress == 0 {
		t.Fatalf("stream: %d progress lines, end=%v", progress, sawEnd)
	}
	st := waitDone(t, ts, sub.ID)
	if progress != st.Rounds {
		t.Fatalf("streamed %d of %d rounds", progress, st.Rounds)
	}
}

// TestHTTPCancel: DELETE cancels a running job; a second DELETE is 409.
func TestHTTPCancel(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})
	slow := `{"nodes":2,"workers_per_node":2,"lps_per_worker":8,"end_time":50000}`
	resp, sub := postJob(t, ts, slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	// Wait until mid-run so the cancel exercises the kernel unwind.
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body, _ := getBody(t, ts.URL+"/jobs/"+sub.ID)
		var st JobStatus
		if code != http.StatusOK || json.Unmarshal(body, &st) != nil {
			t.Fatalf("status: %d %s", code, body)
		}
		if st.Rounds > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+sub.ID, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", del.StatusCode)
	}
	st := waitDone(t, ts, sub.ID)
	if st.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", st.State)
	}
	// Report on a cancelled job is a conflict, as is cancelling again.
	code, _, _ := getBody(t, ts.URL+"/jobs/"+sub.ID+"/report")
	if code != http.StatusConflict {
		t.Fatalf("report of cancelled job: %d, want 409", code)
	}
	del2, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	del2.Body.Close()
	if del2.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel: %d, want 409", del2.StatusCode)
	}
}

// TestHTTPRejections: bad specs 400, unknown jobs 404, full queue 429.
func TestHTTPRejections(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1, QueueDepth: 1})

	for name, body := range map[string]string{
		"invalid-json":  `{"model":`,
		"unknown-field": `{"model":"phold","typo_field":3}`,
		"bad-model":     `{"model":"chess"}`,
		"bad-value":     `{"end_time":-4}`,
	} {
		resp, _ := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", name, resp.StatusCode)
		}
	}

	if code, _, _ := getBody(t, ts.URL+"/jobs/j424242"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
	if code, _, _ := getBody(t, ts.URL+"/jobs/j424242/report"); code != http.StatusNotFound {
		t.Errorf("unknown report: %d, want 404", code)
	}
	if code, _, _ := getBody(t, ts.URL+"/jobs/j424242/events"); code != http.StatusNotFound {
		t.Errorf("unknown events: %d, want 404", code)
	}

	// Occupy the worker, fill the single queue slot, then overflow.
	slow := `{"nodes":2,"workers_per_node":2,"lps_per_worker":8,"end_time":50000}`
	resp, sub := postJob(t, ts, slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body, _ := getBody(t, ts.URL+"/jobs/"+sub.ID)
		var st JobStatus
		if code != http.StatusOK || json.Unmarshal(body, &st) != nil {
			t.Fatalf("status: %d %s", code, body)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, _ := postJob(t, ts, fastBody); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue-filling submit: %d", resp.StatusCode)
	}
	resp429, _ := postJob(t, ts, `{"nodes":2,"workers_per_node":2,"lps_per_worker":4,"end_time":5,"seed":77}`)
	if resp429.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %d, want 429", resp429.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+sub.ID, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	waitDone(t, ts, sub.ID)
}

// TestHTTPListStatsHealth covers the read-only endpoints.
func TestHTTPListStatsHealth(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 2})
	for i := 0; i < 2; i++ {
		resp, sub := postJob(t, ts, fmt.Sprintf(`{"nodes":2,"workers_per_node":2,"lps_per_worker":4,"end_time":5,"seed":%d}`, 300+i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		waitDone(t, ts, sub.ID)
	}

	code, body, _ := getBody(t, ts.URL+"/jobs")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil || len(list.Jobs) != 2 {
		t.Fatalf("list %s: %v", body, err)
	}

	code, body, _ = getBody(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 2 || st.Executions != 2 || st.ByState[string(StateDone)] != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Cache.Entries != 2 {
		t.Fatalf("cache stats %+v", st.Cache)
	}

	code, body, _ = getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}
}

// TestHTTPRetryAfter: a 429 carries a Retry-After hint derived from the
// queue depth and the mean run duration, so routers and clients can
// back off intelligently instead of hammering a saturated daemon.
func TestHTTPRetryAfter(t *testing.T) {
	s, ts := newTestService(t, Options{Workers: 1, QueueDepth: 1})

	// Occupy the single worker with an effectively-endless run, then
	// fill the single queue slot.
	slow := `{"nodes":2,"workers_per_node":2,"lps_per_worker":8,"end_time":50000,"seed":91}`
	resp, blocker := postJob(t, ts, slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body, _ := getBody(t, ts.URL+"/jobs/"+blocker.ID)
		var st JobStatus
		if code != http.StatusOK || json.Unmarshal(body, &st) != nil {
			t.Fatalf("status: %d %s", code, body)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, _ := postJob(t, ts, `{"nodes":2,"workers_per_node":2,"lps_per_worker":4,"end_time":5,"seed":92}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue filler: %d", resp.StatusCode)
	}

	resp429, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"nodes":2,"workers_per_node":2,"lps_per_worker":4,"end_time":5,"seed":93}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp429.Body.Close()
	if resp429.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %d, want 429", resp429.StatusCode)
	}
	ra := resp429.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not integer seconds: %v", ra, err)
	}
	if secs < 1 || secs > 120 {
		t.Fatalf("Retry-After %d outside the [1s, 2m] clamp", secs)
	}
	// The estimate itself must agree with the header's order of magnitude.
	if est := s.RetryAfter(); est < time.Second || est > 2*time.Minute {
		t.Fatalf("RetryAfter() = %s outside the clamp", est)
	}

	// Unblock the worker so teardown doesn't wait out virtual year 50000.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+blocker.ID, nil)
	if del, err := http.DefaultClient.Do(req); err == nil {
		del.Body.Close()
	}
	waitDone(t, ts, blocker.ID)
}

// TestHTTPNodeIdentity: a configured NodeID is echoed by /healthz and
// /stats so cluster-aggregated stats can attribute counts to members;
// without one the fields are omitted.
func TestHTTPNodeIdentity(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1, NodeID: "n7"})

	code, body, _ := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var hz struct {
		NodeID string `json:"node_id"`
	}
	if err := json.Unmarshal(body, &hz); err != nil || hz.NodeID != "n7" {
		t.Fatalf("healthz node_id %q (err %v), want n7", hz.NodeID, err)
	}

	code, body, _ = getBody(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil || st.NodeID != "n7" {
		t.Fatalf("stats node_id %q (err %v), want n7", st.NodeID, err)
	}

	_, anon := newTestService(t, Options{Workers: 1})
	_, body, _ = getBody(t, anon.URL+"/stats")
	if strings.Contains(string(body), "node_id") {
		t.Fatalf("anonymous daemon leaked a node_id: %s", body)
	}
}
