package simd

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(1 << 10)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("alpha"))
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("alpha")) {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 5 || st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCacheLRUEviction: the least-recently-used entry goes first, and a
// Get refreshes recency.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(30) // room for three 10-byte entries
	pay := func(i int) []byte { return []byte(fmt.Sprintf("payload-%02d", i)) }
	c.Put("a", pay(0))
	c.Put("b", pay(1))
	c.Put("c", pay(2))
	c.Get("a") // refresh: b is now LRU
	c.Put("d", pay(3))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted out of LRU order", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 || st.Bytes != 30 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCacheBudget: total bytes never exceed the budget; an entry larger
// than the whole budget is dropped rather than stored.
func TestCacheBudget(t *testing.T) {
	c := NewCache(25)
	c.Put("a", bytes.Repeat([]byte("x"), 10))
	c.Put("b", bytes.Repeat([]byte("y"), 10))
	c.Put("big", bytes.Repeat([]byte("z"), 26)) // over budget: dropped
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized entry was stored")
	}
	if st := c.Stats(); st.Bytes > 25 || st.Entries != 2 {
		t.Fatalf("budget exceeded: %+v", st)
	}
	c.Put("c", bytes.Repeat([]byte("w"), 20)) // forces both a and b out
	if st := c.Stats(); st.Bytes != 20 || st.Entries != 1 || st.Evictions != 2 {
		t.Fatalf("stats after squeeze: %+v", st)
	}
}

// TestCacheRefreshExistingKey: re-Putting a content-addressed key keeps
// one copy and refreshes recency.
func TestCacheRefreshExistingKey(t *testing.T) {
	c := NewCache(20)
	c.Put("a", bytes.Repeat([]byte("a"), 10))
	c.Put("b", bytes.Repeat([]byte("b"), 10))
	c.Put("a", bytes.Repeat([]byte("a"), 10)) // refresh: b is now LRU
	c.Put("c", bytes.Repeat([]byte("c"), 10))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted after a's refresh")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a lost")
	}
	if st := c.Stats(); st.Entries != 2 || st.Bytes != 20 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCacheDisabled: a non-positive budget stores nothing.
func TestCacheDisabled(t *testing.T) {
	for _, budget := range []int64{0, -1} {
		c := NewCache(budget)
		c.Put("a", []byte("data"))
		if _, ok := c.Get("a"); ok {
			t.Fatalf("budget %d stored data", budget)
		}
		if c.Len() != 0 {
			t.Fatalf("budget %d: Len() = %d", budget, c.Len())
		}
	}
}
