package simd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// openStore opens a persistent store for a test server.
func openStore(t *testing.T, opts store.Options) *store.Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = filepath.Join(t.TempDir(), "store")
	}
	st, err := store.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func openJournal(t *testing.T, path string) *store.Journal {
	t.Helper()
	jl, err := store.OpenJournal(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jl.Close() })
	return jl
}

// TestWarmRestartStoreHit: a result computed by one server instance is
// served byte-for-byte by a second instance sharing the store directory,
// with zero re-execution — the restart durability contract.
func TestWarmRestartStoreHit(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	spec := fastSpec(11)

	a := NewServer(Options{Workers: 2, Store: openStore(t, store.Options{Dir: dir})})
	res, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Job.Wait(waitCtx(t)); st != StateDone {
		t.Fatalf("first run: %s (%s)", st, res.Job.Err())
	}
	want, _ := res.Job.Report()
	a.Close()

	b := NewServer(Options{Workers: 2, Store: openStore(t, store.Options{Dir: dir})})
	defer b.Close()
	res2, err := b.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.StoreHit || !res2.CacheHit || !res2.Job.StoreHit() {
		t.Fatalf("restarted server missed the store: %+v", res2)
	}
	got, ok := res2.Job.Report()
	if !ok || string(got) != string(want) {
		t.Fatal("store hit is not byte-identical to the original report")
	}
	if b.Executions() != 0 {
		t.Fatalf("executions = %d on a pure store hit", b.Executions())
	}
	st := b.Stats()
	if st.Store == nil || st.Store.Hits != 1 {
		t.Fatalf("store stats missing the hit: %+v", st.Store)
	}

	// The hit is memoized: a third submission of the same spec is served
	// from memory, not the disk again.
	res3, err := b.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.CacheHit || res3.StoreHit {
		t.Fatalf("second hit should come from memory: %+v", res3)
	}
}

// TestJournalRecovery: begins without ends — the crash shape — replay on
// Recover. A job whose result reached the store comes back as an instant
// store hit; a genuinely interrupted job re-executes. Both stop
// replaying on the next restart.
func TestJournalRecovery(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "store")
	jpath := filepath.Join(base, "journal.ndjson")

	// A previous life computes one result and journals two admissions the
	// "crash" never ends: one completed (result in the store), one not.
	done, interrupted := fastSpec(21), fastSpec(22)
	a := NewServer(Options{Workers: 2, Store: openStore(t, store.Options{Dir: dir})})
	res, err := a.Submit(done)
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Job.Wait(waitCtx(t)); st != StateDone {
		t.Fatalf("seed run: %s", st)
	}
	a.Close()

	jl := openJournal(t, jpath)
	for _, sp := range []JobSpec{done, interrupted} {
		canon, err := sp.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		hash, err := canon.Hash()
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := json.Marshal(canon)
		if err := jl.Begin(hash, raw); err != nil {
			t.Fatal(err)
		}
	}
	jl.Close()

	// Warm restart: reopen journal + store, recover.
	jl2 := openJournal(t, jpath)
	b := NewServer(Options{Workers: 2,
		Store:   openStore(t, store.Options{Dir: dir}),
		Journal: jl2,
	})
	if n := b.Recover(); n != 2 {
		t.Fatalf("recovered %d jobs, want 2", n)
	}
	for _, j := range b.Jobs() {
		if st := j.Wait(waitCtx(t)); st != StateDone {
			t.Fatalf("recovered job %s: %s (%s)", j.ID(), st, j.Err())
		}
	}
	// Only the interrupted job re-ran.
	if b.Executions() != 1 {
		t.Fatalf("executions = %d, want 1 (completed job must be a store hit)", b.Executions())
	}
	if b.Stats().Recovered != 2 {
		t.Fatalf("stats.recovered = %d", b.Stats().Recovered)
	}
	b.Close()
	jl2.Close()

	// Third life: everything settled, nothing pending.
	jl3 := openJournal(t, jpath)
	if p := jl3.Pending(); len(p) != 0 {
		t.Fatalf("journal still pending after recovery: %d entries", len(p))
	}
}

// TestJobDeadlineExceeded: a job over its wall-clock budget fails (it is
// not a cancellation) and the failure says why.
func TestJobDeadlineExceeded(t *testing.T) {
	s := NewServer(Options{Workers: 1, JobDeadline: 30 * time.Millisecond})
	defer s.Close()
	res, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Job.Wait(waitCtx(t)); st != StateFailed {
		t.Fatalf("state = %s, want failed", st)
	}
	if !strings.Contains(res.Job.Err(), "deadline") {
		t.Fatalf("error %q does not mention the deadline", res.Job.Err())
	}
	if s.Stats().DeadlineExceeded != 1 {
		t.Fatalf("deadline counter = %d", s.Stats().DeadlineExceeded)
	}

	// A job that finishes inside the budget is untouched. Use a roomy
	// budget on a separate server: the point is that a deadline which is
	// not hit changes nothing, and a tight one would flake under the race
	// detector's slowdown.
	s2 := NewServer(Options{Workers: 1, JobDeadline: time.Minute})
	defer s2.Close()
	res2, err := s2.Submit(fastSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	if st := res2.Job.Wait(waitCtx(t)); st != StateDone {
		t.Fatalf("fast job under a deadline: %s (%s)", st, res2.Job.Err())
	}
	if s2.Stats().DeadlineExceeded != 0 {
		t.Fatalf("unhit deadline counted: %d", s2.Stats().DeadlineExceeded)
	}
}

// TestPanicIsolation: an engine panic fails its own job — stack recorded
// for the flight recorder — and the worker pool keeps serving.
func TestPanicIsolation(t *testing.T) {
	poison := fastSpec(41)
	testInjectPanic = func(spec JobSpec) {
		if spec.Seed == poison.Seed {
			panic("injected kernel bug")
		}
	}
	defer func() { testInjectPanic = nil }()

	s := NewServer(Options{Workers: 1})
	defer s.Close()
	res, err := s.Submit(poison)
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Job.Wait(waitCtx(t)); st != StateFailed {
		t.Fatalf("state = %s, want failed", st)
	}
	if !strings.Contains(res.Job.Err(), "engine panic") {
		t.Fatalf("error %q does not mention the panic", res.Job.Err())
	}
	fr := res.Job.Flight()
	if !strings.Contains(fr.PanicStack, "injected kernel bug") &&
		!strings.Contains(fr.PanicStack, "runEngine") {
		t.Fatalf("flight record has no usable panic stack:\n%s", fr.PanicStack)
	}
	if s.Stats().Panics != 1 {
		t.Fatalf("panic counter = %d", s.Stats().Panics)
	}

	// The single worker survived the panic.
	res2, err := s.Submit(fastSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	if st := res2.Job.Wait(waitCtx(t)); st != StateDone {
		t.Fatalf("job after a panic: %s (%s)", st, res2.Job.Err())
	}
}

// TestDegradedStillServes: when the store's disk breaks mid-flight the
// service keeps answering from memory and /healthz flips to "degraded";
// results flow again (sans durability) exactly as before.
func TestDegradedStillServes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st := openStore(t, store.Options{Dir: dir, FailThreshold: 2, ProbeEvery: 1 << 30})
	s := NewServer(Options{Workers: 2, Store: st})
	defer s.Close()

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if got := healthzStatus(t, srv.URL); got != "ok" {
		t.Fatalf("healthz before breakage: %q", got)
	}

	// Break the disk out from under the store: objects becomes a regular
	// file, so every shard mkdir and entry read fails with ENOTDIR —
	// infrastructure errors, not misses. (chmod tricks don't work when
	// the tests run as root; ENOTDIR fails for everyone.)
	if err := os.RemoveAll(filepath.Join(dir, "objects")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "objects"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	for seed := uint64(51); seed <= 53; seed++ {
		res, err := s.Submit(fastSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		if state := res.Job.Wait(waitCtx(t)); state != StateDone {
			t.Fatalf("job under store failure: %s (%s)", state, res.Job.Err())
		}
	}
	if !s.Degraded() {
		t.Fatal("server not degraded after persistent store failures")
	}
	if got := healthzStatus(t, srv.URL); got != "degraded" {
		t.Fatalf("healthz status = %q, want degraded", got)
	}

	// Degraded is bypass, not outage: identical resubmissions still hit
	// the in-memory cache.
	res, err := s.Submit(fastSpec(51))
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("memory cache stopped working in degraded mode")
	}
}

// healthzStatus fetches /healthz and returns its status field.
func healthzStatus(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.Status
}
