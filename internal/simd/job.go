package simd

import (
	"context"
	"sync"
	"time"

	"repro/internal/metrics"
)

// State is a job's lifecycle position. Transitions:
//
//	queued → running → done | failed | cancelled
//	queued → cancelled                      (cancelled before pickup)
//
// Cache hits are born done.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether a state is final.
func terminal(s State) bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one submitted simulation. All mutable state is guarded by mu;
// the progress history is append-only, so streamers hold snapshots
// safely while the run keeps appending.
type Job struct {
	id   string
	hash string
	spec JobSpec // canonical form

	mu       sync.Mutex
	cond     *sync.Cond
	state    State
	cacheHit bool
	storeHit bool  // the cache hit came from the persistent store
	deduped  int64 // additional submissions coalesced onto this job
	events   []metrics.ProgressUpdate
	flight   *flightRing // bounded tail of events, survives until retention evicts it
	report   []byte      // canonical report JSON, set in StateDone
	errMsg   string

	eng        cancellable // non-nil while the engine may still be cancelled
	cancelled  bool        // cancellation requested
	deadline   bool        // the wall-clock deadline fired; cancellation is a failure
	panicStack string      // recorded stack when the engine panicked

	submitted time.Time
	started   time.Time
	finished  time.Time
}

func newJob(id, hash string, spec JobSpec, flightRounds int) *Job {
	j := &Job{
		id: id, hash: hash, spec: spec, state: StateQueued,
		flight:    newFlightRing(flightRounds),
		submitted: time.Now(),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// ID returns the job's server-assigned identifier.
func (j *Job) ID() string { return j.id }

// Hash returns the spec's content address.
func (j *Job) Hash() string { return j.hash }

// Spec returns the canonical spec the job runs.
func (j *Job) Spec() JobSpec { return j.spec }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// CacheHit reports whether the job was served from the result cache
// without executing.
func (j *Job) CacheHit() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cacheHit
}

// StoreHit reports whether the job was served from the persistent store
// (a cache hit that survived a restart or came from a sibling daemon).
func (j *Job) StoreHit() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.storeHit
}

// Deduped returns how many identical submissions were coalesced onto
// this job after it was created.
func (j *Job) Deduped() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.deduped
}

// Err returns the failure message ("" unless StateFailed).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// Report returns the canonical report bytes; ok only in StateDone. The
// slice is shared and must not be modified.
func (j *Job) Report() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report, j.state == StateDone
}

// Rounds returns how many progress updates the run has emitted so far.
// The count survives history release: it reads the flight recorder's
// monotone total, not the (releasable) event slice.
func (j *Job) Rounds() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return int(j.flight.total)
}

// Wait blocks until the job reaches a terminal state or the context is
// done, and returns the final state.
func (j *Job) Wait(ctx context.Context) State {
	stop := context.AfterFunc(ctx, j.wake)
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for !terminal(j.state) && ctx.Err() == nil {
		j.cond.Wait()
	}
	return j.state
}

// WaitEvents blocks until progress beyond cursor exists, the job
// reaches a terminal state, or ctx is done. It returns the new events
// (which may be empty), the state observed, and whether that state is
// terminal. Callers advance cursor by len(events) between calls.
func (j *Job) WaitEvents(ctx context.Context, cursor int) ([]metrics.ProgressUpdate, State, bool) {
	stop := context.AfterFunc(ctx, j.wake)
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if len(j.events) > cursor {
			return j.events[cursor:len(j.events):len(j.events)], j.state, terminal(j.state)
		}
		if terminal(j.state) {
			return nil, j.state, true
		}
		if ctx.Err() != nil {
			return nil, j.state, false
		}
		j.cond.Wait()
	}
}

// wake broadcasts to blocked waiters (used for context cancellation).
func (j *Job) wake() {
	j.mu.Lock()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// publish appends one progress update; the engine calls it once per
// GVT round via the metrics recorder's OnProgress hook. The update
// lands in both the full stream history (for /events replays) and the
// bounded flight ring (for post-mortems after retention trims the
// history).
func (j *Job) publish(u metrics.ProgressUpdate) {
	j.mu.Lock()
	j.events = append(j.events, u)
	j.flight.push(u)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// releaseHistory frees the job's full event history and flight ring —
// flight retention calls it when the job ages out of the recently-
// finished window, bounding service memory. Identity, state, report
// bytes and round counts survive; an /events replay after release
// returns only the terminal record.
func (j *Job) releaseHistory() {
	j.mu.Lock()
	j.events = nil
	j.flight.release()
	j.mu.Unlock()
}

// beginRunning moves queued → running unless the job was cancelled
// while waiting; it reports whether the job should execute.
func (j *Job) beginRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued || j.cancelled {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// cancellable is the slice of an engine the job lifecycle needs: both
// the optimistic and the conservative engine satisfy it.
type cancellable interface{ Cancel() }

// attachEngine exposes a constructed engine to cancellation. If a
// cancel arrived between beginRunning and construction, the engine is
// cancelled immediately (the kernel honours pre-run cancellation).
func (j *Job) attachEngine(e cancellable) {
	j.mu.Lock()
	j.eng = e
	cancelled := j.cancelled
	j.mu.Unlock()
	if cancelled {
		e.Cancel()
	}
}

// requestCancel asks the job to stop. Queued jobs cancel immediately
// (the worker skips them at pickup); running jobs get their engine
// cancelled and settle when the kernel unwinds. It reports whether the
// request did anything (false: already terminal).
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	if terminal(j.state) {
		j.mu.Unlock()
		return false
	}
	j.cancelled = true
	var eng cancellable
	if j.state == StateQueued {
		j.state = StateCancelled
		j.finished = time.Now()
	} else {
		eng = j.eng // may be nil pre-attach; attachEngine re-checks
	}
	j.cond.Broadcast()
	j.mu.Unlock()
	if eng != nil {
		eng.Cancel()
	}
	return true
}

// markDeadlineExceeded flags the job as over its wall-clock budget and
// cancels its engine; execute turns the resulting ErrCancelled into a
// failure instead of a cancellation. It reports whether it acted (false
// once the job is already terminal).
func (j *Job) markDeadlineExceeded() bool {
	j.mu.Lock()
	if terminal(j.state) {
		j.mu.Unlock()
		return false
	}
	j.deadline = true
	j.cancelled = true
	eng := j.eng
	j.mu.Unlock()
	if eng != nil {
		eng.Cancel()
	}
	return true
}

// deadlineExceeded reports whether the wall-clock deadline fired.
func (j *Job) deadlineExceeded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.deadline
}

// setPanicStack records the stack of a recovered engine panic for the
// job's post-mortem record.
func (j *Job) setPanicStack(stack string) {
	j.mu.Lock()
	j.panicStack = stack
	j.mu.Unlock()
}

// PanicStack returns the recorded engine panic stack ("" unless the job
// failed by panic).
func (j *Job) PanicStack() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.panicStack
}

// finish records a terminal state. report is non-nil only for StateDone.
func (j *Job) finish(state State, report []byte, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.report = report
	j.errMsg = errMsg
	j.eng = nil
	j.finished = time.Now()
	j.cond.Broadcast()
	j.mu.Unlock()
}
