package simd

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// fastSpec is a job small enough to finish in milliseconds.
func fastSpec(seed uint64) JobSpec {
	return JobSpec{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 4, EndTime: 5, Seed: seed}
}

// slowSpec is a job long enough to still be running when the test acts
// on it; every test that submits one cancels it.
func slowSpec() JobSpec {
	return JobSpec{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 8, EndTime: 5e4}
}

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// waitRunning blocks until the job has emitted at least one progress
// round, which implies the engine is live mid-run.
func waitRunning(t *testing.T, j *Job) {
	t.Helper()
	events, state, done := j.WaitEvents(waitCtx(t), 0)
	if done || len(events) == 0 {
		t.Fatalf("job %s settled (%s) before producing progress", j.ID(), state)
	}
}

func checkNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutine leak: %d > baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
}

func TestSubmitRunReport(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := NewServer(Options{Workers: 2})
	res, err := s.Submit(fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit || res.Deduped {
		t.Fatalf("fresh submission flagged %+v", res)
	}
	if st := res.Job.Wait(waitCtx(t)); st != StateDone {
		t.Fatalf("state %s, err %q", st, res.Job.Err())
	}
	data, ok := res.Job.Report()
	if !ok || len(data) == 0 {
		t.Fatal("no report on a done job")
	}
	if res.Job.Rounds() == 0 {
		t.Fatal("no progress events recorded")
	}
	if got := s.Executions(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	s.Close()
	checkNoGoroutineLeak(t, baseline)
}

// TestCacheHit: the second submission of an identical spec is served
// byte-for-byte from the cache without executing.
func TestCacheHit(t *testing.T) {
	s := NewServer(Options{Workers: 2})
	defer s.Close()

	first, err := s.Submit(fastSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if st := first.Job.Wait(waitCtx(t)); st != StateDone {
		t.Fatalf("first run: %s (%s)", st, first.Job.Err())
	}
	second, err := s.Submit(fastSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || !second.Job.CacheHit() {
		t.Fatal("second submission was not a cache hit")
	}
	if second.Job.ID() == first.Job.ID() {
		t.Fatal("cache hit reused the first job's identity")
	}
	if second.Job.State() != StateDone {
		t.Fatal("cache-hit job not born done")
	}
	r1, _ := first.Job.Report()
	r2, _ := second.Job.Report()
	if !bytes.Equal(r1, r2) {
		t.Fatal("cached report differs from the executed one")
	}
	if got := s.Executions(); got != 1 {
		t.Fatalf("executions = %d, want 1 (cache hit must not execute)", got)
	}
	if st := s.Stats(); st.Cache.Hits != 1 {
		t.Fatalf("cache stats %+v", st.Cache)
	}
}

// TestDeterministicReportsWithoutCache: with the cache disabled, the
// same spec re-executes and still yields byte-identical reports — the
// property that makes content-addressed caching sound.
func TestDeterministicReportsWithoutCache(t *testing.T) {
	s := NewServer(Options{Workers: 2, CacheBytes: -1})
	defer s.Close()
	var reports [][]byte
	for i := 0; i < 2; i++ {
		res, err := s.Submit(fastSpec(3))
		if err != nil {
			t.Fatal(err)
		}
		if st := res.Job.Wait(waitCtx(t)); st != StateDone {
			t.Fatalf("run %d: %s (%s)", i, st, res.Job.Err())
		}
		if res.CacheHit {
			t.Fatal("cache hit with the cache disabled")
		}
		data, _ := res.Job.Report()
		reports = append(reports, data)
	}
	if got := s.Executions(); got != 2 {
		t.Fatalf("executions = %d, want 2", got)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Fatal("identical specs produced different report bytes")
	}
}

// TestConcurrentSubmitSameSpec: N racing submissions of one spec must
// execute the engine exactly once; every submitter still gets the
// result.
func TestConcurrentSubmitSameSpec(t *testing.T) {
	s := NewServer(Options{Workers: 4})
	defer s.Close()
	const n = 16
	results := make([]SubmitResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Submit(fastSpec(4))
		}(i)
	}
	wg.Wait()
	var want []byte
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if st := results[i].Job.Wait(waitCtx(t)); st != StateDone {
			t.Fatalf("submit %d: state %s (%s)", i, st, results[i].Job.Err())
		}
		data, ok := results[i].Job.Report()
		if !ok {
			t.Fatalf("submit %d: no report", i)
		}
		if want == nil {
			want = data
		} else if !bytes.Equal(want, data) {
			t.Fatalf("submit %d: report bytes diverge", i)
		}
	}
	if got := s.Executions(); got != 1 {
		t.Fatalf("executions = %d, want exactly 1 for %d identical submissions", got, n)
	}
}

// TestConcurrentSubmitDistinctSpecs: distinct specs never coalesce.
func TestConcurrentSubmitDistinctSpecs(t *testing.T) {
	s := NewServer(Options{Workers: 4})
	defer s.Close()
	const n = 6
	results := make([]SubmitResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Submit(fastSpec(uint64(100 + i)))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	hashes := make(map[string]bool)
	for i, res := range results {
		if res.Job == nil {
			t.Fatalf("submit %d lost", i)
		}
		if res.CacheHit || res.Deduped {
			t.Fatalf("distinct spec %d coalesced: %+v", i, res)
		}
		if st := res.Job.Wait(waitCtx(t)); st != StateDone {
			t.Fatalf("job %d: %s (%s)", i, st, res.Job.Err())
		}
		hashes[res.Job.Hash()] = true
	}
	if len(hashes) != n {
		t.Fatalf("%d distinct hashes for %d distinct specs", len(hashes), n)
	}
	if got := s.Executions(); got != n {
		t.Fatalf("executions = %d, want %d", got, n)
	}
}

// TestCancelMidRun: cancelling a running job settles it as cancelled,
// leaves no report, and caches nothing.
func TestCancelMidRun(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := NewServer(Options{Workers: 1})
	res, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, res.Job)
	if err := s.Cancel(res.Job.ID()); err != nil {
		t.Fatal(err)
	}
	if st := res.Job.Wait(waitCtx(t)); st != StateCancelled {
		t.Fatalf("state %s, want cancelled", st)
	}
	if _, ok := res.Job.Report(); ok {
		t.Fatal("cancelled job has a report")
	}
	if st := s.Stats(); st.Cache.Entries != 0 {
		t.Fatalf("cancelled run was cached: %+v", st.Cache)
	}
	// A second cancel of a settled job is an error.
	if err := s.Cancel(res.Job.ID()); !errors.Is(err, ErrFinished) {
		t.Fatalf("re-cancel: %v, want ErrFinished", err)
	}
	s.Close()
	checkNoGoroutineLeak(t, baseline)
}

// TestCancelQueued: a job cancelled while waiting never runs.
func TestCancelQueued(t *testing.T) {
	s := NewServer(Options{Workers: 1, QueueDepth: 4})
	defer s.Close()
	blocker, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, blocker.Job) // the only worker is now occupied
	queued, err := s.Submit(fastSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.Job.ID()); err != nil {
		t.Fatal(err)
	}
	if st := queued.Job.State(); st != StateCancelled {
		t.Fatalf("queued job state %s, want cancelled immediately", st)
	}
	if err := s.Cancel(blocker.Job.ID()); err != nil {
		t.Fatal(err)
	}
	blocker.Job.Wait(waitCtx(t))
	queued.Job.Wait(waitCtx(t))
	if got := s.Executions(); got != 1 {
		t.Fatalf("executions = %d; the cancelled-queued job must not run", got)
	}
}

// TestQueueFullRejection: with one worker occupied and the single queue
// slot filled, the next submission is rejected — and leaves no job
// record behind.
func TestQueueFullRejection(t *testing.T) {
	s := NewServer(Options{Workers: 1, QueueDepth: 1})
	defer s.Close()
	blocker, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, blocker.Job) // dequeued: the queue slot is free
	if _, err := s.Submit(fastSpec(6)); err != nil {
		t.Fatalf("queue-filling submit: %v", err)
	}
	_, err = s.Submit(fastSpec(7))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: %v, want ErrQueueFull", err)
	}
	st := s.Stats()
	if st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	if st.Jobs != 2 {
		t.Fatalf("jobs = %d; the rejected submission must leave no record", st.Jobs)
	}
	if err := s.Cancel(blocker.Job.ID()); err != nil {
		t.Fatal(err)
	}
	blocker.Job.Wait(waitCtx(t))
}

// TestCloseDrains: Close lets every admitted job settle, then refuses
// new work.
func TestCloseDrains(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := NewServer(Options{Workers: 2, QueueDepth: 16})
	var jobs []*Job
	for i := 0; i < 6; i++ {
		res, err := s.Submit(fastSpec(uint64(200 + i)))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, res.Job)
	}
	s.Close() // blocks until the queue drains
	for i, j := range jobs {
		if st := j.State(); st != StateDone {
			t.Fatalf("job %d: %s after drain (%s)", i, st, j.Err())
		}
	}
	if _, err := s.Submit(fastSpec(999)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	s.Close() // idempotent
	checkNoGoroutineLeak(t, baseline)
}

// TestWaitEventsStream: a streamer that joins late still sees the full
// history, then the terminal state.
func TestWaitEventsStream(t *testing.T) {
	s := NewServer(Options{Workers: 1})
	defer s.Close()
	res, err := s.Submit(fastSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	res.Job.Wait(waitCtx(t))

	ctx := waitCtx(t)
	cursor, rounds := 0, 0
	for {
		events, state, done := res.Job.WaitEvents(ctx, cursor)
		for _, u := range events {
			if int(u.Round) <= rounds {
				t.Fatalf("rounds not increasing: %d after %d", u.Round, rounds)
			}
			rounds = int(u.Round)
		}
		cursor += len(events)
		if done {
			if state != StateDone {
				t.Fatalf("terminal state %s", state)
			}
			break
		}
	}
	if cursor == 0 {
		t.Fatal("stream replayed no history")
	}
	if cursor != res.Job.Rounds() {
		t.Fatalf("streamed %d of %d rounds", cursor, res.Job.Rounds())
	}
}

// TestWaitEventsContextCancel: a streamer's context unblocks WaitEvents.
func TestWaitEventsContextCancel(t *testing.T) {
	s := NewServer(Options{Workers: 1})
	res, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, res.Job)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	// Drain until the context fires; must return rather than hang.
	cursor := 0
	for ctx.Err() == nil {
		events, _, done := res.Job.WaitEvents(ctx, cursor)
		cursor += len(events)
		if done {
			t.Fatal("slow job settled unexpectedly")
		}
	}
	if err := s.Cancel(res.Job.ID()); err != nil {
		t.Fatal(err)
	}
	res.Job.Wait(waitCtx(t))
	s.Close()
}

func TestJobLookup(t *testing.T) {
	s := NewServer(Options{Workers: 1})
	defer s.Close()
	res, err := s.Submit(fastSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Job(res.Job.ID())
	if err != nil || got != res.Job {
		t.Fatalf("Job(%s) = %v, %v", res.Job.ID(), got, err)
	}
	if _, err := s.Job("j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing job: %v, want ErrNotFound", err)
	}
	if err := s.Cancel("j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel missing job: %v, want ErrNotFound", err)
	}
	if all := s.Jobs(); len(all) != 1 || all[0] != res.Job {
		t.Fatalf("Jobs() = %v", all)
	}
	res.Job.Wait(waitCtx(t))
}

// TestConservativeJob runs a conservative-engine job end to end: it
// must emit progress, produce a report naming the engine and protocol,
// and re-execute deterministically to byte-identical bytes.
func TestConservativeJob(t *testing.T) {
	s := NewServer(Options{Workers: 2, CacheBytes: -1})
	defer s.Close()
	spec := JobSpec{Engine: "conservative", Sync: "window",
		Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 4, EndTime: 5}
	var reports [][]byte
	for i := 0; i < 2; i++ {
		res, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if st := res.Job.Wait(waitCtx(t)); st != StateDone {
			t.Fatalf("run %d: %s (%s)", i, st, res.Job.Err())
		}
		if res.Job.Rounds() == 0 {
			t.Fatalf("run %d: no progress events", i)
		}
		data, _ := res.Job.Report()
		reports = append(reports, data)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Fatal("conservative reports are not deterministic")
	}
	for _, want := range []string{`"engine":"conservative"`, `"sync":"window"`, `"lookahead":0.1`} {
		if !bytes.Contains(reports[0], []byte(want)) {
			t.Fatalf("report missing %s:\n%s", want, reports[0])
		}
	}
}

// TestConservativeCancel cancels a running conservative job through the
// server path, exercising the engine-agnostic cancellation plumbing.
func TestConservativeCancel(t *testing.T) {
	s := NewServer(Options{Workers: 1})
	defer s.Close()
	spec := JobSpec{Engine: "conservative",
		Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 8, EndTime: 5e4}
	res, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, res.Job)
	if err := s.Cancel(res.Job.ID()); err != nil {
		t.Fatal(err)
	}
	if st := res.Job.Wait(waitCtx(t)); st != StateCancelled {
		t.Fatalf("state %s, want cancelled", st)
	}
}
