package simd

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed result cache: spec hash → canonical
// report bytes, evicted least-recently-used under a byte budget.
// Because results are pure functions of their hash, entries never go
// stale — eviction exists only to bound memory, and a re-miss simply
// re-executes the (deterministic) run.
type Cache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used
	index  map[string]*list.Element

	hits, misses, evictions, puts int64
}

// cacheEntry is one stored result.
type cacheEntry struct {
	key  string
	data []byte
}

// CacheStats is a point-in-time snapshot of cache accounting.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Puts      int64 `json:"puts"`
}

// NewCache returns a cache holding at most budget bytes of result data
// (metadata overhead is not charged). A non-positive budget disables
// storage entirely: every Get misses, every Put is dropped.
func NewCache(budget int64) *Cache {
	return &Cache{budget: budget, ll: list.New(), index: make(map[string]*list.Element)}
}

// Get returns the stored bytes for key and marks the entry
// most-recently-used. The returned slice is shared: callers must not
// modify it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// Put stores data under key, evicting LRU entries until the budget
// holds. Storing an existing key refreshes its recency (the bytes are
// identical by construction — the key is a content address). Data
// larger than the whole budget is not stored.
func (c *Cache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	if int64(len(data)) > c.budget {
		return
	}
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	for c.bytes+int64(len(data)) > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.index, ent.key)
		c.bytes -= int64(len(ent.data))
		c.evictions++
	}
	ent := &cacheEntry{key: key, data: data}
	c.index[key] = c.ll.PushFront(ent)
	c.bytes += int64(len(data))
}

// Stats returns a snapshot of cache accounting.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries: len(c.index), Bytes: c.bytes, Budget: c.budget,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Puts: c.puts,
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}
