package simd

import (
	"time"

	"repro/internal/metrics"
)

// flightRing is a fixed-capacity ring of per-GVT-round progress
// snapshots: the job's flight recorder. It keeps the most recent
// capacity rounds plus the count of everything ever offered, so a
// failed or cancelled run can be post-mortemed from its final approach
// without retaining the whole (unbounded) round history. Callers hold
// the owning Job's mutex.
type flightRing struct {
	buf   []metrics.ProgressUpdate
	start int   // index of the oldest retained entry
	n     int   // retained entries
	total int64 // rounds ever offered (monotone)
}

func newFlightRing(capacity int) *flightRing {
	if capacity < 1 {
		capacity = 1
	}
	return &flightRing{buf: make([]metrics.ProgressUpdate, capacity)}
}

// push appends one round, evicting the oldest when full.
func (r *flightRing) push(u metrics.ProgressUpdate) {
	r.total++
	if r.buf == nil {
		return // history released by retention; only the count survives
	}
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = u
		r.n++
		return
	}
	r.buf[r.start] = u
	r.start = (r.start + 1) % len(r.buf)
}

// snapshot copies the retained rounds, oldest first.
func (r *flightRing) snapshot() []metrics.ProgressUpdate {
	if r.n == 0 {
		return nil
	}
	out := make([]metrics.ProgressUpdate, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// last returns the most recent round, if any.
func (r *flightRing) last() (metrics.ProgressUpdate, bool) {
	if r.n == 0 {
		return metrics.ProgressUpdate{}, false
	}
	return r.buf[(r.start+r.n-1)%len(r.buf)], true
}

// dropped returns how many rounds fell off the ring.
func (r *flightRing) dropped() int64 { return r.total - int64(r.n) }

// release frees the retained rounds (retention eviction); total keeps
// counting so status endpoints still report the true round count.
func (r *flightRing) release() {
	r.buf = nil
	r.start, r.n = 0, 0
}

// FlightRecord is the wire form of a job's flight recorder: identity,
// terminal (or current) state, and the bounded tail of per-round
// progress snapshots. It answers "what was this job doing when it
// died?" without re-running the job.
type FlightRecord struct {
	ID       string `json:"id"`
	Hash     string `json:"hash"`
	State    State  `json:"state"`
	CacheHit bool   `json:"cache_hit"`
	Error    string `json:"error,omitempty"`
	// PanicStack holds the recovered engine stack when the job failed by
	// panic — the flight recorder's black-box record of the crash site.
	PanicStack string `json:"panic_stack,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// RoundsTotal counts every GVT round the run completed; Recent holds
	// at most the ring capacity of them (the newest), and RoundsDropped
	// says how many older rounds the ring evicted.
	RoundsTotal   int64 `json:"rounds_total"`
	RoundsDropped int64 `json:"rounds_dropped"`
	// Retained is false when the job aged out of flight retention and its
	// ring was released to bound memory; identity and counts survive.
	Retained bool `json:"retained"`

	// GVT and Efficiency echo the most recent round (0 when none).
	GVT        float64 `json:"gvt"`
	Efficiency float64 `json:"efficiency"`

	Recent []metrics.ProgressUpdate `json:"recent,omitempty"`
}

// Flight snapshots the job's flight recorder. It works in every state:
// a running job returns its live tail, a finished job its final
// approach, and a retention-evicted job its identity and counts with
// Retained false.
func (j *Job) Flight() FlightRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	fr := FlightRecord{
		ID: j.id, Hash: j.hash, State: j.state, CacheHit: j.cacheHit,
		Error:       j.errMsg,
		PanicStack:  j.panicStack,
		SubmittedAt: j.submitted,
		RoundsTotal: j.flight.total,
		Retained:    j.flight.buf != nil,
	}
	if !j.started.IsZero() {
		t := j.started
		fr.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		fr.FinishedAt = &t
	}
	if fr.Retained {
		fr.Recent = j.flight.snapshot()
		fr.RoundsDropped = j.flight.dropped()
	} else {
		fr.RoundsDropped = j.flight.total
	}
	if last, ok := j.flight.last(); ok {
		fr.GVT = last.GVT
		fr.Efficiency = last.Efficiency
	}
	return fr
}
