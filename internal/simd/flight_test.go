package simd

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/metrics"
)

// TestFlightRingBounds pins the ring's eviction arithmetic: capacity
// holds, the retained window is the newest suffix, and totals survive
// both eviction and release.
func TestFlightRingBounds(t *testing.T) {
	r := newFlightRing(4)
	for i := 1; i <= 10; i++ {
		r.push(metrics.ProgressUpdate{Round: int64(i)})
	}
	if r.total != 10 || r.dropped() != 6 {
		t.Fatalf("total %d dropped %d, want 10/6", r.total, r.dropped())
	}
	snap := r.snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len %d, want 4", len(snap))
	}
	for i, u := range snap {
		if want := int64(7 + i); u.Round != want {
			t.Fatalf("snapshot[%d].Round = %d, want %d", i, u.Round, want)
		}
	}
	if last, ok := r.last(); !ok || last.Round != 10 {
		t.Fatalf("last = %+v, %v", last, ok)
	}
	r.release()
	r.push(metrics.ProgressUpdate{Round: 11})
	if r.total != 11 || r.snapshot() != nil {
		t.Fatalf("released ring: total %d snapshot %v", r.total, r.snapshot())
	}
}

// TestFlightOfCompletedJob runs a real job and checks the flight
// recorder agrees with the streamed history: same round count, the
// retained tail is the newest suffix, and the terminal state rides
// along.
func TestFlightOfCompletedJob(t *testing.T) {
	s := NewServer(Options{Workers: 1, FlightRounds: 8})
	defer s.Close()
	res, err := s.Submit(fastSpec(77))
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Job.Wait(waitCtx(t)); st != StateDone {
		t.Fatalf("state %s", st)
	}
	events, _, _ := res.Job.WaitEvents(waitCtx(t), 0)
	fr := res.Job.Flight()
	if fr.State != StateDone || !fr.Retained {
		t.Fatalf("flight %+v", fr)
	}
	if fr.RoundsTotal != int64(len(events)) {
		t.Fatalf("flight rounds %d != streamed %d", fr.RoundsTotal, len(events))
	}
	if len(fr.Recent) == 0 || len(fr.Recent) > 8 {
		t.Fatalf("retained %d rounds, want 1..8", len(fr.Recent))
	}
	tail := events[len(events)-len(fr.Recent):]
	for i := range tail {
		if fr.Recent[i] != tail[i] {
			t.Fatalf("flight[%d] = %+v, stream tail %+v", i, fr.Recent[i], tail[i])
		}
	}
	if fr.GVT != tail[len(tail)-1].GVT {
		t.Fatalf("flight GVT %v != last round %v", fr.GVT, tail[len(tail)-1].GVT)
	}
	if fr.RoundsDropped != fr.RoundsTotal-int64(len(fr.Recent)) {
		t.Fatalf("dropped %d inconsistent with total %d retained %d",
			fr.RoundsDropped, fr.RoundsTotal, len(fr.Recent))
	}
}

// TestFlightOfCancelledJob is the post-mortem use case: cancel a
// running job, then read its final approach from the flight endpoint.
func TestFlightOfCancelledJob(t *testing.T) {
	s, ts := newTestService(t, Options{Workers: 1})
	res, err := s.Submit(slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, res.Job)
	if err := s.Cancel(res.Job.ID()); err != nil {
		t.Fatal(err)
	}
	if st := res.Job.Wait(waitCtx(t)); st != StateCancelled {
		t.Fatalf("state %s", st)
	}
	code, body, _ := getBody(t, ts.URL+"/jobs/"+res.Job.ID()+"/flight")
	if code != http.StatusOK {
		t.Fatalf("flight: %d %s", code, body)
	}
	var fr FlightRecord
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.State != StateCancelled || !fr.Retained || len(fr.Recent) == 0 {
		t.Fatalf("cancelled flight %+v", fr)
	}
	if fr.FinishedAt == nil || fr.StartedAt == nil {
		t.Fatalf("flight missing timestamps: %+v", fr)
	}
}

// TestFlightRetention pins the bounded-memory contract: once more jobs
// finish than FlightRetain allows, the oldest loses its history (ring
// and event slice) but keeps identity, state and counts; newer jobs
// keep theirs.
func TestFlightRetention(t *testing.T) {
	s := NewServer(Options{Workers: 1, FlightRetain: 2, CacheBytes: -1})
	defer s.Close()
	var jobs []*Job
	for i := 0; i < 4; i++ {
		res, err := s.Submit(fastSpec(uint64(500 + i)))
		if err != nil {
			t.Fatal(err)
		}
		if st := res.Job.Wait(waitCtx(t)); st != StateDone {
			t.Fatalf("job %d state %s", i, st)
		}
		jobs = append(jobs, res.Job)
	}
	for i, j := range jobs {
		fr := j.Flight()
		wantRetained := i >= 2 // only the 2 newest keep history
		if fr.Retained != wantRetained {
			t.Fatalf("job %d retained=%v, want %v", i, fr.Retained, wantRetained)
		}
		if fr.RoundsTotal == 0 {
			t.Fatalf("job %d lost its round count", i)
		}
		if !wantRetained {
			if fr.Recent != nil || fr.RoundsDropped != fr.RoundsTotal {
				t.Fatalf("released job %d still has history: %+v", i, fr)
			}
			if j.Rounds() == 0 {
				t.Fatalf("released job %d lost Rounds()", i)
			}
			// The report must survive release: history is bounded, results
			// are not dropped.
			if _, ok := j.Report(); !ok {
				t.Fatalf("released job %d lost its report", i)
			}
			// A replay of a released stream ends immediately but cleanly.
			events, state, done := j.WaitEvents(waitCtx(t), 0)
			if len(events) != 0 || state != StateDone || !done {
				t.Fatalf("released job %d replay: %d events, %s, done=%v", i, len(events), state, done)
			}
		}
	}
}

// TestFlightNotFound pins the 404 path.
func TestFlightNotFound(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})
	code, _, _ := getBody(t, ts.URL+"/jobs/nope/flight")
	if code != http.StatusNotFound {
		t.Fatalf("flight of missing job: %d, want 404", code)
	}
}
