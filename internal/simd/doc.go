// Package simd is the embeddable simulation job service: it turns the
// one-shot engine of internal/core into simulation-as-a-service.
//
// The design leans on a property PRs 1–4 established deliberately: a
// run is a *pure function* of its configuration. Committed event
// streams are bit-identical across pool modes, host parallelism, fault
// plans and balancer policies, and run reports marshal to canonical
// byte-stable JSON. That purity is what makes the three service
// mechanisms sound rather than heuristic:
//
//   - Content addressing: a JobSpec canonicalizes (aliases resolved,
//     defaults made explicit, irrelevant fields cleared) and hashes to
//     a stable SHA-256; the hash fully determines the result bytes.
//   - Result cache: a byte-budget LRU keyed by spec hash stores the
//     canonical report JSON. A hit returns the exact bytes a fresh run
//     would produce, without running anything.
//   - Singleflight: identical specs submitted while one is queued or
//     running attach to that job instead of executing again, so N
//     concurrent identical submissions cost one execution.
//
// Around these sits a bounded job queue and worker pool (built on
// internal/harness.Pool) with admission control — a full queue rejects
// rather than blocks, which the HTTP front-end maps to 429 — plus job
// lifecycle (queued/running/done/failed/cancelled), mid-run
// cancellation via the sim kernel's cancel path, graceful drain on
// shutdown, and a per-GVT-round progress feed (threaded from
// internal/core through internal/metrics) that streams as NDJSON from
// /jobs/{id}/events.
//
// cmd/simd wraps the package in an HTTP/JSON daemon; Handler exposes
// the same API for embedding in other servers.
package simd
