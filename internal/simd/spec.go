package simd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/balance"
	"repro/internal/cluster"
	"repro/internal/conservative"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/models/epidemic"
	"repro/internal/models/pcs"
	"repro/internal/models/tandem"
	"repro/internal/phold"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// JobSpec is the canonical description of one simulation job: model,
// topology, GVT algorithm and the engine knobs a run is a pure function
// of. Zero values mean "service default"; Canonical resolves them, so
// a spec that omits a field and a spec that states the default hash to
// the same content address.
//
// Every field is semantic: after canonicalization, two specs with equal
// fields produce byte-identical run reports, and any field change that
// survives canonicalization changes the result.
type JobSpec struct {
	// Engine selects the synchronization paradigm: timewarp (default) |
	// conservative. An empty Engine folds to conservative when Sync names
	// a conservative protocol, timewarp otherwise.
	Engine string `json:"engine,omitempty"`
	// Sync is the conservative protocol: nullmsg (default; "cmb" is an
	// accepted alias) | window. Rejected for the timewarp engine.
	Sync string `json:"sync,omitempty"`
	// Lookahead is the conservative safety bound; 0 means the model's
	// declared lookahead. Rejected for the timewarp engine.
	Lookahead float64 `json:"lookahead,omitempty"`

	// Model selects the workload: phold (default) | pcs | epidemic | tandem.
	Model string `json:"model,omitempty"`
	// Scenario is the PHOLD workload shape: comp (default) | comm | mixed.
	// Cleared for non-PHOLD models (it has no meaning there).
	Scenario string `json:"scenario,omitempty"`
	// MixComp/MixComm are the mixed scenario's X–Y percentages (defaults
	// 10/15). Cleared unless Scenario is "mixed".
	MixComp float64 `json:"mix_comp,omitempty"`
	MixComm float64 `json:"mix_comm,omitempty"`

	// Topology. Defaults: 2 nodes × 4 workers × 8 LPs.
	Nodes          int `json:"nodes,omitempty"`
	WorkersPerNode int `json:"workers_per_node,omitempty"`
	LPsPerWorker   int `json:"lps_per_worker,omitempty"`

	// GVT selects the algorithm: barrier | mattern (default) | ca-gvt |
	// samadi ("ca" and "cagvt" are accepted aliases).
	GVT string `json:"gvt,omitempty"`
	// Comm is the MPI servicing mode: dedicated (default) | combined | shared.
	Comm string `json:"comm,omitempty"`
	// GVTInterval is the main-loop passes between GVT rounds (default 4).
	GVTInterval int `json:"gvt_interval,omitempty"`
	// CAThreshold is CA-GVT's efficiency threshold (default 0.80). Pinned
	// to the default for non-CA algorithms, where it is inert.
	CAThreshold float64 `json:"ca_threshold,omitempty"`

	// EndTime is the virtual end time (default 20).
	EndTime float64 `json:"end_time,omitempty"`
	// Seed is the master RNG seed; 0 means the default seed 1.
	Seed uint64 `json:"seed,omitempty"`

	// Engine knobs, as in core.Config: Queue heap (default) | calendar;
	// Pool on (default) | off | debug; BatchSize default 16;
	// CheckpointInterval default 1; MaxUncommitted default 8×LPsPerWorker
	// (negative: unbounded).
	Queue              string `json:"queue,omitempty"`
	Pool               string `json:"pool,omitempty"`
	BatchSize          int    `json:"batch_size,omitempty"`
	CheckpointInterval int    `json:"checkpoint_interval,omitempty"`
	MaxUncommitted     int    `json:"max_uncommitted,omitempty"`

	// Faults names a fabric fault scenario ("" or "none": perfect fabric).
	Faults string `json:"faults,omitempty"`
	// Balance names the LP load-balancing policy ("", "static" or "none":
	// static placement).
	Balance string `json:"balance,omitempty"`
	// WatchdogMicros is the GVT liveness watchdog timeout in virtual µs
	// (0: auto — enabled only under faults).
	WatchdogMicros int64 `json:"watchdog_us,omitempty"`
}

// Service-side admission caps: the job server refuses specs that would
// monopolize a worker for an unreasonable time. Generous enough for
// every experiment in EXPERIMENTS.md.
const (
	maxTotalLPs = 1 << 16
	maxNodes    = 64
	maxEndTime  = 1e5
)

// Canonical returns the spec in canonical form: names lowercased and
// de-aliased, defaults made explicit, fields without meaning for the
// chosen model/algorithm cleared or pinned. It is idempotent —
// Canonical(Canonical(s)) == Canonical(s) — and rejects invalid specs.
func (s JobSpec) Canonical() (JobSpec, error) {
	c := s
	norm := func(v string) string { return strings.ToLower(strings.TrimSpace(v)) }

	switch c.Model = norm(c.Model); c.Model {
	case "":
		c.Model = "phold"
	case "phold", "pcs", "epidemic", "tandem":
	default:
		return c, fmt.Errorf("simd: unknown model %q (want phold | pcs | epidemic | tandem)", c.Model)
	}

	if c.Model == "phold" {
		switch c.Scenario = norm(c.Scenario); c.Scenario {
		case "":
			c.Scenario = "comp"
		case "comp", "comm", "mixed":
		default:
			return c, fmt.Errorf("simd: unknown scenario %q (want comp | comm | mixed)", c.Scenario)
		}
	} else {
		c.Scenario = ""
	}
	if c.Model == "phold" && c.Scenario == "mixed" {
		if c.MixComp == 0 {
			c.MixComp = 10
		}
		if c.MixComm == 0 {
			c.MixComm = 15
		}
		if c.MixComp <= 0 || c.MixComm <= 0 || c.MixComp+c.MixComm > 100 {
			return c, fmt.Errorf("simd: mixed fractions %v/%v must be positive and sum to <= 100", c.MixComp, c.MixComm)
		}
	} else {
		c.MixComp, c.MixComm = 0, 0
	}

	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.WorkersPerNode == 0 {
		c.WorkersPerNode = 4
	}
	if c.LPsPerWorker == 0 {
		c.LPsPerWorker = 8
	}
	top := cluster.Topology{Nodes: c.Nodes, WorkersPerNode: c.WorkersPerNode, LPsPerWorker: c.LPsPerWorker}
	if err := top.Validate(); err != nil {
		return c, err
	}
	if c.Nodes > maxNodes {
		return c, fmt.Errorf("simd: %d nodes exceeds the service cap of %d", c.Nodes, maxNodes)
	}
	if top.TotalLPs() > maxTotalLPs {
		return c, fmt.Errorf("simd: %d total LPs exceeds the service cap of %d", top.TotalLPs(), maxTotalLPs)
	}

	switch c.Engine = norm(c.Engine); c.Engine {
	case "":
		// Naming a conservative protocol is an implicit engine choice.
		switch norm(c.Sync) {
		case "nullmsg", "cmb", "window":
			c.Engine = "conservative"
		default:
			c.Engine = "timewarp"
		}
	case "timewarp", "conservative":
	default:
		return c, fmt.Errorf("simd: unknown engine %q (want timewarp | conservative)", c.Engine)
	}
	if c.Engine == "conservative" {
		switch c.Sync = norm(c.Sync); c.Sync {
		case "", "cmb":
			c.Sync = "nullmsg"
		case "nullmsg", "window":
		default:
			return c, fmt.Errorf("simd: unknown sync %q (want nullmsg | window)", c.Sync)
		}
		if c.Lookahead == 0 {
			c.Lookahead = c.defaultLookahead()
		}
		if c.Lookahead <= 0 || math.IsNaN(c.Lookahead) || math.IsInf(c.Lookahead, 0) {
			return c, fmt.Errorf("simd: lookahead must be positive and finite, got %v", c.Lookahead)
		}
	} else {
		if v := norm(c.Sync); v != "" {
			return c, fmt.Errorf("simd: sync %q is a conservative-engine field; set engine to conservative or drop it", v)
		}
		c.Sync = ""
		if c.Lookahead != 0 {
			return c, fmt.Errorf("simd: lookahead is a conservative-engine field; set engine to conservative or drop it")
		}
	}

	if c.Engine == "timewarp" {
		switch c.GVT = norm(c.GVT); c.GVT {
		case "":
			c.GVT = "mattern"
		case "ca", "cagvt":
			c.GVT = "ca-gvt"
		case "barrier", "mattern", "ca-gvt", "samadi":
		default:
			return c, fmt.Errorf("simd: unknown gvt %q (want barrier | mattern | ca-gvt | samadi)", c.GVT)
		}
	} else {
		// A conservative run has no GVT algorithm: the sync protocol is
		// the whole synchronization story. Clear it (and the GVT knobs
		// below) so specs differing only in inert fields share a hash.
		c.GVT = ""
	}
	switch c.Comm = norm(c.Comm); c.Comm {
	case "":
		c.Comm = "dedicated"
	case "dedicated", "combined", "shared":
	default:
		return c, fmt.Errorf("simd: unknown comm %q (want dedicated | combined | shared)", c.Comm)
	}
	if c.Engine == "conservative" && c.Comm != "dedicated" {
		return c, fmt.Errorf("simd: comm %q is not supported by the conservative engine (only dedicated)", c.Comm)
	}
	if c.Engine == "timewarp" {
		if c.GVTInterval == 0 {
			c.GVTInterval = 4
		}
		if c.GVTInterval < 2 {
			return c, fmt.Errorf("simd: gvt_interval must be >= 2, got %d", c.GVTInterval)
		}
		if c.GVT == "ca-gvt" {
			if c.CAThreshold == 0 {
				c.CAThreshold = 0.80
			}
			if c.CAThreshold < 0 || c.CAThreshold > 1 {
				return c, fmt.Errorf("simd: ca_threshold must be in [0,1], got %v", c.CAThreshold)
			}
		} else {
			// Inert for non-CA algorithms: pin it so it cannot split the hash.
			c.CAThreshold = 0.80
		}
	} else {
		c.GVTInterval = 0
		c.CAThreshold = 0
	}

	if c.EndTime == 0 {
		c.EndTime = 20
	}
	if c.EndTime < 0 || math.IsNaN(c.EndTime) || math.IsInf(c.EndTime, 0) {
		return c, fmt.Errorf("simd: end_time must be positive and finite, got %v", c.EndTime)
	}
	if c.EndTime > maxEndTime {
		return c, fmt.Errorf("simd: end_time %v exceeds the service cap of %v", c.EndTime, float64(maxEndTime))
	}
	if c.Seed == 0 {
		c.Seed = 1
	}

	switch c.Queue = norm(c.Queue); c.Queue {
	case "":
		c.Queue = "heap"
	case "heap", "calendar":
	default:
		return c, fmt.Errorf("simd: unknown queue %q (want heap | calendar)", c.Queue)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.BatchSize < 0 {
		return c, fmt.Errorf("simd: batch_size must be positive, got %d", c.BatchSize)
	}
	if c.Engine == "timewarp" {
		switch c.Pool = norm(c.Pool); c.Pool {
		case "":
			c.Pool = "on"
		case "on", "off", "debug":
		default:
			return c, fmt.Errorf("simd: unknown pool %q (want on | off | debug)", c.Pool)
		}
		if c.CheckpointInterval == 0 {
			c.CheckpointInterval = 1
		}
		if c.CheckpointInterval < 0 {
			return c, fmt.Errorf("simd: checkpoint_interval must be positive, got %d", c.CheckpointInterval)
		}
		if c.MaxUncommitted == 0 {
			c.MaxUncommitted = 8 * c.LPsPerWorker
		}
		if c.MaxUncommitted < 0 {
			c.MaxUncommitted = -1 // all negatives mean the same thing: unbounded
		}
	} else {
		// Event pooling, checkpoints and throttling are rollback
		// machinery; a conservative run has none. Clear them so they
		// cannot split the hash.
		c.Pool = ""
		c.CheckpointInterval = 0
		c.MaxUncommitted = 0
	}

	switch c.Faults = norm(c.Faults); c.Faults {
	case "none":
		c.Faults = ""
	default:
		if _, err := fabric.Scenario(c.Faults, c.Nodes); err != nil {
			return c, err
		}
	}
	switch c.Balance = norm(c.Balance); c.Balance {
	case "static", "none":
		c.Balance = ""
	default:
		if _, err := balance.New(c.Balance, balance.Options{}); err != nil {
			return c, err
		}
	}
	if c.WatchdogMicros < 0 {
		return c, fmt.Errorf("simd: watchdog_us must be >= 0, got %d", c.WatchdogMicros)
	}
	if c.Engine == "conservative" {
		// These knobs change recovery semantics, not just performance:
		// refusing them beats silently ignoring an operator's intent.
		if c.Faults != "" {
			return c, fmt.Errorf("simd: fault injection is not supported by the conservative engine")
		}
		if c.Balance != "" {
			return c, fmt.Errorf("simd: load balancing is not supported by the conservative engine")
		}
		if c.WatchdogMicros != 0 {
			return c, fmt.Errorf("simd: the GVT watchdog is not supported by the conservative engine")
		}
	}
	return c, nil
}

// defaultLookahead returns the model's declared lookahead for an
// already-canonical spec: the minimum virtual delay of any cross-worker
// send, as exported by each model package.
func (c JobSpec) defaultLookahead() float64 {
	switch c.Model {
	case "pcs":
		return pcs.Lookahead
	case "epidemic":
		return epidemic.Lookahead
	case "tandem":
		return tandem.Params{}.Lookahead()
	default: // phold
		p := phold.Params{}
		p.Defaults()
		return float64(p.Lookahead)
	}
}

// Hash canonicalizes the spec and returns its content address: the
// SHA-256 of the canonical JSON encoding, in hex. Because the engine is
// deterministic, the hash addresses not just the spec but the result.
func (s JobSpec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	return c.canonicalHash()
}

// canonicalHash hashes an already-canonical spec.
func (c JobSpec) canonicalHash() (string, error) {
	raw, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	canon, err := metrics.CanonicalJSON(raw)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// BuildConfig turns the spec into an engine configuration. The spec is
// canonicalized first; the returned config passes core validation.
func (s JobSpec) BuildConfig() (core.Config, error) {
	c, err := s.Canonical()
	if err != nil {
		return core.Config{}, err
	}
	if c.Engine != "timewarp" {
		return core.Config{}, fmt.Errorf("simd: BuildConfig on a %s-engine spec (use BuildConservativeConfig)", c.Engine)
	}
	top := cluster.Topology{Nodes: c.Nodes, WorkersPerNode: c.WorkersPerNode, LPsPerWorker: c.LPsPerWorker}

	var kind core.GVTKind
	switch c.GVT {
	case "barrier":
		kind = core.GVTBarrier
	case "mattern":
		kind = core.GVTMattern
	case "ca-gvt":
		kind = core.GVTControlled
	case "samadi":
		kind = core.GVTSamadi
	}
	var cm core.CommMode
	switch c.Comm {
	case "dedicated":
		cm = core.CommDedicated
	case "combined":
		cm = core.CommCombined
	case "shared":
		cm = core.CommShared
	}
	var pm core.PoolMode
	switch c.Pool {
	case "on":
		pm = core.PoolOn
	case "off":
		pm = core.PoolOff
	case "debug":
		pm = core.PoolDebug
	}

	model, err := c.modelFactory(top)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		Topology:           top,
		GVT:                kind,
		GVTInterval:        c.GVTInterval,
		CAThreshold:        c.CAThreshold,
		Comm:               cm,
		EndTime:            vtime.Time(c.EndTime),
		Seed:               c.Seed,
		Pool:               pm,
		QueueKind:          c.Queue,
		BatchSize:          c.BatchSize,
		CheckpointInterval: c.CheckpointInterval,
		MaxUncommitted:     c.MaxUncommitted,
		Balance:            c.Balance,
		Model:              model,
	}
	if c.Faults != "" {
		plan, err := fabric.Scenario(c.Faults, c.Nodes)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Faults = plan
		cfg.FaultLabel = c.Faults
	}
	if c.WatchdogMicros > 0 {
		cfg.WatchdogTimeout = sim.Time(c.WatchdogMicros) * sim.Microsecond
	}
	if err := func() error { v := cfg; v.Defaults(); return v.Validate() }(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// BuildConservativeConfig turns the spec into a conservative engine
// configuration. The spec is canonicalized first; the returned config
// passes conservative validation.
func (s JobSpec) BuildConservativeConfig() (conservative.Config, error) {
	c, err := s.Canonical()
	if err != nil {
		return conservative.Config{}, err
	}
	if c.Engine != "conservative" {
		return conservative.Config{}, fmt.Errorf("simd: BuildConservativeConfig on a %s-engine spec (use BuildConfig)", c.Engine)
	}
	top := cluster.Topology{Nodes: c.Nodes, WorkersPerNode: c.WorkersPerNode, LPsPerWorker: c.LPsPerWorker}
	var sync conservative.SyncKind
	switch c.Sync {
	case "nullmsg":
		sync = conservative.SyncNullMsg
	case "window":
		sync = conservative.SyncWindow
	}
	model, err := c.modelFactory(top)
	if err != nil {
		return conservative.Config{}, err
	}
	cfg := conservative.Config{
		Topology:  top,
		Sync:      sync,
		Lookahead: vtime.Time(c.Lookahead),
		EndTime:   vtime.Time(c.EndTime),
		Seed:      c.Seed,
		QueueKind: c.Queue,
		BatchSize: c.BatchSize,
		Model:     model,
	}
	if err := func() error { v := cfg; v.Defaults(); return v.Validate() }(); err != nil {
		return conservative.Config{}, err
	}
	return cfg, nil
}

// modelFactory builds the model for an already-canonical spec.
func (c JobSpec) modelFactory(top cluster.Topology) (core.ModelFactory, error) {
	switch c.Model {
	case "phold":
		params := phold.Params{Topology: top}
		comp, comm := phold.ComputationDominated(), phold.CommunicationDominated()
		if c.Nodes == 1 {
			comp.RemotePct, comm.RemotePct = 0, 0
		}
		switch c.Scenario {
		case "comp":
			params.Base = comp
		case "comm":
			params.Base = comm
		case "mixed":
			params.Base = comp
			params.Mixed = &phold.MixedModel{
				Comm: comm, CompFrac: c.MixComp, CommFrac: c.MixComm,
				EndTime: vtime.Time(c.EndTime),
			}
		}
		return phold.New(params), nil
	case "pcs":
		w, h := cluster.NearSquareGrid(top.TotalLPs())
		return pcs.New(pcs.Params{GridW: w, GridH: h}), nil
	case "epidemic":
		w, h := cluster.NearSquareGrid(top.TotalLPs())
		return epidemic.New(epidemic.Params{GridW: w, GridH: h}), nil
	case "tandem":
		return tandem.New(tandem.Params{}), nil
	}
	return nil, fmt.Errorf("simd: unknown model %q", c.Model)
}
