package simd

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conservative"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
)

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull: admission control refused the job (HTTP 429).
	ErrQueueFull = errors.New("simd: job queue full")
	// ErrClosed: the server is draining or closed (HTTP 503).
	ErrClosed = errors.New("simd: server closed")
	// ErrNotFound: no job with that id (HTTP 404).
	ErrNotFound = errors.New("simd: no such job")
	// ErrFinished: the job already reached a terminal state (HTTP 409).
	ErrFinished = errors.New("simd: job already finished")
)

// Options configures a Server.
type Options struct {
	// Workers is the number of simulations executing concurrently
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the waiting room beyond the running jobs;
	// submissions past it are rejected with ErrQueueFull (default 64).
	QueueDepth int
	// CacheBytes is the result cache budget in bytes (default 64 MiB;
	// negative disables caching).
	CacheBytes int64
	// FlightRounds sizes each job's flight recorder: the ring of most
	// recent per-GVT-round progress snapshots kept for post-mortems
	// (default 64).
	FlightRounds int
	// FlightRetain bounds how many finished jobs keep their flight ring
	// and event history; beyond it the oldest finished job's history is
	// released, keeping memory bounded while recent post-mortems stay
	// available (default 128).
	FlightRetain int
	// Logger receives structured job-lifecycle logs; nil discards them
	// (the right default for tests and embedding).
	Logger *slog.Logger
	// Store is an optional disk layer under the in-memory cache:
	// completed reports are persisted there and misses consult it before
	// executing, so results survive restarts and can be shared between
	// daemons on one host. Store failures never fail a job — the store
	// degrades itself and the server keeps serving memory-only.
	Store *store.Store
	// Journal, when set, records job admissions and terminal states so a
	// restarted daemon can re-enqueue interrupted work via Recover.
	Journal *store.Journal
	// JobDeadline bounds each job's wall-clock run time; a job exceeding
	// it is cancelled through the kernel's Env.Cancel path and marked
	// failed with a deadline message (0: unbounded).
	JobDeadline time.Duration
	// NodeID is this daemon's stable identity in a cluster; /healthz and
	// /stats echo it so aggregated cluster stats can attribute counts to
	// members. Empty on a standalone daemon (cmd/simd defaults it to the
	// listener's host:port).
	NodeID string
}

// withDefaults resolves zero values.
func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 64 << 20
	}
	if o.FlightRounds <= 0 {
		o.FlightRounds = 64
	}
	if o.FlightRetain <= 0 {
		o.FlightRetain = 128
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// Server is the simulation job service: submissions flow through the
// content-addressed cache, then singleflight coalescing, then the
// bounded worker pool. See the package comment for why each stage is
// sound.
type Server struct {
	opts    Options
	pool    *harness.Pool
	cache   *Cache
	obs     *serviceObs
	log     *slog.Logger
	started time.Time

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job // by id
	order    []*Job          // submission order, for listing
	inflight map[string]*Job // spec hash → queued/running job (singleflight table)
	retired  []*Job          // finished jobs still holding history, oldest first
	seq      int64

	executions atomic.Int64 // engine runs actually started (cache/dedup bypass this)
	dedupHits  atomic.Int64 // submissions coalesced onto an in-flight job
	rejected   atomic.Int64 // submissions refused by admission control
	deadlined  atomic.Int64 // jobs failed by the wall-clock deadline
	panicked   atomic.Int64 // jobs failed by an engine panic
	recovered  atomic.Int64 // jobs re-enqueued from the journal at startup
}

// SubmitResult describes how a submission was satisfied.
type SubmitResult struct {
	Job *Job
	// CacheHit: the result came straight from the cache (memory or disk);
	// the job was born done and nothing executed.
	CacheHit bool
	// StoreHit: the hit was served by the persistent store rather than
	// the in-memory cache (a warm restart or a sibling daemon's work).
	StoreHit bool
	// Deduped: an identical spec was already in flight; Job is that
	// existing job, not a new one.
	Deduped bool
}

// NewServer starts a job service. Callers must Close it to stop the
// workers.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		pool:     harness.NewPool(opts.Workers, opts.QueueDepth),
		cache:    NewCache(opts.CacheBytes),
		log:      opts.Logger,
		started:  time.Now(),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	s.obs = newServiceObs(s)
	return s
}

// Submit admits one job. The spec is canonicalized and content-hashed;
// a cached result returns a job born done, an identical in-flight spec
// returns that job (singleflight), and otherwise the job enters the
// bounded queue — or is rejected with ErrQueueFull.
func (s *Server) Submit(spec JobSpec) (SubmitResult, error) {
	canon, err := spec.Canonical()
	if err != nil {
		return SubmitResult{}, err
	}
	hash, err := canon.canonicalHash()
	if err != nil {
		return SubmitResult{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return SubmitResult{}, ErrClosed
	}

	if data, ok := s.cache.Get(hash); ok {
		j := s.newJobLocked(hash, canon)
		j.cacheHit = true
		j.state = StateDone
		j.report = data
		j.finished = j.submitted
		s.retireLocked(j)
		s.obs.submissions.With("cache_hit").Inc()
		s.obs.jobsFinished.With(string(StateDone)).Inc()
		s.journalRetire(hash)
		s.log.Info("job served from cache", "job", j.id, "hash", j.hash, "model", canon.Model)
		return SubmitResult{Job: j, CacheHit: true}, nil
	}

	// Memory miss: consult the persistent store before executing. The
	// read happens under s.mu — it is one small local file, and holding
	// the lock keeps the singleflight invariant (at most one job per
	// hash) trivially true. A degraded store answers instantly.
	if s.opts.Store != nil {
		if data, ok := s.opts.Store.Get(hash); ok {
			s.cache.Put(hash, data)
			j := s.newJobLocked(hash, canon)
			j.cacheHit = true
			j.storeHit = true
			j.state = StateDone
			j.report = data
			j.finished = j.submitted
			s.retireLocked(j)
			s.obs.submissions.With("store_hit").Inc()
			s.obs.jobsFinished.With(string(StateDone)).Inc()
			s.journalRetire(hash)
			s.log.Info("job served from persistent store", "job", j.id, "hash", j.hash, "model", canon.Model)
			return SubmitResult{Job: j, CacheHit: true, StoreHit: true}, nil
		}
	}

	if prior, ok := s.inflight[hash]; ok {
		prior.mu.Lock()
		prior.deduped++
		prior.mu.Unlock()
		s.dedupHits.Add(1)
		s.obs.submissions.With("deduped").Inc()
		s.log.Info("submission coalesced onto in-flight job", "job", prior.id, "hash", hash)
		return SubmitResult{Job: prior, Deduped: true}, nil
	}

	j := s.newJobLocked(hash, canon)
	if !s.pool.TrySubmit(func() { s.execute(j) }) {
		// Roll the record back: a rejected submission leaves no trace.
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.seq--
		s.rejected.Add(1)
		s.obs.submissions.With("rejected").Inc()
		s.log.Warn("submission rejected: queue full", "hash", hash,
			"queue_cap", s.opts.QueueDepth)
		return SubmitResult{}, ErrQueueFull
	}
	s.inflight[hash] = j
	s.obs.submissions.With("admitted").Inc()
	s.journalBegin(j, canon)
	s.log.Info("job admitted", "job", j.id, "hash", j.hash, "model", canon.Model,
		"queue_len", s.pool.Stats().QueueLen)
	return SubmitResult{Job: j}, nil
}

// journalRetire ends a replayed-pending job that a warm-restart
// re-submission resolved without executing (cache or store hit), so it
// stops replaying on later restarts.
func (s *Server) journalRetire(hash string) {
	if s.opts.Journal == nil {
		return
	}
	if err := s.opts.Journal.Retire(hash); err != nil {
		s.log.Warn("journal retire failed", "hash", hash, "error", err.Error())
	}
}

// journalBegin records an admission in the warm-restart journal; a
// journal failure is logged, never surfaced to the submitter.
func (s *Server) journalBegin(j *Job, canon JobSpec) {
	if s.opts.Journal == nil {
		return
	}
	spec, err := json.Marshal(canon)
	if err == nil {
		err = s.opts.Journal.Begin(j.hash, spec)
	}
	if err != nil {
		s.log.Warn("journal begin failed", "job", j.id, "error", err.Error())
	}
}

// newJobLocked allocates and records a job; the caller holds s.mu.
func (s *Server) newJobLocked(hash string, canon JobSpec) *Job {
	s.seq++
	j := newJob(fmt.Sprintf("j%06d", s.seq), hash, canon, s.opts.FlightRounds)
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	return j
}

// retireLocked enrolls a finished job in flight retention, releasing the
// oldest retired job's history when the window overflows; the caller
// holds s.mu.
func (s *Server) retireLocked(j *Job) {
	s.retired = append(s.retired, j)
	for len(s.retired) > s.opts.FlightRetain {
		old := s.retired[0]
		s.retired = s.retired[1:]
		old.releaseHistory()
		s.log.Debug("released job history", "job", old.id)
	}
}

// execute runs one job on a pool worker.
func (s *Server) execute(j *Job) {
	defer func() {
		s.mu.Lock()
		if s.inflight[j.hash] == j {
			delete(s.inflight, j.hash)
		}
		s.retireLocked(j)
		s.mu.Unlock()
		s.obs.jobsFinished.With(string(j.State())).Inc()
		if s.opts.Journal != nil {
			if err := s.opts.Journal.End(j.hash, string(j.State())); err != nil {
				s.log.Warn("journal end failed", "job", j.id, "error", err.Error())
			}
		}
	}()
	if !j.beginRunning() {
		s.log.Info("job cancelled while queued", "job", j.id)
		return // cancelled while queued
	}
	s.obs.queueWait.Observe(j.started.Sub(j.submitted).Seconds())
	s.log.Info("job running", "job", j.id, "hash", j.hash, "model", j.spec.Model,
		"queued_seconds", j.started.Sub(j.submitted).Seconds())

	// Wall-clock deadline: enforced through the same Env.Cancel path as
	// a user cancellation, so the kernel unwinds cleanly at its next
	// dispatch boundary.
	if d := s.opts.JobDeadline; d > 0 {
		timer := time.AfterFunc(d, func() {
			if j.markDeadlineExceeded() {
				s.deadlined.Add(1)
				s.log.Warn("job wall-clock deadline exceeded", "job", j.id,
					"deadline_seconds", d.Seconds())
			}
		})
		defer timer.Stop()
	}

	report, runErr := s.runEngine(j)
	var pe *panicError
	switch {
	case runErr == nil:
		s.cache.Put(j.hash, report)
		if s.opts.Store != nil {
			if err := s.opts.Store.Put(j.hash, report); err != nil {
				s.log.Warn("store put failed; result kept in memory only",
					"job", j.id, "error", err.Error())
			}
		}
		j.finish(StateDone, report, "")
	case errors.Is(runErr, sim.ErrCancelled) && j.deadlineExceeded():
		j.finish(StateFailed, nil, fmt.Sprintf("wall-clock deadline %s exceeded", s.opts.JobDeadline))
	case errors.Is(runErr, sim.ErrCancelled):
		j.finish(StateCancelled, nil, "")
	case errors.As(runErr, &pe):
		// Panic isolation: the worker survives, the job fails with the
		// stack recorded for /jobs/{id}/flight post-mortems.
		j.setPanicStack(pe.stack)
		s.panicked.Add(1)
		j.finish(StateFailed, nil, runErr.Error())
	default:
		j.finish(StateFailed, nil, runErr.Error())
	}
	dur := j.finished.Sub(j.started)
	s.obs.runDuration.Observe(dur.Seconds())
	switch {
	case pe != nil:
		s.log.Error("job failed: engine panic", "job", j.id, "error", j.Err(),
			"duration_seconds", dur.Seconds(), "rounds", j.Rounds(), "stack", pe.stack)
	case j.State() == StateFailed:
		s.log.Error("job failed", "job", j.id, "error", j.Err(),
			"duration_seconds", dur.Seconds(), "rounds", j.Rounds())
	default:
		s.log.Info("job finished", "job", j.id, "state", string(j.State()),
			"duration_seconds", dur.Seconds(), "rounds", j.Rounds(),
			"report_bytes", len(report))
	}
}

// panicError carries a recovered engine panic plus the stack at the
// point of the panic, for the job's post-mortem record.
type panicError struct {
	val   string
	stack string
}

func (e *panicError) Error() string { return "simd: engine panic: " + e.val }

// testInjectPanic, when set by a test, runs inside runEngine's recover
// scope so panic isolation can be exercised without a genuinely buggy
// kernel.
var testInjectPanic func(spec JobSpec)

// runEngine builds and runs the engine for a job, returning the
// canonical report bytes. Engine panics become errors carrying the
// stack: one bad job must not take down the worker pool, and the
// post-mortem needs to say where it died.
func (s *Server) runEngine(j *Job) (report []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: fmt.Sprint(r), stack: string(debug.Stack())}
		}
	}()
	if testInjectPanic != nil {
		testInjectPanic(j.spec)
	}
	rec := metrics.NewRecorder()
	// Bridge every GVT round into the live registry before publishing it
	// to streamers. prev carries the previous round's cumulative values;
	// only the engine goroutine touches it.
	var prev metrics.ProgressUpdate
	rec.OnProgress = func(u metrics.ProgressUpdate) {
		s.obs.bridgeProgress(prev, u)
		prev = u
		j.publish(u)
	}
	var rep *metrics.Report
	if j.spec.Engine == "conservative" {
		cfg, err := j.spec.BuildConservativeConfig()
		if err != nil {
			return nil, err
		}
		cfg.Metrics = rec
		eng := conservative.New(cfg)
		j.attachEngine(eng)
		s.executions.Add(1)
		r, err := eng.Run()
		if err != nil {
			return nil, err
		}
		rep = eng.Report(r)
	} else {
		cfg, err := j.spec.BuildConfig()
		if err != nil {
			return nil, err
		}
		cfg.Metrics = rec
		eng := core.New(cfg)
		j.attachEngine(eng)
		s.executions.Add(1)
		r, err := eng.Run()
		if err != nil {
			return nil, err
		}
		rep = eng.Report(r)
	}
	rep.Config.Label = "simd/" + j.spec.Model
	return rep.MarshalStable()
}

// Job returns a job by id.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Jobs returns all jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	copy(out, s.order)
	return out
}

// Cancel requests cancellation of a job: queued jobs cancel instantly,
// running jobs abort at the kernel's next dispatch boundary.
func (s *Server) Cancel(id string) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	if !j.requestCancel() {
		return ErrFinished
	}
	s.log.Info("job cancellation requested", "job", j.id)
	return nil
}

// Close drains the service: new submissions fail with ErrClosed, every
// already-admitted job runs (or settles its cancellation), and the
// workers exit. Safe to call twice.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.pool.Close()
}

// Executions returns how many engine runs actually started — the
// counter the cache-hit acceptance test audits.
func (s *Server) Executions() int64 { return s.executions.Load() }

// NodeID returns the daemon's cluster identity ("" when unset).
func (s *Server) NodeID() string { return s.opts.NodeID }

// RetryAfter estimates how long a rejected submitter should wait before
// retrying: the time to drain the current queue, i.e. (queue length + 1)
// × mean observed run duration ÷ workers, clamped to [1s, 2m]. Before
// any job has finished the mean falls back to one second, so early 429s
// still carry a sane hint. The HTTP layer attaches it as a Retry-After
// header; the cluster router uses it to back off per node.
func (s *Server) RetryAfter() time.Duration {
	ps := s.pool.Stats()
	mean := 1.0 // seconds; optimistic prior before the first completion
	if n := s.obs.runDuration.Count(); n > 0 {
		mean = s.obs.runDuration.Sum() / float64(n)
	}
	workers := ps.Workers
	if workers < 1 {
		workers = 1
	}
	secs := float64(ps.QueueLen+1) * mean / float64(workers)
	d := time.Duration(secs * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > 2*time.Minute {
		d = 2 * time.Minute
	}
	return d
}

// Degraded reports whether the persistent store is bypassing a
// misbehaving disk; /healthz surfaces it as status "degraded". A server
// without a store is never degraded.
func (s *Server) Degraded() bool {
	return s.opts.Store != nil && s.opts.Store.Degraded()
}

// Recover re-enqueues the jobs the journal found interrupted by the
// previous run (warm restart). Jobs whose results reached the store
// before the crash come back as instant cache hits; genuinely
// interrupted jobs re-execute. Call it once, after NewServer and before
// serving traffic. It returns how many jobs were re-submitted.
func (s *Server) Recover() int {
	if s.opts.Journal == nil {
		return 0
	}
	n := 0
	for _, p := range s.opts.Journal.Pending() {
		var spec JobSpec
		if err := json.Unmarshal(p.Spec, &spec); err != nil {
			s.log.Warn("recovery: unparseable journaled spec", "hash", p.Hash, "error", err.Error())
			continue
		}
		res, err := s.Submit(spec)
		if err != nil {
			s.log.Warn("recovery: re-submission refused", "hash", p.Hash, "error", err.Error())
			continue
		}
		n++
		s.log.Info("recovered journaled job", "job", res.Job.ID(), "hash", p.Hash,
			"cache_hit", res.CacheHit, "store_hit", res.StoreHit)
	}
	s.recovered.Store(int64(n))
	return n
}

// Stats is a point-in-time service snapshot. The response schema is
// documented in README.md ("Running as a service").
type Stats struct {
	// NodeID is the daemon's cluster identity (Options.NodeID; empty on a
	// standalone daemon without one).
	NodeID      string `json:"node_id,omitempty"`
	Workers     int    `json:"workers"`
	WorkersBusy int    `json:"workers_busy"`
	QueueCap    int    `json:"queue_cap"`
	// QueueLen is the current queue depth: admitted jobs not yet picked
	// up by a worker.
	QueueLen   int            `json:"queue_len"`
	Jobs       int            `json:"jobs"`
	ByState    map[string]int `json:"by_state"`
	Executions int64          `json:"executions"`
	DedupHits  int64          `json:"dedup_hits"`
	Rejected   int64          `json:"rejected"`
	// DeadlineExceeded counts jobs failed by the wall-clock deadline;
	// Panics counts jobs failed by a recovered engine panic; Recovered
	// counts jobs the startup journal replay re-enqueued.
	DeadlineExceeded int64      `json:"deadline_exceeded"`
	Panics           int64      `json:"panics"`
	Recovered        int64      `json:"recovered"`
	Cache            CacheStats `json:"cache"`
	// Store and Journal are nil on a memory-only server.
	Store   *store.Stats        `json:"store,omitempty"`
	Journal *store.JournalStats `json:"journal,omitempty"`

	StartedAt     time.Time `json:"started_at"`
	UptimeSeconds float64   `json:"uptime_seconds"`
}

// jobsByState counts current jobs per lifecycle state.
func (s *Server) jobsByState() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	by := make(map[string]int, len(allStates))
	for _, j := range s.order {
		by[string(j.State())]++
	}
	return by
}

// Stats returns a snapshot of service accounting.
func (s *Server) Stats() Stats {
	ps := s.pool.Stats()
	by := s.jobsByState()
	n := 0
	for _, c := range by {
		n += c
	}
	st := Stats{
		NodeID:  s.opts.NodeID,
		Workers: ps.Workers, WorkersBusy: ps.Busy,
		QueueCap: ps.QueueCap, QueueLen: ps.QueueLen,
		Jobs: n, ByState: by,
		Executions:       s.executions.Load(),
		DedupHits:        s.dedupHits.Load(),
		Rejected:         s.rejected.Load(),
		DeadlineExceeded: s.deadlined.Load(),
		Panics:           s.panicked.Load(),
		Recovered:        s.recovered.Load(),
		Cache:            s.cache.Stats(),
		StartedAt:        s.started,
		UptimeSeconds:    time.Since(s.started).Seconds(),
	}
	if s.opts.Store != nil {
		v := s.opts.Store.Stats()
		st.Store = &v
	}
	if s.opts.Journal != nil {
		v := s.opts.Journal.Stats()
		st.Journal = &v
	}
	return st
}
