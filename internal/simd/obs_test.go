package simd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// scrape fetches and parses /metrics from a test service.
func scrape(t *testing.T, url string) *obs.Snapshot {
	t.Helper()
	code, body, hdr := getBody(t, url+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	snap, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("parse /metrics: %v\n%s", err, body)
	}
	return snap
}

// mget reads one series or fails the test.
func mget(t *testing.T, snap *obs.Snapshot, name string, kv ...string) float64 {
	t.Helper()
	v, ok := snap.Get(name, kv...)
	if !ok {
		t.Fatalf("series %s%v missing from /metrics", name, kv)
	}
	return v
}

// TestMetricsEndpoint is the exposition acceptance test: run a job,
// re-submit it (cache hit), and check the service and engine series
// over HTTP — job states, submissions by outcome, cache counters,
// engine rounds/events bridged live from the progress hook — all in a
// document that parses cleanly.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 2})

	// Before any job: families exist with zero values.
	snap := scrape(t, ts.URL)
	if v := mget(t, snap, "simd_executions_total"); v != 0 {
		t.Fatalf("executions before any job = %v", v)
	}
	if v := mget(t, snap, "simd_jobs", "state", "done"); v != 0 {
		t.Fatalf("done jobs before any job = %v", v)
	}
	if v := snap.Sum("simd_build_info"); v != 1 {
		t.Fatalf("simd_build_info = %v, want 1", v)
	}
	if _, ok := snap.Get("simd_queue_capacity"); !ok {
		t.Fatal("no queue capacity gauge")
	}

	resp, sub := postJob(t, ts, fastBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	st := waitDone(t, ts, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job settled %s", st.State)
	}

	snap = scrape(t, ts.URL)
	if v := mget(t, snap, "simd_executions_total"); v != 1 {
		t.Fatalf("executions = %v, want 1", v)
	}
	if v := mget(t, snap, "simd_submissions_total", "outcome", "admitted"); v != 1 {
		t.Fatalf("admitted = %v, want 1", v)
	}
	if v := mget(t, snap, "simd_jobs_finished_total", "state", "done"); v != 1 {
		t.Fatalf("finished done = %v, want 1", v)
	}
	if v := mget(t, snap, "simd_jobs", "state", "done"); v != 1 {
		t.Fatalf("jobs done = %v, want 1", v)
	}
	// Engine signals bridged per GVT round: a completed run must have
	// produced rounds and committed events.
	rounds := mget(t, snap, "simd_engine_gvt_rounds_total")
	committed := mget(t, snap, "simd_engine_events_committed_total")
	if rounds == 0 || committed == 0 {
		t.Fatalf("engine bridge flat: rounds %v committed %v", rounds, committed)
	}
	if v := mget(t, snap, "simd_engine_events_processed_total"); v < committed {
		t.Fatalf("processed %v < committed %v", v, committed)
	}
	if v := mget(t, snap, "simd_queue_wait_seconds_count"); v != 1 {
		t.Fatalf("queue wait observations = %v, want 1", v)
	}
	if v := mget(t, snap, "simd_run_duration_seconds_count"); v != 1 {
		t.Fatalf("run duration observations = %v, want 1", v)
	}

	// Duplicate submission: a cache hit, visible in both the cache and
	// submission-outcome families, without a second execution.
	resp2, _ := postJob(t, ts, fastBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("dup submit: %d", resp2.StatusCode)
	}
	snap = scrape(t, ts.URL)
	if v := mget(t, snap, "simd_cache_hits_total"); v != 1 {
		t.Fatalf("cache hits = %v, want 1", v)
	}
	if v := mget(t, snap, "simd_submissions_total", "outcome", "cache_hit"); v != 1 {
		t.Fatalf("cache_hit outcome = %v, want 1", v)
	}
	if v := mget(t, snap, "simd_executions_total"); v != 1 {
		t.Fatalf("executions after cache hit = %v, want 1", v)
	}
	if v := mget(t, snap, "simd_jobs", "state", "done"); v != 2 {
		t.Fatalf("jobs done after cache hit = %v, want 2", v)
	}

	// Exposition hygiene: every declared histogram is well-formed.
	for name, typ := range snap.Types {
		if typ != "histogram" {
			continue
		}
		inf, ok := snap.Get(name+"_bucket", "le", "+Inf")
		if !ok {
			t.Fatalf("%s: no +Inf bucket", name)
		}
		count, _ := snap.Get(name + "_count")
		if inf != count {
			t.Fatalf("%s: +Inf %v != count %v", name, inf, count)
		}
	}
}

// TestMetricsConcurrentScrape hammers the registry from concurrent
// submissions and scrapers at once; under -race this pins the
// host-parallel contract of the whole bridge (the race-enabled simd
// suite is a tier-1 CI gate).
func TestMetricsConcurrentScrape(t *testing.T) {
	s, ts := newTestService(t, Options{Workers: 4, QueueDepth: 64})
	const submitters, each = 4, 3
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					scrape(t, ts.URL)
				}
			}
		}()
	}
	var subWG sync.WaitGroup
	for g := 0; g < submitters; g++ {
		subWG.Add(1)
		go func(g int) {
			defer subWG.Done()
			for i := 0; i < each; i++ {
				// Mix distinct specs with duplicates so cache, dedup and
				// execution paths all run under scrape load.
				_, sub := postJob(t, ts, fmt.Sprintf(
					`{"nodes":2,"workers_per_node":2,"lps_per_worker":4,"end_time":5,"seed":%d}`,
					900+(g*each+i)%5))
				if sub.ID != "" && !terminal(sub.State) {
					waitDone(t, ts, sub.ID)
				}
			}
		}(g)
	}
	subWG.Wait()
	close(stop)
	wg.Wait()

	snap := scrape(t, ts.URL)
	var finished float64
	for _, st := range []State{StateDone, StateFailed, StateCancelled} {
		finished += mget(t, snap, "simd_jobs_finished_total", "state", string(st))
	}
	// Deduped submissions coalesce onto an existing job instead of
	// creating one, so they don't add a finished job.
	deduped := mget(t, snap, "simd_submissions_total", "outcome", "deduped")
	if want := float64(submitters*each) - deduped; finished != want {
		t.Fatalf("finished jobs %v, want %v (%v deduped)", finished, want, deduped)
	}
	if v := mget(t, snap, "simd_executions_total"); v != float64(s.Executions()) {
		t.Fatalf("metrics executions %v != server %d", v, s.Executions())
	}
}

// TestStatsSchema pins the /stats additions: queue depth, busy workers
// and uptime ride along with the existing counters.
func TestStatsSchema(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 2})
	resp, sub := postJob(t, ts, fastBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitDone(t, ts, sub.ID)

	code, body, _ := getBody(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"workers", "workers_busy", "queue_cap", "queue_len", "jobs",
		"by_state", "executions", "dedup_hits", "rejected", "cache",
		"started_at", "uptime_seconds",
	} {
		if _, ok := raw[field]; !ok {
			t.Errorf("/stats missing %q: %s", field, body)
		}
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.UptimeSeconds <= 0 || st.StartedAt.IsZero() {
		t.Fatalf("uptime not populated: %+v", st)
	}
}

// TestHealthzBuildInfo pins the identity fields cluster nodes are told
// apart by.
func TestHealthzBuildInfo(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})
	code, body, _ := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h healthzResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Build.GoVersion == "" || h.StartedAt.IsZero() {
		t.Fatalf("healthz %+v", h)
	}
}

// TestJobStatusCarriesGVT pins that pollers see live progress without
// streaming: a finished job's status echoes its last round's GVT.
func TestJobStatusCarriesGVT(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})
	resp, sub := postJob(t, ts, fastBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	st := waitDone(t, ts, sub.ID)
	if st.GVT <= 0 {
		t.Fatalf("done job status GVT = %v, want > 0: %+v", st.GVT, st)
	}
	if st.Rounds == 0 {
		t.Fatalf("done job status has no rounds: %+v", st)
	}
}
