package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestAdvanceOrdering(t *testing.T) {
	env := NewEnv()
	var order []string
	env.Spawn("a", func(p *Proc) {
		p.Advance(30)
		order = append(order, fmt.Sprintf("a@%d", p.Now()))
	})
	env.Spawn("b", func(p *Proc) {
		p.Advance(10)
		order = append(order, fmt.Sprintf("b@%d", p.Now()))
		p.Advance(30)
		order = append(order, fmt.Sprintf("b@%d", p.Now()))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"b@10", "a@30", "b@40"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if env.Now() != 40 {
		t.Fatalf("final time = %d, want 40", env.Now())
	}
}

func TestAdvanceZeroYields(t *testing.T) {
	env := NewEnv()
	var order []string
	env.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Advance(0)
		order = append(order, "a2")
	})
	env.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// a yields at t=0; b (already scheduled) runs before a resumes.
	want := "a1,b1,a2"
	got := order[0] + "," + order[1] + "," + order[2]
	if got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	env := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Advance(5)
			order = append(order, i)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time order not FIFO: %v", order)
		}
	}
}

func TestAfterCallback(t *testing.T) {
	env := NewEnv()
	var fired []Time
	env.Spawn("a", func(p *Proc) {
		env.After(100, func() { fired = append(fired, env.Now()) })
		env.After(50, func() { fired = append(fired, env.Now()) })
		p.Advance(200)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 50 || fired[1] != 100 {
		t.Fatalf("callbacks fired at %v, want [50 100]", fired)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	env := NewEnv()
	env.Spawn("a", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Advance(-1) did not panic")
			}
			p.Advance(1) // leave the process cleanly
		}()
		p.Advance(-1)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexExclusionAndFIFO(t *testing.T) {
	env := NewEnv()
	m := &Mutex{Name: "m"}
	var events []string
	for i := 0; i < 3; i++ {
		i := i
		env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Advance(Time(i)) // stagger arrival: p0 first
			m.Lock(p)
			events = append(events, fmt.Sprintf("acq%d@%d", i, p.Now()))
			p.Advance(100)
			m.Unlock(p)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"acq0@0", "acq1@100", "acq2@200"}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
	if m.Contended != 2 {
		t.Errorf("Contended = %d, want 2", m.Contended)
	}
	if m.WaitTime != (100-1)+(200-2) {
		t.Errorf("WaitTime = %d, want %d", m.WaitTime, (100-1)+(200-2))
	}
}

func TestMutexHoldCost(t *testing.T) {
	env := NewEnv()
	m := &Mutex{Name: "m", HoldCost: 7}
	env.Spawn("a", func(p *Proc) {
		m.Lock(p)
		if p.Now() != 7 {
			t.Errorf("after Lock, now = %d, want 7", p.Now())
		}
		m.Unlock(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexTryLock(t *testing.T) {
	env := NewEnv()
	m := &Mutex{Name: "m"}
	env.Spawn("a", func(p *Proc) {
		if !m.TryLock(p) {
			t.Error("first TryLock failed")
		}
		p.Advance(10)
		m.Unlock(p)
	})
	env.Spawn("b", func(p *Proc) {
		p.Advance(5)
		if m.TryLock(p) {
			t.Error("TryLock succeeded while held")
		}
		p.Advance(10)
		if !m.TryLock(p) {
			t.Error("TryLock failed after release")
		}
		m.Unlock(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexUnlockByNonHolderPanics(t *testing.T) {
	env := NewEnv()
	m := &Mutex{Name: "m"}
	env.Spawn("a", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Unlock by non-holder did not panic")
			}
		}()
		m.Unlock(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	env := NewEnv()
	b := NewBarrier("b", 4)
	var released []Time
	for i := 0; i < 4; i++ {
		i := i
		env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Advance(Time(10 * i))
			b.Wait(p)
			released = append(released, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ts := range released {
		if ts != 30 {
			t.Fatalf("released at %v, want all at 30", released)
		}
	}
	// Idle (wait) time: 30 + 20 + 10 + 0.
	if b.WaitTime != 60 {
		t.Errorf("WaitTime = %d, want 60", b.WaitTime)
	}
	if b.Generation() != 1 {
		t.Errorf("Generation = %d, want 1", b.Generation())
	}
}

func TestBarrierCyclic(t *testing.T) {
	env := NewEnv()
	b := NewBarrier("b", 3)
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for round := 0; round < 5; round++ {
				p.Advance(Time(1 + i))
				b.Wait(p)
				counts[i]++
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 5 {
			t.Fatalf("p%d completed %d rounds, want 5", i, c)
		}
	}
	if b.Generation() != 5 {
		t.Errorf("Generation = %d, want 5", b.Generation())
	}
}

func TestQueueBlockingGet(t *testing.T) {
	env := NewEnv()
	q := &Queue{Name: "q"}
	var got any
	var when Time
	env.Spawn("consumer", func(p *Proc) {
		got = q.Get(p)
		when = p.Now()
	})
	env.Spawn("producer", func(p *Proc) {
		p.Advance(42)
		q.Put(p, "hello")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" || when != 42 {
		t.Fatalf("got %v at %d, want hello at 42", got, when)
	}
}

func TestQueueFIFOAndTryGet(t *testing.T) {
	env := NewEnv()
	q := &Queue{Name: "q"}
	env.Spawn("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
		}
		for i := 0; i < 5; i++ {
			v, ok := q.TryGet()
			if !ok || v.(int) != i {
				t.Errorf("TryGet #%d = %v,%v", i, v, ok)
			}
		}
		if _, ok := q.TryGet(); ok {
			t.Error("TryGet on empty queue succeeded")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if q.MaxLen != 5 {
		t.Errorf("MaxLen = %d, want 5", q.MaxLen)
	}
}

func TestQueuePutNBFromCallback(t *testing.T) {
	env := NewEnv()
	q := &Queue{Name: "q"}
	var got any
	env.Spawn("consumer", func(p *Proc) {
		got = q.Get(p)
		if p.Now() != 99 {
			t.Errorf("woke at %d, want 99", p.Now())
		}
	})
	env.Spawn("arm", func(p *Proc) {
		env.After(99, func() { q.PutNB(env, 7) })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("got %v, want 7", got)
	}
}

func TestQueueDrainInto(t *testing.T) {
	env := NewEnv()
	q := &Queue{Name: "q"}
	env.Spawn("p", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		out := q.DrainInto(nil)
		if len(out) != 2 || out[0] != 1 || out[1] != 2 {
			t.Errorf("DrainInto = %v", out)
		}
		if q.Len() != 0 {
			t.Errorf("Len after drain = %d", q.Len())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFlagBroadcast(t *testing.T) {
	env := NewEnv()
	f := &Flag{Name: "f"}
	var woke []Time
	for i := 0; i < 3; i++ {
		env.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			f.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	env.Spawn("setter", func(p *Proc) {
		p.Advance(17)
		f.Set(env)
		f.Set(env) // idempotent
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, ts := range woke {
		if ts != 17 {
			t.Fatalf("woke at %v, want all at 17", woke)
		}
	}
}

func TestFlagWaitAfterSetReturnsImmediately(t *testing.T) {
	env := NewEnv()
	f := &Flag{Name: "f"}
	env.Spawn("p", func(p *Proc) {
		f.Set(env)
		f.Wait(p) // must not block
		f.Reset()
		if f.IsSet() {
			t.Error("flag still set after Reset")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	env := NewEnv()
	q := &Queue{Name: "never"}
	env.Spawn("stuck", func(p *Proc) {
		q.Get(p)
	})
	err := env.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Procs) != 1 {
		t.Fatalf("deadlocked procs = %v", de.Procs)
	}
}

func TestLivelockDetection(t *testing.T) {
	env := NewEnv()
	env.LivelockLimit = 1000
	env.Spawn("spinner", func(p *Proc) {
		for {
			p.Advance(0)
		}
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("virtual livelock did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, `"spinner"`) {
			t.Errorf("livelock panic %q does not name the spinning process", msg)
		}
	}()
	_ = env.Run()
}

func TestLivelockNamesRetransmitLoop(t *testing.T) {
	// A zero-delay retransmission timer that re-arms itself from callback
	// context never advances time: the livelock detector must fire and the
	// panic must identify the process that armed the loop — not just the
	// anonymous callbacks, which dominate the dispatch stream.
	env := NewEnv()
	env.LivelockLimit = 5000
	var rearm func()
	rearm = func() {
		env.After(0, rearm) // zero RTO: retransmit forever at one instant
	}
	env.Spawn("nic-0", func(p *Proc) {
		env.After(0, rearm)
	})
	env.Spawn("bystander", func(p *Proc) {
		p.Advance(10)
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("virtual livelock did not panic")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{"virtual livelock", `"nic-0 (callback)"`} {
			if !strings.Contains(msg, want) {
				t.Errorf("livelock panic %q missing %q", msg, want)
			}
		}
	}()
	_ = env.Run()
}

func TestSpawnFromProcess(t *testing.T) {
	env := NewEnv()
	var childTime Time
	env.Spawn("parent", func(p *Proc) {
		p.Advance(5)
		env.Spawn("child", func(c *Proc) {
			childTime = c.Now()
		})
		p.Advance(5)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 5 {
		t.Fatalf("child started at %d, want 5", childTime)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{Second + Second/2, "1.500s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeSeconds(t *testing.T) {
	if s := (2 * Second).Seconds(); s != 2.0 {
		t.Errorf("Seconds = %v, want 2", s)
	}
}

// TestDeterminismProperty: any schedule of advances produces the same event
// ordering on repeated runs.
func TestDeterminismProperty(t *testing.T) {
	run := func(delays []uint16) string {
		env := NewEnv()
		var log []string
		for i, d := range delays {
			i, d := i, d
			env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Advance(Time(d % 100))
				log = append(log, fmt.Sprintf("%d@%d", i, p.Now()))
				p.Advance(Time(d % 37))
				log = append(log, fmt.Sprintf("%d@%d", i, p.Now()))
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, s := range log {
			out += s + ";"
		}
		return out
	}
	prop := func(delays []uint16) bool {
		if len(delays) > 64 {
			delays = delays[:64]
		}
		return run(delays) == run(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestEventHeapProperty: the scheduler pops events in (time, seq) order for
// arbitrary insertion sequences.
func TestEventHeapProperty(t *testing.T) {
	prop := func(times []uint32) bool {
		var h eventHeap
		for i, tt := range times {
			h.push(event{at: Time(tt % 1000), seq: uint64(i)})
		}
		var prev event
		first := true
		for len(h) > 0 {
			e := h.pop()
			if !first {
				if e.at < prev.at || (e.at == prev.at && e.seq < prev.seq) {
					return false
				}
			}
			prev, first = e, false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdvance(b *testing.B) {
	env := NewEnv()
	env.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1)
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkMutexUncontended(b *testing.B) {
	env := NewEnv()
	m := &Mutex{Name: "m"}
	env.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			m.Lock(p)
			m.Unlock(p)
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBarrier4(b *testing.B) {
	env := NewEnv()
	bar := NewBarrier("b", 4)
	for i := 0; i < 4; i++ {
		env.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for n := 0; n < b.N; n++ {
				p.Advance(1)
				bar.Wait(p)
			}
		})
	}
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestCondBroadcast(t *testing.T) {
	env := NewEnv()
	var c Cond
	c.Name = "c"
	var woke []Time
	for i := 0; i < 3; i++ {
		env.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			c.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	env.Spawn("caster", func(p *Proc) {
		p.Advance(40)
		c.Broadcast(env)
		p.Advance(10)
		c.Broadcast(env) // no waiters: no-op
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d, want 3", len(woke))
	}
	for _, ts := range woke {
		if ts != 40 {
			t.Fatalf("woke at %v, want 40", woke)
		}
	}
}

func TestProcPanicPropagatesToRun(t *testing.T) {
	env := NewEnv()
	env.Spawn("bomb", func(p *Proc) {
		p.Advance(5)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate to Run")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") || !strings.Contains(s, "bomb") {
			t.Errorf("panic value = %v", r)
		}
	}()
	_ = env.Run()
}
