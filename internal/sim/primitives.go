package sim

import "fmt"

// Mutex is a simulated mutual-exclusion lock. Contention is expressed in
// virtual time: a process that finds the lock held blocks until the holder
// releases it, and waiters acquire in FIFO order (deterministic).
//
// An optional HoldCost can be charged automatically: if non-zero, Lock
// advances the acquiring process by HoldCost before returning, modelling
// the critical-section entry cost (cache-line transfer, atomic RMW).
type Mutex struct {
	Name     string
	HoldCost Time

	holder  *Proc
	waiters []*Proc
	// Contention statistics (virtual time spent blocked, acquisitions).
	WaitTime  Time
	Acquires  int64
	Contended int64
}

// Lock acquires m, blocking p in virtual time while m is held.
func (m *Mutex) Lock(p *Proc) {
	m.Acquires++
	if m.holder != nil {
		m.Contended++
		start := p.Now()
		m.waiters = append(m.waiters, p)
		p.block("mutex " + m.Name)
		m.WaitTime += p.Now() - start
		// Ownership was transferred to us by Unlock.
		if m.holder != p {
			panic("sim: mutex handoff failed")
		}
	} else {
		m.holder = p
	}
	if m.HoldCost > 0 {
		p.Advance(m.HoldCost)
	}
}

// TryLock acquires m if it is free, without blocking.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.holder != nil {
		return false
	}
	m.Acquires++
	m.holder = p
	if m.HoldCost > 0 {
		p.Advance(m.HoldCost)
	}
	return true
}

// Unlock releases m, handing it to the longest-waiting process if any.
func (m *Mutex) Unlock(p *Proc) {
	if m.holder != p {
		panic(fmt.Sprintf("sim: %s unlocking mutex %q held by %v", p.name, m.Name, holderName(m.holder)))
	}
	if len(m.waiters) == 0 {
		m.holder = nil
		return
	}
	next := m.waiters[0]
	copy(m.waiters, m.waiters[1:])
	m.waiters = m.waiters[:len(m.waiters)-1]
	m.holder = next
	p.env.makeRunnable(next)
}

func holderName(p *Proc) string {
	if p == nil {
		return "<nobody>"
	}
	return p.name
}

// Barrier is a simulated cyclic barrier for a fixed set of participants,
// the analogue of pthread_barrier_t in the paper's Algorithm 1. The last
// arriving process releases all others at the current virtual time.
type Barrier struct {
	Name string
	N    int

	arrived []*Proc
	gen     uint64
	// WaitTime accumulates the total virtual time processes spent parked at
	// the barrier (the "dashed line" idle time in the paper's Figure 1).
	WaitTime Time
	Rounds   uint64
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(name string, n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier with n <= 0")
	}
	return &Barrier{Name: name, N: n}
}

// Generation returns the number of completed barrier rounds.
func (b *Barrier) Generation() uint64 { return b.gen }

// Wait blocks p until all N participants have arrived.
func (b *Barrier) Wait(p *Proc) {
	if len(b.arrived)+1 == b.N {
		for _, q := range b.arrived {
			p.env.makeRunnable(q)
		}
		b.arrived = b.arrived[:0]
		b.gen++
		b.Rounds++
		return
	}
	b.arrived = append(b.arrived, p)
	start := p.Now()
	p.block("barrier " + b.Name)
	b.WaitTime += p.Now() - start
}

// Queue is a simulated unbounded FIFO queue of arbitrary items, used for
// mailboxes between simulated threads. Get blocks in virtual time until an
// item is available; Put never blocks.
type Queue struct {
	Name    string
	items   []any
	getters []*Proc
	// MaxLen tracks the high-water mark (queue occupancy, which CA-GVT's
	// concluding remarks mention as an alternative synchronization signal).
	MaxLen int
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Put appends v, waking the longest-blocked getter if any. Callable from
// process context.
func (q *Queue) Put(p *Proc, v any) { q.put(p.env, v) }

// PutNB appends v from scheduler-callback context (e.g. a fabric delivery).
func (q *Queue) PutNB(env *Env, v any) { q.put(env, v) }

func (q *Queue) put(env *Env, v any) {
	if len(q.getters) > 0 {
		g := q.getters[0]
		copy(q.getters, q.getters[1:])
		q.getters = q.getters[:len(q.getters)-1]
		g.xfer = v
		env.makeRunnable(g)
		return
	}
	q.items = append(q.items, v)
	if len(q.items) > q.MaxLen {
		q.MaxLen = len(q.items)
	}
}

// Get removes and returns the oldest item, blocking p until one exists.
func (q *Queue) Get(p *Proc) any {
	if len(q.items) > 0 {
		v := q.items[0]
		copy(q.items, q.items[1:])
		q.items[len(q.items)-1] = nil
		q.items = q.items[:len(q.items)-1]
		return v
	}
	q.getters = append(q.getters, p)
	p.block("queue " + q.Name)
	v := p.xfer
	p.xfer = nil
	return v
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue) TryGet() (any, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return v, true
}

// DrainInto appends all queued items to dst and returns the extended slice.
func (q *Queue) DrainInto(dst []any) []any {
	dst = append(dst, q.items...)
	for i := range q.items {
		q.items[i] = nil
	}
	q.items = q.items[:0]
	return dst
}

// Cond is a simulated condition variable: processes Wait until another
// process (or a scheduler callback) Broadcasts. There is no associated
// lock; under the kernel's run-to-block semantics a caller re-checks its
// predicate after waking, exactly like a pthread condvar loop.
type Cond struct {
	Name    string
	waiters []*Proc
}

// Wait blocks p until the next Broadcast.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.block("cond " + c.Name)
}

// Broadcast wakes every current waiter.
func (c *Cond) Broadcast(env *Env) {
	for _, p := range c.waiters {
		env.makeRunnable(p)
	}
	c.waiters = c.waiters[:0]
}

// Flag is a simulated one-shot broadcast condition: processes wait until
// some process (or callback) sets it. After Reset it can be reused.
type Flag struct {
	Name    string
	set     bool
	waiters []*Proc
}

// IsSet reports whether the flag is set.
func (f *Flag) IsSet() bool { return f.set }

// Set raises the flag and wakes all waiters. Idempotent.
func (f *Flag) Set(env *Env) {
	if f.set {
		return
	}
	f.set = true
	for _, p := range f.waiters {
		env.makeRunnable(p)
	}
	f.waiters = f.waiters[:0]
}

// Reset lowers the flag. It must not have waiters.
func (f *Flag) Reset() {
	if len(f.waiters) > 0 {
		panic("sim: resetting flag with waiters")
	}
	f.set = false
}

// Wait blocks p until the flag is set.
func (f *Flag) Wait(p *Proc) {
	if f.set {
		return
	}
	f.waiters = append(f.waiters, p)
	p.block("flag " + f.Name)
}
