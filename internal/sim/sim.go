// Package sim is a deterministic, process-oriented discrete-event
// simulation kernel. It plays the role that real hardware threads, pthread
// primitives and wall-clock time play in the paper's testbed: simulated
// "processes" (goroutines under a strict hand-off scheduler) advance a
// shared virtual clock, contend on simulated mutexes, meet at simulated
// barriers and exchange data through simulated queues.
//
// Exactly one goroutine runs at any instant (the scheduler hands control to
// one process at a time and waits for it to block), so execution is fully
// deterministic regardless of GOMAXPROCS and needs no memory
// synchronization inside the simulated world.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Time is virtual time in nanoseconds.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// procState describes what a process is currently doing; used for
// diagnostics when the simulation deadlocks.
type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateRunning
	stateBlocked
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	}
	return "?"
}

// Proc is a simulated thread of execution. All of its methods must be
// called only from within the process's own function body.
type Proc struct {
	env       *Env
	name      string
	id        int
	resumeCh  chan struct{}
	state     procState
	blockedOn string
	xfer      any // value handed over by Queue.Put to a blocked getter
	panicked  any // panic value captured from the process goroutine
}

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// event is a scheduled occurrence: either resuming a process or running a
// callback in scheduler context.
type event struct {
	at  Time
	seq uint64
	p   *Proc  // non-nil: resume this process
	fn  func() // non-nil: run this callback (must not block)
	src string // callback origin: the process that scheduled it (for diagnostics)
}

type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{}
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && (*h).less(l, min) {
			min = l
		}
		if r < n && (*h).less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		(*h)[i], (*h)[min] = (*h)[min], (*h)[i]
		i = min
	}
	return top
}

// Env is a simulation environment: a virtual clock plus the set of
// processes and pending events that drive it.
type Env struct {
	now     Time
	seq     uint64
	heap    eventHeap
	procs   []*Proc
	live    int
	cur     *Proc
	yieldCh chan struct{}
	running bool

	// Livelock guard: number of consecutive dispatches allowed at a single
	// timestamp before the kernel declares a virtual livelock. Zero means
	// the default (50 million).
	LivelockLimit int

	sameTimeCount int
	lastDispatch  Time
	cbSrc         string         // origin of the callback currently executing
	sameTimeBy    map[string]int // dispatch counts per origin near the livelock limit

	// stop is the asynchronous cancellation request flag: the only Env
	// field any goroutine other than the scheduler's may touch. Run polls
	// it between dispatches and unwinds the simulation when set.
	stop atomic.Bool
	// cancelling tells resuming processes to abort instead of continuing.
	// Written by cancelAll while every process goroutine is parked;
	// subsequent reads are ordered by each process's resume channel.
	cancelling bool
}

// livelockWindow is how many dispatches before the livelock limit the
// kernel starts attributing events to their origin, so the panic can name
// the stuck process without charging bookkeeping to healthy runs.
const livelockWindow = 1024

// ErrCancelled is returned by Run when Cancel aborted the simulation.
var ErrCancelled = errors.New("sim: run cancelled")

// cancelStride is how many dispatches pass between polls of the stop
// flag: cancellation latency is bounded by it while the dispatch hot
// loop pays one atomic load per stride, not per event.
const cancelStride = 64

// procCancelled is the panic value yield raises to unwind a process
// during cancellation; the spawn wrapper swallows it.
type procCancelled struct{}

// Cancel requests that a running (or about-to-run) simulation stop. It
// is the one Env method safe to call from any goroutine: Run observes
// the request between dispatches, terminates every simulated process,
// and returns ErrCancelled. Calling it after Run finished is a no-op.
func (e *Env) Cancel() { e.stop.Store(true) }

// NewEnv returns an empty simulation environment at time zero.
func NewEnv() *Env {
	return &Env{yieldCh: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Live returns the number of spawned processes that have not finished.
func (e *Env) Live() int { return e.live }

func (e *Env) nextSeq() uint64 {
	e.seq++
	return e.seq
}

// Spawn registers a new process. It may be called before Run or from
// within a running process; the new process starts at the current virtual
// time (after the caller yields).
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		env:      e,
		name:     name,
		id:       len(e.procs),
		resumeCh: make(chan struct{}),
		state:    stateNew,
	}
	e.procs = append(e.procs, p)
	e.live++
	go func() {
		<-p.resumeCh
		// A panic in a process is re-raised in the scheduler's goroutine
		// (Run's caller) so tests and callers can recover it normally.
		// The cancellation unwind is the exception: it is the kernel's
		// own doing and terminates the process silently.
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procCancelled); !ok {
					p.panicked = r
				}
			}
			p.state = stateDone
			p.blockedOn = ""
			e.live--
			e.yieldCh <- struct{}{}
		}()
		if e.cancelling {
			return
		}
		fn(p)
	}()
	p.state = stateRunnable
	e.heap.push(event{at: e.now, seq: e.nextSeq(), p: p})
	return p
}

// After schedules fn to run in scheduler context at now+d. fn must not
// block; it may wake processes (e.g. Queue.PutNB) and schedule more
// callbacks. Safe to call from process context or from another callback.
func (e *Env) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: After with negative delay")
	}
	// Record the scheduling origin: the running process, or — when called
	// from another callback — that callback's own origin, so chains of
	// rescheduled callbacks (e.g. retransmission timers) stay attributed
	// to the process that started them.
	src := e.cbSrc
	if e.cur != nil {
		src = e.cur.name
	}
	e.heap.push(event{at: e.now + d, seq: e.nextSeq(), fn: fn, src: src})
}

// makeRunnable schedules p to resume at the current time.
func (e *Env) makeRunnable(p *Proc) {
	if p.state != stateBlocked {
		panic(fmt.Sprintf("sim: makeRunnable(%s) in state %v", p.name, p.state))
	}
	p.state = stateRunnable
	p.blockedOn = ""
	e.heap.push(event{at: e.now, seq: e.nextSeq(), p: p})
}

// DeadlockError reports that live processes remain but no event can ever
// wake them.
type DeadlockError struct {
	Now   Time
	Procs []string // "name: blocked on X"
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v; %d live processes: %s",
		d.Now, len(d.Procs), strings.Join(d.Procs, "; "))
}

// Run executes events until none remain. It returns a *DeadlockError if
// live processes remain blocked with an empty event heap, and panics on a
// virtual livelock (an unbounded number of events at one timestamp, which
// indicates a simulated busy-wait that never advances time).
func (e *Env) Run() error {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	limit := e.LivelockLimit
	if limit <= 0 {
		limit = 50_000_000
	}
	var dispatches uint64
	for len(e.heap) > 0 {
		if dispatches%cancelStride == 0 && e.stop.Load() {
			e.cancelAll()
			return ErrCancelled
		}
		dispatches++
		ev := e.heap.pop()
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		if ev.at == e.lastDispatch {
			e.sameTimeCount++
			if e.sameTimeCount > limit-livelockWindow {
				if e.sameTimeBy == nil {
					e.sameTimeBy = make(map[string]int)
				}
				e.sameTimeBy[eventOrigin(ev)]++
			}
			if e.sameTimeCount > limit {
				panic(fmt.Sprintf("sim: virtual livelock at t=%v (>%d events without advancing time); stuck process: %s",
					e.now, limit, e.livelockCulprit()))
			}
		} else {
			e.sameTimeCount = 0
			e.lastDispatch = ev.at
			e.sameTimeBy = nil
		}
		e.now = ev.at
		if ev.fn != nil {
			e.cbSrc = ev.src
			ev.fn()
			e.cbSrc = ""
			continue
		}
		p := ev.p
		if p.state != stateRunnable {
			panic(fmt.Sprintf("sim: dispatching %s in state %v", p.name, p.state))
		}
		p.state = stateRunning
		e.cur = p
		p.resumeCh <- struct{}{}
		<-e.yieldCh
		e.cur = nil
		if p.panicked != nil {
			panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, p.panicked))
		}
	}
	if e.live > 0 {
		var blocked []string
		for _, p := range e.procs {
			if p.state == stateBlocked || p.state == stateRunnable {
				blocked = append(blocked, fmt.Sprintf("%s: %s (%s)", p.name, p.state, p.blockedOn))
			}
		}
		sort.Strings(blocked)
		return &DeadlockError{Now: e.now, Procs: blocked}
	}
	return nil
}

// cancelAll unwinds a cancelled simulation: every unfinished process is
// resumed one final time into a procCancelled panic (or, if it never
// started, straight past its body), so no goroutine outlives Run. It
// runs in scheduler context, where every process goroutine is parked on
// its resume channel.
func (e *Env) cancelAll() {
	e.cancelling = true
	for _, p := range e.procs {
		if p.state == stateDone {
			continue
		}
		p.resumeCh <- struct{}{}
		<-e.yieldCh
	}
}

// eventOrigin names the source of a dispatched event for diagnostics.
func eventOrigin(ev event) string {
	switch {
	case ev.p != nil:
		return ev.p.name
	case ev.src != "":
		return ev.src + " (callback)"
	}
	return "scheduler callback"
}

// livelockCulprit names the origin responsible for the most dispatches in
// the final window before the livelock limit, ties broken alphabetically.
func (e *Env) livelockCulprit() string {
	culprit, max := "unknown", 0
	for src, n := range e.sameTimeBy {
		if n > max || (n == max && src < culprit) {
			culprit, max = src, n
		}
	}
	return fmt.Sprintf("%q (%d of last %d dispatches)", culprit, max, livelockWindow)
}

// yield returns control to the scheduler. The process must already have
// arranged to be woken (a scheduled resume event or registration on a
// primitive's wait list).
func (p *Proc) yield() {
	p.env.yieldCh <- struct{}{}
	<-p.resumeCh
	if p.env.cancelling {
		panic(procCancelled{})
	}
	p.state = stateRunning
}

// block parks the process until something calls makeRunnable on it.
func (p *Proc) block(what string) {
	p.state = stateBlocked
	p.blockedOn = what
	p.yield()
}

// Advance blocks the process for virtual duration d. d must be >= 0;
// Advance(0) yields to other processes scheduled at the current instant.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic("sim: Advance with negative duration")
	}
	e := p.env
	e.heap.push(event{at: e.now + d, seq: e.nextSeq(), p: p})
	p.state = stateRunnable
	p.blockedOn = fmt.Sprintf("advance until %v", e.now+d)
	p.yield()
	p.blockedOn = ""
}
