package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestCancelUnwindsProcesses cancels a run mid-flight and verifies Run
// returns ErrCancelled with every process goroutine terminated.
func TestCancelUnwindsProcesses(t *testing.T) {
	before := runtime.NumGoroutine()
	env := NewEnv()
	started := make(chan struct{}, 1)
	var after []string
	for i := 0; i < 8; i++ {
		env.Spawn("looper", func(p *Proc) {
			for {
				p.Advance(Microsecond)
				select {
				case started <- struct{}{}:
				default:
				}
			}
		})
	}
	env.Spawn("never-runs-after-cancel", func(p *Proc) {
		p.Advance(Second)
		after = append(after, "ran")
	})
	go func() {
		<-started
		env.Cancel()
	}()
	err := env.Run()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run returned %v, want ErrCancelled", err)
	}
	if env.Live() != 0 {
		t.Fatalf("%d live processes after cancellation, want 0", env.Live())
	}
	if len(after) != 0 {
		t.Fatalf("process body ran past cancellation: %v", after)
	}
	waitForGoroutines(t, before)
}

// TestCancelBeforeRun verifies a pre-cancelled environment aborts
// immediately, including processes that never started.
func TestCancelBeforeRun(t *testing.T) {
	before := runtime.NumGoroutine()
	env := NewEnv()
	ran := false
	env.Spawn("unstarted", func(p *Proc) { ran = true })
	env.Cancel()
	if err := env.Run(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run returned %v, want ErrCancelled", err)
	}
	if ran {
		t.Fatal("process body ran despite pre-run cancellation")
	}
	if env.Live() != 0 {
		t.Fatalf("%d live processes, want 0", env.Live())
	}
	waitForGoroutines(t, before)
}

// TestCancelBlockedOnPrimitives verifies processes parked on kernel
// primitives (queue get, barrier) unwind cleanly too.
func TestCancelBlockedOnPrimitives(t *testing.T) {
	before := runtime.NumGoroutine()
	env := NewEnv()
	q := &Queue{Name: "q"}
	bar := NewBarrier("bar", 3)
	env.Spawn("getter", func(p *Proc) { q.Get(p) })
	env.Spawn("waiter", func(p *Proc) { bar.Wait(p) })
	env.Spawn("ticker", func(p *Proc) {
		for {
			p.Advance(Millisecond)
		}
	})
	go func() {
		time.Sleep(time.Millisecond)
		env.Cancel()
	}()
	if err := env.Run(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run returned %v, want ErrCancelled", err)
	}
	if env.Live() != 0 {
		t.Fatalf("%d live processes, want 0", env.Live())
	}
	waitForGoroutines(t, before)
}

// TestCancelAfterCompletionIsNoop cancels after a run drained normally.
func TestCancelAfterCompletionIsNoop(t *testing.T) {
	env := NewEnv()
	env.Spawn("quick", func(p *Proc) { p.Advance(10) })
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	env.Cancel() // must not panic or leak
}

// waitForGoroutines polls until the goroutine count drops back to (or
// below) the pre-test baseline, failing after a deadline. Exact counts
// are racy under parallel tests, so allow a small slack.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), baseline)
}
