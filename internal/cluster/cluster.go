// Package cluster describes the simulated machine: how many nodes, how
// many worker threads per node, how LPs map onto workers (the paper's
// placement: consecutive blocks of LPs per thread, consecutive blocks of
// threads per node), and the per-operation CPU cost model of a KNL-class
// core that the Time Warp engine charges against virtual time.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/event"
	"repro/internal/sim"
)

// Topology is the static shape of the simulated cluster.
type Topology struct {
	Nodes          int // cluster nodes (MPI ranks)
	WorkersPerNode int // simulation threads per node (paper: 60)
	LPsPerWorker   int // logical processes per thread (paper: 128)
}

// Validate checks the topology for sanity.
func (t Topology) Validate() error {
	if t.Nodes <= 0 || t.WorkersPerNode <= 0 || t.LPsPerWorker <= 0 {
		return fmt.Errorf("cluster: non-positive topology %+v", t)
	}
	return nil
}

// TotalWorkers returns the number of worker threads in the cluster.
func (t Topology) TotalWorkers() int { return t.Nodes * t.WorkersPerNode }

// TotalLPs returns the number of LPs in the cluster.
func (t Topology) TotalLPs() int { return t.TotalWorkers() * t.LPsPerWorker }

// NodeOf returns the node hosting lp.
func (t Topology) NodeOf(lp event.LPID) int {
	return int(lp) / (t.WorkersPerNode * t.LPsPerWorker)
}

// WorkerOf returns (node, worker-within-node) hosting lp.
func (t Topology) WorkerOf(lp event.LPID) (node, worker int) {
	w := int(lp) / t.LPsPerWorker
	return w / t.WorkersPerNode, w % t.WorkersPerNode
}

// GlobalWorkerOf returns the cluster-wide worker index hosting lp.
func (t Topology) GlobalWorkerOf(lp event.LPID) int {
	return int(lp) / t.LPsPerWorker
}

// FirstLP returns the first LP of (node, worker).
func (t Topology) FirstLP(node, worker int) event.LPID {
	return event.LPID((node*t.WorkersPerNode + worker) * t.LPsPerWorker)
}

// Class returns the locality class of a message from src to dst.
func (t Topology) Class(src, dst event.LPID) event.Class {
	if src == dst {
		return event.Local
	}
	sn, sw := t.WorkerOf(src)
	dn, dw := t.WorkerOf(dst)
	if sn != dn {
		return event.Remote
	}
	if sw != dw {
		return event.Regional
	}
	// Same worker, different LP: still intra-thread, no interconnect.
	return event.Local
}

// CostModel is the per-operation CPU cost model for a simulated worker
// thread, calibrated to a ~1.3 GHz KNL core. Every cost is charged as
// virtual time via sim.Proc.Advance.
type CostModel struct {
	// Flop is the time of one EPG work unit ("approximately one FLOP",
	// paper §2). KNL scalar FLOP at 1.3 GHz ≈ 0.77 ns; we round to 1 ns.
	Flop sim.Time
	// EventOverhead is the fixed bookkeeping per processed event (queue
	// pop, history append, scheduling the next event).
	EventOverhead sim.Time
	// StateSave is the cost of one LP state snapshot (charged per
	// checkpoint; see core.Config.CheckpointInterval).
	StateSave sim.Time
	// QueueOp is one pending-set push or annihilation probe.
	QueueOp sim.Time
	// LocalSend is an LP sending to itself (no interconnect).
	LocalSend sim.Time
	// RegionalSend is the shared-memory + lock path to another core.
	RegionalSend sim.Time
	// RegionalLockHold is the critical-section entry cost of a mailbox.
	RegionalLockHold sim.Time
	// RemoteEnqueue is writing a remote message into the node's global
	// outbound structure (read later by the MPI thread).
	RemoteEnqueue sim.Time
	// InboxDrainPerMsg is consuming one message from the worker's mailbox.
	InboxDrainPerMsg sim.Time
	// RollbackPerEvent is undoing one processed event (state restore +
	// anti-message generation).
	RollbackPerEvent sim.Time
	// FossilPerEvent is freeing one committed history entry.
	FossilPerEvent sim.Time
	// GVTBookkeeping is one update of GVT counters / control message.
	GVTBookkeeping sim.Time
	// EffCompute is CA-GVT's per-round efficiency computation (Algorithm 3
	// line 31) — the overhead that makes CA-GVT trail pure Mattern by a few
	// percent on computation-dominated models (paper §6).
	EffCompute sim.Time
	// IdlePoll is one pass of a worker's main loop that found nothing to
	// do (prevents zero-time spinning and models the polling cost).
	IdlePoll sim.Time
	// BarrierEntry is the CPU cost of one pthread-barrier entry.
	BarrierEntry sim.Time
	// MigratePack is serializing one LP for migration (state snapshot +
	// RNG stream + routing update) at a GVT commit point.
	MigratePack sim.Time
	// MigratePerEvent is packing or installing one pending event carried
	// along with a migrating LP.
	MigratePerEvent sim.Time
	// MigrateInstall is deserializing and installing one migrated LP at
	// its destination worker.
	MigrateInstall sim.Time
}

// KNLDefaults returns the calibrated default cost model.
func KNLDefaults() CostModel {
	return CostModel{
		Flop:             1 * sim.Nanosecond,
		EventOverhead:    300 * sim.Nanosecond,
		StateSave:        200 * sim.Nanosecond,
		QueueOp:          150 * sim.Nanosecond,
		LocalSend:        100 * sim.Nanosecond,
		RegionalSend:     250 * sim.Nanosecond,
		RegionalLockHold: 120 * sim.Nanosecond,
		RemoteEnqueue:    250 * sim.Nanosecond,
		InboxDrainPerMsg: 120 * sim.Nanosecond,
		RollbackPerEvent: 450 * sim.Nanosecond,
		FossilPerEvent:   60 * sim.Nanosecond,
		GVTBookkeeping:   200 * sim.Nanosecond,
		EffCompute:       1500 * sim.Nanosecond,
		IdlePoll:         150 * sim.Nanosecond,
		BarrierEntry:     300 * sim.Nanosecond,
		MigratePack:      2000 * sim.Nanosecond,
		MigratePerEvent:  150 * sim.Nanosecond,
		MigrateInstall:   2000 * sim.Nanosecond,
	}
}

// EPGCost returns the virtual CPU time of processing one event with the
// given event processing granularity.
func (c CostModel) EPGCost(epg int) sim.Time {
	return sim.Time(epg) * c.Flop
}

// Scaled returns the cost model with every per-operation cost multiplied
// by f — a straggler node whose cores run f times slower. f == 1 returns
// the receiver unchanged (bit-identical, no float rounding).
func (c CostModel) Scaled(f float64) CostModel {
	if f == 1 {
		return c
	}
	scale := func(t sim.Time) sim.Time { return sim.Time(float64(t) * f) }
	c.Flop = scale(c.Flop)
	c.EventOverhead = scale(c.EventOverhead)
	c.StateSave = scale(c.StateSave)
	c.QueueOp = scale(c.QueueOp)
	c.LocalSend = scale(c.LocalSend)
	c.RegionalSend = scale(c.RegionalSend)
	c.RegionalLockHold = scale(c.RegionalLockHold)
	c.RemoteEnqueue = scale(c.RemoteEnqueue)
	c.InboxDrainPerMsg = scale(c.InboxDrainPerMsg)
	c.RollbackPerEvent = scale(c.RollbackPerEvent)
	c.FossilPerEvent = scale(c.FossilPerEvent)
	c.GVTBookkeeping = scale(c.GVTBookkeeping)
	c.EffCompute = scale(c.EffCompute)
	c.IdlePoll = scale(c.IdlePoll)
	c.BarrierEntry = scale(c.BarrierEntry)
	c.MigratePack = scale(c.MigratePack)
	c.MigratePerEvent = scale(c.MigratePerEvent)
	c.MigrateInstall = scale(c.MigrateInstall)
	return c
}

// NearSquareGrid factors n into the most-square w×h with w >= h, for
// grid-structured models (pcs, epidemic) laid over a topology's LPs.
func NearSquareGrid(n int) (w, h int) {
	for d := int(math.Sqrt(float64(n))); d >= 1; d-- {
		if n%d == 0 {
			return n / d, d
		}
	}
	return n, 1
}
