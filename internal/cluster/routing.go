// LP→worker routing for dynamic load balancing. The static Topology maps
// every LP to its home worker arithmetically; once the balancer migrates
// an LP, that mapping becomes state. Routing is the cluster-wide routing
// table: it starts as the static placement (with a zero-allocation fast
// path, so balancer-off runs pay nothing) and is updated atomically — in
// one step, at the migration pack point — when an LP moves, so in-flight
// events addressed to the old home can be forwarded to the new one.
package cluster

import "repro/internal/event"

// Routing maps each LP to the global index of the worker currently
// hosting it. It is not internally locked: the Time Warp engine runs on a
// deterministic cooperative kernel, and all updates happen at GVT commit
// points where the updater is the only runnable process touching it.
type Routing struct {
	top   Topology
	home  []int32 // global worker per LP; nil until the first migration
	moved int     // LPs currently away from their static home
}

// NewRouting returns the static placement for top.
func NewRouting(top Topology) *Routing { return &Routing{top: top} }

// Worker returns the global worker index currently hosting lp.
func (r *Routing) Worker(lp event.LPID) int {
	if r.home == nil {
		return int(lp) / r.top.LPsPerWorker
	}
	return int(r.home[lp])
}

// Node returns the node currently hosting lp.
func (r *Routing) Node(lp event.LPID) int {
	return r.Worker(lp) / r.top.WorkersPerNode
}

// NodeWorkerOf returns (node, worker-within-node) currently hosting lp.
func (r *Routing) NodeWorkerOf(lp event.LPID) (node, worker int) {
	w := r.Worker(lp)
	return w / r.top.WorkersPerNode, w % r.top.WorkersPerNode
}

// Move reroutes lp to the given global worker. The table is shared by all
// simulated nodes (the cluster is simulated in one address space), so the
// update is atomic cluster-wide: every send issued after Move returns is
// addressed to the new home.
func (r *Routing) Move(lp event.LPID, gworker int) {
	if r.home == nil {
		r.home = make([]int32, r.top.TotalLPs())
		for i := range r.home {
			r.home[i] = int32(i / r.top.LPsPerWorker)
		}
	}
	staticHome := int32(int(lp) / r.top.LPsPerWorker)
	wasAway := r.home[lp] != staticHome
	r.home[lp] = int32(gworker)
	isAway := int32(gworker) != staticHome
	switch {
	case isAway && !wasAway:
		r.moved++
	case !isAway && wasAway:
		r.moved--
	}
}

// Moved returns how many LPs are currently placed away from their static
// home.
func (r *Routing) Moved() int { return r.moved }

// ClassFrom returns the locality class of a message sent by the worker
// with global index gw to dst, under the current routing. It mirrors
// Topology.Class but keys the source side on where the message actually
// is (the sending or forwarding worker) rather than the sender LP's
// static home. A self-send (src == dst) is Local exactly when the LP is
// hosted on gw — which is always, except while the event is being
// forwarded after a migration.
func (r *Routing) ClassFrom(gw int, dst event.LPID) event.Class {
	dw := r.Worker(dst)
	if dw == gw {
		return event.Local
	}
	if dw/r.top.WorkersPerNode == gw/r.top.WorkersPerNode {
		return event.Regional
	}
	return event.Remote
}
