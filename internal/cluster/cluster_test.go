package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func TestTopologyCounts(t *testing.T) {
	top := Topology{Nodes: 8, WorkersPerNode: 60, LPsPerWorker: 128}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.TotalWorkers() != 480 {
		t.Errorf("TotalWorkers = %d", top.TotalWorkers())
	}
	if top.TotalLPs() != 61440 {
		t.Errorf("TotalLPs = %d", top.TotalLPs())
	}
}

func TestValidateRejectsNonPositive(t *testing.T) {
	bad := []Topology{
		{Nodes: 0, WorkersPerNode: 1, LPsPerWorker: 1},
		{Nodes: 1, WorkersPerNode: 0, LPsPerWorker: 1},
		{Nodes: 1, WorkersPerNode: 1, LPsPerWorker: 0},
	}
	for _, top := range bad {
		if top.Validate() == nil {
			t.Errorf("Validate(%+v) = nil", top)
		}
	}
}

func TestPlacement(t *testing.T) {
	top := Topology{Nodes: 2, WorkersPerNode: 3, LPsPerWorker: 4}
	// LP 0..11 on node 0 (workers 0,1,2), LP 12..23 on node 1.
	cases := []struct {
		lp     event.LPID
		node   int
		worker int
	}{
		{0, 0, 0}, {3, 0, 0}, {4, 0, 1}, {11, 0, 2},
		{12, 1, 0}, {15, 1, 0}, {16, 1, 1}, {23, 1, 2},
	}
	for _, c := range cases {
		if got := top.NodeOf(c.lp); got != c.node {
			t.Errorf("NodeOf(%d) = %d, want %d", c.lp, got, c.node)
		}
		n, w := top.WorkerOf(c.lp)
		if n != c.node || w != c.worker {
			t.Errorf("WorkerOf(%d) = (%d,%d), want (%d,%d)", c.lp, n, w, c.node, c.worker)
		}
	}
	if top.FirstLP(1, 2) != 20 {
		t.Errorf("FirstLP(1,2) = %d, want 20", top.FirstLP(1, 2))
	}
	if top.GlobalWorkerOf(17) != 4 {
		t.Errorf("GlobalWorkerOf(17) = %d, want 4", top.GlobalWorkerOf(17))
	}
}

func TestClass(t *testing.T) {
	top := Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 2}
	cases := []struct {
		src, dst event.LPID
		want     event.Class
	}{
		{0, 0, event.Local},    // self
		{0, 1, event.Local},    // same worker
		{0, 2, event.Regional}, // same node, other worker
		{0, 4, event.Remote},   // other node
		{5, 2, event.Remote},
		{6, 7, event.Local},
	}
	for _, c := range cases {
		if got := top.Class(c.src, c.dst); got != c.want {
			t.Errorf("Class(%d,%d) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

// Property: placement functions are mutually consistent for every LP.
func TestPlacementConsistencyProperty(t *testing.T) {
	prop := func(nodes, workers, lps uint8) bool {
		top := Topology{
			Nodes:          int(nodes%8) + 1,
			WorkersPerNode: int(workers%8) + 1,
			LPsPerWorker:   int(lps%8) + 1,
		}
		for lp := 0; lp < top.TotalLPs(); lp++ {
			id := event.LPID(lp)
			n, w := top.WorkerOf(id)
			if top.NodeOf(id) != n {
				return false
			}
			if top.GlobalWorkerOf(id) != n*top.WorkersPerNode+w {
				return false
			}
			first := top.FirstLP(n, w)
			if id < first || int(id) >= int(first)+top.LPsPerWorker {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEPGCost(t *testing.T) {
	c := KNLDefaults()
	if c.EPGCost(10000) != 10000*c.Flop {
		t.Error("EPGCost wrong")
	}
}

func TestKNLDefaultsPositive(t *testing.T) {
	c := KNLDefaults()
	for _, v := range []int64{
		int64(c.Flop), int64(c.EventOverhead), int64(c.StateSave), int64(c.QueueOp), int64(c.LocalSend),
		int64(c.RegionalSend), int64(c.RegionalLockHold), int64(c.RemoteEnqueue),
		int64(c.InboxDrainPerMsg), int64(c.RollbackPerEvent), int64(c.FossilPerEvent),
		int64(c.GVTBookkeeping), int64(c.EffCompute), int64(c.IdlePoll), int64(c.BarrierEntry),
	} {
		if v <= 0 {
			t.Fatal("KNLDefaults has a non-positive cost")
		}
	}
}

func TestNearSquareGrid(t *testing.T) {
	for _, n := range []int{1, 2, 4, 12, 32, 128, 1024, 97} {
		w, h := NearSquareGrid(n)
		if w*h != n || w < h || h < 1 {
			t.Fatalf("grid(%d) = %dx%d", n, w, h)
		}
	}
	if w, h := NearSquareGrid(128); w != 16 || h != 8 {
		t.Fatalf("grid(128) = %dx%d, want 16x8", w, h)
	}
}
