package simdcluster

import (
	"sync"
	"time"

	"repro/internal/simdclient"
)

// MemberState is a member's position in the health-gated lifecycle:
//
//	starting ──(healthz ok)──▶ up ◀──(healthz ok)── down
//	                            └──(N consecutive failures)──▶ down
//
// A member is registered as starting and serves no traffic until its
// first passing health check — the cluster equivalent of "the node is
// not started until it answers". Draining is orthogonal: a draining
// member keeps its state (it still answers reports) but receives no
// new dispatches, and its unfinished jobs move elsewhere.
type MemberState string

const (
	MemberStarting MemberState = "starting"
	MemberUp       MemberState = "up"
	MemberDown     MemberState = "down"
)

// Member is one simd daemon under the router.
type Member struct {
	id string

	mu       sync.Mutex
	base     string
	pid      int
	state    MemberState
	draining bool
	// failures counts consecutive failed health probes; it resets to
	// zero on any success.
	failures int
	lastErr  string
	lastSeen time.Time
	client   *simdclient.Client
	// probe is a second client with the (tighter) health-probe timeout,
	// so a hung member cannot stall the health loop for the full proxy
	// timeout.
	probe *simdclient.Client
}

// ID returns the member's stable identity.
func (m *Member) ID() string { return m.id }

// State returns the member's lifecycle state.
func (m *Member) State() MemberState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// eligible reports whether the member may receive new dispatches.
func (m *Member) eligible() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state == MemberUp && !m.draining
}

// reachable reports whether proxied reads (status, report) may be sent.
// A draining member is still reachable — only dispatch is gated.
func (m *Member) reachable() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state == MemberUp
}

// api returns the member's HTTP client and base URL under the lock —
// both can change when a supervisor respawns the member on a new port.
func (m *Member) api() *simdclient.Client {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.client
}

// rebase points the member at a new address/pid (a supervisor respawn)
// and returns it to starting so the health gate re-runs before traffic.
func (m *Member) rebase(base string, pid int, probeTimeout time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.base = base
	m.pid = pid
	m.client = simdclient.New(base)
	m.probe = simdclient.New(base)
	m.probe.HTTP.Timeout = probeTimeout
	m.state = MemberStarting
	m.failures = 0
	m.lastErr = ""
}

// NodeStatus is the wire form of a member for /nodes and /stats.
type NodeStatus struct {
	ID       string      `json:"node_id"`
	Addr     string      `json:"addr"`
	State    MemberState `json:"state"`
	Draining bool        `json:"draining,omitempty"`
	// PID is the supervised process id (0 when the member was registered
	// by URL rather than spawned).
	PID      int       `json:"pid,omitempty"`
	Failures int       `json:"failures,omitempty"`
	LastErr  string    `json:"last_error,omitempty"`
	LastSeen time.Time `json:"last_seen,omitempty"`
}

// snapshot captures the member for the wire.
func (m *Member) snapshot() NodeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return NodeStatus{
		ID: m.id, Addr: m.base, State: m.state, Draining: m.draining,
		PID: m.pid, Failures: m.failures, LastErr: m.lastErr, LastSeen: m.lastSeen,
	}
}
