package simdcluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Rank orders node ids for a key by rendezvous (highest-random-weight)
// hashing: each node scores sha256(node \x00 key) and the list is
// sorted by descending score. Every router ranks identically with no
// shared state, each key gets an effectively uniform independent
// permutation, and removing a node only reassigns the keys it owned —
// the failover path is simply "next id in the rank". The key here is
// the job's canonical spec hash, so placement is content-addressed:
// resubmitting a spec lands on the node whose caches already hold it.
func Rank(nodes []string, key string) []string {
	if len(nodes) == 0 {
		return nil
	}
	type scored struct {
		id    string
		score uint64
	}
	sc := make([]scored, len(nodes))
	for i, id := range nodes {
		h := sha256.New()
		h.Write([]byte(id))
		h.Write([]byte{0}) // separator: ("ab","c") must not collide with ("a","bc")
		h.Write([]byte(key))
		sum := h.Sum(nil)
		sc[i] = scored{id: id, score: binary.BigEndian.Uint64(sum[:8])}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].score != sc[j].score {
			return sc[i].score > sc[j].score
		}
		return sc[i].id < sc[j].id
	})
	out := make([]string, len(sc))
	for i, s := range sc {
		out[i] = s.id
	}
	return out
}
