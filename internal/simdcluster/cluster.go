// Package simdcluster turns N simd daemons into one service: an HTTP
// router that shards jobs across members by their content address,
// health-gates membership, and fails work over to live replicas when a
// node dies or drains.
//
// Placement is rendezvous hashing over the job's canonical spec hash
// (see Rank), refined by cache residency: a spec whose result is known
// to live in node K's caches routes back to K, so repeat submissions
// are store hits instead of re-executions. Members share one
// content-addressed store directory (each with its own journal), which
// is what makes failover cheap: a re-dispatched job that the dead node
// had already completed resolves as a store hit on its new owner, byte
// identical, with zero re-execution.
//
// Membership is health-gated: a registered member is "starting" and
// receives nothing until /healthz passes, mirroring the embedded-
// cluster lifecycle where a node is not started until it answers.
// After FailThreshold consecutive probe failures an up member is
// marked down, and every non-terminal job mapped to it is re-
// dispatched to the next live replica in its rank.
package simdcluster

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/simd"
	"repro/internal/simdclient"
	"repro/internal/store"
)

// Options configures a Cluster.
type Options struct {
	// HealthInterval is the probe cadence (default 1s).
	HealthInterval time.Duration
	// FailThreshold is how many consecutive probe failures demote an up
	// member to down (default 3).
	FailThreshold int
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// Replicas caps how many candidate members one dispatch tries before
	// giving up (0: all eligible members).
	Replicas int
	// Logger receives membership and failover logs; nil discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.HealthInterval <= 0 {
		o.HealthInterval = time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// clusterJob is the router's record of one submission: enough to proxy
// reads to its current owner and to re-dispatch the canonical spec
// when that owner disappears.
type clusterJob struct {
	id   string
	hash string
	// spec is the canonical spec document, kept verbatim so a failover
	// re-submission hashes identically on the new owner.
	spec json.RawMessage

	// Guarded by Cluster.mu:
	node         string // current owner member id
	localID      string // the owner's job id for this work
	last         simd.JobStatus
	redispatches int
}

// StatusError is an error with an HTTP status, so the router can
// answer proxy failures precisely (429 with Retry-After, 503 when no
// replica is live, 404 for unknown ids).
type StatusError struct {
	Code       int
	Msg        string
	RetryAfter string // optional Retry-After header value
}

func (e *StatusError) Error() string { return e.Msg }

func statusErrf(code int, format string, args ...any) *StatusError {
	return &StatusError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Cluster routes jobs across health-gated simd members.
type Cluster struct {
	opts Options
	log  *slog.Logger
	reg  *obs.Registry

	mu      sync.Mutex
	members map[string]*Member
	order   []string // registration order, for stable display
	jobs    map[string]*clusterJob
	jobSeq  []*clusterJob
	// resident maps spec hash → the member that last completed it, so
	// repeat submissions route to warm caches ahead of ring rank.
	resident map[string]string

	nextID  atomic.Int64
	started time.Time
	stop    chan struct{}
	loop    sync.WaitGroup
	closed  bool

	submitted    *obs.Counter
	failovers    *obs.Counter
	redispatches *obs.Counter
	proxyErrors  *obs.Counter
	nodesUp      *obs.GaugeVec
}

// New builds a cluster and starts its health loop. Register members
// with AddMember; Close stops probing.
func New(opts Options) *Cluster {
	opts = opts.withDefaults()
	c := &Cluster{
		opts:     opts,
		log:      opts.Logger,
		reg:      obs.NewRegistry(),
		members:  make(map[string]*Member),
		jobs:     make(map[string]*clusterJob),
		resident: make(map[string]string),
		started:  time.Now(),
		stop:     make(chan struct{}),
	}
	c.submitted = c.reg.Counter("simdcluster_submitted_total", "Jobs accepted by the router.")
	c.failovers = c.reg.Counter("simdcluster_failovers_total", "Node-loss/drain events that triggered job re-dispatch.")
	c.redispatches = c.reg.Counter("simdcluster_redispatches_total", "Jobs moved to another member after their owner died or drained.")
	c.proxyErrors = c.reg.Counter("simdcluster_proxy_errors_total", "Member requests that failed at transport level.")
	c.nodesUp = c.reg.GaugeVec("simdcluster_nodes", "Members per lifecycle state.", "state")
	c.reg.OnScrape(func() {
		counts := map[MemberState]float64{MemberStarting: 0, MemberUp: 0, MemberDown: 0}
		for _, m := range c.Members() {
			counts[m.State]++
		}
		for st, n := range counts {
			c.nodesUp.With(string(st)).Set(n)
		}
	})
	c.loop.Add(1)
	go c.healthLoop()
	return c
}

// Registry exposes the cluster's own metrics registry (the router's
// /metrics renders it ahead of the merged member snapshots).
func (c *Cluster) Registry() *obs.Registry { return c.reg }

// Close stops the health loop. Members are external processes and are
// not touched.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	c.loop.Wait()
}

// AddMember registers (or re-registers, after a supervisor respawn) a
// member at base. It enters the lifecycle as starting and receives no
// dispatches until a health probe passes; use WaitUp to gate on that.
func (c *Cluster) AddMember(id, base string, pid int) *Member {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		m = &Member{id: id}
		c.members[id] = m
		c.order = append(c.order, id)
	}
	m.rebase(base, pid, c.opts.ProbeTimeout)
	c.log.Info("cluster member registered", "node_id", id, "addr", base, "pid", pid)
	return m
}

// Member returns a registered member by id.
func (c *Cluster) Member(id string) (*Member, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	return m, ok
}

// Members snapshots every member in registration order.
func (c *Cluster) Members() []NodeStatus {
	c.mu.Lock()
	ms := make([]*Member, 0, len(c.order))
	for _, id := range c.order {
		ms = append(ms, c.members[id])
	}
	c.mu.Unlock()
	out := make([]NodeStatus, len(ms))
	for i, m := range ms {
		out[i] = m.snapshot()
	}
	return out
}

// WaitUp blocks until the member passes its health gate (or the
// timeout elapses) — "started" means answering, not merely spawned.
func (c *Cluster) WaitUp(id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		m, ok := c.Member(id)
		if ok && m.State() == MemberUp {
			return nil
		}
		if time.Now().After(deadline) {
			st := MemberState("unregistered")
			if ok {
				st = m.State()
			}
			return fmt.Errorf("simdcluster: member %s not up after %s (state %s)", id, timeout, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Drain marks a member ineligible for new work and moves its
// unfinished jobs to live replicas; Drain(id, false) re-admits it.
// The member itself is untouched — a draining node still answers
// reads, which is the point: drain, watch it idle, then stop it.
func (c *Cluster) Drain(id string, on bool) error {
	m, ok := c.Member(id)
	if !ok {
		return statusErrf(http.StatusNotFound, "unknown node %q", id)
	}
	m.mu.Lock()
	m.draining = on
	m.mu.Unlock()
	c.log.Info("cluster member drain", "node_id", id, "draining", on)
	if on {
		c.failoverFrom(id, "drain")
	}
	return nil
}

// healthLoop probes every member each interval and applies the
// lifecycle transitions.
func (c *Cluster) healthLoop() {
	defer c.loop.Done()
	t := time.NewTicker(c.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		c.mu.Lock()
		ms := make([]*Member, 0, len(c.members))
		for _, m := range c.members {
			ms = append(ms, m)
		}
		c.mu.Unlock()
		var wg sync.WaitGroup
		for _, m := range ms {
			wg.Add(1)
			go func(m *Member) {
				defer wg.Done()
				c.probe(m)
			}(m)
		}
		wg.Wait()
	}
}

// probe runs one health check and applies the state machine.
func (c *Cluster) probe(m *Member) {
	h, err := m.probeClient().Health()
	if err == nil && h.NodeID != "" && h.NodeID != m.id {
		// Right port, wrong process: treat an identity mismatch as a
		// failure so a recycled address cannot impersonate a member.
		err = fmt.Errorf("node identity mismatch: probe answered as %q", h.NodeID)
	}
	m.mu.Lock()
	var wentUp, wentDown bool
	if err == nil {
		m.failures = 0
		m.lastErr = ""
		m.lastSeen = time.Now()
		if m.state != MemberUp {
			m.state = MemberUp
			wentUp = true
		}
	} else {
		m.failures++
		m.lastErr = err.Error()
		if m.state == MemberUp && m.failures >= c.opts.FailThreshold {
			m.state = MemberDown
			wentDown = true
		}
	}
	id, failures := m.id, m.failures
	m.mu.Unlock()

	if wentUp {
		c.log.Info("cluster member up", "node_id", id)
	}
	if wentDown {
		c.log.Warn("cluster member down", "node_id", id, "failures", failures, "error", err.Error())
		c.failoverFrom(id, "down")
	}
}

// failoverFrom re-dispatches every non-terminal job owned by the named
// member to a live replica. Jobs that already finished keep their
// mapping — their results live in the shared store, and a later report
// fetch re-dispatches on demand (resolving as a store hit).
func (c *Cluster) failoverFrom(id, reason string) {
	c.mu.Lock()
	var moving []*clusterJob
	for _, j := range c.jobSeq {
		if j.node == id && !terminal(j.last.State) {
			moving = append(moving, j)
		}
	}
	c.mu.Unlock()
	if len(moving) == 0 {
		return
	}
	c.failovers.Inc()
	c.log.Warn("cluster failover", "node_id", id, "reason", reason, "jobs", len(moving))
	for _, j := range moving {
		if err := c.redispatch(j, id); err != nil {
			c.log.Error("cluster failover re-dispatch failed", "job", j.id, "error", err.Error())
		}
	}
}

// terminal mirrors simd's lifecycle: done, failed and cancelled jobs
// never need failover.
func terminal(s simd.State) bool {
	return s == simd.StateDone || s == simd.StateFailed || s == simd.StateCancelled
}

// memberSubmit is the slice of a member's submit (or error) response
// the router consumes.
type memberSubmit struct {
	simd.JobStatus
	CacheHitNow bool   `json:"cache_hit_now"`
	DedupedNow  bool   `json:"deduped_now"`
	Error       string `json:"error"`
}

// SubmitResult is the router's submit response: the owning member's
// status with the cluster-scoped job id and node attribution.
type SubmitResult struct {
	simd.JobStatus
	CacheHitNow bool `json:"cache_hit_now"`
	DedupedNow  bool `json:"deduped_now"`
	// Node is the member the job was dispatched to.
	Node string `json:"node_id"`
}

// Submit validates, canonicalizes and routes one spec document.
func (c *Cluster) Submit(body []byte) (*SubmitResult, error) {
	var spec simd.JobSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		return nil, statusErrf(http.StatusBadRequest, "bad job spec: %v", err)
	}
	canon, err := spec.Canonical()
	if err != nil {
		return nil, statusErrf(http.StatusBadRequest, "%v", err)
	}
	hash, err := canon.Hash()
	if err != nil {
		return nil, statusErrf(http.StatusBadRequest, "%v", err)
	}
	raw, err := json.Marshal(canon)
	if err != nil {
		return nil, statusErrf(http.StatusInternalServerError, "%v", err)
	}

	m, ms, err := c.dispatch(hash, raw, "")
	if err != nil {
		return nil, err
	}
	j := &clusterJob{
		id:   fmt.Sprintf("c%d", c.nextID.Add(1)),
		hash: hash,
		spec: raw,
	}
	c.mu.Lock()
	j.node, j.localID, j.last = m.ID(), ms.ID, ms.JobStatus
	c.jobs[j.id] = j
	c.jobSeq = append(c.jobSeq, j)
	if ms.State == simd.StateDone {
		c.resident[hash] = m.ID()
	}
	c.mu.Unlock()
	c.submitted.Inc()

	res := &SubmitResult{JobStatus: ms.JobStatus, CacheHitNow: ms.CacheHitNow, DedupedNow: ms.DedupedNow, Node: m.ID()}
	res.ID = j.id
	return res, nil
}

// candidates orders eligible members for a hash: the cache-resident
// owner first (routing to warm caches beats ring rank), then the
// rendezvous rank, capped at Replicas attempts.
func (c *Cluster) candidates(hash, exclude string) []*Member {
	c.mu.Lock()
	ids := make([]string, 0, len(c.members))
	for id, m := range c.members {
		if id != exclude && m.eligible() {
			ids = append(ids, id)
		}
	}
	ranked := Rank(ids, hash)
	if owner, ok := c.resident[hash]; ok && owner != exclude {
		for i, id := range ranked {
			if id == owner && i > 0 {
				copy(ranked[1:i+1], ranked[:i])
				ranked[0] = owner
				break
			}
		}
	}
	if c.opts.Replicas > 0 && len(ranked) > c.opts.Replicas {
		ranked = ranked[:c.opts.Replicas]
	}
	out := make([]*Member, len(ranked))
	for i, id := range ranked {
		out[i] = c.members[id]
	}
	c.mu.Unlock()
	return out
}

// dispatch submits the canonical spec to the best candidate, walking
// down the rank on capacity or transport failures. A member answering
// 429 is skipped (the next replica absorbs the spill); only when every
// candidate is saturated does the caller see 429, carrying the
// smallest Retry-After any member offered.
func (c *Cluster) dispatch(hash string, raw []byte, exclude string) (*Member, memberSubmit, error) {
	var (
		sawFull    bool
		retryAfter string
		lastErr    error
	)
	cands := c.candidates(hash, exclude)
	for _, m := range cands {
		var ms memberSubmit
		code, hdr, err := m.api().PostJSON("/jobs", raw, &ms)
		if err != nil {
			c.proxyErrors.Inc()
			lastErr = err
			continue
		}
		switch {
		case code == http.StatusOK || code == http.StatusAccepted:
			return m, ms, nil
		case code == http.StatusTooManyRequests:
			sawFull = true
			if v := hdr.Get("Retry-After"); v != "" && (retryAfter == "" || v < retryAfter) {
				retryAfter = v
			}
		case code == http.StatusBadRequest:
			// A spec the member rejects is a client error, not a routing
			// problem; trying replicas would just repeat it.
			return nil, ms, statusErrf(code, "%s", ms.Error)
		default:
			lastErr = fmt.Errorf("member %s: status %d: %s", m.ID(), code, ms.Error)
		}
	}
	if sawFull {
		return nil, memberSubmit{}, &StatusError{
			Code: http.StatusTooManyRequests, Msg: "every live replica is at capacity", RetryAfter: retryAfter,
		}
	}
	if lastErr != nil {
		return nil, memberSubmit{}, statusErrf(http.StatusServiceUnavailable, "no live replica accepted the job: %v", lastErr)
	}
	return nil, memberSubmit{}, statusErrf(http.StatusServiceUnavailable, "no live replica available (%d members eligible)", len(cands))
}

// redispatch moves one job off its (dead or draining) owner: the
// canonical spec is re-submitted to the next candidate in its rank.
// The shared store makes this idempotent — work the old owner finished
// resolves as a store hit on the new one.
func (c *Cluster) redispatch(j *clusterJob, exclude string) error {
	m, ms, err := c.dispatch(j.hash, j.spec, exclude)
	if err != nil {
		return err
	}
	c.mu.Lock()
	j.node, j.localID, j.last = m.ID(), ms.ID, ms.JobStatus
	j.redispatches++
	if ms.State == simd.StateDone {
		c.resident[j.hash] = m.ID()
	}
	c.mu.Unlock()
	c.redispatches.Inc()
	c.log.Info("cluster job re-dispatched", "job", j.id, "to", m.ID(), "state", string(ms.State))
	return nil
}

// JobView is the wire form of one cluster job.
type JobView struct {
	simd.JobStatus
	// Node is the member currently owning the job.
	Node string `json:"node_id"`
	// Redispatches counts failover moves this job survived.
	Redispatches int `json:"redispatches,omitempty"`
	// Stale marks a status served from the router's last observation
	// because the owner is unreachable.
	Stale bool `json:"stale,omitempty"`
}

func (c *Cluster) view(j *clusterJob, stale bool) JobView {
	c.mu.Lock()
	v := JobView{JobStatus: j.last, Node: j.node, Redispatches: j.redispatches, Stale: stale}
	c.mu.Unlock()
	v.ID = j.id
	return v
}

// job resolves a cluster job id.
func (c *Cluster) job(cid string) (*clusterJob, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[cid]
	if !ok {
		return nil, statusErrf(http.StatusNotFound, "unknown job %q", cid)
	}
	return j, nil
}

// owner returns the member currently mapped to the job, its local job
// id there, and the owning node id (valid even when the member lookup
// fails).
func (c *Cluster) owner(j *clusterJob) (*Member, string, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.members[j.node], j.localID, j.node
}

// observe folds a freshly proxied status into the job record.
func (c *Cluster) observe(j *clusterJob, st simd.JobStatus) {
	c.mu.Lock()
	j.last = st
	if st.State == simd.StateDone {
		c.resident[j.hash] = j.node
	}
	c.mu.Unlock()
}

// Job returns one job's live status, proxied from its owner. When the
// owner is gone the job is re-dispatched if still unfinished;
// finished jobs answer from the router's last observation.
func (c *Cluster) Job(cid string) (JobView, error) {
	j, err := c.job(cid)
	if err != nil {
		return JobView{}, err
	}
	m, localID, node := c.owner(j)
	if m != nil && m.reachable() {
		var st simd.JobStatus
		err := m.api().GetJSON("/jobs/"+localID, &st)
		if err == nil {
			c.observe(j, st)
			return c.view(j, false), nil
		}
		c.proxyErrors.Inc()
	}
	c.mu.Lock()
	fin := terminal(j.last.State)
	c.mu.Unlock()
	if fin {
		return c.view(j, true), nil
	}
	if err := c.redispatch(j, node); err != nil {
		return JobView{}, err
	}
	return c.view(j, false), nil
}

// Jobs lists every cluster job, refreshed against the reachable
// members in one fan-out (one /jobs listing per member, not one call
// per job).
func (c *Cluster) Jobs() []JobView {
	c.refreshJobs()
	c.mu.Lock()
	seq := append([]*clusterJob(nil), c.jobSeq...)
	c.mu.Unlock()
	out := make([]JobView, len(seq))
	for i, j := range seq {
		out[i] = c.view(j, false)
	}
	return out
}

// refreshJobs folds each reachable member's job listing into the
// cluster records.
func (c *Cluster) refreshJobs() {
	type listing struct {
		node string
		jobs []simd.JobStatus
	}
	c.mu.Lock()
	ms := make([]*Member, 0, len(c.members))
	for _, m := range c.members {
		ms = append(ms, m)
	}
	c.mu.Unlock()
	ch := make(chan listing, len(ms))
	var wg sync.WaitGroup
	for _, m := range ms {
		if !m.reachable() {
			continue
		}
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			var resp struct {
				Jobs []simd.JobStatus `json:"jobs"`
			}
			if err := m.api().GetJSON("/jobs", &resp); err == nil {
				ch <- listing{node: m.ID(), jobs: resp.Jobs}
			}
		}(m)
	}
	wg.Wait()
	close(ch)
	byOwner := make(map[string]simd.JobStatus)
	for l := range ch {
		for _, st := range l.jobs {
			byOwner[l.node+"/"+st.ID] = st
		}
	}
	c.mu.Lock()
	for _, j := range c.jobSeq {
		if st, ok := byOwner[j.node+"/"+j.localID]; ok {
			j.last = st
			if st.State == simd.StateDone {
				c.resident[j.hash] = j.node
			}
		}
	}
	c.mu.Unlock()
}

// Report fetches a job's canonical report from its owner. A dead
// owner is survivable even after completion: the job is re-dispatched
// and the shared store serves the identical bytes from the new owner.
func (c *Cluster) Report(cid string) ([]byte, error) {
	j, err := c.job(cid)
	if err != nil {
		return nil, err
	}
	for attempt := 0; attempt < 2; attempt++ {
		m, localID, node := c.owner(j)
		if m == nil || !m.reachable() {
			if err := c.redispatch(j, node); err != nil {
				return nil, err
			}
			continue
		}
		code, data, _, err := m.api().GetRaw("/jobs/" + localID + "/report")
		switch {
		case err != nil:
			c.proxyErrors.Inc()
			if err := c.redispatch(j, node); err != nil {
				return nil, err
			}
		case code == http.StatusOK:
			return data, nil
		case code == http.StatusNotFound:
			// The owner restarted and no longer knows this local id;
			// re-submit (an instant store hit if the work finished).
			if err := c.redispatch(j, node); err != nil {
				return nil, err
			}
		default:
			return nil, statusErrf(code, "job %s report: %s", cid, string(data))
		}
	}
	return nil, statusErrf(http.StatusServiceUnavailable, "job %s: report unavailable after re-dispatch", cid)
}

// Cancel cancels a job on its current owner.
func (c *Cluster) Cancel(cid string) (JobView, error) {
	j, err := c.job(cid)
	if err != nil {
		return JobView{}, err
	}
	m, localID, node := c.owner(j)
	if m == nil || !m.reachable() {
		return JobView{}, statusErrf(http.StatusServiceUnavailable, "job %s: owner %s unreachable", cid, node)
	}
	var st simd.JobStatus
	code, err := m.api().Delete("/jobs/"+localID, &st)
	if err != nil {
		c.proxyErrors.Inc()
		return JobView{}, statusErrf(http.StatusServiceUnavailable, "%v", err)
	}
	if code != http.StatusOK {
		return JobView{}, statusErrf(code, "job %s: cancel refused by %s", cid, node)
	}
	c.observe(j, st)
	return c.view(j, false), nil
}

// NodeStats pairs a member's membership view with its latest service
// stats (nil when the member could not be scraped).
type NodeStats struct {
	NodeStatus
	Stats *simd.Stats `json:"stats,omitempty"`
}

// Stats is the cluster-level service snapshot: the field-wise sum of
// every reachable member's stats (the embedded simd.Stats — so simtop
// and the smoke scripts read a cluster exactly like one big daemon),
// the router's own counters, and the per-node breakdown the totals
// were summed from. Totals and breakdown come from the same scrape, so
// total == Σ nodes[].stats holds within one response.
type Stats struct {
	simd.Stats
	ClusterJobs   int         `json:"cluster_jobs"`
	Submitted     int64       `json:"cluster_submitted"`
	Failovers     int64       `json:"cluster_failovers"`
	Redispatches  int64       `json:"cluster_redispatches"`
	ResidentSpecs int         `json:"resident_specs"`
	Nodes         []NodeStats `json:"nodes"`
}

// Stats scrapes every reachable member once and sums.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	ms := make([]*Member, 0, len(c.order))
	for _, id := range c.order {
		ms = append(ms, c.members[id])
	}
	jobs := len(c.jobSeq)
	resident := len(c.resident)
	c.mu.Unlock()

	nodes := make([]NodeStats, len(ms))
	var wg sync.WaitGroup
	for i, m := range ms {
		nodes[i].NodeStatus = m.snapshot()
		if m.State() == MemberDown {
			continue
		}
		wg.Add(1)
		go func(i int, m *Member) {
			defer wg.Done()
			var st simd.Stats
			if err := m.api().GetJSON("/stats", &st); err == nil {
				nodes[i].Stats = &st
			}
		}(i, m)
	}
	wg.Wait()

	out := Stats{
		ClusterJobs: jobs, Submitted: c.submitted.Value(),
		Failovers: c.failovers.Value(), Redispatches: c.redispatches.Value(),
		ResidentSpecs: resident, Nodes: nodes,
	}
	for _, n := range nodes {
		if n.Stats != nil {
			sumStats(&out.Stats, n.Stats)
		}
	}
	out.StartedAt = c.started
	out.UptimeSeconds = time.Since(c.started).Seconds()
	return out
}

// sumStats folds one member's stats into the cluster totals. Counters
// and levels add; note that with a shared store directory the summed
// store bytes count each member's view of the same files.
func sumStats(into *simd.Stats, s *simd.Stats) {
	into.Workers += s.Workers
	into.WorkersBusy += s.WorkersBusy
	into.QueueCap += s.QueueCap
	into.QueueLen += s.QueueLen
	into.Jobs += s.Jobs
	if into.ByState == nil {
		into.ByState = make(map[string]int)
	}
	for k, v := range s.ByState {
		into.ByState[k] += v
	}
	into.Executions += s.Executions
	into.DedupHits += s.DedupHits
	into.Rejected += s.Rejected
	into.DeadlineExceeded += s.DeadlineExceeded
	into.Panics += s.Panics
	into.Recovered += s.Recovered

	into.Cache.Entries += s.Cache.Entries
	into.Cache.Bytes += s.Cache.Bytes
	into.Cache.Budget += s.Cache.Budget
	into.Cache.Hits += s.Cache.Hits
	into.Cache.Misses += s.Cache.Misses
	into.Cache.Evictions += s.Cache.Evictions
	into.Cache.Puts += s.Cache.Puts

	if s.Store != nil {
		if into.Store == nil {
			into.Store = &store.Stats{}
		}
		into.Store.Entries += s.Store.Entries
		into.Store.Bytes += s.Store.Bytes
		into.Store.MaxBytes += s.Store.MaxBytes
		into.Store.Hits += s.Store.Hits
		into.Store.Misses += s.Store.Misses
		into.Store.Puts += s.Store.Puts
		into.Store.PutErrors += s.Store.PutErrors
		into.Store.Quarantined += s.Store.Quarantined
		into.Store.Evictions += s.Store.Evictions
		into.Store.Skipped += s.Store.Skipped
		into.Store.Degraded = into.Store.Degraded || s.Store.Degraded
	}
}

// MemberMetrics scrapes every reachable member's /metrics and returns
// the merged snapshot (counters summed across the cluster).
func (c *Cluster) MemberMetrics() *obs.Snapshot {
	c.mu.Lock()
	ms := make([]*Member, 0, len(c.members))
	for _, m := range c.members {
		ms = append(ms, m)
	}
	c.mu.Unlock()
	snaps := make([]*obs.Snapshot, len(ms))
	var wg sync.WaitGroup
	for i, m := range ms {
		if !m.reachable() {
			continue
		}
		wg.Add(1)
		go func(i int, m *Member) {
			defer wg.Done()
			if snap, err := m.api().Metrics(); err == nil {
				snaps[i] = snap
			}
		}(i, m)
	}
	wg.Wait()
	return obs.MergeSnapshots(snaps...)
}

// probeClient is split out for Member so the health loop can use a
// tighter timeout than proxied requests.
func (m *Member) probeClient() *simdclient.Client {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.probe
}
