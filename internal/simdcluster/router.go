package simdcluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// maxSpecBytes mirrors the member daemons' submission bound.
const maxSpecBytes = 1 << 20

// Handler returns the router's HTTP API — deliberately shaped like one
// simd daemon, so clients (and simtop) point at a cluster unchanged:
//
//	POST   /jobs                 submit a JobSpec; routed by content address
//	GET    /jobs                 list cluster jobs with node attribution
//	GET    /jobs/{id}            one job's status (proxied from its owner)
//	GET    /jobs/{id}/report     the canonical report (re-dispatched if the owner died)
//	DELETE /jobs/{id}            cancel
//	GET    /nodes                membership: state, address, pid, failures
//	POST   /nodes/{id}/drain     move the node's work off and stop routing to it
//	DELETE /nodes/{id}/drain     re-admit the node
//	GET    /stats                summed member stats + per-node breakdown
//	GET    /metrics              router metrics + merged member metrics
//	GET    /healthz              router liveness with member counts
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", c.handleSubmit)
	mux.HandleFunc("GET /jobs", c.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /jobs/{id}/report", c.handleReport)
	mux.HandleFunc("DELETE /jobs/{id}", c.handleCancel)
	mux.HandleFunc("GET /nodes", c.handleNodes)
	mux.HandleFunc("POST /nodes/{id}/drain", c.handleDrain(true))
	mux.HandleFunc("DELETE /nodes/{id}/drain", c.handleDrain(false))
	mux.HandleFunc("GET /stats", c.handleStats)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// writeErr renders an error, honoring StatusError codes and headers.
func writeErr(w http.ResponseWriter, err error) {
	var se *StatusError
	if !errors.As(err, &se) {
		se = &StatusError{Code: http.StatusInternalServerError, Msg: err.Error()}
	}
	if se.RetryAfter != "" {
		w.Header().Set("Retry-After", se.RetryAfter)
	}
	writeJSON(w, se.Code, map[string]string{"error": se.Msg})
}

func (c *Cluster) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		writeErr(w, statusErrf(http.StatusBadRequest, "reading spec: %v", err))
		return
	}
	res, err := c.Submit(body)
	if err != nil {
		writeErr(w, err)
		return
	}
	code := http.StatusAccepted
	if res.CacheHitNow || res.DedupedNow {
		code = http.StatusOK
	}
	writeJSON(w, code, res)
}

func (c *Cluster) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": c.Jobs()})
}

func (c *Cluster) handleJob(w http.ResponseWriter, r *http.Request) {
	v, err := c.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (c *Cluster) handleReport(w http.ResponseWriter, r *http.Request) {
	data, err := c.Report(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (c *Cluster) handleCancel(w http.ResponseWriter, r *http.Request) {
	v, err := c.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (c *Cluster) handleNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"nodes": c.Members()})
}

func (c *Cluster) handleDrain(on bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := c.Drain(id, on); err != nil {
			writeErr(w, err)
			return
		}
		m, _ := c.Member(id)
		writeJSON(w, http.StatusOK, m.snapshot())
	}
}

func (c *Cluster) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Stats())
}

// handleMetrics serves the router's own registry followed by the
// merged member snapshots — one scrape shows the whole cluster.
// Families don't collide: the router's are simdcluster_*, members'
// are simd_*.
func (c *Cluster) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.reg.WritePrometheus(w)
	c.MemberMetrics().WriteText(w)
}

// healthzResponse is the router's liveness document.
type healthzResponse struct {
	Status string `json:"status"`
	NodeID string `json:"node_id,omitempty"`
	// NodesUp / NodesTotal summarize gated membership.
	NodesUp       int       `json:"nodes_up"`
	NodesTotal    int       `json:"nodes_total"`
	Build         obs.Build `json:"build"`
	StartedAt     time.Time `json:"started_at"`
	UptimeSeconds float64   `json:"uptime_seconds"`
}

func (c *Cluster) handleHealthz(w http.ResponseWriter, r *http.Request) {
	members := c.Members()
	up := 0
	for _, m := range members {
		if m.State == MemberUp {
			up++
		}
	}
	resp := healthzResponse{
		Status: "ok", NodeID: fmt.Sprintf("cluster(%d)", len(members)),
		NodesUp: up, NodesTotal: len(members),
		Build: obs.ReadBuild(), StartedAt: c.started,
		UptimeSeconds: time.Since(c.started).Seconds(),
	}
	if up == 0 {
		// Still answering — the router is alive — but with nobody to
		// route to the cluster is degraded, and probes should say so.
		resp.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, resp)
}
