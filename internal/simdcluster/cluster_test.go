package simdcluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simd"
	"repro/internal/store"
)

// specJSON builds a small deterministic spec; seed varies the content
// address (and therefore the rendezvous placement).
func specJSON(seed uint64, endTime float64) []byte {
	return []byte(fmt.Sprintf(
		`{"nodes":2,"workers_per_node":2,"lps_per_worker":4,"end_time":%g,"seed":%d}`,
		endTime, seed))
}

// hashFor computes the content address the router will route by.
func hashFor(t *testing.T, seed uint64, endTime float64) string {
	t.Helper()
	h, err := simd.JobSpec{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 4, EndTime: endTime, Seed: seed}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// seedRankedTo finds a seed whose spec rendezvous-ranks target first
// among ids — the deterministic way to steer placement in tests.
func seedRankedTo(t *testing.T, ids []string, target string, endTime float64, from uint64) uint64 {
	t.Helper()
	for seed := from; seed < from+10000; seed++ {
		if Rank(ids, hashFor(t, seed, endTime))[0] == target {
			return seed
		}
	}
	t.Fatalf("no seed in [%d,%d) ranks %s first", from, from+10000, target)
	return 0
}

// testNode is one in-process member: a real simd server on an
// httptest listener, sharing the cluster's store directory.
type testNode struct {
	id     string
	srv    *simd.Server
	ts     *httptest.Server
	st     *store.Store
	killed bool
}

// kill simulates kill -9 for the router's purposes: the listener drops
// (refused connections) without any graceful drain.
func (n *testNode) kill() {
	if !n.killed {
		n.killed = true
		n.ts.CloseClientConnections()
		n.ts.Close()
	}
}

// newTestCluster builds n members over one shared store dir and a
// fast-probing cluster, and blocks until every member passes the gate.
func newTestCluster(t *testing.T, n, workers, queue int) (*Cluster, []*testNode) {
	t.Helper()
	dir := t.TempDir()
	nodes := make([]*testNode, n)
	c := New(Options{HealthInterval: 20 * time.Millisecond, FailThreshold: 2, ProbeTimeout: time.Second})
	for i := range nodes {
		id := fmt.Sprintf("n%d", i+1)
		st, err := store.Open(store.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		srv := simd.NewServer(simd.Options{Workers: workers, QueueDepth: queue, Store: st, NodeID: id})
		ts := httptest.NewServer(srv.Handler())
		nodes[i] = &testNode{id: id, srv: srv, ts: ts, st: st}
		c.AddMember(id, ts.URL, 0)
	}
	t.Cleanup(func() {
		c.Close()
		for _, nd := range nodes {
			nd.kill()
			// Close waits for admitted jobs; cancel leftovers (blockers)
			// first so teardown never hangs on a long simulation.
			for _, j := range nd.srv.Jobs() {
				nd.srv.Cancel(j.ID())
			}
			nd.srv.Close()
			nd.st.Close()
		}
	})
	for _, nd := range nodes {
		if err := c.WaitUp(nd.id, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return c, nodes
}

func memberIDs(nodes []*testNode) []string {
	ids := make([]string, len(nodes))
	for i, nd := range nodes {
		ids[i] = nd.id
	}
	return ids
}

func nodeByID(t *testing.T, nodes []*testNode, id string) *testNode {
	t.Helper()
	for _, nd := range nodes {
		if nd.id == id {
			return nd
		}
	}
	t.Fatalf("unknown node %s", id)
	return nil
}

// waitState polls a cluster job until it reaches want.
func waitState(t *testing.T, c *Cluster, cid string, want simd.State) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var v JobView
	var err error
	for time.Now().Before(deadline) {
		v, err = c.Job(cid)
		if err == nil && v.State == want {
			return v
		}
		if err == nil && terminal(v.State) && v.State != want {
			t.Fatalf("job %s settled %s (%s), want %s", cid, v.State, v.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (last: %+v err %v)", cid, want, v, err)
	return JobView{}
}

func waitMemberState(t *testing.T, c *Cluster, id string, want MemberState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m, ok := c.Member(id); ok && m.State() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("member %s never reached %s", id, want)
}

func TestRankDeterministicAndMinimallyDisruptive(t *testing.T) {
	ids := []string{"n1", "n2", "n3", "n4"}
	key := "a1b2c3"
	r1 := Rank(ids, key)
	r2 := Rank([]string{"n4", "n2", "n1", "n3"}, key)
	if strings.Join(r1, ",") != strings.Join(r2, ",") {
		t.Fatalf("rank depends on input order: %v vs %v", r1, r2)
	}
	// Rendezvous property: removing one node only promotes the others,
	// never reorders them.
	without := Rank([]string{"n1", "n2", "n4"}, key)
	var filtered []string
	for _, id := range r1 {
		if id != "n3" {
			filtered = append(filtered, id)
		}
	}
	if strings.Join(without, ",") != strings.Join(filtered, ",") {
		t.Fatalf("removal reshuffled survivors: %v vs %v", without, filtered)
	}
	// Different keys spread: among many keys every node wins sometimes.
	wins := map[string]int{}
	for seed := 0; seed < 200; seed++ {
		wins[Rank(ids, fmt.Sprintf("key-%d", seed))[0]]++
	}
	for _, id := range ids {
		if wins[id] == 0 {
			t.Fatalf("node %s never ranked first across 200 keys: %v", id, wins)
		}
	}
	if Rank(nil, key) != nil {
		t.Fatal("empty membership must rank to nil")
	}
}

func TestHealthGateBeforeTraffic(t *testing.T) {
	c := New(Options{HealthInterval: 20 * time.Millisecond, FailThreshold: 2})
	defer c.Close()
	// A member that never answers stays "starting": registered is not up.
	c.AddMember("ghost", "http://127.0.0.1:1", 0)
	if err := c.WaitUp("ghost", 200*time.Millisecond); err == nil {
		t.Fatal("WaitUp succeeded for an unreachable member")
	}
	if m, _ := c.Member("ghost"); m.State() != MemberStarting {
		t.Fatalf("unreachable member state = %s, want starting", m.State())
	}
	// No eligible members: submissions answer 503, healthz says degraded.
	if _, err := c.Submit(specJSON(1, 5)); err == nil {
		t.Fatal("submit with no live member must fail")
	} else if se := err.(*StatusError); se.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit error code = %d, want 503", se.Code)
	}
	rt := httptest.NewServer(c.Handler())
	defer rt.Close()
	resp, err := http.Get(rt.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Status  string `json:"status"`
		NodesUp int    `json:"nodes_up"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil || hz.Status != "degraded" || hz.NodesUp != 0 {
		t.Fatalf("healthz with no members up: %+v err %v", hz, err)
	}
	// An identity mismatch is a probe failure: a server answering with
	// the wrong node_id must never pass the gate.
	imp := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok","node_id":"someone-else"}`))
	}))
	defer imp.Close()
	c.AddMember("n9", imp.URL, 0)
	if err := c.WaitUp("n9", 300*time.Millisecond); err == nil {
		t.Fatal("member with mismatched node_id passed the health gate")
	}
}

func TestRoutingIsContentAddressedAndCacheAware(t *testing.T) {
	c, nodes := newTestCluster(t, 3, 2, 16)
	ids := memberIDs(nodes)

	// Placement follows the rendezvous rank of the content address.
	seed := seedRankedTo(t, ids, "n2", 5, 100)
	res, err := c.Submit(specJSON(seed, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != "n2" {
		t.Fatalf("job routed to %s, want rank winner n2", res.Node)
	}
	waitState(t, c, res.ID, simd.StateDone)

	// Resubmission routes back to the owner and is served from cache:
	// zero additional executions anywhere in the cluster.
	before := c.Stats()
	re, err := c.Submit(specJSON(seed, 5))
	if err != nil {
		t.Fatal(err)
	}
	if re.Node != "n2" || !re.CacheHitNow || re.State != simd.StateDone {
		t.Fatalf("resubmission: node %s cacheHit %v state %s, want warm n2 hit", re.Node, re.CacheHitNow, re.State)
	}
	after := c.Stats()
	if after.Executions != before.Executions {
		t.Fatalf("resubmission re-executed: %d -> %d", before.Executions, after.Executions)
	}

	// The two cluster jobs return byte-identical reports.
	r1, err := c.Report(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Report(re.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, r2) || len(r1) == 0 {
		t.Fatal("reports for one spec are not byte-identical")
	}
}

func TestSubmitSpillsOnSaturatedMember(t *testing.T) {
	c, nodes := newTestCluster(t, 2, 1, 1)
	ids := memberIDs(nodes)

	// Saturate n1: one running blocker plus one queued (workers=1,
	// queue=1).
	var blockers []string
	for i := 0; i < 2; i++ {
		seed := seedRankedTo(t, ids, "n1", 50000, uint64(1000+i*10000))
		res, err := c.Submit(specJSON(seed, 50000))
		if err != nil {
			t.Fatal(err)
		}
		if res.Node != "n1" {
			t.Fatalf("blocker %d routed to %s, want n1", i, res.Node)
		}
		blockers = append(blockers, res.ID)
	}
	// A fast job ranking n1 first spills to n2 instead of bouncing 429.
	seed := seedRankedTo(t, ids, "n1", 5, 30000)
	res, err := c.Submit(specJSON(seed, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != "n2" {
		t.Fatalf("spill went to %s, want n2", res.Node)
	}
	waitState(t, c, res.ID, simd.StateDone)
	for _, cid := range blockers {
		if _, err := c.Cancel(cid); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFailoverOnNodeDeath(t *testing.T) {
	c, nodes := newTestCluster(t, 3, 1, 16)
	ids := memberIDs(nodes)

	// A fast job completes somewhere; its owner becomes the victim.
	res, err := c.Submit(specJSON(7, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, res.ID, simd.StateDone)
	doneReport, err := c.Report(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	victim := res.Node

	// Pin the victim with a running blocker and a queued fast job.
	bseed := seedRankedTo(t, ids, victim, 50000, 500)
	blocker, err := c.Submit(specJSON(bseed, 50000))
	if err != nil {
		t.Fatal(err)
	}
	if blocker.Node != victim {
		t.Fatalf("blocker routed to %s, want %s", blocker.Node, victim)
	}
	waitState(t, c, blocker.ID, simd.StateRunning)
	qseed := seedRankedTo(t, ids, victim, 6, 800)
	queued, err := c.Submit(specJSON(qseed, 6))
	if err != nil {
		t.Fatal(err)
	}
	if queued.Node != victim {
		t.Fatalf("queued job routed to %s, want %s", queued.Node, victim)
	}

	// Kill the victim. The health loop demotes it and fails its
	// unfinished jobs over to live replicas.
	nodeByID(t, nodes, victim).kill()
	waitMemberState(t, c, victim, MemberDown)

	// The blocker resumes elsewhere; free the stolen worker by
	// cancelling it through the cluster (retry while failover races).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.Cancel(blocker.ID); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never became cancellable after failover: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The queued job completes on a surviving node.
	v := waitState(t, c, queued.ID, simd.StateDone)
	if v.Node == victim {
		t.Fatalf("queued job finished on the dead node %s", victim)
	}
	if v.Redispatches == 0 {
		t.Fatal("queued job shows zero redispatches after its owner died")
	}

	// The job that finished on the victim BEFORE the kill is still
	// serveable: its report re-dispatches and the shared store returns
	// the identical bytes.
	st, err := c.Job(res.ID)
	if err != nil || st.State != simd.StateDone {
		t.Fatalf("dead owner's done job status: %+v err %v", st, err)
	}
	if !st.Stale {
		t.Fatal("status of a done job on a dead owner should be marked stale")
	}
	got, err := c.Report(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, doneReport) {
		t.Fatal("report after owner death is not byte-identical")
	}

	cs := c.Stats()
	if cs.Failovers == 0 || cs.Redispatches < 2 {
		t.Fatalf("failovers %d redispatches %d, want >=1 and >=2", cs.Failovers, cs.Redispatches)
	}
}

func TestDrainMovesWorkAndKeepsNodeReadable(t *testing.T) {
	// Two workers per node so the failed-over blocker cannot starve the
	// fast jobs that follow it onto the surviving member.
	c, nodes := newTestCluster(t, 2, 2, 16)
	ids := memberIDs(nodes)

	bseed := seedRankedTo(t, ids, "n1", 50000, 2000)
	blocker, err := c.Submit(specJSON(bseed, 50000))
	if err != nil {
		t.Fatal(err)
	}
	if blocker.Node != "n1" {
		t.Fatalf("blocker on %s, want n1", blocker.Node)
	}
	waitState(t, c, blocker.ID, simd.StateRunning)

	if err := c.Drain("n1", true); err != nil {
		t.Fatal(err)
	}
	// The blocker moved off the draining node.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := c.Job(blocker.ID)
		if err == nil && v.Node == "n2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never moved off the draining node: %+v err %v", v, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// New work never routes to a draining member, even when it ranks
	// first.
	seed := seedRankedTo(t, ids, "n1", 5, 4000)
	res, err := c.Submit(specJSON(seed, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != "n2" {
		t.Fatalf("drained node received new work (%s)", res.Node)
	}
	waitState(t, c, res.ID, simd.StateDone)
	// A draining node is still a member: /nodes reports it up+draining.
	for _, n := range c.Members() {
		if n.ID == "n1" && (n.State != MemberUp || !n.Draining) {
			t.Fatalf("draining node snapshot: %+v", n)
		}
	}

	// Undrain: the node takes traffic again.
	if err := c.Drain("n1", false); err != nil {
		t.Fatal(err)
	}
	res2, err := c.Submit(specJSON(seed+50000, 5))
	if err != nil {
		t.Fatal(err)
	}
	_ = res2
	back, err := c.Submit(specJSON(seedRankedTo(t, ids, "n1", 5, 60000), 5))
	if err != nil {
		t.Fatal(err)
	}
	if back.Node != "n1" {
		t.Fatalf("undrained node still shunned (%s)", back.Node)
	}
	if _, err := c.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
}

func TestClusterStatsAndMetricsAggregate(t *testing.T) {
	c, _ := newTestCluster(t, 3, 2, 16)
	for seed := uint64(1); seed <= 5; seed++ {
		res, err := c.Submit(specJSON(seed, 5))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, c, res.ID, simd.StateDone)
	}

	// Totals must equal the per-node breakdown from the same response.
	cs := c.Stats()
	var sum simd.Stats
	scraped := 0
	for _, n := range cs.Nodes {
		if n.Stats != nil {
			scraped++
			sumStats(&sum, n.Stats)
		}
	}
	if scraped != 3 {
		t.Fatalf("scraped %d/3 members", scraped)
	}
	if cs.Executions != sum.Executions || cs.Workers != sum.Workers ||
		cs.Jobs != sum.Jobs || cs.Cache.Hits != sum.Cache.Hits ||
		cs.Store == nil || sum.Store == nil || cs.Store.Puts != sum.Store.Puts {
		t.Fatalf("totals diverge from node breakdown:\n total %+v\n sum   %+v", cs.Stats, sum)
	}
	if cs.Executions != 5 {
		t.Fatalf("cluster executions = %d, want 5 (one per unique spec)", cs.Executions)
	}
	if cs.Submitted != 5 || cs.ClusterJobs != 5 {
		t.Fatalf("router accounting: %+v", cs)
	}

	// /metrics merges member families under the router's own.
	rt := httptest.NewServer(c.Handler())
	defer rt.Close()
	resp, err := http.Get(rt.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	snap, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Get("simdcluster_submitted_total"); !ok || v != 5 {
		t.Fatalf("simdcluster_submitted_total = %v, %v", v, ok)
	}
	if v := snap.Sum("simd_executions_total"); v != 5 {
		t.Fatalf("merged simd_executions_total = %v, want 5", v)
	}
	if v, ok := snap.Get("simdcluster_nodes", "state", "up"); !ok || v != 3 {
		t.Fatalf("simdcluster_nodes{state=up} = %v, %v", v, ok)
	}
}
