package balance

import (
	"math"
	"testing"

	"repro/internal/event"
)

func twoNodes(lag0, lag1 float64) []NodeStats {
	return []NodeStats{
		{Node: 0, LPs: 4, Lag: lag0, CostFactor: 1},
		{Node: 1, LPs: 4, Lag: lag1, CostFactor: 1},
	}
}

func loads(heat ...int64) []LPLoad {
	out := make([]LPLoad, len(heat))
	for i, h := range heat {
		out[i] = LPLoad{LP: event.LPID(i), Node: i / 4, Heat: h}
	}
	return out
}

func TestNewValidatesNames(t *testing.T) {
	for _, name := range append(Names(), "", "none", "straggler-aware") {
		p, err := New(name, Options{})
		if err != nil || p == nil {
			t.Errorf("New(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := New("round-robin", Options{}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestStaticNeverMoves(t *testing.T) {
	p, _ := New("static", Options{})
	for round := int64(1); round < 50; round++ {
		if m := p.Decide(round, float64(round), twoNodes(0.1, 99), loads(9, 9, 9, 9, 1, 1, 1, 1)); m != nil {
			t.Fatalf("static moved at round %d: %v", round, m)
		}
	}
}

// TestGreedyThresholdAndHysteresis walks the greedy policy through its
// whole state machine: quiet during warmup, quiet below the lag-spread
// threshold, moving hottest-first once triggered, then quiet again for
// Cooldown rounds.
func TestGreedyThresholdAndHysteresis(t *testing.T) {
	p, _ := New("greedy", Options{Threshold: 2, Cooldown: 3, MaxMoves: 2, Warmup: 1})
	lp := loads(1, 8, 4, 2, 0, 0, 0, 0) // node 0 hot, LP 1 hottest

	if m := p.Decide(1, 1, twoNodes(0, 99), lp); m != nil {
		t.Fatalf("moved during warmup: %v", m)
	}
	// Spread 1 with mean advance 1 is under the threshold of 2.
	if m := p.Decide(2, 2, twoNodes(0, 1), lp); m != nil {
		t.Fatalf("moved below threshold: %v", m)
	}
	// Spread 50 triggers: the two hottest LPs of node 0 move to node 1.
	m := p.Decide(3, 3, twoNodes(0, 50), lp)
	if len(m) != 2 {
		t.Fatalf("moves = %v, want 2", m)
	}
	if m[0].LP != 1 || m[1].LP != 2 || m[0].From != 0 || m[0].To != 1 {
		t.Errorf("wrong moves %v: want hottest-first LPs 1,2 from node 0 to 1", m)
	}
	// Cooldown: rounds 4..6 stay quiet despite the same imbalance.
	for round := int64(4); round <= 6; round++ {
		if m := p.Decide(round, float64(round), twoNodes(0, 50), lp); m != nil {
			t.Fatalf("moved during cooldown at round %d: %v", round, m)
		}
	}
	if m := p.Decide(7, 7, twoNodes(0, 50), lp); len(m) == 0 {
		t.Error("no moves after cooldown expired")
	}
}

func TestGreedyIgnoresInfiniteSpread(t *testing.T) {
	p, _ := New("greedy", Options{Warmup: 1})
	if m := p.Decide(5, 5, twoNodes(1, math.Inf(1)), loads(1, 1, 1, 1, 1, 1, 1, 1)); m != nil {
		t.Errorf("moved on a drained node's +Inf lag: %v", m)
	}
}

func TestGreedyKeepsHalfTheLPs(t *testing.T) {
	// MaxMoves 8 must be capped at half the behind node's 4 LPs.
	p, _ := New("greedy", Options{Threshold: 1, Cooldown: 1, MaxMoves: 8, Warmup: 1})
	m := p.Decide(2, 2, twoNodes(0, 99), loads(5, 5, 5, 5, 0, 0, 0, 0))
	if len(m) != 2 {
		t.Errorf("moved %d LPs off a 4-LP node, want 2", len(m))
	}
}

// TestStragglerAwareTargets: with node 1 four times slower it should
// host a quarter of node 0's share; the policy moves the surplus without
// needing any LVT lag signal.
func TestStragglerAwareTargets(t *testing.T) {
	p, _ := New("straggler", Options{Cooldown: 2, MaxMoves: 2, Warmup: 1})
	nodes := []NodeStats{
		{Node: 0, LPs: 4, CostFactor: 1},
		{Node: 1, LPs: 4, CostFactor: 4},
	}
	m := p.Decide(2, 2, nodes, loads(0, 0, 0, 0, 7, 3, 5, 1))
	if len(m) == 0 {
		t.Fatal("no moves despite a 4x straggler hosting half the LPs")
	}
	for _, mv := range m {
		if mv.From != 1 || mv.To != 0 {
			t.Errorf("move %v: want from the straggler (1) to the fast node (0)", mv)
		}
	}
	if m[0].LP != 4 {
		t.Errorf("first move is LP %d, want the straggler's hottest (4)", m[0].LP)
	}
}

func TestStragglerAwareBalancedIsQuiet(t *testing.T) {
	p, _ := New("straggler", Options{Warmup: 1})
	nodes := []NodeStats{
		{Node: 0, LPs: 4, CostFactor: 1},
		{Node: 1, LPs: 4, CostFactor: 1},
	}
	for round := int64(2); round < 20; round++ {
		if m := p.Decide(round, float64(round), nodes, loads(1, 2, 3, 4, 4, 3, 2, 1)); m != nil {
			t.Fatalf("moved on a balanced cluster at round %d: %v", round, m)
		}
	}
}

// TestPoliciesAreDeterministic: identical input sequences must yield
// identical decision sequences.
func TestPoliciesAreDeterministic(t *testing.T) {
	for _, name := range []string{"greedy", "straggler"} {
		run := func() [][]Move {
			p, _ := New(name, Options{Threshold: 1, Cooldown: 2, Warmup: 1})
			var out [][]Move
			for round := int64(1); round <= 12; round++ {
				nodes := []NodeStats{
					{Node: 0, LPs: 4, Lag: 0.1, CostFactor: 4},
					{Node: 1, LPs: 4, Lag: float64(round), CostFactor: 1},
				}
				out = append(out, p.Decide(round, float64(round), nodes, loads(3, 1, 4, 1, 5, 9, 2, 6)))
			}
			return out
		}
		a, b := run(), run()
		for i := range a {
			if len(a[i]) != len(b[i]) {
				t.Fatalf("%s: round %d differs: %v vs %v", name, i+1, a[i], b[i])
			}
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%s: round %d move %d differs", name, i+1, j)
				}
			}
		}
	}
}
