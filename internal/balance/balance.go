// Package balance decides which LPs to migrate between nodes, and when.
//
// The Time Warp engine feeds every policy the same telemetry the PR 1
// metrics registry samples — per-node committed-event rate, rollback
// rate, and LVT lag relative to GVT — once per GVT round, computed only
// from committed (post-GVT) state. A policy answers with a list of LP
// moves; the engine executes them at the GVT commit point, the only
// moment an LP's pre-GVT history has been fossil-collected and its state
// is safely serializable. Policies are pure consumers of these snapshots:
// they never see speculative state, so no decision can perturb the
// committed event stream.
//
// All policies are deterministic: inputs arrive in a fixed order (nodes
// ascending, LPs in worker placement order), internal state is slice- or
// lookup-only (no map iteration), and ties break toward the lowest index.
package balance

import (
	"fmt"
	"math"

	"repro/internal/event"
)

// NodeStats is one node's telemetry snapshot at a GVT round.
type NodeStats struct {
	Node int // node id
	LPs  int // LPs currently hosted

	Committed       int64 // cumulative committed events
	CommittedDelta  int64 // committed since the previous round
	RolledBack      int64 // cumulative rolled-back events
	RolledBackDelta int64

	// MinLVT is the minimum local virtual time over the node's workers
	// (the node's GVT contribution); +Inf when the node is fully drained.
	MinLVT float64
	// Lag is MinLVT - GVT: how far past the commit horizon the node has
	// advanced. The node with the smallest Lag is the cluster's
	// bottleneck — GVT waits on it.
	Lag float64
	// CostFactor is the node's relative per-operation cost from the
	// fault plan (1 = nominal, 4 = a 4x straggler).
	CostFactor float64
}

// LPLoad is one LP's per-round load sample.
type LPLoad struct {
	LP   event.LPID
	Node int   // node currently hosting the LP
	Heat int64 // events committed by this LP since the previous round
}

// Move asks the engine to migrate LP from node From to node To at the
// next GVT commit point.
type Move struct {
	LP       event.LPID
	From, To int
}

// Policy decides migrations from per-round committed-state telemetry.
// Decide is called once per GVT round (round is 1-based, gvt the new
// global virtual time); it may keep internal state across calls (for
// heat accumulation, cooldowns, hysteresis).
type Policy interface {
	Name() string
	Decide(round int64, gvt float64, nodes []NodeStats, lps []LPLoad) []Move
}

// Options tunes the built-in policies. The zero value selects defaults.
type Options struct {
	// Threshold is the imbalance trigger. For greedy it is the LVT-lag
	// spread, measured in mean GVT-round advances, above which the
	// cluster is considered imbalanced (default 1.5).
	Threshold float64
	// Cooldown is the number of GVT rounds to wait after issuing moves
	// before considering new ones — the hysteresis that prevents
	// thrashing (default 8). It arms only once a decision has produced
	// moves; the first decision is gated by Warmup alone.
	Cooldown int64
	// MaxMoves bounds migrations per decision (default 2).
	MaxMoves int
	// Warmup is the number of initial GVT rounds with no decisions, so
	// heat statistics are meaningful (default 2).
	Warmup int64
	// CostFactors gives each node's relative cost (1 = nominal); used by
	// the straggler-aware policy. Nil means all nominal.
	CostFactors []float64
}

func (o *Options) defaults() {
	if o.Threshold <= 0 {
		o.Threshold = 1.5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 8
	}
	if o.MaxMoves <= 0 {
		o.MaxMoves = 2
	}
	if o.Warmup <= 0 {
		o.Warmup = 2
	}
}

// Names lists the built-in policy names accepted by New.
func Names() []string { return []string{"static", "greedy", "straggler"} }

// New returns the named built-in policy. "" and "static" mean no
// balancing ("static" still runs the full decision plumbing — it is the
// no-op Policy, useful as an A/B control).
func New(name string, opt Options) (Policy, error) {
	opt.defaults()
	switch name {
	case "", "static", "none":
		return Static{}, nil
	case "greedy":
		return &Greedy{opt: opt}, nil
	case "straggler", "straggler-aware":
		return &StragglerAware{opt: opt}, nil
	default:
		return nil, fmt.Errorf("balance: unknown policy %q (want one of static, greedy, straggler)", name)
	}
}

// Static is the no-op policy: LPs stay on their configured home nodes.
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "static" }

// Decide implements Policy: never moves anything.
func (Static) Decide(int64, float64, []NodeStats, []LPLoad) []Move { return nil }

// heatTracker accumulates per-LP heat across rounds between decisions.
// The map is lookup-only; iteration order never matters because reads
// follow the caller-provided LP slice order.
type heatTracker struct {
	heat map[event.LPID]int64
}

func (h *heatTracker) add(lps []LPLoad) {
	if h.heat == nil {
		h.heat = make(map[event.LPID]int64, len(lps))
	}
	for _, l := range lps {
		if l.Heat != 0 {
			h.heat[l.LP] += l.Heat
		}
	}
}

func (h *heatTracker) reset() { h.heat = nil }

// hottestOn returns up to max LPs hosted on node, hottest first, ties
// toward the lower LP id. Selection is by repeated max-scan over the
// input slice (deterministic, and max is tiny).
func (h *heatTracker) hottestOn(node int, lps []LPLoad, max int) []event.LPID {
	picked := make(map[event.LPID]bool, max)
	var out []event.LPID
	for len(out) < max {
		bestIdx := -1
		var bestHeat int64 = -1
		for i, l := range lps {
			if l.Node != node || picked[l.LP] {
				continue
			}
			if heat := h.heat[l.LP]; heat > bestHeat {
				bestIdx, bestHeat = i, heat
			}
		}
		if bestIdx < 0 || bestHeat <= 0 {
			break
		}
		out = append(out, lps[bestIdx].LP)
		picked[lps[bestIdx].LP] = true
	}
	return out
}

// Greedy moves the hottest LPs off the most-behind node (the one whose
// local virtual time hugs GVT) onto the most-ahead node whenever the
// LVT-lag spread exceeds Threshold mean GVT-round advances. Cooldown
// rounds of hysteresis follow every decision.
type Greedy struct {
	opt      Options
	tracker  heatTracker
	lastMove int64 // round of the last decision that produced moves
}

// Name implements Policy.
func (g *Greedy) Name() string { return "greedy" }

// Decide implements Policy.
func (g *Greedy) Decide(round int64, gvt float64, nodes []NodeStats, lps []LPLoad) []Move {
	g.tracker.add(lps)
	if len(nodes) < 2 || round <= g.opt.Warmup {
		return nil
	}
	if g.lastMove > 0 && round-g.lastMove <= g.opt.Cooldown {
		return nil
	}
	behind, ahead := lagExtremes(nodes)
	if behind < 0 || behind == ahead {
		return nil
	}
	// Imbalance: the LVT spread measured in units of mean per-round GVT
	// advance. Scale-free across models and EPGs.
	advance := gvt / float64(round)
	if advance <= 0 {
		return nil
	}
	spread := nodes[ahead].Lag - nodes[behind].Lag
	if math.IsInf(spread, 0) || spread/advance <= g.opt.Threshold {
		return nil
	}
	// Never strip the behind node bare: keep at least half its LPs.
	max := g.opt.MaxMoves
	if room := nodes[behind].LPs / 2; max > room {
		max = room
	}
	hot := g.tracker.hottestOn(behind, lps, max)
	if len(hot) == 0 {
		return nil
	}
	moves := make([]Move, 0, len(hot))
	for _, lp := range hot {
		moves = append(moves, Move{LP: lp, From: behind, To: ahead})
	}
	g.lastMove = round
	g.tracker.reset()
	return moves
}

// lagExtremes returns the indices of the most-behind (min finite Lag)
// and most-ahead (max Lag, +Inf allowed) nodes; ties go to the lower
// node id. behind is -1 when no node has a finite lag.
func lagExtremes(nodes []NodeStats) (behind, ahead int) {
	behind, ahead = -1, 0
	for i, n := range nodes {
		if !math.IsInf(n.Lag, 1) && n.Lag < math.MaxFloat64 {
			if behind < 0 || n.Lag < nodes[behind].Lag {
				behind = i
			}
		}
		if n.Lag > nodes[ahead].Lag {
			ahead = i
		}
	}
	return behind, ahead
}

// StragglerAware weights placement by the per-node cost model: each node
// should host LPs in proportion to its speed (1/CostFactor). Whenever a
// node holds more than its target share (beyond a one-LP hysteresis
// band), the hottest surplus LPs move to the most-underloaded node.
// Unlike Greedy it does not wait for the imbalance to show up in LVT
// lag — it knows the cost factors up front.
type StragglerAware struct {
	opt      Options
	tracker  heatTracker
	lastMove int64
}

// Name implements Policy.
func (s *StragglerAware) Name() string { return "straggler" }

// Decide implements Policy.
func (s *StragglerAware) Decide(round int64, gvt float64, nodes []NodeStats, lps []LPLoad) []Move {
	s.tracker.add(lps)
	if len(nodes) < 2 || round <= s.opt.Warmup {
		return nil
	}
	if s.lastMove > 0 && round-s.lastMove <= s.opt.Cooldown {
		return nil
	}
	speed := make([]float64, len(nodes))
	total, totalLPs := 0.0, 0
	for i, n := range nodes {
		f := n.CostFactor
		if i < len(s.opt.CostFactors) && s.opt.CostFactors[i] > 0 {
			f = s.opt.CostFactors[i]
		}
		if f <= 0 {
			f = 1
		}
		speed[i] = 1 / f
		total += speed[i]
		totalLPs += n.LPs
	}
	if total <= 0 || totalLPs == 0 {
		return nil
	}
	// Most-overloaded node (largest surplus over its speed-proportional
	// target) and most-underloaded node, with a one-LP hysteresis band.
	from, to := -1, -1
	var worstOver, worstUnder float64 = 1, -1
	for i, n := range nodes {
		target := float64(totalLPs) * speed[i] / total
		diff := float64(n.LPs) - target
		if diff > worstOver {
			from, worstOver = i, diff
		}
		if diff < worstUnder || to < 0 {
			to, worstUnder = i, diff
		}
	}
	if from < 0 || to < 0 || from == to {
		return nil
	}
	max := s.opt.MaxMoves
	if surplus := int(worstOver); max > surplus {
		max = surplus
	}
	hot := s.tracker.hottestOn(from, lps, max)
	if len(hot) == 0 {
		// No heat data (e.g. a freshly idle surplus node): the target
		// share still holds, so fall back to placement order.
		for _, l := range lps {
			if l.Node == from && len(hot) < max {
				hot = append(hot, l.LP)
			}
		}
	}
	if len(hot) == 0 {
		return nil
	}
	moves := make([]Move, 0, len(hot))
	for _, lp := range hot {
		moves = append(moves, Move{LP: lp, From: from, To: to})
	}
	s.lastMove = round
	s.tracker.reset()
	return moves
}
