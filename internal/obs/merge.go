package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// MergeSnapshots combines parsed exposition documents by summing every
// sample with the same (name, label set) across the inputs — the
// aggregation a cluster router applies to its members' /metrics:
// counters add to cluster totals, gauges add to cluster-wide levels
// (total queue depth, total cache bytes), and histogram _bucket/_sum/
// _count series add component-wise, which is exactly how Prometheus
// itself aggregates histograms. TYPE declarations are carried over
// (first snapshot seen wins for a family). Nil snapshots are skipped.
//
// Summing is the only semantics offered: for the few series where a sum
// is meaningless (e.g. a start-time gauge), aggregate callers should
// read the per-member snapshots instead.
func MergeSnapshots(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{Types: make(map[string]string)}
	sums := make(map[string]*Sample)
	var order []string
	for _, sn := range snaps {
		if sn == nil {
			continue
		}
		for fam, typ := range sn.Types {
			if _, ok := out.Types[fam]; !ok {
				out.Types[fam] = typ
			}
		}
		for _, smp := range sn.Samples {
			key := smp.Name + labelKey(smp.Labels)
			if cur, ok := sums[key]; ok {
				cur.Value += smp.Value
				continue
			}
			cp := Sample{Name: smp.Name, Value: smp.Value}
			if len(smp.Labels) > 0 {
				cp.Labels = make(map[string]string, len(smp.Labels))
				for k, v := range smp.Labels {
					cp.Labels[k] = v
				}
			}
			sums[key] = &cp
			order = append(order, key)
		}
	}
	sort.Slice(order, func(i, j int) bool { return lessSampleKey(order[i], order[j]) })
	out.Samples = make([]Sample, len(order))
	for i, key := range order {
		out.Samples[i] = *sums[key]
	}
	return out
}

// labelKey renders a canonical sort/dedup key for a label set.
func labelKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// lessSampleKey orders merged samples: by series name, then — so that
// histogram buckets stay in ascending-bound order — by a numeric le
// label when both keys carry one, then lexically.
func lessSampleKey(a, b string) bool {
	an, al := splitKey(a)
	bn, bl := splitKey(b)
	if an != bn {
		return an < bn
	}
	av, aok := leBound(al)
	bv, bok := leBound(bl)
	if aok && bok && av != bv {
		return av < bv
	}
	return al < bl
}

func splitKey(k string) (name, labels string) {
	if i := strings.IndexByte(k, '{'); i >= 0 {
		return k[:i], k[i:]
	}
	return k, ""
}

// leBound extracts the numeric le bound from a rendered label key.
func leBound(labels string) (float64, bool) {
	i := strings.Index(labels, `le="`)
	if i < 0 {
		return 0, false
	}
	rest := labels[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, false
	}
	switch v := rest[:j]; v {
	case "+Inf":
		return math.Inf(1), true
	default:
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, false
		}
		return f, true
	}
}

// WriteText renders the snapshot back into Prometheus text exposition
// format: `# TYPE` lines for known families (histogram suffixes
// _bucket/_sum/_count resolve to their base family), then one line per
// sample in the snapshot's order. Round-trips with ParseText, so an
// aggregator can parse member documents, merge them, and serve the
// result from its own /metrics.
func (s *Snapshot) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	typed := make(map[string]bool)
	for _, smp := range s.Samples {
		fam := familyOf(smp.Name, s.Types)
		if fam != "" && !typed[fam] {
			typed[fam] = true
			fmt.Fprintf(bw, "# TYPE %s %s\n", fam, s.Types[fam])
		}
		fmt.Fprintf(bw, "%s%s %s\n", smp.Name, labelKey(smp.Labels), formatFloat(smp.Value))
	}
	return bw.Flush()
}

// familyOf resolves a sample name to its declared family ("" if none).
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if _, ok := types[base]; ok {
				return base
			}
		}
	}
	return ""
}
