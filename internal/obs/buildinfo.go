package obs

import (
	"runtime"
	"runtime/debug"
)

// Build identifies the running binary: enough for a cluster operator to
// tell which node runs which revision. Values come from
// runtime/debug.ReadBuildInfo, so they are populated for real `go
// build` binaries and degrade to "unknown" under `go test` or stripped
// builds.
type Build struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS revision, "" when built outside a checkout.
	Revision string `json:"revision,omitempty"`
	// Modified reports uncommitted changes at build time.
	Modified bool `json:"modified,omitempty"`
	// Module is the main module path.
	Module string `json:"module,omitempty"`
}

// ReadBuild extracts build identification from the running binary.
func ReadBuild() Build {
	b := Build{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// ShortRevision returns the abbreviated revision hash ("unknown" when
// absent).
func (b Build) ShortRevision() string {
	if b.Revision == "" {
		return "unknown"
	}
	if len(b.Revision) > 12 {
		return b.Revision[:12]
	}
	return b.Revision
}

// RegisterBuildInfo exposes the build as a constant `name{...} 1` gauge
// — the conventional build_info shape, joinable against every other
// series from the same instance.
func RegisterBuildInfo(r *Registry, name string, b Build) {
	mod := "false"
	if b.Modified {
		mod = "true"
	}
	r.GaugeVec(name, "Build identification of the running binary; constant 1.",
		"go_version", "revision", "modified").
		With(b.GoVersion, b.ShortRevision(), mod).Set(1)
}
