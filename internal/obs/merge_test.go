package obs

import (
	"bytes"
	"strings"
	"testing"
)

const memberA = `# TYPE simd_jobs_total counter
simd_jobs_total{state="done"} 5
simd_jobs_total{state="failed"} 1
# TYPE simd_queue_len gauge
simd_queue_len 2
# TYPE simd_run_seconds histogram
simd_run_seconds_bucket{le="0.1"} 3
simd_run_seconds_bucket{le="1"} 5
simd_run_seconds_bucket{le="+Inf"} 6
simd_run_seconds_sum 4.5
simd_run_seconds_count 6
`

const memberB = `# TYPE simd_jobs_total counter
simd_jobs_total{state="done"} 7
# TYPE simd_queue_len gauge
simd_queue_len 3
# TYPE simd_run_seconds histogram
simd_run_seconds_bucket{le="0.1"} 1
simd_run_seconds_bucket{le="1"} 1
simd_run_seconds_bucket{le="+Inf"} 2
simd_run_seconds_sum 10.25
simd_run_seconds_count 2
`

func parse(t *testing.T, doc string) *Snapshot {
	t.Helper()
	snap, err := ParseText(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestMergeSnapshotsSums(t *testing.T) {
	m := MergeSnapshots(parse(t, memberA), nil, parse(t, memberB))

	checks := []struct {
		name string
		kv   []string
		want float64
	}{
		{"simd_jobs_total", []string{"state", "done"}, 12},
		{"simd_jobs_total", []string{"state", "failed"}, 1}, // only member A has it
		{"simd_queue_len", nil, 5},
		{"simd_run_seconds_bucket", []string{"le", "0.1"}, 4},
		{"simd_run_seconds_bucket", []string{"le", "1"}, 6},
		{"simd_run_seconds_bucket", []string{"le", "+Inf"}, 8},
		{"simd_run_seconds_sum", nil, 14.75},
		{"simd_run_seconds_count", nil, 8},
	}
	for _, c := range checks {
		got, ok := m.Get(c.name, c.kv...)
		if !ok || got != c.want {
			t.Errorf("%s%v = %v, %v; want %v", c.name, c.kv, got, ok, c.want)
		}
	}
	if typ := m.Types["simd_run_seconds"]; typ != "histogram" {
		t.Errorf("merged TYPE simd_run_seconds = %q, want histogram", typ)
	}

	// Histogram buckets must stay cumulative and in ascending le order
	// after the merge, or a re-rendered document confuses consumers.
	var lastLe, lastCum float64 = -1, 0
	seen := 0
	for _, smp := range m.Samples {
		if smp.Name != "simd_run_seconds_bucket" {
			continue
		}
		seen++
		le, ok := leBound("{le=\"" + smp.Labels["le"] + "\"}")
		if !ok {
			t.Fatalf("unparsable le %q", smp.Labels["le"])
		}
		if le <= lastLe {
			t.Fatalf("bucket order broken: le %v after %v", le, lastLe)
		}
		if smp.Value < lastCum {
			t.Fatalf("bucket counts not cumulative: %v after %v", smp.Value, lastCum)
		}
		lastLe, lastCum = le, smp.Value
	}
	if seen != 3 {
		t.Fatalf("expected 3 merged buckets, saw %d", seen)
	}
}

func TestMergeSnapshotsEmpty(t *testing.T) {
	m := MergeSnapshots()
	if len(m.Samples) != 0 || len(m.Types) != 0 {
		t.Fatalf("empty merge not empty: %+v", m)
	}
	m = MergeSnapshots(nil, nil)
	if len(m.Samples) != 0 {
		t.Fatalf("nil-only merge not empty: %+v", m)
	}
}

func TestWriteTextRoundTrip(t *testing.T) {
	merged := MergeSnapshots(parse(t, memberA), parse(t, memberB))
	var buf bytes.Buffer
	if err := merged.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	// Histogram suffixes must resolve to one TYPE line for the family.
	if n := strings.Count(text, "# TYPE simd_run_seconds histogram"); n != 1 {
		t.Fatalf("want exactly one histogram TYPE line, got %d in:\n%s", n, text)
	}
	if strings.Contains(text, "# TYPE simd_run_seconds_bucket") {
		t.Fatalf("suffix series must not get its own TYPE line:\n%s", text)
	}

	back := parse(t, text)
	if len(back.Samples) != len(merged.Samples) {
		t.Fatalf("round trip lost samples: %d -> %d", len(merged.Samples), len(back.Samples))
	}
	for _, smp := range merged.Samples {
		kv := make([]string, 0, 2*len(smp.Labels))
		for k, v := range smp.Labels {
			kv = append(kv, k, v)
		}
		got, ok := back.Get(smp.Name, kv...)
		if !ok || got != smp.Value {
			t.Errorf("round trip %s%v = %v, %v; want %v", smp.Name, smp.Labels, got, ok, smp.Value)
		}
	}
	for fam, typ := range merged.Types {
		if back.Types[fam] != typ {
			t.Errorf("round trip TYPE %s = %q, want %q", fam, back.Types[fam], typ)
		}
	}

	// Label values with quotes/backslashes must survive the re-render.
	tricky := &Snapshot{
		Samples: []Sample{{Name: "x_total", Labels: map[string]string{"p": `a"b\c` + "\nd"}, Value: 1}},
		Types:   map[string]string{"x_total": "counter"},
	}
	buf.Reset()
	if err := tricky.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back = parse(t, buf.String())
	if got, ok := back.Get("x_total", "p", `a"b\c`+"\nd"); !ok || got != 1 {
		t.Fatalf("escaped label round trip failed: %v %v in %q", got, ok, buf.String())
	}
}
