package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in text exposition format:
// families sorted by name, series within a family sorted by label
// suffix, each family preceded by its # HELP and # TYPE lines.
// Histograms render cumulative `_bucket{le=...}` series (ending at
// le="+Inf"), `_sum`, and `_count`. OnScrape hooks run first.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	hooks := append([]func(){}, r.hooks...)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// write renders one family.
func (f *family) write(w *bufio.Writer) error {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap := make([]*series, len(keys))
	for i, k := range keys {
		snap[i] = f.series[k]
	}
	f.mu.Unlock()
	if len(snap) == 0 {
		return nil
	}

	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range snap {
		switch {
		case s.counter != nil:
			fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counter.Value())
		case s.gauge != nil:
			fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.gauge.Value()))
		case s.fn != nil:
			fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
		case s.hist != nil:
			writeHistogram(w, f.name, s)
		}
	}
	return nil
}

// writeHistogram renders one histogram series with cumulative buckets.
func writeHistogram(w *bufio.Writer, name string, s *series) {
	h := s.hist
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLe(s.labels, formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLe(s.labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, cum)
}

// mergeLe splices an le label into an existing (possibly empty) label
// suffix.
func mergeLe(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// Handler returns an http.Handler serving the registry in text
// exposition format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Sample is one parsed exposition line: a fully-qualified series name
// (histogram buckets appear as name_bucket), its label set, and value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Snapshot is a parsed exposition document.
type Snapshot struct {
	Samples []Sample
	// Types maps family name → TYPE declaration (counter/gauge/histogram).
	Types map[string]string
}

// Get returns the value of the series with the given name whose label
// set exactly matches the given label key/value pairs.
func (s *Snapshot) Get(name string, kv ...string) (float64, bool) {
	if len(kv)%2 != 0 {
		panic("obs: Get takes label key/value pairs")
	}
	want := make(map[string]string, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		want[kv[i]] = kv[i+1]
	}
	for _, smp := range s.Samples {
		if smp.Name != name || len(smp.Labels) != len(want) {
			continue
		}
		ok := true
		for k, v := range want {
			if smp.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return smp.Value, true
		}
	}
	return 0, false
}

// Sum returns the sum of every series with the given name, across all
// label sets.
func (s *Snapshot) Sum(name string) float64 {
	var total float64
	for _, smp := range s.Samples {
		if smp.Name == name {
			total += smp.Value
		}
	}
	return total
}

// ParseText parses a Prometheus text exposition document — the format
// WritePrometheus emits. Errors carry the offending line. Used by the
// exposition tests and the simtop monitor.
func ParseText(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				snap.Types[fields[2]] = fields[3]
			}
			continue
		}
		smp, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineno, err)
		}
		snap.Samples = append(snap.Samples, smp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// parseSample parses one `name{k="v",...} value [timestamp]` line.
func parseSample(line string) (Sample, error) {
	smp := Sample{}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return smp, fmt.Errorf("no value in %q", line)
	} else {
		smp.Name = rest[:i]
		rest = rest[i:]
	}
	if smp.Name == "" {
		return smp, fmt.Errorf("empty metric name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return smp, fmt.Errorf("%v in %q", err, line)
		}
		smp.Labels = labels
		rest = tail
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return smp, fmt.Errorf("no value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return smp, fmt.Errorf("bad value %q", fields[0])
	}
	smp.Value = v
	return smp, nil
}

// parseLabels parses a `{k="v",...}` prefix and returns the remainder.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	s = s[1:] // consume '{'
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("unquoted label value for %q", key)
		}
		val, tail, err := parseQuoted(s)
		if err != nil {
			return nil, "", err
		}
		labels[key] = val
		s = strings.TrimLeft(tail, " \t")
		s = strings.TrimPrefix(s, ",")
	}
}

// parseQuoted consumes a leading double-quoted string with \\, \" and
// \n escapes, returning the unescaped value and the remainder.
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}
