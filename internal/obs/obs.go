// Package obs is the service-side observability layer: a dependency-free,
// concurrency-safe registry of counters, gauges and histograms rendered
// in Prometheus text exposition format, plus structured-logging helpers
// and build identification.
//
// It deliberately complements — not replaces — internal/metrics. The
// engine's telemetry runs inside the hand-off scheduler where exactly
// one simulated process executes at a time, so internal/metrics needs no
// host locking and must allocate nothing on the hot path. This package
// sits on the other side of that boundary: HTTP handlers, worker pools
// and scrape loops hammer it from many goroutines at once, so every
// instrument here is atomic and every read is a consistent-enough
// snapshot for monitoring (individual values are atomically read; a
// scrape is not a global transaction, the same contract Prometheus
// clients offer).
//
// Instruments are get-or-create by name, like internal/metrics.Registry:
// resolve once at setup, hold the pointer, update lock-free. Labeled
// families (CounterVec/GaugeVec) cache their series per label-value
// tuple. Func-backed instruments (CounterFunc/GaugeFunc) read an
// existing source of truth at scrape time, so values the service already
// tracks — queue depth, cache bytes — are exposed without
// double-bookkeeping. OnScrape hooks run before each render for
// snapshot-style gauges that are cheaper to compute in bulk.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType is the exposition TYPE of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Counter is a monotonically increasing value, safe for concurrent use.
type Counter struct {
	v      atomic.Int64
	labels string // pre-rendered `{k="v",...}` suffix ("" when unlabeled)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d; d must be >= 0 to keep the counter monotone.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can move both directions, safe for concurrent use.
type Gauge struct {
	bits   atomic.Uint64 // float64 bits
	labels string
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates float64 observations into explicit upper-bound
// buckets (Prometheus `le` semantics: bucket i counts v <= bounds[i],
// plus an implicit +Inf overflow bucket). Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	sum    atomic.Uint64  // float64 bits
	labels string
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets is the default histogram bucketing: the conventional
// Prometheus latency spread, in seconds.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExpBuckets returns n exponential bucket bounds starting at start and
// growing by factor; it panics on a non-positive start, a factor <= 1,
// or n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// series is one rendered time series: a concrete instrument or a
// func-backed reading.
type series struct {
	labels  string // pre-rendered suffix, also the sort key within a family
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family is one named metric with its HELP/TYPE header and series set.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string // label names (nil for unlabeled)

	mu     sync.Mutex
	series map[string]*series // keyed by rendered label suffix
}

// Registry holds metric families and renders them as Prometheus text.
// All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnScrape registers a hook invoked before every render, for gauges that
// are cheapest to refresh in bulk from a snapshot. Hooks run in
// registration order and must not themselves scrape the registry.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// register resolves (or creates) the family for name, enforcing that a
// name keeps one type and label scheme for the registry's lifetime.
func (r *Registry) register(name, help string, typ metricType, labels []string) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v (was %s%v)",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels,
		series: make(map[string]*series)}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// labelSuffix renders a `{k="v",...}` suffix for a family's label names
// and the given values.
func labelSuffix(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	if len(names) != len(values) {
		panic(fmt.Sprintf("obs: %d label values for %d label names", len(values), len(names)))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// get returns the series for the given label suffix, creating it with
// mk when absent.
func (f *family) get(suffix string, mk func() *series) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[suffix]; ok {
		return s
	}
	s := mk()
	s.labels = suffix
	f.series[suffix] = s
	return s
}

// Counter returns the unlabeled counter with the given name, creating
// it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, nil)
	return f.get("", func() *series { return &series{counter: &Counter{}} }).counter
}

// Gauge returns the unlabeled gauge with the given name, creating it if
// needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, nil)
	return f.get("", func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// Histogram returns the unlabeled histogram with the given name,
// creating it with the given strictly-increasing bucket upper bounds
// (+Inf is implicit; pass nil for DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing", name))
		}
	}
	f := r.register(name, help, typeHistogram, nil)
	bounds := append([]float64(nil), buckets...)
	return f.get("", func() *series {
		return &series{hist: &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}}
	}).hist
}

// CounterFunc exposes fn's reading as a counter; fn is called at scrape
// time and must be monotone non-decreasing and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, typeCounter, nil)
	f.get("", func() *series { return &series{fn: fn} })
}

// GaugeFunc exposes fn's reading as a gauge; fn is called at scrape time
// and must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, typeGauge, nil)
	f.get("", func() *series { return &series{fn: fn} })
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with the given name,
// creating it if needed.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	return &CounterVec{f: r.register(name, help, typeCounter, labels)}
}

// With returns the counter for the given label values (one per label
// name, in registration order), creating it if needed.
func (v *CounterVec) With(values ...string) *Counter {
	suffix := labelSuffix(v.f.labels, values)
	return v.f.get(suffix, func() *series { return &series{counter: &Counter{}} }).counter
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with the given name,
// creating it if needed.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec needs at least one label")
	}
	return &GaugeVec{f: r.register(name, help, typeGauge, labels)}
}

// With returns the gauge for the given label values, creating it if
// needed.
func (v *GaugeVec) With(values ...string) *Gauge {
	suffix := labelSuffix(v.f.labels, values)
	return v.f.get(suffix, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
