package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NopLogger returns a logger that discards everything — the default for
// embedded servers and tests, where log output is noise.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// nopHandler drops every record without formatting it.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// ParseLevel maps a -log-level flag value (debug|info|warn|error,
// case-insensitive) to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a structured logger writing to w in the given format
// ("json" for machine-shipped logs, "text" for humans) at the given
// minimum level.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(format) {
	case "json", "":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want json|text)", format)
}
