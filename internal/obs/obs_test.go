package obs

import (
	"bytes"
	"flag"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureRegistry builds a deterministic registry exercising every
// instrument kind the renderer supports.
func fixtureRegistry() *Registry {
	r := NewRegistry()
	r.Counter("svc_requests_total", "Requests handled.").Add(42)
	v := r.CounterVec("svc_jobs_finished_total", "Jobs by terminal state.", "state")
	v.With("done").Add(7)
	v.With("failed").Inc()
	r.Gauge("svc_queue_depth", "Tasks waiting.").Set(3)
	r.GaugeVec("svc_build_info", "Build identification.", "go_version", "revision").
		With("go1.22", "abc\"def\\x").Set(1)
	r.GaugeFunc("svc_uptime_seconds", "Seconds since start.", func() float64 { return 12.5 })
	r.CounterFunc("svc_cache_hits_total", "Cache hits.", func() float64 { return 9 })
	h := r.Histogram("svc_wait_seconds", "Queue wait time.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	return r
}

// TestGoldenExposition pins the exposition byte-for-byte against the
// checked-in golden file, then re-parses it and checks every structural
// property a scraper relies on: declared types, name/label/value
// round-trip, and histogram bucket monotonicity ending at +Inf.
func TestGoldenExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/obs -update` to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	snap, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := map[string]string{
		"svc_requests_total":      "counter",
		"svc_jobs_finished_total": "counter",
		"svc_queue_depth":         "gauge",
		"svc_build_info":          "gauge",
		"svc_uptime_seconds":      "gauge",
		"svc_cache_hits_total":    "counter",
		"svc_wait_seconds":        "histogram",
	}
	for name, typ := range wantTypes {
		if got := snap.Types[name]; got != typ {
			t.Errorf("TYPE %s = %q, want %q", name, got, typ)
		}
	}
	checks := []struct {
		name string
		kv   []string
		want float64
	}{
		{"svc_requests_total", nil, 42},
		{"svc_jobs_finished_total", []string{"state", "done"}, 7},
		{"svc_jobs_finished_total", []string{"state", "failed"}, 1},
		{"svc_queue_depth", nil, 3},
		{"svc_build_info", []string{"go_version", "go1.22", "revision", `abc"def\x`}, 1},
		{"svc_uptime_seconds", nil, 12.5},
		{"svc_cache_hits_total", nil, 9},
		{"svc_wait_seconds_bucket", []string{"le", "0.1"}, 1},
		{"svc_wait_seconds_bucket", []string{"le", "1"}, 3},
		{"svc_wait_seconds_bucket", []string{"le", "10"}, 4},
		{"svc_wait_seconds_bucket", []string{"le", "+Inf"}, 5},
		{"svc_wait_seconds_sum", nil, 56.05},
		{"svc_wait_seconds_count", nil, 5},
	}
	for _, c := range checks {
		got, ok := snap.Get(c.name, c.kv...)
		if !ok {
			t.Errorf("series %s%v missing", c.name, c.kv)
			continue
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s%v = %v, want %v", c.name, c.kv, got, c.want)
		}
	}
	assertHistogramsWellFormed(t, snap)
}

// assertHistogramsWellFormed checks, for every family declared as a
// histogram, that its cumulative buckets are monotone non-decreasing in
// le order, terminate at le="+Inf", and agree with _count.
func assertHistogramsWellFormed(t *testing.T, snap *Snapshot) {
	t.Helper()
	for name, typ := range snap.Types {
		if typ != "histogram" {
			continue
		}
		var prevLe, prevCum float64 = math.Inf(-1), 0
		var infSeen bool
		for _, s := range snap.Samples {
			if s.Name != name+"_bucket" {
				continue
			}
			le, err := parseLe(s.Labels["le"])
			if err != nil {
				t.Fatalf("%s: bad le %q", name, s.Labels["le"])
			}
			if le <= prevLe {
				t.Errorf("%s: buckets out of le order (%v after %v)", name, le, prevLe)
			}
			if s.Value < prevCum {
				t.Errorf("%s: cumulative count decreased at le=%v (%v < %v)", name, le, s.Value, prevCum)
			}
			prevLe, prevCum = le, s.Value
			if math.IsInf(le, 1) {
				infSeen = true
				count, ok := snap.Get(name + "_count")
				if !ok || count != s.Value {
					t.Errorf("%s: +Inf bucket %v != _count %v", name, s.Value, count)
				}
			}
		}
		if !infSeen {
			t.Errorf("%s: no le=\"+Inf\" bucket", name)
		}
	}
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// TestRegistryRace hammers every instrument kind from many goroutines
// while other goroutines scrape continuously; run under -race this
// pins the concurrency contract.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "")
	g := r.Gauge("race_gauge", "")
	h := r.Histogram("race_hist_seconds", "", nil)
	vec := r.CounterVec("race_vec_total", "", "who")
	r.GaugeFunc("race_fn", "", func() float64 { return 1 })
	r.OnScrape(func() { g.Set(g.Value()) })

	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			who := string(rune('a' + w%4))
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(0.5)
				h.Observe(float64(i%13) / 10)
				vec.With(who).Inc()
			}
		}(w)
	}
	stop := make(chan struct{})
	var scr sync.WaitGroup
	for s := 0; s < 3; s++ {
		scr.Add(1)
		go func() {
			defer scr.Done()
			for {
				select {
				case <-stop:
					return
				default:
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scr.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
	var total int64
	for _, who := range []string{"a", "b", "c", "d"} {
		total += vec.With(who).Value()
	}
	if total != writers*perWriter {
		t.Fatalf("vec total = %d, want %d", total, writers*perWriter)
	}
	if got, want := g.Value(), float64(writers*perWriter)*0.5; math.Abs(got-want) > 1e-6 {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
}

// TestHandler serves the exposition over HTTP with the conventional
// content type.
func TestHandler(t *testing.T) {
	r := fixtureRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	snap, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Get("svc_requests_total"); !ok || v != 42 {
		t.Fatalf("svc_requests_total over HTTP = %v, %v", v, ok)
	}
}

// TestParseTextErrors pins parser diagnostics for malformed lines.
func TestParseTextErrors(t *testing.T) {
	for _, bad := range []string{
		"just_a_name",
		`m{k="v} 1`,
		`m{k=v} 1`,
		"m notanumber",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted malformed input", bad)
		}
	}
}

// TestRegisterConflicts pins that a name cannot change type or label
// scheme.
func TestRegisterConflicts(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "")
	mustPanic(t, func() { r.Gauge("c_total", "") })
	r.CounterVec("v_total", "", "a")
	mustPanic(t, func() { r.CounterVec("v_total", "", "b") })
	mustPanic(t, func() { r.Histogram("h", "", []float64{2, 1}) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

// TestExpBuckets pins the helper's geometry.
func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	mustPanic(t, func() { ExpBuckets(0, 2, 3) })
}

// TestBuildInfo exercises the build-info gauge path end to end.
func TestBuildInfo(t *testing.T) {
	r := NewRegistry()
	b := ReadBuild()
	if b.GoVersion == "" {
		t.Fatal("no Go version")
	}
	RegisterBuildInfo(r, "svc_build_info", b)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v := snap.Sum("svc_build_info"); v != 1 {
		t.Fatalf("svc_build_info = %v, want 1", v)
	}
}
