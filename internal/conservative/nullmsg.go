package conservative

import (
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// CMB-style null-message synchronization.
//
// Within a node, workers read each other's live floors directly (the
// kernel is cooperative, so reads are consistent): worker v cannot send
// worker w anything below floorLive(v) + lookahead. Across nodes, the
// comm roles exchange null messages carrying EOT ("earliest output
// time") promises: node s will never again send an event stamped below
// EOT. Promises are computed as (local floors ∧ inbound promises) +
// lookahead, min'ed with anything already queued in the outbox, and
// ratchet monotonically — each exchange raises the bound by at least one
// lookahead, which is the protocol's deadlock-freedom argument. Floors
// beyond the end time clamp to infinity (those events are never
// processed, so they can never generate sends), which caps the null
// traffic needed to shut the run down.

// safeBound computes the stamp bound below which this worker may safely
// process: no event with a smaller stamp can ever arrive.
func (w *worker) safeBound() vtime.Time {
	e := w.eng
	safe := vtime.Inf
	for _, c := range w.node.chanIn { // self entry is pinned to Inf
		if c < safe {
			safe = c
		}
	}
	for _, v := range w.node.workers {
		if v == w {
			continue
		}
		if f := e.horizonFloor(v.floorLive()); f != vtime.Inf && f+e.la < safe {
			safe = f + e.la
		}
	}
	return safe
}

// runNullmsg is the worker side of the protocol.
func (w *worker) runNullmsg(p *sim.Proc) {
	n := w.node
	for {
		worked := w.drainInbox(p)
		safe := w.safeBound()
		if w.processBatch(p, safe) {
			worked = true
		}
		if worked {
			w.setPhase(p, trace.PhaseProcessing)
			continue
		}
		// Nothing processable: done for good, or blocked on a promise.
		if w.eng.horizonFloor(w.floorLive()) == vtime.Inf && w.safeBound() > w.eng.end {
			return
		}
		w.setPhase(p, trace.PhaseIdle)
		w.st.IdleTime += n.cost.IdlePoll
		p.Advance(n.cost.IdlePoll)
	}
}

// eotPromise computes the EOT bound this node can currently promise its
// peers. Once every local worker has exited the node will never send
// again, unconditionally.
func (n *node) eotPromise() vtime.Time {
	e := n.eng
	if n.workersExited == len(n.workers) {
		return vtime.Inf
	}
	b := vtime.Inf
	for _, w := range n.workers {
		if f := e.horizonFloor(w.floorLive()); f < b {
			b = f
		}
	}
	for s, c := range n.chanIn {
		if s == n.id {
			continue
		}
		if f := e.horizonFloor(c); f < b {
			b = f
		}
	}
	eot := vtime.Inf
	if b != vtime.Inf {
		eot = b + e.la
	}
	// Events already stamped and queued for transmission bound the
	// promise directly (cooperative kernel: a zero-cost peek, so no
	// simulated lock acquisition).
	for _, ev := range n.outbox {
		if ev.Stamp.T < eot {
			eot = ev.Stamp.T
		}
	}
	return eot
}

// sendNulls pushes a fresh EOT promise to every peer whose last promise
// it improves. The promise shares the event tag, so FIFO delivery
// guarantees every event sent before it arrives first.
func (n *node) sendNulls(p *sim.Proc) bool {
	top := &n.eng.cfg.Topology
	if top.Nodes == 1 {
		return false
	}
	eot := n.eotPromise()
	tr := n.eng.cfg.Trace
	sent := false
	for dst := 0; dst < top.Nodes; dst++ {
		if dst == n.id || eot <= n.lastEOT[dst] {
			continue
		}
		n.lastEOT[dst] = eot
		n.rank.Send(p, dst, tagEvents, nullWireSize, nullMsg{EOT: eot})
		n.eng.nullMsgs++
		sent = true
		if tr != nil {
			tr.MPISend(trace.MPISend{
				Src: uint16(n.id), Dst: uint16(dst), Bytes: nullWireSize,
				AtNanos: int64(p.Now()),
			})
		}
	}
	return sent
}

// commNullmsg is the comm-role side of the protocol: pump events both
// ways and keep the promises flowing until every local worker is done,
// then sign off with a final infinite promise so peers can finish too.
func (n *node) commNullmsg(p *sim.Proc) {
	for n.workersExited < len(n.workers) {
		worked := n.flushEvents(p, pumpBudget)
		if n.recvInbound(p, pumpBudget) {
			worked = true
		}
		if n.sendNulls(p) {
			worked = true
		}
		if !worked {
			p.Advance(n.cost.IdlePoll)
		}
	}
	n.flushEvents(p, 0)
	n.sendNulls(p)
}
