package conservative

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/models/epidemic"
	"repro/internal/models/pcs"
	"repro/internal/models/tandem"
	"repro/internal/phold"
	"repro/internal/seq"
	"repro/internal/vtime"
)

// testModel bundles a model factory with its lookahead bound for a given
// topology.
type testModel struct {
	name      string
	lookahead vtime.Time
	factory   func(top cluster.Topology) core.ModelFactory
}

func testModels() []testModel {
	return []testModel{
		{
			name:      "phold",
			lookahead: 0.1, // phold.Params default Lookahead
			factory: func(top cluster.Topology) core.ModelFactory {
				params := phold.Params{Topology: top, Base: phold.ComputationDominated()}
				if top.Nodes == 1 {
					params.Base.RemotePct = 0
				}
				return phold.New(params)
			},
		},
		{
			name:      "pcs",
			lookahead: pcs.Lookahead,
			factory: func(top cluster.Topology) core.ModelFactory {
				w, h := cluster.NearSquareGrid(top.TotalLPs())
				return pcs.New(pcs.Params{GridW: w, GridH: h})
			},
		},
		{
			name:      "epidemic",
			lookahead: epidemic.Lookahead,
			factory: func(top cluster.Topology) core.ModelFactory {
				w, h := cluster.NearSquareGrid(top.TotalLPs())
				return epidemic.New(epidemic.Params{GridW: w, GridH: h})
			},
		},
		{
			name:      "tandem",
			lookahead: vtime.Time(tandem.Params{}.Lookahead()),
			factory: func(top cluster.Topology) core.ModelFactory {
				return tandem.New(tandem.Params{})
			},
		},
	}
}

// TestParityWithSequentialOracle is the headline acceptance test: for
// every model and both sync protocols, across single- and multi-node
// topologies, the conservative engine commits a byte-identical event
// stream (checksum and count) to the sequential oracle.
func TestParityWithSequentialOracle(t *testing.T) {
	topologies := []cluster.Topology{
		{Nodes: 1, WorkersPerNode: 1, LPsPerWorker: 8},
		{Nodes: 1, WorkersPerNode: 4, LPsPerWorker: 4},
		{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 4},
	}
	const endTime = 6.0
	const seed = 7

	for _, m := range testModels() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			for _, top := range topologies {
				oracle := seq.New(m.factory(top), top.TotalLPs(), endTime, seed)
				ref := oracle.Run()
				if ref.Processed == 0 {
					t.Fatalf("oracle processed no events for %s on %+v", m.name, top)
				}
				for _, sync := range []SyncKind{SyncNullMsg, SyncWindow} {
					label := fmt.Sprintf("%s/%dn%dw%dl", sync, top.Nodes, top.WorkersPerNode, top.LPsPerWorker)
					eng := New(Config{
						Topology:  top,
						Sync:      sync,
						Lookahead: m.lookahead,
						EndTime:   endTime,
						Seed:      seed,
						Model:     m.factory(top),
					})
					r, err := eng.Run()
					if err != nil {
						t.Fatalf("%s: run failed: %v", label, err)
					}
					if r.CommitChecksum != ref.Checksum {
						t.Errorf("%s: commit checksum %016x, oracle %016x", label, r.CommitChecksum, ref.Checksum)
					}
					if r.Workers.Committed != ref.Processed {
						t.Errorf("%s: committed %d events, oracle processed %d", label, r.Workers.Committed, ref.Processed)
					}
					if r.Workers.Processed != r.Workers.Committed {
						t.Errorf("%s: conservative engine processed %d != committed %d (must never speculate)",
							label, r.Workers.Processed, r.Workers.Committed)
					}
				}
			}
		})
	}
}

// TestParityAcrossSeeds guards the stamp/RNG plumbing against
// coincidental matches at one seed.
func TestParityAcrossSeeds(t *testing.T) {
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 2}
	m := testModels()[0] // phold exercises all three locality classes
	for _, seedv := range []uint64{1, 42, 12345} {
		oracle := seq.New(m.factory(top), top.TotalLPs(), 5.0, seedv)
		ref := oracle.Run()
		for _, sync := range []SyncKind{SyncNullMsg, SyncWindow} {
			eng := New(Config{
				Topology: top, Sync: sync, Lookahead: m.lookahead,
				EndTime: 5.0, Seed: seedv, Model: m.factory(top),
			})
			r, err := eng.Run()
			if err != nil {
				t.Fatalf("seed %d %v: %v", seedv, sync, err)
			}
			if r.CommitChecksum != ref.Checksum || r.Workers.Committed != ref.Processed {
				t.Errorf("seed %d %v: checksum %016x/%d events, oracle %016x/%d",
					seedv, sync, r.CommitChecksum, r.Workers.Committed, ref.Checksum, ref.Processed)
			}
		}
	}
}

// TestDeterministicAcrossRuns pins that two identical configurations
// produce identical statistics, not just identical checksums.
func TestDeterministicAcrossRuns(t *testing.T) {
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 4}
	m := testModels()[0]
	for _, sync := range []SyncKind{SyncNullMsg, SyncWindow} {
		mk := func() Config {
			return Config{Topology: top, Sync: sync, Lookahead: m.lookahead,
				EndTime: 5.0, Seed: 3, Model: m.factory(top)}
		}
		a, err := New(mk()).Run()
		if err != nil {
			t.Fatalf("%v: %v", sync, err)
		}
		b, err := New(mk()).Run()
		if err != nil {
			t.Fatalf("%v: %v", sync, err)
		}
		if *a != *b {
			t.Errorf("%v: identical configs diverged:\n  a=%+v\n  b=%+v", sync, a, b)
		}
	}
}
