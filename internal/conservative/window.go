package conservative

import (
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Globally constrained moving-window synchronization.
//
// Rounds are cluster-global and lockstep. Each round the cluster first
// drains every in-transit event (outboxes flushed, an allreduce over
// sent−received counts looping until zero), then every worker publishes
// its virtual-time floor, an allreduce-min yields the global minimum
// unprocessed timestamp M, and the next window is H = M + lookahead.
// Workers then process exactly the events with stamps strictly below H:
// any event generated during the round is sent from a time >= M over a
// cross-worker link with delay >= lookahead, so it lands at or beyond H
// and cannot be needed until the next round. The run terminates when M
// passes the end time.

// runWindow is the worker side of the protocol.
func (w *worker) runWindow(p *sim.Proc) {
	n := w.node
	for {
		// Process everything strictly below the current horizon. The
		// first pass has horizon 0 and falls straight into the sync.
		worked := w.drainInbox(p)
		if w.processBatch(p, n.horizon) {
			worked = true
		}
		if worked {
			w.setPhase(p, trace.PhaseProcessing)
			continue
		}
		// Horizon exhausted: synchronize. First drain in-transit events
		// cluster-wide (the comm role flushes, receives and allreduces
		// between the two barriers of each iteration).
		w.setPhase(p, trace.PhaseGVT)
		for {
			w.drainInbox(p)
			p.Advance(n.cost.BarrierEntry)
			n.barrierWait(p, n.bar1, w)
			n.barrierWait(p, n.bar2, w)
			if n.transit == 0 {
				break
			}
		}
		// Everything is local now; publish the floor and let the comm
		// role agree on the next window.
		w.drainInbox(p)
		n.floors[w.idx] = float64(w.eng.horizonFloor(w.floorLive()))
		n.barrierWait(p, n.bar1, w)
		n.barrierWait(p, n.bar2, w)
		w.st.SyncRounds++
		if n.horizon == vtime.Inf {
			return
		}
		w.setPhase(p, trace.PhaseProcessing)
	}
}

// commWindow is the comm-role side of the protocol, running the same
// round structure in lockstep with this node's workers.
func (n *node) commWindow(p *sim.Proc) {
	e := n.eng
	for {
		// Transit drain: between the barriers of each iteration, flush
		// the outbox, consume every delivered message and agree
		// cluster-wide on the number still in flight.
		for {
			n.barrierWait(p, n.bar1, nil)
			n.flushEvents(p, 0)
			n.recvInbound(p, 0)
			n.transit = n.rank.AllreduceSum(p, n.evSent-n.evRecv)
			n.barrierWait(p, n.bar2, nil)
			if n.transit == 0 {
				break
			}
		}
		// Window agreement: min over local floors, then cluster-wide.
		n.barrierWait(p, n.bar1, nil)
		min := vtime.Inf
		for _, f := range n.floors {
			if vtime.Time(f) < min {
				min = vtime.Time(f)
			}
		}
		m := vtime.Time(n.rank.AllreduceMin(p, float64(min)))
		if m > e.end {
			n.horizon = vtime.Inf
		} else {
			n.horizon = m + e.la
		}
		if n.id == 0 {
			e.onRound(p.Now(), m, true)
		}
		n.barrierWait(p, n.bar2, nil)
		if n.horizon == vtime.Inf {
			return
		}
	}
}
