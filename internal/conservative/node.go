package conservative

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/mpi"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// tagEvents is the single MPI tag shared by event and null-message
// traffic. Sharing one tag is load-bearing: the fabric is FIFO per
// (src, dst) link and the MPI stash preserves arrival order only within
// a tag, so a null message consumed on the same tag proves every event
// the sender put on the wire before it has already been delivered —
// exactly the guarantee the EOT promise semantics need.
const tagEvents = mpi.TagUser

// nullMsg is a CMB null message: a promise that the sending node will
// never again send an event with a stamp below EOT.
type nullMsg struct {
	EOT vtime.Time
}

// nullWireSize approximates a null message's wire footprint (header plus
// one timestamp) for the fabric's bandwidth term.
const nullWireSize = 24

const pumpBudget = 32

// node hosts a group of workers, their shared MPI rank and the dedicated
// comm role that services it.
type node struct {
	eng     *Engine
	id      int
	cost    cluster.CostModel
	rank    *mpi.Rank
	workers []*worker

	outMu  sim.Mutex
	outbox []*event.Event

	// evSent/evRecv count event messages (not nulls) over MPI, for the
	// window protocol's transit-drain allreduce.
	evSent, evRecv int64

	// Window-sync state.
	bar1, bar2 *sim.Barrier
	transit    int64
	floors     []float64 // per local worker, published at the sync point
	horizon    vtime.Time

	// Null-message state.
	chanIn  []vtime.Time // [peer node] highest EOT promise received
	lastEOT []vtime.Time // [peer node] highest EOT promise sent

	workersExited int
}

func newNode(eng *Engine, id int, streams *rng.Sequence) *node {
	top := &eng.cfg.Topology
	n := &node{
		eng:  eng,
		id:   id,
		cost: eng.cfg.Cost,
		rank: eng.world.Rank(id),
	}
	n.outMu = sim.Mutex{Name: fmt.Sprintf("outbox-%d", id), HoldCost: n.cost.RegionalLockHold}
	parts := top.WorkersPerNode + 1 // workers + the comm role
	n.bar1 = sim.NewBarrier(fmt.Sprintf("csync-%d", id), parts)
	n.bar2 = sim.NewBarrier(fmt.Sprintf("csync2-%d", id), parts)
	n.floors = make([]float64, top.WorkersPerNode)
	n.chanIn = make([]vtime.Time, top.Nodes)
	n.lastEOT = make([]vtime.Time, top.Nodes)
	for i := range n.chanIn {
		if i == id {
			n.chanIn[i] = vtime.Inf // self imposes no inbound bound
		}
	}
	for i := 0; i < top.WorkersPerNode; i++ {
		n.workers = append(n.workers, newWorker(n, i, streams))
	}
	return n
}

func (n *node) spawn() {
	for _, w := range n.workers {
		w := w
		n.eng.env.Spawn(fmt.Sprintf("n%d/w%d", n.id, w.idx), func(p *sim.Proc) { w.run(p) })
	}
	n.eng.env.Spawn(fmt.Sprintf("n%d/comm", n.id), func(p *sim.Proc) {
		switch n.eng.cfg.Sync {
		case SyncWindow:
			n.commWindow(p)
		default:
			n.commNullmsg(p)
		}
	})
}

// enqueueRemote queues an event for MPI transmission by the comm role.
func (n *node) enqueueRemote(p *sim.Proc, ev *event.Event) {
	n.outMu.Lock(p)
	p.Advance(n.cost.RemoteEnqueue)
	n.outbox = append(n.outbox, ev)
	n.outMu.Unlock(p)
}

// flushEvents sends up to budget outbox events over MPI (budget <= 0
// means all). Returns whether anything was sent.
func (n *node) flushEvents(p *sim.Proc, budget int) bool {
	sent := false
	for {
		n.outMu.Lock(p)
		take := len(n.outbox)
		if budget > 0 && take > budget {
			take = budget
		}
		batch := make([]*event.Event, take)
		copy(batch, n.outbox[:take])
		rest := copy(n.outbox, n.outbox[take:])
		n.outbox = n.outbox[:rest]
		backlog := rest
		n.outMu.Unlock(p)
		if take == 0 {
			return sent
		}
		tr := n.eng.cfg.Trace
		top := &n.eng.cfg.Topology
		for _, ev := range batch {
			dst := top.NodeOf(ev.Dst)
			n.rank.Send(p, dst, tagEvents, ev.WireSize(), ev)
			n.evSent++
			sent = true
			if tr != nil {
				tr.MPISend(trace.MPISend{
					Src: uint16(n.id), Dst: uint16(dst), Bytes: uint32(ev.WireSize()),
					QueueDepth: uint32(backlog), AtNanos: int64(p.Now()),
				})
			}
		}
		if budget > 0 {
			return sent
		}
	}
}

// recvInbound consumes up to budget inbound messages (budget <= 0 means
// all): events are deposited with their destination worker, null
// messages ratchet the per-peer promise channel.
func (n *node) recvInbound(p *sim.Proc, budget int) bool {
	got := false
	top := &n.eng.cfg.Topology
	tr := n.eng.cfg.Trace
	for i := 0; budget <= 0 || i < budget; i++ {
		m, ok := n.rank.TryRecv(p, tagEvents)
		if !ok {
			break
		}
		got = true
		switch pl := m.Payload.(type) {
		case *event.Event:
			n.evRecv++
			_, wi := top.WorkerOf(pl.Dst)
			w := n.workers[wi]
			w.deposit(p, pl)
			if tr != nil {
				tr.MPIRecv(trace.MPIRecv{
					Src: uint16(m.Src), Dst: uint16(n.id), Bytes: uint32(m.Size),
					QueueDepth: uint32(len(w.inbox)), AtNanos: int64(p.Now()),
				})
			}
		case nullMsg:
			if pl.EOT > n.chanIn[m.Src] {
				n.chanIn[m.Src] = pl.EOT
			}
			if tr != nil {
				tr.MPIRecv(trace.MPIRecv{
					Src: uint16(m.Src), Dst: uint16(n.id), Bytes: uint32(m.Size),
					AtNanos: int64(p.Now()),
				})
			}
		default:
			panic(fmt.Sprintf("conservative: node %d received unexpected payload %T", n.id, m.Payload))
		}
	}
	return got
}

func (n *node) barrierWait(p *sim.Proc, b *sim.Barrier, w *worker) {
	t0 := p.Now()
	b.Wait(p)
	if w != nil {
		w.st.BarrierWait += p.Now() - t0
	}
}
