package conservative

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/eventq"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// lp is one logical process: model instance, private RNG stream, send
// sequence counter and running commit checksum — the same per-LP state
// the sequential oracle keeps, so checksums line up byte for byte.
type lp struct {
	id       event.LPID
	model    core.Model
	rng      *rng.Stream
	seq      uint64
	last     vtime.Stamp // last processed stamp, for the causality check
	checksum stats.Checksum
}

// worker owns a contiguous LP range and a pending event queue. Unlike an
// optimistic worker it keeps no history: an event is committed the
// moment it is processed, because the sync protocol guaranteed safety
// first.
type worker struct {
	eng  *Engine
	node *node
	idx  int // within the node
	gidx int // cluster-wide
	proc *sim.Proc

	firstLP event.LPID
	lps     []*lp

	pending eventq.Queue

	inMu     sim.Mutex
	inbox    []*event.Event
	inFree   []*event.Event
	inboxMin vtime.Time // min stamp in inbox; Inf when empty

	// holdMin covers events swapped out of the inbox but not yet pushed
	// into pending; execT covers the event currently being processed
	// (including routing its sends). Both are Inf when idle. Together
	// with pending and inboxMin they make floorLive leak-free: at every
	// kernel yield point, every event this worker holds is accounted for.
	holdMin vtime.Time
	execT   vtime.Time

	done bool

	ctx       wctx
	sendQ     []*event.Event
	lastPhase uint8

	st stats.Worker
}

func newWorker(n *node, idx int, streams *rng.Sequence) *worker {
	top := &n.eng.cfg.Topology
	w := &worker{
		eng:      n.eng,
		node:     n,
		idx:      idx,
		gidx:     n.id*top.WorkersPerNode + idx,
		firstLP:  top.FirstLP(n.id, idx),
		pending:  eventq.New(n.eng.cfg.QueueKind),
		inboxMin: vtime.Inf,
		holdMin:  vtime.Inf,
		execT:    vtime.Inf,
	}
	w.inMu = sim.Mutex{Name: fmt.Sprintf("inbox-%d/%d", n.id, idx), HoldCost: n.cost.RegionalLockHold}
	w.lastPhase = 0xFF
	w.ctx.w = w
	total := top.TotalLPs()
	for i := 0; i < top.LPsPerWorker; i++ {
		id := w.firstLP + event.LPID(i)
		w.lps = append(w.lps, &lp{
			id:       id,
			model:    n.eng.cfg.Model(id, total),
			rng:      streams.Next(),
			checksum: stats.NewChecksum(),
		})
	}
	return w
}

func (w *worker) run(p *sim.Proc) {
	w.proc = p
	switch w.eng.cfg.Sync {
	case SyncWindow:
		w.runWindow(p)
	default:
		w.runNullmsg(p)
	}
	w.setPhase(p, trace.PhaseIdle)
	w.done = true
	w.node.workersExited++
	w.eng.exited++
}

// floorLive is this worker's live virtual-time floor: the smallest stamp
// of any event it holds (pending, undrained inbox, in-hand drain batch,
// or the event being processed). Peers read it — cooperatively, so
// without a lock — to bound what this worker might still send.
func (w *worker) floorLive() vtime.Time {
	f := eventq.MinStamp(w.pending).T
	if w.inboxMin < f {
		f = w.inboxMin
	}
	if w.holdMin < f {
		f = w.holdMin
	}
	if w.execT < f {
		f = w.execT
	}
	return f
}

// deposit delivers an event into this worker's inbox (called by peer
// workers on the same node and by the comm role for MPI arrivals).
func (w *worker) deposit(p *sim.Proc, ev *event.Event) {
	w.inMu.Lock(p)
	p.Advance(w.node.cost.RegionalSend)
	w.inbox = append(w.inbox, ev)
	if ev.Stamp.T < w.inboxMin {
		w.inboxMin = ev.Stamp.T
	}
	w.inMu.Unlock(p)
}

// drainInbox moves inbox events into the pending queue. The in-hand
// batch stays visible to floorLive via holdMin for the whole drain, so
// peer safety bounds never see a gap.
func (w *worker) drainInbox(p *sim.Proc) bool {
	w.inMu.Lock(p)
	batch := w.inbox
	w.holdMin = w.inboxMin
	w.inbox = w.inFree[:0]
	w.inboxMin = vtime.Inf
	w.inMu.Unlock(p)
	if len(batch) == 0 {
		w.inFree = batch
		w.holdMin = vtime.Inf
		return false
	}
	p.Advance(sim.Time(len(batch)) * (w.node.cost.InboxDrainPerMsg + w.node.cost.QueueOp))
	for _, ev := range batch {
		w.pending.Push(ev)
	}
	w.inFree = batch[:0]
	w.holdMin = vtime.Inf
	return true
}

// processBatch processes up to BatchSize pending events with stamps
// strictly below bound (and within the simulation end time), in full
// stamp order. Returns whether any event was processed.
func (w *worker) processBatch(p *sim.Proc, bound vtime.Time) bool {
	worked := false
	for i := 0; i < w.eng.cfg.BatchSize; i++ {
		ev := w.pending.Peek()
		if ev == nil || ev.Stamp.T >= bound || ev.Stamp.T > w.eng.end {
			break
		}
		// execT covers the event from the moment it leaves the queue
		// until its sends are routed; set it before Pop so the floor
		// never jumps past an in-flight event.
		w.execT = ev.Stamp.T
		w.pending.Pop()
		p.Advance(w.node.cost.QueueOp)
		w.processOne(p, ev)
		worked = true
	}
	w.execT = vtime.Inf
	return worked
}

// processOne runs one event through its LP's model and commits it.
func (w *worker) processOne(p *sim.Proc, ev *event.Event) {
	l := w.lps[ev.Dst-w.firstLP]
	if ev.Stamp.Before(l.last) {
		panic(fmt.Sprintf("conservative: causality violation at LP %d: event %v arrived after %v was processed (sync=%v lookahead=%v)",
			l.id, ev.Stamp, l.last, w.eng.cfg.Sync, w.eng.la))
	}
	l.last = ev.Stamp
	p.Advance(w.node.cost.EventOverhead)
	w.ctx.lp = l
	w.ctx.now = ev.Stamp.T
	l.model.OnEvent(&w.ctx, ev)
	l.checksum = l.checksum.Mix(uint32(l.id), ev.Stamp.T, ev.Stamp.Src, ev.Stamp.Seq)
	w.st.Processed++
	w.st.Committed++
	if tr := w.eng.cfg.Trace; tr != nil {
		tr.Commit(trace.Commit{LP: uint32(l.id), T: ev.Stamp.T, Src: ev.Stamp.Src, Seq: ev.Stamp.Seq})
	}
	for _, s := range w.sendQ {
		w.route(p, s)
	}
	w.sendQ = w.sendQ[:0]
}

// route delivers one freshly sent event by destination locality.
func (w *worker) route(p *sim.Proc, ev *event.Event) {
	top := &w.eng.cfg.Topology
	switch top.Class(ev.Src, ev.Dst) {
	case event.Local:
		p.Advance(w.node.cost.LocalSend + w.node.cost.QueueOp)
		w.pending.Push(ev)
		w.st.SentLocal++
	case event.Regional:
		_, wi := top.WorkerOf(ev.Dst)
		w.node.workers[wi].deposit(p, ev)
		w.st.SentRegion++
	default:
		w.node.enqueueRemote(p, ev)
		w.st.SentRemote++
	}
}

func (w *worker) setPhase(p *sim.Proc, ph uint8) {
	if w.lastPhase == ph {
		return
	}
	w.lastPhase = ph
	if tr := w.eng.cfg.Trace; tr != nil {
		tr.Phase(trace.Phase{Worker: uint32(w.gidx), Phase: ph, AtNanos: int64(p.Now())})
	}
}

// wctx is the runtime model context, reused across events.
type wctx struct {
	w   *worker
	lp  *lp
	now vtime.Time
}

func (c *wctx) Self() event.LPID { return c.lp.id }
func (c *wctx) Now() vtime.Time  { return c.now }
func (c *wctx) RNG() *rng.Stream { return c.lp.rng }
func (c *wctx) NumLPs() int      { return c.w.eng.cfg.Topology.TotalLPs() }
func (c *wctx) Spin(units int) {
	c.w.proc.Advance(sim.Time(units) * c.w.node.cost.Flop)
}

// Send stamps the event exactly as the sequential oracle does — per-LP
// sequence counter, stamp (now+delay, lp, seq) — so commit checksums
// match bit for bit.
func (c *wctx) Send(dst event.LPID, delay vtime.Time, kind uint16, data []byte) {
	if delay < 0 {
		panic(fmt.Sprintf("conservative: LP %d sent an event %g into the past", c.lp.id, delay))
	}
	// Enforce the declared lookahead on cross-worker sends, against the
	// model's exact delay argument (recomputing it from stamps would
	// re-round and spuriously trip on models whose minimum delay IS the
	// lookahead). Same-worker sends are exempt: they land in this
	// worker's own pending queue, which is processed in stamp order
	// regardless.
	if delay < c.w.eng.la && c.w.eng.cfg.Topology.Class(c.lp.id, dst) != event.Local {
		panic(fmt.Sprintf("conservative: cross-worker send LP %d -> LP %d with delay %g below the declared lookahead %g; the safety bound would be violated — lower Config.Lookahead to the model's true minimum cross-LP delay",
			c.lp.id, dst, delay, c.w.eng.la))
	}
	l := c.lp
	l.seq++
	c.w.sendQ = append(c.w.sendQ, &event.Event{
		Stamp:    vtime.Stamp{T: c.now + delay, Src: uint32(l.id), Seq: l.seq},
		SendTime: c.now,
		Src:      l.id,
		Dst:      dst,
		Kind:     kind,
		Data:     data,
	})
}

// initCtx seeds initial events at construction time (virtual time zero),
// before the kernel starts. Sends bypass the sync layer and land
// directly in the destination's pending queue — they are initial
// conditions, present before any processing, so the lookahead bound does
// not apply (matching the sequential oracle's Init semantics exactly).
type initCtx struct {
	eng *Engine
	lp  *lp
}

func (c *initCtx) Self() event.LPID { return c.lp.id }
func (c *initCtx) Now() vtime.Time  { return 0 }
func (c *initCtx) RNG() *rng.Stream { return c.lp.rng }
func (c *initCtx) NumLPs() int      { return c.eng.cfg.Topology.TotalLPs() }
func (c *initCtx) Spin(int)         {}

func (c *initCtx) Send(dst event.LPID, delay vtime.Time, kind uint16, data []byte) {
	if delay < 0 {
		panic(fmt.Sprintf("conservative: LP %d seeded an event %g into the past", c.lp.id, delay))
	}
	l := c.lp
	l.seq++
	c.eng.workerOf(dst).pending.Push(&event.Event{
		Stamp:    vtime.Stamp{T: delay, Src: uint32(l.id), Seq: l.seq},
		SendTime: 0,
		Src:      l.id,
		Dst:      dst,
		Kind:     kind,
		Data:     data,
	})
}
