package conservative

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/models/tandem"
	"repro/internal/phold"
	"repro/internal/seq"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// TestNullMessageDeadlockRegression pins the protocol's deadlock-freedom
// on the adversarial shape for CMB: a feed-forward chain split across
// nodes where every cross-node delay equals the lookahead exactly, and
// the lookahead is near zero. Without lookahead-stamped null messages
// (or with a promise that fails to ratchet), the downstream node would
// wait forever for the upstream one. The run must terminate, exchange
// real null traffic, and still match the oracle bit for bit.
func TestNullMessageDeadlockRegression(t *testing.T) {
	top := cluster.Topology{Nodes: 4, WorkersPerNode: 1, LPsPerWorker: 2}
	params := tandem.Params{HopDelay: 0.002} // zero-lookahead-adjacent
	factory := func() Config {
		return Config{
			Topology:  top,
			Sync:      SyncNullMsg,
			Lookahead: vtime.Time(params.Lookahead()),
			EndTime:   3.0,
			Seed:      11,
			Model:     tandem.New(params),
		}
	}
	ref := seq.New(tandem.New(params), top.TotalLPs(), 3.0, 11).Run()
	if ref.Processed == 0 {
		t.Fatal("oracle processed nothing; the regression would be vacuous")
	}

	done := make(chan struct{})
	var r *statsRun
	go func() {
		defer close(done)
		run, err := New(factory()).Run()
		if err != nil {
			t.Errorf("run failed: %v", err)
			return
		}
		r = &statsRun{run.CommitChecksum, run.Workers.Committed, run.NullMessages}
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("null-message run deadlocked (timed out)")
	}
	if r == nil {
		return
	}
	if r.checksum != ref.Checksum || r.committed != ref.Processed {
		t.Errorf("checksum %016x/%d events, oracle %016x/%d", r.checksum, r.committed, ref.Checksum, ref.Processed)
	}
	if r.nulls == 0 {
		t.Error("no null messages exchanged on a 4-node chain — the protocol cannot have synchronized conservatively")
	}
}

type statsRun struct {
	checksum  uint64
	committed int64
	nulls     int64
}

// TestZeroLookaheadRejected pins the validation error: a conservative
// configuration without positive lookahead must be refused, with an
// error explaining why.
func TestZeroLookaheadRejected(t *testing.T) {
	for _, la := range []vtime.Time{0, -0.5} {
		cfg := Config{
			Topology: cluster.Topology{Nodes: 1, WorkersPerNode: 2, LPsPerWorker: 2},
			Sync:     SyncNullMsg,
			EndTime:  1,
			Model:    tandem.New(tandem.Params{}),
		}
		cfg.Lookahead = la
		cfg.Defaults()
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("lookahead %v accepted", la)
		}
		if !strings.Contains(err.Error(), "deadlock") {
			t.Errorf("lookahead %v: error %q does not explain the deadlock risk", la, err)
		}
	}
}

// TestLookaheadViolationPanics pins the runtime guard: declaring a
// larger lookahead than the model honors must fail loudly, not corrupt
// the committed stream.
func TestLookaheadViolationPanics(t *testing.T) {
	top := cluster.Topology{Nodes: 1, WorkersPerNode: 2, LPsPerWorker: 2}
	params := phold.Params{Topology: top, Base: phold.ComputationDominated()}
	params.Base.RemotePct = 0
	params.Base.RegionalPct = 1 // every send crosses workers, so the guard must trip
	eng := New(Config{
		Topology:  top,
		Sync:      SyncNullMsg,
		Lookahead: 5.0, // far above phold's actual 0.1 floor
		EndTime:   4,
		Seed:      1,
		Model:     phold.New(params),
	})
	defer func() {
		msg, ok := recover().(string)
		if !ok {
			t.Fatal("no panic despite a lookahead the model violates")
		}
		if !strings.Contains(msg, "lookahead") {
			t.Errorf("panic %q does not name the lookahead violation", msg)
		}
	}()
	_, _ = eng.Run()
	t.Fatal("run completed despite a lookahead the model violates")
}

// TestObservability pins the engine's trace and metrics surface: commit
// records for every committed event, round records from both protocols,
// sampled round series, and the run report's identity fields.
func TestObservability(t *testing.T) {
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 2}
	for _, sync := range []SyncKind{SyncNullMsg, SyncWindow} {
		var buf bytes.Buffer
		tw := trace.NewWriter(&buf)
		rec := metrics.NewRecorder()
		params := phold.Params{Topology: top, Base: phold.ComputationDominated()}
		params.Base.RemotePct = 0.3 // enough cross-node traffic to guarantee MPI records
		eng := New(Config{
			Topology: top, Sync: sync, Lookahead: 0.1,
			EndTime: 4, Seed: 1, Model: phold.New(params),
			Trace: tw, Metrics: rec,
		})
		r, err := eng.Run()
		if err != nil {
			t.Fatalf("%v: %v", sync, err)
		}
		if err := tw.Flush(); err != nil {
			t.Fatalf("%v: flush: %v", sync, err)
		}
		var commits, rounds, mpiSends int64
		if err := trace.NewReader(bytes.NewReader(buf.Bytes())).ForEach(trace.Visitor{
			Commit:  func(trace.Commit) { commits++ },
			Round:   func(trace.Round) { rounds++ },
			MPISend: func(trace.MPISend) { mpiSends++ },
		}); err != nil {
			t.Fatalf("%v: reading trace: %v", sync, err)
		}
		if commits != r.Workers.Committed {
			t.Errorf("%v: %d commit records for %d committed events", sync, commits, r.Workers.Committed)
		}
		if rounds == 0 {
			t.Errorf("%v: no round records", sync)
		}
		if rounds != r.GVTRounds {
			t.Errorf("%v: %d round records but %d recorded rounds", sync, rounds, r.GVTRounds)
		}
		if mpiSends == 0 {
			t.Errorf("%v: no MPI send records on a 2-node run", sync)
		}
		if len(rec.Rounds()) == 0 {
			t.Errorf("%v: metrics recorder sampled no rounds", sync)
		}
		if sync == SyncNullMsg && r.NullMessages == 0 {
			t.Errorf("nullmsg: no null messages on a 2-node run")
		}
		if sync == SyncWindow && r.SyncRounds == 0 {
			t.Errorf("window: no sync rounds recorded")
		}

		rep := eng.Report(r)
		if rep.Config.Engine != "conservative" || rep.Config.Sync != sync.String() {
			t.Errorf("%v: report identity engine=%q sync=%q", sync, rep.Config.Engine, rep.Config.Sync)
		}
		if rep.Config.Lookahead != 0.1 {
			t.Errorf("%v: report lookahead %v", sync, rep.Config.Lookahead)
		}
		if rep.Stats.Efficiency != 1 {
			t.Errorf("%v: conservative efficiency %v, want exactly 1", sync, rep.Stats.Efficiency)
		}
		if want := metrics.Checksum(r.CommitChecksum); rep.Stats.CommitChecksum != want {
			t.Errorf("%v: report checksum %s, want %s", sync, rep.Stats.CommitChecksum, want)
		}
	}
}

// TestCancel pins that a running conservative simulation unwinds on
// Cancel with sim.ErrCancelled.
func TestCancel(t *testing.T) {
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 4}
	params := phold.Params{Topology: top, Base: phold.ComputationDominated()}
	eng := New(Config{
		Topology: top, Sync: SyncNullMsg, Lookahead: 0.1,
		EndTime: 1e4, Seed: 1, Model: phold.New(params),
	})
	done := make(chan error, 1)
	go func() {
		_, err := eng.Run()
		done <- err
	}()
	eng.Cancel()
	select {
	case err := <-done:
		if !errors.Is(err, sim.ErrCancelled) {
			t.Fatalf("got %v, want sim.ErrCancelled", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("cancel did not unwind the run")
	}
}
