// Package conservative implements a conservative (blocking) parallel
// discrete event simulation engine over the same cluster, MPI and model
// layers as the optimistic Time Warp engine in internal/core.
//
// Instead of speculating and rolling back, a conservative worker only
// processes an event once it is provably safe: no event with a smaller
// timestamp can still arrive. Safety derives from the model's lookahead
// — the minimum virtual delay of any cross-worker send — via one of two
// pluggable protocols:
//
//   - SyncNullMsg: Chandy–Misra–Bryant style null messages. Each node
//     periodically promises its peers a lower bound (EOT, "earliest
//     output time") on any future event it may send, stamped lookahead
//     ahead of its current floor. Promises ratchet monotonically, so
//     with positive lookahead the protocol is deadlock-free.
//   - SyncWindow: a globally constrained moving time window. Every
//     round the cluster agrees (via allreduce, reusing the GVT
//     machinery's collectives) on the global minimum unprocessed
//     timestamp M and processes only events strictly below M+lookahead.
//
// Both protocols commit events at processing time, in per-LP stamp
// order, and produce byte-identical commit checksums to the sequential
// oracle in internal/seq — pinned by the parity tests in this package.
package conservative

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// SyncKind selects the conservative synchronization protocol.
type SyncKind int

const (
	// SyncNullMsg is CMB-style asynchronous null-message synchronization.
	SyncNullMsg SyncKind = iota
	// SyncWindow is the globally constrained moving-window protocol.
	SyncWindow
)

func (k SyncKind) String() string {
	switch k {
	case SyncNullMsg:
		return "nullmsg"
	case SyncWindow:
		return "window"
	}
	return fmt.Sprintf("SyncKind(%d)", int(k))
}

// Config parameterizes a conservative run. The model, topology, seed and
// cost knobs mean exactly what they mean in core.Config; the engine adds
// the sync protocol and the lookahead bound.
type Config struct {
	Topology cluster.Topology
	Cost     cluster.CostModel
	Net      fabric.Params
	MPICosts mpi.Costs

	// Sync selects the synchronization protocol.
	Sync SyncKind
	// Lookahead is the model's minimum virtual delay on any cross-worker
	// send. It must be strictly positive: both protocols derive their
	// progress guarantee from it (null-message promises and the moving
	// window each advance by at least one lookahead per exchange, so a
	// zero lookahead would deadlock the cluster). The engine panics at
	// runtime if the model violates the declared bound.
	Lookahead vtime.Time

	EndTime   vtime.Time
	Seed      uint64
	QueueKind string // pending-queue implementation: "heap" (default) | "calendar"
	BatchSize int    // events processed per scheduling slice

	// ObserveInterval is the virtual-time cadence at which the
	// null-message observer records utilization rounds (trace Round
	// records plus horizon-roughness samples). The window protocol
	// records one round per horizon advance instead and ignores this.
	ObserveInterval sim.Time

	Model core.ModelFactory

	Trace   *trace.Writer
	Metrics *metrics.Recorder
}

// Defaults fills unset fields with paper-faithful values.
func (c *Config) Defaults() {
	if c.Cost == (cluster.CostModel{}) {
		c.Cost = cluster.KNLDefaults()
	}
	if c.Net == (fabric.Params{}) {
		c.Net = fabric.EthernetDefaults()
	}
	if c.MPICosts == (mpi.Costs{}) {
		c.MPICosts = mpi.DefaultCosts()
	}
	if c.QueueKind == "" {
		c.QueueKind = "heap"
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.ObserveInterval == 0 {
		c.ObserveInterval = 250 * sim.Microsecond
	}
}

// Validate checks the configuration. Call Defaults first.
func (c *Config) Validate() error {
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if c.Model == nil {
		return fmt.Errorf("conservative: Config.Model is required")
	}
	if c.EndTime <= 0 {
		return fmt.Errorf("conservative: EndTime must be positive, got %v", c.EndTime)
	}
	if c.Lookahead <= 0 {
		return fmt.Errorf("conservative: Lookahead must be strictly positive (got %v): both sync protocols advance by at least one lookahead per exchange, so a zero lookahead deadlocks the cluster", c.Lookahead)
	}
	if c.Sync != SyncNullMsg && c.Sync != SyncWindow {
		return fmt.Errorf("conservative: unknown sync protocol %v (want nullmsg | window)", c.Sync)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("conservative: BatchSize must be positive, got %d", c.BatchSize)
	}
	if c.QueueKind != "heap" && c.QueueKind != "calendar" {
		return fmt.Errorf("conservative: unknown queue kind %q (want heap | calendar)", c.QueueKind)
	}
	if c.ObserveInterval < 0 {
		return fmt.Errorf("conservative: ObserveInterval must be positive, got %v", c.ObserveInterval)
	}
	return nil
}

// Engine is one conservative simulation instance. Like core.Engine it is
// single-use: New, Run, then read the results.
type Engine struct {
	cfg   Config
	env   *sim.Env
	world *mpi.World
	nodes []*node

	la  vtime.Time
	end vtime.Time

	rounds     int64
	syncRounds int64
	finalGVT   vtime.Time
	disparity  stats.Disparity
	nullMsgs   int64
	exited     int // workers finished, cluster-wide

	lvtScratch []float64
}

// New builds an engine. It panics on an invalid configuration (mirroring
// core.New); validate separately to reject bad input gracefully.
func New(cfg Config) *Engine {
	cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	eng := &Engine{cfg: cfg, la: cfg.Lookahead, end: cfg.EndTime}
	eng.env = sim.NewEnv()
	eng.env.LivelockLimit = 500_000_000
	eng.world = mpi.NewWorld(eng.env, cfg.Topology.Nodes, cfg.Net, cfg.MPICosts)
	if rec := cfg.Metrics; rec != nil {
		rec.Init(cfg.Topology.TotalWorkers())
	}
	streams := rng.NewSequence(cfg.Seed)
	for id := 0; id < cfg.Topology.Nodes; id++ {
		eng.nodes = append(eng.nodes, newNode(eng, id, streams))
	}
	// Seed initial events exactly as the sequential oracle does: every
	// LP's Init runs at virtual time zero in global id order, and each
	// send lands directly in the destination LP's pending queue.
	for _, nd := range eng.nodes {
		for _, w := range nd.workers {
			for _, l := range w.lps {
				l.model.Init(&initCtx{eng: eng, lp: l})
			}
		}
	}
	return eng
}

// Run executes the simulation to completion and returns the aggregated
// statistics.
func (e *Engine) Run() (*stats.Run, error) {
	for _, nd := range e.nodes {
		nd.spawn()
	}
	if e.cfg.Sync == SyncNullMsg {
		e.spawnObserver()
	}
	if err := e.env.Run(); err != nil {
		return nil, err
	}
	return e.collect(), nil
}

// Cancel requests that a running simulation stop. Safe to call from any
// goroutine; Run unwinds at the next kernel dispatch boundary and
// returns sim.ErrCancelled.
func (e *Engine) Cancel() { e.env.Cancel() }

// workerOf returns the worker hosting lp.
func (e *Engine) workerOf(lp event.LPID) *worker {
	n, w := e.cfg.Topology.WorkerOf(lp)
	return e.nodes[n].workers[w]
}

// horizonFloor clamps a virtual-time floor against the end of the run:
// events beyond EndTime are never processed, so they can never generate
// sends and contribute an infinite bound.
func (e *Engine) horizonFloor(t vtime.Time) vtime.Time {
	if t > e.end {
		return vtime.Inf
	}
	return t
}

// spawnObserver starts the null-message utilization observer: a
// zero-interaction process that samples the cluster's virtual-time
// horizon at a fixed virtual cadence. It only reads worker state, so it
// cannot perturb the committed event stream.
func (e *Engine) spawnObserver() {
	e.env.Spawn("observer", func(p *sim.Proc) {
		for {
			p.Advance(e.cfg.ObserveInterval)
			if e.exited >= e.cfg.Topology.TotalWorkers() {
				return
			}
			gvt := vtime.Inf
			for _, nd := range e.nodes {
				for _, w := range nd.workers {
					if f := w.floorLive(); f < gvt {
						gvt = f
					}
				}
			}
			e.onRound(p.Now(), gvt, false)
		}
	})
}

// onRound records one synchronization (window) or observation (nullmsg)
// round: the horizon-roughness sample, the metrics round sample, the
// progress update and the trace record. It performs no simulated work
// (no Advance), so in the cooperative kernel it is atomic.
func (e *Engine) onRound(now sim.Time, gvt vtime.Time, sync bool) {
	e.rounds++
	if sync {
		e.syncRounds++
	}
	g := float64(gvt)
	if g > float64(e.end) {
		g = float64(e.end)
	}
	e.finalGVT = vtime.Time(g)
	if e.lvtScratch == nil {
		e.lvtScratch = make([]float64, 0, e.cfg.Topology.TotalWorkers())
	}
	lvts := e.lvtScratch[:0]
	rec := e.cfg.Metrics
	var scratch []metrics.WorkerSample
	if rec != nil {
		scratch = rec.Scratch()
	}
	var processed int64
	i := 0
	for _, nd := range e.nodes {
		for _, w := range nd.workers {
			lvt := float64(w.floorLive())
			lvts = append(lvts, lvt)
			processed += w.st.Processed
			if scratch != nil {
				scratch[i] = metrics.WorkerSample{
					LVT:           metrics.SafeLVT(lvt),
					Pending:       w.pending.Len(),
					Mailbox:       len(w.inbox),
					BarrierWaitNs: int64(w.st.BarrierWait),
				}
			}
			i++
		}
	}
	e.lvtScratch = lvts
	e.disparity.Observe(lvts)
	at := int64(now)
	if rec != nil {
		f := e.world.Fabric()
		im, ib := f.InFlight()
		rec.SampleRound(metrics.RoundSample{
			Round: e.rounds, GVT: g, AtNanos: at, Sync: sync, Efficiency: 1,
			MPIInFlightMsgs: im, MPIInFlightBytes: ib,
			MPISentMsgs: f.MessagesSent, MPISentBytes: f.BytesSent,
		}, scratch)
		if rec.WantProgress() {
			rec.Progress(metrics.ProgressUpdate{
				Round: e.rounds, GVT: g, AtNanos: at, Sync: sync, Efficiency: 1,
				Processed: processed, Committed: processed,
			})
		}
	}
	if tr := e.cfg.Trace; tr != nil {
		tr.Round(trace.Round{Round: e.rounds, GVT: g, AtNanos: at, Sync: sync, Efficiency: 1})
	}
}

// collect aggregates the final statistics.
func (e *Engine) collect() *stats.Run {
	r := &stats.Run{
		WallTime:     e.env.Now(),
		GVTRounds:    e.rounds,
		SyncRounds:   e.syncRounds,
		FinalGVT:     float64(e.end),
		Disparity:    e.disparity.Mean(),
		NullMessages: e.nullMsgs,
	}
	var sum uint64
	for _, nd := range e.nodes {
		for _, w := range nd.workers {
			r.Workers.Add(&w.st)
			for _, l := range w.lps {
				sum += uint64(l.checksum)
			}
		}
	}
	r.CommitChecksum = sum
	f := e.world.Fabric()
	r.MPIMessages = f.MessagesSent
	r.MPIBytes = f.BytesSent
	return r
}

// Report assembles the canonical run report for r, which must have come
// from this engine's Run.
func (e *Engine) Report(r *stats.Run) *metrics.Report {
	cfg := &e.cfg
	rc := metrics.RunConfig{
		Engine:         "conservative",
		Sync:           cfg.Sync.String(),
		Lookahead:      float64(cfg.Lookahead),
		Nodes:          cfg.Topology.Nodes,
		WorkersPerNode: cfg.Topology.WorkersPerNode,
		LPsPerWorker:   cfg.Topology.LPsPerWorker,
		Comm:           "dedicated",
		EndTime:        float64(cfg.EndTime),
		Seed:           cfg.Seed,
		QueueKind:      cfg.QueueKind,
		BatchSize:      cfg.BatchSize,
	}
	rs := metrics.RunStats{
		WallNanos:      int64(r.WallTime),
		Committed:      r.Workers.Committed,
		Processed:      r.Workers.Processed,
		Efficiency:     r.Efficiency(),
		EventRate:      r.EventRate(),
		GVTRounds:      r.GVTRounds,
		SyncRounds:     r.SyncRounds,
		FinalGVT:       r.FinalGVT,
		Disparity:      r.Disparity,
		SentLocal:      r.Workers.SentLocal,
		SentRegional:   r.Workers.SentRegion,
		SentRemote:     r.Workers.SentRemote,
		BarrierWaitNs:  int64(r.Workers.BarrierWait),
		IdleNs:         int64(r.Workers.IdleTime),
		MPIMessages:    r.MPIMessages,
		MPIBytes:       r.MPIBytes,
		NullMessages:   r.NullMessages,
		CommitChecksum: metrics.Checksum(r.CommitChecksum),
	}
	return metrics.BuildReport(rc, rs, e.cfg.Metrics, cfg.Topology.WorkersPerNode)
}
