package seq

import (
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/vtime"
)

// counter is a simple test model: each LP forwards a token to the next LP
// and counts what it has seen.
type counter struct {
	self event.LPID
	seen int
}

func (m *counter) Init(ctx core.Context) {
	if m.self == 0 {
		ctx.Send(0, 1.0, 0, nil)
	}
}

func (m *counter) OnEvent(ctx core.Context, ev *event.Event) {
	m.seen++
	next := event.LPID((int(m.self) + 1) % ctx.NumLPs())
	ctx.Send(next, 1.0, 0, nil)
}

func (m *counter) Snapshot() any { return m.seen }
func (m *counter) Restore(s any) { m.seen = s.(int) }

func factory() core.ModelFactory {
	return func(lp event.LPID, total int) core.Model { return &counter{self: lp} }
}

func TestRunProcessesInOrder(t *testing.T) {
	e := New(factory(), 4, 10.5, 1)
	r := e.Run()
	// Token starts at t=1 on LP0 and hops every 1.0: events at t=1..10.
	if r.Processed != 10 {
		t.Errorf("Processed = %d, want 10", r.Processed)
	}
	if r.FinalTime != 10 {
		t.Errorf("FinalTime = %v, want 10", r.FinalTime)
	}
	// LPs 0,1 saw 3 events; 2,3 saw 2 (10 hops over ring of 4).
	want := []int{3, 3, 2, 2}
	for i, w := range want {
		if got := e.Model(i).(*counter).seen; got != w {
			t.Errorf("LP %d saw %d, want %d", i, got, w)
		}
	}
	// The t=11 event remains pending.
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestChecksumDeterministic(t *testing.T) {
	a := New(factory(), 4, 10, 9).Run()
	b := New(factory(), 4, 10, 9).Run()
	if a.Checksum != b.Checksum || a.Processed != b.Processed {
		t.Error("sequential runs not deterministic")
	}
	c := New(factory(), 4, 20, 9).Run()
	if c.Checksum == a.Checksum {
		t.Error("longer run has identical checksum")
	}
}

func TestEndTimeBoundary(t *testing.T) {
	// Events exactly at the end time ARE processed (ts > end stops).
	r := New(factory(), 4, 3.0, 1).Run()
	if r.Processed != 3 {
		t.Errorf("Processed = %d, want 3 (t=1,2,3)", r.Processed)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { New(factory(), 0, 10, 1) },
		func() { New(factory(), 4, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad args did not panic")
				}
			}()
			fn()
		}()
	}
}

// badSender sends to a nonexistent LP.
type badSender struct{}

func (m *badSender) Init(ctx core.Context)                    { ctx.Send(0, 1, 0, nil) }
func (m *badSender) OnEvent(ctx core.Context, _ *event.Event) { ctx.Send(999, 1, 0, nil) }
func (m *badSender) Snapshot() any                            { return nil }
func (m *badSender) Restore(any)                              {}

func TestSendToUnknownLPPanics(t *testing.T) {
	e := New(func(event.LPID, int) core.Model { return &badSender{} }, 2, 10, 1)
	defer func() {
		if recover() == nil {
			t.Error("send to unknown LP did not panic")
		}
	}()
	e.Run()
}

// negDelay sends with a negative delay.
type negDelay struct{}

func (m *negDelay) Init(ctx core.Context)                    { ctx.Send(0, 1, 0, nil) }
func (m *negDelay) OnEvent(ctx core.Context, _ *event.Event) { ctx.Send(0, -0.5, 0, nil) }
func (m *negDelay) Snapshot() any                            { return nil }
func (m *negDelay) Restore(any)                              {}

func TestNegativeDelayPanics(t *testing.T) {
	e := New(func(event.LPID, int) core.Model { return &negDelay{} }, 1, 10, 1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.Run()
}

func TestStampTieBreakStability(t *testing.T) {
	// Two LPs sending events at identical timestamps: order must follow
	// (T, Src, Seq) — LP 0's event first.
	type burst struct {
		self event.LPID
		log  *[]vtime.Stamp
	}
	var log []vtime.Stamp
	factory := func(lp event.LPID, total int) core.Model {
		return &burstModel{self: lp, log: &log}
	}
	e := New(factory, 2, 5, 1)
	e.Run()
	_ = burst{}
	for i := 1; i < len(log); i++ {
		if log[i].Before(log[i-1]) {
			t.Fatalf("processing order violated stamp order: %v after %v", log[i], log[i-1])
		}
	}
	if len(log) < 4 {
		t.Fatalf("only %d events", len(log))
	}
}

type burstModel struct {
	self event.LPID
	log  *[]vtime.Stamp
}

func (m *burstModel) Init(ctx core.Context) {
	ctx.Send(m.self, 1.0, 0, nil) // identical T for both LPs
	ctx.Send(m.self, 2.0, 0, nil)
}

func (m *burstModel) OnEvent(ctx core.Context, ev *event.Event) {
	*m.log = append(*m.log, ev.Stamp)
}

func (m *burstModel) Snapshot() any { return nil }
func (m *burstModel) Restore(any)   {}
