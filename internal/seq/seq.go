// Package seq is a sequential discrete event simulator over the same
// Model interface as the Time Warp engine. It serves two purposes: it is
// the correctness oracle (optimistic execution must commit exactly the
// event stream a sequential execution produces) and the single-core
// baseline for the benchmarks.
package seq

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/eventq"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// Result summarizes a sequential run.
type Result struct {
	Processed int64
	FinalTime vtime.Time
	// Checksum is comparable with stats.Run.CommitChecksum from the
	// parallel engine: identical model + seed + end time must agree.
	Checksum uint64
}

// Engine is a sequential simulator instance.
type Engine struct {
	lps     []*seqLP
	pending *eventq.Heap
	endTime vtime.Time
}

type seqLP struct {
	id       event.LPID
	model    core.Model
	rng      *rng.Stream
	seq      uint64
	lvt      vtime.Time
	checksum stats.Checksum
}

// New builds a sequential engine with totalLPs processes.
func New(factory core.ModelFactory, totalLPs int, endTime vtime.Time, seed uint64) *Engine {
	if totalLPs <= 0 {
		panic("seq: totalLPs must be positive")
	}
	if endTime <= 0 {
		panic("seq: endTime must be positive")
	}
	e := &Engine{pending: eventq.NewHeap(), endTime: endTime}
	streams := rng.NewSequence(seed)
	for i := 0; i < totalLPs; i++ {
		l := &seqLP{
			id:       event.LPID(i),
			model:    factory(event.LPID(i), totalLPs),
			rng:      streams.Next(),
			checksum: stats.NewChecksum(),
		}
		e.lps = append(e.lps, l)
	}
	for _, l := range e.lps {
		l.model.Init(&seqCtx{e: e, lp: l})
	}
	return e
}

// Run executes events in timestamp order until the end time and returns
// the result.
func (e *Engine) Run() *Result {
	r := &Result{}
	for {
		ev := e.pending.Peek()
		if ev == nil || ev.Stamp.T > e.endTime {
			break
		}
		e.pending.Pop()
		l := e.lps[int(ev.Dst)]
		if ev.Stamp.T < l.lvt {
			panic(fmt.Sprintf("seq: causality violation: %v behind LVT %.6g", ev, l.lvt))
		}
		l.lvt = ev.Stamp.T
		l.model.OnEvent(&seqCtx{e: e, lp: l, now: ev.Stamp.T}, ev)
		l.checksum = l.checksum.Mix(uint32(l.id), ev.Stamp.T, ev.Stamp.Src, ev.Stamp.Seq)
		r.Processed++
		r.FinalTime = ev.Stamp.T
	}
	var sum uint64
	for _, l := range e.lps {
		sum += uint64(l.checksum)
	}
	r.Checksum = sum
	return r
}

// Pending returns the number of unprocessed events (events beyond the end
// time remain pending after Run).
func (e *Engine) Pending() int { return e.pending.Len() }

// Model returns LP i's model (for examples inspecting final state).
func (e *Engine) Model(i int) core.Model { return e.lps[i].model }

// seqCtx implements core.Context for the sequential engine.
type seqCtx struct {
	e   *Engine
	lp  *seqLP
	now vtime.Time
}

func (c *seqCtx) Self() event.LPID { return c.lp.id }
func (c *seqCtx) Now() vtime.Time  { return c.now }
func (c *seqCtx) RNG() *rng.Stream { return c.lp.rng }
func (c *seqCtx) NumLPs() int      { return len(c.e.lps) }
func (c *seqCtx) Spin(int)         {} // CPU time is irrelevant sequentially

func (c *seqCtx) Send(dst event.LPID, delay vtime.Time, kind uint16, data []byte) {
	if delay < 0 {
		panic(fmt.Sprintf("seq: negative delay %v from LP %d", delay, c.lp.id))
	}
	if int(dst) >= len(c.e.lps) {
		panic(fmt.Sprintf("seq: send to unknown LP %d", dst))
	}
	l := c.lp
	l.seq++
	c.e.pending.Push(&event.Event{
		Stamp:    vtime.Stamp{T: c.now + delay, Src: uint32(l.id), Seq: l.seq},
		SendTime: c.now,
		Src:      l.id,
		Dst:      dst,
		Kind:     kind,
		Data:     data,
	})
}
