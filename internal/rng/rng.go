// Package rng provides the deterministic pseudo-random number generation
// used by models and workload generators: xoshiro256** streams seeded via
// splitmix64, with long-jump support for carving independent per-LP
// streams from one master seed.
//
// Stream state is tiny (4 words) and exposed via Save/Restore so the Time
// Warp engine can checkpoint it with LP state: a rolled-back LP replays
// with exactly the random draws it used the first time.
package rng

import "math"

// Stream is a xoshiro256** generator. The zero value is invalid; use New
// or NewAt.
type Stream struct {
	s [4]uint64
}

// State is a snapshot of a Stream, suitable for rollback restore.
type State [4]uint64

// splitmix64 expands a seed into well-distributed state words.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from seed.
func New(seed uint64) *Stream {
	var st Stream
	x := seed
	for i := range st.s {
		st.s[i] = splitmix64(&x)
	}
	// xoshiro must not start at the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return &st
}

// NewAt returns the n-th independent substream of seed: a stream seeded
// from seed and long-jumped n times (each long jump skips 2^192 draws).
// For constructing many consecutive substreams, use Sequence — NewAt is
// O(n) per call.
func NewAt(seed uint64, n int) *Stream {
	s := New(seed)
	for i := 0; i < n; i++ {
		s.LongJump()
	}
	return s
}

// Sequence hands out the substreams of a seed in order: the i-th call to
// Next returns a stream identical to NewAt(seed, i), in O(1) jumps per
// stream instead of O(i).
type Sequence struct {
	cur *Stream
}

// NewSequence starts the substream sequence of seed.
func NewSequence(seed uint64) *Sequence {
	return &Sequence{cur: New(seed)}
}

// Next returns the next substream.
func (q *Sequence) Next() *Stream {
	out := &Stream{s: q.cur.s}
	q.cur.LongJump()
	return out
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (st *Stream) Uint64() uint64 {
	s := &st.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform draw in [0, 1).
func (st *Stream) Float64() float64 {
	return float64(st.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (st *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	// Lemire's nearly-divisionless bounded draw, with rejection to remove
	// modulo bias entirely.
	un := uint64(n)
	for {
		v := st.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Exp returns an exponential draw with the given mean.
func (st *Stream) Exp(mean float64) float64 {
	// 1 - Float64() is in (0, 1], so Log never sees zero.
	return -mean * math.Log(1.0-st.Float64())
}

// Save snapshots the stream state.
func (st *Stream) Save() State { return State(st.s) }

// Restore rewinds the stream to a saved state.
func (st *Stream) Restore(s State) { st.s = [4]uint64(s) }

// LongJump advances the stream by 2^192 draws; 2^64 non-overlapping
// substreams are available from one seed.
func (st *Stream) LongJump() {
	jump := [4]uint64{0x76e15d3efefdcbbf, 0xc5004e441c522fb3, 0x77710069854ee241, 0x39109bb02acbe635}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := uint(0); b < 64; b++ {
			if j&(1<<b) != 0 {
				s0 ^= st.s[0]
				s1 ^= st.s[1]
				s2 ^= st.s[2]
				s3 ^= st.s[3]
			}
			st.Uint64()
		}
	}
	st.s = [4]uint64{s0, s1, s2, s3}
}
