package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	v := s.Uint64()
	if v == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero seed produced a dead stream")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnRangeAndCoverage(t *testing.T) {
	s := New(11)
	seen := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v]++
	}
	for v, c := range seen {
		if c < 800 || c > 1200 {
			t.Errorf("Intn(10) hit %d only %d/10000 times", v, c)
		}
	}
}

func TestIntnOne(t *testing.T) {
	s := New(3)
	for i := 0; i < 100; i++ {
		if s.Intn(1) != 0 {
			t.Fatal("Intn(1) != 0")
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMeanAndPositivity(t *testing.T) {
	s := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		d := s.Exp(2.5)
		if d < 0 || math.IsInf(d, 0) || math.IsNaN(d) {
			t.Fatalf("Exp draw invalid: %v", d)
		}
		sum += d
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Errorf("Exp mean = %v, want ~2.5", mean)
	}
}

func TestSaveRestore(t *testing.T) {
	s := New(99)
	for i := 0; i < 17; i++ {
		s.Uint64()
	}
	snap := s.Save()
	var first [32]uint64
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Restore(snap)
	for i := range first {
		if s.Uint64() != first[i] {
			t.Fatal("Restore did not replay identical draws")
		}
	}
}

func TestLongJumpStreamsIndependent(t *testing.T) {
	a := NewAt(5, 0)
	b := NewAt(5, 1)
	c := NewAt(5, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		x, y, z := a.Uint64(), b.Uint64(), c.Uint64()
		if x == y || y == z || x == z {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("substreams collided %d/1000 draws", same)
	}
}

func TestNewAtDeterministic(t *testing.T) {
	a := NewAt(5, 3)
	b := NewAt(5, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("NewAt not deterministic")
		}
	}
}

// Property: Save/Restore round-trips from any reachable state.
func TestSaveRestoreProperty(t *testing.T) {
	prop := func(seed uint64, skip uint8) bool {
		s := New(seed)
		for i := 0; i < int(skip); i++ {
			s.Uint64()
		}
		snap := s.Save()
		a, b, c := s.Uint64(), s.Uint64(), s.Uint64()
		s.Restore(snap)
		return s.Uint64() == a && s.Uint64() == b && s.Uint64() == c
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Intn is always in range for arbitrary n and state.
func TestIntnRangeProperty(t *testing.T) {
	prop := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		s := New(seed)
		for i := 0; i < 20; i++ {
			v := s.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Exp(1.0)
	}
	_ = sink
}

func TestSequenceMatchesNewAt(t *testing.T) {
	q := NewSequence(77)
	for i := 0; i < 10; i++ {
		want := NewAt(77, i)
		got := q.Next()
		for j := 0; j < 50; j++ {
			if got.Uint64() != want.Uint64() {
				t.Fatalf("Sequence stream %d diverges from NewAt", i)
			}
		}
	}
}
