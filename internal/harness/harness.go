// Package harness defines and runs the paper's experiments: one
// experiment per figure of the evaluation (Figures 3–12), the efficiency
// and LVT-disparity numbers quoted in the text, and the repo's extra
// ablations. Each experiment produces a Table whose series correspond to
// the figure's curves (committed event rate vs node count, typically).
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/conservative"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/models/epidemic"
	"repro/internal/models/pcs"
	"repro/internal/models/tandem"
	"repro/internal/phold"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// Options scales the experiments. The defaults are sized so the full
// suite completes in minutes on a laptop; the paper-scale topology
// (60 workers x 128 LPs) is reachable by flag.
type Options struct {
	WorkersPerNode int
	LPsPerWorker   int
	EndTime        vtime.Time
	// GVTInterval overrides the per-experiment default. The defaults are 8
	// for figures 3-4 and 4 otherwise: the interval counts batches of 16
	// processed events here, and these runs are ~100x shorter than the
	// paper's, so the scaled values keep rounds-per-run comparable to the
	// paper's interval 50/25.
	GVTInterval int
	Seed        uint64
	NodeCounts  []int
	CAThreshold float64
	Verbose     bool // print each run's summary line as it finishes

	// FaultScenario, when non-empty, runs every cell under the named
	// built-in fault plan (see fabric.ScenarioNames) with the reliable
	// transport and GVT liveness watchdog active.
	FaultScenario string

	// BalancePolicy, when non-empty, runs every cell under the named LP
	// load-balancing policy (see balance.Names) unless the experiment
	// pins its own per-series policy.
	BalancePolicy string

	// Sync filters the cross-paradigm experiments (crossover, matrix) to
	// one synchronization flavor: "" runs everything, "timewarp" only the
	// optimistic series, "nullmsg" or "window" only that conservative
	// protocol. Experiments without conservative series ignore it.
	Sync string

	// Reports, when non-nil, collects one telemetry run report per engine
	// execution (with per-round time series sampled at SampleCap points).
	Reports *metrics.ReportSet
	// SampleCap bounds each run's sampled series length (0: recorder
	// default).
	SampleCap int

	// Jobs is the host-parallelism degree for Experiment.Execute: how
	// many experiment cells run concurrently on host cores. 0 defaults
	// to GOMAXPROCS, 1 forces the plain sequential path. Output is
	// byte-identical for every value (see Execute).
	Jobs int

	// exec carries the two-pass parallel executor's state; nil outside
	// Experiment.Execute.
	exec *executor
}

// DefaultOptions returns the standard scaled-down configuration.
func DefaultOptions() Options {
	return Options{
		WorkersPerNode: 8,
		LPsPerWorker:   32,
		EndTime:        40,
		Seed:           1,
		NodeCounts:     []int{1, 2, 4, 8},
		CAThreshold:    0.80,
	}
}

// Cell is one measured run. A Failed cell records why the run died
// (engine error or panic) instead of aborting the whole sweep.
type Cell struct {
	Rate        float64 `json:"rate"` // committed events per virtual second
	Efficiency  float64 `json:"efficiency"`
	Rollbacks   int64   `json:"rollbacks"`
	Committed   int64   `json:"committed"`
	WallTime    float64 `json:"wall_s"` // virtual seconds
	Disparity   float64 `json:"disparity"`
	SyncRounds  int64   `json:"sync_rounds"`
	GVTRounds   int64   `json:"gvt_rounds"`
	BarrierWait float64 `json:"barrier_wait_s"`       // virtual seconds summed over workers
	Migrations  int64   `json:"migrations,omitempty"` // LPs moved by the balancer
	NullMsgs    int64   `json:"null_msgs,omitempty"`  // conservative CMB null messages
	Failed      bool    `json:"failed,omitempty"`
	Error       string  `json:"error,omitempty"`
}

func cellOf(r *stats.Run) Cell {
	return Cell{
		Rate:        r.EventRate(),
		Efficiency:  r.Efficiency(),
		Rollbacks:   r.Workers.Rollbacks,
		Committed:   r.Workers.Committed,
		WallTime:    r.WallTime.Seconds(),
		Disparity:   r.Disparity,
		SyncRounds:  r.SyncRounds,
		GVTRounds:   r.GVTRounds,
		BarrierWait: r.Workers.BarrierWait.Seconds(),
		Migrations:  r.Migrations,
		NullMsgs:    r.NullMessages,
	}
}

// Series is one curve of a figure.
type Series struct {
	Label string `json:"label"`
	Cells []Cell `json:"cells"`
}

// Table is one reproduced figure or text statistic.
type Table struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	Paper  string   `json:"paper,omitempty"` // what the paper reports (the shape to compare against)
	XLabel string   `json:"x_label"`
	XVals  []string `json:"x_vals"`
	Series []Series `json:"series"`
}

// Experiment is a registered, runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options, io.Writer) Table
}

// Workload identifies the PHOLD parameterization of a run.
type Workload int

const (
	WorkloadComp  Workload = iota // computation-dominated (paper §4)
	WorkloadComm                  // communication-dominated (paper §4)
	WorkloadMixed                 // X-Y alternating model (paper §6)
)

// runSpec is one engine execution. It must stay comparable (the
// two-pass parallel executor keys on it), so every field is a scalar.
type runSpec struct {
	nodes       int
	gvt         core.GVTKind
	comm        core.CommMode
	workload    Workload
	compFrac    float64 // mixed model X
	commFrac    float64 // mixed model Y
	interval    int
	epgOverride int     // >0: override the phase EPG (EPG sweep)
	caThreshold float64 // >0: override CA threshold
	queueKind   string
	checkpoint  int    // >0: state-saving interval override
	balance     string // non-empty: LP load-balancing policy override

	modelName string // "" | "phold": PHOLD; "pcs" | "epidemic" | "tandem"
	engine    string // "" : optimistic Time Warp; "conservative"
	sync      string // conservative protocol: "nullmsg" | "window"
}

// model builds the PHOLD parameters for a spec.
func (s runSpec) model(opt Options, top cluster.Topology) core.ModelFactory {
	comp := phold.ComputationDominated()
	comm := phold.CommunicationDominated()
	if s.epgOverride > 0 {
		comp.EPG = s.epgOverride
		comm.EPG = s.epgOverride
	}
	if top.Nodes == 1 {
		// No remote destinations exist on a single node; the paper's
		// single-node points likewise have no MPI traffic.
		comp.RemotePct, comm.RemotePct = 0, 0
	}
	p := phold.Params{Topology: top}
	switch s.workload {
	case WorkloadComp:
		p.Base = comp
	case WorkloadComm:
		p.Base = comm
	default:
		p.Base = comp
		p.Mixed = &phold.MixedModel{
			Comm:     comm,
			CompFrac: s.compFrac,
			CommFrac: s.commFrac,
			EndTime:  opt.EndTime,
		}
	}
	return phold.New(p)
}

// workloadModel builds the spec's model factory and reports the model's
// declared lookahead (the conservative safety bound).
func (s runSpec) workloadModel(opt Options, top cluster.Topology) (core.ModelFactory, vtime.Time) {
	switch s.modelName {
	case "pcs":
		gw, gh := cluster.NearSquareGrid(top.TotalLPs())
		return pcs.New(pcs.Params{GridW: gw, GridH: gh}), pcs.Lookahead
	case "epidemic":
		gw, gh := cluster.NearSquareGrid(top.TotalLPs())
		return epidemic.New(epidemic.Params{GridW: gw, GridH: gh}), epidemic.Lookahead
	case "tandem":
		return tandem.New(tandem.Params{}), vtime.Time(tandem.Params{}.Lookahead())
	default: // "" | "phold"
		p := phold.Params{}
		p.Defaults()
		return s.model(opt, top), vtime.Time(p.Lookahead)
	}
}

// syncEnabled reports whether a series with the given engine and sync
// protocol passes the Options.Sync filter.
func (o Options) syncEnabled(engine, sync string) bool {
	switch o.Sync {
	case "":
		return true
	case "timewarp":
		return engine != "conservative"
	default:
		return engine == "conservative" && sync == o.Sync
	}
}

// execute runs one spec and returns its cell. A failed run (engine error,
// invariant panic, invalid fault scenario) yields a Failed cell instead of
// tearing down the sweep — the remaining cells still get measured.
func (s runSpec) execute(opt Options, w io.Writer) Cell {
	if opt.exec != nil {
		if cell, handled := opt.exec.intercept(s, opt, w); handled {
			return cell
		}
	}
	cell, err := s.run(opt, w)
	if err != nil {
		if w != nil {
			fmt.Fprintf(w, "  [%d nodes %v/%v wl=%d] FAILED: %v\n",
				s.nodes, s.gvt, s.comm, s.workload, err)
		}
		return Cell{Failed: true, Error: err.Error()}
	}
	return cell
}

func (s runSpec) run(opt Options, w io.Writer) (cell Cell, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("harness: run %+v panicked: %v", s, r)
		}
	}()
	top := cluster.Topology{
		Nodes:          s.nodes,
		WorkersPerNode: opt.WorkersPerNode,
		LPsPerWorker:   opt.LPsPerWorker,
	}
	if s.engine == "conservative" {
		return s.runConservative(opt, top, w)
	}
	interval := s.interval
	if opt.GVTInterval > 0 {
		interval = opt.GVTInterval
	}
	threshold := opt.CAThreshold
	if s.caThreshold > 0 {
		threshold = s.caThreshold
	}
	balance := opt.BalancePolicy
	if s.balance != "" {
		balance = s.balance
	}
	factory, _ := s.workloadModel(opt, top)
	cfg := core.Config{
		Topology:           top,
		GVT:                s.gvt,
		GVTInterval:        interval,
		CAThreshold:        threshold,
		Comm:               s.comm,
		EndTime:            opt.EndTime,
		Seed:               opt.Seed,
		QueueKind:          s.queueKind,
		CheckpointInterval: s.checkpoint,
		Balance:            balance,
		Model:              factory,
	}
	if opt.FaultScenario != "" {
		plan, ferr := fabric.Scenario(opt.FaultScenario, top.Nodes)
		if ferr != nil {
			return Cell{}, ferr
		}
		if plan != nil {
			cfg.Faults = plan
			cfg.FaultLabel = opt.FaultScenario
		}
	}
	if opt.Reports != nil {
		cfg.Metrics = &metrics.Recorder{MaxSamples: opt.SampleCap}
	}
	eng := core.New(cfg)
	r, err := eng.Run()
	if err != nil {
		return Cell{}, fmt.Errorf("harness: run %+v failed: %w", s, err)
	}
	if opt.Reports != nil {
		rep := eng.Report(r)
		rep.Config.Label = fmt.Sprintf("%dn/%v/%v/wl%d", s.nodes, s.gvt, s.comm, s.workload)
		opt.Reports.Add(rep)
	}
	if opt.Verbose && w != nil {
		fmt.Fprintf(w, "  [%d nodes %v/%v wl=%d] rate=%.4g eff=%.1f%% rb=%d\n",
			s.nodes, s.gvt, s.comm, s.workload, r.EventRate(), 100*r.Efficiency(), r.Workers.Rollbacks)
	}
	return cellOf(r), nil
}

// runConservative executes one conservative-engine cell. Faults and
// balancing are optimistic-only machinery; a global scenario turns the
// cell into a Failed one instead of silently running without it.
func (s runSpec) runConservative(opt Options, top cluster.Topology, w io.Writer) (Cell, error) {
	if opt.FaultScenario != "" && opt.FaultScenario != "none" {
		return Cell{}, fmt.Errorf("harness: the conservative engine does not support fault scenarios (got %q)", opt.FaultScenario)
	}
	if opt.BalancePolicy != "" || s.balance != "" {
		return Cell{}, fmt.Errorf("harness: the conservative engine does not support load balancing")
	}
	var sync conservative.SyncKind
	switch s.sync {
	case "", "nullmsg":
		sync = conservative.SyncNullMsg
	case "window":
		sync = conservative.SyncWindow
	default:
		return Cell{}, fmt.Errorf("harness: unknown conservative sync %q", s.sync)
	}
	factory, la := s.workloadModel(opt, top)
	cfg := conservative.Config{
		Topology:  top,
		Sync:      sync,
		Lookahead: la,
		EndTime:   opt.EndTime,
		Seed:      opt.Seed,
		QueueKind: s.queueKind,
		Model:     factory,
	}
	if opt.Reports != nil {
		cfg.Metrics = &metrics.Recorder{MaxSamples: opt.SampleCap}
	}
	eng := conservative.New(cfg)
	r, err := eng.Run()
	if err != nil {
		return Cell{}, fmt.Errorf("harness: run %+v failed: %w", s, err)
	}
	if opt.Reports != nil {
		rep := eng.Report(r)
		rep.Config.Label = fmt.Sprintf("%dn/conservative/%v/%s", s.nodes, sync, s.workloadLabel())
		opt.Reports.Add(rep)
	}
	if opt.Verbose && w != nil {
		fmt.Fprintf(w, "  [%d nodes conservative/%v %s] rate=%.4g nulls=%d\n",
			s.nodes, sync, s.workloadLabel(), r.EventRate(), r.NullMessages)
	}
	return cellOf(r), nil
}

// workloadLabel names the spec's model for labels and verbose lines.
func (s runSpec) workloadLabel() string {
	if s.modelName == "" {
		return "phold"
	}
	return s.modelName
}

// sweep runs one curve across the node counts.
func sweep(opt Options, w io.Writer, base runSpec) []Cell {
	cells := make([]Cell, 0, len(opt.NodeCounts))
	for _, n := range opt.NodeCounts {
		s := base
		s.nodes = n
		cells = append(cells, s.execute(opt, w))
	}
	return cells
}

func nodeLabels(opt Options) []string {
	xs := make([]string, len(opt.NodeCounts))
	for i, n := range opt.NodeCounts {
		xs[i] = fmt.Sprintf("%d", n)
	}
	return xs
}

// Registry returns all experiments, ordered as in the paper.
func Registry() []Experiment {
	return []Experiment{
		{ID: "fig3", Title: "Dedicated MPI thread, computation-dominated", Run: fig3},
		{ID: "fig4", Title: "Dedicated MPI thread, communication-dominated", Run: fig4},
		{ID: "fig5", Title: "Mattern vs Barrier, computation-dominated", Run: fig5},
		{ID: "fig6", Title: "Mattern vs Barrier, communication-dominated", Run: fig6},
		{ID: "fig8", Title: "Mattern vs Barrier vs CA-GVT, computation-dominated", Run: fig8},
		{ID: "fig9", Title: "Mattern vs Barrier vs CA-GVT, communication-dominated", Run: fig9},
		{ID: "fig10", Title: "Mixed 10-15 model", Run: fig10},
		{ID: "fig11", Title: "Mixed 15-10 model", Run: fig11},
		{ID: "fig12", Title: "Mixed 5-5 model", Run: fig12},
		{ID: "efficiency", Title: "Efficiency numbers quoted in the text", Run: efficiencyTable},
		{ID: "disparity", Title: "LVT disparity (avg per-round stddev)", Run: disparityTable},
		{ID: "interval", Title: "Ablation: GVT interval sensitivity", Run: ablInterval},
		{ID: "threshold", Title: "Ablation: CA-GVT efficiency threshold", Run: ablThreshold},
		{ID: "epg", Title: "Ablation: EPG sweep (Barrier/Mattern crossover)", Run: ablEPG},
		{ID: "shared", Title: "Ablation: every thread does MPI", Run: ablShared},
		{ID: "queue", Title: "Ablation: pending-set implementation", Run: ablQueue},
		{ID: "checkpoint", Title: "Ablation: state-saving interval", Run: ablCheckpoint},
		{ID: "samadi", Title: "Ablation: Samadi ack-based GVT vs the paper's algorithms", Run: ablSamadi},
		{ID: "rebalance", Title: "Dynamic load balancing under a straggler node", Run: ablRebalance},
		{ID: "crossover", Title: "Optimistic vs conservative engines, PHOLD", Run: crossover},
		{ID: "matrix", Title: "Cross-paradigm scenario matrix: 4 models x 6 engine configs", Run: matrix},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs.
func IDs() []string {
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// --- the figures ---

func commThreadFigure(id, title, paper string, wl Workload, opt Options, w io.Writer) Table {
	t := Table{
		ID: id, Title: title, Paper: paper,
		XLabel: "nodes", XVals: nodeLabels(opt),
	}
	for _, c := range []struct {
		label string
		gvt   core.GVTKind
		comm  core.CommMode
	}{
		{"Mattern dedicated", core.GVTMattern, core.CommDedicated},
		{"Mattern combined", core.GVTMattern, core.CommCombined},
		{"Barrier dedicated", core.GVTBarrier, core.CommDedicated},
		{"Barrier combined", core.GVTBarrier, core.CommCombined},
	} {
		t.Series = append(t.Series, Series{
			Label: c.label,
			Cells: sweep(opt, w, runSpec{gvt: c.gvt, comm: c.comm, workload: wl, interval: 8}),
		})
	}
	return t
}

func fig3(opt Options, w io.Writer) Table {
	return commThreadFigure("fig3",
		"Dedicated MPI thread, computation-dominated workload",
		"Dedicated beats combined for both algorithms at every node count; at 8 nodes Mattern +51%, Barrier +17%.",
		WorkloadComp, opt, w)
}

func fig4(opt Options, w io.Writer) Table {
	return commThreadFigure("fig4",
		"Dedicated MPI thread, communication-dominated workload",
		"Dedicated wins much bigger under communication load: Mattern 14.59x, Barrier 4.29x at 8 nodes.",
		WorkloadComm, opt, w)
}

func twoWayFigure(id, title, paper string, wl Workload, opt Options, w io.Writer) Table {
	t := Table{ID: id, Title: title, Paper: paper, XLabel: "nodes", XVals: nodeLabels(opt)}
	for _, c := range []struct {
		label string
		gvt   core.GVTKind
	}{
		{"Mattern", core.GVTMattern},
		{"Barrier", core.GVTBarrier},
	} {
		t.Series = append(t.Series, Series{
			Label: c.label,
			Cells: sweep(opt, w, runSpec{gvt: c.gvt, comm: core.CommDedicated, workload: wl, interval: 4}),
		})
	}
	return t
}

func fig5(opt Options, w io.Writer) Table {
	return twoWayFigure("fig5",
		"Mattern vs Barrier, computation-dominated workload",
		"Mattern wins when computation dominates: 27.9% faster than Barrier at 8 nodes.",
		WorkloadComp, opt, w)
}

func fig6(opt Options, w io.Writer) Table {
	return twoWayFigure("fig6",
		"Mattern vs Barrier, communication-dominated workload",
		"Barrier wins when communication dominates: 14.5% faster at 8 nodes; Mattern efficiency collapses (64.3% vs 94.2%).",
		WorkloadComm, opt, w)
}

func threeWayFigure(id, title, paper string, wl Workload, x, y float64, opt Options, w io.Writer) Table {
	t := Table{ID: id, Title: title, Paper: paper, XLabel: "nodes", XVals: nodeLabels(opt)}
	for _, c := range []struct {
		label string
		gvt   core.GVTKind
	}{
		{"Mattern", core.GVTMattern},
		{"Barrier", core.GVTBarrier},
		{"CA-GVT", core.GVTControlled},
	} {
		t.Series = append(t.Series, Series{
			Label: c.label,
			Cells: sweep(opt, w, runSpec{
				gvt: c.gvt, comm: core.CommDedicated, workload: wl,
				compFrac: x, commFrac: y, interval: 4,
			}),
		})
	}
	return t
}

func fig8(opt Options, w io.Writer) Table {
	return threeWayFigure("fig8",
		"Three-way comparison, computation-dominated workload",
		"CA-GVT 8% slower than Mattern, 19% faster than Barrier at 8 nodes (stays asynchronous; efficiency ~93%).",
		WorkloadComp, 0, 0, opt, w)
}

func fig9(opt Options, w io.Writer) Table {
	return threeWayFigure("fig9",
		"Three-way comparison, communication-dominated workload",
		"CA-GVT 2% slower than Barrier, 13% faster than Mattern at 8 nodes (switches to synchronous mode).",
		WorkloadComm, 0, 0, opt, w)
}

func fig10(opt Options, w io.Writer) Table {
	return threeWayFigure("fig10",
		"Mixed 10-15 model (10% comp, 15% comm, repeating)",
		"CA-GVT beats Mattern by 8.3% and Barrier by 6.4% at 8 nodes.",
		WorkloadMixed, 10, 15, opt, w)
}

func fig11(opt Options, w io.Writer) Table {
	return threeWayFigure("fig11",
		"Mixed 15-10 model (15% comp, 10% comm, repeating)",
		"CA-GVT beats Mattern by 6.9% and Barrier by 12.7% at 8 nodes.",
		WorkloadMixed, 15, 10, opt, w)
}

func fig12(opt Options, w io.Writer) Table {
	return threeWayFigure("fig12",
		"Mixed 5-5 model (5% comp, 5% comm, repeating)",
		"CA-GVT beats Mattern by 7.8% and Barrier by 8.3% at 8 nodes.",
		WorkloadMixed, 5, 5, opt, w)
}

// efficiencyTable reproduces the efficiency numbers quoted in §4 and §6.
func efficiencyTable(opt Options, w io.Writer) Table {
	t := Table{
		ID:     "efficiency",
		Title:  "Simulation efficiency at the largest node count",
		Paper:  "Paper (8 nodes): Mattern comp 92.1%, comm 64.2%; Barrier comp ~91.5%, comm 94.2%; CA comm ~80% (threshold-driven).",
		XLabel: "scenario", XVals: []string{"comp", "comm"},
	}
	n := opt.NodeCounts[len(opt.NodeCounts)-1]
	for _, c := range []struct {
		label string
		gvt   core.GVTKind
	}{
		{"Mattern", core.GVTMattern},
		{"Barrier", core.GVTBarrier},
		{"CA-GVT", core.GVTControlled},
	} {
		cells := []Cell{
			runSpec{nodes: n, gvt: c.gvt, comm: core.CommDedicated, workload: WorkloadComp, interval: 4}.execute(opt, w),
			runSpec{nodes: n, gvt: c.gvt, comm: core.CommDedicated, workload: WorkloadComm, interval: 4}.execute(opt, w),
		}
		t.Series = append(t.Series, Series{Label: c.label, Cells: cells})
	}
	return t
}

// disparityTable reproduces the §4 LVT disparity comparison.
func disparityTable(opt Options, w io.Writer) Table {
	t := Table{
		ID:     "disparity",
		Title:  "Average per-round stddev of worker LVTs, communication-dominated",
		Paper:  "Paper (8 nodes, comm-dominated): Barrier 0.31 vs Mattern 0.43 — synchronization narrows the spread.",
		XLabel: "algorithm", XVals: []string{"value"},
	}
	n := opt.NodeCounts[len(opt.NodeCounts)-1]
	for _, c := range []struct {
		label string
		gvt   core.GVTKind
	}{
		{"Mattern", core.GVTMattern},
		{"Barrier", core.GVTBarrier},
	} {
		cell := runSpec{nodes: n, gvt: c.gvt, comm: core.CommDedicated, workload: WorkloadComm, interval: 4}.execute(opt, w)
		t.Series = append(t.Series, Series{Label: c.label, Cells: []Cell{cell}})
	}
	return t
}

// --- ablations ---

func ablInterval(opt Options, w io.Writer) Table {
	intervals := []int{2, 4, 8, 16, 32}
	t := Table{
		ID:     "interval",
		Title:  "GVT interval sensitivity (8-node comm-dominated unless overridden)",
		Paper:  "Paper picks 25/50 as 'best overall performance'; too-small intervals pay protocol overhead, too-large ones delay fossil collection and grow rollback depth.",
		XLabel: "interval",
	}
	for _, iv := range intervals {
		t.XVals = append(t.XVals, fmt.Sprintf("%d", iv))
	}
	n := opt.NodeCounts[len(opt.NodeCounts)-1]
	for _, c := range []struct {
		label string
		gvt   core.GVTKind
	}{
		{"Mattern", core.GVTMattern},
		{"Barrier", core.GVTBarrier},
	} {
		var cells []Cell
		for _, iv := range intervals {
			o := opt
			o.GVTInterval = 0
			cells = append(cells, runSpec{
				nodes: n, gvt: c.gvt, comm: core.CommDedicated,
				workload: WorkloadComm, interval: iv,
			}.execute(o, w))
		}
		t.Series = append(t.Series, Series{Label: c.label, Cells: cells})
	}
	return t
}

func ablThreshold(opt Options, w io.Writer) Table {
	thresholds := []float64{0.5, 0.7, 0.8, 0.9, 0.99}
	t := Table{
		ID:     "threshold",
		Title:  "CA-GVT efficiency threshold sweep (mixed 10-15 model)",
		Paper:  "The paper fixes 80%; the sweep shows the async/sync trade the threshold controls.",
		XLabel: "threshold",
	}
	for _, th := range thresholds {
		t.XVals = append(t.XVals, fmt.Sprintf("%.2f", th))
	}
	n := opt.NodeCounts[len(opt.NodeCounts)-1]
	var cells []Cell
	for _, th := range thresholds {
		cells = append(cells, runSpec{
			nodes: n, gvt: core.GVTControlled, comm: core.CommDedicated,
			workload: WorkloadMixed, compFrac: 10, commFrac: 15,
			interval: 4, caThreshold: th,
		}.execute(opt, w))
	}
	t.Series = append(t.Series, Series{Label: "CA-GVT", Cells: cells})
	return t
}

func ablEPG(opt Options, w io.Writer) Table {
	epgs := []int{500, 1000, 2500, 5000, 10000, 20000}
	t := Table{
		ID:     "epg",
		Title:  "EPG sweep on the communication-heavy mix: Barrier/Mattern crossover",
		Paper:  "§4: higher EPG favors Mattern (asynchrony amortizes), lower EPG favors Barrier (rollback control); the crossover shifts with EPG.",
		XLabel: "EPG",
	}
	for _, e := range epgs {
		t.XVals = append(t.XVals, fmt.Sprintf("%d", e))
	}
	n := opt.NodeCounts[len(opt.NodeCounts)-1]
	for _, c := range []struct {
		label string
		gvt   core.GVTKind
	}{
		{"Mattern", core.GVTMattern},
		{"Barrier", core.GVTBarrier},
	} {
		var cells []Cell
		for _, e := range epgs {
			cells = append(cells, runSpec{
				nodes: n, gvt: c.gvt, comm: core.CommDedicated,
				workload: WorkloadComm, interval: 4, epgOverride: e,
			}.execute(opt, w))
		}
		t.Series = append(t.Series, Series{Label: c.label, Cells: cells})
	}
	return t
}

func ablShared(opt Options, w io.Writer) Table {
	t := Table{
		ID:     "shared",
		Title:  "Comm-thread modes: dedicated vs combined vs every-thread-does-MPI",
		Paper:  "§1 motivates the dedicated thread with the lock contention of fully threaded MPI; 'shared' is that worst case.",
		XLabel: "nodes", XVals: nodeLabels(opt),
	}
	for _, c := range []struct {
		label string
		comm  core.CommMode
	}{
		{"dedicated", core.CommDedicated},
		{"combined", core.CommCombined},
		{"shared", core.CommShared},
	} {
		t.Series = append(t.Series, Series{
			Label: c.label,
			Cells: sweep(opt, w, runSpec{gvt: core.GVTMattern, comm: c.comm, workload: WorkloadComm, interval: 8}),
		})
	}
	return t
}

func ablQueue(opt Options, w io.Writer) Table {
	t := Table{
		ID:     "queue",
		Title:  "Pending-set implementation: binary heap vs calendar queue",
		Paper:  "Engine ablation (not in the paper): the committed stream is identical; virtual rates differ only through CPU cost modelling, so this mainly validates interchangeability.",
		XLabel: "nodes", XVals: nodeLabels(opt),
	}
	for _, kind := range []string{"heap", "calendar"} {
		t.Series = append(t.Series, Series{
			Label: kind,
			Cells: sweep(opt, w, runSpec{gvt: core.GVTMattern, comm: core.CommDedicated, workload: WorkloadComp, interval: 4, queueKind: kind}),
		})
	}
	return t
}

func ablCheckpoint(opt Options, w io.Writer) Table {
	intervals := []int{1, 2, 4, 8, 16}
	t := Table{
		ID:     "checkpoint",
		Title:  "State-saving interval: snapshot every k-th event + coast-forward",
		Paper:  "Engine ablation (standard Time Warp trade-off, not a paper figure): sparse snapshots save copy cost but pay re-execution on rollback; the committed stream is identical either way.",
		XLabel: "interval",
	}
	for _, k := range intervals {
		t.XVals = append(t.XVals, fmt.Sprintf("%d", k))
	}
	n := opt.NodeCounts[len(opt.NodeCounts)-1]
	for _, c := range []struct {
		label string
		wl    Workload
	}{
		{"comp-dominated", WorkloadComp},
		{"comm-dominated", WorkloadComm},
	} {
		var cells []Cell
		for _, k := range intervals {
			cells = append(cells, runSpec{
				nodes: n, gvt: core.GVTMattern, comm: core.CommDedicated,
				workload: c.wl, interval: 4, checkpoint: k,
			}.execute(opt, w))
		}
		t.Series = append(t.Series, Series{Label: c.label, Cells: cells})
	}
	return t
}

func ablSamadi(opt Options, w io.Writer) Table {
	t := Table{
		ID:     "samadi",
		Title:  "Samadi's acknowledgement-based GVT against the paper's algorithms",
		Paper:  "Related work (§7): Samadi's algorithm 'requires that acknowledgement messages be sent, causing extra communication overhead' — here that overhead is measured on both scenarios.",
		XLabel: "scenario", XVals: []string{"comp", "comm"},
	}
	n := opt.NodeCounts[len(opt.NodeCounts)-1]
	for _, c := range []struct {
		label string
		gvt   core.GVTKind
	}{
		{"Mattern", core.GVTMattern},
		{"Barrier", core.GVTBarrier},
		{"CA-GVT", core.GVTControlled},
		{"Samadi", core.GVTSamadi},
	} {
		cells := []Cell{
			runSpec{nodes: n, gvt: c.gvt, comm: core.CommDedicated, workload: WorkloadComp, interval: 4}.execute(opt, w),
			runSpec{nodes: n, gvt: c.gvt, comm: core.CommDedicated, workload: WorkloadComm, interval: 4}.execute(opt, w),
		}
		t.Series = append(t.Series, Series{Label: c.label, Cells: cells})
	}
	return t
}

func ablRebalance(opt Options, w io.Writer) Table {
	t := Table{
		ID:     "rebalance",
		Title:  "LP migration policies under a 4x straggler node, computation-dominated",
		Paper:  "Engine extension (not in the paper): telemetry-driven LP migration at GVT commit points. With one node's cores 4x slower, migrating hot LPs off it shrinks virtual time-to-completion; the committed stream is oracle-identical under every policy.",
		XLabel: "nodes", XVals: nodeLabels(opt),
	}
	o := opt
	o.FaultScenario = "straggler"
	for _, pol := range []string{"static", "greedy", "straggler"} {
		t.Series = append(t.Series, Series{
			Label: pol,
			Cells: sweep(o, w, runSpec{
				gvt: core.GVTControlled, comm: core.CommDedicated,
				workload: WorkloadComp, interval: 4, balance: pol,
			}),
		})
	}
	return t
}

// crossover races the optimistic engine against both conservative
// protocols on the same PHOLD workload and committed event stream.
func crossover(opt Options, w io.Writer) Table {
	t := Table{
		ID:     "crossover",
		Title:  "Optimistic (Time Warp/Mattern) vs conservative (nullmsg, window), computation-dominated PHOLD",
		Paper:  "Engine extension (not in the paper): all three engines commit the identical oracle stream; the conservative engines trade rollback risk for blocking, so their relative rate tracks how much safe work the 0.1 lookahead exposes per round.",
		XLabel: "nodes", XVals: nodeLabels(opt),
	}
	for _, c := range []struct {
		label string
		spec  runSpec
	}{
		{"Time Warp/Mattern", runSpec{gvt: core.GVTMattern, comm: core.CommDedicated, workload: WorkloadComp, interval: 4}},
		{"Conservative/nullmsg", runSpec{engine: "conservative", sync: "nullmsg", workload: WorkloadComp}},
		{"Conservative/window", runSpec{engine: "conservative", sync: "window", workload: WorkloadComp}},
	} {
		if !opt.syncEnabled(c.spec.engine, c.spec.sync) {
			continue
		}
		t.Series = append(t.Series, Series{Label: c.label, Cells: sweep(opt, w, c.spec)})
	}
	return t
}

// matrix sweeps the full cross-paradigm grid: every model under every
// engine configuration, at the largest node count.
func matrix(opt Options, w io.Writer) Table {
	models := []string{"phold", "pcs", "epidemic", "tandem"}
	t := Table{
		ID:     "matrix",
		Title:  "Cross-paradigm scenario matrix: {phold, pcs, epidemic, tandem} x {Time Warp x 4 GVT algorithms, conservative x 2 protocols}",
		Paper:  "Engine extension (not in the paper): one deterministic grid over both paradigms. Every cell of a column commits the same oracle event stream, so the rate differences are pure synchronization cost.",
		XLabel: "model", XVals: models,
	}
	n := opt.NodeCounts[len(opt.NodeCounts)-1]
	for _, c := range []struct {
		label  string
		engine string
		sync   string
		gvt    core.GVTKind
	}{
		{"TW/Barrier", "", "", core.GVTBarrier},
		{"TW/Mattern", "", "", core.GVTMattern},
		{"TW/CA-GVT", "", "", core.GVTControlled},
		{"TW/Samadi", "", "", core.GVTSamadi},
		{"Cons/nullmsg", "conservative", "nullmsg", 0},
		{"Cons/window", "conservative", "window", 0},
	} {
		if !opt.syncEnabled(c.engine, c.sync) {
			continue
		}
		var cells []Cell
		for _, m := range models {
			cells = append(cells, runSpec{
				nodes: n, modelName: m, engine: c.engine, sync: c.sync,
				gvt: c.gvt, comm: core.CommDedicated, interval: 4,
			}.execute(opt, w))
		}
		t.Series = append(t.Series, Series{Label: c.label, Cells: cells})
	}
	return t
}

// --- rendering ---

// Render writes the table as aligned text with rate and efficiency.
func (t Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(w, "paper: %s\n", t.Paper)
	}
	width := 0
	for _, s := range t.Series {
		if len(s.Label) > width {
			width = len(s.Label)
		}
	}
	fmt.Fprintf(w, "%-*s", width+2, t.XLabel)
	for _, x := range t.XVals {
		fmt.Fprintf(w, "  %16s", x)
	}
	fmt.Fprintln(w)
	for _, s := range t.Series {
		fmt.Fprintf(w, "%-*s", width+2, s.Label)
		for _, c := range s.Cells {
			if c.Failed {
				fmt.Fprintf(w, "  %16s", "FAILED")
				continue
			}
			fmt.Fprintf(w, "  %9.4g/%5.1f%%", c.Rate, 100*c.Efficiency)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(cells: committed events per virtual second / efficiency)")
	fmt.Fprintln(w)
}

// CSV writes the table in machine-readable form.
func (t Table) CSV(w io.Writer) {
	fmt.Fprintf(w, "experiment,series,%s,rate,efficiency,rollbacks,committed,wall_s,disparity,sync_rounds,gvt_rounds,barrier_wait_s\n", t.XLabel)
	for _, s := range t.Series {
		for i, c := range s.Cells {
			fmt.Fprintf(w, "%s,%s,%s,%.6g,%.6g,%d,%d,%.6g,%.6g,%d,%d,%.6g\n",
				t.ID, s.Label, t.XVals[i], c.Rate, c.Efficiency, c.Rollbacks,
				c.Committed, c.WallTime, c.Disparity, c.SyncRounds, c.GVTRounds, c.BarrierWait)
		}
	}
}

// Speedup returns series a's rate over series b's at the last x value.
func (t Table) Speedup(a, b string) float64 {
	var ca, cb *Cell
	for i := range t.Series {
		s := &t.Series[i]
		last := &s.Cells[len(s.Cells)-1]
		switch s.Label {
		case a:
			ca = last
		case b:
			cb = last
		}
	}
	if ca == nil || cb == nil || cb.Rate == 0 {
		return 0
	}
	return ca.Rate / cb.Rate
}

// Summary returns a one-line comparison of all series at the last x.
func (t Table) Summary() string {
	type pair struct {
		label string
		rate  float64
	}
	var ps []pair
	for _, s := range t.Series {
		ps = append(ps, pair{s.Label, s.Cells[len(s.Cells)-1].Rate})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].rate > ps[j].rate })
	var parts []string
	for _, p := range ps {
		parts = append(parts, fmt.Sprintf("%s %.4g", p.label, p.rate))
	}
	return strings.Join(parts, " > ")
}
