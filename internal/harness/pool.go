package harness

import (
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size worker pool with a bounded submission queue. It
// is the execution substrate shared by the experiment executor (which
// fans a recorded cell list across host cores) and the simd job service
// (which needs admission control: TrySubmit refuses work instead of
// blocking when the queue is full, so an HTTP front-end can answer 429).
//
// Lifecycle: NewPool starts the workers immediately; Close stops
// admissions, lets the workers drain everything already queued, and
// waits for them to exit. Closing twice is safe.
type Pool struct {
	tasks   chan func()
	workers int
	busy    atomic.Int64 // workers currently inside a task

	mu        sync.Mutex
	closed    bool
	submitted int64
	rejected  int64

	wg sync.WaitGroup
}

// PoolStats is a point-in-time snapshot of pool accounting.
type PoolStats struct {
	Workers   int   // worker goroutines
	Busy      int   // workers currently executing a task
	QueueCap  int   // bounded queue capacity
	QueueLen  int   // tasks waiting (not yet picked up)
	Submitted int64 // accepted tasks since construction
	Rejected  int64 // TrySubmit refusals (queue full or closed)
}

// NewPool starts workers goroutines consuming from a queue of the given
// capacity. workers is clamped to at least 1; depth to at least 0 (a
// zero-depth queue accepts a task only when a worker is ready for it).
func NewPool(workers, depth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	p := &Pool{tasks: make(chan func(), depth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				p.busy.Add(1)
				fn()
				p.busy.Add(-1)
			}
		}()
	}
	return p
}

// TrySubmit offers fn to the pool without blocking. It reports false —
// and runs nothing — when the queue is full or the pool is closed.
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.rejected++
		return false
	}
	select {
	case p.tasks <- fn:
		p.submitted++
		return true
	default:
		p.rejected++
		return false
	}
}

// Close stops admissions, drains the queue (already-accepted tasks all
// run) and waits for the workers to exit.
func (p *Pool) Close() {
	p.mu.Lock()
	already := p.closed
	if !already {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Stats returns a snapshot of the pool's accounting.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Workers:   p.workers,
		Busy:      int(p.busy.Load()),
		QueueCap:  cap(p.tasks),
		QueueLen:  len(p.tasks),
		Submitted: p.submitted,
		Rejected:  p.rejected,
	}
}
