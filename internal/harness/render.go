package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/metrics"
)

// RenderAll runs and renders a set of experiments, returning the tables.
func RenderAll(exps []Experiment, opt Options, w io.Writer, csv io.Writer) []Table {
	var tables []Table
	for _, e := range exps {
		t := e.Run(opt, w)
		t.Render(w)
		if csv != nil {
			t.CSV(csv)
		}
		tables = append(tables, t)
	}
	return tables
}

// SuiteSchema identifies the experiment-suite JSON document layout.
const SuiteSchema = "cagvt.experiment-suite/1"

// suiteDoc is the JSON document WriteJSON emits: the rendered tables
// plus, when report collection was enabled, one telemetry run report per
// engine execution.
type suiteDoc struct {
	Schema  string            `json:"schema"`
	Tables  []Table           `json:"tables"`
	Reports []*metrics.Report `json:"reports"`
}

// WriteJSON writes the suite results as one indented JSON document.
// reports may be nil.
func WriteJSON(w io.Writer, tables []Table, reports *metrics.ReportSet) error {
	doc := suiteDoc{Schema: SuiteSchema, Tables: tables, Reports: []*metrics.Report{}}
	if tables == nil {
		doc.Tables = []Table{}
	}
	if reports != nil && reports.Reports != nil {
		doc.Reports = reports.Reports
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// Markdown renders the table as a GitHub-flavoured markdown table (used to
// assemble EXPERIMENTS.md).
func (t Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(w, "*Paper:* %s\n\n", t.Paper)
	}
	fmt.Fprintf(w, "| %s |", t.XLabel)
	for _, x := range t.XVals {
		fmt.Fprintf(w, " %s |", x)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|%s", strings.Repeat("---|", len(t.XVals)+1))
	fmt.Fprintln(w)
	for _, s := range t.Series {
		fmt.Fprintf(w, "| %s |", s.Label)
		for _, c := range s.Cells {
			fmt.Fprintf(w, " %.3g (%.0f%%) |", c.Rate, 100*c.Efficiency)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
