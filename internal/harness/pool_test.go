package harness

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4, 64)
	var n atomic.Int64
	for i := 0; i < 64; i++ {
		if !p.TrySubmit(func() { n.Add(1) }) {
			t.Fatalf("submit %d rejected with room in the queue", i)
		}
	}
	p.Close()
	if n.Load() != 64 {
		t.Fatalf("ran %d tasks, want 64", n.Load())
	}
	st := p.Stats()
	if st.Submitted != 64 || st.Rejected != 0 || st.QueueLen != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolAdmissionControl(t *testing.T) {
	// One worker parked on a gate; queue of 2. The 4th submission (1
	// running + 2 queued) must be rejected, not block.
	gate := make(chan struct{})
	p := NewPool(1, 2)
	p.TrySubmit(func() { <-gate })
	// Wait for the worker to pick up the gate task so queue slots free.
	for p.Stats().QueueLen != 0 {
	}
	ok1 := p.TrySubmit(func() {})
	ok2 := p.TrySubmit(func() {})
	full := p.TrySubmit(func() {})
	if !ok1 || !ok2 {
		t.Fatal("queue-capacity submissions rejected")
	}
	if full {
		t.Fatal("over-capacity submission accepted")
	}
	if got := p.Stats().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	close(gate)
	p.Close()
}

func TestPoolCloseDrainsQueueAndRefusesNewWork(t *testing.T) {
	p := NewPool(2, 16)
	var n atomic.Int64
	for i := 0; i < 16; i++ {
		p.TrySubmit(func() { n.Add(1) })
	}
	p.Close()
	if n.Load() != 16 {
		t.Fatalf("drain ran %d of 16 queued tasks", n.Load())
	}
	if p.TrySubmit(func() { n.Add(1) }) {
		t.Fatal("closed pool accepted work")
	}
	p.Close() // double close is safe
}

func TestPoolConcurrentSubmitAndClose(t *testing.T) {
	p := NewPool(4, 8)
	var wg sync.WaitGroup
	var ran atomic.Int64
	var accepted atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if p.TrySubmit(func() { ran.Add(1) }) {
					accepted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	p.Close()
	if ran.Load() != accepted.Load() {
		t.Fatalf("accepted %d but ran %d", accepted.Load(), ran.Load())
	}
}
