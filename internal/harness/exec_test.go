package harness

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/metrics"
)

// runBoth executes the experiment sequentially (Jobs=1) and in parallel
// (Jobs=4) with identical options and returns both (table, output) pairs.
func runBoth(t *testing.T, e Experiment, opt Options) (Table, Table, []byte, []byte) {
	t.Helper()
	seqOpt := opt
	seqOpt.Jobs = 1
	var seqBuf bytes.Buffer
	seqTable := e.Execute(seqOpt, &seqBuf)

	parOpt := opt
	parOpt.Jobs = 4
	var parBuf bytes.Buffer
	parTable := e.Execute(parOpt, &parBuf)
	return seqTable, parTable, seqBuf.Bytes(), parBuf.Bytes()
}

// TestExecuteByteIdentical is the tentpole guarantee: `-jobs N` output —
// verbose per-run lines, tables, CSV — is byte-identical to `-jobs 1`
// for experiments spanning sweeps, per-series policies and fault
// scenarios.
func TestExecuteByteIdentical(t *testing.T) {
	for _, id := range []string{"fig5", "efficiency", "interval", "rebalance"} {
		t.Run(id, func(t *testing.T) {
			e, ok := Find(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			opt := miniOptions()
			opt.Verbose = true
			seqTable, parTable, seqOut, parOut := runBoth(t, e, opt)
			if !bytes.Equal(seqOut, parOut) {
				t.Errorf("verbose output differs:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", seqOut, parOut)
			}
			if !reflect.DeepEqual(seqTable, parTable) {
				t.Errorf("tables differ:\njobs=1: %+v\njobs=4: %+v", seqTable, parTable)
			}
			var seqCSV, parCSV bytes.Buffer
			seqTable.CSV(&seqCSV)
			parTable.CSV(&parCSV)
			if !bytes.Equal(seqCSV.Bytes(), parCSV.Bytes()) {
				t.Errorf("CSV differs between jobs=1 and jobs=4")
			}
		})
	}
}

// TestExecuteReportOrder: telemetry reports collected by parallel cells
// must land in the report set in sequential execution order.
func TestExecuteReportOrder(t *testing.T) {
	e, _ := Find("fig5")
	opt := miniOptions()

	labels := func(jobs int) []string {
		o := opt
		o.Jobs = jobs
		o.Reports = metrics.NewReportSet()
		o.SampleCap = 4
		e.Execute(o, nil)
		var out []string
		for _, r := range o.Reports.Reports {
			out = append(out, r.Config.Label)
		}
		return out
	}
	seq, par := labels(1), labels(4)
	if len(seq) == 0 {
		t.Fatal("sequential run collected no reports")
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("report order differs:\njobs=1: %v\njobs=4: %v", seq, par)
	}
}

// TestExecuteFailedCells: failed runs (here: an unknown fault scenario
// rejected inside every cell) must produce identical FAILED lines and
// identical failed cells in both modes.
func TestExecuteFailedCells(t *testing.T) {
	e, _ := Find("fig5")
	opt := miniOptions()
	opt.Verbose = true
	opt.FaultScenario = "no-such-scenario"
	seqTable, parTable, seqOut, parOut := runBoth(t, e, opt)
	if !bytes.Equal(seqOut, parOut) {
		t.Errorf("FAILED output differs:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", seqOut, parOut)
	}
	if !reflect.DeepEqual(seqTable, parTable) {
		t.Errorf("failed tables differ")
	}
	found := false
	for _, s := range seqTable.Series {
		for _, c := range s.Cells {
			if c.Failed {
				found = true
			}
		}
	}
	if !found {
		t.Error("expected failed cells with a bogus fault scenario")
	}
}

// TestExecuteDefaultJobs: Jobs=0 resolves to GOMAXPROCS and still
// matches the sequential output (exercised with whatever parallelism the
// host has).
func TestExecuteDefaultJobs(t *testing.T) {
	e, _ := Find("disparity")
	opt := miniOptions()
	opt.Verbose = true

	run := func(jobs int) string {
		o := opt
		o.Jobs = jobs
		var buf bytes.Buffer
		tab := e.Execute(o, &buf)
		var csv bytes.Buffer
		tab.CSV(&csv)
		return buf.String() + "\n" + csv.String()
	}
	if got, want := run(0), run(1); got != want {
		t.Errorf("jobs=0 (GOMAXPROCS) output differs from jobs=1:\n%s\nvs\n%s", got, want)
	}
}

// TestExecuteManyJobsFewCells: more workers than cells must not
// deadlock or drop results.
func TestExecuteManyJobsFewCells(t *testing.T) {
	e, _ := Find("disparity") // 2 cells
	opt := miniOptions()
	opt.Jobs = 16
	tab := e.Execute(opt, nil)
	if len(tab.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(tab.Series))
	}
	for _, s := range tab.Series {
		for _, c := range s.Cells {
			if c.Failed || c.Committed == 0 {
				t.Errorf("series %s: bad cell %+v", s.Label, c)
			}
		}
	}
}

// TestExecuteVsRunParity: Execute with Jobs=1 must be the plain Run path
// (same table object semantics), and parallel Execute must match a
// direct Run call byte-for-byte.
func TestExecuteVsRunParity(t *testing.T) {
	e, _ := Find("queue")
	opt := miniOptions()
	opt.Verbose = true

	var runBuf bytes.Buffer
	runTable := e.Run(opt, &runBuf)

	par := opt
	par.Jobs = 3
	var parBuf bytes.Buffer
	parTable := e.Execute(par, &parBuf)

	if runBuf.String() != parBuf.String() {
		t.Errorf("Execute(jobs=3) output differs from Run:\n%s\nvs\n%s", parBuf.String(), runBuf.String())
	}
	if !reflect.DeepEqual(runTable, parTable) {
		t.Errorf("Execute(jobs=3) table differs from Run")
	}
	if fmt.Sprintf("%+v", runTable) != fmt.Sprintf("%+v", parTable) {
		t.Errorf("rendered tables differ")
	}
}
