package harness

import (
	"bytes"
	"fmt"
	"io"
	"runtime"

	"repro/internal/metrics"
)

// Host-parallel experiment execution.
//
// Every cell of every experiment is an independent deterministic
// simulation: separate engines share no mutable state, so cells can run
// on separate host cores. What must NOT change is the observable output
// — the verbose per-run lines, the tables, the CSV, and the order of
// collected telemetry reports are all defined by the sequential
// execution order. The executor therefore runs an experiment in two
// passes over the experiment's own code:
//
//  1. collect: the figure function runs with every runSpec.execute
//     intercepted — specs are recorded in call order, nothing executes.
//  2. The recorded specs run on a worker pool, each with a private
//     output buffer and a private report set.
//  3. fill: the figure function runs again; execute returns the finished
//     cell for each spec (verified against the recording — a figure
//     function whose spec sequence depends on cell values would be
//     nondeterministic under this scheme, and panics instead of
//     silently reordering), replays its buffered output and merges its
//     reports, all in the original sequential order.
//
// Figure functions are pure in their Options, so both passes record the
// same sequence and `-jobs N` output is byte-identical to `-jobs 1`.

// execPhase is the executor's state.
type execPhase int

const (
	execCollect execPhase = iota + 1
	execFill
)

// execJob is one recorded cell execution and its results.
type execJob struct {
	spec runSpec
	opt  Options // as passed to execute during collect (exec stripped to run)

	cell    Cell
	out     []byte            // buffered verbose/FAILED output
	reports []*metrics.Report // private report set, merged at fill
}

// executor carries the two-pass state through Options.
type executor struct {
	phase execPhase
	jobs  []execJob
	next  int // fill cursor
}

// intercept implements both passes of runSpec.execute. The boolean
// reports whether the executor handled the call (false: sequential
// path).
func (x *executor) intercept(s runSpec, opt Options, w io.Writer) (Cell, bool) {
	switch x.phase {
	case execCollect:
		x.jobs = append(x.jobs, execJob{spec: s, opt: opt})
		return Cell{}, true
	case execFill:
		if x.next >= len(x.jobs) || x.jobs[x.next].spec != s {
			panic(fmt.Sprintf("harness: fill pass diverged from collect pass at cell %d (%+v): experiment is not deterministic in its Options", x.next, s))
		}
		j := &x.jobs[x.next]
		x.next++
		if w != nil && len(j.out) > 0 {
			w.Write(j.out)
		}
		if opt.Reports != nil {
			opt.Reports.Reports = append(opt.Reports.Reports, j.reports...)
		}
		return j.cell, true
	}
	return Cell{}, false
}

// run executes one recorded job with isolated output and telemetry.
func (j *execJob) run() {
	opt := j.opt
	opt.exec = nil
	var private *metrics.ReportSet
	if opt.Reports != nil {
		private = metrics.NewReportSet()
		opt.Reports = private
	}
	var buf bytes.Buffer
	j.cell = j.spec.execute(opt, &buf)
	j.out = buf.Bytes()
	if private != nil {
		j.reports = private.Reports
	}
}

// Execute runs the experiment like Run, fanning the cells across
// opt.Jobs host cores (default GOMAXPROCS; 1 means the plain sequential
// path). Output is byte-identical to Run for every Jobs value: cells
// execute concurrently, but their verbose lines, table cells and
// telemetry reports are delivered in sequential order.
func (e Experiment) Execute(opt Options, w io.Writer) Table {
	jobs := opt.Jobs
	if jobs == 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs <= 1 {
		opt.exec = nil
		return e.Run(opt, w)
	}

	// Pass 1: record the spec sequence without executing anything.
	x := &executor{phase: execCollect}
	opt.exec = x
	e.Run(opt, nil)

	// Run the recorded cells on a worker pool sized to the job count; the
	// queue holds every cell, so submission never blocks or rejects.
	workers := jobs
	if workers > len(x.jobs) {
		workers = len(x.jobs)
	}
	pool := NewPool(workers, len(x.jobs))
	for i := range x.jobs {
		j := &x.jobs[i]
		if !pool.TrySubmit(j.run) {
			panic("harness: cell submission rejected by a full-capacity pool")
		}
	}
	pool.Close()

	// Pass 2: re-run the figure function, substituting recorded results.
	x.phase = execFill
	table := e.Run(opt, w)
	if x.next != len(x.jobs) {
		panic(fmt.Sprintf("harness: fill pass consumed %d of %d recorded cells: experiment is not deterministic in its Options", x.next, len(x.jobs)))
	}
	return table
}
