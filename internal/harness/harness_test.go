package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// miniOptions keeps harness tests fast: tiny cluster, short run.
func miniOptions() Options {
	return Options{
		WorkersPerNode: 2,
		LPsPerWorker:   4,
		EndTime:        10,
		Seed:           3,
		NodeCounts:     []int{1, 2},
		CAThreshold:    0.8,
	}
}

func TestRegistryCompleteAndUnique(t *testing.T) {
	reg := Registry()
	want := []string{
		"fig3", "fig4", "fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12",
		"efficiency", "disparity", "interval", "threshold", "epg", "shared", "queue",
		"checkpoint", "samadi", "rebalance", "crossover", "matrix",
	}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	seen := map[string]bool{}
	for i, e := range reg {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestFindAndIDs(t *testing.T) {
	if _, ok := Find("fig6"); !ok {
		t.Error("Find(fig6) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) succeeded")
	}
	ids := IDs()
	if len(ids) != len(Registry()) {
		t.Error("IDs length mismatch")
	}
}

func TestFig5Structure(t *testing.T) {
	tab := fig5(miniOptions(), nil)
	if tab.ID != "fig5" {
		t.Errorf("ID = %s", tab.ID)
	}
	if len(tab.Series) != 2 {
		t.Fatalf("fig5 has %d series, want 2", len(tab.Series))
	}
	for _, s := range tab.Series {
		if len(s.Cells) != 2 {
			t.Fatalf("series %s has %d cells, want 2", s.Label, len(s.Cells))
		}
		for _, c := range s.Cells {
			if c.Rate <= 0 || c.Committed <= 0 || c.Efficiency <= 0 || c.Efficiency > 1 {
				t.Errorf("series %s: implausible cell %+v", s.Label, c)
			}
		}
	}
}

func TestMixedFigureStructure(t *testing.T) {
	tab := fig10(miniOptions(), nil)
	if len(tab.Series) != 3 {
		t.Fatalf("fig10 has %d series, want 3", len(tab.Series))
	}
	labels := []string{"Mattern", "Barrier", "CA-GVT"}
	for i, s := range tab.Series {
		if s.Label != labels[i] {
			t.Errorf("series %d = %s, want %s", i, s.Label, labels[i])
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	tab := fig5(miniOptions(), nil)
	var text, csv bytes.Buffer
	tab.Render(&text)
	out := text.String()
	for _, want := range []string{"fig5", "Mattern", "Barrier", "nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	tab.CSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	// header + 2 series x 2 node counts
	if len(lines) != 5 {
		t.Errorf("CSV has %d lines, want 5:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "experiment,series,nodes,rate") {
		t.Errorf("CSV header = %s", lines[0])
	}
}

func TestSpeedupAndSummary(t *testing.T) {
	tab := Table{
		XVals: []string{"8"},
		Series: []Series{
			{Label: "A", Cells: []Cell{{Rate: 200}}},
			{Label: "B", Cells: []Cell{{Rate: 100}}},
		},
	}
	if s := tab.Speedup("A", "B"); s != 2 {
		t.Errorf("Speedup = %v, want 2", s)
	}
	if s := tab.Speedup("A", "missing"); s != 0 {
		t.Errorf("Speedup missing = %v, want 0", s)
	}
	sum := tab.Summary()
	if !strings.HasPrefix(sum, "A 200") {
		t.Errorf("Summary = %q", sum)
	}
}

func TestVerboseWritesRuns(t *testing.T) {
	opt := miniOptions()
	opt.Verbose = true
	var buf bytes.Buffer
	spec := runSpec{nodes: 1, gvt: 0, comm: 0, workload: WorkloadComp, interval: 10}
	spec.execute(opt, &buf)
	if !strings.Contains(buf.String(), "rate=") {
		t.Errorf("verbose output missing: %q", buf.String())
	}
}

func TestSingleNodeDropsRemoteTraffic(t *testing.T) {
	opt := miniOptions()
	spec := runSpec{nodes: 1, workload: WorkloadComm, interval: 10}
	// Must not panic (phold rejects remote percentages on one node).
	spec.execute(opt, nil)
}

func TestFailedRunRecordsCellAndContinues(t *testing.T) {
	// An unknown fault scenario makes every run fail; the sweep must not
	// panic, and each cell must carry the error instead of measurements.
	opt := miniOptions()
	opt.FaultScenario = "not-a-scenario"
	var buf bytes.Buffer
	cells := sweep(opt, &buf, runSpec{workload: WorkloadComp, interval: 10})
	if len(cells) != len(opt.NodeCounts) {
		t.Fatalf("sweep recorded %d cells, want %d", len(cells), len(opt.NodeCounts))
	}
	for i, c := range cells {
		if !c.Failed {
			t.Errorf("cell %d not marked failed: %+v", i, c)
		}
		if !strings.Contains(c.Error, "not-a-scenario") {
			t.Errorf("cell %d error %q does not name the scenario", i, c.Error)
		}
		if c.Rate != 0 || c.Committed != 0 {
			t.Errorf("failed cell %d carries measurements: %+v", i, c)
		}
	}
	if !strings.Contains(buf.String(), "FAILED") {
		t.Errorf("sweep output does not report the failure: %q", buf.String())
	}
	var text bytes.Buffer
	Table{XVals: []string{"1", "2"}, Series: []Series{{Label: "faulty", Cells: cells}}}.Render(&text)
	if !strings.Contains(text.String(), "FAILED") {
		t.Errorf("Render does not mark failed cells: %q", text.String())
	}
}

func TestPanickingRunRecordsCell(t *testing.T) {
	// A config the engine rejects at construction (zero workers) panics in
	// core.New; execute must convert that into a failed cell.
	opt := miniOptions()
	opt.WorkersPerNode = 0
	spec := runSpec{nodes: 1, workload: WorkloadComp, interval: 10}
	c := spec.execute(opt, nil)
	if !c.Failed || !strings.Contains(c.Error, "panicked") {
		t.Fatalf("cell = %+v, want a recovered panic", c)
	}
}

func TestFaultScenarioOption(t *testing.T) {
	// A real scenario must still produce a valid measured cell.
	opt := miniOptions()
	opt.FaultScenario = "drop"
	spec := runSpec{nodes: 2, gvt: core.GVTMattern, workload: WorkloadComp, interval: 10}
	c := spec.execute(opt, nil)
	if c.Failed {
		t.Fatalf("drop-scenario run failed: %s", c.Error)
	}
	if c.Rate <= 0 || c.Committed <= 0 {
		t.Errorf("implausible faulty cell %+v", c)
	}
}

func TestDefaultOptionsSane(t *testing.T) {
	opt := DefaultOptions()
	if opt.WorkersPerNode <= 0 || opt.LPsPerWorker <= 0 || opt.EndTime <= 0 ||
		len(opt.NodeCounts) == 0 || opt.CAThreshold <= 0 {
		t.Errorf("DefaultOptions insane: %+v", opt)
	}
}

func TestRebalanceExperiment(t *testing.T) {
	// The rebalance table runs every policy under the straggler scenario.
	// Structure: one series per policy, a cell per node count; on the
	// multi-node cells the migrating policies must actually move LPs and
	// the static series never does.
	opt := miniOptions()
	opt.NodeCounts = []int{2}
	opt.EndTime = 60
	tab := ablRebalance(opt, nil)
	if len(tab.Series) != 3 {
		t.Fatalf("rebalance has %d series, want 3", len(tab.Series))
	}
	labels := []string{"static", "greedy", "straggler"}
	for i, s := range tab.Series {
		if s.Label != labels[i] {
			t.Errorf("series %d = %s, want %s", i, s.Label, labels[i])
		}
		if len(s.Cells) != 1 || s.Cells[0].Failed {
			t.Fatalf("series %s cells: %+v", s.Label, s.Cells)
		}
		c := s.Cells[0]
		if s.Label == "static" && c.Migrations != 0 {
			t.Errorf("static series migrated %d LPs", c.Migrations)
		}
		if s.Label != "static" && c.Migrations == 0 {
			t.Errorf("%s series never migrated", s.Label)
		}
		if c.Committed != tab.Series[0].Cells[0].Committed {
			t.Errorf("%s committed %d events, static committed %d — stream diverged",
				s.Label, c.Committed, tab.Series[0].Cells[0].Committed)
		}
	}
}

func TestBalancePolicyOption(t *testing.T) {
	// Options.BalancePolicy applies to cells that do not pin their own
	// policy; an unknown name must fail the cell, not panic the sweep.
	opt := miniOptions()
	opt.BalancePolicy = "greedy"
	c := runSpec{nodes: 2, gvt: core.GVTControlled, workload: WorkloadComp, interval: 10}.execute(opt, nil)
	if c.Failed {
		t.Fatalf("greedy run failed: %s", c.Error)
	}
	opt.BalancePolicy = "bogus"
	c = runSpec{nodes: 2, gvt: core.GVTControlled, workload: WorkloadComp, interval: 10}.execute(opt, nil)
	if !c.Failed || !strings.Contains(c.Error, "bogus") {
		t.Fatalf("bogus policy cell = %+v, want failure naming the policy", c)
	}
}

func TestCrossoverExperiment(t *testing.T) {
	// All three engines must measure successfully and commit the identical
	// event stream — the cross-paradigm parity the engines are tested for.
	tab := crossover(miniOptions(), nil)
	if len(tab.Series) != 3 {
		t.Fatalf("crossover has %d series, want 3", len(tab.Series))
	}
	for _, s := range tab.Series {
		for i, c := range s.Cells {
			if c.Failed {
				t.Fatalf("series %s cell %d failed: %s", s.Label, i, c.Error)
			}
			if want := tab.Series[0].Cells[i].Committed; c.Committed != want {
				t.Errorf("series %s cell %d committed %d, Time Warp committed %d — stream diverged",
					s.Label, i, c.Committed, want)
			}
		}
	}
	// The 2-node null-message cell must have exchanged real null traffic.
	for _, s := range tab.Series {
		if s.Label == "Conservative/nullmsg" && s.Cells[1].NullMsgs == 0 {
			t.Error("2-node nullmsg cell exchanged no null messages")
		}
		if strings.HasPrefix(s.Label, "Conservative") {
			for i, c := range s.Cells {
				if c.Rollbacks != 0 || c.Efficiency != 1 {
					t.Errorf("series %s cell %d: rollbacks=%d eff=%v, conservative must never speculate",
						s.Label, i, c.Rollbacks, c.Efficiency)
				}
			}
		}
	}
}

func TestMatrixExperiment(t *testing.T) {
	// The full grid: every model column commits one stream across all six
	// engine configurations.
	opt := miniOptions()
	opt.NodeCounts = []int{2}
	tab := matrix(opt, nil)
	if len(tab.Series) != 6 {
		t.Fatalf("matrix has %d series, want 6", len(tab.Series))
	}
	if len(tab.XVals) != 4 {
		t.Fatalf("matrix has %d models, want 4", len(tab.XVals))
	}
	for _, s := range tab.Series {
		if len(s.Cells) != 4 {
			t.Fatalf("series %s has %d cells, want 4", s.Label, len(s.Cells))
		}
		for i, c := range s.Cells {
			if c.Failed {
				t.Fatalf("series %s model %s failed: %s", s.Label, tab.XVals[i], c.Error)
			}
			if want := tab.Series[0].Cells[i].Committed; c.Committed != want {
				t.Errorf("series %s model %s committed %d, want %d — stream diverged",
					s.Label, tab.XVals[i], c.Committed, want)
			}
		}
	}
}

func TestSyncFilter(t *testing.T) {
	opt := miniOptions()
	opt.Sync = "window"
	tab := crossover(opt, nil)
	if len(tab.Series) != 1 || tab.Series[0].Label != "Conservative/window" {
		t.Fatalf("window filter kept %+v", tab.Series)
	}
	opt.Sync = "timewarp"
	opt.NodeCounts = []int{1}
	if tab := matrix(opt, nil); len(tab.Series) != 4 {
		t.Fatalf("timewarp filter kept %d matrix series, want 4", len(tab.Series))
	}
}

func TestMatrixParallelDeterminism(t *testing.T) {
	// The cross-paradigm grid through the two-pass executor: -jobs N must
	// be byte-identical to the sequential path, conservative cells included.
	e, ok := Find("matrix")
	if !ok {
		t.Fatal("matrix not registered")
	}
	opt := miniOptions()
	opt.NodeCounts = []int{2}
	opt.Verbose = true
	var seqOut, parOut bytes.Buffer
	opt.Jobs = 1
	seq := e.Execute(opt, &seqOut)
	opt.Jobs = 4
	par := e.Execute(opt, &parOut)
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel matrix table differs from sequential")
	}
	if !bytes.Equal(seqOut.Bytes(), parOut.Bytes()) {
		t.Errorf("parallel output differs:\nseq: %q\npar: %q", seqOut.String(), parOut.String())
	}
}
