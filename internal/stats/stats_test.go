package stats

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestWorkerAdd(t *testing.T) {
	a := Worker{Processed: 10, Committed: 8, Rollbacks: 1, BarrierWait: 100}
	b := Worker{Processed: 5, Committed: 5, SentRemote: 3, BarrierWait: 50}
	a.Add(&b)
	if a.Processed != 15 || a.Committed != 13 || a.Rollbacks != 1 ||
		a.SentRemote != 3 || a.BarrierWait != 150 {
		t.Errorf("Add result: %+v", a)
	}
}

func TestEfficiencyAndRate(t *testing.T) {
	r := Run{
		Workers:  Worker{Processed: 1000, Committed: 900},
		WallTime: 2 * sim.Second,
	}
	if e := r.Efficiency(); e != 0.9 {
		t.Errorf("Efficiency = %v", e)
	}
	if rate := r.EventRate(); rate != 450 {
		t.Errorf("EventRate = %v", rate)
	}
	empty := Run{}
	if empty.Efficiency() != 1 {
		t.Error("empty run efficiency != 1")
	}
	if empty.EventRate() != 0 {
		t.Error("empty run rate != 0")
	}
}

func TestDisparity(t *testing.T) {
	var d Disparity
	d.Observe([]float64{1, 1, 1})
	if d.Mean() != 0 {
		t.Errorf("uniform sample disparity = %v", d.Mean())
	}
	d.Observe([]float64{0, 2}) // stddev = 1
	if got := d.Mean(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Mean = %v, want 0.5", got)
	}
	if d.Rounds() != 2 {
		t.Errorf("Rounds = %d", d.Rounds())
	}
}

func TestDisparityIgnoresInfAndEmpty(t *testing.T) {
	var d Disparity
	d.Observe(nil)
	d.Observe([]float64{math.MaxFloat64, math.Inf(1)})
	if d.Rounds() != 0 {
		t.Errorf("Rounds = %d, want 0", d.Rounds())
	}
	d.Observe([]float64{5, math.MaxFloat64, 5})
	if d.Mean() != 0 {
		t.Errorf("Mean = %v, want 0 (idle workers ignored)", d.Mean())
	}
}

func TestChecksumOrderSensitive(t *testing.T) {
	a := NewChecksum().Mix(1, 1.5, 0, 1).Mix(2, 2.5, 0, 2)
	b := NewChecksum().Mix(2, 2.5, 0, 2).Mix(1, 1.5, 0, 1)
	if a == b {
		t.Error("checksum is order-insensitive")
	}
	c := NewChecksum().Mix(1, 1.5, 0, 1).Mix(2, 2.5, 0, 2)
	if a != c {
		t.Error("checksum not deterministic")
	}
}

func TestChecksumSensitivity(t *testing.T) {
	base := NewChecksum().Mix(1, 1.5, 2, 3)
	variants := []Checksum{
		NewChecksum().Mix(2, 1.5, 2, 3),
		NewChecksum().Mix(1, 1.25, 2, 3),
		NewChecksum().Mix(1, 1.5, 3, 3),
		NewChecksum().Mix(1, 1.5, 2, 4),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collided with base", i)
		}
	}
}

func TestRunString(t *testing.T) {
	r := Run{Workers: Worker{Processed: 10, Committed: 9}, WallTime: sim.Second}
	s := r.String()
	for _, want := range []string{"committed=9", "efficiency=90.00%", "gvt-rounds=0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
