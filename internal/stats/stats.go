// Package stats defines the metrics the paper reports: committed event
// rate, simulation efficiency, rollback counts, GVT-round counts, barrier
// idle time, and the per-round LVT-disparity measure of §4 (average over
// rounds of the standard deviation of worker LVTs).
package stats

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
)

// Worker accumulates per-worker-thread counters during a run.
type Worker struct {
	Processed   int64 // events processed (including later rolled back)
	RolledBack  int64 // processed events undone by rollbacks
	Committed   int64 // events fossil-collected (never to be undone)
	Rollbacks   int64 // rollback episodes
	Stragglers  int64 // rollbacks caused by late positive messages
	AntiRollbck int64 // rollbacks caused by anti-messages
	SentLocal   int64
	SentRegion  int64
	SentRemote  int64
	AntiSent    int64
	Annihilated int64 // positive/anti pairs annihilated at this worker
	GVTRounds   int64
	SyncRounds  int64    // CA-GVT rounds executed with barriers
	BarrierWait sim.Time // virtual time parked at barriers
	IdleTime    sim.Time // virtual time in empty main-loop passes
	GVTTime     sim.Time // virtual time inside GVT protocol steps
}

// Add accumulates o into w.
func (w *Worker) Add(o *Worker) {
	w.Processed += o.Processed
	w.RolledBack += o.RolledBack
	w.Committed += o.Committed
	w.Rollbacks += o.Rollbacks
	w.Stragglers += o.Stragglers
	w.AntiRollbck += o.AntiRollbck
	w.SentLocal += o.SentLocal
	w.SentRegion += o.SentRegion
	w.SentRemote += o.SentRemote
	w.AntiSent += o.AntiSent
	w.Annihilated += o.Annihilated
	w.GVTRounds += o.GVTRounds
	w.SyncRounds += o.SyncRounds
	w.BarrierWait += o.BarrierWait
	w.IdleTime += o.IdleTime
	w.GVTTime += o.GVTTime
}

// Disparity accumulates the paper's LVT-disparity metric: at each GVT
// round, the standard deviation of worker LVTs is recorded; the reported
// number is the mean over rounds.
type Disparity struct {
	sum    float64
	rounds int64
}

// Observe records one GVT round's worker LVT sample.
func (d *Disparity) Observe(lvts []float64) {
	if len(lvts) == 0 {
		return
	}
	var mean float64
	n := 0
	for _, v := range lvts {
		if math.IsInf(v, 0) || v == math.MaxFloat64 {
			continue
		}
		mean += v
		n++
	}
	if n == 0 {
		return
	}
	mean /= float64(n)
	var ss float64
	for _, v := range lvts {
		if math.IsInf(v, 0) || v == math.MaxFloat64 {
			continue
		}
		ss += (v - mean) * (v - mean)
	}
	d.sum += math.Sqrt(ss / float64(n))
	d.rounds++
}

// Mean returns the average per-round standard deviation.
func (d *Disparity) Mean() float64 {
	if d.rounds == 0 {
		return 0
	}
	return d.sum / float64(d.rounds)
}

// Rounds returns the number of observed rounds.
func (d *Disparity) Rounds() int64 { return d.rounds }

// Run is the final result of one simulation run.
type Run struct {
	Workers     Worker   // sum over all worker threads
	WallTime    sim.Time // virtual wall-clock from start to GVT ≥ end time
	GVTRounds   int64    // completed GVT rounds (cluster-wide)
	SyncRounds  int64    // rounds CA-GVT ran synchronously (cluster-wide)
	FinalGVT    float64
	Disparity   float64 // mean per-round stddev of worker LVTs
	MPIMessages int64
	MPIBytes    int64
	// CommitChecksum is an order-sensitive FNV-1a digest of the committed
	// event stream, comparable against the sequential oracle.
	CommitChecksum uint64

	// NullMessages counts CMB null messages exchanged by the conservative
	// engine's null-message protocol (zero for Time Warp and window-sync
	// runs). Excluded from String() so optimistic summaries are unchanged.
	NullMessages int64

	// Robustness counters, all zero in fault-free runs: the reliable
	// transport's retransmission activity, the fabric's injected faults
	// by kind, and the GVT liveness watchdog's interventions. They are
	// deliberately excluded from String() so fault-free summaries are
	// unchanged.
	Retransmits        int64 // data frames re-sent after an RTO expiry
	TransportDups      int64 // received duplicate frames suppressed
	TransportExhausted int64 // frames abandoned after their retry budget
	FaultDrops         int64 // packets dropped by the fault plan
	FaultDups          int64 // packets duplicated by the fault plan
	FaultJitters       int64 // packets delayed by jitter
	FaultWindowDrops   int64 // packets lost in partition/degradation windows
	WatchdogRestarts   int64 // GVT tokens resent by the liveness watchdog
	WatchdogFallbacks  int64 // rounds forced synchronous by the watchdog

	// Load-balancer counters, zero unless a migrating balance policy is
	// active. Excluded from String() so static-policy summaries are
	// byte-identical to pre-balancer output.
	Migrations     int64 // LPs moved between nodes at GVT commit points
	MigratedEvents int64 // pending events shipped along with the moves

	// Event-pool counters (core.Config.Pool), zero with PoolOff. Both
	// are deterministic for a given configuration: PoolNews counts
	// events allocated fresh because a node's free list was empty,
	// PoolRecycled counts allocations served from a free list. Excluded
	// from String().
	PoolNews     int64
	PoolRecycled int64
}

// Efficiency returns committed / processed (the paper's committed over
// total generated; every processed event was generated).
func (r *Run) Efficiency() float64 {
	if r.Workers.Processed == 0 {
		return 1
	}
	return float64(r.Workers.Committed) / float64(r.Workers.Processed)
}

// EventRate returns committed events per virtual second.
func (r *Run) EventRate() float64 {
	secs := r.WallTime.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Workers.Committed) / secs
}

// String renders a compact human-readable summary.
func (r *Run) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "committed=%d processed=%d rolled-back=%d rollbacks=%d\n",
		r.Workers.Committed, r.Workers.Processed, r.Workers.RolledBack, r.Workers.Rollbacks)
	fmt.Fprintf(&b, "efficiency=%.2f%% rate=%.3g ev/s wall=%v gvt-rounds=%d sync-rounds=%d\n",
		100*r.Efficiency(), r.EventRate(), r.WallTime, r.GVTRounds, r.SyncRounds)
	fmt.Fprintf(&b, "sent: local=%d regional=%d remote=%d anti=%d annihilated=%d\n",
		r.Workers.SentLocal, r.Workers.SentRegion, r.Workers.SentRemote, r.Workers.AntiSent, r.Workers.Annihilated)
	fmt.Fprintf(&b, "barrier-wait=%v idle=%v disparity=%.4g mpi-msgs=%d final-gvt=%.6g",
		r.Workers.BarrierWait, r.Workers.IdleTime, r.Disparity, r.MPIMessages, r.FinalGVT)
	return b.String()
}

// Checksum is an order-sensitive FNV-1a accumulator over committed events,
// shared by the parallel engine and the sequential oracle.
type Checksum uint64

// NewChecksum returns the FNV-1a offset basis.
func NewChecksum() Checksum { return 0xcbf29ce484222325 }

const fnvPrime = 0x100000001b3

// Mix folds one committed event into the digest.
func (c Checksum) Mix(lp uint32, t float64, src uint32, seq uint64) Checksum {
	h := uint64(c)
	for _, v := range [4]uint64{uint64(lp), math.Float64bits(t), uint64(src), seq} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	return Checksum(h)
}
