// Package vtime defines the virtual-time stamps used by the Time Warp
// engine. A stamp is a model timestamp plus a deterministic tie-break
// (source LP, per-LP sequence number), giving a total order on events so
// that parallel execution commits events in exactly the order a sequential
// simulator would.
package vtime

import (
	"fmt"
	"math"
)

// Time is a model virtual time, as in ROSS (a double).
type Time = float64

// Inf is the virtual time "infinity" used for GVT reductions.
const Inf = math.MaxFloat64

// Stamp orders events totally: primary key is the receive time, then the
// sending LP, then the sender's per-LP sequence number. The tie-break
// fields are part of rolled-back LP state, so re-execution after a rollback
// regenerates identical stamps and the committed order is deterministic.
type Stamp struct {
	T   Time   // receive time
	Src uint32 // sending LP
	Seq uint64 // sender's per-LP event sequence number
}

// ZeroStamp is the minimal stamp.
var ZeroStamp = Stamp{}

// InfStamp is greater than every real stamp.
var InfStamp = Stamp{T: Inf, Src: math.MaxUint32, Seq: math.MaxUint64}

// Before reports whether s orders strictly before o.
func (s Stamp) Before(o Stamp) bool {
	if s.T != o.T {
		return s.T < o.T
	}
	if s.Src != o.Src {
		return s.Src < o.Src
	}
	return s.Seq < o.Seq
}

// After reports whether s orders strictly after o.
func (s Stamp) After(o Stamp) bool { return o.Before(s) }

// Equal reports whether the stamps are identical.
func (s Stamp) Equal(o Stamp) bool { return s == o }

// Compare returns -1, 0 or +1.
func (s Stamp) Compare(o Stamp) int {
	switch {
	case s.Before(o):
		return -1
	case o.Before(s):
		return 1
	default:
		return 0
	}
}

// MinStamp returns the smaller of a and b.
func MinStamp(a, b Stamp) Stamp {
	if b.Before(a) {
		return b
	}
	return a
}

func (s Stamp) String() string {
	if s == InfStamp {
		return "∞"
	}
	return fmt.Sprintf("%.6g[%d.%d]", s.T, s.Src, s.Seq)
}

// Min returns the smaller time.
func Min(a, b Time) Time {
	if b < a {
		return b
	}
	return a
}
