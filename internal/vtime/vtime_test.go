package vtime

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestStampOrdering(t *testing.T) {
	a := Stamp{T: 1.0, Src: 0, Seq: 0}
	b := Stamp{T: 2.0, Src: 0, Seq: 0}
	c := Stamp{T: 1.0, Src: 1, Seq: 0}
	d := Stamp{T: 1.0, Src: 0, Seq: 5}

	if !a.Before(b) || b.Before(a) {
		t.Error("time ordering broken")
	}
	if !a.Before(c) || c.Before(a) {
		t.Error("src tie-break broken")
	}
	if !a.Before(d) || d.Before(a) {
		t.Error("seq tie-break broken")
	}
	if a.Before(a) {
		t.Error("stamp before itself")
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Error("Equal broken")
	}
	if !b.After(a) {
		t.Error("After broken")
	}
}

func TestCompare(t *testing.T) {
	a := Stamp{T: 1}
	b := Stamp{T: 2}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("Compare broken")
	}
}

func TestInfStampIsMaximal(t *testing.T) {
	cases := []Stamp{
		{},
		{T: 1e300, Src: 4096, Seq: 1 << 60},
		{T: Inf, Src: 0, Seq: 0},
	}
	for _, s := range cases {
		if InfStamp.Before(s) {
			t.Errorf("InfStamp < %v", s)
		}
	}
	if InfStamp.Before(InfStamp) {
		t.Error("InfStamp < itself")
	}
}

func TestMinStamp(t *testing.T) {
	a := Stamp{T: 3}
	b := Stamp{T: 2}
	if MinStamp(a, b) != b || MinStamp(b, a) != b {
		t.Error("MinStamp broken")
	}
	if MinStamp(a, a) != a {
		t.Error("MinStamp not reflexive")
	}
}

func TestMin(t *testing.T) {
	if Min(1.5, 2.5) != 1.5 || Min(2.5, 1.5) != 1.5 {
		t.Error("Min broken")
	}
}

func TestStampString(t *testing.T) {
	if InfStamp.String() != "∞" {
		t.Errorf("InfStamp.String() = %q", InfStamp.String())
	}
	s := Stamp{T: 1.5, Src: 3, Seq: 7}
	if s.String() != "1.5[3.7]" {
		t.Errorf("String() = %q", s.String())
	}
}

// Property: Before is a strict total order (irreflexive, antisymmetric,
// transitive via sort consistency).
func TestStampTotalOrderProperty(t *testing.T) {
	prop := func(ts []float64, srcs []uint32, seqs []uint64) bool {
		n := len(ts)
		if len(srcs) < n {
			n = len(srcs)
		}
		if len(seqs) < n {
			n = len(seqs)
		}
		stamps := make([]Stamp, n)
		for i := 0; i < n; i++ {
			stamps[i] = Stamp{T: ts[i], Src: srcs[i], Seq: seqs[i]}
		}
		sort.Slice(stamps, func(i, j int) bool { return stamps[i].Before(stamps[j]) })
		for i := 1; i < n; i++ {
			if stamps[i].Before(stamps[i-1]) {
				return false
			}
		}
		// Trichotomy on pairs.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a, b := stamps[i], stamps[j]
				lt, gt, eq := a.Before(b), b.Before(a), a.Equal(b)
				count := 0
				if lt {
					count++
				}
				if gt {
					count++
				}
				if eq {
					count++
				}
				if count != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
