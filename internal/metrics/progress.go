package metrics

// ProgressUpdate is one per-GVT-round progress notification. Unlike the
// sampled RoundSample series (which decimates to a bounded buffer), a
// progress update is delivered for every completed round, so streaming
// consumers — the simd job service's NDJSON event feed — see the whole
// run live. All quantities are cumulative since run start and purely
// virtual-time, so the stream for a given configuration is
// deterministic.
type ProgressUpdate struct {
	Round      int64   `json:"round"`
	GVT        float64 `json:"gvt"`
	AtNanos    int64   `json:"at_ns"`
	Sync       bool    `json:"sync"`
	Efficiency float64 `json:"efficiency"`
	Processed  int64   `json:"processed"`
	Committed  int64   `json:"committed"` // committed-so-far: processed − rolled back
	Rollbacks  int64   `json:"rollbacks"`
	RolledBack int64   `json:"rolled_back"`
	Migrations int64   `json:"migrations"`
}

// Progress forwards one completed round to the OnProgress hook. The
// engine calls it from onRoundComplete; it is a no-op without a hook.
func (r *Recorder) Progress(u ProgressUpdate) {
	if r.OnProgress != nil {
		r.OnProgress(u)
	}
}

// WantProgress reports whether a progress hook is attached, so the
// engine can skip assembling updates nobody consumes.
func (r *Recorder) WantProgress() bool { return r.OnProgress != nil }
