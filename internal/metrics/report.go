package metrics

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReportSchema identifies the run-report JSON layout. Bump on breaking
// changes so downstream tooling can detect documents it cannot parse.
const ReportSchema = "cagvt.run-report/1"

// RunConfig is the configuration block of a run report.
type RunConfig struct {
	// Label is free-form caller context ("fig8/CA-GVT/8 nodes",
	// "phold/mixed"); the engine leaves it empty.
	Label string `json:"label,omitempty"`
	// Engine identifies the simulation paradigm: "" (Time Warp, the
	// original engine — omitted so optimistic reports keep their byte
	// layout) or "conservative". Sync is the conservative sync protocol
	// ("nullmsg" | "window") and Lookahead its safety bound; both are
	// empty/zero for Time Warp runs.
	Engine             string  `json:"engine,omitempty"`
	Sync               string  `json:"sync,omitempty"`
	Lookahead          float64 `json:"lookahead,omitempty"`
	Nodes              int     `json:"nodes"`
	WorkersPerNode     int     `json:"workers_per_node"`
	LPsPerWorker       int     `json:"lps_per_worker"`
	GVT                string  `json:"gvt,omitempty"`
	Comm               string  `json:"comm"`
	GVTInterval        int     `json:"gvt_interval,omitempty"`
	CAThreshold        float64 `json:"ca_threshold,omitempty"`
	EndTime            float64 `json:"end_time"`
	Seed               uint64  `json:"seed"`
	QueueKind          string  `json:"queue"`
	BatchSize          int     `json:"batch_size"`
	CheckpointInterval int     `json:"checkpoint_interval,omitempty"`
	MaxUncommitted     int     `json:"max_uncommitted,omitempty"`
	// Faults names the fault scenario the run executed under ("" for a
	// perfect fabric; omitted from the JSON so fault-free reports are
	// byte-identical to pre-fault-injection ones).
	Faults string `json:"faults,omitempty"`
	// Balance names the LP load-balancing policy ("" for the static
	// no-balancer path; omitted so static reports keep their byte layout).
	Balance string `json:"balance,omitempty"`
}

// RunStats is the final-aggregate block of a run report (the same
// numbers stats.Run carries, in JSON-stable form: virtual times as
// nanosecond integers, the checksum as a hex string).
type RunStats struct {
	WallNanos     int64   `json:"wall_ns"`
	Committed     int64   `json:"committed"`
	Processed     int64   `json:"processed"`
	RolledBack    int64   `json:"rolled_back"`
	Rollbacks     int64   `json:"rollbacks"`
	Stragglers    int64   `json:"stragglers"`
	AntiRollbacks int64   `json:"anti_rollbacks"`
	Efficiency    float64 `json:"efficiency"`
	EventRate     float64 `json:"event_rate"`
	GVTRounds     int64   `json:"gvt_rounds"`
	SyncRounds    int64   `json:"sync_rounds"`
	FinalGVT      float64 `json:"final_gvt"`
	Disparity     float64 `json:"disparity"`
	SentLocal     int64   `json:"sent_local"`
	SentRegional  int64   `json:"sent_regional"`
	SentRemote    int64   `json:"sent_remote"`
	AntiSent      int64   `json:"anti_sent"`
	Annihilated   int64   `json:"annihilated"`
	BarrierWaitNs int64   `json:"barrier_wait_ns"`
	IdleNs        int64   `json:"idle_ns"`
	GVTTimeNs     int64   `json:"gvt_time_ns"`
	MPIMessages   int64   `json:"mpi_messages"`
	MPIBytes      int64   `json:"mpi_bytes"`
	// NullMessages counts conservative null-message traffic; omitted when
	// zero so Time Warp reports keep their byte layout.
	NullMessages   int64  `json:"null_messages,omitempty"`
	CommitChecksum string `json:"commit_checksum"`

	// Robustness counters (see stats.Run); omitted when zero so
	// fault-free reports keep their pre-fault-injection byte layout.
	Retransmits        int64 `json:"retransmits,omitempty"`
	TransportDups      int64 `json:"transport_dups,omitempty"`
	TransportExhausted int64 `json:"transport_exhausted,omitempty"`
	FaultDrops         int64 `json:"fault_drops,omitempty"`
	FaultDups          int64 `json:"fault_dups,omitempty"`
	FaultJitters       int64 `json:"fault_jitters,omitempty"`
	FaultWindowDrops   int64 `json:"fault_window_drops,omitempty"`
	WatchdogRestarts   int64 `json:"watchdog_restarts,omitempty"`
	WatchdogFallbacks  int64 `json:"watchdog_fallbacks,omitempty"`

	// Load-balancer counters (see stats.Run); omitted when zero so
	// static-policy reports keep their pre-balancer byte layout.
	Migrations     int64 `json:"migrations,omitempty"`
	MigratedEvents int64 `json:"migrated_events,omitempty"`
}

// WorkerSeries is one worker's sampled time series. Samples are in
// lockstep with the report's Rounds series: Samples[i] was taken at
// Rounds[i].
type WorkerSeries struct {
	Worker  int            `json:"worker"`
	Node    int            `json:"node"`
	Samples []WorkerSample `json:"samples"`
}

// Report is the exported run document: configuration, final aggregates,
// the sampled time series, and registry contents.
type Report struct {
	Schema string    `json:"schema"`
	Config RunConfig `json:"config"`
	Stats  RunStats  `json:"stats"`
	// SampleStride is the final sampling stride in GVT rounds (1 unless
	// the buffers filled and the recorder decimated).
	SampleStride int                `json:"sample_stride"`
	Rounds       []RoundSample      `json:"rounds"`
	Workers      []WorkerSeries     `json:"workers"`
	Counters     []NamedValue       `json:"counters"`
	Gauges       []NamedValue       `json:"gauges"`
	Histograms   []HistogramSummary `json:"histograms"`
}

// Checksum formats a commit checksum for the report.
func Checksum(sum uint64) string { return fmt.Sprintf("%016x", sum) }

// BuildReport assembles a report from a recorder. rec may be nil (series
// and registry blocks come out empty). workersPerNode maps worker index
// to node for the per-worker series.
func BuildReport(cfg RunConfig, st RunStats, rec *Recorder, workersPerNode int) *Report {
	rep := &Report{
		Schema:       ReportSchema,
		Config:       cfg,
		Stats:        st,
		SampleStride: 1,
		Rounds:       []RoundSample{},
		Workers:      []WorkerSeries{},
		Counters:     []NamedValue{},
		Gauges:       []NamedValue{},
		Histograms:   []HistogramSummary{},
	}
	if rec == nil {
		return rep
	}
	rep.SampleStride = rec.Stride()
	if r := rec.Rounds(); r != nil {
		rep.Rounds = r
	}
	for w := 0; w < rec.NumWorkers(); w++ {
		node := 0
		if workersPerNode > 0 {
			node = w / workersPerNode
		}
		s := rec.WorkerSeries(w)
		if s == nil {
			s = []WorkerSample{}
		}
		rep.Workers = append(rep.Workers, WorkerSeries{Worker: w, Node: node, Samples: s})
	}
	reg := rec.Registry()
	rep.Counters = reg.CounterValues()
	rep.Gauges = reg.GaugeValues()
	rep.Histograms = reg.HistogramSummaries()
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// ReportSet accumulates the reports of a multi-run session (the
// experiment harness adds one per engine execution).
type ReportSet struct {
	Reports []*Report `json:"reports"`
}

// NewReportSet returns an empty set.
func NewReportSet() *ReportSet { return &ReportSet{} }

// Add appends one report.
func (s *ReportSet) Add(r *Report) { s.Reports = append(s.Reports, r) }

// Len returns the number of collected reports.
func (s *ReportSet) Len() int { return len(s.Reports) }
