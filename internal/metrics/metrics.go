// Package metrics is the engine's telemetry layer: a registry of named
// counters, gauges and log2-bucketed histograms, plus a per-GVT-round
// sampler (Recorder) that records virtual-time-keyed time series — worker
// LVTs, efficiency, rollback pressure, queue and mailbox depths, MPI
// in-flight traffic, barrier wait — into fixed-size buffers with zero
// allocation on the hot path. The collected data exports as a single
// machine-readable JSON run report (see report.go).
//
// Everything here runs inside the internal/sim hand-off scheduler, where
// exactly one simulated process executes at a time, so the types need no
// host-level locking; they are not safe for host-parallel use.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing named count.
type Counter struct {
	name string
	v    int64
}

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds d (d must be >= 0 to keep the counter monotone).
func (c *Counter) Add(d int64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a named value that can move in both directions.
type Gauge struct {
	name string
	v    float64
}

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// histBuckets is the number of log2 histogram buckets: bucket i counts
// values v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Bucket 0
// counts zeros; the last bucket absorbs everything larger.
const histBuckets = 32

// Histogram accumulates a distribution of non-negative integer values
// (rollback depths, queue lengths, message sizes) in log2 buckets.
// Observe is allocation-free.
type Histogram struct {
	name    string
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [histBuckets]int64
}

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) from
// the bucket boundaries: the smallest bucket upper edge below which at
// least q of the observations fall.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			if i == 0 {
				return 0
			}
			edge := int64(1) << i // exclusive upper edge 2^i
			if edge-1 > h.max {
				return h.max
			}
			return edge - 1
		}
	}
	return h.max
}

// HistogramBucket is one exported histogram bucket.
type HistogramBucket struct {
	// Le is the inclusive upper bound of the bucket (values <= Le).
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSummary is the exported shape of a histogram.
type HistogramSummary struct {
	Name    string            `json:"name"`
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	Mean    float64           `json:"mean"`
	P50     int64             `json:"p50"`
	P90     int64             `json:"p90"`
	P99     int64             `json:"p99"`
	Buckets []HistogramBucket `json:"buckets"`
}

// Summary exports the histogram, dropping empty trailing buckets.
func (h *Histogram) Summary() HistogramSummary {
	s := HistogramSummary{
		Name: h.name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		Mean: h.Mean(), P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		le := h.max
		if i > 0 && (int64(1)<<i)-1 < le {
			le = (int64(1) << i) - 1
		}
		if i == 0 {
			le = 0
		}
		s.Buckets = append(s.Buckets, HistogramBucket{Le: le, Count: c})
	}
	return s
}

// Registry holds named metrics. Lookups are get-or-create so
// instrumentation sites can resolve their instruments once at setup and
// hold the pointer (the allocation-free hot path).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram with the given name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	r.hists[name] = h
	return h
}

// CounterValues returns all counters as a sorted name->value list.
func (r *Registry) CounterValues() []NamedValue {
	out := make([]NamedValue, 0, len(r.counters))
	for name, c := range r.counters {
		out = append(out, NamedValue{Name: name, Value: float64(c.v)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GaugeValues returns all gauges as a sorted name->value list.
func (r *Registry) GaugeValues() []NamedValue {
	out := make([]NamedValue, 0, len(r.gauges))
	for name, g := range r.gauges {
		out = append(out, NamedValue{Name: name, Value: g.v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HistogramSummaries returns all histograms, sorted by name.
func (r *Registry) HistogramSummaries() []HistogramSummary {
	out := make([]HistogramSummary, 0, len(r.hists))
	for _, h := range r.hists {
		out = append(out, h.Summary())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NamedValue is one exported counter or gauge reading.
type NamedValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

func (v NamedValue) String() string { return fmt.Sprintf("%s=%g", v.Name, v.Value) }
