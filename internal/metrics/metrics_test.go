package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/sim"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("events") != c {
		t.Fatal("Counter lookup is not get-or-create")
	}
	g := r.Gauge("depth")
	g.Set(3)
	g.Add(-1.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", g.Value())
	}
	if r.Gauge("depth") != g {
		t.Fatal("Gauge lookup is not get-or-create")
	}
	cv := r.CounterValues()
	if len(cv) != 1 || cv[0].Name != "events" || cv[0].Value != 5 {
		t.Fatalf("CounterValues = %v", cv)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dist")
	if r.Histogram("dist") != h {
		t.Fatal("Histogram lookup is not get-or-create")
	}
	// 0, 1, 2, 3, 4..7, and one big outlier.
	for _, v := range []int64{0, 1, 2, 3, 5, 1000} {
		h.Observe(v)
	}
	h.Observe(-7) // clamps to 0
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d, want 1000", h.Max())
	}
	if h.Sum() != 0+1+2+3+5+1000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if q := h.Quantile(0.5); q != 3 {
		// 4 of 7 observations are <= 3 (bucket edge 2^2-1).
		t.Fatalf("p50 = %d, want 3", q)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 = %d, want 1000 (capped at max)", q)
	}
	s := h.Summary()
	var n int64
	for _, b := range s.Buckets {
		n += b.Count
	}
	if n != h.Count() {
		t.Fatalf("bucket counts sum to %d, want %d", n, h.Count())
	}
	if s.Buckets[0].Le != 0 || s.Buckets[0].Count != 2 {
		t.Fatalf("zero bucket = %+v", s.Buckets[0])
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.Le != 1000 {
		t.Fatalf("last bucket Le = %d, want capped at max 1000", last.Le)
	}
}

func TestSafeLVT(t *testing.T) {
	if SafeLVT(math.Inf(1)) != -1 || SafeLVT(math.MaxFloat64) != -1 {
		t.Fatal("infinite LVT must encode as -1")
	}
	if SafeLVT(42.5) != 42.5 {
		t.Fatal("finite LVT must pass through")
	}
}

func TestRecorderCompaction(t *testing.T) {
	r := NewRecorder()
	r.MaxSamples = 8
	r.Init(2)
	ws := r.Scratch()
	for round := int64(0); round < 100; round++ {
		ws[0].Pending = int(round)
		ws[1].Pending = int(round) * 2
		r.SampleRound(RoundSample{Round: round, GVT: float64(round)}, ws)
	}
	got := r.Rounds()
	if len(got) > 8 {
		t.Fatalf("rounds overflowed: %d > 8", len(got))
	}
	if got[0].Round != 0 {
		t.Fatalf("first sample = round %d, want 0", got[0].Round)
	}
	stride := int64(r.Stride())
	if stride < 2 {
		t.Fatalf("stride = %d, want doubled at least once", stride)
	}
	// Samples must be uniformly spaced at the final stride, and the
	// per-worker series must stay in lockstep.
	for i, rs := range got {
		if rs.Round != int64(i)*stride {
			t.Fatalf("sample %d is round %d, want %d (stride %d)", i, rs.Round, int64(i)*stride, stride)
		}
		if w := r.WorkerSeries(0)[i]; int64(w.Pending) != rs.Round {
			t.Fatalf("worker 0 sample %d = %d, want %d", i, w.Pending, rs.Round)
		}
		if w := r.WorkerSeries(1)[i]; int64(w.Pending) != 2*rs.Round {
			t.Fatalf("worker 1 sample %d out of lockstep", i)
		}
	}
	// The whole run must stay covered: last sample within one stride of
	// the last offered round.
	if last := got[len(got)-1].Round; 99-last >= 2*stride {
		t.Fatalf("tail gap: last sample round %d, run ended at 99, stride %d", last, stride)
	}
}

func TestRecorderSamplingAllocates(t *testing.T) {
	r := NewRecorder()
	r.MaxSamples = 64
	r.Init(4)
	ws := r.Scratch()
	allocs := testing.AllocsPerRun(1000, func() {
		r.SampleRound(RoundSample{}, ws)
	})
	if allocs > 0 {
		t.Fatalf("SampleRound allocates %.1f per call, want 0", allocs)
	}
}

func TestRecorderWithoutInit(t *testing.T) {
	r := NewRecorder()
	r.SampleRound(RoundSample{}, nil) // must not panic
	if r.Stride() != 1 {
		t.Fatalf("stride = %d", r.Stride())
	}
}

// TestRegistryUnderSimScheduler exercises the registry from many
// simulated processes. The hand-off scheduler interleaves them at
// Advance points; totals must come out exact without any host locking.
func TestRegistryUnderSimScheduler(t *testing.T) {
	env := sim.NewEnv()
	reg := NewRegistry()
	const procs, iters = 8, 100
	for i := 0; i < procs; i++ {
		i := i
		env.Spawn("inc", func(p *sim.Proc) {
			c := reg.Counter("shared")
			h := reg.Histogram("depths")
			for k := 0; k < iters; k++ {
				c.Inc()
				h.Observe(int64(i*iters + k))
				reg.Gauge("last").Set(float64(i))
				p.Advance(sim.Microsecond)
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("shared").Value(); got != procs*iters {
		t.Fatalf("counter = %d, want %d", got, procs*iters)
	}
	if got := reg.Histogram("depths").Count(); got != procs*iters {
		t.Fatalf("histogram count = %d, want %d", got, procs*iters)
	}
}

func TestBuildReportShape(t *testing.T) {
	rec := NewRecorder()
	rec.Init(2)
	ws := rec.Scratch()
	ws[0] = WorkerSample{LVT: 5, Pending: 3}
	ws[1] = WorkerSample{LVT: -1, Pending: 0}
	rec.SampleRound(RoundSample{Round: 0, GVT: 1, Sync: true}, ws)
	rec.Registry().Counter("x").Add(7)
	rep := BuildReport(RunConfig{Nodes: 2, WorkersPerNode: 1}, RunStats{Committed: 10, CommitChecksum: Checksum(0xdeadbeef)}, rec, 1)
	if rep.Schema != ReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Rounds) != 1 || len(rep.Workers) != 2 {
		t.Fatalf("series shape: %d rounds, %d workers", len(rep.Rounds), len(rep.Workers))
	}
	if rep.Workers[1].Node != 1 {
		t.Fatalf("worker 1 node = %d, want 1", rep.Workers[1].Node)
	}
	if rep.Stats.CommitChecksum != "00000000deadbeef" {
		t.Fatalf("checksum = %q", rep.Stats.CommitChecksum)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"schema", "config", "stats", "rounds", "workers", "counters", "gauges", "histograms", "sample_stride"} {
		if _, ok := back[key]; !ok {
			t.Fatalf("report JSON missing key %q", key)
		}
	}
	// Nil recorder: empty but present blocks, never null.
	empty := BuildReport(RunConfig{}, RunStats{}, nil, 0)
	buf.Reset()
	if err := empty.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("null")) {
		t.Fatalf("nil-recorder report contains null blocks:\n%s", buf.String())
	}
}
