package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Canonical JSON. The simd result cache and JobSpec content addressing
// both treat a JSON document's bytes as identity, so the encoding must
// be a pure function of the document's *value*: object keys sorted, no
// insignificant whitespace, and numbers re-emitted verbatim from their
// source literals (round-tripping int64/uint64 through float64 would
// corrupt values above 2^53 — seeds and nanosecond counters live there).

// CanonicalJSON re-encodes one JSON document in canonical form. The
// input must be a single well-formed document; trailing data is an
// error.
func CanonicalJSON(in []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(in))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("metrics: canonicalize: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("metrics: canonicalize: trailing data after JSON document")
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeCanonical emits v (a json.Decoder value tree) canonically.
func writeCanonical(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case nil:
		buf.WriteString("null")
	case bool:
		if x {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case json.Number:
		buf.WriteString(x.String())
	case string:
		b, err := json.Marshal(x)
		if err != nil {
			return err
		}
		buf.Write(b)
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := writeCanonical(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	default:
		return fmt.Errorf("metrics: canonicalize: unexpected value type %T", v)
	}
	return nil
}

// MarshalStable encodes the report in canonical JSON: sorted keys,
// compact, numbers preserved exactly. Two reports with equal values
// marshal to identical bytes on every Go version, which is what lets
// the simd cache serve stored bytes as the authoritative result.
func (r *Report) MarshalStable() ([]byte, error) {
	raw, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return CanonicalJSON(raw)
}
