package metrics

import "math"

// RoundSample is one cluster-level time-series point, taken when a GVT
// round completes. Virtual time is the series key: GVT for the simulated
// model's clock, AtNanos for the simulated wall clock.
type RoundSample struct {
	Round      int64   `json:"round"`
	GVT        float64 `json:"gvt"`
	AtNanos    int64   `json:"at_ns"`
	Sync       bool    `json:"sync"`
	Efficiency float64 `json:"efficiency"`
	// MPI traffic at sample time: in-flight = put on the wire but not yet
	// delivered; sent = cumulative since run start.
	MPIInFlightMsgs  int64 `json:"mpi_inflight_msgs"`
	MPIInFlightBytes int64 `json:"mpi_inflight_bytes"`
	MPISentMsgs      int64 `json:"mpi_sent_msgs"`
	MPISentBytes     int64 `json:"mpi_sent_bytes"`
}

// WorkerSample is one worker's time-series point, taken in lockstep with
// the round sample at the same index.
type WorkerSample struct {
	// LVT is the worker's minimum unprocessed timestamp; -1 encodes
	// "drained" (no pending event; +Inf is not representable in JSON).
	LVT float64 `json:"lvt"`
	// Pending is the pending event set length.
	Pending int `json:"pending"`
	// Mailbox is the incoming mailbox depth.
	Mailbox int `json:"mailbox"`
	// Uncommitted is the processed-but-not-fossil-collected event count.
	Uncommitted int `json:"uncommitted"`
	// Rollbacks and RolledBack are cumulative since run start; a timeline
	// of deltas between consecutive samples localizes rollback cascades.
	Rollbacks  int64 `json:"rollbacks"`
	RolledBack int64 `json:"rolled_back"`
	// BarrierWaitNs is cumulative virtual time parked at barriers.
	BarrierWaitNs int64 `json:"barrier_wait_ns"`
}

// SafeLVT converts a possibly-infinite LVT into its JSON encoding.
func SafeLVT(v float64) float64 {
	if math.IsInf(v, 0) || v == math.MaxFloat64 {
		return -1
	}
	return v
}

// Recorder samples per-round telemetry into fixed-size buffers. Attach
// one to core.Config.Metrics; the engine drives it. Sampling allocates
// nothing: buffers are sized at Init, and when they fill, the recorder
// compacts in place (keeps every other sample) and doubles its sampling
// stride, so a bounded buffer always covers the whole run at adaptive
// resolution.
type Recorder struct {
	// MaxSamples caps each series' length (default 512). When reached,
	// samples are halved and the round stride doubles.
	MaxSamples int
	// Every is the base sampling stride in GVT rounds (default 1).
	Every int

	// OnProgress, when non-nil, receives one ProgressUpdate per completed
	// GVT round, independent of the sampling stride (the sampled series
	// decimates; the progress stream does not). The engine invokes it
	// synchronously from the run's goroutine: implementations must be
	// fast and must do their own locking if they fan out.
	OnProgress func(ProgressUpdate)

	reg     *Registry
	stride  int
	seen    int64 // rounds offered since the stride last changed
	rounds  []RoundSample
	workers [][]WorkerSample // [worker][sample index], lockstep with rounds
	scratch []WorkerSample   // engine-side staging row, one per worker
}

// NewRecorder returns a recorder with default knobs.
func NewRecorder() *Recorder { return &Recorder{} }

// Registry returns the recorder's metric registry, creating it if
// needed. Usable before Init, so callers can pre-register instruments.
func (r *Recorder) Registry() *Registry {
	if r.reg == nil {
		r.reg = NewRegistry()
	}
	return r.reg
}

// Init sizes the buffers for the given worker count. The engine calls it
// at construction; calling it again resets the collected series.
func (r *Recorder) Init(workers int) {
	if r.MaxSamples <= 0 {
		r.MaxSamples = 512
	}
	r.MaxSamples += r.MaxSamples % 2 // even cap keeps compaction phase-aligned
	if r.Every <= 0 {
		r.Every = 1
	}
	r.stride = r.Every
	r.seen = 0
	r.Registry()
	r.rounds = make([]RoundSample, 0, r.MaxSamples)
	r.workers = make([][]WorkerSample, workers)
	for i := range r.workers {
		r.workers[i] = make([]WorkerSample, 0, r.MaxSamples)
	}
	r.scratch = make([]WorkerSample, workers)
}

// Scratch returns the staging row for per-worker samples: the engine
// fills it and passes it back to SampleRound, so steady-state sampling
// allocates nothing.
func (r *Recorder) Scratch() []WorkerSample { return r.scratch }

// SampleRound offers one completed GVT round to the recorder. ws must
// have one entry per worker (usually the Scratch row); its contents are
// copied. Rounds not on the current stride are skipped.
func (r *Recorder) SampleRound(rs RoundSample, ws []WorkerSample) {
	if r.rounds == nil {
		return // Init never ran (recorder attached to nothing)
	}
	r.seen++
	if (r.seen-1)%int64(r.stride) != 0 {
		return
	}
	if len(r.rounds) == cap(r.rounds) {
		r.compact()
		// The stride just doubled. This sample still lands (compaction
		// kept even indices, so it sits one new-stride step after the last
		// kept one); it counts as the new phase's origin.
		r.seen = 1
	}
	r.rounds = append(r.rounds, rs)
	for i := range r.workers {
		r.workers[i] = append(r.workers[i], ws[i])
	}
}

// compact halves every series in place (keeping even indices) and
// doubles the stride.
func (r *Recorder) compact() {
	keep := func(n int) int { return (n + 1) / 2 }
	for i := 0; i < len(r.rounds)/2+len(r.rounds)%2; i++ {
		r.rounds[i] = r.rounds[2*i]
	}
	r.rounds = r.rounds[:keep(len(r.rounds))]
	for w := range r.workers {
		s := r.workers[w]
		for i := 0; i < keep(len(s)); i++ {
			s[i] = s[2*i]
		}
		r.workers[w] = s[:keep(len(s))]
	}
	r.stride *= 2
	r.seen = 0
}

// Stride returns the current sampling stride in rounds (grows by powers
// of two as the buffers fill).
func (r *Recorder) Stride() int {
	if r.stride == 0 {
		return 1
	}
	return r.stride
}

// Rounds returns the collected cluster-level series (oldest first).
func (r *Recorder) Rounds() []RoundSample { return r.rounds }

// WorkerSeries returns worker w's series, in lockstep with Rounds.
func (r *Recorder) WorkerSeries(w int) []WorkerSample { return r.workers[w] }

// NumWorkers returns the worker count given to Init.
func (r *Recorder) NumWorkers() int { return len(r.workers) }
