package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCanonicalJSONSortsAndCompacts(t *testing.T) {
	in := []byte("{\n \"b\": 1,\n \"a\": {\"z\": [1, 2,  3], \"y\": null},\n \"c\": \"x\"\n}")
	got, err := CanonicalJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a":{"y":null,"z":[1,2,3]},"b":1,"c":"x"}`
	if string(got) != want {
		t.Fatalf("canonical = %s, want %s", got, want)
	}
}

func TestCanonicalJSONKeyOrderInsensitive(t *testing.T) {
	a := []byte(`{"x":1,"y":{"p":true,"q":[{"k":1,"j":2}]}}`)
	b := []byte(`{"y":{"q":[{"j":2,"k":1}],"p":true},"x":1}`)
	ca, err := CanonicalJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := CanonicalJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("canonical forms differ:\n%s\n%s", ca, cb)
	}
}

func TestCanonicalJSONPreservesBigIntegers(t *testing.T) {
	// 2^63-1 and a uint64 seed beyond float64's exact range must survive.
	in := []byte(`{"wall_ns":9223372036854775807,"seed":18446744073709551615,"f":0.1}`)
	got, err := CanonicalJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, lit := range []string{"9223372036854775807", "18446744073709551615", "0.1"} {
		if !strings.Contains(string(got), lit) {
			t.Fatalf("canonical %s lost literal %s", got, lit)
		}
	}
}

func TestCanonicalJSONRejectsGarbage(t *testing.T) {
	if _, err := CanonicalJSON([]byte(`{"a":}`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := CanonicalJSON([]byte(`{} {}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
}

// testReport builds a report exercising every block, including values
// that are hostile to float64 round-tripping.
func testReport() *Report {
	rec := NewRecorder()
	rec.Init(2)
	reg := rec.Registry()
	reg.Counter("beta").Add(7)
	reg.Counter("alpha").Add(3)
	reg.Gauge("g2").Set(1.5)
	reg.Gauge("g1").Set(-2)
	h := reg.Histogram("lat")
	h.Observe(1)
	h.Observe(250)
	ws := rec.Scratch()
	ws[0] = WorkerSample{LVT: 1.25, Pending: 3, Rollbacks: 2}
	ws[1] = WorkerSample{LVT: -1, Uncommitted: 9}
	rec.SampleRound(RoundSample{Round: 1, GVT: 0.5, AtNanos: 1 << 60, Efficiency: 0.9}, ws)
	cfg := RunConfig{
		Label: "unit/<stable>", Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 8,
		GVT: "ca-gvt", Comm: "dedicated", GVTInterval: 4, CAThreshold: 0.8,
		EndTime: 40, Seed: 18446744073709551615, QueueKind: "heap",
		BatchSize: 16, CheckpointInterval: 1, MaxUncommitted: 64,
	}
	st := RunStats{
		WallNanos: 9223372036854775807, Committed: 123456, Processed: 130000,
		Efficiency: 0.9497, EventRate: 1.75e6, FinalGVT: 39.999,
		CommitChecksum: Checksum(0xdeadbeefcafef00d),
	}
	return BuildReport(cfg, st, rec, 2)
}

// TestReportMarshalStableRoundTrip is the byte-stability contract:
// marshal → unmarshal → marshal must reproduce identical bytes, and the
// bytes must be canonical (sorted keys, already-canonical form).
func TestReportMarshalStableRoundTrip(t *testing.T) {
	rep := testReport()
	first, err := rep.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatalf("stable bytes do not unmarshal: %v", err)
	}
	second, err := back.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip changed bytes:\n%s\n%s", first, second)
	}
	recanon, err := CanonicalJSON(first)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, recanon) {
		t.Fatal("MarshalStable output is not canonical-fixed-point")
	}
	// Big integers survived the round trip exactly.
	if back.Config.Seed != rep.Config.Seed || back.Stats.WallNanos != rep.Stats.WallNanos {
		t.Fatalf("numeric fields corrupted: %+v", back.Stats)
	}
}

// TestReportMarshalStableDeterministic: two structurally equal reports
// built independently marshal byte-identically.
func TestReportMarshalStableDeterministic(t *testing.T) {
	a, err := testReport().MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testReport().MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("equal reports marshalled differently")
	}
}
