// Package tandem is an open tandem queueing network: jobs arrive at stage
// 0 as a Poisson process, pass through a pipeline of single-server FIFO
// queues (one queue per LP) and leave at the last stage. With a pipeline
// laid out across workers and nodes, every handoff is a regional or
// remote message — a directional communication pattern very different
// from PHOLD's.
package tandem

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
)

// Event kinds.
const (
	// EvArrive delivers a job to this queue.
	EvArrive uint16 = 1
	// EvComplete finishes this queue's current service.
	EvComplete uint16 = 2
)

// Params configures the network.
type Params struct {
	Interarrival float64 // mean time between external arrivals at stage 0
	ServiceMean  float64 // mean service time per stage
	HopDelay     float64 // transfer time between stages
}

// Lookahead returns the model's minimum cross-stage delay — exactly the
// hop delay, since stage-to-stage transfers use it verbatim — which a
// conservative engine may use as its lookahead bound.
func (p Params) Lookahead() float64 {
	q := p
	q.Defaults()
	return q.HopDelay
}

// Defaults fills zero fields (ρ = ServiceMean/Interarrival = 0.7).
func (p *Params) Defaults() {
	if p.Interarrival == 0 {
		p.Interarrival = 0.50
	}
	if p.ServiceMean == 0 {
		p.ServiceMean = 0.35
	}
	if p.HopDelay == 0 {
		p.HopDelay = 0.05
	}
}

// Validate reports parameter errors.
func (p *Params) Validate() error {
	if p.Interarrival <= 0 || p.ServiceMean <= 0 || p.HopDelay <= 0 {
		return fmt.Errorf("tandem: non-positive parameters %+v", p)
	}
	return nil
}

// QueueState is the rollback-protected state of one stage.
type QueueState struct {
	Waiting    int
	Busy       bool
	Served     int64
	BusyTime   float64
	LastStart  float64
	CurrentJob uint32
}

// Utilization returns the server's busy fraction over the given horizon.
func (s QueueState) Utilization(end float64) float64 {
	if end <= 0 {
		return 0
	}
	return s.BusyTime / end
}

// Model is one queueing stage.
type Model struct {
	p      *Params
	self   event.LPID
	stages int
	state  QueueState
}

// New returns the model factory.
func New(p Params) core.ModelFactory {
	p.Defaults()
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return func(lp event.LPID, total int) core.Model {
		return &Model{p: &p, self: lp, stages: total}
	}
}

// State returns the stage's metrics.
func (m *Model) State() QueueState { return m.state }

// Init starts the external arrival process at stage 0.
func (m *Model) Init(ctx core.Context) {
	if m.self == 0 {
		m.scheduleArrival(ctx, 0)
	}
}

// OnEvent services arrivals and completions.
func (m *Model) OnEvent(ctx core.Context, ev *event.Event) {
	ctx.Spin(1500)
	switch ev.Kind {
	case EvArrive:
		job := binary.LittleEndian.Uint32(ev.Data)
		if m.self == 0 {
			m.scheduleArrival(ctx, job+1)
		}
		if m.state.Busy {
			m.state.Waiting++
		} else {
			m.startService(ctx, job)
		}
	case EvComplete:
		st := &m.state
		st.Busy = false
		st.Served++
		st.BusyTime += ctx.Now() - st.LastStart
		if int(m.self) < m.stages-1 {
			m.forward(ctx, st.CurrentJob)
		}
		if st.Waiting > 0 {
			st.Waiting--
			m.startService(ctx, st.CurrentJob+1)
		}
	}
}

func (m *Model) scheduleArrival(ctx core.Context, job uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], job)
	ctx.Send(0, ctx.RNG().Exp(m.p.Interarrival)+0.01, EvArrive, buf[:])
}

func (m *Model) startService(ctx core.Context, job uint32) {
	st := &m.state
	st.Busy = true
	st.CurrentJob = job
	st.LastStart = ctx.Now()
	ctx.Send(m.self, ctx.RNG().Exp(m.p.ServiceMean)+0.01, EvComplete, nil)
}

func (m *Model) forward(ctx core.Context, job uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], job)
	ctx.Send(m.self+1, m.p.HopDelay, EvArrive, buf[:])
}

// Snapshot copies the stage state.
func (m *Model) Snapshot() any { return m.state }

// Restore rewinds the stage state.
func (m *Model) Restore(s any) { m.state = s.(QueueState) }
