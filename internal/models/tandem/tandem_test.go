package tandem

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/seq"
)

func TestValidateAndDefaults(t *testing.T) {
	p := Params{}
	p.Defaults()
	if err := p.Validate(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	bad := Params{Interarrival: -1, ServiceMean: 1, HopDelay: 1}
	if bad.Validate() == nil {
		t.Error("negative interarrival accepted")
	}
}

func TestConservationAcrossPipeline(t *testing.T) {
	factory := New(Params{})
	const stages = 16
	e := seq.New(factory, stages, 200, 9)
	e.Run()
	prev := int64(1 << 62)
	for i := 0; i < stages; i++ {
		st := e.Model(i).(*Model).State()
		// Monotone non-increasing service counts along the pipeline
		// (stage i+1 can serve at most what stage i forwarded).
		if st.Served > prev {
			t.Fatalf("stage %d served %d > upstream %d", i, st.Served, prev)
		}
		prev = st.Served
		if u := st.Utilization(200); u < 0 || u > 1 {
			t.Fatalf("stage %d utilization %v out of range", i, u)
		}
	}
	first := e.Model(0).(*Model).State()
	if first.Served == 0 {
		t.Fatal("stage 0 served nothing")
	}
}

func TestUtilizationNearRho(t *testing.T) {
	factory := New(Params{})
	e := seq.New(factory, 8, 800, 10)
	e.Run()
	u := e.Model(0).(*Model).State().Utilization(800)
	if u < 0.5 || u > 0.9 {
		t.Errorf("stage 0 utilization %.2f, want ~0.7 (ρ)", u)
	}
}

func TestParallelMatchesOracle(t *testing.T) {
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 4}
	factory := New(Params{})
	cfg := core.Config{
		Topology: top, GVT: core.GVTBarrier, GVTInterval: 3,
		Comm: core.CommDedicated, EndTime: 150, Seed: 9, Model: factory,
	}
	r, err := core.New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	ref := seq.New(factory, 16, 150, 9).Run()
	if r.CommitChecksum != ref.Checksum {
		t.Error("parallel tandem diverged from oracle")
	}
}
