package pcs

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/seq"
)

func TestValidate(t *testing.T) {
	p := Params{GridW: 4, GridH: 4}
	p.Defaults()
	if err := p.Validate(16); err != nil {
		t.Errorf("valid rejected: %v", err)
	}
	if p.Validate(12) == nil {
		t.Error("grid mismatch accepted")
	}
	bad := Params{GridW: 4, GridH: 4, Channels: -1}
	if bad.Validate(16) == nil {
		t.Error("negative channels accepted")
	}
}

func TestCallsFlow(t *testing.T) {
	factory := New(Params{GridW: 8, GridH: 4})
	e := seq.New(factory, 32, 60, 5)
	e.Run()
	var tot TowerState
	for i := 0; i < 32; i++ {
		st := e.Model(i).(*Model).State()
		tot.Completed += st.Completed
		tot.Blocked += st.Blocked
		tot.Dropped += st.Dropped
		if st.Busy < 0 {
			t.Fatalf("tower %d has negative busy count %d", i, st.Busy)
		}
	}
	if tot.Completed == 0 {
		t.Error("no calls completed")
	}
}

func TestOverloadBlocksCalls(t *testing.T) {
	// One channel and brutal load: blocking must happen.
	factory := New(Params{GridW: 4, GridH: 2, Channels: 1, Interarrival: 0.1, HoldMean: 5})
	e := seq.New(factory, 8, 40, 5)
	e.Run()
	var blocked int64
	for i := 0; i < 8; i++ {
		blocked += e.Model(i).(*Model).State().Blocked
	}
	if blocked == 0 {
		t.Error("overloaded system blocked no calls")
	}
}

func TestParallelMatchesOracle(t *testing.T) {
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 8}
	factory := New(Params{GridW: 8, GridH: 4})
	cfg := core.Config{
		Topology: top, GVT: core.GVTControlled, GVTInterval: 3,
		Comm: core.CommDedicated, EndTime: 30, Seed: 5, Model: factory,
	}
	r, err := core.New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	ref := seq.New(factory, 32, 30, 5).Run()
	if r.CommitChecksum != ref.Checksum {
		t.Error("parallel PCS diverged from oracle")
	}
}
