// Package pcs is the classic Personal Communication Services benchmark (a
// staple of the Time Warp literature alongside PHOLD): a toroidal grid of
// cellular towers with finite channels, Poisson call arrivals, exponential
// call durations, and in-progress handoffs to neighbouring cells. Blocked
// and dropped calls are the model's engineering metrics.
package pcs

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
)

// Event kinds.
const (
	// EvNewCall is a fresh call arriving at this tower.
	EvNewCall uint16 = 1
	// EvEndCall completes an in-progress call here.
	EvEndCall uint16 = 2
	// EvHandoff is an in-progress call arriving from a neighbour.
	EvHandoff uint16 = 3
	// EvRelease frees the channel of a call that handed off elsewhere.
	EvRelease uint16 = 4
)

// Params configures the benchmark.
type Params struct {
	GridW, GridH int
	Channels     int
	Interarrival float64 // mean time between fresh calls per tower
	HoldMean     float64 // mean total call duration
	HandoffMean  float64 // mean time until a moving caller crosses cells
}

// Defaults fills zero fields.
func (p *Params) Defaults() {
	if p.Channels == 0 {
		p.Channels = 10
	}
	if p.Interarrival == 0 {
		p.Interarrival = 0.9
	}
	if p.HoldMean == 0 {
		p.HoldMean = 3.0
	}
	if p.HandoffMean == 0 {
		p.HandoffMean = 2.0
	}
}

// Validate reports parameter errors for a given total LP count.
func (p *Params) Validate(totalLPs int) error {
	if p.GridW*p.GridH != totalLPs {
		return fmt.Errorf("pcs: grid %dx%d != %d LPs", p.GridW, p.GridH, totalLPs)
	}
	if p.Channels <= 0 {
		return fmt.Errorf("pcs: non-positive channel count %d", p.Channels)
	}
	return nil
}

// TowerState is the rollback-protected state of one tower.
type TowerState struct {
	Busy      int
	Completed int64
	Blocked   int64 // fresh calls denied
	Dropped   int64 // handoffs denied
}

// Model is one tower.
type Model struct {
	p     *Params
	self  event.LPID
	state TowerState
}

// New returns the model factory.
func New(p Params) core.ModelFactory {
	p.Defaults()
	return func(lp event.LPID, total int) core.Model {
		if lp == 0 {
			if err := p.Validate(total); err != nil {
				panic(err)
			}
		}
		return &Model{p: &p, self: lp}
	}
}

// State returns the tower's metrics.
func (m *Model) State() TowerState { return m.state }

// Init starts the tower's Poisson arrival process.
func (m *Model) Init(ctx core.Context) {
	ctx.Send(m.self, ctx.RNG().Exp(m.p.Interarrival)+0.01, EvNewCall, nil)
}

// OnEvent handles arrivals, completions, handoffs and releases.
func (m *Model) OnEvent(ctx core.Context, ev *event.Event) {
	ctx.Spin(2500)
	switch ev.Kind {
	case EvNewCall:
		ctx.Send(m.self, ctx.RNG().Exp(m.p.Interarrival)+0.01, EvNewCall, nil)
		if m.state.Busy >= m.p.Channels {
			m.state.Blocked++
			return
		}
		m.state.Busy++
		m.progress(ctx)
	case EvHandoff:
		if m.state.Busy >= m.p.Channels {
			m.state.Dropped++
			return
		}
		m.state.Busy++
		m.progress(ctx)
	case EvEndCall:
		m.state.Busy--
		m.state.Completed++
	case EvRelease:
		m.state.Busy--
	}
}

// Lookahead is the model's minimum cross-cell delay: every handoff adds
// this constant floor to its exponential draw, so a conservative engine
// may safely use it as the lookahead bound.
const Lookahead = 0.01

// progress schedules either the call's completion here or its handoff.
func (m *Model) progress(ctx core.Context) {
	remaining := ctx.RNG().Exp(m.p.HoldMean) + 0.01
	toHandoff := ctx.RNG().Exp(m.p.HandoffMean) + Lookahead
	if toHandoff < remaining {
		ctx.Send(m.self, toHandoff, EvRelease, nil)
		ctx.Send(m.neighbour(ctx), toHandoff, EvHandoff, nil)
		return
	}
	ctx.Send(m.self, remaining, EvEndCall, nil)
}

func (m *Model) neighbour(ctx core.Context) event.LPID {
	w, h := m.p.GridW, m.p.GridH
	x, y := int(m.self)%w, int(m.self)/w
	switch ctx.RNG().Intn(4) {
	case 0:
		x = (x + 1) % w
	case 1:
		x = (x - 1 + w) % w
	case 2:
		y = (y + 1) % h
	default:
		y = (y - 1 + h) % h
	}
	return event.LPID(y*w + x)
}

// Snapshot copies the tower state.
func (m *Model) Snapshot() any { return m.state }

// Restore rewinds the tower state.
func (m *Model) Restore(s any) { m.state = s.(TowerState) }
