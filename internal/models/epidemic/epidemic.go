// Package epidemic is a stochastic SIR (susceptible/infected/recovered)
// epidemic over a toroidal grid of regions, one region per LP. Infected
// regions update their local dynamics on periodic ticks and occasionally
// send infectious travellers to grid neighbours — a spatially coupled
// workload whose neighbour-only, bursty communication contrasts with
// PHOLD's uniform traffic.
package epidemic

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/vtime"
)

// Event kinds.
const (
	// EvTick is a region's periodic local dynamics update.
	EvTick uint16 = 1
	// EvTravel is the arrival of infectious travellers.
	EvTravel uint16 = 2
)

// Lookahead is the model's minimum cross-region delay: every travel
// event adds this constant floor to its exponential draw, so a
// conservative engine may safely use it as the lookahead bound.
const Lookahead = 0.2

// Params configures the epidemic.
type Params struct {
	GridW, GridH int // grid dimensions; GridW*GridH must equal the LP count
	Population   int // people per region
	Seeds        int // initially infected people in region 0
	TickEvery    vtime.Time
	BetaLocal    float64 // local infection pressure per tick
	GammaRecov   float64 // recovery fraction per tick
	TravelProb   float64 // chance an infected region emits travellers per tick
}

// Defaults fills zero fields with a standard parameterization.
func (p *Params) Defaults() {
	if p.Population == 0 {
		p.Population = 1000
	}
	if p.Seeds == 0 {
		p.Seeds = 10
	}
	if p.TickEvery == 0 {
		p.TickEvery = 1.0
	}
	if p.BetaLocal == 0 {
		p.BetaLocal = 0.45
	}
	if p.GammaRecov == 0 {
		p.GammaRecov = 0.20
	}
	if p.TravelProb == 0 {
		p.TravelProb = 0.30
	}
}

// Validate reports parameter errors for a given total LP count.
func (p *Params) Validate(totalLPs int) error {
	if p.GridW <= 0 || p.GridH <= 0 {
		return fmt.Errorf("epidemic: non-positive grid %dx%d", p.GridW, p.GridH)
	}
	if p.GridW*p.GridH != totalLPs {
		return fmt.Errorf("epidemic: grid %dx%d=%d regions != %d LPs",
			p.GridW, p.GridH, p.GridW*p.GridH, totalLPs)
	}
	if p.Seeds > p.Population {
		return fmt.Errorf("epidemic: %d seeds > population %d", p.Seeds, p.Population)
	}
	return nil
}

// Region is one grid cell's SIR state.
type Region struct {
	S, I, R int
}

// Model is the per-LP epidemic model.
type Model struct {
	p     *Params
	self  event.LPID
	state Region
}

// New returns a model factory; it panics if the grid does not match the
// topology's LP count (checked lazily at first construction).
func New(p Params) core.ModelFactory {
	p.Defaults()
	return func(lp event.LPID, total int) core.Model {
		if lp == 0 {
			if err := p.Validate(total); err != nil {
				panic(err)
			}
		}
		return &Model{p: &p, self: lp}
	}
}

// State returns the region's current SIR counts.
func (m *Model) State() Region { return m.state }

// Init seeds patient zero and the tick cycle.
func (m *Model) Init(ctx core.Context) {
	m.state = Region{S: m.p.Population}
	if m.self == 0 {
		m.state.S -= m.p.Seeds
		m.state.I += m.p.Seeds
	}
	ctx.Send(m.self, m.p.TickEvery+ctx.RNG().Float64()*0.01, EvTick, nil)
}

// OnEvent advances local dynamics or lands travellers.
func (m *Model) OnEvent(ctx core.Context, ev *event.Event) {
	ctx.Spin(3000)
	switch ev.Kind {
	case EvTick:
		m.step(ctx)
		ctx.Send(m.self, m.p.TickEvery+ctx.RNG().Float64()*0.01, EvTick, nil)
	case EvTravel:
		n := int(binary.LittleEndian.Uint32(ev.Data))
		moved := min(n, m.state.S)
		m.state.S -= moved
		m.state.I += moved
	}
}

func (m *Model) step(ctx core.Context) {
	st := &m.state
	if st.I == 0 {
		return
	}
	pressure := m.p.BetaLocal * float64(st.I) / float64(m.p.Population)
	newInf := min(int(pressure*float64(st.S)+ctx.RNG().Float64()), st.S)
	st.S -= newInf
	st.I += newInf

	rec := min(int(m.p.GammaRecov*float64(st.I)+ctx.RNG().Float64()), st.I)
	st.I -= rec
	st.R += rec

	if st.I > 5 && ctx.RNG().Float64() < m.p.TravelProb {
		dst := m.neighbour(ctx)
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], uint32(1+ctx.RNG().Intn(3)))
		ctx.Send(dst, Lookahead+ctx.RNG().Exp(0.3), EvTravel, buf[:])
	}
}

// neighbour picks a random 4-neighbour on the torus.
func (m *Model) neighbour(ctx core.Context) event.LPID {
	w, h := m.p.GridW, m.p.GridH
	x, y := int(m.self)%w, int(m.self)/w
	switch ctx.RNG().Intn(4) {
	case 0:
		x = (x + 1) % w
	case 1:
		x = (x - 1 + w) % w
	case 2:
		y = (y + 1) % h
	default:
		y = (y - 1 + h) % h
	}
	return event.LPID(y*w + x)
}

// Snapshot and Restore implement rollback support (value-copy state).
func (m *Model) Snapshot() any { return m.state }

// Restore rewinds the region.
func (m *Model) Restore(s any) { m.state = s.(Region) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
