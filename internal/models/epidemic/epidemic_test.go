package epidemic

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/seq"
)

func TestValidate(t *testing.T) {
	p := Params{GridW: 4, GridH: 4}
	p.Defaults()
	if err := p.Validate(16); err != nil {
		t.Errorf("valid rejected: %v", err)
	}
	if p.Validate(15) == nil {
		t.Error("grid/LP mismatch accepted")
	}
	bad := Params{GridW: 0, GridH: 4}
	bad.Defaults()
	if bad.Validate(0) == nil {
		t.Error("zero grid accepted")
	}
	over := Params{GridW: 1, GridH: 1, Seeds: 5000, Population: 10}
	if over.Validate(1) == nil {
		t.Error("seeds > population accepted")
	}
}

func TestEpidemicSpreads(t *testing.T) {
	p := Params{GridW: 8, GridH: 4}
	factory := New(p)
	e := seq.New(factory, 32, 40, 3)
	e.Run()
	infectedRegions := 0
	var total Region
	for i := 0; i < 32; i++ {
		st := e.Model(i).(*Model).State()
		total.S += st.S
		total.I += st.I
		total.R += st.R
		if st.I > 0 || st.R > 0 {
			infectedRegions++
		}
	}
	if infectedRegions < 2 {
		t.Errorf("epidemic never spread beyond patient zero (%d regions touched)", infectedRegions)
	}
	pp := p
	pp.Defaults()
	if got := total.S + total.I + total.R; got != 32*pp.Population {
		t.Errorf("population not conserved: %d", got)
	}
	if total.R == 0 {
		t.Error("nobody recovered in 40 days")
	}
}

func TestParallelMatchesOracle(t *testing.T) {
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 8}
	factory := New(Params{GridW: 8, GridH: 4})
	cfg := core.Config{
		Topology: top, GVT: core.GVTMattern, GVTInterval: 3,
		Comm: core.CommDedicated, EndTime: 25, Seed: 3, Model: factory,
	}
	r, err := core.New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	ref := seq.New(factory, 32, 25, 3).Run()
	if r.CommitChecksum != ref.Checksum {
		t.Error("parallel epidemic diverged from oracle")
	}
}
