// Package trace records simulation runs for post-mortem analysis, in the
// spirit of ROSS's event tracing: a compact binary log of committed
// events and GVT rounds that can be written during a run and read back
// for analysis (commit-rate timelines, per-LP activity, GVT progress).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Record types.
const (
	recCommit = uint8(1) // one committed event
	recRound  = uint8(2) // one completed GVT round
)

// Commit is one committed event.
type Commit struct {
	LP  uint32
	T   float64 // virtual timestamp of the event
	Src uint32
	Seq uint64
}

// Round is one completed GVT round.
type Round struct {
	Round      int64
	GVT        float64
	AtNanos    int64 // simulated wall-clock of completion
	Sync       bool
	Efficiency float64
}

// Writer streams records to an io.Writer.
type Writer struct {
	w   *bufio.Writer
	err error
	// Counts of written records, for quick sanity checks.
	Commits int64
	Rounds  int64
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (t *Writer) put(b []byte) {
	if t.err != nil {
		return
	}
	_, t.err = t.w.Write(b)
}

// Commit appends a committed-event record.
func (t *Writer) Commit(c Commit) {
	var b [25]byte
	b[0] = recCommit
	binary.LittleEndian.PutUint32(b[1:], c.LP)
	binary.LittleEndian.PutUint64(b[5:], math.Float64bits(c.T))
	binary.LittleEndian.PutUint32(b[13:], c.Src)
	binary.LittleEndian.PutUint64(b[17:], c.Seq)
	t.put(b[:])
	t.Commits++
}

// Round appends a GVT-round record.
func (t *Writer) Round(r Round) {
	var b [34]byte
	b[0] = recRound
	binary.LittleEndian.PutUint64(b[1:], uint64(r.Round))
	binary.LittleEndian.PutUint64(b[9:], math.Float64bits(r.GVT))
	binary.LittleEndian.PutUint64(b[17:], uint64(r.AtNanos))
	if r.Sync {
		b[25] = 1
	}
	binary.LittleEndian.PutUint64(b[26:], math.Float64bits(r.Efficiency))
	t.put(b[:])
	t.Rounds++
}

// Flush drains buffered records and returns any accumulated write error.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader iterates over a trace stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record as either a Commit or a Round; io.EOF ends
// the stream.
func (t *Reader) Next() (any, error) {
	kind, err := t.r.ReadByte()
	if err != nil {
		return nil, err
	}
	switch kind {
	case recCommit:
		var b [24]byte
		if _, err := io.ReadFull(t.r, b[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated commit record: %w", err)
		}
		return Commit{
			LP:  binary.LittleEndian.Uint32(b[0:]),
			T:   math.Float64frombits(binary.LittleEndian.Uint64(b[4:])),
			Src: binary.LittleEndian.Uint32(b[12:]),
			Seq: binary.LittleEndian.Uint64(b[16:]),
		}, nil
	case recRound:
		var b [33]byte
		if _, err := io.ReadFull(t.r, b[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated round record: %w", err)
		}
		return Round{
			Round:      int64(binary.LittleEndian.Uint64(b[0:])),
			GVT:        math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
			AtNanos:    int64(binary.LittleEndian.Uint64(b[16:])),
			Sync:       b[24] != 0,
			Efficiency: math.Float64frombits(binary.LittleEndian.Uint64(b[25:])),
		}, nil
	default:
		return nil, fmt.Errorf("trace: unknown record type %d", kind)
	}
}

// Summary aggregates a trace stream.
type Summary struct {
	Commits    int64
	Rounds     int64
	SyncRounds int64
	FinalGVT   float64
	MaxT       float64
	PerLP      map[uint32]int64
}

// Summarize reads a whole stream into a Summary.
func Summarize(r io.Reader) (*Summary, error) {
	tr := NewReader(r)
	s := &Summary{PerLP: make(map[uint32]int64)}
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return nil, err
		}
		switch v := rec.(type) {
		case Commit:
			s.Commits++
			s.PerLP[v.LP]++
			if v.T > s.MaxT {
				s.MaxT = v.T
			}
		case Round:
			s.Rounds++
			if v.Sync {
				s.SyncRounds++
			}
			s.FinalGVT = v.GVT
		}
	}
}
