// Package trace records simulation runs for post-mortem analysis, in the
// spirit of ROSS's event tracing: a compact binary log that can be
// written during a run and read back for analysis.
//
// Format v1 streams start with a 6-byte header (magic 0xCA "GVT" plus a
// little-endian uint16 format version) followed by self-describing
// records: committed events, GVT rounds, rollback episodes, MPI
// sends/receives of the event/ack data plane, and worker phase
// transitions. Format v2 adds LP-migration records emitted by the load
// balancer. The Reader also accepts v1 streams and headerless v0 streams
// (commit and round records only) written by earlier versions of this
// repo, and rejects unknown versions instead of decoding garbage.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Header layout.
var magic = [4]byte{0xCA, 'G', 'V', 'T'}

// Version is the format version this package writes.
const Version = 2

const headerLen = 6

// Record types.
const (
	recCommit   = uint8(1) // one committed event
	recRound    = uint8(2) // one completed GVT round
	recRollback = uint8(3) // one rollback episode (v1+)
	recMPISend  = uint8(4) // one MPI data-plane send (v1+)
	recMPIRecv  = uint8(5) // one MPI data-plane receive (v1+)
	recPhase    = uint8(6) // one worker phase transition (v1+)
	recFault    = uint8(7) // one injected/observed fault (v1+)

	recMigration = uint8(8) // one LP migration between nodes (v2+)
)

// Fault kinds carried by Fault records. 0-3 mirror the fabric's injected
// fault kinds; the watchdog kinds record the GVT liveness machinery
// reacting to losses.
const (
	FaultDrop             = uint8(iota) // packet lost on the wire
	FaultDuplicate                      // packet delivered twice
	FaultJitter                         // packet delayed beyond nominal
	FaultWindowDrop                     // packet lost in a partition window
	FaultWatchdogRestart                // GVT watchdog re-sent a lost token
	FaultWatchdogFallback               // GVT watchdog forced a synchronous round
	NumFaultKinds
)

// FaultName returns the human-readable fault kind name.
func FaultName(k uint8) string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultJitter:
		return "jitter"
	case FaultWindowDrop:
		return "window-drop"
	case FaultWatchdogRestart:
		return "watchdog-restart"
	case FaultWatchdogFallback:
		return "watchdog-fallback"
	}
	return fmt.Sprintf("fault(%d)", k)
}

// Worker phases carried by Phase records.
const (
	PhaseProcessing = uint8(iota) // draining mailboxes / processing events
	PhaseIdle                     // an empty main-loop pass
	PhaseBarrier                  // parked at a GVT barrier
	PhaseGVT                      // inside GVT protocol steps
	NumPhases
)

// PhaseName returns the human-readable phase name.
func PhaseName(p uint8) string {
	switch p {
	case PhaseProcessing:
		return "processing"
	case PhaseIdle:
		return "idle"
	case PhaseBarrier:
		return "barrier"
	case PhaseGVT:
		return "gvt"
	}
	return fmt.Sprintf("phase(%d)", p)
}

// Commit is one committed event.
type Commit struct {
	LP  uint32
	T   float64 // virtual timestamp of the event
	Src uint32
	Seq uint64
}

// Round is one completed GVT round.
type Round struct {
	Round      int64
	GVT        float64
	AtNanos    int64 // simulated wall-clock of completion
	Sync       bool
	Efficiency float64
}

// Rollback is one rollback episode at a worker: a straggler or
// anti-message forced Depth processed events spanning [From, To] in
// virtual time to be undone.
type Rollback struct {
	Worker  uint32
	LP      uint32  // LP that was rolled back
	Anti    bool    // caused by an anti-message (false: straggler)
	Depth   uint32  // processed events undone
	From    float64 // earliest undone stamp (the rollback target)
	To      float64 // latest undone stamp
	AtNanos int64
}

// MPISend is one message of the MPI data plane (events and Samadi acks;
// GVT control tokens are not recorded) leaving a node.
type MPISend struct {
	Src, Dst uint16 // node ids
	Bytes    uint32
	// QueueDepth is the node outbox backlog left behind when the comm
	// role took this message — the MPI-thread lag signal of paper §4.
	QueueDepth uint32
	AtNanos    int64
}

// MPIRecv is one data-plane message consumed from MPI at a node.
type MPIRecv struct {
	Src, Dst uint16 // node ids
	Bytes    uint32
	// QueueDepth is the destination worker's mailbox depth right after
	// this message was deposited.
	QueueDepth uint32
	AtNanos    int64
}

// Phase is one worker phase transition: the worker entered Phase at
// AtNanos and stays there until its next Phase record.
type Phase struct {
	Worker  uint32
	Phase   uint8
	AtNanos int64
}

// Fault is one injected fabric fault or watchdog reaction. For wire
// faults Src/Dst are node ids; for watchdog records Src is the master
// node and Dst is unused.
type Fault struct {
	Kind     uint8
	Src, Dst uint16
	AtNanos  int64
	// DelayNanos is the extra latency added (jitter/degradation kinds).
	DelayNanos int64
}

// Migration is one LP moved between nodes by the load balancer at a GVT
// commit point. Events counts the pending (uncommitted-future) events
// shipped along with the LP's state.
type Migration struct {
	LP      uint32
	SrcNode uint16
	DstNode uint16
	Round   int64 // GVT round whose commit point triggered the move
	Events  uint32
	AtNanos int64
}

// migrationWire is the record body size (after the type byte).
const migrationWire = 28

// Writer streams current-version records to an io.Writer. The header is
// written on the first record (or Flush), so an abandoned Writer leaves
// no bytes.
type Writer struct {
	w        *bufio.Writer
	err      error
	prefaced bool
	// scratch is the record-encoding buffer. A stack array would escape
	// (bufio's underlying io.Writer leaks its argument), costing one
	// heap allocation per record on the commit fast path; encoding into
	// the Writer instead makes record emission allocation-free. Writers
	// are driven by the cooperative simulation kernel (one goroutine at
	// a time), so a single buffer is safe.
	scratch [64]byte
	// Counts of written records, for quick sanity checks.
	Commits    int64
	Rounds     int64
	Rollbacks  int64
	MPISends   int64
	MPIRecvs   int64
	Phases     int64
	Faults     int64
	Migrations int64
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (t *Writer) put(b []byte) {
	if t.err != nil {
		return
	}
	if !t.prefaced {
		t.prefaced = true
		var h [headerLen]byte
		copy(h[:], magic[:])
		binary.LittleEndian.PutUint16(h[4:], Version)
		if _, t.err = t.w.Write(h[:]); t.err != nil {
			return
		}
	}
	_, t.err = t.w.Write(b)
}

// Commit appends a committed-event record.
func (t *Writer) Commit(c Commit) {
	b := &t.scratch
	b[0] = recCommit
	binary.LittleEndian.PutUint32(b[1:], c.LP)
	binary.LittleEndian.PutUint64(b[5:], math.Float64bits(c.T))
	binary.LittleEndian.PutUint32(b[13:], c.Src)
	binary.LittleEndian.PutUint64(b[17:], c.Seq)
	t.put(b[:25])
	t.Commits++
}

// Round appends a GVT-round record.
func (t *Writer) Round(r Round) {
	b := &t.scratch
	b[0] = recRound
	binary.LittleEndian.PutUint64(b[1:], uint64(r.Round))
	binary.LittleEndian.PutUint64(b[9:], math.Float64bits(r.GVT))
	binary.LittleEndian.PutUint64(b[17:], uint64(r.AtNanos))
	b[25] = 0 // scratch is reused: conditional bytes need both branches
	if r.Sync {
		b[25] = 1
	}
	binary.LittleEndian.PutUint64(b[26:], math.Float64bits(r.Efficiency))
	t.put(b[:34])
	t.Rounds++
}

// Rollback appends a rollback-episode record.
func (t *Writer) Rollback(r Rollback) {
	b := &t.scratch
	b[0] = recRollback
	binary.LittleEndian.PutUint32(b[1:], r.Worker)
	binary.LittleEndian.PutUint32(b[5:], r.LP)
	b[9] = 0 // scratch is reused: conditional bytes need both branches
	if r.Anti {
		b[9] = 1
	}
	binary.LittleEndian.PutUint32(b[10:], r.Depth)
	binary.LittleEndian.PutUint64(b[14:], math.Float64bits(r.From))
	binary.LittleEndian.PutUint64(b[22:], math.Float64bits(r.To))
	binary.LittleEndian.PutUint64(b[30:], uint64(r.AtNanos))
	t.put(b[:38])
	t.Rollbacks++
}

func putMPI(b *[64]byte, kind uint8, src, dst uint16, bytes, depth uint32, at int64) {
	b[0] = kind
	binary.LittleEndian.PutUint16(b[1:], src)
	binary.LittleEndian.PutUint16(b[3:], dst)
	binary.LittleEndian.PutUint32(b[5:], bytes)
	binary.LittleEndian.PutUint32(b[9:], depth)
	binary.LittleEndian.PutUint64(b[13:], uint64(at))
}

// MPISend appends a data-plane send record.
func (t *Writer) MPISend(m MPISend) {
	putMPI(&t.scratch, recMPISend, m.Src, m.Dst, m.Bytes, m.QueueDepth, m.AtNanos)
	t.put(t.scratch[:21])
	t.MPISends++
}

// MPIRecv appends a data-plane receive record.
func (t *Writer) MPIRecv(m MPIRecv) {
	putMPI(&t.scratch, recMPIRecv, m.Src, m.Dst, m.Bytes, m.QueueDepth, m.AtNanos)
	t.put(t.scratch[:21])
	t.MPIRecvs++
}

// Phase appends a worker phase-transition record.
func (t *Writer) Phase(p Phase) {
	b := &t.scratch
	b[0] = recPhase
	binary.LittleEndian.PutUint32(b[1:], p.Worker)
	b[5] = p.Phase
	binary.LittleEndian.PutUint64(b[6:], uint64(p.AtNanos))
	t.put(b[:14])
	t.Phases++
}

// Fault appends a fault record.
func (t *Writer) Fault(f Fault) {
	b := &t.scratch
	b[0] = recFault
	b[1] = f.Kind
	binary.LittleEndian.PutUint16(b[2:], f.Src)
	binary.LittleEndian.PutUint16(b[4:], f.Dst)
	binary.LittleEndian.PutUint64(b[6:], uint64(f.AtNanos))
	binary.LittleEndian.PutUint64(b[14:], uint64(f.DelayNanos))
	t.put(b[:22])
	t.Faults++
}

// Migration appends an LP-migration record.
func (t *Writer) Migration(m Migration) {
	b := &t.scratch
	b[0] = recMigration
	binary.LittleEndian.PutUint32(b[1:], m.LP)
	binary.LittleEndian.PutUint16(b[5:], m.SrcNode)
	binary.LittleEndian.PutUint16(b[7:], m.DstNode)
	binary.LittleEndian.PutUint64(b[9:], uint64(m.Round))
	binary.LittleEndian.PutUint32(b[17:], m.Events)
	binary.LittleEndian.PutUint64(b[21:], uint64(m.AtNanos))
	t.put(b[:1+migrationWire])
	t.Migrations++
}

// Flush drains buffered records and returns any accumulated write error.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	if !t.prefaced {
		t.put(nil) // header-only stream
		if t.err != nil {
			return t.err
		}
	}
	return t.w.Flush()
}

// Reader iterates over a trace stream, accepting both v1 (headered) and
// legacy v0 (headerless) formats.
type Reader struct {
	r       *bufio.Reader
	off     int64
	version int
	started bool
	err     error
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Offset returns the number of bytes consumed so far; after an error it
// points at the failure.
func (t *Reader) Offset() int64 { return t.off }

// Version returns the stream's format version (0 for legacy headerless
// streams), detecting it on first use. An empty stream reads as the
// current version.
func (t *Reader) Version() (int, error) {
	if err := t.start(); err != nil && err != io.EOF {
		return 0, err
	}
	return t.version, nil
}

// start detects and consumes the header. It returns io.EOF only for a
// completely empty stream.
func (t *Reader) start() error {
	if t.started {
		return t.err
	}
	t.started = true
	first, err := t.r.Peek(1)
	if err != nil {
		if err == io.EOF {
			t.version = Version
			return io.EOF
		}
		t.err = err
		return err
	}
	if first[0] != magic[0] {
		// Headerless legacy stream: records begin immediately.
		t.version = 0
		return nil
	}
	var h [headerLen]byte
	if _, err := io.ReadFull(t.r, h[:]); err != nil {
		t.err = fmt.Errorf("trace: truncated header at offset %d: %w", t.off, err)
		return t.err
	}
	if [4]byte(h[:4]) != magic {
		t.err = fmt.Errorf("trace: bad magic %x at offset 0 (not a trace file)", h[:4])
		return t.err
	}
	t.off = headerLen
	v := int(binary.LittleEndian.Uint16(h[4:]))
	if v == 0 || v > Version {
		t.err = fmt.Errorf("trace: unknown format version %d (this reader understands v0..v%d); refusing to decode", v, Version)
		return t.err
	}
	t.version = v
	return nil
}

func (t *Reader) readFull(b []byte, what string) error {
	n, err := io.ReadFull(t.r, b)
	t.off += int64(n)
	if err != nil {
		return fmt.Errorf("trace: truncated %s record at offset %d: %w", what, t.off, err)
	}
	return nil
}

// Next returns the next record as one of Commit, Round, Rollback,
// MPISend, MPIRecv or Phase; io.EOF ends the stream.
func (t *Reader) Next() (any, error) {
	if err := t.start(); err != nil {
		return nil, err
	}
	kind, err := t.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			err = fmt.Errorf("trace: read at offset %d: %w", t.off, err)
			t.err = err
		}
		return nil, err
	}
	t.off++
	switch kind {
	case recCommit:
		var b [24]byte
		if err := t.readFull(b[:], "commit"); err != nil {
			t.err = err
			return nil, err
		}
		return Commit{
			LP:  binary.LittleEndian.Uint32(b[0:]),
			T:   math.Float64frombits(binary.LittleEndian.Uint64(b[4:])),
			Src: binary.LittleEndian.Uint32(b[12:]),
			Seq: binary.LittleEndian.Uint64(b[16:]),
		}, nil
	case recRound:
		var b [33]byte
		if err := t.readFull(b[:], "round"); err != nil {
			t.err = err
			return nil, err
		}
		return Round{
			Round:      int64(binary.LittleEndian.Uint64(b[0:])),
			GVT:        math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
			AtNanos:    int64(binary.LittleEndian.Uint64(b[16:])),
			Sync:       b[24] != 0,
			Efficiency: math.Float64frombits(binary.LittleEndian.Uint64(b[25:])),
		}, nil
	case recRollback:
		var b [37]byte
		if err := t.readFull(b[:], "rollback"); err != nil {
			t.err = err
			return nil, err
		}
		return Rollback{
			Worker:  binary.LittleEndian.Uint32(b[0:]),
			LP:      binary.LittleEndian.Uint32(b[4:]),
			Anti:    b[8] != 0,
			Depth:   binary.LittleEndian.Uint32(b[9:]),
			From:    math.Float64frombits(binary.LittleEndian.Uint64(b[13:])),
			To:      math.Float64frombits(binary.LittleEndian.Uint64(b[21:])),
			AtNanos: int64(binary.LittleEndian.Uint64(b[29:])),
		}, nil
	case recMPISend, recMPIRecv:
		var b [20]byte
		what := "mpi-send"
		if kind == recMPIRecv {
			what = "mpi-recv"
		}
		if err := t.readFull(b[:], what); err != nil {
			t.err = err
			return nil, err
		}
		src := binary.LittleEndian.Uint16(b[0:])
		dst := binary.LittleEndian.Uint16(b[2:])
		bytes := binary.LittleEndian.Uint32(b[4:])
		depth := binary.LittleEndian.Uint32(b[8:])
		at := int64(binary.LittleEndian.Uint64(b[12:]))
		if kind == recMPISend {
			return MPISend{Src: src, Dst: dst, Bytes: bytes, QueueDepth: depth, AtNanos: at}, nil
		}
		return MPIRecv{Src: src, Dst: dst, Bytes: bytes, QueueDepth: depth, AtNanos: at}, nil
	case recPhase:
		var b [13]byte
		if err := t.readFull(b[:], "phase"); err != nil {
			t.err = err
			return nil, err
		}
		return Phase{
			Worker:  binary.LittleEndian.Uint32(b[0:]),
			Phase:   b[4],
			AtNanos: int64(binary.LittleEndian.Uint64(b[5:])),
		}, nil
	case recFault:
		var b [21]byte
		if err := t.readFull(b[:], "fault"); err != nil {
			t.err = err
			return nil, err
		}
		return Fault{
			Kind:       b[0],
			Src:        binary.LittleEndian.Uint16(b[1:]),
			Dst:        binary.LittleEndian.Uint16(b[3:]),
			AtNanos:    int64(binary.LittleEndian.Uint64(b[5:])),
			DelayNanos: int64(binary.LittleEndian.Uint64(b[13:])),
		}, nil
	case recMigration:
		var b [migrationWire]byte
		if err := t.readFull(b[:], "migration"); err != nil {
			t.err = err
			return nil, err
		}
		return Migration{
			LP:      binary.LittleEndian.Uint32(b[0:]),
			SrcNode: binary.LittleEndian.Uint16(b[4:]),
			DstNode: binary.LittleEndian.Uint16(b[6:]),
			Round:   int64(binary.LittleEndian.Uint64(b[8:])),
			Events:  binary.LittleEndian.Uint32(b[16:]),
			AtNanos: int64(binary.LittleEndian.Uint64(b[20:])),
		}, nil
	default:
		err := fmt.Errorf("trace: unknown record type %d at offset %d", kind, t.off-1)
		t.err = err
		return nil, err
	}
}

// Visitor receives decoded records by type; nil callbacks skip that
// type. It replaces type-switching over Next's any-typed result.
type Visitor struct {
	Commit    func(Commit)
	Round     func(Round)
	Rollback  func(Rollback)
	MPISend   func(MPISend)
	MPIRecv   func(MPIRecv)
	Phase     func(Phase)
	Fault     func(Fault)
	Migration func(Migration)
}

// ForEach decodes the whole stream, dispatching each record to the
// matching callback. It returns nil on clean EOF and the decode error
// (with byte offset) otherwise.
func (t *Reader) ForEach(v Visitor) error {
	for {
		rec, err := t.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch r := rec.(type) {
		case Commit:
			if v.Commit != nil {
				v.Commit(r)
			}
		case Round:
			if v.Round != nil {
				v.Round(r)
			}
		case Rollback:
			if v.Rollback != nil {
				v.Rollback(r)
			}
		case MPISend:
			if v.MPISend != nil {
				v.MPISend(r)
			}
		case MPIRecv:
			if v.MPIRecv != nil {
				v.MPIRecv(r)
			}
		case Phase:
			if v.Phase != nil {
				v.Phase(r)
			}
		case Fault:
			if v.Fault != nil {
				v.Fault(r)
			}
		case Migration:
			if v.Migration != nil {
				v.Migration(r)
			}
		}
	}
}

// Summary aggregates a trace stream.
type Summary struct {
	Version    int
	Commits    int64
	Rounds     int64
	SyncRounds int64
	FinalGVT   float64
	MaxT       float64
	PerLP      map[uint32]int64
	// v1 extensions (zero on v0 streams).
	Rollbacks        int64 // rollback episodes
	RolledBack       int64 // events undone across all episodes
	MPISends         int64
	MPISendBytes     int64
	MPIRecvs         int64
	PhaseRecords     int64
	MaxRollbackDepth int64
	Faults           int64
	FaultsByKind     map[uint8]int64
	// v2 extensions (zero on v0/v1 streams).
	Migrations     int64 // LP moves recorded by the balancer
	MigratedEvents int64 // pending events shipped along with moves
}

// Summarize reads a whole stream into a Summary.
func Summarize(r io.Reader) (*Summary, error) {
	tr := NewReader(r)
	s := &Summary{PerLP: make(map[uint32]int64)}
	err := tr.ForEach(Visitor{
		Commit: func(c Commit) {
			s.Commits++
			s.PerLP[c.LP]++
			if c.T > s.MaxT {
				s.MaxT = c.T
			}
		},
		Round: func(r Round) {
			s.Rounds++
			if r.Sync {
				s.SyncRounds++
			}
			s.FinalGVT = r.GVT
		},
		Rollback: func(r Rollback) {
			s.Rollbacks++
			s.RolledBack += int64(r.Depth)
			if int64(r.Depth) > s.MaxRollbackDepth {
				s.MaxRollbackDepth = int64(r.Depth)
			}
		},
		MPISend: func(m MPISend) {
			s.MPISends++
			s.MPISendBytes += int64(m.Bytes)
		},
		MPIRecv: func(MPIRecv) { s.MPIRecvs++ },
		Phase:   func(Phase) { s.PhaseRecords++ },
		Fault: func(f Fault) {
			s.Faults++
			if s.FaultsByKind == nil {
				s.FaultsByKind = make(map[uint8]int64)
			}
			s.FaultsByKind[f.Kind]++
		},
		Migration: func(m Migration) {
			s.Migrations++
			s.MigratedEvents += int64(m.Events)
		},
	})
	if err != nil {
		return nil, err
	}
	s.Version, _ = tr.Version()
	return s, nil
}
