package trace

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Commit(Commit{LP: 3, T: 1.5, Src: 2, Seq: 9})
	w.Round(Round{Round: 1, GVT: 1.0, AtNanos: 5000, Sync: true, Efficiency: 0.75})
	w.Commit(Commit{LP: 4, T: 2.5, Src: 3, Seq: 10})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Commits != 2 || w.Rounds != 1 {
		t.Errorf("writer counts: %d commits %d rounds", w.Commits, w.Rounds)
	}

	r := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	c := rec.(Commit)
	if c.LP != 3 || c.T != 1.5 || c.Src != 2 || c.Seq != 9 {
		t.Errorf("commit = %+v", c)
	}
	rec, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	rd := rec.(Round)
	if rd.Round != 1 || rd.GVT != 1.0 || rd.AtNanos != 5000 || !rd.Sync || rd.Efficiency != 0.75 {
		t.Errorf("round = %+v", rd)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Commit(Commit{LP: 1, T: 1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := NewReader(bytes.NewReader(cut)).Next(); err == nil {
		t.Error("truncated record did not error")
	}
}

func TestUnknownRecord(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{99})).Next(); err == nil {
		t.Error("unknown record type did not error")
	}
}

func TestSummarize(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		w.Commit(Commit{LP: uint32(i % 3), T: float64(i)})
	}
	w.Round(Round{Round: 1, GVT: 5, Sync: false})
	w.Round(Round{Round: 2, GVT: 9, Sync: true, Efficiency: 0.5})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Commits != 10 || s.Rounds != 2 || s.SyncRounds != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.FinalGVT != 9 || s.MaxT != 9 {
		t.Errorf("FinalGVT=%v MaxT=%v", s.FinalGVT, s.MaxT)
	}
	if s.PerLP[0] != 4 || s.PerLP[1] != 3 || s.PerLP[2] != 3 {
		t.Errorf("PerLP = %v", s.PerLP)
	}
}

// Property: any sequence of records round-trips.
func TestRoundTripProperty(t *testing.T) {
	prop := func(lps []uint32, ts []float64, gvts []float64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var want []any
		n := len(lps)
		if len(ts) < n {
			n = len(ts)
		}
		for i := 0; i < n; i++ {
			c := Commit{LP: lps[i], T: ts[i], Src: lps[i] + 1, Seq: uint64(i)}
			w.Commit(c)
			want = append(want, c)
		}
		for i, g := range gvts {
			r := Round{Round: int64(i), GVT: g, Sync: i%2 == 0, Efficiency: 0.5}
			w.Round(r)
			want = append(want, r)
		}
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		for _, exp := range want {
			got, err := r.Next()
			if err != nil || got != exp {
				return false
			}
		}
		_, err := r.Next()
		return err == io.EOF
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripV1Records(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rb := Rollback{Worker: 7, LP: 42, Anti: true, Depth: 13, From: 1.25, To: 9.5, AtNanos: 777}
	ms := MPISend{Src: 1, Dst: 2, Bytes: 96, QueueDepth: 5, AtNanos: 100}
	mr := MPIRecv{Src: 2, Dst: 1, Bytes: 96, QueueDepth: 3, AtNanos: 200}
	ph := Phase{Worker: 3, Phase: PhaseBarrier, AtNanos: 300}
	w.Rollback(rb)
	w.MPISend(ms)
	w.MPIRecv(mr)
	w.Phase(ph)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Rollbacks != 1 || w.MPISends != 1 || w.MPIRecvs != 1 || w.Phases != 1 {
		t.Errorf("writer counts: %d/%d/%d/%d", w.Rollbacks, w.MPISends, w.MPIRecvs, w.Phases)
	}
	r := NewReader(&buf)
	if v, err := r.Version(); err != nil || v != Version {
		t.Fatalf("version = %d, %v; want %d", v, err, Version)
	}
	for _, want := range []any{rb, ms, mr, ph} {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("got %+v, want %+v", got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

// TestV0Shim strips the v1 header from a commit/round-only stream to
// fabricate a legacy trace; the Reader must still decode it as v0.
func TestV0Shim(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Commit(Commit{LP: 1, T: 2.0, Src: 3, Seq: 4})
	w.Round(Round{Round: 1, GVT: 2.0, Sync: true, Efficiency: 0.9})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	legacy := buf.Bytes()[headerLen:]
	r := NewReader(bytes.NewReader(legacy))
	if v, err := r.Version(); err != nil || v != 0 {
		t.Fatalf("version = %d, %v; want 0", v, err)
	}
	if rec, err := r.Next(); err != nil || rec.(Commit).LP != 1 {
		t.Fatalf("commit: %v, %v", rec, err)
	}
	if rec, err := r.Next(); err != nil || rec.(Round).GVT != 2.0 {
		t.Fatalf("round: %v, %v", rec, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestUnknownVersionRejected(t *testing.T) {
	stream := []byte{0xCA, 'G', 'V', 'T', 0x63, 0x00} // version 99
	if _, err := NewReader(bytes.NewReader(stream)).Next(); err == nil {
		t.Fatal("unknown version did not error")
	} else if !strings.Contains(err.Error(), "version 99") {
		t.Errorf("error does not name the version: %v", err)
	}
	// Declared version 0 in a header is also invalid (v0 is headerless).
	bad := []byte{0xCA, 'G', 'V', 'T', 0x00, 0x00}
	if _, err := NewReader(bytes.NewReader(bad)).Next(); err == nil {
		t.Fatal("headered version 0 did not error")
	}
}

func TestErrorsCarryOffset(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Commit(Commit{LP: 1, T: 1})
	w.Rollback(Rollback{Worker: 1, Depth: 2})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncate mid-way through the rollback record.
	cut := full[:len(full)-5]
	r := NewReader(bytes.NewReader(cut))
	var err error
	for err == nil {
		_, err = r.Next()
	}
	if err == io.EOF {
		t.Fatal("truncated rollback read as clean EOF")
	}
	if !strings.Contains(err.Error(), "offset") || !strings.Contains(err.Error(), "rollback") {
		t.Errorf("truncation error lacks offset/record type: %v", err)
	}
	if r.Offset() != int64(len(cut)) {
		t.Errorf("Offset() = %d, want %d", r.Offset(), len(cut))
	}

	// Corrupt a record kind byte; the error must name its offset.
	bad := append([]byte(nil), full...)
	kindOff := headerLen + 25 // first byte of the rollback record
	bad[kindOff] = 200
	r = NewReader(bytes.NewReader(bad))
	err = nil
	for err == nil {
		_, err = r.Next()
	}
	want := fmt.Sprintf("offset %d", kindOff)
	if !strings.Contains(err.Error(), "unknown record type 200") || !strings.Contains(err.Error(), want) {
		t.Errorf("corruption error = %v, want unknown type at %s", err, want)
	}
}

func TestForEach(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Commit(Commit{LP: 1, T: 1})
	w.Round(Round{Round: 1, GVT: 1})
	w.Rollback(Rollback{Worker: 0, Depth: 3})
	w.MPISend(MPISend{Bytes: 10})
	w.MPIRecv(MPIRecv{Bytes: 10})
	w.Phase(Phase{Phase: PhaseGVT})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var commits, rounds, rollbacks, sends, recvs, phases int
	err := NewReader(&buf).ForEach(Visitor{
		Commit:   func(Commit) { commits++ },
		Round:    func(Round) { rounds++ },
		Rollback: func(Rollback) { rollbacks++ },
		MPISend:  func(MPISend) { sends++ },
		MPIRecv:  func(MPIRecv) { recvs++ },
		Phase:    func(Phase) { phases++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if commits != 1 || rounds != 1 || rollbacks != 1 || sends != 1 || recvs != 1 || phases != 1 {
		t.Errorf("visitor counts: %d %d %d %d %d %d", commits, rounds, rollbacks, sends, recvs, phases)
	}
}

func TestSummarizeV1(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Rollback(Rollback{Depth: 4})
	w.Rollback(Rollback{Depth: 9, Anti: true})
	w.MPISend(MPISend{Bytes: 100})
	w.MPISend(MPISend{Bytes: 50})
	w.MPIRecv(MPIRecv{Bytes: 100})
	w.Phase(Phase{Phase: PhaseIdle})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Version != Version {
		t.Errorf("version = %d", s.Version)
	}
	if s.Rollbacks != 2 || s.RolledBack != 13 || s.MaxRollbackDepth != 9 {
		t.Errorf("rollback summary = %+v", s)
	}
	if s.MPISends != 2 || s.MPISendBytes != 150 || s.MPIRecvs != 1 || s.PhaseRecords != 1 {
		t.Errorf("mpi/phase summary = %+v", s)
	}
}

func TestPhaseName(t *testing.T) {
	for ph, want := range map[uint8]string{
		PhaseProcessing: "processing", PhaseIdle: "idle",
		PhaseBarrier: "barrier", PhaseGVT: "gvt", 200: "phase(200)",
	} {
		if got := PhaseName(ph); got != want {
			t.Errorf("PhaseName(%d) = %q, want %q", ph, got, want)
		}
	}
}

func TestEmptyStream(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty stream: want EOF, got %v", err)
	}
	// Header-only stream (writer flushed with no records).
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r = NewReader(&buf)
	if v, err := r.Version(); err != nil || v != Version {
		t.Fatalf("header-only version = %d, %v", v, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("header-only stream: want EOF, got %v", err)
	}
}

func TestRoundTripFault(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	faults := []Fault{
		{Kind: FaultDrop, Src: 1, Dst: 2, AtNanos: 1000},
		{Kind: FaultJitter, Src: 2, Dst: 0, AtNanos: 2000, DelayNanos: 450},
		{Kind: FaultWatchdogRestart, Src: 0, AtNanos: 3000},
	}
	for _, f := range faults {
		w.Fault(f)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Faults != int64(len(faults)) {
		t.Errorf("writer.Faults = %d, want %d", w.Faults, len(faults))
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	for _, want := range faults {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != any(want) {
			t.Errorf("got %+v, want %+v", got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}

	s, err := Summarize(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Faults != 3 || s.FaultsByKind[FaultDrop] != 1 || s.FaultsByKind[FaultWatchdogRestart] != 1 {
		t.Errorf("summary faults: %d %v", s.Faults, s.FaultsByKind)
	}
}

func TestFaultName(t *testing.T) {
	for k := uint8(0); k < NumFaultKinds; k++ {
		if strings.Contains(FaultName(k), "fault(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if FaultName(200) != "fault(200)" {
		t.Errorf("unknown kind: %q", FaultName(200))
	}
}
