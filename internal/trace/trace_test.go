package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Commit(Commit{LP: 3, T: 1.5, Src: 2, Seq: 9})
	w.Round(Round{Round: 1, GVT: 1.0, AtNanos: 5000, Sync: true, Efficiency: 0.75})
	w.Commit(Commit{LP: 4, T: 2.5, Src: 3, Seq: 10})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Commits != 2 || w.Rounds != 1 {
		t.Errorf("writer counts: %d commits %d rounds", w.Commits, w.Rounds)
	}

	r := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	c := rec.(Commit)
	if c.LP != 3 || c.T != 1.5 || c.Src != 2 || c.Seq != 9 {
		t.Errorf("commit = %+v", c)
	}
	rec, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	rd := rec.(Round)
	if rd.Round != 1 || rd.GVT != 1.0 || rd.AtNanos != 5000 || !rd.Sync || rd.Efficiency != 0.75 {
		t.Errorf("round = %+v", rd)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Commit(Commit{LP: 1, T: 1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := NewReader(bytes.NewReader(cut)).Next(); err == nil {
		t.Error("truncated record did not error")
	}
}

func TestUnknownRecord(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{99})).Next(); err == nil {
		t.Error("unknown record type did not error")
	}
}

func TestSummarize(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		w.Commit(Commit{LP: uint32(i % 3), T: float64(i)})
	}
	w.Round(Round{Round: 1, GVT: 5, Sync: false})
	w.Round(Round{Round: 2, GVT: 9, Sync: true, Efficiency: 0.5})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Commits != 10 || s.Rounds != 2 || s.SyncRounds != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.FinalGVT != 9 || s.MaxT != 9 {
		t.Errorf("FinalGVT=%v MaxT=%v", s.FinalGVT, s.MaxT)
	}
	if s.PerLP[0] != 4 || s.PerLP[1] != 3 || s.PerLP[2] != 3 {
		t.Errorf("PerLP = %v", s.PerLP)
	}
}

// Property: any sequence of records round-trips.
func TestRoundTripProperty(t *testing.T) {
	prop := func(lps []uint32, ts []float64, gvts []float64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var want []any
		n := len(lps)
		if len(ts) < n {
			n = len(ts)
		}
		for i := 0; i < n; i++ {
			c := Commit{LP: lps[i], T: ts[i], Src: lps[i] + 1, Seq: uint64(i)}
			w.Commit(c)
			want = append(want, c)
		}
		for i, g := range gvts {
			r := Round{Round: int64(i), GVT: g, Sync: i%2 == 0, Efficiency: 0.5}
			w.Round(r)
			want = append(want, r)
		}
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		for _, exp := range want {
			got, err := r.Next()
			if err != nil || got != exp {
				return false
			}
		}
		_, err := r.Next()
		return err == io.EOF
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
