package fabric

import (
	"testing"

	"repro/internal/sim"
)

func TestTransferTime(t *testing.T) {
	p := Params{Latency: 100, BytesPerSec: 1e9} // 1 GB/s: 1 byte = 1ns
	if got := p.TransferTime(0); got != 100 {
		t.Errorf("TransferTime(0) = %d, want 100", got)
	}
	if got := p.TransferTime(1000); got != 1100 {
		t.Errorf("TransferTime(1000) = %d, want 1100", got)
	}
	inf := Params{Latency: 50}
	if got := inf.TransferTime(1 << 30); got != 50 {
		t.Errorf("infinite bandwidth TransferTime = %d, want 50", got)
	}
}

func TestDeliveryLatency(t *testing.T) {
	env := sim.NewEnv()
	f := New(env, 2, Params{Latency: 500})
	var arrived sim.Time
	var got Packet
	f.Attach(0, func(Packet) {})
	f.Attach(1, func(p Packet) { arrived, got = env.Now(), p })
	env.Spawn("sender", func(p *sim.Proc) {
		p.Advance(10)
		f.Send(Packet{Src: 0, Dst: 1, Tag: 7, Size: 64, Payload: "x"})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if arrived != 510 {
		t.Errorf("arrived at %d, want 510", arrived)
	}
	if got.Tag != 7 || got.Payload != "x" || got.Src != 0 {
		t.Errorf("packet mangled: %+v", got)
	}
	if f.MessagesSent != 1 || f.BytesSent != 64 {
		t.Errorf("stats: %d msgs %d bytes", f.MessagesSent, f.BytesSent)
	}
}

func TestPerLinkFIFO(t *testing.T) {
	env := sim.NewEnv()
	// Big first message, tiny second: second must not overtake.
	f := New(env, 2, Params{Latency: 100, BytesPerSec: 1e9})
	var order []int
	f.Attach(0, func(Packet) {})
	f.Attach(1, func(p Packet) { order = append(order, p.Tag) })
	env.Spawn("sender", func(p *sim.Proc) {
		f.Send(Packet{Src: 0, Dst: 1, Tag: 1, Size: 1_000_000}) // 1ms transfer
		p.Advance(1)
		f.Send(Packet{Src: 0, Dst: 1, Tag: 2, Size: 0}) // would arrive first
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("delivery order = %v, want [1 2]", order)
	}
}

func TestIndependentLinksDoNotSerialize(t *testing.T) {
	env := sim.NewEnv()
	f := New(env, 3, Params{Latency: 100, BytesPerSec: 1e9})
	arrival := map[int]sim.Time{}
	f.Attach(0, func(Packet) {})
	f.Attach(1, func(p Packet) { arrival[p.Tag] = env.Now() })
	f.Attach(2, func(p Packet) { arrival[p.Tag] = env.Now() })
	env.Spawn("sender", func(p *sim.Proc) {
		f.Send(Packet{Src: 0, Dst: 1, Tag: 1, Size: 1_000_000})
		f.Send(Packet{Src: 0, Dst: 2, Tag: 2, Size: 0})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if arrival[2] != 100 {
		t.Errorf("small message on independent link arrived at %d, want 100", arrival[2])
	}
	if arrival[1] <= arrival[2] {
		t.Errorf("big message arrived at %d, small at %d", arrival[1], arrival[2])
	}
}

func TestSendToUnattachedPanics(t *testing.T) {
	env := sim.NewEnv()
	f := New(env, 2, Params{})
	f.Attach(0, func(Packet) {})
	env.Spawn("sender", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("send to unattached endpoint did not panic")
			}
		}()
		f.Send(Packet{Src: 0, Dst: 1})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleAttachPanics(t *testing.T) {
	env := sim.NewEnv()
	f := New(env, 1, Params{})
	f.Attach(0, func(Packet) {})
	defer func() {
		if recover() == nil {
			t.Error("double attach did not panic")
		}
	}()
	f.Attach(0, func(Packet) {})
}

func TestEthernetDefaults(t *testing.T) {
	p := EthernetDefaults()
	if p.Latency <= 0 || p.BytesPerSec <= 0 {
		t.Error("defaults not positive")
	}
}
