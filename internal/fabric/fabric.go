// Package fabric models the cluster interconnect (the paper's 10 GBit
// Ethernet): point-to-point links between node endpoints with a
// per-message wire latency, a bandwidth term proportional to message size,
// and in-order delivery per (source, destination) pair, as TCP-backed MPI
// provides.
//
// The fabric charges *wire* time only; sender/receiver CPU costs (MPI
// software overhead, the MPI lock) belong to package mpi.
package fabric

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Params describes the interconnect.
type Params struct {
	// Latency is the one-way wire + stack latency per message.
	Latency sim.Time
	// BytesPerSec is the link bandwidth. Zero means infinite.
	BytesPerSec float64
}

// EthernetDefaults returns parameters approximating the paper's 10 GbE
// fabric: ~30µs one-way latency (kernel TCP stack on the slow KNL cores),
// 1.25 GB/s.
func EthernetDefaults() Params {
	return Params{Latency: 30 * sim.Microsecond, BytesPerSec: 1.25e9}
}

// TransferTime returns the wire occupancy for a message of n bytes.
func (p Params) TransferTime(n int) sim.Time {
	if p.BytesPerSec <= 0 {
		return p.Latency
	}
	return p.Latency + sim.Time(float64(n)/p.BytesPerSec*float64(sim.Second))
}

// Packet is one message in flight.
type Packet struct {
	Src, Dst int
	Tag      int
	Size     int // wire bytes, used for the bandwidth term
	Payload  any
	// Seq and Ctl belong to the reliable-transport header (package mpi):
	// Seq is the per-link sequence number, Ctl distinguishes raw (0),
	// sequenced data, and ack frames. The fabric carries them opaquely.
	Seq uint64
	Ctl uint8
}

// Handler consumes packets as they are delivered to an endpoint. It runs
// in scheduler-callback context and must not block.
type Handler func(Packet)

// Fabric connects a fixed set of endpoints.
type Fabric struct {
	env      *sim.Env
	params   Params
	handlers []Handler
	// lastArrival enforces per-(src,dst) FIFO ordering even when a large
	// message is overtaken in raw transfer time by a small one.
	lastArrival map[linkKey]sim.Time
	// Stats
	MessagesSent      int64
	BytesSent         int64
	MessagesDelivered int64
	BytesDelivered    int64

	// FaultHook, if set, observes every injected fault (for tracing).
	FaultHook func(FaultEvent)

	// Fault-injection state; nil faults means a perfect wire.
	faults      *FaultPlan
	frng        *rng.Stream
	fstats      FaultStats
	inflight    map[uint64]Packet
	inflightSeq uint64
}

type linkKey struct{ src, dst int }

// New returns a fabric with n endpoints. Handlers must be attached with
// Attach before any Send to that endpoint.
func New(env *sim.Env, n int, params Params) *Fabric {
	return &Fabric{
		env:         env,
		params:      params,
		handlers:    make([]Handler, n),
		lastArrival: make(map[linkKey]sim.Time),
	}
}

// Params returns the interconnect parameters.
func (f *Fabric) Params() Params { return f.params }

// Attach registers the delivery handler for endpoint id.
func (f *Fabric) Attach(id int, h Handler) {
	if f.handlers[id] != nil {
		panic(fmt.Sprintf("fabric: endpoint %d already attached", id))
	}
	f.handlers[id] = h
}

// Send puts pkt on the wire at the current virtual time. Delivery happens
// after latency plus the bandwidth term, no earlier than any previously
// sent message on the same (src, dst) link. Under a fault plan the packet
// may additionally be dropped, duplicated, or jitter-delayed; a lossy wire
// does not preserve FIFO order (the reliable transport in package mpi
// restores it).
func (f *Fabric) Send(pkt Packet) {
	if pkt.Dst < 0 || pkt.Dst >= len(f.handlers) {
		panic(fmt.Sprintf("fabric: send to endpoint %d outside [0,%d) (src %d, tag %d)",
			pkt.Dst, len(f.handlers), pkt.Src, pkt.Tag))
	}
	if pkt.Src < 0 || pkt.Src >= len(f.handlers) {
		panic(fmt.Sprintf("fabric: send from endpoint %d outside [0,%d) (dst %d, tag %d)",
			pkt.Src, len(f.handlers), pkt.Dst, pkt.Tag))
	}
	h := f.handlers[pkt.Dst]
	if h == nil {
		panic(fmt.Sprintf("fabric: send to unattached endpoint %d", pkt.Dst))
	}
	if f.faults == nil {
		arrival := f.env.Now() + f.params.TransferTime(pkt.Size)
		key := linkKey{pkt.Src, pkt.Dst}
		if prev := f.lastArrival[key]; arrival < prev {
			arrival = prev
		}
		f.lastArrival[key] = arrival
		f.transmit(pkt, arrival-f.env.Now(), h)
		return
	}
	// Fault path. Each physical transmission attempt draws its own faults;
	// no FIFO clamp — a lossy, jittery wire reorders freely.
	lf := f.faults.linkFor(pkt.Src, pkt.Dst)
	base := f.params.TransferTime(pkt.Size)
	if extra, dropped := f.faultedDelay(&pkt, lf); !dropped {
		f.transmit(pkt, base+extra, h)
	}
	if lf.Duplicate > 0 && f.frng.Float64() < lf.Duplicate {
		if extra, dropped := f.faultedDelay(&pkt, lf); !dropped {
			f.fault(FaultDuplicate, pkt.Src, pkt.Dst, 0)
			f.transmit(pkt, base+extra, h)
		}
	}
}

// transmit schedules one physical delivery of pkt after delay, keeping the
// wire counters and the in-flight index (when tracking is enabled).
func (f *Fabric) transmit(pkt Packet, delay sim.Time, h Handler) {
	f.MessagesSent++
	f.BytesSent += int64(pkt.Size)
	var id uint64
	if f.inflight != nil {
		f.inflightSeq++
		id = f.inflightSeq
		f.inflight[id] = pkt
	}
	f.env.After(delay, func() {
		f.MessagesDelivered++
		f.BytesDelivered += int64(pkt.Size)
		if f.inflight != nil {
			delete(f.inflight, id)
		}
		h(pkt)
	})
}

// InFlight returns the messages and bytes currently on the wire: sent
// but not yet delivered.
func (f *Fabric) InFlight() (msgs, bytes int64) {
	return f.MessagesSent - f.MessagesDelivered, f.BytesSent - f.BytesDelivered
}
