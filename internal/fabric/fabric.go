// Package fabric models the cluster interconnect (the paper's 10 GBit
// Ethernet): point-to-point links between node endpoints with a
// per-message wire latency, a bandwidth term proportional to message size,
// and in-order delivery per (source, destination) pair, as TCP-backed MPI
// provides.
//
// The fabric charges *wire* time only; sender/receiver CPU costs (MPI
// software overhead, the MPI lock) belong to package mpi.
package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// Params describes the interconnect.
type Params struct {
	// Latency is the one-way wire + stack latency per message.
	Latency sim.Time
	// BytesPerSec is the link bandwidth. Zero means infinite.
	BytesPerSec float64
}

// EthernetDefaults returns parameters approximating the paper's 10 GbE
// fabric: ~30µs one-way latency (kernel TCP stack on the slow KNL cores),
// 1.25 GB/s.
func EthernetDefaults() Params {
	return Params{Latency: 30 * sim.Microsecond, BytesPerSec: 1.25e9}
}

// TransferTime returns the wire occupancy for a message of n bytes.
func (p Params) TransferTime(n int) sim.Time {
	if p.BytesPerSec <= 0 {
		return p.Latency
	}
	return p.Latency + sim.Time(float64(n)/p.BytesPerSec*float64(sim.Second))
}

// Packet is one message in flight.
type Packet struct {
	Src, Dst int
	Tag      int
	Size     int // wire bytes, used for the bandwidth term
	Payload  any
}

// Handler consumes packets as they are delivered to an endpoint. It runs
// in scheduler-callback context and must not block.
type Handler func(Packet)

// Fabric connects a fixed set of endpoints.
type Fabric struct {
	env      *sim.Env
	params   Params
	handlers []Handler
	// lastArrival enforces per-(src,dst) FIFO ordering even when a large
	// message is overtaken in raw transfer time by a small one.
	lastArrival map[linkKey]sim.Time
	// Stats
	MessagesSent      int64
	BytesSent         int64
	MessagesDelivered int64
	BytesDelivered    int64
}

type linkKey struct{ src, dst int }

// New returns a fabric with n endpoints. Handlers must be attached with
// Attach before any Send to that endpoint.
func New(env *sim.Env, n int, params Params) *Fabric {
	return &Fabric{
		env:         env,
		params:      params,
		handlers:    make([]Handler, n),
		lastArrival: make(map[linkKey]sim.Time),
	}
}

// Attach registers the delivery handler for endpoint id.
func (f *Fabric) Attach(id int, h Handler) {
	if f.handlers[id] != nil {
		panic(fmt.Sprintf("fabric: endpoint %d already attached", id))
	}
	f.handlers[id] = h
}

// Send puts pkt on the wire at the current virtual time. Delivery happens
// after latency plus the bandwidth term, no earlier than any previously
// sent message on the same (src, dst) link.
func (f *Fabric) Send(pkt Packet) {
	h := f.handlers[pkt.Dst]
	if h == nil {
		panic(fmt.Sprintf("fabric: send to unattached endpoint %d", pkt.Dst))
	}
	arrival := f.env.Now() + f.params.TransferTime(pkt.Size)
	key := linkKey{pkt.Src, pkt.Dst}
	if prev := f.lastArrival[key]; arrival < prev {
		arrival = prev
	}
	f.lastArrival[key] = arrival
	f.MessagesSent++
	f.BytesSent += int64(pkt.Size)
	f.env.After(arrival-f.env.Now(), func() {
		f.MessagesDelivered++
		f.BytesDelivered += int64(pkt.Size)
		h(pkt)
	})
}

// InFlight returns the messages and bytes currently on the wire: sent
// but not yet delivered.
func (f *Fabric) InFlight() (msgs, bytes int64) {
	return f.MessagesSent - f.MessagesDelivered, f.BytesSent - f.BytesDelivered
}
