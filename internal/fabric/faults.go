// Fault injection: a deterministic model of the failures a real 10 GbE
// cluster exhibits — packet loss, duplication, delay jitter, timed link
// degradation/partition windows, and straggler nodes — so the GVT
// algorithms can be exercised under the conditions "Time Warp on the Go"
// style deployments face instead of a perfect wire.
//
// All randomness comes from one dedicated xoshiro stream seeded
// independently of the model streams, so enabling faults never perturbs
// model-level random draws, and a (seed, plan) pair replays bit-identically.
// With no plan installed the fabric behaves exactly as before: no RNG
// draws, no extra bookkeeping, byte-identical runs.
package fabric

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// FaultKind labels one injected fault occurrence.
type FaultKind uint8

const (
	// FaultDrop is a packet silently lost on the wire.
	FaultDrop FaultKind = iota
	// FaultDuplicate is a packet delivered twice (e.g. a spurious TCP/NIC
	// retransmission).
	FaultDuplicate
	// FaultJitter is a packet delayed beyond its nominal transfer time.
	FaultJitter
	// FaultWindowDrop is a packet lost inside a degradation/partition window.
	FaultWindowDrop
)

// String returns the fault kind name.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultJitter:
		return "jitter"
	case FaultWindowDrop:
		return "window-drop"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// FaultEvent describes one injected fault, delivered to Fabric.FaultHook
// as it happens (for tracing and metrics).
type FaultEvent struct {
	Kind     FaultKind
	Src, Dst int
	At       sim.Time
	// Delay is the extra latency added (jitter and window degradation only).
	Delay sim.Time
}

// LinkFaults is the per-link steady-state fault profile.
type LinkFaults struct {
	// Drop is the probability a packet is silently lost.
	Drop float64
	// Duplicate is the probability a packet is delivered twice.
	Duplicate float64
	// Jitter is the maximum extra delivery delay; each packet draws a
	// uniform delay in [0, Jitter). Zero disables jitter.
	Jitter sim.Time
}

func (l LinkFaults) validate() error {
	if l.Drop < 0 || l.Drop > 1 || l.Duplicate < 0 || l.Duplicate > 1 {
		return fmt.Errorf("fabric: fault probabilities must be in [0,1], got drop=%v dup=%v", l.Drop, l.Duplicate)
	}
	if l.Drop == 1 {
		return fmt.Errorf("fabric: steady-state drop probability 1 makes the link permanently dead; use a partition Window instead")
	}
	if l.Jitter < 0 {
		return fmt.Errorf("fabric: negative jitter %v", l.Jitter)
	}
	return nil
}

// LinkID identifies a directed link.
type LinkID struct{ Src, Dst int }

// Window is a periodic link-degradation window: during
// [k*Every, k*Every+Open) for every integer k >= 0, matching packets are
// dropped with probability Drop and surviving ones are delayed by
// ExtraLatency. A Window with Drop=1 is a periodic partition.
type Window struct {
	// Src and Dst select the affected links; -1 matches any endpoint.
	Src, Dst int
	// Every is the period; Open is how long the window stays open each
	// period. Open must be < Every.
	Every, Open sim.Time
	// Drop is the loss probability while the window is open.
	Drop float64
	// ExtraLatency is added to surviving packets while the window is open.
	ExtraLatency sim.Time
}

func (w Window) validate() error {
	if w.Every <= 0 || w.Open <= 0 || w.Open >= w.Every {
		return fmt.Errorf("fabric: window needs 0 < Open < Every, got open=%v every=%v", w.Open, w.Every)
	}
	if w.Drop < 0 || w.Drop > 1 {
		return fmt.Errorf("fabric: window drop must be in [0,1], got %v", w.Drop)
	}
	if w.ExtraLatency < 0 {
		return fmt.Errorf("fabric: negative window latency %v", w.ExtraLatency)
	}
	return nil
}

// matches reports whether the window applies to the (src, dst) link.
func (w Window) matches(src, dst int) bool {
	return (w.Src < 0 || w.Src == src) && (w.Dst < 0 || w.Dst == dst)
}

// open reports whether the window is open at virtual time t.
func (w Window) open(t sim.Time) bool {
	return t%w.Every < w.Open
}

// FaultPlan is a complete deterministic fault schedule for a run.
// A nil plan means a perfect fabric.
type FaultPlan struct {
	// Link is the default steady-state profile applied to every link.
	Link LinkFaults
	// Links overrides the default for specific directed links.
	Links map[LinkID]LinkFaults
	// Windows are periodic degradation/partition windows.
	Windows []Window
	// Straggler maps an endpoint (node) id to a core slowdown factor
	// (>= 1). The fabric itself ignores it; the engine applies it through
	// the node's CPU cost model.
	Straggler map[int]float64
}

// Validate checks the plan against a fabric of n endpoints.
func (p *FaultPlan) Validate(n int) error {
	if err := p.Link.validate(); err != nil {
		return err
	}
	for id, lf := range p.Links {
		if id.Src < 0 || id.Src >= n || id.Dst < 0 || id.Dst >= n {
			return fmt.Errorf("fabric: fault link %v outside [0,%d)", id, n)
		}
		if err := lf.validate(); err != nil {
			return err
		}
	}
	for _, w := range p.Windows {
		if err := w.validate(); err != nil {
			return err
		}
		if w.Src >= n || w.Dst >= n {
			return fmt.Errorf("fabric: window endpoints (%d,%d) outside [0,%d)", w.Src, w.Dst, n)
		}
	}
	for node, f := range p.Straggler {
		if node < 0 || node >= n {
			return fmt.Errorf("fabric: straggler node %d outside [0,%d)", node, n)
		}
		if f < 1 {
			return fmt.Errorf("fabric: straggler factor %v for node %d must be >= 1", f, node)
		}
	}
	return nil
}

// linkFor returns the effective profile for a directed link.
func (p *FaultPlan) linkFor(src, dst int) LinkFaults {
	if lf, ok := p.Links[LinkID{src, dst}]; ok {
		return lf
	}
	return p.Link
}

// ScenarioNames lists the built-in fault scenarios, in severity order.
func ScenarioNames() []string {
	return []string{"drop", "duplicate", "jitter", "partition", "straggler", "chaos"}
}

// Scenario returns a built-in fault plan by name for a fabric of n
// endpoints. The built-ins are sized against the default Ethernet
// parameters (30µs latency): jitter an order of magnitude above the wire
// latency, partition windows long enough to stall several retransmit
// timeouts, straggler factors in the range real heterogeneous KNL nodes
// showed.
func Scenario(name string, n int) (*FaultPlan, error) {
	last := n - 1
	switch name {
	case "", "none":
		return nil, nil
	case "drop":
		return &FaultPlan{Link: LinkFaults{Drop: 0.15}}, nil
	case "duplicate":
		return &FaultPlan{Link: LinkFaults{Duplicate: 0.15}}, nil
	case "jitter":
		return &FaultPlan{Link: LinkFaults{Jitter: 300 * sim.Microsecond}}, nil
	case "partition":
		// Node 0 (the GVT ring master) periodically unreachable in both
		// directions: the worst placement for control-message liveness.
		return &FaultPlan{Windows: []Window{
			{Src: -1, Dst: 0, Every: sim.Millisecond, Open: 150 * sim.Microsecond, Drop: 1},
			{Src: 0, Dst: -1, Every: sim.Millisecond, Open: 150 * sim.Microsecond, Drop: 1},
		}}, nil
	case "straggler":
		return &FaultPlan{Straggler: map[int]float64{last: 4}}, nil
	case "chaos":
		return &FaultPlan{
			Link: LinkFaults{Drop: 0.08, Duplicate: 0.08, Jitter: 150 * sim.Microsecond},
			Windows: []Window{
				{Src: -1, Dst: 0, Every: 2 * sim.Millisecond, Open: 100 * sim.Microsecond, Drop: 1},
			},
			Straggler: map[int]float64{last: 2},
		}, nil
	}
	return nil, fmt.Errorf("fabric: unknown fault scenario %q (have: none drop duplicate jitter partition straggler chaos)", name)
}

// SetFaults installs a fault plan, seeding the dedicated fault RNG stream.
// It also enables in-flight packet tracking (see ForEachInFlight) so GVT
// invariant checks can observe packets held on the faulty wire. Must be
// called before any Send; a nil plan is a no-op.
func (f *Fabric) SetFaults(plan *FaultPlan, seed uint64) error {
	if plan == nil {
		return nil
	}
	if err := plan.Validate(len(f.handlers)); err != nil {
		return err
	}
	f.faults = plan
	f.frng = rng.New(seed)
	f.EnableTracking()
	return nil
}

// Faults returns the installed fault plan (nil for a perfect fabric).
func (f *Fabric) Faults() *FaultPlan { return f.faults }

// EnableTracking makes the fabric retain an index of in-flight packets for
// ForEachInFlight. It is automatically enabled by SetFaults and costs
// nothing in virtual time.
func (f *Fabric) EnableTracking() {
	if f.inflight == nil {
		f.inflight = make(map[uint64]Packet)
	}
}

// ForEachInFlight visits every packet currently on the wire (sent but not
// yet delivered, dropped packets excluded). It requires EnableTracking;
// without it the callback is never invoked. Visit order is unspecified —
// callers must be order-insensitive (e.g. computing a minimum).
func (f *Fabric) ForEachInFlight(fn func(Packet)) {
	for _, pkt := range f.inflight {
		fn(pkt)
	}
}

// FaultStats is the fabric-level fault counter snapshot.
type FaultStats struct {
	Dropped       int64
	Duplicated    int64
	Jittered      int64
	WindowDropped int64
}

// Total returns the total number of injected faults.
func (s FaultStats) Total() int64 {
	return s.Dropped + s.Duplicated + s.Jittered + s.WindowDropped
}

// FaultStats returns the fault counters accumulated so far.
func (f *Fabric) FaultStats() FaultStats { return f.fstats }

// fault records one injected fault occurrence.
func (f *Fabric) fault(kind FaultKind, src, dst int, delay sim.Time) {
	switch kind {
	case FaultDrop:
		f.fstats.Dropped++
	case FaultDuplicate:
		f.fstats.Duplicated++
	case FaultJitter:
		f.fstats.Jittered++
	case FaultWindowDrop:
		f.fstats.WindowDropped++
	}
	if f.FaultHook != nil {
		f.FaultHook(FaultEvent{Kind: kind, Src: src, Dst: dst, At: f.env.Now(), Delay: delay})
	}
}

// faultedDelay applies the fault plan to one transmission attempt of pkt.
// It returns the effective extra delay beyond the nominal transfer time
// and whether the packet is dropped. Draw order is fixed (window, drop,
// jitter) so a (seed, plan) pair replays identically.
func (f *Fabric) faultedDelay(pkt *Packet, lf LinkFaults) (extra sim.Time, dropped bool) {
	now := f.env.Now()
	for _, w := range f.faults.Windows {
		if !w.matches(pkt.Src, pkt.Dst) || !w.open(now) {
			continue
		}
		if w.Drop > 0 && f.frng.Float64() < w.Drop {
			f.fault(FaultWindowDrop, pkt.Src, pkt.Dst, 0)
			return 0, true
		}
		if w.ExtraLatency > 0 {
			extra += w.ExtraLatency
		}
	}
	if lf.Drop > 0 && f.frng.Float64() < lf.Drop {
		f.fault(FaultDrop, pkt.Src, pkt.Dst, 0)
		return 0, true
	}
	if lf.Jitter > 0 {
		j := sim.Time(f.frng.Float64() * float64(lf.Jitter))
		if j > 0 {
			f.fault(FaultJitter, pkt.Src, pkt.Dst, j)
			extra += j
		}
	}
	return extra, false
}
