package fabric

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestSendBoundsCheck(t *testing.T) {
	for _, tc := range []struct {
		name string
		pkt  Packet
		want string
	}{
		{"dst high", Packet{Src: 0, Dst: 5}, "fabric: send to endpoint 5 outside [0,2)"},
		{"dst negative", Packet{Src: 0, Dst: -1}, "fabric: send to endpoint -1 outside [0,2)"},
		{"src high", Packet{Src: 9, Dst: 1}, "fabric: send from endpoint 9 outside [0,2)"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env := sim.NewEnv()
			f := New(env, 2, Params{Latency: 100})
			f.Attach(0, func(Packet) {})
			f.Attach(1, func(Packet) {})
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected panic")
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, tc.want) {
					t.Fatalf("panic = %v, want message containing %q", r, tc.want)
				}
			}()
			f.Send(tc.pkt)
		})
	}
}

func TestFaultDropAndDuplicate(t *testing.T) {
	env := sim.NewEnv()
	f := New(env, 2, Params{Latency: 100})
	if err := f.SetFaults(&FaultPlan{Link: LinkFaults{Drop: 0.3, Duplicate: 0.3}}, 42); err != nil {
		t.Fatal(err)
	}
	var delivered int
	f.Attach(0, func(Packet) {})
	f.Attach(1, func(Packet) { delivered++ })
	const n = 2000
	env.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			f.Send(Packet{Src: 0, Dst: 1, Tag: i})
			p.Advance(10)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	st := f.FaultStats()
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Fatalf("expected drops and duplicates, got %+v", st)
	}
	// Every send attempt ends delivered or dropped. Duplicate attempts add
	// extra attempts beyond n, each also delivered (counted in Duplicated)
	// or dropped (counted in Dropped), so:
	//   delivered + Dropped - Duplicated = n + (dup attempts that dropped) >= n.
	if delivered+int(st.Dropped)-int(st.Duplicated) < n {
		t.Fatalf("conservation violated: delivered=%d stats=%+v", delivered, st)
	}
	// Rough rate check: drop prob 0.3 over 2000 sends.
	if st.Dropped < n/10 || st.Dropped > n/2 {
		t.Fatalf("drop count %d wildly off 0.3 rate over %d sends", st.Dropped, n)
	}
	if msgs, _ := f.InFlight(); msgs != 0 {
		t.Fatalf("%d packets stuck in flight", msgs)
	}
}

func TestFaultDeterminism(t *testing.T) {
	run := func() (int, FaultStats, []sim.Time) {
		env := sim.NewEnv()
		f := New(env, 2, Params{Latency: 100})
		plan := &FaultPlan{Link: LinkFaults{Drop: 0.2, Duplicate: 0.2, Jitter: 500}}
		if err := f.SetFaults(plan, 7); err != nil {
			t.Fatal(err)
		}
		var delivered int
		var at []sim.Time
		f.Attach(0, func(Packet) {})
		f.Attach(1, func(Packet) { delivered++; at = append(at, env.Now()) })
		env.Spawn("sender", func(p *sim.Proc) {
			for i := 0; i < 500; i++ {
				f.Send(Packet{Src: 0, Dst: 1, Tag: i})
				p.Advance(37)
			}
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return delivered, f.FaultStats(), at
	}
	d1, s1, at1 := run()
	d2, s2, at2 := run()
	if d1 != d2 || s1 != s2 || len(at1) != len(at2) {
		t.Fatalf("non-deterministic: (%d %+v) vs (%d %+v)", d1, s1, d2, s2)
	}
	for i := range at1 {
		if at1[i] != at2[i] {
			t.Fatalf("delivery %d at %v vs %v", i, at1[i], at2[i])
		}
	}
}

func TestPartitionWindow(t *testing.T) {
	env := sim.NewEnv()
	f := New(env, 2, Params{Latency: 100})
	// Window open during [0,500) of every 1000ns period, full drop.
	plan := &FaultPlan{Windows: []Window{{Src: -1, Dst: 1, Every: 1000, Open: 500, Drop: 1}}}
	if err := f.SetFaults(plan, 1); err != nil {
		t.Fatal(err)
	}
	var got []int
	f.Attach(0, func(Packet) {})
	f.Attach(1, func(p Packet) { got = append(got, p.Tag) })
	env.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			// Sends at t=0,250,500,...: even sends land in the open window.
			f.Send(Packet{Src: 0, Dst: 1, Tag: i})
			p.Advance(250)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 6, 7} // t=500,750,1500,1750 — window closed
	if len(got) != len(want) {
		t.Fatalf("delivered tags %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered tags %v, want %v", got, want)
		}
	}
	if st := f.FaultStats(); st.WindowDropped != 6 {
		t.Fatalf("WindowDropped = %d, want 6", st.WindowDropped)
	}
}

func TestFaultHookAndInFlight(t *testing.T) {
	env := sim.NewEnv()
	f := New(env, 2, Params{Latency: 100})
	if err := f.SetFaults(&FaultPlan{Link: LinkFaults{Drop: 0.5}}, 3); err != nil {
		t.Fatal(err)
	}
	var hooked int
	f.FaultHook = func(ev FaultEvent) {
		if ev.Kind != FaultDrop || ev.Src != 0 || ev.Dst != 1 {
			t.Errorf("unexpected fault event %+v", ev)
		}
		hooked++
	}
	var inflightSeen int
	f.Attach(0, func(Packet) {})
	f.Attach(1, func(Packet) {})
	env.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			f.Send(Packet{Src: 0, Dst: 1, Tag: i})
		}
		// All surviving packets are on the wire right now.
		f.ForEachInFlight(func(Packet) { inflightSeen++ })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	st := f.FaultStats()
	if hooked == 0 || int64(hooked) != st.Dropped {
		t.Fatalf("hook fired %d times, stats %+v", hooked, st)
	}
	if inflightSeen != 100-int(st.Dropped) {
		t.Fatalf("saw %d in flight, want %d", inflightSeen, 100-st.Dropped)
	}
}

func TestScenarios(t *testing.T) {
	for _, name := range ScenarioNames() {
		plan, err := Scenario(name, 4)
		if err != nil {
			t.Fatalf("Scenario(%q): %v", name, err)
		}
		if plan == nil {
			t.Fatalf("Scenario(%q) returned nil plan", name)
		}
		if err := plan.Validate(4); err != nil {
			t.Fatalf("Scenario(%q) invalid: %v", name, err)
		}
	}
	if plan, err := Scenario("none", 4); err != nil || plan != nil {
		t.Fatalf("Scenario(none) = %v, %v", plan, err)
	}
	if _, err := Scenario("bogus", 4); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []*FaultPlan{
		{Link: LinkFaults{Drop: 1.5}},
		{Link: LinkFaults{Drop: 1}},
		{Link: LinkFaults{Jitter: -1}},
		{Links: map[LinkID]LinkFaults{{Src: 9, Dst: 0}: {}}},
		{Windows: []Window{{Every: 100, Open: 100}}},
		{Windows: []Window{{Every: 100, Open: 50, Drop: 2}}},
		{Straggler: map[int]float64{0: 0.5}},
		{Straggler: map[int]float64{9: 2}},
	}
	for i, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Errorf("plan %d: expected validation error", i)
		}
	}
}
