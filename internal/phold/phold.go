// Package phold implements the paper's modified PHOLD benchmark
// (Fujimoto [11], as adapted in §2/§4): every LP starts with a fixed
// number of events; processing an event spins for EPG work units and
// sends one new event to a destination drawn as remote (another node),
// regional (another core on the same node) or local (the LP itself)
// according to configured percentages, with an exponential time increment
// plus lookahead.
//
// The mixed X–Y models of §6 alternate between a computation-dominated
// and a communication-dominated parameter set as simulation time
// progresses, repeating the pattern over the run.
package phold

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/vtime"
)

// Phase is one parameter regime of the workload.
type Phase struct {
	RemotePct   float64 // probability a new event targets another node
	RegionalPct float64 // probability it targets another core, same node
	EPG         int     // event processing granularity (work units)
}

// ComputationDominated returns the paper's computation-dominated scenario:
// 10% regional, 1% remote, 10K EPG.
func ComputationDominated() Phase {
	return Phase{RemotePct: 0.01, RegionalPct: 0.10, EPG: 10_000}
}

// CommunicationDominated returns the paper's communication-dominated
// scenario: 90% regional, 10% remote, 5K EPG.
func CommunicationDominated() Phase {
	return Phase{RemotePct: 0.10, RegionalPct: 0.90, EPG: 5_000}
}

// Params configures the benchmark.
type Params struct {
	Topology    cluster.Topology
	StartEvents int     // initial events per LP (paper: 1)
	MeanDelay   float64 // exponential mean of the time increment
	Lookahead   float64 // constant floor added to every increment

	// Base is the single-phase workload.
	Base Phase

	// Mixed, when non-nil, alternates Base (computation) with Comm for
	// the paper's X–Y models: CompFrac percent of the end time in Base,
	// then CommFrac percent in Comm, repeating.
	Mixed *MixedModel
}

// MixedModel is the paper's X–Y alternating workload.
type MixedModel struct {
	Comm     Phase
	CompFrac float64 // X, in percent of end time
	CommFrac float64 // Y, in percent of end time
	EndTime  vtime.Time
}

// Defaults fills zero fields.
func (p *Params) Defaults() {
	if p.StartEvents == 0 {
		p.StartEvents = 1
	}
	if p.MeanDelay == 0 {
		p.MeanDelay = 1.0
	}
	if p.Lookahead == 0 {
		p.Lookahead = 0.1
	}
}

// Validate reports parameter errors.
func (p *Params) Validate() error {
	if err := p.Topology.Validate(); err != nil {
		return err
	}
	check := func(ph Phase) error {
		if ph.RemotePct < 0 || ph.RegionalPct < 0 || ph.RemotePct+ph.RegionalPct > 1 {
			return fmt.Errorf("phold: invalid destination percentages %+v", ph)
		}
		if ph.EPG < 0 {
			return fmt.Errorf("phold: negative EPG %d", ph.EPG)
		}
		return nil
	}
	if err := check(p.Base); err != nil {
		return err
	}
	if p.Mixed != nil {
		if err := check(p.Mixed.Comm); err != nil {
			return err
		}
		if p.Mixed.CompFrac <= 0 || p.Mixed.CommFrac <= 0 {
			return fmt.Errorf("phold: mixed fractions must be positive")
		}
		if p.Mixed.EndTime <= 0 {
			return fmt.Errorf("phold: mixed model needs EndTime")
		}
	}
	if p.Topology.Nodes == 1 && p.Base.RemotePct > 0 {
		return fmt.Errorf("phold: remote percentage with a single node")
	}
	return nil
}

// PhaseAt returns the active phase at simulation time t.
func (p *Params) PhaseAt(t vtime.Time) Phase {
	if p.Mixed == nil {
		return p.Base
	}
	m := p.Mixed
	compLen := m.EndTime * m.CompFrac / 100
	commLen := m.EndTime * m.CommFrac / 100
	cycle := compLen + commLen
	pos := t - cycle*float64(int(t/cycle))
	if pos < compLen {
		return p.Base
	}
	return m.Comm
}

// New returns the model factory for these parameters.
func New(p Params) core.ModelFactory {
	p.Defaults()
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return func(lp event.LPID, total int) core.Model {
		return &Model{p: &p, self: lp}
	}
}

// Model is one PHOLD LP.
type Model struct {
	p    *Params
	self event.LPID
	// processed counts events handled; it is the LP's (minimal) rollback-
	// protected state, exercising the snapshot machinery.
	processed int64
}

// Init seeds the starting events, addressed to the LP itself.
func (m *Model) Init(ctx core.Context) {
	for i := 0; i < m.p.StartEvents; i++ {
		ctx.Send(m.self, m.delay(ctx), 0, nil)
	}
}

// OnEvent spins for the phase's EPG and forwards one event to a randomly
// drawn destination.
func (m *Model) OnEvent(ctx core.Context, _ *event.Event) {
	ph := m.p.PhaseAt(ctx.Now())
	// Draw destination and delay first so the RNG consumption order is
	// identical between the parallel engine and the sequential oracle.
	dst := m.pick(ctx, ph)
	d := m.delay(ctx)
	ctx.Spin(ph.EPG)
	m.processed++
	ctx.Send(dst, d, 0, nil)
}

// delay draws the time increment: lookahead + Exp(mean).
func (m *Model) delay(ctx core.Context) vtime.Time {
	return m.p.Lookahead + ctx.RNG().Exp(m.p.MeanDelay)
}

// pick draws the destination LP per the phase's locality percentages.
func (m *Model) pick(ctx core.Context, ph Phase) event.LPID {
	top := m.p.Topology
	u := ctx.RNG().Float64()
	switch {
	case u < ph.RemotePct && top.Nodes > 1:
		// Uniform LP on a different node.
		myNode := top.NodeOf(m.self)
		n := ctx.RNG().Intn(top.Nodes - 1)
		if n >= myNode {
			n++
		}
		perNode := top.WorkersPerNode * top.LPsPerWorker
		return event.LPID(n*perNode + ctx.RNG().Intn(perNode))
	case u < ph.RemotePct+ph.RegionalPct && top.WorkersPerNode > 1:
		// Uniform LP on the same node, different worker.
		myNode, myWorker := top.WorkerOf(m.self)
		w := ctx.RNG().Intn(top.WorkersPerNode - 1)
		if w >= myWorker {
			w++
		}
		return top.FirstLP(myNode, w) + event.LPID(ctx.RNG().Intn(top.LPsPerWorker))
	default:
		return m.self
	}
}

// Snapshot returns the LP state (the processed counter).
func (m *Model) Snapshot() any { return m.processed }

// Restore rewinds the LP state.
func (m *Model) Restore(s any) { m.processed = s.(int64) }

// Processed returns the number of events this LP has handled (net of
// rollbacks).
func (m *Model) Processed() int64 { return m.processed }
