package phold

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/rng"
	"repro/internal/seq"
)

func topo() cluster.Topology {
	return cluster.Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 4}
}

func TestScenarioConstants(t *testing.T) {
	comp := ComputationDominated()
	if comp.RemotePct != 0.01 || comp.RegionalPct != 0.10 || comp.EPG != 10_000 {
		t.Errorf("ComputationDominated = %+v", comp)
	}
	comm := CommunicationDominated()
	if comm.RemotePct != 0.10 || comm.RegionalPct != 0.90 || comm.EPG != 5_000 {
		t.Errorf("CommunicationDominated = %+v", comm)
	}
}

func TestValidate(t *testing.T) {
	good := Params{Topology: topo(), Base: ComputationDominated()}
	good.Defaults()
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Topology: topo(), Base: Phase{RemotePct: 0.6, RegionalPct: 0.6}},
		{Topology: topo(), Base: Phase{RemotePct: -0.1}},
		{Topology: topo(), Base: Phase{EPG: -1}},
		{Topology: cluster.Topology{Nodes: 1, WorkersPerNode: 1, LPsPerWorker: 1},
			Base: Phase{RemotePct: 0.5}},
		{Topology: topo(), Base: ComputationDominated(),
			Mixed: &MixedModel{Comm: CommunicationDominated(), CompFrac: 0, CommFrac: 5, EndTime: 10}},
		{Topology: topo(), Base: ComputationDominated(),
			Mixed: &MixedModel{Comm: CommunicationDominated(), CompFrac: 5, CommFrac: 5}},
	}
	for i, p := range bad {
		p.Defaults()
		if p.Validate() == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestPhaseAtSinglePhase(t *testing.T) {
	p := Params{Topology: topo(), Base: ComputationDominated()}
	p.Defaults()
	for _, tt := range []float64{0, 5, 99} {
		if p.PhaseAt(tt) != p.Base {
			t.Errorf("PhaseAt(%v) != Base", tt)
		}
	}
}

func TestPhaseAtMixedModel(t *testing.T) {
	p := Params{
		Topology: topo(),
		Base:     ComputationDominated(),
		Mixed: &MixedModel{
			Comm:     CommunicationDominated(),
			CompFrac: 10, CommFrac: 15, EndTime: 100,
		},
	}
	p.Defaults()
	// Cycle = 25 time units: [0,10) comp, [10,25) comm, repeating.
	cases := []struct {
		t    float64
		comp bool
	}{
		{0, true}, {9.99, true}, {10, false}, {24.9, false},
		{25, true}, {34.9, true}, {35, false}, {50, true},
		{60, false}, {75, true},
	}
	for _, c := range cases {
		got := p.PhaseAt(c.t) == p.Base
		if got != c.comp {
			t.Errorf("PhaseAt(%v): comp=%v, want %v", c.t, got, c.comp)
		}
	}
}

func TestDefaults(t *testing.T) {
	p := Params{Topology: topo(), Base: ComputationDominated()}
	p.Defaults()
	if p.StartEvents != 1 || p.MeanDelay != 1.0 || p.Lookahead != 0.1 {
		t.Errorf("Defaults = %+v", p)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid params did not panic")
		}
	}()
	New(Params{Topology: topo(), Base: Phase{RemotePct: 2}})
}

// TestDestinationClasses: over many draws, pick produces the configured
// locality mix (within tolerance) and never targets out of range.
func TestDestinationClasses(t *testing.T) {
	top := topo()
	p := Params{Topology: top, Base: Phase{RemotePct: 0.2, RegionalPct: 0.5, EPG: 1}}
	factory := New(p)
	e := seq.New(factory, top.TotalLPs(), 200, 5)
	r := e.Run()
	if r.Processed < 1000 {
		t.Fatalf("only %d events", r.Processed)
	}
	// Classify committed traffic by rerunning the picks via a fresh model:
	// simpler: drive one LP's pick directly through the seq context is not
	// exposed, so classify statistically via a direct draw harness below.
	m := &Model{p: &p, self: 0}
	counts := map[event.Class]int{}
	ctx := &fakeCtx{total: top.TotalLPs(), rng: rng.New(123)}
	for i := 0; i < 20000; i++ {
		dst := m.pick(ctx, p.Base)
		if int(dst) >= top.TotalLPs() {
			t.Fatalf("pick out of range: %d", dst)
		}
		counts[top.Class(0, dst)]++
	}
	remote := float64(counts[event.Remote]) / 20000
	regional := float64(counts[event.Regional]) / 20000
	local := float64(counts[event.Local]) / 20000
	if remote < 0.17 || remote > 0.23 {
		t.Errorf("remote fraction = %v, want ~0.2", remote)
	}
	if regional < 0.46 || regional > 0.54 {
		t.Errorf("regional fraction = %v, want ~0.5", regional)
	}
	if local < 0.27 || local > 0.33 {
		t.Errorf("local fraction = %v, want ~0.3", local)
	}
}

// fakeCtx is a minimal core.Context for exercising pick/delay directly.
type fakeCtx struct {
	total int
	rng   *rng.Stream
	sent  int
}

func (c *fakeCtx) Self() event.LPID                         { return 0 }
func (c *fakeCtx) Now() float64                             { return 0 }
func (c *fakeCtx) RNG() *rng.Stream                         { return c.rng }
func (c *fakeCtx) NumLPs() int                              { return c.total }
func (c *fakeCtx) Spin(int)                                 {}
func (c *fakeCtx) Send(event.LPID, float64, uint16, []byte) { c.sent++ }

var _ core.Context = (*fakeCtx)(nil)

func TestSnapshotRestore(t *testing.T) {
	p := Params{Topology: topo(), Base: ComputationDominated()}
	p.Defaults()
	m := &Model{p: &p, self: 1, processed: 42}
	snap := m.Snapshot()
	m.processed = 99
	m.Restore(snap)
	if m.Processed() != 42 {
		t.Errorf("Processed after restore = %d", m.Processed())
	}
}

// Property: PhaseAt is total and returns one of the two phases for any
// non-negative time.
func TestPhaseAtProperty(t *testing.T) {
	p := Params{
		Topology: topo(),
		Base:     ComputationDominated(),
		Mixed: &MixedModel{
			Comm:     CommunicationDominated(),
			CompFrac: 7, CommFrac: 3, EndTime: 50,
		},
	}
	p.Defaults()
	prop := func(raw float64) bool {
		tt := raw
		if tt < 0 {
			tt = -tt
		}
		if tt > 1e9 || tt != tt {
			tt = 1
		}
		ph := p.PhaseAt(tt)
		return ph == p.Base || ph == p.Mixed.Comm
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
