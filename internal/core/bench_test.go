package core_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	core "repro/internal/core"
	"repro/internal/phold"
)

// Engine-level hot-path benchmarks. Each runs a complete simulation per
// iteration and reports host ns and allocations normalized per committed
// event, under PoolOn (event recycling) and PoolOff (fresh allocation
// per event, the pre-pool behaviour). The comm-dominated workload is
// rollback-heavy — high remote traffic makes stragglers and
// annihilations common — so it exercises exactly the paths the pool
// targets: Send, anti-message copies, fossil collection.

func benchConfig(workload string, gvt core.GVTKind, pool core.PoolMode) core.Config {
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 4, LPsPerWorker: 16}
	base := phold.ComputationDominated()
	if workload == "comm" {
		base = phold.CommunicationDominated()
	}
	return core.Config{
		Topology:    top,
		GVT:         gvt,
		GVTInterval: 4,
		Comm:        core.CommDedicated,
		EndTime:     10,
		Seed:        1,
		Pool:        pool,
		Model:       phold.New(phold.Params{Topology: top, Base: base}),
	}
}

func benchEngine(b *testing.B, cfg core.Config) {
	b.ReportAllocs()
	var committed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.New(cfg).Run()
		if err != nil {
			b.Fatal(err)
		}
		committed += r.Workers.Committed
	}
	b.StopTimer()
	if committed > 0 {
		b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "events/s")
	}
}

func poolModes() []core.PoolMode { return []core.PoolMode{core.PoolOn, core.PoolOff} }

// BenchmarkRollbackHeavy: communication-dominated PHOLD, where remote
// stragglers force frequent rollbacks and anti-message traffic.
func BenchmarkRollbackHeavy(b *testing.B) {
	for _, pool := range poolModes() {
		b.Run(fmt.Sprintf("pool=%v", pool), func(b *testing.B) {
			benchEngine(b, benchConfig("comm", core.GVTMattern, pool))
		})
	}
}

// BenchmarkGVTRounds: computation-dominated PHOLD under the controlled
// asynchronous GVT algorithm — measures steady-state round cost with
// fossil collection recycling into the pool.
func BenchmarkGVTRounds(b *testing.B) {
	for _, pool := range poolModes() {
		b.Run(fmt.Sprintf("pool=%v", pool), func(b *testing.B) {
			benchEngine(b, benchConfig("comp", core.GVTControlled, pool))
		})
	}
}
