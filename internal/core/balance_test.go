package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	core "repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/models/epidemic"
	"repro/internal/models/pcs"
	"repro/internal/models/tandem"
	"repro/internal/phold"
	"repro/internal/seq"
	"repro/internal/stats"
	"repro/internal/trace"
)

// balanceModel is one benchmark model instantiated on the balance-test
// topology (2 nodes x 2 workers x 4 LPs = 16 LPs).
type balanceModel struct {
	name    string
	factory core.ModelFactory
	end     float64
}

func balanceTopology() cluster.Topology {
	return cluster.Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 4}
}

func balanceModels(top cluster.Topology) []balanceModel {
	return []balanceModel{
		{"phold", phold.New(phold.Params{
			Topology: top,
			Base:     phold.Phase{RemotePct: 0.1, RegionalPct: 0.3, EPG: 500},
		}), 30},
		{"epidemic", epidemic.New(epidemic.Params{GridW: 4, GridH: 4}), 30},
		{"pcs", pcs.New(pcs.Params{GridW: 4, GridH: 4}), 60},
		{"tandem", tandem.New(tandem.Params{}), 200},
	}
}

func balancePolicies() []string { return []string{"static", "greedy", "straggler"} }

// compModel is the paper's computation-dominated PHOLD phase (10K EPG,
// 1% remote) with several start events per LP: per-event CPU dominates
// communication, so shifting LPs off a slow node pays. This is the
// workload the migration-benefit tests measure.
func compModel(top cluster.Topology, end float64) balanceModel {
	return balanceModel{"phold-comp", phold.New(phold.Params{
		Topology:    top,
		StartEvents: 4,
		Base:        phold.ComputationDominated(),
	}), end}
}

func balanceConfig(m balanceModel, policy string, gvt core.GVTKind) core.Config {
	top := balanceTopology()
	return core.Config{
		Topology:    top,
		GVT:         gvt,
		GVTInterval: 3,
		Comm:        core.CommDedicated,
		EndTime:     m.end,
		Seed:        42,
		Model:       m.factory,
		Balance:     policy,
	}
}

func checkOracle(t *testing.T, cfg core.Config) *stats.Run {
	t.Helper()
	r, err := core.New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	ref := seq.New(cfg.Model, cfg.Topology.TotalLPs(), cfg.EndTime, cfg.Seed).Run()
	if r.CommitChecksum != ref.Checksum {
		t.Errorf("commit checksum %x != oracle %x", r.CommitChecksum, ref.Checksum)
	}
	if r.Workers.Committed != ref.Processed {
		t.Errorf("committed %d events, oracle processed %d", r.Workers.Committed, ref.Processed)
	}
	return r
}

// TestBalancedOracleEquivalence: for every policy and every benchmark
// model, the committed event stream must stay bit-identical to the
// sequential oracle. On a fault-free, evenly loaded cluster the policies
// may or may not decide to move anything; either way correctness holds.
func TestBalancedOracleEquivalence(t *testing.T) {
	for _, m := range balanceModels(balanceTopology()) {
		for _, pol := range balancePolicies() {
			t.Run(fmt.Sprintf("%s/%s", m.name, pol), func(t *testing.T) {
				checkOracle(t, balanceConfig(m, pol, core.GVTControlled))
			})
		}
	}
}

// TestBalancedOracleUnderStraggler repeats the oracle check under the
// built-in straggler fault scenario (the last node's cores run 4x
// slower), the regime the balancer exists for. Migrations must actually
// happen for the migrating policies on at least one model, and must
// never change the committed stream.
func TestBalancedOracleUnderStraggler(t *testing.T) {
	moved := map[string]int64{}
	for _, m := range balanceModels(balanceTopology()) {
		for _, pol := range balancePolicies() {
			t.Run(fmt.Sprintf("%s/%s", m.name, pol), func(t *testing.T) {
				cfg := balanceConfig(m, pol, core.GVTControlled)
				plan, err := fabric.Scenario("straggler", cfg.Topology.Nodes)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Faults = plan
				cfg.FaultLabel = "straggler"
				r := checkOracle(t, cfg)
				if pol == "static" && r.Migrations != 0 {
					t.Errorf("static policy migrated %d LPs", r.Migrations)
				}
				moved[pol] += r.Migrations
			})
		}
	}
	for _, pol := range []string{"greedy", "straggler"} {
		if moved[pol] == 0 {
			t.Errorf("policy %q never migrated an LP under the straggler scenario", pol)
		}
	}
}

// TestMigrationAcrossGVTAlgorithms drives migrating runs through every
// GVT algorithm: migration messages participate in each protocol's
// transit accounting differently (Mattern/CA message colors, the barrier
// drain loop, Samadi acknowledgements), and each must stay exact. The
// fault plan auto-enables the per-round GVT invariant check.
func TestMigrationAcrossGVTAlgorithms(t *testing.T) {
	m := compModel(balanceTopology(), 60)
	for _, g := range allGVT() {
		t.Run(g.String(), func(t *testing.T) {
			cfg := balanceConfig(m, "greedy", g)
			plan, err := fabric.Scenario("straggler", cfg.Topology.Nodes)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Faults = plan
			cfg.FaultLabel = "straggler"
			if checkOracle(t, cfg).Migrations == 0 {
				t.Errorf("%v: greedy policy never migrated under the straggler scenario", g)
			}
		})
	}
}

// TestBalanceStaticByteIdentical: Balance "static" (and "") must take
// the zero-overhead path — the whole stats.Run, virtual timing included,
// must equal a run of the same configuration without the field set.
func TestBalanceStaticByteIdentical(t *testing.T) {
	for _, g := range allGVT() {
		m := balanceModels(balanceTopology())[0]
		base := balanceConfig(m, "", g)
		a, err := core.New(base).Run()
		if err != nil {
			t.Fatal(err)
		}
		cfg := balanceConfig(m, "static", g)
		b, err := core.New(cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		if *a != *b {
			t.Errorf("%v: static balance policy perturbed the run:\n%+v\n%+v", g, a, b)
		}
	}
}

// TestBalanceDeterminism: a migrating run must replay bit-identically,
// virtual timing and migration counters included.
func TestBalanceDeterminism(t *testing.T) {
	run := func() *stats.Run {
		m := balanceModels(balanceTopology())[0]
		cfg := balanceConfig(m, "greedy", core.GVTControlled)
		plan, err := fabric.Scenario("straggler", cfg.Topology.Nodes)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = plan
		eng := core.New(cfg)
		r, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if *a != *b {
		t.Errorf("migrating runs differ:\n%+v\n%+v", a, b)
	}
}

// TestGreedyReducesStragglerWallTime is the headline regression: with
// the last node's cores 4x slower, the greedy balancer must finish the
// same simulation in measurably less virtual wall-clock than the static
// placement. The 0.95 factor is deliberately conservative — the observed
// improvement is ~25% (see EXPERIMENTS.md) — so cost-model tuning
// doesn't flake the suite while a genuine regression still fails.
func TestGreedyReducesStragglerWallTime(t *testing.T) {
	run := func(policy string) *stats.Run {
		cfg := balanceConfig(compModel(balanceTopology(), 120), policy, core.GVTControlled)
		plan, err := fabric.Scenario("straggler", cfg.Topology.Nodes)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = plan
		cfg.FaultLabel = "straggler"
		return checkOracle(t, cfg)
	}
	static := run("static")
	greedy := run("greedy")
	if greedy.Migrations == 0 {
		t.Fatal("greedy policy never migrated; nothing is being measured")
	}
	limit := static.WallTime * 95 / 100
	if greedy.WallTime > limit {
		t.Errorf("greedy did not beat static placement: wall %v vs static %v (limit %v)",
			greedy.WallTime, static.WallTime, limit)
	}
	t.Logf("straggler wall-clock: static=%v greedy=%v (%.1f%%), %d migrations",
		static.WallTime, greedy.WallTime,
		100*float64(greedy.WallTime)/float64(static.WallTime), greedy.Migrations)
}

// TestMigrationTraceAndReport: every migration must surface in the v2
// trace and in the run report, with source, destination and round.
func TestMigrationTraceAndReport(t *testing.T) {
	cfg := balanceConfig(compModel(balanceTopology(), 60), "greedy", core.GVTControlled)
	plan, err := fabric.Scenario("straggler", cfg.Topology.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	cfg.FaultLabel = "straggler"
	var buf bytes.Buffer
	cfg.Trace = trace.NewWriter(&buf)
	eng := core.New(cfg)
	r, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.Migrations == 0 {
		t.Fatal("no migrations; nothing to verify")
	}

	data := buf.Bytes()
	sum, err := trace.Summarize(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Version != trace.Version {
		t.Errorf("trace version = %d, want %d", sum.Version, trace.Version)
	}
	if sum.Migrations != r.Migrations {
		t.Errorf("trace has %d migration records, run stats say %d", sum.Migrations, r.Migrations)
	}
	if sum.MigratedEvents != r.MigratedEvents {
		t.Errorf("trace migrated events %d != run stats %d", sum.MigratedEvents, r.MigratedEvents)
	}
	total := cfg.Topology.TotalLPs()
	err = trace.NewReader(bytes.NewReader(data)).ForEach(trace.Visitor{
		Migration: func(mg trace.Migration) {
			if mg.SrcNode == mg.DstNode {
				t.Errorf("migration of LP %d has src == dst == %d", mg.LP, mg.SrcNode)
			}
			if int(mg.LP) >= total {
				t.Errorf("migration of unknown LP %d", mg.LP)
			}
			if int(mg.SrcNode) >= cfg.Topology.Nodes || int(mg.DstNode) >= cfg.Topology.Nodes {
				t.Errorf("migration names nodes %d->%d outside the cluster", mg.SrcNode, mg.DstNode)
			}
			if mg.Round <= 0 {
				t.Errorf("migration of LP %d at non-positive GVT round %d", mg.LP, mg.Round)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	rep := eng.Report(r)
	if rep.Config.Balance != "greedy" {
		t.Errorf("report balance = %q, want greedy", rep.Config.Balance)
	}
	if rep.Stats.Migrations != r.Migrations || rep.Stats.MigratedEvents != r.MigratedEvents {
		t.Error("report migration counters disagree with run stats")
	}
}

// TestBalanceConfigValidation: unknown policy names must be rejected at
// Validate time, and all published names accepted.
func TestBalanceConfigValidation(t *testing.T) {
	m := balanceModels(balanceTopology())[0]
	cfg := balanceConfig(m, "round-robin", core.GVTControlled)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown balance policy accepted")
	}
	for _, pol := range append(balancePolicies(), "", "none") {
		cfg := balanceConfig(m, pol, core.GVTControlled)
		if err := cfg.Validate(); err != nil {
			t.Errorf("policy %q rejected: %v", pol, err)
		}
	}
}
