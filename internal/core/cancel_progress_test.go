package core_test

import (
	"errors"
	"testing"

	core "repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestProgressHookEveryRound verifies the per-round progress stream: one
// update per completed GVT round, monotone rounds, cumulative counters
// consistent with the final report.
func TestProgressHookEveryRound(t *testing.T) {
	cfg := testConfig(2, 2, 8, core.GVTMattern, core.CommDedicated)
	rec := metrics.NewRecorder()
	var updates []metrics.ProgressUpdate
	rec.OnProgress = func(u metrics.ProgressUpdate) { updates = append(updates, u) }
	cfg.Metrics = rec
	eng := core.New(cfg)
	r, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(updates)) != r.GVTRounds {
		t.Fatalf("%d progress updates for %d GVT rounds", len(updates), r.GVTRounds)
	}
	for i, u := range updates {
		if u.Round != int64(i+1) {
			t.Fatalf("update %d has round %d", i, u.Round)
		}
		if u.Committed != u.Processed-u.RolledBack {
			t.Fatalf("update %d: committed %d != processed %d - rolled %d",
				i, u.Committed, u.Processed, u.RolledBack)
		}
		if i > 0 && u.AtNanos < updates[i-1].AtNanos {
			t.Fatalf("update %d goes back in virtual time", i)
		}
	}
	last := updates[len(updates)-1]
	if last.GVT != r.FinalGVT {
		t.Fatalf("last update GVT %v != final GVT %v", last.GVT, r.FinalGVT)
	}
}

// TestProgressStreamDeterministic runs the same configuration twice and
// requires identical progress streams.
func TestProgressStreamDeterministic(t *testing.T) {
	stream := func() []metrics.ProgressUpdate {
		cfg := testConfig(2, 2, 8, core.GVTControlled, core.CommDedicated)
		rec := metrics.NewRecorder()
		var ups []metrics.ProgressUpdate
		rec.OnProgress = func(u metrics.ProgressUpdate) { ups = append(ups, u) }
		cfg.Metrics = rec
		eng := core.New(cfg)
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return ups
	}
	a, b := stream(), stream()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("update %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestEngineCancelMidRun cancels from the progress hook (so the run is
// provably mid-flight) and expects sim.ErrCancelled.
func TestEngineCancelMidRun(t *testing.T) {
	cfg := testConfig(2, 2, 8, core.GVTMattern, core.CommDedicated)
	rec := metrics.NewRecorder()
	cfg.Metrics = rec
	var eng *core.Engine
	fired := false
	rec.OnProgress = func(metrics.ProgressUpdate) {
		if !fired {
			fired = true
			eng.Cancel()
		}
	}
	eng = core.New(cfg)
	r, err := eng.Run()
	if !errors.Is(err, sim.ErrCancelled) {
		t.Fatalf("Run returned (%v, %v), want sim.ErrCancelled", r, err)
	}
	if !fired {
		t.Fatal("progress hook never fired")
	}
}
