package core

import (
	"repro/internal/event"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Samadi's GVT (Samadi 1985, discussed in the paper's related work §7):
// every cross-worker message is acknowledged by its receiver, so at any
// instant every in-transit message is covered by its sender's minimum
// unacknowledged send stamp. A GVT round then needs no transit draining at
// all — each worker reports min(next unprocessed event, min unacked send)
// and one reduction yields the GVT. The price is the acknowledgement
// traffic itself ("causing extra communication overhead", §7), which this
// implementation makes measurable against Mattern and Barrier GVT.
//
// The classic "simultaneous reporting problem" does not arise in this
// formulation because a sender keeps covering a message until the ack has
// *arrived* (not merely been sent): for any straggler crossing a report
// cut, either the send predates the sender's report (still unacked, so it
// bounds the report) or it postdates it (then it stems from processing an
// event at or above the reported minimum, inductively at or above GVT).

// ack is one acknowledgement in flight.
type ack struct {
	id        uint64
	dstWorker int // cluster-wide worker index of the original sender
}

// ackWire is the simulated wire size of an acknowledgement message.
const ackWire = 16

// unackedSet tracks a worker's sent-but-unacknowledged messages with
// O(log n) minimum queries (lazy-deletion binary heap).
type unackedSet struct {
	live map[uint64]float64
	heap []unackedEntry
	next uint64 // ack id generator (worker-unique ids composed by caller)
}

type unackedEntry struct {
	t  float64
	id uint64
}

func (s *unackedSet) init() {
	s.live = make(map[uint64]float64)
}

// add registers a newly sent message and returns its ack id (never 0).
func (s *unackedSet) add(base uint64, t float64) uint64 {
	s.next++
	id := base | s.next
	s.live[id] = t
	s.heap = append(s.heap, unackedEntry{t: t, id: id})
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent].t <= s.heap[i].t {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
	return id
}

// ack removes id from the set.
func (s *unackedSet) ack(id uint64) {
	delete(s.live, id)
}

// min returns the minimum unacknowledged stamp, or +Inf.
func (s *unackedSet) min() float64 {
	for len(s.heap) > 0 {
		top := s.heap[0]
		if t, ok := s.live[top.id]; ok && t == top.t {
			return top.t
		}
		// Lazily drop dead or stale entries.
		n := len(s.heap) - 1
		s.heap[0] = s.heap[n]
		s.heap = s.heap[:n]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < n && s.heap[l].t < s.heap[min].t {
				min = l
			}
			if r < n && s.heap[r].t < s.heap[min].t {
				min = r
			}
			if min == i {
				break
			}
			s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
			i = min
		}
	}
	return vtime.Inf
}

// size returns the number of live unacked messages.
func (s *unackedSet) size() int { return len(s.live) }

// samadiEnabled reports whether the engine runs with acknowledgements.
func (e *Engine) samadiEnabled() bool { return e.cfg.GVT == GVTSamadi }

// ackWorkerShift positions the registering worker's global index in the
// high bits of every ack id, so the receiver can route the ack back
// without consulting LP placement.
const ackWorkerShift = 40

// registerUnacked assigns an ack id to an outgoing cross-worker message.
func (w *worker) registerUnacked(ev *event.Event) {
	ev.AckID = w.unacked.add(uint64(w.gidx)<<ackWorkerShift, ev.Stamp.T)
}

// sendAck routes an acknowledgement back to the transmitting worker.
// The worker is recovered from the ack id itself (registerUnacked folds
// the registering worker's global index into the high bits): the sender
// LP's static home is wrong once the balancer has moved LPs, and the
// unacked entry lives with the worker that sent, not with the LP.
func (w *worker) sendAck(ev *event.Event) {
	w.sendAckTo(ev.AckID)
}

// sendAckTo delivers an acknowledgement for id to the worker that
// registered it.
func (w *worker) sendAckTo(id uint64) {
	src := int(id >> ackWorkerShift)
	a := ack{id: id, dstWorker: src}
	srcNode := src / w.eng.cfg.Topology.WorkersPerNode
	w.proc.Advance(w.node.cost.QueueOp)
	if srcNode == w.node.id {
		w.node.workers[src%w.eng.cfg.Topology.WorkersPerNode].depositAck(w.proc, a)
		return
	}
	w.node.enqueueRemoteAck(w.proc, a, srcNode)
}

// depositAck places an ack into this worker's ack mailbox.
func (w *worker) depositAck(p *sim.Proc, a ack) {
	w.ackMu.Lock(p)
	p.Advance(w.node.cost.RegionalSend)
	w.ackIn = append(w.ackIn, a)
	w.ackMu.Unlock(p)
}

// drainAcks consumes pending acknowledgements.
func (w *worker) drainAcks() bool {
	w.ackMu.Lock(w.proc)
	batch := w.ackIn
	w.ackIn = nil
	w.ackMu.Unlock(w.proc)
	if len(batch) == 0 {
		return false
	}
	w.proc.Advance(sim.Time(len(batch)) * w.node.cost.InboxDrainPerMsg)
	for _, a := range batch {
		w.unacked.ack(a.id)
	}
	return true
}

// samadiReport is the worker's GVT contribution.
func (w *worker) samadiReport() float64 {
	return vtime.Min(w.localMin(), w.unacked.min())
}

// samadiPoll drives the worker side of a Samadi GVT round: a single
// node-barrier pair around one cluster reduction — no transit draining.
func (w *worker) samadiPoll() {
	if w.passes < w.eng.cfg.GVTInterval && !w.node.gvtReq {
		return
	}
	w.node.gvtReq = true
	w.passes = 0
	n := w.node
	p := w.proc
	st := &workerBarrierStats{wait: &w.st.BarrierWait, w: w}
	comm := w.commRole() == commPumpAndGVT
	gvtStart := p.Now()
	w.setPhase(trace.PhaseGVT)

	n.localMin[w.idx] = w.samadiReport()
	p.Advance(w.node.cost.BarrierEntry)
	n.barrierWait(p, n.gvtBar, st)
	if comm {
		n.commSamadiFinish(p)
	}
	n.barrierWait(p, n.gvtBar2, st)
	w.applyGVT(n.nodeGVT)
	w.st.GVTTime += p.Now() - gvtStart
}

// commSamadiRound is the dedicated MPI thread's side of a round.
func (n *node) commSamadiRound(p *sim.Proc) {
	n.barrierWait(p, n.gvtBar, nil)
	n.commSamadiFinish(p)
	n.barrierWait(p, n.gvtBar2, nil)
}

// commSamadiFinish reduces worker reports into the cluster GVT.
func (n *node) commSamadiFinish(p *sim.Proc) {
	p.Advance(n.cost.GVTBookkeeping)
	min := vtime.Inf
	for _, v := range n.localMin {
		if v < min {
			min = v
		}
	}
	n.nodeGVT = n.rank.AllreduceMin(p, min)
	n.gvtReq = false
	if n.id == 0 {
		n.eng.onRoundComplete(n.nodeGVT, false, n.eng.clusterEfficiency())
	}
}
