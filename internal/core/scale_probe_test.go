package core_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/cluster"
	core "repro/internal/core"
	"repro/internal/phold"
)

func probe(t *testing.T, g core.GVTKind, cm core.CommMode, ph phold.Phase, end float64) {
	top := cluster.Topology{Nodes: 8, WorkersPerNode: 8, LPsPerWorker: 64}
	cfg := core.Config{
		Topology: top, GVT: g, GVTInterval: 25,
		Comm: cm, EndTime: end, Seed: 1,
		Model: phold.New(phold.Params{Topology: top, Base: ph}),
	}
	r, err := core.New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("%-8v %-9v: rate=%.4g ev/s eff=%6.2f%% rb=%7d wall=%v bwait=%v disp=%.3f rounds=%d sync=%d\n",
		g, cm, r.EventRate(), 100*r.Efficiency(), r.Workers.Rollbacks, r.WallTime, r.Workers.BarrierWait, r.Disparity, r.GVTRounds, r.SyncRounds)
}

func TestScaleProbe(t *testing.T) {
	if os.Getenv("CALIBRATE") == "" {
		t.Skip("calibration probe; run with CALIBRATE=1")
	}
	fmt.Println("== computation-dominated ==")
	for _, g := range []core.GVTKind{core.GVTMattern, core.GVTBarrier, core.GVTControlled} {
		probe(t, g, core.CommDedicated, phold.ComputationDominated(), 60)
	}
	fmt.Println("== communication-dominated ==")
	for _, g := range []core.GVTKind{core.GVTMattern, core.GVTBarrier, core.GVTControlled} {
		probe(t, g, core.CommDedicated, phold.CommunicationDominated(), 60)
	}
	fmt.Println("== combined comm thread (comp) ==")
	probe(t, core.GVTMattern, core.CommCombined, phold.ComputationDominated(), 60)
	probe(t, core.GVTBarrier, core.CommCombined, phold.ComputationDominated(), 60)
	fmt.Println("== combined comm thread (comm) ==")
	probe(t, core.GVTMattern, core.CommCombined, phold.CommunicationDominated(), 60)
	probe(t, core.GVTBarrier, core.CommCombined, phold.CommunicationDominated(), 60)
}
