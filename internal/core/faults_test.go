package core_test

import (
	"bytes"
	"fmt"
	"testing"

	core "repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/seq"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// faultConfig is testConfig plus a named built-in fault scenario.
func faultConfig(t *testing.T, scenario string, gvt core.GVTKind) core.Config {
	t.Helper()
	cfg := testConfig(2, 2, 4, gvt, core.CommDedicated)
	cfg.EndTime = 20
	plan, err := fabric.Scenario(scenario, cfg.Topology.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	cfg.FaultLabel = scenario
	return cfg
}

// TestFaultScenariosMatchOracle is the robustness counterpart of
// TestOracleEquivalence: under every built-in fault scenario, for both
// token-ring GVT algorithms, the committed event stream must still be
// bit-identical to the sequential oracle — faults may cost time, never
// correctness.
func TestFaultScenariosMatchOracle(t *testing.T) {
	for _, g := range []core.GVTKind{core.GVTMattern, core.GVTControlled} {
		for _, name := range fabric.ScenarioNames() {
			t.Run(fmt.Sprintf("%v/%s", g, name), func(t *testing.T) {
				cfg := faultConfig(t, name, g)
				r, err := core.New(cfg).Run()
				if err != nil {
					t.Fatal(err)
				}
				ref := seq.New(cfg.Model, cfg.Topology.TotalLPs(), cfg.EndTime, cfg.Seed).Run()
				if r.CommitChecksum != ref.Checksum {
					t.Errorf("commit checksum %x != oracle %x", r.CommitChecksum, ref.Checksum)
				}
				if r.Workers.Committed != ref.Processed {
					t.Errorf("committed %d events, oracle processed %d", r.Workers.Committed, ref.Processed)
				}
				if r.FinalGVT <= cfg.EndTime {
					t.Errorf("final GVT %v did not pass end time %v", r.FinalGVT, cfg.EndTime)
				}
				// The scenario must actually have exercised its fault kind.
				switch name {
				case "drop":
					if r.FaultDrops == 0 || r.Retransmits == 0 {
						t.Errorf("drop scenario injected %d drops, %d retransmits", r.FaultDrops, r.Retransmits)
					}
				case "duplicate":
					if r.FaultDups == 0 || r.TransportDups == 0 {
						t.Errorf("duplicate scenario injected %d dups, suppressed %d", r.FaultDups, r.TransportDups)
					}
				case "jitter":
					if r.FaultJitters == 0 {
						t.Error("jitter scenario injected no jitter")
					}
				case "partition":
					if r.FaultWindowDrops == 0 {
						t.Error("partition scenario dropped no packets in windows")
					}
				}
			})
		}
	}
}

// TestFaultDeterminism: a (seed, fault plan) pair must replay the whole
// run bit-identically, virtual timing and fault counters included.
func TestFaultDeterminism(t *testing.T) {
	run := func() *stats.Run {
		cfg := faultConfig(t, "chaos", core.GVTControlled)
		r, err := core.New(cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if *a != *b {
		t.Errorf("faulty runs differ:\n%+v\n%+v", a, b)
	}
}

// TestFaultFreeRunsUnchanged: setting CheckInvariants (which enables the
// per-round GVT ≤ min(observable) check and in-flight tracking, but no
// faults and no reliable transport) must not perturb the run at all.
func TestFaultFreeRunsUnchanged(t *testing.T) {
	for _, g := range allGVT() {
		base := testConfig(2, 2, 4, g, core.CommDedicated)
		a, err := core.New(base).Run()
		if err != nil {
			t.Fatal(err)
		}
		checked := testConfig(2, 2, 4, g, core.CommDedicated)
		checked.CheckInvariants = true
		b, err := core.New(checked).Run()
		if err != nil {
			t.Fatal(err)
		}
		if *a != *b {
			t.Errorf("%v: invariant checking changed the run:\n%+v\n%+v", g, a, b)
		}
	}
}

// TestWatchdogBarrierFallback drives the GVT liveness watchdog: long
// bidirectional partition windows around the ring master exhaust the
// token's transport retry budget, the watchdog resends the lap, and with
// WatchdogFallbackAfter=1 the first resend forces the next round to run
// synchronously — for plain Mattern too, which has no CA sync machinery
// of its own. Correctness must survive all of it.
func TestWatchdogBarrierFallback(t *testing.T) {
	for _, g := range []core.GVTKind{core.GVTMattern, core.GVTControlled} {
		t.Run(g.String(), func(t *testing.T) {
			cfg := testConfig(2, 2, 4, g, core.CommDedicated)
			cfg.EndTime = 20
			cfg.Faults = &fabric.FaultPlan{Windows: []fabric.Window{
				{Src: -1, Dst: 0, Every: 8 * sim.Millisecond, Open: 3 * sim.Millisecond, Drop: 1},
				{Src: 0, Dst: -1, Every: 8 * sim.Millisecond, Open: 3 * sim.Millisecond, Drop: 1},
			}}
			cfg.FaultLabel = "master-partition"
			cfg.WatchdogFallbackAfter = 1
			r, err := core.New(cfg).Run()
			if err != nil {
				t.Fatal(err)
			}
			if r.WatchdogRestarts == 0 {
				t.Error("watchdog never restarted a token despite 3ms partitions of the master")
			}
			if r.WatchdogFallbacks == 0 {
				t.Error("watchdog never fell back to a synchronous round")
			}
			if r.SyncRounds == 0 {
				t.Error("forced-synchronous round never executed")
			}
			ref := seq.New(cfg.Model, cfg.Topology.TotalLPs(), cfg.EndTime, cfg.Seed).Run()
			if r.CommitChecksum != ref.Checksum || r.Workers.Committed != ref.Processed {
				t.Errorf("watchdog recovery diverged from oracle: %x != %x (%d vs %d events)",
					r.CommitChecksum, ref.Checksum, r.Workers.Committed, ref.Processed)
			}
		})
	}
}

// TestStragglerSlowdown: a straggler node must lengthen virtual wall time
// against the fault-free baseline (its workers burn more CPU per event)
// while committing the identical stream.
func TestStragglerSlowdown(t *testing.T) {
	base := testConfig(2, 2, 4, core.GVTControlled, core.CommDedicated)
	base.EndTime = 20
	a, err := core.New(base).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultConfig(t, "straggler", core.GVTControlled)
	b, err := core.New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if b.WallTime <= a.WallTime {
		t.Errorf("straggler run not slower: %v vs fault-free %v", b.WallTime, a.WallTime)
	}
	if a.CommitChecksum != b.CommitChecksum {
		t.Error("straggler node changed the committed event stream")
	}
}

// TestFaultTraceAndReport: fault events reach the v1 trace and the run
// report carries the robustness counters and scenario label.
func TestFaultTraceAndReport(t *testing.T) {
	cfg := faultConfig(t, "chaos", core.GVTControlled)
	var buf bytes.Buffer
	cfg.Trace = trace.NewWriter(&buf)
	eng := core.New(cfg)
	r, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := trace.Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Faults == 0 {
		t.Error("trace recorded no fault events under the chaos scenario")
	}
	if sum.Faults != int64(len(sum.FaultsByKind)) && len(sum.FaultsByKind) == 0 {
		t.Error("trace fault kinds empty")
	}
	total := r.FaultDrops + r.FaultDups + r.FaultJitters + r.FaultWindowDrops
	if total == 0 || r.Retransmits == 0 {
		t.Errorf("chaos run stats too quiet: faults=%d retransmits=%d", total, r.Retransmits)
	}
	rep := eng.Report(r)
	if rep.Config.Faults != "chaos" {
		t.Errorf("report fault label = %q, want chaos", rep.Config.Faults)
	}
	if rep.Stats.FaultDrops != r.FaultDrops || rep.Stats.Retransmits != r.Retransmits ||
		rep.Stats.WatchdogRestarts != r.WatchdogRestarts {
		t.Error("report robustness counters disagree with run stats")
	}
}
