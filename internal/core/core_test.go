package core_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	core "repro/internal/core"
	"repro/internal/phold"
	"repro/internal/seq"
	"repro/internal/vtime"
)

// testConfig returns a small but non-trivial configuration.
func testConfig(nodes, workers, lps int, gvt core.GVTKind, comm core.CommMode) core.Config {
	top := cluster.Topology{Nodes: nodes, WorkersPerNode: workers, LPsPerWorker: lps}
	return core.Config{
		Topology:    top,
		GVT:         gvt,
		GVTInterval: 3,
		Comm:        comm,
		EndTime:     30,
		Seed:        42,
		Model: phold.New(phold.Params{
			Topology: top,
			Base:     phold.Phase{RemotePct: remoteFor(nodes), RegionalPct: 0.3, EPG: 500},
		}),
	}
}

func remoteFor(nodes int) float64 {
	if nodes > 1 {
		return 0.1
	}
	return 0
}

func run(t *testing.T, cfg core.Config) *core.Engine {
	t.Helper()
	eng := core.New(cfg)
	if _, err := eng.Run(); err != nil {
		t.Fatalf("%v/%v: %v", cfg.GVT, cfg.Comm, err)
	}
	return eng
}

func allGVT() []core.GVTKind {
	return []core.GVTKind{core.GVTBarrier, core.GVTMattern, core.GVTControlled, core.GVTSamadi}
}

func allComm() []core.CommMode {
	return []core.CommMode{core.CommDedicated, core.CommCombined, core.CommShared}
}

// TestOracleEquivalence is the central correctness test: for every GVT
// algorithm, comm mode and several topologies, the parallel engine's
// committed event stream must equal the sequential oracle's exactly.
func TestOracleEquivalence(t *testing.T) {
	shapes := []struct{ nodes, workers, lps int }{
		{1, 1, 8},
		{1, 4, 4},
		{2, 2, 4},
		{4, 3, 2},
	}
	for _, sh := range shapes {
		for _, g := range allGVT() {
			for _, c := range allComm() {
				name := fmt.Sprintf("%dx%dx%d/%v/%v", sh.nodes, sh.workers, sh.lps, g, c)
				t.Run(name, func(t *testing.T) {
					cfg := testConfig(sh.nodes, sh.workers, sh.lps, g, c)
					eng := core.New(cfg)
					r, err := eng.Run()
					if err != nil {
						t.Fatal(err)
					}
					ref := seq.New(cfg.Model, cfg.Topology.TotalLPs(), cfg.EndTime, cfg.Seed).Run()
					if r.Workers.Committed != ref.Processed {
						t.Errorf("committed %d events, oracle processed %d", r.Workers.Committed, ref.Processed)
					}
					if r.CommitChecksum != ref.Checksum {
						t.Errorf("commit checksum %x != oracle %x", r.CommitChecksum, ref.Checksum)
					}
					if r.Workers.Committed == 0 {
						t.Error("no events committed")
					}
					if r.FinalGVT <= cfg.EndTime {
						t.Errorf("final GVT %v did not pass end time %v", r.FinalGVT, cfg.EndTime)
					}
				})
			}
		}
	}
}

// TestDeterminism: identical configuration and seed must yield identical
// statistics, including virtual timing.
func TestDeterminism(t *testing.T) {
	for _, g := range allGVT() {
		cfg := testConfig(2, 2, 4, g, core.CommDedicated)
		a, err := core.New(cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.New(cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		if *a != *b {
			t.Errorf("%v: runs differ:\n%+v\n%+v", g, a, b)
		}
	}
}

// TestSeedSensitivity: different seeds must change the event stream.
func TestSeedSensitivity(t *testing.T) {
	cfg := testConfig(2, 2, 4, core.GVTMattern, core.CommDedicated)
	a, _ := core.New(cfg).Run()
	cfg.Seed = 43
	b, _ := core.New(cfg).Run()
	if a.CommitChecksum == b.CommitChecksum {
		t.Error("different seeds produced identical commit streams")
	}
}

// TestRollbacksHappen: the communication-heavy configuration must actually
// exercise rollback machinery, otherwise the oracle test proves little.
func TestRollbacksHappen(t *testing.T) {
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 8}
	cfg := core.Config{
		Topology:    top,
		GVT:         core.GVTMattern,
		GVTInterval: 3,
		Comm:        core.CommDedicated,
		EndTime:     25,
		Seed:        7,
		Model: phold.New(phold.Params{
			Topology: top,
			Base:     phold.Phase{RemotePct: 0.1, RegionalPct: 0.7, EPG: 1500},
		}),
	}
	eng := core.New(cfg)
	r, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers.Rollbacks == 0 {
		t.Error("no rollbacks in a communication-heavy run; test configuration too tame")
	}
	if r.Workers.AntiSent == 0 {
		t.Error("rollbacks occurred but no anti-messages were sent")
	}
	ref := seq.New(cfg.Model, top.TotalLPs(), cfg.EndTime, cfg.Seed).Run()
	if r.CommitChecksum != ref.Checksum {
		t.Errorf("with rollbacks: checksum %x != oracle %x", r.CommitChecksum, ref.Checksum)
	}
	if r.Efficiency() >= 1.0 {
		t.Error("efficiency 100% despite rollbacks")
	}
}

// TestGVTMonotonic: successive GVT values never decrease, and every GVT is
// a valid lower bound (the engine panics on violations internally).
func TestGVTMonotonic(t *testing.T) {
	for _, g := range allGVT() {
		cfg := testConfig(2, 2, 4, g, core.CommDedicated)
		eng := core.New(cfg)
		eng.TraceRounds = true
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		traces := eng.RoundTraces()
		if len(traces) < 2 {
			t.Fatalf("%v: only %d GVT rounds", g, len(traces))
		}
		prev := -1.0
		for _, tr := range traces {
			if tr.GVT < prev {
				t.Errorf("%v: GVT went backwards: %v after %v", g, tr.GVT, prev)
			}
			prev = tr.GVT
		}
		// GVT must make forward progress overall.
		if traces[len(traces)-1].GVT <= traces[0].GVT {
			t.Errorf("%v: no GVT progress across rounds", g)
		}
	}
}

// TestQueueKinds: the calendar queue must give identical results to the
// heap.
func TestQueueKinds(t *testing.T) {
	cfg := testConfig(2, 2, 4, core.GVTMattern, core.CommDedicated)
	cfg.QueueKind = "heap"
	a, err := core.New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg.QueueKind = "calendar"
	b, err := core.New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.CommitChecksum != b.CommitChecksum || a.Workers.Committed != b.Workers.Committed {
		t.Error("calendar queue changed the committed event stream")
	}
}

// TestSingleWorkerNoRollbacks: one worker, one node has no transit at all;
// everything is local and efficiency is 100%.
func TestSingleWorkerNoRollbacks(t *testing.T) {
	cfg := testConfig(1, 1, 16, core.GVTMattern, core.CommDedicated)
	r, err := core.New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers.Rollbacks != 0 {
		t.Errorf("single worker rolled back %d times", r.Workers.Rollbacks)
	}
	if r.Efficiency() != 1.0 {
		t.Errorf("single worker efficiency = %v", r.Efficiency())
	}
}

// TestCASyncActivation: with a hostile workload and a high threshold,
// CA-GVT must execute some rounds synchronously; with threshold 0 it
// must stay asynchronous.
func TestCASyncActivation(t *testing.T) {
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 8}
	base := core.Config{
		Topology:    top,
		GVT:         core.GVTControlled,
		GVTInterval: 3,
		Comm:        core.CommDedicated,
		EndTime:     25,
		Seed:        7,
		Model: phold.New(phold.Params{
			Topology: top,
			Base:     phold.Phase{RemotePct: 0.1, RegionalPct: 0.7, EPG: 1500},
		}),
	}

	base.CAThreshold = 0.999
	r, err := core.New(base).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.SyncRounds == 0 {
		t.Error("threshold 0.999: CA-GVT never synchronized despite heavy rollbacks")
	}

	base.CAThreshold = 0.0001
	r2, err := core.New(base).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r2.SyncRounds != 0 {
		t.Errorf("threshold ~0: CA-GVT ran %d sync rounds", r2.SyncRounds)
	}

	// Both must still be correct.
	ref := seq.New(base.Model, top.TotalLPs(), base.EndTime, base.Seed).Run()
	if r.CommitChecksum != ref.Checksum || r2.CommitChecksum != ref.Checksum {
		t.Error("CA-GVT checksum mismatch against oracle")
	}
}

// TestMessageClassAccounting: sends are classified correctly (no remote
// traffic on one node; no regional traffic with one worker per node).
func TestMessageClassAccounting(t *testing.T) {
	r, err := core.New(testConfig(1, 4, 4, core.GVTMattern, core.CommDedicated)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers.SentRemote != 0 {
		t.Errorf("single node sent %d remote messages", r.Workers.SentRemote)
	}
	if r.Workers.SentRegion == 0 {
		t.Error("multi-worker node sent no regional messages")
	}
	if r.MPIMessages != 0 {
		t.Errorf("single node used MPI %d times", r.MPIMessages)
	}

	r2, err := core.New(testConfig(2, 1, 8, core.GVTMattern, core.CommDedicated)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Workers.SentRegion != 0 {
		t.Errorf("one worker per node sent %d regional messages", r2.Workers.SentRegion)
	}
	if r2.Workers.SentRemote == 0 {
		t.Error("two nodes exchanged no remote messages")
	}
	if r2.MPIMessages == 0 {
		t.Error("two nodes used no MPI messages")
	}
}

// TestConfigValidation exercises core.Config.Validate.
func TestConfigValidation(t *testing.T) {
	good := testConfig(1, 1, 1, core.GVTBarrier, core.CommDedicated)
	good.Defaults()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []func(*core.Config){
		func(c *core.Config) { c.Model = nil },
		func(c *core.Config) { c.EndTime = 0 },
		func(c *core.Config) { c.GVTInterval = 1 },
		func(c *core.Config) { c.CAThreshold = 1.5 },
		func(c *core.Config) { c.Topology.Nodes = 0 },
	}
	for i, mutate := range cases {
		cfg := testConfig(1, 1, 1, core.GVTBarrier, core.CommDedicated)
		cfg.Defaults()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestGVTKindStrings covers the enum stringers.
func TestGVTKindStrings(t *testing.T) {
	if core.GVTBarrier.String() != "barrier" || core.GVTMattern.String() != "mattern" ||
		core.GVTControlled.String() != "ca-gvt" || core.GVTSamadi.String() != "samadi" {
		t.Error("core.GVTKind strings wrong")
	}
	if core.CommDedicated.String() != "dedicated" || core.CommCombined.String() != "combined" ||
		core.CommShared.String() != "shared" {
		t.Error("core.CommMode strings wrong")
	}
}

// TestBarrierWaitRecorded: barrier GVT must record idle time at barriers.
func TestBarrierWaitRecorded(t *testing.T) {
	r, err := core.New(testConfig(2, 2, 4, core.GVTBarrier, core.CommDedicated)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers.BarrierWait == 0 {
		t.Error("barrier GVT recorded zero barrier wait time")
	}
	if r.GVTRounds == 0 {
		t.Error("no GVT rounds recorded")
	}
}

// TestWallTimePositive and event rate sanity.
func TestWallTimePositive(t *testing.T) {
	r, err := core.New(testConfig(2, 2, 4, core.GVTMattern, core.CommDedicated)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.WallTime <= 0 {
		t.Error("non-positive virtual wall time")
	}
	if r.EventRate() <= 0 {
		t.Error("non-positive event rate")
	}
}

// TestMixedModelPhases: the mixed workload must produce both regimes and
// still match the oracle.
func TestMixedModelPhases(t *testing.T) {
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 4}
	end := vtime.Time(20)
	model := phold.New(phold.Params{
		Topology: top,
		Base:     phold.Phase{RemotePct: 0.01, RegionalPct: 0.1, EPG: 3000},
		Mixed: &phold.MixedModel{
			Comm:     phold.Phase{RemotePct: 0.1, RegionalPct: 0.8, EPG: 1500},
			CompFrac: 10, CommFrac: 15, EndTime: end,
		},
	})
	cfg := core.Config{
		Topology: top, GVT: core.GVTControlled, GVTInterval: 3,
		Comm: core.CommDedicated, EndTime: end, Seed: 11, Model: model,
	}
	r, err := core.New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	ref := seq.New(model, top.TotalLPs(), end, 11).Run()
	if r.CommitChecksum != ref.Checksum {
		t.Errorf("mixed model checksum mismatch: %x != %x", r.CommitChecksum, ref.Checksum)
	}
}

// TestCheckpointIntervals: infrequent state saving (snapshot every k-th
// event + coast-forward on rollback) must not change the committed stream,
// under a rollback-heavy workload.
func TestCheckpointIntervals(t *testing.T) {
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 8}
	base := core.Config{
		Topology:    top,
		GVT:         core.GVTMattern,
		GVTInterval: 3,
		Comm:        core.CommDedicated,
		EndTime:     25,
		Seed:        7,
		Model: phold.New(phold.Params{
			Topology: top,
			Base:     phold.Phase{RemotePct: 0.1, RegionalPct: 0.6, EPG: 1500},
		}),
	}
	ref := seq.New(base.Model, top.TotalLPs(), base.EndTime, base.Seed).Run()
	for _, k := range []int{1, 2, 4, 16} {
		cfg := base
		cfg.CheckpointInterval = k
		r, err := core.New(cfg).Run()
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if r.Workers.Rollbacks == 0 {
			t.Fatalf("k=%d: no rollbacks; test too tame", k)
		}
		if r.CommitChecksum != ref.Checksum || r.Workers.Committed != ref.Processed {
			t.Errorf("k=%d: committed stream diverged from oracle", k)
		}
	}
}

// TestMaxUncommittedThrottle: a tiny optimism bound must still complete
// and commit the oracle stream, just more slowly.
func TestMaxUncommittedThrottle(t *testing.T) {
	cfg := testConfig(2, 2, 8, core.GVTMattern, core.CommDedicated)
	cfg.MaxUncommitted = 4 // absurdly tight
	r, err := core.New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	ref := seq.New(cfg.Model, cfg.Topology.TotalLPs(), cfg.EndTime, cfg.Seed).Run()
	if r.CommitChecksum != ref.Checksum {
		t.Error("throttled run diverged from oracle")
	}
	loose := testConfig(2, 2, 8, core.GVTMattern, core.CommDedicated)
	loose.MaxUncommitted = -1 // disabled
	r2, err := core.New(loose).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r2.CommitChecksum != ref.Checksum {
		t.Error("unthrottled run diverged from oracle")
	}
	if r.WallTime <= r2.WallTime {
		t.Logf("note: tight throttle not slower (%v vs %v) — acceptable at this scale", r.WallTime, r2.WallTime)
	}
}

// TestSamadiAckOverhead: Samadi GVT must move acknowledgement traffic over
// MPI (more messages than Mattern for the same workload) while committing
// the identical event stream.
func TestSamadiAckOverhead(t *testing.T) {
	cfg := testConfig(2, 2, 8, core.GVTSamadi, core.CommDedicated)
	r, err := core.New(cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig(2, 2, 8, core.GVTMattern, core.CommDedicated)
	r2, err := core.New(cfg2).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.CommitChecksum != r2.CommitChecksum {
		t.Error("Samadi and Mattern committed different streams")
	}
	if r.MPIMessages <= r2.MPIMessages {
		t.Errorf("Samadi MPI messages (%d) not above Mattern (%d): acks missing?",
			r.MPIMessages, r2.MPIMessages)
	}
}

// TestOracleFuzz: randomized small configurations across all GVT
// algorithms must match the sequential oracle. This sweeps corners the
// fixed matrix misses (odd shapes, extreme percentages, odd intervals).
func TestOracleFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep skipped in -short")
	}
	prop := func(seed uint64, a, b, c, d, e, f uint8) bool {
		nodes := int(a%3) + 1
		workers := int(b%3) + 1
		lps := int(c%4) + 1
		remote := float64(d%30) / 100
		if nodes == 1 {
			remote = 0
		}
		regional := float64(e%60) / 100
		interval := int(f%6) + 2
		top := cluster.Topology{Nodes: nodes, WorkersPerNode: workers, LPsPerWorker: lps}
		model := phold.New(phold.Params{
			Topology: top,
			Base:     phold.Phase{RemotePct: remote, RegionalPct: regional, EPG: 800 + int(seed%2000)},
		})
		ref := seq.New(model, top.TotalLPs(), 15, seed).Run()
		for _, g := range allGVT() {
			cfg := core.Config{
				Topology: top, GVT: g, GVTInterval: interval,
				Comm: core.CommDedicated, EndTime: 15, Seed: seed, Model: model,
			}
			r, err := core.New(cfg).Run()
			if err != nil {
				t.Logf("%v shape=%dx%dx%d: %v", g, nodes, workers, lps, err)
				return false
			}
			if r.CommitChecksum != ref.Checksum || r.Workers.Committed != ref.Processed {
				t.Logf("%v shape=%dx%dx%d seed=%d interval=%d remote=%v regional=%v: diverged",
					g, nodes, workers, lps, seed, interval, remote, regional)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
