// Package core implements the optimistic (Time Warp) parallel discrete
// event simulation engine the paper runs its experiments on: a
// multithreaded ROSS-style simulator with per-worker pending event sets,
// state-saving rollback, anti-messages, fossil collection, a dedicated (or
// combined) MPI communication thread per node, and the three pluggable GVT
// algorithms of the paper — Barrier (Algorithm 1), Mattern (Algorithm 2)
// and Controlled Asynchronous GVT (Algorithm 3).
//
// The engine's threads are processes of the internal/sim kernel, so a run
// is a deterministic simulation of the paper's cluster: performance is
// reported in virtual wall-clock time.
package core

import (
	"fmt"

	"repro/internal/balance"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// GVTKind selects the GVT algorithm.
type GVTKind int

const (
	// GVTBarrier is the synchronous two-level barrier algorithm
	// (paper Algorithm 1).
	GVTBarrier GVTKind = iota
	// GVTMattern is the asynchronous algorithm adapted from Mattern
	// (paper Algorithm 2).
	GVTMattern
	// GVTControlled is CA-GVT: Mattern plus conditional synchronization
	// driven by observed efficiency (paper Algorithm 3).
	GVTControlled
	// GVTSamadi is the acknowledgement-based algorithm of Samadi (1985),
	// cited in the paper's related work: ack traffic keeps every in-transit
	// message covered by its sender, so GVT needs a single reduction and
	// no transit draining (implemented here as an extension baseline).
	GVTSamadi
)

func (k GVTKind) String() string {
	switch k {
	case GVTBarrier:
		return "barrier"
	case GVTMattern:
		return "mattern"
	case GVTControlled:
		return "ca-gvt"
	case GVTSamadi:
		return "samadi"
	}
	return fmt.Sprintf("GVTKind(%d)", int(k))
}

// PoolMode selects how the engine allocates event objects.
type PoolMode int

const (
	// PoolOn (the default) recycles events through per-node free lists:
	// an event returns to its current node's pool when it is
	// fossil-collected or annihilated, and Send reuses it instead of
	// allocating. The pool charges no virtual cost, so results are
	// bit-identical to PoolOff.
	PoolOn PoolMode = iota
	// PoolOff allocates every event fresh (the pre-pool behaviour, kept
	// as the baseline the allocation microbenchmarks compare against).
	PoolOff
	// PoolDebug recycles with poison-on-free: freed events are filled
	// with sentinel values verified on reuse, and the engine asserts
	// liveness at every delivery and anti-copy — catching
	// use-after-recycle at its source instead of as silent corruption.
	PoolDebug
)

func (m PoolMode) String() string {
	switch m {
	case PoolOn:
		return "on"
	case PoolOff:
		return "off"
	case PoolDebug:
		return "debug"
	}
	return fmt.Sprintf("PoolMode(%d)", int(m))
}

// CommMode selects how MPI communication is serviced within a node
// (the paper's first contribution, §4 "Dedicated MPI Thread").
type CommMode int

const (
	// CommDedicated gives each node one thread exclusively servicing MPI;
	// it performs no event processing (the paper's proposal).
	CommDedicated CommMode = iota
	// CommCombined makes worker 0 service all MPI in addition to normal
	// event processing (the baseline from [31] the paper compares against).
	CommCombined
	// CommShared makes every worker service MPI, contending on the MPI
	// lock (the §1-motivating worst case; an ablation here).
	CommShared
)

func (m CommMode) String() string {
	switch m {
	case CommDedicated:
		return "dedicated"
	case CommCombined:
		return "combined"
	case CommShared:
		return "shared"
	}
	return fmt.Sprintf("CommMode(%d)", int(m))
}

// Model is a logical process's behaviour. One instance exists per LP.
// Implementations must be deterministic given the context's RNG and must
// confine all mutable state to what Snapshot/Restore capture.
type Model interface {
	// Init runs before the simulation starts; it seeds initial events via
	// ctx.Send (delays are absolute times here, since Now() is 0).
	Init(ctx Context)
	// OnEvent processes one event. It may examine ev.Kind and ev.Data and
	// send new events with ctx.Send. The engine has already advanced the
	// LP's virtual time to ev's receive time.
	OnEvent(ctx Context, ev *event.Event)
	// Snapshot returns an immutable copy of the model's state.
	Snapshot() any
	// Restore rewinds the model to a state previously returned by Snapshot.
	Restore(snap any)
}

// Context is the API a model uses while handling an event.
type Context interface {
	// Self returns the LP being simulated.
	Self() event.LPID
	// Now returns the LP's current virtual time.
	Now() vtime.Time
	// Send schedules an event for dst at Now()+delay. delay must be >= 0.
	Send(dst event.LPID, delay vtime.Time, kind uint16, data []byte)
	// RNG returns the LP's private random stream (rolled back with state).
	RNG() *rng.Stream
	// NumLPs returns the total LP count.
	NumLPs() int
	// Spin charges the given number of EPG work units of CPU time
	// (one unit ≈ one FLOP).
	Spin(units int)
}

// ModelFactory builds the model for each LP.
type ModelFactory func(lp event.LPID, total int) Model

// Config parameterizes a run.
type Config struct {
	Topology cluster.Topology
	Cost     cluster.CostModel
	Net      fabric.Params
	MPICosts mpi.Costs

	GVT         GVTKind
	GVTInterval int     // main-loop passes between GVT rounds (paper: 25/50)
	CAThreshold float64 // CA-GVT efficiency threshold (paper: 0.80)

	Comm      CommMode
	EndTime   vtime.Time
	Seed      uint64
	Pool      PoolMode // event allocation strategy (default PoolOn)
	QueueKind string   // pending-set implementation: "heap" (default) | "calendar"
	BatchSize int      // events processed per main-loop pass (default 16, as ROSS mbatch)

	// CheckpointInterval is the state-saving period: a snapshot is taken
	// before every k-th processed event of an LP (1 = copy state every
	// event, the ROSS default here). With k > 1, rollback restores the
	// nearest earlier snapshot and coast-forwards (re-executes events with
	// sends suppressed) up to the rollback target — trading snapshot cost
	// for replay cost.
	CheckpointInterval int

	// MaxUncommitted bounds optimism the way ROSS's fixed event pool does
	// (§3: "eventually all memory would be consumed"): a worker whose
	// uncommitted processed-event history reaches this bound stops
	// processing until fossil collection frees room. Default: 8x the
	// worker's LP count. Negative disables the bound.
	MaxUncommitted int

	Model ModelFactory

	// Balance selects the dynamic load-balancing policy (see
	// internal/balance): "" or "static" disables migration entirely (the
	// engine takes the zero-overhead static path, byte-identical to a
	// build without the balancer); "greedy" moves the hottest LPs off the
	// most-behind node when the LVT-lag spread exceeds a threshold;
	// "straggler" weights placement by the per-node cost model. Decisions
	// are computed only from committed (post-GVT) state and executed at
	// GVT commit points, so the committed event stream is identical to
	// the sequential oracle under every policy.
	Balance string

	// Faults, when non-nil, installs a deterministic fault-injection plan
	// on the fabric (packet drops, duplicates, delay jitter, periodic
	// partition windows, straggler nodes) and layers the reliable
	// transport under MPI so delivery stays exactly-once in-order. The
	// fault RNG stream is seeded from Seed via a dedicated salt, so the
	// model-level random draws — and hence the committed event stream —
	// are unchanged by enabling faults.
	Faults *fabric.FaultPlan
	// FaultLabel names the fault scenario in run reports (report-only;
	// see fabric.Scenario for the built-ins).
	FaultLabel string
	// WatchdogTimeout drives the GVT liveness watchdog: when the
	// Mattern/CA ring master observes no token progress for this long,
	// it resends the last control token (nodes that already served the
	// lap re-apply their recorded contribution; the master discards the
	// duplicate if the original completes). Zero auto-selects 2ms when
	// Faults is set and disables the watchdog otherwise; negative
	// disables it explicitly.
	WatchdogTimeout sim.Time
	// WatchdogFallbackAfter is how many watchdog restarts within a single
	// GVT round force the next round to run synchronously (the barrier
	// fallback: a round whose sync points re-align a cluster the token
	// keeps dying on). Default 3.
	WatchdogFallbackAfter int
	// CheckInvariants enables the strengthened GVT invariant: at every
	// round completion the published GVT is checked against the true
	// minimum over all worker LVTs, mailboxes, outboxes, stashed
	// anti-messages, transport buffers and in-flight packets. Always on
	// when Faults is set.
	CheckInvariants bool

	// Trace, when non-nil, receives a record for every committed event,
	// every completed GVT round, every rollback episode, every MPI
	// data-plane send/receive and every worker phase transition
	// (ROSS-style event tracing, format v1). The caller flushes it after
	// Run.
	Trace *trace.Writer

	// Metrics, when non-nil, is driven by the engine: per-GVT-round
	// cluster and per-worker time series plus engine histograms, exported
	// with Engine.Report after Run.
	Metrics *metrics.Recorder
}

// Defaults fills zero-valued fields with paper-flavoured defaults.
func (c *Config) Defaults() {
	if c.Cost == (cluster.CostModel{}) {
		c.Cost = cluster.KNLDefaults()
	}
	if c.Net == (fabric.Params{}) {
		c.Net = fabric.EthernetDefaults()
	}
	if c.MPICosts == (mpi.Costs{}) {
		c.MPICosts = mpi.DefaultCosts()
	}
	if c.GVTInterval == 0 {
		c.GVTInterval = 25
	}
	if c.CAThreshold == 0 {
		c.CAThreshold = 0.80
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.QueueKind == "" {
		c.QueueKind = "heap"
	}
	if c.MaxUncommitted == 0 {
		c.MaxUncommitted = 8 * c.Topology.LPsPerWorker
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 1
	}
	if c.WatchdogFallbackAfter == 0 {
		c.WatchdogFallbackAfter = 3
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if c.Model == nil {
		return fmt.Errorf("core: Config.Model is nil")
	}
	if c.EndTime <= 0 {
		return fmt.Errorf("core: EndTime must be positive, got %v", c.EndTime)
	}
	if c.GVTInterval < 2 {
		return fmt.Errorf("core: GVTInterval must be >= 2, got %d", c.GVTInterval)
	}
	if c.CAThreshold < 0 || c.CAThreshold > 1 {
		return fmt.Errorf("core: CAThreshold must be in [0,1], got %v", c.CAThreshold)
	}
	if c.CheckpointInterval < 0 {
		return fmt.Errorf("core: CheckpointInterval must be positive, got %d", c.CheckpointInterval)
	}
	if c.WatchdogFallbackAfter < 0 {
		return fmt.Errorf("core: WatchdogFallbackAfter must be positive, got %d", c.WatchdogFallbackAfter)
	}
	if c.Pool < PoolOn || c.Pool > PoolDebug {
		return fmt.Errorf("core: unknown PoolMode %d", int(c.Pool))
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(c.Topology.Nodes); err != nil {
			return err
		}
	}
	if _, err := balance.New(c.Balance, balance.Options{}); err != nil {
		return err
	}
	return nil
}

// Engine is one configured simulation run.
type Engine struct {
	cfg   Config
	env   *sim.Env
	world *mpi.World
	nodes []*node

	// matchSeq hands out cluster-unique anti-message match IDs. It lives
	// outside simulated state: IDs are never reused, never rolled back.
	matchSeq uint64

	// poolDebug mirrors Config.Pool == PoolDebug so hot paths pay one
	// bool check for the liveness asserts.
	poolDebug bool

	// lvtScratch is reused across GVT rounds by onRoundComplete so the
	// per-round disparity sample allocates nothing in steady state.
	lvtScratch []float64

	// run-level results
	finishedAt  sim.Time
	finalGVT    vtime.Time
	gvtRounds   int64
	syncRounds  int64
	disparity   stats.Disparity
	roundTraces []RoundTrace

	// Load balancing (see Config.Balance). routing is always present —
	// the static fast path is arithmetic — but the rest only activates
	// when a non-static policy is configured (migEnabled).
	routing        *cluster.Routing
	balancer       balance.Policy
	migEnabled     bool
	balanceFactors []float64                     // per-node cost factors for the policy
	migrating      map[event.LPID]bool           // LPs with a planned or in-flight move
	migLedger      map[event.LPID]stats.Checksum // checksums of in-flight LPs
	migrations     int64
	migratedEvents int64
	prevCommitted  []int64 // per-node cumulative committed at last plan
	prevRolled     []int64

	// robustness machinery (see Config.Faults / WatchdogTimeout)
	invariants  bool     // GVT ≤ min(observable) checked every round
	wdTimeout   sim.Time // resolved watchdog timeout (0 = off)
	wdRestarts  int64    // watchdog token resends across the run
	wdFallbacks int64    // rounds forced synchronous by the watchdog
	wdForceSync bool     // pending: next published round must be sync

	// telemetry instruments, resolved once at construction (nil when
	// Config.Metrics is nil) so hot paths pay a nil check, not a map
	// lookup.
	hRollbackDepth *metrics.Histogram
	hInboxBatch    *metrics.Histogram
	hOutboxDepth   *metrics.Histogram

	// TraceRounds enables per-round trace collection (RoundTraces).
	TraceRounds bool
}

// RoundTrace records one completed GVT round (for tests and the adaptive
// example: it shows CA-GVT switching modes).
type RoundTrace struct {
	Round      int64
	GVT        vtime.Time
	At         sim.Time
	Sync       bool    // CA-GVT executed this round with barriers
	Efficiency float64 // cumulative efficiency observed at round end
}

// faultSeedSalt decorrelates the fault-injection RNG stream from the
// model substreams derived from the same Config.Seed.
const faultSeedSalt = 0x9e3779b97f4a7c15

// tokenRetryBudget bounds GVT-token retransmissions at the transport
// layer: a token stuck behind a partition fails over to the liveness
// watchdog instead of retrying forever. Data events keep unlimited
// retries — no committed event is ever lost to a fault plan.
const tokenRetryBudget = 3

// New builds an engine. It panics on invalid configuration (construction
// is programmer-controlled; see Config.Validate for checking first).
func New(cfg Config) *Engine {
	cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	eng := &Engine{cfg: cfg, env: sim.NewEnv()}
	eng.env.LivelockLimit = 500_000_000
	eng.poolDebug = cfg.Pool == PoolDebug
	eng.world = mpi.NewWorld(eng.env, cfg.Topology.Nodes, cfg.Net, cfg.MPICosts)
	eng.routing = cluster.NewRouting(cfg.Topology)
	if cfg.Balance != "" && cfg.Balance != "static" && cfg.Balance != "none" {
		factors := make([]float64, cfg.Topology.Nodes)
		for i := range factors {
			factors[i] = 1
			if cfg.Faults != nil {
				if f, ok := cfg.Faults.Straggler[i]; ok && f > 0 {
					factors[i] = f
				}
			}
		}
		pol, err := balance.New(cfg.Balance, balance.Options{CostFactors: factors})
		if err != nil {
			panic(err) // unreachable: Validate accepted the name
		}
		eng.balancer = pol
		eng.migEnabled = true
		eng.balanceFactors = factors
		eng.migrating = make(map[event.LPID]bool)
		eng.migLedger = make(map[event.LPID]stats.Checksum)
		eng.prevCommitted = make([]int64, cfg.Topology.Nodes)
		eng.prevRolled = make([]int64, cfg.Topology.Nodes)
	}
	eng.invariants = cfg.CheckInvariants || cfg.Faults != nil
	eng.wdTimeout = cfg.WatchdogTimeout
	if eng.wdTimeout == 0 && cfg.Faults != nil {
		eng.wdTimeout = 2 * sim.Millisecond
	}
	if eng.wdTimeout < 0 {
		eng.wdTimeout = 0
	}
	if cfg.Faults != nil {
		f := eng.world.Fabric()
		if err := f.SetFaults(cfg.Faults, cfg.Seed^faultSeedSalt); err != nil {
			panic(err)
		}
		eng.world.EnableReliable(mpi.ReliableParams{
			TagRetryLimit: map[int]int{tagToken: tokenRetryBudget},
		})
		var cFault *metrics.Counter
		if cfg.Metrics != nil {
			cFault = cfg.Metrics.Registry().Counter("faults_injected")
		}
		tr := cfg.Trace
		f.FaultHook = func(fe fabric.FaultEvent) {
			if cFault != nil {
				cFault.Inc()
			}
			if tr != nil {
				tr.Fault(trace.Fault{
					Kind: uint8(fe.Kind), Src: uint16(fe.Src), Dst: uint16(fe.Dst),
					AtNanos: int64(fe.At), DelayNanos: int64(fe.Delay),
				})
			}
		}
	} else if eng.invariants {
		// In-flight packet tracking is normally enabled by SetFaults; the
		// invariant checker needs it on a perfect fabric too.
		eng.world.Fabric().EnableTracking()
	}
	if rec := cfg.Metrics; rec != nil {
		rec.Init(cfg.Topology.TotalWorkers())
		reg := rec.Registry()
		eng.hRollbackDepth = reg.Histogram("rollback_depth")
		eng.hInboxBatch = reg.Histogram("inbox_drain_batch")
		eng.hOutboxDepth = reg.Histogram("mpi_outbox_depth")
	}
	// LPs are created in global id order, so one substream sequence hands
	// every LP the stream NewAt(seed, id) in O(1) jumps each.
	streams := rng.NewSequence(cfg.Seed)
	for n := 0; n < cfg.Topology.Nodes; n++ {
		eng.nodes = append(eng.nodes, newNode(eng, n, streams))
	}
	// Seed initial events: models Init before virtual time starts.
	for _, nd := range eng.nodes {
		for _, w := range nd.workers {
			for _, l := range w.lps {
				l.init(w)
			}
		}
	}
	return eng
}

// Env exposes the virtual-time environment (read-only use in tests).
func (e *Engine) Env() *sim.Env { return e.env }

// RoundTraces returns per-round traces when TraceRounds was set.
func (e *Engine) RoundTraces() []RoundTrace { return e.roundTraces }

// nextMatchID returns a cluster-unique anti-message identity.
func (e *Engine) nextMatchID() uint64 {
	e.matchSeq++
	return e.matchSeq
}

// Run executes the simulation to completion and returns its metrics.
// When Cancel aborted the run, the error wraps sim.ErrCancelled.
func (e *Engine) Run() (*stats.Run, error) {
	for _, nd := range e.nodes {
		nd.spawn()
	}
	if err := e.env.Run(); err != nil {
		return nil, err
	}
	return e.collect(), nil
}

// Cancel requests that a running simulation stop. Safe to call from any
// goroutine (the one Engine method that is); Run unwinds at the next
// kernel dispatch boundary and returns sim.ErrCancelled. Cancelling a
// finished run is a no-op.
func (e *Engine) Cancel() { e.env.Cancel() }

// collect aggregates the final statistics.
func (e *Engine) collect() *stats.Run {
	r := &stats.Run{
		WallTime:   e.finishedAt,
		GVTRounds:  e.gvtRounds,
		SyncRounds: e.syncRounds,
		FinalGVT:   e.finalGVT,
		Disparity:  e.disparity.Mean(),
	}
	var sum uint64
	for _, nd := range e.nodes {
		if p := nd.pool; p != nil {
			r.PoolNews += int64(p.News)
			r.PoolRecycled += int64(p.Gets)
		}
		for _, w := range nd.workers {
			r.Workers.Add(&w.st)
			for _, l := range w.lps {
				sum += uint64(l.checksum)
			}
		}
	}
	// LPs packed but not yet installed when the run ended (in an outbox,
	// on the wire, or in a migration mailbox): their committed history
	// rides in the ledger (the per-LP checksum sum is order-independent,
	// so map iteration order is immaterial).
	for _, c := range e.migLedger {
		sum += uint64(c)
	}
	r.CommitChecksum = sum
	r.Migrations = e.migrations
	r.MigratedEvents = e.migratedEvents
	f := e.world.Fabric()
	r.MPIMessages = f.MessagesSent
	r.MPIBytes = f.BytesSent
	if e.world.Reliable() {
		ts := e.world.TransportStats()
		r.Retransmits = ts.Retransmits
		r.TransportDups = ts.DupsSuppressed
		r.TransportExhausted = ts.Exhausted
	}
	fs := f.FaultStats()
	r.FaultDrops = fs.Dropped
	r.FaultDups = fs.Duplicated
	r.FaultJitters = fs.Jittered
	r.FaultWindowDrops = fs.WindowDropped
	r.WatchdogRestarts = e.wdRestarts
	r.WatchdogFallbacks = e.wdFallbacks
	return r
}

// onRoundComplete is invoked (outside simulated cost) by the GVT master
// when a round finishes; it records metrics and the disparity sample.
func (e *Engine) onRoundComplete(gvt vtime.Time, sync bool, eff float64) {
	e.checkGVTInvariant(gvt)
	e.gvtRounds++
	if sync {
		e.syncRounds++
	}
	e.finalGVT = gvt
	e.finishedAt = e.env.Now()
	if e.lvtScratch == nil {
		e.lvtScratch = make([]float64, 0, e.cfg.Topology.TotalWorkers())
	}
	lvts := e.lvtScratch[:0]
	var scratch []metrics.WorkerSample
	wantProgress := false
	if e.cfg.Metrics != nil {
		scratch = e.cfg.Metrics.Scratch()
		wantProgress = e.cfg.Metrics.WantProgress()
	}
	var processed, rolled, rollbacks int64
	for _, nd := range e.nodes {
		for _, w := range nd.workers {
			lvt := w.localMinView()
			lvts = append(lvts, lvt)
			if scratch != nil {
				scratch[w.gidx] = metrics.WorkerSample{
					LVT:           metrics.SafeLVT(lvt),
					Pending:       w.pending.Len(),
					Mailbox:       len(w.inbox),
					Uncommitted:   w.uncommitted,
					Rollbacks:     w.st.Rollbacks,
					RolledBack:    w.st.RolledBack,
					BarrierWaitNs: int64(w.st.BarrierWait),
				}
			}
			if wantProgress {
				processed += w.st.Processed
				rolled += w.st.RolledBack
				rollbacks += w.st.Rollbacks
			}
		}
	}
	e.disparity.Observe(lvts)
	e.lvtScratch = lvts[:0]
	if scratch != nil {
		f := e.world.Fabric()
		inMsgs, inBytes := f.InFlight()
		e.cfg.Metrics.SampleRound(metrics.RoundSample{
			Round: e.gvtRounds, GVT: gvt, AtNanos: int64(e.env.Now()),
			Sync: sync, Efficiency: eff,
			MPIInFlightMsgs: inMsgs, MPIInFlightBytes: inBytes,
			MPISentMsgs: f.MessagesSent, MPISentBytes: f.BytesSent,
		}, scratch)
	}
	if wantProgress {
		e.cfg.Metrics.Progress(metrics.ProgressUpdate{
			Round: e.gvtRounds, GVT: gvt, AtNanos: int64(e.env.Now()),
			Sync: sync, Efficiency: eff,
			Processed: processed, Committed: processed - rolled,
			Rollbacks: rollbacks, RolledBack: rolled,
			Migrations: e.migrations,
		})
	}
	if e.cfg.Trace != nil {
		e.cfg.Trace.Round(trace.Round{
			Round: e.gvtRounds, GVT: gvt, AtNanos: int64(e.env.Now()),
			Sync: sync, Efficiency: eff,
		})
	}
	if e.TraceRounds {
		e.roundTraces = append(e.roundTraces, RoundTrace{
			Round: e.gvtRounds, GVT: gvt, At: e.env.Now(), Sync: sync, Efficiency: eff,
		})
	}
	// Load-balance planning runs last, over exactly the committed-state
	// snapshot the telemetry above recorded; workers execute the plan at
	// their applyGVT for this (or the next) round.
	e.planBalance(gvt)
}

// Report assembles the machine-readable run report from a completed
// run's statistics, the configuration, and (when Config.Metrics was set)
// the sampled time series and registry contents.
func (e *Engine) Report(r *stats.Run) *metrics.Report {
	cfg := &e.cfg
	rc := metrics.RunConfig{
		Nodes:              cfg.Topology.Nodes,
		WorkersPerNode:     cfg.Topology.WorkersPerNode,
		LPsPerWorker:       cfg.Topology.LPsPerWorker,
		GVT:                cfg.GVT.String(),
		Comm:               cfg.Comm.String(),
		GVTInterval:        cfg.GVTInterval,
		CAThreshold:        cfg.CAThreshold,
		EndTime:            float64(cfg.EndTime),
		Seed:               cfg.Seed,
		QueueKind:          cfg.QueueKind,
		BatchSize:          cfg.BatchSize,
		CheckpointInterval: cfg.CheckpointInterval,
		MaxUncommitted:     cfg.MaxUncommitted,
		Faults:             cfg.FaultLabel,
	}
	if e.balancer != nil {
		rc.Balance = e.balancer.Name()
	}
	rs := metrics.RunStats{
		WallNanos:      int64(r.WallTime),
		Committed:      r.Workers.Committed,
		Processed:      r.Workers.Processed,
		RolledBack:     r.Workers.RolledBack,
		Rollbacks:      r.Workers.Rollbacks,
		Stragglers:     r.Workers.Stragglers,
		AntiRollbacks:  r.Workers.AntiRollbck,
		Efficiency:     r.Efficiency(),
		EventRate:      r.EventRate(),
		GVTRounds:      r.GVTRounds,
		SyncRounds:     r.SyncRounds,
		FinalGVT:       r.FinalGVT,
		Disparity:      r.Disparity,
		SentLocal:      r.Workers.SentLocal,
		SentRegional:   r.Workers.SentRegion,
		SentRemote:     r.Workers.SentRemote,
		AntiSent:       r.Workers.AntiSent,
		Annihilated:    r.Workers.Annihilated,
		BarrierWaitNs:  int64(r.Workers.BarrierWait),
		IdleNs:         int64(r.Workers.IdleTime),
		GVTTimeNs:      int64(r.Workers.GVTTime),
		MPIMessages:    r.MPIMessages,
		MPIBytes:       r.MPIBytes,
		CommitChecksum: metrics.Checksum(r.CommitChecksum),

		Retransmits:        r.Retransmits,
		TransportDups:      r.TransportDups,
		TransportExhausted: r.TransportExhausted,
		FaultDrops:         r.FaultDrops,
		FaultDups:          r.FaultDups,
		FaultJitters:       r.FaultJitters,
		FaultWindowDrops:   r.FaultWindowDrops,
		WatchdogRestarts:   r.WatchdogRestarts,
		WatchdogFallbacks:  r.WatchdogFallbacks,
		Migrations:         r.Migrations,
		MigratedEvents:     r.MigratedEvents,
	}
	return metrics.BuildReport(rc, rs, e.cfg.Metrics, cfg.Topology.WorkersPerNode)
}

// clusterEfficiency returns cumulative committed-so-far efficiency, the
// quantity CA-GVT thresholds on. Committed-so-far is approximated as
// processed − rolled-back, which the paper's computeEfficiency() also
// observes (events not yet reverted count as committed "so far").
func (e *Engine) clusterEfficiency() float64 {
	var processed, rolled int64
	for _, nd := range e.nodes {
		for _, w := range nd.workers {
			processed += w.st.Processed
			rolled += w.st.RolledBack
		}
	}
	if processed == 0 {
		return 1
	}
	return float64(processed-rolled) / float64(processed)
}
