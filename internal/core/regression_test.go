package core

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/event"
)

// debugModel is a minimal PHOLD-like model defined inside the package so
// white-count internals can be audited without an import cycle.
type debugModel struct{ self event.LPID }

func (m *debugModel) Init(ctx Context) { ctx.Send(m.self, 0.1+ctx.RNG().Exp(1), 0, nil) }

var debugTop = cluster.Topology{Nodes: 2, WorkersPerNode: 2, LPsPerWorker: 8}

func (m *debugModel) OnEvent(ctx Context, _ *event.Event) {
	top := debugTop
	u := ctx.RNG().Float64()
	dst := m.self
	switch {
	case u < 0.2:
		myNode := top.NodeOf(m.self)
		n := ctx.RNG().Intn(top.Nodes - 1)
		if n >= myNode {
			n++
		}
		perNode := top.WorkersPerNode * top.LPsPerWorker
		dst = event.LPID(n*perNode + ctx.RNG().Intn(perNode))
	case u < 0.8:
		myNode, myWorker := top.WorkerOf(m.self)
		w := ctx.RNG().Intn(top.WorkersPerNode - 1)
		if w >= myWorker {
			w++
		}
		dst = top.FirstLP(myNode, w) + event.LPID(ctx.RNG().Intn(top.LPsPerWorker))
	}
	d := 0.1 + ctx.RNG().Exp(1)
	ctx.Spin(1500)
	ctx.Send(dst, d, 0, nil)
}
func (m *debugModel) Snapshot() any { return nil }
func (m *debugModel) Restore(any)   {}

// TestWhiteTokenRoundOverlap is a regression test for the round-overlap
// race where the master started the next round's white token before a
// slave node reset its control message, collecting a stale delta (it
// manifested as a negative in-flight white count).
func TestWhiteTokenRoundOverlap(t *testing.T) {
	top := debugTop
	cfg := Config{
		Topology: top, GVT: GVTMattern, GVTInterval: 3,
		Comm: CommDedicated, EndTime: 15, Seed: 7,
		Model: func(lp event.LPID, total int) Model { return &debugModel{self: lp} },
	}
	eng := New(cfg)
	defer func() {
		if r := recover(); r != nil {
			fmt.Println("PANIC:", r)
			for _, nd := range eng.nodes {
				fmt.Printf("node %d: cm.phase=%d red=%d delta=%d contributed=%d acked=%d master=%d\n",
					nd.id, nd.cm.phase, nd.cm.redCount, nd.cm.whiteDelta, nd.cm.contributed, nd.cm.acked, nd.master)
				for _, w := range nd.workers {
					fmt.Printf("  w%d/%d: epoch=%d state=%d sC=%v rC=%v inbox=%d\n",
						nd.id, w.idx, w.epoch, w.mstate, w.sentC, w.recvC, len(w.inbox))
				}
			}
			t.Fatal("invariant violated")
		}
	}()
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
