package core_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	core "repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// runWithTelemetry executes one run with a recorder and a trace attached.
func runWithTelemetry(t *testing.T, cfg core.Config) (*core.Engine, *metrics.Report, *trace.Summary) {
	t.Helper()
	var buf bytes.Buffer
	cfg.Trace = trace.NewWriter(&buf)
	cfg.Metrics = metrics.NewRecorder()
	eng := core.New(cfg)
	r, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := trace.Summarize(&buf)
	if err != nil {
		t.Fatalf("telemetry trace does not decode: %v", err)
	}
	return eng, eng.Report(r), sum
}

func TestRunReportContent(t *testing.T) {
	cfg := testConfig(2, 2, 8, core.GVTControlled, core.CommDedicated)
	_, rep, sum := runWithTelemetry(t, cfg)

	if rep.Schema != metrics.ReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Config.Nodes != 2 || rep.Config.GVT != "ca-gvt" || rep.Config.Comm != "dedicated" {
		t.Fatalf("config block = %+v", rep.Config)
	}
	if rep.Stats.Committed == 0 || rep.Stats.GVTRounds == 0 {
		t.Fatalf("stats block empty: %+v", rep.Stats)
	}
	if len(rep.Rounds) == 0 {
		t.Fatal("no round samples recorded")
	}
	if len(rep.Workers) != 4 {
		t.Fatalf("worker series = %d, want 4", len(rep.Workers))
	}
	for _, ws := range rep.Workers {
		if len(ws.Samples) != len(rep.Rounds) {
			t.Fatalf("worker %d series out of lockstep: %d vs %d rounds",
				ws.Worker, len(ws.Samples), len(rep.Rounds))
		}
		for _, s := range ws.Samples {
			if s.LVT < -1 {
				t.Fatalf("worker %d LVT = %v", ws.Worker, s.LVT)
			}
		}
	}
	// Per-round series must carry the tentpole's key signals.
	lastRound := rep.Rounds[len(rep.Rounds)-1]
	if lastRound.Efficiency <= 0 || lastRound.GVT <= 0 {
		t.Fatalf("last round sample = %+v", lastRound)
	}
	if lastRound.MPISentBytes == 0 {
		t.Fatal("MPI sent bytes never sampled (2-node run must have MPI traffic)")
	}
	// The engine registers its histograms; a 2-node optimistic run drains
	// inboxes, so inbox_drain_batch must have observations.
	found := false
	for _, h := range rep.Histograms {
		if h.Name == "inbox_drain_batch" && h.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("inbox_drain_batch histogram missing or empty: %+v", rep.Histograms)
	}
	// The trace must carry the v1 record types alongside commits/rounds.
	if sum.Version != trace.Version {
		t.Fatalf("trace version = %d", sum.Version)
	}
	if sum.Commits != rep.Stats.Committed {
		t.Fatalf("trace commits %d != report committed %d", sum.Commits, rep.Stats.Committed)
	}
	if sum.MPISends == 0 || sum.MPIRecvs == 0 {
		t.Fatalf("no MPI records in trace: %+v", sum)
	}
	if sum.PhaseRecords == 0 {
		t.Fatal("no phase transitions in trace")
	}
	if sum.Rollbacks != rep.Stats.Rollbacks {
		t.Fatalf("trace rollbacks %d != stats %d", sum.Rollbacks, rep.Stats.Rollbacks)
	}
}

// TestTelemetryDoesNotPerturb asserts the run with full telemetry
// commits the identical event stream at the identical virtual-time rate:
// sampling and tracing run outside simulated cost, so the committed-event
// rate must differ by far less than the 5%% acceptance bound — it must
// not differ at all.
func TestTelemetryDoesNotPerturb(t *testing.T) {
	cfg := testConfig(2, 2, 8, core.GVTControlled, core.CommDedicated)
	bare := core.New(cfg)
	rBare, err := bare.Run()
	if err != nil {
		t.Fatal(err)
	}
	_, rep, _ := runWithTelemetry(t, testConfig(2, 2, 8, core.GVTControlled, core.CommDedicated))

	if got, want := rep.Stats.CommitChecksum, metrics.Checksum(rBare.CommitChecksum); got != want {
		t.Fatalf("telemetry changed the committed stream: %s != %s", got, want)
	}
	if rBare.EventRate() <= 0 {
		t.Fatal("bare run has no event rate")
	}
	diff := math.Abs(rep.Stats.EventRate-rBare.EventRate()) / rBare.EventRate()
	if diff >= 0.05 {
		t.Fatalf("telemetry overhead %.2f%% >= 5%% (rates %.4g vs %.4g)",
			100*diff, rep.Stats.EventRate, rBare.EventRate())
	}
}

// jsonKeyPaths returns the sorted set of key paths in a JSON document;
// array elements contribute their first element's paths under "[]".
func jsonKeyPaths(v any, prefix string, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			p := prefix + "." + k
			out[p] = true
			jsonKeyPaths(sub, p, out)
		}
	case []any:
		if len(x) > 0 {
			jsonKeyPaths(x[0], prefix+"[]", out)
		}
	}
}

// TestReportShapeGolden locks the run-report JSON layout: downstream
// plotting scripts key on these paths. Regenerate deliberately with
// `go test ./internal/core -run Golden -update` after a schema bump.
func TestReportShapeGolden(t *testing.T) {
	cfg := testConfig(2, 2, 8, core.GVTControlled, core.CommDedicated)
	_, rep, _ := runWithTelemetry(t, cfg)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	paths := map[string]bool{}
	jsonKeyPaths(doc, "", paths)
	keys := make([]string, 0, len(paths))
	for p := range paths {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	golden := filepath.Join("testdata", "report_shape.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("report JSON shape changed; run with -update if intended.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRollbackTraceConsistency checks rollback records against the
// engine's own counters across GVT algorithms.
func TestRollbackTraceConsistency(t *testing.T) {
	for _, gvt := range allGVT() {
		t.Run(fmt.Sprint(gvt), func(t *testing.T) {
			cfg := testConfig(2, 2, 8, gvt, core.CommDedicated)
			_, rep, sum := runWithTelemetry(t, cfg)
			if sum.Rollbacks != rep.Stats.Rollbacks || sum.RolledBack != rep.Stats.RolledBack {
				t.Fatalf("trace (%d episodes, %d undone) != stats (%d, %d)",
					sum.Rollbacks, sum.RolledBack, rep.Stats.Rollbacks, rep.Stats.RolledBack)
			}
		})
	}
}
