package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/mpi"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MPI tags used by the engine.
const (
	tagEvents  = mpi.TagUser + iota // remote event messages
	tagToken                        // Mattern/CA-GVT ring control message
	tagAcks                         // Samadi GVT acknowledgements
	tagMigrate                      // LP migration messages (load balancing)
)

// node models one cluster node: its worker threads, the shared outbound
// structure remote messages are written into, the node-level GVT state and
// (in dedicated mode) the MPI communication thread.
type node struct {
	eng     *Engine
	id      int
	workers []*worker
	rank    *mpi.Rank

	// cost is this node's CPU cost model: the global model, scaled by the
	// fault plan's straggler factor when this node is a straggler. Every
	// CPU charge on this node's threads goes through it.
	cost cluster.CostModel

	// pool recycles event objects for every thread of this node (nil
	// with PoolOff). No lock: the cooperative kernel runs one goroutine
	// at a time, so pool operations never race.
	pool *event.Pool

	// outbox is the "global shared data structure" (§4) worker threads
	// write remote messages into for the MPI thread to send. outAcks is
	// its Samadi-acknowledgement counterpart.
	outMu   sim.Mutex
	outbox  []*event.Event
	outAcks []remoteAck
	outMigs []*migMsg // outbound LP migrations (balancer runs only)

	// outFree is the spare backing array the pump swaps into outbox on a
	// full drain, so steady-state pumping re-uses two arrays instead of
	// growing a fresh one per drain (pool modes only).
	outFree []*event.Event

	// Barrier-GVT shared state (Algorithm 1). Slots are per worker.
	gvtBar   *sim.Barrier // two-phase node barrier: enter
	gvtBar2  *sim.Barrier // two-phase node barrier: exit
	gvtReq   bool         // a GVT round has been requested on this node
	msgCount []int64      // per-worker sent-received published at the barrier
	localMin []float64    // per-worker minimum unprocessed timestamp
	transit  int64        // cluster in-transit total published by the comm role
	nodeGVT  float64      // cluster GVT published by the comm role

	// Mattern/CA-GVT control message (Algorithm 2/3).
	cm nodeCM

	// comm thread bookkeeping
	commProc      *sim.Proc
	workersExited int
	master        masterState // ring-master state (node 0 only)
	heldToken     *gvtToken   // token waiting for a local condition

	// Ring-token liveness state. The master (node 0) stamps every token
	// lap with a fresh uid, keeps a copy for watchdog resends and tracks
	// when the ring last made progress; slaves memoize the contribution
	// they folded into each lap so a resent duplicate re-applies it
	// without touching live CM state.
	tokenSeq        uint64                // last uid issued (master only)
	lastSent        gvtToken              // copy of the last token sent (master only)
	lastProgress    sim.Time              // when the master last saw ring progress
	wdRestartsRound int                   // watchdog resends within the current round
	tokMemo         map[uint64]tokContrib // served laps by uid (slaves only)
	memoMax         uint64                // highest uid memoized (prune horizon)
	// sync{1,2,3}Done track the dedicated comm thread's participation in
	// CA-GVT's three per-round synchronization points.
	sync1Done bool
	sync2Done bool
	sync3Done bool
}

func newNode(eng *Engine, id int, streams *rng.Sequence) *node {
	top := eng.cfg.Topology
	n := &node{
		eng:      eng,
		id:       id,
		rank:     eng.world.Rank(id),
		cost:     eng.cfg.Cost,
		msgCount: make([]int64, top.WorkersPerNode),
		localMin: make([]float64, top.WorkersPerNode),
	}
	if eng.cfg.Faults != nil {
		if f, ok := eng.cfg.Faults.Straggler[id]; ok {
			n.cost = n.cost.Scaled(f)
		}
	}
	if eng.cfg.Pool != PoolOff {
		n.pool = event.NewPool(eng.cfg.Pool == PoolDebug)
	}
	n.outMu.Name = fmt.Sprintf("outbox-%d", id)
	n.outMu.HoldCost = n.cost.RegionalLockHold
	participants := top.WorkersPerNode
	if eng.cfg.Comm == CommDedicated {
		participants++
	}
	n.gvtBar = sim.NewBarrier(fmt.Sprintf("gvt-%d", id), participants)
	n.gvtBar2 = sim.NewBarrier(fmt.Sprintf("gvt2-%d", id), participants)
	n.cm.init(n, top.WorkersPerNode)
	for wi := 0; wi < top.WorkersPerNode; wi++ {
		n.workers = append(n.workers, newWorker(eng, n, wi, streams))
	}
	return n
}

// spawn launches the node's simulated threads.
func (n *node) spawn() {
	for _, w := range n.workers {
		w := w
		n.eng.env.Spawn(fmt.Sprintf("n%d/w%d", n.id, w.idx), w.run)
	}
	if n.eng.cfg.Comm == CommDedicated {
		n.commProc = n.eng.env.Spawn(fmt.Sprintf("n%d/comm", n.id), n.commLoop)
	}
}

// commLoop is the dedicated MPI thread: it exclusively services MPI sends,
// receives and the GVT algorithm's MPI duties (the paper's proposal).
func (n *node) commLoop(p *sim.Proc) {
	for n.workersExited < len(n.workers) {
		worked := n.pump(p)
		worked = n.gvtCommPoll(p) || worked
		if !worked {
			p.Advance(n.cost.IdlePoll)
		}
	}
}

// pumpBudget bounds how many messages one pump call moves in each
// direction, so the comm thread interleaves GVT protocol duties with
// event forwarding even under backlog (as ROSS's MPI thread alternates
// between its service loops).
const pumpBudget = 32

// pump moves remote messages in both directions: it drains the node
// outbox onto the wire and routes arrived MPI messages into the target
// workers' mailboxes. It returns whether any message moved.
func (n *node) pump(p *sim.Proc) bool {
	worked := false
	tr := n.eng.cfg.Trace
	// Outbound: take a bounded batch from the outbox under the shared lock.
	n.outMu.Lock(p)
	out := n.outbox
	backlog := 0
	drained := false
	if len(out) > pumpBudget {
		out = out[:pumpBudget]
		n.outbox = n.outbox[pumpBudget:]
		backlog = len(n.outbox)
	} else {
		// Full drain: swap in the spare backing array (if any) so the
		// workers' next enqueues append without growing a fresh slice.
		n.outbox = n.outFree
		n.outFree = nil
		drained = true
	}
	n.outMu.Unlock(p)
	wpn := n.eng.cfg.Topology.WorkersPerNode
	for _, ev := range out {
		dst := n.eng.routing.Node(ev.Dst)
		if dst == n.id {
			// The destination LP migrated onto this node while the event
			// sat in the outbox: short-circuit to the local mailbox (the
			// send/recv counters stay symmetric — the sender counted a
			// remote send, the drain will count the receive).
			n.workers[n.eng.routing.Worker(ev.Dst)%wpn].deposit(p, ev)
			worked = true
			continue
		}
		n.rank.Send(p, dst, tagEvents, ev.WireSize(), ev)
		if tr != nil {
			tr.MPISend(trace.MPISend{
				Src: uint16(n.id), Dst: uint16(dst), Bytes: uint32(ev.WireSize()),
				QueueDepth: uint32(backlog), AtNanos: int64(p.Now()),
			})
		}
		worked = true
	}
	// Retire the drained backing array as the next spare. No simulated
	// lock (and so no virtual-cost change): the cooperative kernel runs
	// one goroutine at a time, and a racing pump at worst drops a spare.
	if drained && n.pool != nil && cap(out) > 0 {
		for i := range out {
			out[i] = nil
		}
		n.outFree = out[:0]
	}
	// Outbound LP migrations (balancer runs only).
	if n.eng.migEnabled && len(n.outMigs) > 0 {
		n.outMu.Lock(p)
		migs := n.outMigs
		n.outMigs = nil
		n.outMu.Unlock(p)
		for _, m := range migs {
			n.rank.Send(p, m.dstNode, tagMigrate, m.wireSize(), m)
			if tr != nil {
				tr.MPISend(trace.MPISend{
					Src: uint16(n.id), Dst: uint16(m.dstNode), Bytes: uint32(m.wireSize()),
					AtNanos: int64(p.Now()),
				})
			}
			worked = true
		}
	}
	// Outbound acknowledgements (Samadi GVT only).
	n.outMu.Lock(p)
	acks := n.outAcks
	if len(acks) > pumpBudget {
		acks = acks[:pumpBudget]
		n.outAcks = n.outAcks[pumpBudget:]
	} else {
		n.outAcks = nil
	}
	n.outMu.Unlock(p)
	for _, ra := range acks {
		n.rank.Send(p, ra.dstNode, tagAcks, ackWire, ra.a)
		if tr != nil {
			tr.MPISend(trace.MPISend{
				Src: uint16(n.id), Dst: uint16(ra.dstNode), Bytes: ackWire,
				AtNanos: int64(p.Now()),
			})
		}
		worked = true
	}
	// Inbound: drain waiting event messages, up to the budget.
	for i := 0; i < pumpBudget; i++ {
		m, ok := n.rank.TryRecv(p, tagEvents)
		if !ok {
			break
		}
		ev := m.Payload.(*event.Event)
		if rn := n.eng.routing.Node(ev.Dst); rn != n.id {
			// The destination LP migrated away while this event was in
			// flight: forward it toward the current owner. The hop is
			// transparent to GVT accounting — no worker counts a receive
			// here, so the message stays "in transit" end to end.
			if tr != nil {
				tr.MPIRecv(trace.MPIRecv{
					Src: uint16(m.Src), Dst: uint16(n.id), Bytes: uint32(m.Size),
					AtNanos: int64(p.Now()),
				})
			}
			n.enqueueRemote(p, ev)
			worked = true
			continue
		}
		wi := n.eng.routing.Worker(ev.Dst) % n.eng.cfg.Topology.WorkersPerNode
		n.workers[wi].deposit(p, ev)
		if tr != nil {
			tr.MPIRecv(trace.MPIRecv{
				Src: uint16(m.Src), Dst: uint16(n.id), Bytes: uint32(m.Size),
				QueueDepth: uint32(len(n.workers[wi].inbox)), AtNanos: int64(p.Now()),
			})
		}
		worked = true
	}
	// Inbound LP migrations.
	if n.eng.migEnabled {
		for i := 0; i < pumpBudget; i++ {
			m, ok := n.rank.TryRecv(p, tagMigrate)
			if !ok {
				break
			}
			mg := m.Payload.(*migMsg)
			n.workers[mg.dstWorker].depositMig(p, mg)
			if tr != nil {
				tr.MPIRecv(trace.MPIRecv{
					Src: uint16(m.Src), Dst: uint16(n.id), Bytes: uint32(m.Size),
					AtNanos: int64(p.Now()),
				})
			}
			worked = true
		}
	}
	// Inbound acknowledgements.
	for i := 0; i < pumpBudget; i++ {
		m, ok := n.rank.TryRecv(p, tagAcks)
		if !ok {
			break
		}
		a := m.Payload.(ack)
		wpn := n.eng.cfg.Topology.WorkersPerNode
		n.workers[a.dstWorker%wpn].depositAck(p, a)
		if tr != nil {
			tr.MPIRecv(trace.MPIRecv{
				Src: uint16(m.Src), Dst: uint16(n.id), Bytes: uint32(m.Size),
				AtNanos: int64(p.Now()),
			})
		}
		worked = true
	}
	return worked
}

// remoteAck is an acknowledgement waiting for the MPI thread.
type remoteAck struct {
	a       ack
	dstNode int
}

// enqueueRemoteAck appends a Samadi ack to the node's outbound structure.
func (n *node) enqueueRemoteAck(p *sim.Proc, a ack, dstNode int) {
	n.outMu.Lock(p)
	p.Advance(n.cost.RemoteEnqueue)
	n.outAcks = append(n.outAcks, remoteAck{a: a, dstNode: dstNode})
	n.outMu.Unlock(p)
}

// enqueueRemote appends ev to the node's outbound structure (worker side
// of the remote path).
func (n *node) enqueueRemote(p *sim.Proc, ev *event.Event) {
	n.outMu.Lock(p)
	p.Advance(n.cost.RemoteEnqueue)
	n.outbox = append(n.outbox, ev)
	if h := n.eng.hOutboxDepth; h != nil {
		h.Observe(int64(len(n.outbox)))
	}
	n.outMu.Unlock(p)
}

// gvtCommPoll runs the comm role of the configured GVT algorithm. In
// dedicated mode the MPI thread calls it; in combined/shared modes
// worker 0 does.
func (n *node) gvtCommPoll(p *sim.Proc) bool {
	switch n.eng.cfg.GVT {
	case GVTBarrier:
		if n.gvtReq {
			n.commBarrierRound(p)
			return true
		}
		return false
	case GVTSamadi:
		if n.gvtReq {
			n.commSamadiRound(p)
			return true
		}
		return false
	default:
		return n.matternCommPoll(p)
	}
}

// syncPoint is one of CA-GVT's synchronization points (Algorithm 3 lines
// 4, 14, 30): all node participants meet at the first node barrier; when
// the point is global, the comm role crosses the MPI barrier while the
// rest wait at the second node barrier. The middle sync point of a round
// is node-local (global=false) — its cross-node alignment comes from the
// token protocol, which avoids a circular wait with the reduce token.
func (n *node) syncPoint(p *sim.Proc, comm, global bool, st *workerBarrierStats) {
	cost := n.cost.BarrierEntry
	p.Advance(cost)
	n.barrierWait(p, n.gvtBar, st)
	if comm && global && n.eng.world.Size() > 1 {
		n.rank.Barrier(p)
	}
	p.Advance(cost)
	n.barrierWait(p, n.gvtBar2, st)
}

// workerBarrierStats lets barrier idle time (and the barrier phase in
// the trace) be attributed to a worker; the dedicated comm thread
// passes nil.
type workerBarrierStats struct {
	wait *sim.Time
	w    *worker
}

func (n *node) barrierWait(p *sim.Proc, b *sim.Barrier, st *workerBarrierStats) {
	start := p.Now()
	if st != nil && st.w != nil {
		st.w.setPhase(trace.PhaseBarrier)
	}
	b.Wait(p)
	if st != nil {
		if st.wait != nil {
			*st.wait += p.Now() - start
		}
		if st.w != nil {
			// Back inside GVT protocol steps once released.
			st.w.setPhase(trace.PhaseGVT)
		}
	}
}
