package core_test

import (
	"fmt"
	"testing"

	core "repro/internal/core"
	"repro/internal/fabric"
)

// stragglerPlan builds the built-in straggler fault scenario for the
// balance-test topology.
func stragglerPlan(t *testing.T) *fabric.FaultPlan {
	t.Helper()
	plan, err := fabric.Scenario("straggler", balanceTopology().Nodes)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// poolGVTs are the four GVT algorithms the pool parity sweep covers.
func poolGVTs() []core.GVTKind {
	return []core.GVTKind{core.GVTBarrier, core.GVTMattern, core.GVTControlled, core.GVTSamadi}
}

// TestPoolParityAcrossModelsAndGVT: event recycling must be invisible.
// For every benchmark model and every GVT algorithm, the committed event
// stream (checksum + count) and the virtual wall-clock must be
// bit-identical across PoolOff (fresh allocation), PoolOn (free lists)
// and PoolDebug (free lists + poison + liveness asserts). The debug leg
// doubles as a use-after-recycle sweep over every recycle point the
// engine has: one stale write anywhere and the poisoned pool panics.
func TestPoolParityAcrossModelsAndGVT(t *testing.T) {
	for _, m := range balanceModels(balanceTopology()) {
		for _, gvt := range poolGVTs() {
			t.Run(fmt.Sprintf("%s/%s", m.name, gvt), func(t *testing.T) {
				type result struct {
					checksum  uint64
					committed int64
					wall      int64
					recycled  int64
				}
				results := map[core.PoolMode]result{}
				for _, mode := range []core.PoolMode{core.PoolOff, core.PoolOn, core.PoolDebug} {
					cfg := balanceConfig(m, "", gvt)
					cfg.Pool = mode
					r, err := core.New(cfg).Run()
					if err != nil {
						t.Fatalf("pool=%v: %v", mode, err)
					}
					results[mode] = result{r.CommitChecksum, r.Workers.Committed, int64(r.WallTime), r.PoolRecycled}
				}
				off, on, dbg := results[core.PoolOff], results[core.PoolOn], results[core.PoolDebug]
				if off.checksum != on.checksum || off.committed != on.committed || off.wall != on.wall {
					t.Errorf("PoolOn diverged: off=%+v on=%+v", off, on)
				}
				if off.checksum != dbg.checksum || off.committed != dbg.committed || off.wall != dbg.wall {
					t.Errorf("PoolDebug diverged: off=%+v debug=%+v", off, dbg)
				}
				if off.recycled != 0 {
					t.Errorf("PoolOff recycled %d events", off.recycled)
				}
				if on.recycled == 0 {
					t.Errorf("PoolOn recycled nothing (pool not wired in?)")
				}
			})
		}
	}
}

// TestPoolParityUnderFaultsAndMigration extends the parity check to the
// adversarial regime: straggler faults plus the greedy balancer, where
// events additionally travel through the reliable transport, limbo
// mailboxes and LP migration packs. Recycling an event any of those
// structures still references would change the stream (or panic the
// debug leg).
func TestPoolParityUnderFaultsAndMigration(t *testing.T) {
	m := compModel(balanceTopology(), 60)
	var sums []uint64
	for _, mode := range []core.PoolMode{core.PoolOff, core.PoolOn, core.PoolDebug} {
		cfg := balanceConfig(m, "greedy", core.GVTControlled)
		cfg.Pool = mode
		cfg.Faults = stragglerPlan(t)
		cfg.FaultLabel = "straggler"
		r, err := core.New(cfg).Run()
		if err != nil {
			t.Fatalf("pool=%v: %v", mode, err)
		}
		sums = append(sums, r.CommitChecksum)
	}
	if sums[0] != sums[1] || sums[0] != sums[2] {
		t.Errorf("checksums diverged across pool modes: %x", sums)
	}
}
