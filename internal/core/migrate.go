package core

import (
	"fmt"

	"repro/internal/balance"
	"repro/internal/event"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// LP migration (dynamic load balancing).
//
// At every completed GVT round the engine snapshots per-node committed
// telemetry and asks the configured balance.Policy for moves; each move
// is executed by the owning worker at the tail of its next applyGVT —
// the GVT commit point, the only moment where everything below GVT has
// been fossil-collected and the LP's surviving state is exactly its
// committed prefix.
//
// Packing an LP first rolls back its uncommitted suffix (a normal Time
// Warp rollback: anti-messages cancel its speculative sends), so the
// shipped snapshot is pure committed state. The message carries the
// model snapshot, RNG stream state, stamp sequence counter, commit
// checksum, the LP's pending events and stashed anti-messages. The
// cluster-wide routing table is updated atomically at pack time, so
// every send issued afterwards is addressed to the new home; events
// already in flight toward the old home are forwarded hop-by-hop (node
// pump re-enqueues toward the current owner; a worker that drained one
// re-routes it as a fresh send).
//
// GVT safety: a migration message is counted exactly like a remote
// event message — the sender bumps msgSent and the epoch-colored send
// counter, the installer bumps the receive side, and under Samadi the
// sender covers it via its unacked set until the installer acks. The
// payload events therefore stay observable to every GVT algorithm for
// the whole flight, and events arriving for a not-yet-installed LP park
// in the destination worker's limbo, which localMin includes.

// migOrder is one planned migration, parked on the owning worker until
// its next applyGVT.
type migOrder struct {
	lp        event.LPID
	dstNode   int
	dstWorker int // index within dstNode
}

// migMsg is the wire representation of a migrating LP.
type migMsg struct {
	lp        event.LPID
	srcNode   int
	dstNode   int
	dstWorker int
	round     int64 // GVT round the decision was executed at

	snap       any
	rngState   rng.State
	seq        uint64
	checksum   stats.Checksum
	committed  int64 // cumulative per-LP committed count (heat continuity)
	commitMark int64

	events []*event.Event // pending events, stamp order
	antis  []*event.Event // stashed anti-messages (>= GVT)

	color event.Color // sender epoch (mod 4) for Mattern accounting
	ackID uint64      // Samadi coverage; 0 outside Samadi
}

// migWireBase approximates the serialized size of everything except the
// carried events: model snapshot, RNG state, counters, routing update.
const migWireBase = 96

func (m *migMsg) wireSize() int {
	sz := migWireBase
	for _, ev := range m.events {
		sz += ev.WireSize()
	}
	for _, a := range m.antis {
		sz += a.WireSize()
	}
	return sz
}

// minPayloadStamp returns the smallest stamp the message could still
// inject into the simulation, or +Inf for an eventless migration.
func (m *migMsg) minPayloadStamp() float64 {
	min := vtime.Inf
	if len(m.events) > 0 { // events are stamp-sorted
		min = m.events[0].Stamp.T
	}
	for _, a := range m.antis {
		if a.Stamp.T < min {
			min = a.Stamp.T
		}
	}
	return min
}

// planBalance runs the policy against this round's committed telemetry
// and parks the resulting orders on the owning workers. Called from
// onRoundComplete (scheduler-callback context: a consistent snapshot,
// before any worker resumes from the round).
func (e *Engine) planBalance(gvt float64) {
	if e.balancer == nil || gvt > float64(e.cfg.EndTime) {
		return
	}
	top := e.cfg.Topology
	nodeStats := make([]balance.NodeStats, len(e.nodes))
	lpLoads := make([]balance.LPLoad, 0, top.TotalLPs())
	for ni, nd := range e.nodes {
		ns := balance.NodeStats{Node: ni, MinLVT: vtime.Inf, CostFactor: e.balanceFactors[ni]}
		for _, w := range nd.workers {
			ns.Committed += w.st.Committed
			ns.RolledBack += w.st.RolledBack
			if lm := w.localMin(); lm < ns.MinLVT {
				ns.MinLVT = lm
			}
			ns.LPs += len(w.lps)
			for _, l := range w.lps {
				lpLoads = append(lpLoads, balance.LPLoad{LP: l.id, Node: ni, Heat: l.committed - l.commitMark})
				l.commitMark = l.committed
			}
		}
		ns.CommittedDelta = ns.Committed - e.prevCommitted[ni]
		ns.RolledBackDelta = ns.RolledBack - e.prevRolled[ni]
		e.prevCommitted[ni] = ns.Committed
		e.prevRolled[ni] = ns.RolledBack
		if ns.MinLVT >= vtime.Inf {
			ns.Lag = vtime.Inf
		} else {
			ns.Lag = ns.MinLVT - gvt
		}
		nodeStats[ni] = ns
	}
	moves := e.balancer.Decide(e.gvtRounds, gvt, nodeStats, lpLoads)
	if len(moves) == 0 {
		return
	}
	// Resolve each accepted move to a destination worker: fewest LPs
	// (counting installs already assigned this plan), lowest index wins.
	assigned := make(map[int]int)
	for _, mv := range moves {
		if int(mv.LP) >= top.TotalLPs() || e.migrating[mv.LP] {
			continue
		}
		if mv.To < 0 || mv.To >= len(e.nodes) || mv.To == mv.From {
			continue
		}
		if e.routing.Node(mv.LP) != mv.From {
			continue
		}
		gw := e.routing.Worker(mv.LP)
		sw := e.nodes[gw/top.WorkersPerNode].workers[gw%top.WorkersPerNode]
		if sw.byID[mv.LP] == nil {
			continue
		}
		dn := e.nodes[mv.To]
		best, bestLoad := 0, int(^uint(0)>>1)
		for wi, w := range dn.workers {
			if load := len(w.lps) + assigned[w.gidx]; load < bestLoad {
				best, bestLoad = wi, load
			}
		}
		assigned[dn.workers[best].gidx]++
		sw.migOut = append(sw.migOut, migOrder{lp: mv.LP, dstNode: mv.To, dstWorker: best})
		e.migrating[mv.LP] = true
	}
}

// executeMigrations packs and ships this worker's planned migrations.
// Called at the tail of applyGVT, with g the just-installed GVT.
func (w *worker) executeMigrations(g float64) {
	orders := w.migOut
	w.migOut = nil
	for _, o := range orders {
		if l := w.byID[o.lp]; l != nil {
			w.migrateOut(l, g, o)
		} else {
			delete(w.eng.migrating, o.lp)
		}
	}
}

// migrateOut packs l at the commit point g and ships it toward its new
// home. The routing table flips inside this call — atomically, since the
// cooperative kernel runs no other process during it.
func (w *worker) migrateOut(l *lp, g float64, o migOrder) {
	eng := w.eng
	cfg := &eng.cfg
	// Undo the uncommitted suffix (every history entry stamped >= g): a
	// regular rollback that re-enqueues the undone events (extracted
	// below) and anti-messages their speculative sends.
	w.rollback(l, vtime.Stamp{T: g}, false)

	events := w.pending.RemoveFor(l.id)
	antis := l.pendingAnti
	l.pendingAnti = nil

	m := &migMsg{
		lp: l.id, srcNode: w.node.id, dstNode: o.dstNode, dstWorker: o.dstWorker,
		round:     eng.gvtRounds,
		snap:      l.model.Snapshot(),
		rngState:  l.rng.Save(),
		seq:       l.seq,
		checksum:  l.checksum,
		committed: l.committed, commitMark: l.commitMark,
		events: events, antis: antis,
	}
	// Detach the LP from this worker, then reroute: from this instant
	// every new send targets the destination worker.
	w.removeLP(l.id)
	gw := o.dstNode*cfg.Topology.WorkersPerNode + o.dstWorker
	eng.routing.Move(l.id, gw)
	eng.migLedger[l.id] = l.checksum
	eng.migrations++
	eng.migratedEvents += int64(len(events))

	// GVT accounting: one colored cross-node message, covered from pack
	// to install.
	m.color = event.Color(w.epoch & 3)
	w.msgSent++
	w.sentC[w.epoch&3]++
	if eng.samadiEnabled() {
		m.ackID = w.unacked.add(uint64(w.gidx)<<ackWorkerShift, m.minPayloadStamp())
	}
	if min := m.minPayloadStamp(); w.mstate != wIdle && min < w.minRed {
		w.minRed = min
	}

	cost := &w.node.cost
	w.proc.Advance(cost.MigratePack + sim.Time(len(events)+len(antis))*cost.MigratePerEvent)
	if t := cfg.Trace; t != nil {
		t.Migration(trace.Migration{
			LP: uint32(l.id), SrcNode: uint16(w.node.id), DstNode: uint16(o.dstNode),
			Round: eng.gvtRounds, Events: uint32(len(events)), AtNanos: int64(w.proc.Now()),
		})
	}
	w.node.enqueueMigration(w.proc, m)
}

// removeLP detaches an LP from this worker, preserving slice order (the
// order collect, applyGVT and telemetry iterate in).
func (w *worker) removeLP(id event.LPID) {
	delete(w.byID, id)
	for i, l := range w.lps {
		if l.id == id {
			w.lps = append(w.lps[:i], w.lps[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("core: removeLP: LP %d not on worker %d/%d", id, w.node.id, w.idx))
}

// enqueueMigration appends m to the node's outbound migration queue for
// the MPI pump.
func (n *node) enqueueMigration(p *sim.Proc, m *migMsg) {
	n.outMu.Lock(p)
	p.Advance(n.cost.RemoteEnqueue)
	n.outMigs = append(n.outMigs, m)
	n.outMu.Unlock(p)
}

// depositMig places an arrived migration into the destination worker's
// migration mailbox (comm thread side).
func (w *worker) depositMig(p *sim.Proc, m *migMsg) {
	w.migMu.Lock(p)
	p.Advance(w.node.cost.RegionalSend)
	w.migIn = append(w.migIn, m)
	w.migMu.Unlock(p)
}

// drainMigrations installs every arrived migration. Callers gate on
// eng.migEnabled; the len check is free of simulated cost so
// balancer-enabled runs that never migrate stay on the fast path.
func (w *worker) drainMigrations() bool {
	if len(w.migIn) == 0 {
		return false
	}
	w.migMu.Lock(w.proc)
	batch := w.migIn
	w.migIn = nil
	w.migMu.Unlock(w.proc)
	for _, m := range batch {
		w.installMigration(m)
	}
	return true
}

// installMigration rebuilds the LP at its new home: fresh model instance
// restored from the shipped snapshot, RNG/sequence/checksum state carried
// over, pending events re-enqueued, then any limbo arrivals delivered in
// arrival order.
func (w *worker) installMigration(m *migMsg) {
	eng := w.eng
	cfg := &eng.cfg
	// Receive-side GVT accounting, mirroring the pack side.
	w.msgRecv++
	w.recvC[uint8(m.color)&3]++
	if eng.samadiEnabled() && m.ackID != 0 {
		w.sendAckTo(m.ackID)
	}
	cost := &w.node.cost
	w.proc.Advance(cost.MigrateInstall + sim.Time(len(m.events)+len(m.antis))*cost.MigratePerEvent)

	l := newLP(m.lp, cfg.Model(m.lp, cfg.Topology.TotalLPs()), rng.New(0))
	l.model.Restore(m.snap)
	l.rng.Restore(m.rngState)
	l.seq = m.seq
	l.checksum = m.checksum
	l.committed = m.committed
	l.commitMark = m.commitMark
	l.pendingAnti = m.antis
	w.lps = append(w.lps, l)
	w.byID[l.id] = l
	for _, ev := range m.events {
		w.pending.Push(ev)
	}
	delete(eng.migLedger, m.lp)
	delete(eng.migrating, m.lp)

	// Events that arrived ahead of the LP: deliver in arrival order.
	if len(w.limbo) > 0 {
		var mine []*event.Event
		keep := w.limbo[:0]
		for _, ev := range w.limbo {
			if ev.Dst == m.lp {
				mine = append(mine, ev)
			} else {
				keep = append(keep, ev)
			}
		}
		for i := len(keep); i < len(w.limbo); i++ {
			w.limbo[i] = nil
		}
		w.limbo = keep
		for _, ev := range mine {
			w.deliver(ev)
		}
	}
}
