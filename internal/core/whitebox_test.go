package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// chainModel sends one event to a fixed next LP per event, recording the
// sum of timestamps it has seen (rollback-protected state).
type chainModel struct {
	self event.LPID
	next event.LPID
	sum  float64
}

func (m *chainModel) Init(ctx Context) {
	if m.self == 0 {
		ctx.Send(m.self, 1.0, 0, nil)
	}
}

func (m *chainModel) OnEvent(ctx Context, ev *event.Event) {
	m.sum += ctx.Now()
	ctx.Send(m.next, 1.0, 0, nil)
}

func (m *chainModel) Snapshot() any { return m.sum }
func (m *chainModel) Restore(s any) { m.sum = s.(float64) }

// newTestEngine builds a 1-node, 1-worker engine without running it, for
// direct manipulation of internals.
func newTestEngine(lps int) (*Engine, *worker) {
	cfg := Config{
		Topology:    cluster.Topology{Nodes: 1, WorkersPerNode: 1, LPsPerWorker: lps},
		GVT:         GVTMattern,
		GVTInterval: 10,
		Comm:        CommDedicated,
		EndTime:     100,
		Seed:        1,
		Model: func(lp event.LPID, total int) Model {
			return &chainModel{self: lp, next: lp} // self-chains by default
		},
	}
	eng := New(cfg)
	return eng, eng.nodes[0].workers[0]
}

// mkEvent fabricates a positive event for white-box tests.
func mkEvent(eng *Engine, t float64, src, dst event.LPID, seq uint64) *event.Event {
	return &event.Event{
		Stamp:   vtime.Stamp{T: t, Src: uint32(src), Seq: seq},
		Src:     src,
		Dst:     dst,
		MatchID: eng.nextMatchID(),
	}
}

// drive runs the worker's processing inside a sim process.
func drive(t *testing.T, eng *Engine, fn func()) {
	t.Helper()
	w := eng.nodes[0].workers[0]
	eng.env.Spawn("test", func(p *sim.Proc) {
		w.proc = p
		fn()
	})
	if err := eng.env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackRestoresStateAndResends(t *testing.T) {
	eng, w := newTestEngine(2)
	drive(t, eng, func() {
		// Drain the Init event of LP 0 and process events up to t=5.
		for i := 0; i < 5; i++ {
			w.processOne(w.pending.Pop())
		}
		l := w.lps[0]
		if len(l.history) != 5 {
			t.Fatalf("history = %d, want 5", len(l.history))
		}
		sumBefore := l.model.(*chainModel).sum
		seqBefore := l.seq

		// Straggler at t=2.5 (between 2nd and 3rd processed events at
		// t=2,3): must undo events with stamp >= 2.5 (t=3,4,5).
		straggler := mkEvent(eng, 2.5, 1, 0, 999)
		w.deliver(straggler)

		if len(l.history) != 2 {
			t.Fatalf("history after rollback = %d, want 2", len(l.history))
		}
		if got := l.model.(*chainModel).sum; got != 1.0+2.0 {
			t.Errorf("state sum = %v, want 3 (events at t=1,2)", got)
		}
		if l.seq >= seqBefore {
			t.Errorf("seq not rewound: %d -> %d", seqBefore, l.seq)
		}
		if sumBefore != 1+2+3+4+5 {
			t.Errorf("pre-rollback sum = %v", sumBefore)
		}
		// Pending now holds the straggler (2.5) and the re-enqueued t=3
		// event. The re-enqueued t=4, t=5 and the t=6 event were created
		// by rolled-back events, so the rollback's anti-messages
		// annihilated them — they will be regenerated during re-execution.
		if w.pending.Len() != 2 {
			t.Fatalf("pending after rollback = %d, want 2", w.pending.Len())
		}
		if w.st.Rollbacks != 1 || w.st.RolledBack != 3 {
			t.Errorf("rollback stats: %d episodes, %d events", w.st.Rollbacks, w.st.RolledBack)
		}
		if w.st.Stragglers != 1 {
			t.Errorf("straggler count = %d", w.st.Stragglers)
		}

		// Re-execution: both chains (integer times restarted from t=3 and
		// the straggler's half-offset chain) replay deterministically.
		for w.pending.Len() > 0 && w.pending.Peek().Stamp.T < 6 {
			w.processOne(w.pending.Pop())
		}
		want := 1 + 2 + 2.5 + 3 + 3.5 + 4 + 4.5 + 5 + 5.5
		if got := l.model.(*chainModel).sum; got != want {
			t.Errorf("replayed sum = %v, want %v", got, want)
		}
	})
}

func TestAntiMessageAnnihilatesPending(t *testing.T) {
	eng, w := newTestEngine(2)
	drive(t, eng, func() {
		pos := mkEvent(eng, 7.0, 1, 0, 50)
		w.deliver(pos)
		before := w.pending.Len()
		w.deliver(pos.AntiCopy())
		if w.pending.Len() != before-1 {
			t.Errorf("pending %d -> %d, want annihilation", before, w.pending.Len())
		}
		if w.st.Annihilated != 1 {
			t.Errorf("Annihilated = %d", w.st.Annihilated)
		}
	})
}

func TestAntiBeforePositiveIsStashed(t *testing.T) {
	eng, w := newTestEngine(2)
	drive(t, eng, func() {
		pos := mkEvent(eng, 7.0, 1, 0, 51)
		anti := pos.AntiCopy()
		w.deliver(anti)
		l := w.lps[0]
		if len(l.pendingAnti) != 1 {
			t.Fatalf("pendingAnti = %d, want 1", len(l.pendingAnti))
		}
		before := w.pending.Len()
		w.deliver(pos)
		if w.pending.Len() != before || len(l.pendingAnti) != 0 {
			t.Error("late positive not annihilated by stashed anti")
		}
	})
}

func TestAntiAgainstProcessedRollsBack(t *testing.T) {
	eng, w := newTestEngine(2)
	drive(t, eng, func() {
		// Process the chain a bit, then cancel a processed event.
		for i := 0; i < 3; i++ {
			w.processOne(w.pending.Pop())
		}
		l := w.lps[0]
		victim := l.history[1].ev // the t=2 event
		w.deliver(victim.AntiCopy())
		if len(l.history) != 1 {
			t.Fatalf("history = %d, want 1 (rolled back past the victim)", len(l.history))
		}
		if w.st.AntiRollbck != 1 {
			t.Errorf("AntiRollbck = %d", w.st.AntiRollbck)
		}
		// The victim must be gone from pending (annihilated after the
		// rollback re-enqueued it).
		for w.pending.Len() > 0 {
			if w.pending.Pop().Matches(victim) {
				t.Error("victim still pending after annihilation")
			}
		}
	})
}

func TestGVTViolationPanics(t *testing.T) {
	eng, w := newTestEngine(2)
	drive(t, eng, func() {
		w.gvtView = 10
		defer func() {
			if recover() == nil {
				t.Error("message below GVT did not panic")
			}
		}()
		w.deliver(mkEvent(eng, 9.0, 1, 0, 1))
	})
}

func TestApplyGVTCommitsAndFrees(t *testing.T) {
	eng, w := newTestEngine(2)
	drive(t, eng, func() {
		for i := 0; i < 6; i++ {
			w.processOne(w.pending.Pop())
		}
		l := w.lps[0]
		if len(l.history) != 6 {
			t.Fatalf("history = %d", len(l.history))
		}
		w.applyGVT(4.5) // commits t=1,2,3,4
		if w.st.Committed != 4 {
			t.Errorf("Committed = %d, want 4", w.st.Committed)
		}
		if len(l.history) != 2 {
			t.Errorf("history after fossil = %d, want 2", len(l.history))
		}
		if w.gvtView != 4.5 {
			t.Errorf("gvtView = %v", w.gvtView)
		}
	})
}

func TestFossilThenRollbackAboveGVTStillWorks(t *testing.T) {
	eng, w := newTestEngine(2)
	drive(t, eng, func() {
		for i := 0; i < 6; i++ {
			w.processOne(w.pending.Pop())
		}
		w.applyGVT(3.5) // history left: t=4,5,6
		w.deliver(mkEvent(eng, 4.5, 1, 0, 77))
		l := w.lps[0]
		// Events 5,6 rolled back; 4 remains.
		if len(l.history) != 1 || l.history[0].ev.Stamp.T != 4 {
			t.Errorf("history after post-fossil rollback: %d entries", len(l.history))
		}
	})
}

func TestLPPlacementPanic(t *testing.T) {
	eng, _ := newTestEngine(2)
	defer func() {
		if recover() == nil {
			t.Error("lpByID for foreign LP did not panic")
		}
	}()
	eng.nodes[0].workers[0].lpByID(event.LPID(5))
}

func TestNegativeDelayPanics(t *testing.T) {
	cfg := Config{
		Topology:    cluster.Topology{Nodes: 1, WorkersPerNode: 1, LPsPerWorker: 1},
		GVT:         GVTMattern,
		GVTInterval: 10,
		Comm:        CommDedicated,
		EndTime:     10,
		Seed:        1,
		Model: func(lp event.LPID, total int) Model {
			return &badDelayModel{}
		},
	}
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	_, _ = New(cfg).Run()
}

type badDelayModel struct{}

func (m *badDelayModel) Init(ctx Context)                    { ctx.Send(0, 1, 0, nil) }
func (m *badDelayModel) OnEvent(ctx Context, _ *event.Event) { ctx.Send(0, -1, 0, nil) }
func (m *badDelayModel) Snapshot() any                       { return nil }
func (m *badDelayModel) Restore(any)                         {}

func TestUnackedSet(t *testing.T) {
	var s unackedSet
	s.init()
	if s.min() != vtime.Inf || s.size() != 0 {
		t.Error("empty set broken")
	}
	id1 := s.add(0, 5.0)
	id2 := s.add(0, 3.0)
	id3 := s.add(0, 7.0)
	if id1 == 0 || id1 == id2 || id2 == id3 {
		t.Error("ack ids not unique / zero")
	}
	if s.min() != 3.0 {
		t.Errorf("min = %v, want 3", s.min())
	}
	s.ack(id2)
	if s.min() != 5.0 {
		t.Errorf("min after ack = %v, want 5", s.min())
	}
	s.ack(id1)
	s.ack(id3)
	if s.min() != vtime.Inf || s.size() != 0 {
		t.Error("set not empty after all acks")
	}
	// Re-adding after drain works.
	s.add(1<<40, 2.5)
	if s.min() != 2.5 {
		t.Error("re-add broken")
	}
}

func TestUnackedSetBaseComposition(t *testing.T) {
	var a, b unackedSet
	a.init()
	b.init()
	// Different worker bases must never collide.
	idA := a.add(uint64(1)<<40, 1.0)
	idB := b.add(uint64(2)<<40, 1.0)
	if idA == idB {
		t.Error("ack ids collide across workers")
	}
	if idA>>40 != 1 || idB>>40 != 2 {
		t.Error("base not preserved in ack id")
	}
}

// TestFullFossilResetsSnapshotCadence is a regression test: fossil
// collection that frees an LP's entire history must reset the snapshot
// cadence, or (with CheckpointInterval > 1) the next processed event lacks
// a snapshot and a later rollback has no coast-forward base.
func TestFullFossilResetsSnapshotCadence(t *testing.T) {
	cfg := Config{
		Topology:           cluster.Topology{Nodes: 1, WorkersPerNode: 1, LPsPerWorker: 2},
		GVT:                GVTMattern,
		GVTInterval:        10,
		CheckpointInterval: 4,
		Comm:               CommDedicated,
		EndTime:            100,
		Seed:               1,
		Model: func(lp event.LPID, total int) Model {
			return &chainModel{self: lp, next: lp}
		},
	}
	eng := New(cfg)
	w := eng.nodes[0].workers[0]
	drive(t, eng, func() {
		// Process to mid-cadence (6 events: snapshots at indices 0 and 4).
		for i := 0; i < 6; i++ {
			w.processOne(w.pending.Pop())
		}
		// Fossil-collect everything processed so far (events at t=1..6).
		w.applyGVT(6.5)
		l := w.lps[0]
		if len(l.history) != 0 {
			t.Fatalf("history not fully freed: %d", len(l.history))
		}
		// Next processed event must carry a snapshot...
		w.processOne(w.pending.Pop())
		if !l.history[0].hasSnap {
			t.Fatal("first entry after full fossil lacks a snapshot")
		}
		// ...so a rollback to it must not panic.
		w.processOne(w.pending.Pop())
		w.deliver(mkEvent(eng, l.history[0].ev.Stamp.T, 1, 0, 12345))
	})
}
