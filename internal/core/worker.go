package core

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/eventq"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// worker is one simulation thread (a ROSS PE): it owns a block of LPs, a
// pending event set and a mailbox other threads deposit messages into.
type worker struct {
	eng  *Engine
	node *node
	idx  int // index within node
	gidx int // cluster-wide index
	proc *sim.Proc

	lps     []*lp
	byID    map[event.LPID]*lp // lookup only; lps keeps the deterministic order
	firstLP event.LPID
	pending eventq.Queue

	// mailbox: regional senders and the comm thread deposit here.
	inMu  sim.Mutex
	inbox []*event.Event

	// inFree is the spare mailbox backing array: drainInbox swaps it in
	// and retires the drained batch into it, so steady-state draining
	// ping-pongs between two arrays instead of growing a fresh one per
	// batch (pool modes only).
	inFree []*event.Event

	// sentFree recycles histEntry.sent backing arrays freed at fossil
	// collection and rollback (pool modes only).
	sentFree [][]*event.Event

	// Migration state (engine.migEnabled only). migOut holds orders the
	// planner parked for the next applyGVT; migIn is the mailbox arrived
	// migrations wait in; limbo parks events that arrived ahead of their
	// migrating LP (in arrival order) until it is installed.
	migOut []migOrder
	migMu  sim.Mutex
	migIn  []*migMsg
	limbo  []*event.Event

	// cumulative message counters for Algorithm 1 (all cross-worker
	// messages, anti-messages included).
	msgSent, msgRecv int64

	// Mattern epoch counters (Algorithm 2), generalized: instead of two
	// colors, messages carry the sender's epoch number mod 4 (the epoch
	// increments at every GVT-round flip). Round R drains epoch R-1. Plain
	// white/red alternation is not enough here because round completion is
	// staggered across nodes: a node still finishing round R-2 can receive
	// fresh epoch-(R-1) traffic, which under two colors is
	// indistinguishable from the round's in-flight messages. Live epochs
	// span at most three consecutive values, so mod-4 slots cannot collide.
	sentC, recvC [4]int64
	epoch        uint64
	drainSlot    uint8   // epoch slot being drained by the in-progress round
	minRed       float64 // min stamp among new-epoch sends this round

	// Samadi GVT state: the acknowledgement mailbox and the set of
	// sent-but-unacknowledged messages.
	ackMu   sim.Mutex
	ackIn   []ack
	unacked unackedSet

	// uncommitted counts processed events not yet fossil-collected; the
	// engine stops speculating when it reaches Config.MaxUncommitted.
	uncommitted int

	// GVT driver state
	gvtView    float64 // worker's view of the current GVT
	passes     int     // events processed since last GVT round, in batch units
	eventCred  int     // processed events not yet converted to a batch unit
	idlePasses int     // consecutive idle passes while drained
	idleRounds int     // rounds completed while this worker stayed drained
	mstate     int     // Mattern worker phase (wIdle/wRed/wDone)
	syncFlag   bool    // CA-GVT: this round runs with barriers

	// phase is the last phase written to the trace (trace.Phase*);
	// 0xFF until the first transition so the initial phase is recorded.
	phase uint8

	st stats.Worker
}

func newWorker(eng *Engine, n *node, idx int, streams *rng.Sequence) *worker {
	w := &worker{
		eng:     eng,
		node:    n,
		idx:     idx,
		gidx:    n.id*eng.cfg.Topology.WorkersPerNode + idx,
		pending: eventq.New(eng.cfg.QueueKind),
		minRed:  vtime.Inf,
		phase:   0xFF,
	}
	w.inMu.Name = fmt.Sprintf("inbox-%d/%d", n.id, idx)
	w.inMu.HoldCost = n.cost.RegionalLockHold
	w.ackMu.Name = fmt.Sprintf("acks-%d/%d", n.id, idx)
	w.ackMu.HoldCost = n.cost.RegionalLockHold
	w.migMu.Name = fmt.Sprintf("migs-%d/%d", n.id, idx)
	w.migMu.HoldCost = n.cost.RegionalLockHold
	w.unacked.init()
	w.firstLP = eng.cfg.Topology.FirstLP(n.id, idx)
	w.byID = make(map[event.LPID]*lp, eng.cfg.Topology.LPsPerWorker)
	for i := 0; i < eng.cfg.Topology.LPsPerWorker; i++ {
		id := w.firstLP + event.LPID(i)
		l := newLP(id, eng.cfg.Model(id, eng.cfg.Topology.TotalLPs()), streams.Next())
		w.lps = append(w.lps, l)
		w.byID[id] = l
	}
	return w
}

// newEvent allocates an event, recycling through the node pool when one
// is configured. The pool charges no virtual cost: PoolOn and PoolOff
// runs are bit-identical in everything but host allocation counts.
func (w *worker) newEvent() *event.Event {
	if p := w.node.pool; p != nil {
		return p.Get()
	}
	return &event.Event{}
}

// freeEvent returns an event whose last reference is being dropped to the
// node pool. Callers must guarantee sole ownership; the free sites are
// annihilation (both halves of the pair), fossil collection of history
// entries, and the below-GVT anti-stash prune — the three points where
// Time Warp provably retires an event.
func (w *worker) freeEvent(e *event.Event) {
	if p := w.node.pool; p != nil {
		p.Put(e)
	}
}

// assertLive panics if ev was recycled while still referenced (PoolDebug
// only; callers check w.eng.poolDebug to keep the hot path at one bool).
func (w *worker) assertLive(ev *event.Event, where string) {
	if ev.Freed() {
		panic(fmt.Sprintf("core: use-after-recycle: freed event touched in %s at worker %d/%d",
			where, w.node.id, w.idx))
	}
}

// takeSentBuf hands processOne a recycled sent-events backing array.
func (w *worker) takeSentBuf() []*event.Event {
	if n := len(w.sentFree); n > 0 {
		b := w.sentFree[n-1]
		w.sentFree[n-1] = nil
		w.sentFree = w.sentFree[:n-1]
		return b
	}
	return nil
}

// sentFreeCap bounds the sent-buffer free list; beyond it, retired
// buffers fall back to the garbage collector.
const sentFreeCap = 256

// putSentBuf retires a histEntry.sent backing array for reuse.
func (w *worker) putSentBuf(b []*event.Event) {
	if w.node.pool == nil || cap(b) == 0 || len(w.sentFree) >= sentFreeCap {
		return
	}
	b = b[:cap(b)]
	for i := range b {
		b[i] = nil
	}
	w.sentFree = append(w.sentFree, b[:0])
}

func (w *worker) lpByID(id event.LPID) *lp {
	l := w.byID[id]
	if l == nil {
		panic(fmt.Sprintf("core: LP %d routed to worker %d/%d which does not host it",
			id, w.node.id, w.idx))
	}
	return l
}

// localMin returns the minimum unprocessed timestamp at this worker
// (the GVT "LVT" contribution: the next event this worker could process).
// Limbo events count: they were receive-counted at drain but sit outside
// the pending set until their migrating LP installs.
func (w *worker) localMin() float64 {
	min := vtime.Inf
	if e := w.pending.Peek(); e != nil {
		min = e.Stamp.T
	}
	for _, ev := range w.limbo {
		if ev.Stamp.T < min {
			min = ev.Stamp.T
		}
	}
	return min
}

// localMinView is the metrics-only view used for the disparity statistic.
func (w *worker) localMinView() float64 { return w.localMin() }

// run is the worker thread's main loop: drain mailbox, process a batch of
// events, service MPI if this worker carries the comm role, and drive the
// GVT algorithm — until GVT passes the end time.
func (w *worker) run(p *sim.Proc) {
	w.proc = p
	cfg := &w.eng.cfg
	commRole := w.commRole()
	samadi := w.eng.samadiEnabled()
	for w.gvtView <= cfg.EndTime {
		worked := false
		if w.eng.migEnabled && w.drainMigrations() {
			worked = true
		}
		if w.drainInbox() {
			worked = true
		}
		if samadi && w.drainAcks() {
			worked = true
		}
		if w.processBatch() {
			worked = true
		}
		if commRole == commPump || commRole == commPumpAndGVT {
			if w.node.pump(p) {
				worked = true
			}
		}
		// The comm-leading worker also drives the GVT comm role for the
		// token-based algorithms; Barrier and Samadi GVT inline their comm
		// duties in the worker's own round (between the two node barriers,
		// Algorithm 1 line 12).
		if commRole == commPumpAndGVT && (cfg.GVT == GVTMattern || cfg.GVT == GVTControlled) {
			if w.node.matternCommPoll(p) {
				worked = true
			}
		}
		if worked {
			w.setPhase(trace.PhaseProcessing)
		} else {
			w.setPhase(trace.PhaseIdle)
		}
		w.gvtPoll(worked)
		if !worked {
			w.st.IdleTime += w.node.cost.IdlePoll
			p.Advance(w.node.cost.IdlePoll)
		}
	}
	w.node.workersExited++
}

// setPhase records a worker phase transition in the trace. Repeated
// calls with the current phase are free, so callers mark phases
// unconditionally at the points they begin.
func (w *worker) setPhase(ph uint8) {
	if w.phase == ph {
		return
	}
	w.phase = ph
	if t := w.eng.cfg.Trace; t != nil {
		t.Phase(trace.Phase{Worker: uint32(w.gidx), Phase: ph, AtNanos: int64(w.proc.Now())})
	}
}

// commRoleKind describes what communication duties this worker carries.
type commRoleKind int

const (
	commNone       commRoleKind = iota // dedicated thread does everything
	commPump                           // shared mode, non-leader: pump only
	commPumpAndGVT                     // combined mode leader / shared leader
	commGVTOnly                        // (unused placeholder for symmetry)
)

func (w *worker) commRole() commRoleKind {
	switch w.eng.cfg.Comm {
	case CommDedicated:
		return commNone
	case CommCombined:
		if w.idx == 0 {
			return commPumpAndGVT
		}
		return commNone
	default: // CommShared
		if w.idx == 0 {
			return commPumpAndGVT
		}
		return commPump
	}
}

// drainInbox consumes every deposited message: counts it for GVT
// accounting and delivers it (annihilation, straggler rollback, enqueue).
func (w *worker) drainInbox() bool {
	w.inMu.Lock(w.proc)
	batch := w.inbox
	w.inbox = w.inFree
	w.inFree = nil
	w.inMu.Unlock(w.proc)
	if len(batch) == 0 {
		if cap(batch) > 0 {
			w.inFree = batch[:0]
		}
		return false
	}
	if h := w.eng.hInboxBatch; h != nil {
		h.Observe(int64(len(batch)))
	}
	// Charge the per-message drain cost for the whole batch up front (one
	// kernel transition instead of one per message).
	cost := &w.node.cost
	w.proc.Advance(sim.Time(len(batch)) * (cost.InboxDrainPerMsg + cost.QueueOp))
	samadi := w.eng.samadiEnabled()
	for _, ev := range batch {
		w.msgRecv++
		w.recvC[uint8(ev.Color)&3]++
		if samadi && ev.AckID != 0 {
			w.sendAck(ev)
		}
		w.deliver(ev)
	}
	// Retire the drained array as the next spare (pool modes only; a nil
	// spare keeps PoolOff allocation behaviour exactly pre-pool).
	if w.node.pool != nil {
		for i := range batch {
			batch[i] = nil
		}
		w.inFree = batch[:0]
	}
	return true
}

// deposit places ev into this worker's mailbox, charging the depositor
// (a regional sender or the comm thread) the shared-memory send cost.
func (w *worker) deposit(p *sim.Proc, ev *event.Event) {
	w.inMu.Lock(p)
	p.Advance(w.node.cost.RegionalSend)
	w.inbox = append(w.inbox, ev)
	w.inMu.Unlock(p)
}

// deliver applies one received message to its destination LP.
func (w *worker) deliver(ev *event.Event) {
	if ev.Stamp.T < w.gvtView {
		panic(fmt.Sprintf("core: GVT violation: %v arrived at worker %d/%d with GVT %.6g",
			ev, w.node.id, w.idx, w.gvtView))
	}
	if w.eng.migEnabled && w.byID[ev.Dst] == nil {
		if w.eng.routing.Worker(ev.Dst) == w.gidx {
			// The LP is migrating here but has not installed yet: park the
			// event until it does (localMin keeps it observable for GVT).
			w.limbo = append(w.limbo, ev)
			return
		}
		// Stale arrival: the LP moved away while this message was in
		// flight. Forward it as a fresh send toward the current owner
		// (this drain was receive-counted; route re-counts the send side).
		w.route(ev)
		return
	}
	if w.eng.poolDebug {
		w.assertLive(ev, "deliver")
	}
	l := w.lpByID(ev.Dst)
	if ev.Anti {
		if pos := w.pending.RemoveMatching(ev); pos != nil {
			w.st.Annihilated++
			// Both halves of the pair are done: the positive's sender
			// rolled back (dropping its sent-list reference) before the
			// anti existed, and the anti was ours alone.
			w.freeEvent(pos)
			w.freeEvent(ev)
			return
		}
		if i := l.findProcessed(ev); i >= 0 {
			// The positive was optimistically processed: roll back to just
			// before it, which re-enqueues it, then annihilate.
			w.rollback(l, l.history[i].ev.Stamp, false)
			pos := w.pending.RemoveMatching(ev)
			if pos == nil {
				panic("core: rolled-back positive vanished before annihilation")
			}
			w.st.Annihilated++
			w.freeEvent(pos)
			w.freeEvent(ev)
			return
		}
		// Anti overtook its positive: stash until it arrives.
		l.pendingAnti = append(l.pendingAnti, ev)
		return
	}
	if a := l.takeAnti(ev); a != nil {
		w.st.Annihilated++
		w.freeEvent(a)
		w.freeEvent(ev)
		return
	}
	if ev.Stamp.Before(l.lastStamp()) {
		w.rollback(l, ev.Stamp, true)
	}
	w.pending.Push(ev)
}

// processBatch executes up to BatchSize pending events with timestamps
// within the simulation end time.
func (w *worker) processBatch() bool {
	cfg := &w.eng.cfg
	n := 0
	// Event-pool pressure works as in ROSS: a full pool requests a GVT
	// round (fossil collection is what frees memory) and stops further
	// speculation — but never refuses the event at the commit horizon, or
	// the worker holding the global minimum would stall GVT itself.
	capped := cfg.MaxUncommitted > 0 && w.uncommitted >= cfg.MaxUncommitted
	if capped {
		w.passes = cfg.GVTInterval
	}
	for i := 0; i < cfg.BatchSize; i++ {
		next := w.pending.Peek()
		if next == nil || next.Stamp.T > cfg.EndTime {
			break
		}
		if capped && next.Stamp.T > w.gvtView {
			break
		}
		w.processOne(w.pending.Pop())
		n++
	}
	// The GVT interval counts processed events in batch units (the paper
	// bases the interval "on the number of events processed").
	w.eventCred += n
	for w.eventCred >= cfg.BatchSize {
		w.eventCred -= cfg.BatchSize
		w.passes++
	}
	return n > 0
}

func (w *worker) processOne(ev *event.Event) {
	if w.eng.poolDebug {
		w.assertLive(ev, "processOne")
	}
	l := w.lpByID(ev.Dst)
	if ev.Stamp.Before(l.lastStamp()) {
		panic(fmt.Sprintf("core: pending straggler leaked to processing: %v behind %v", ev, l.lastStamp()))
	}
	cfg := &w.eng.cfg
	w.proc.Advance(w.node.cost.EventOverhead)
	entry := histEntry{ev: ev}
	if l.sinceSnap == 0 {
		entry.hasSnap = true
		entry.snapping = l.model.Snapshot()
		entry.snapRNG = l.rng.Save()
		entry.snapSeq = l.seq
		w.proc.Advance(w.node.cost.StateSave)
	}
	l.sinceSnap++
	if l.sinceSnap >= cfg.CheckpointInterval {
		l.sinceSnap = 0
	}
	ctx := execCtx{w: w, lp: l, ev: ev, sent: w.takeSentBuf()}
	l.model.OnEvent(&ctx, ev)
	if len(ctx.sent) == 0 {
		// Nothing sent: keep the recycled buffer for the next event so
		// entry.sent stays nil exactly as with fresh allocation.
		w.putSentBuf(ctx.sent)
	} else {
		entry.sent = ctx.sent
	}
	l.history = append(l.history, entry)
	w.uncommitted++
	w.st.Processed++
	for _, out := range ctx.sent {
		w.route(out)
	}
}

// route sends one event (or anti-message) towards its destination,
// charging the class-appropriate cost and doing GVT accounting.
func (w *worker) route(ev *event.Event) {
	cfg := &w.eng.cfg
	top := cfg.Topology
	// Locality is judged from where the message is (this worker) to where
	// the destination LP currently lives — identical to the static
	// Topology.Class until the balancer moves an LP.
	class := w.eng.routing.ClassFrom(w.gidx, ev.Dst)
	// Color the message with the sender's current epoch (mod 4).
	ev.Color = event.Color(w.epoch & 3)
	switch class {
	case event.Local:
		w.st.SentLocal++
		// Queue insertion is charged here; delivery itself is free of
		// kernel transitions (no transit for self-sends).
		w.proc.Advance(w.node.cost.LocalSend + w.node.cost.QueueOp)
		w.deliver(ev)
		return
	case event.Regional:
		w.st.SentRegion++
	case event.Remote:
		w.st.SentRemote++
	}
	if ev.Anti {
		w.st.AntiSent++
	}
	w.msgSent++
	w.sentC[w.epoch&3]++
	if w.eng.samadiEnabled() {
		w.registerUnacked(ev)
	}
	// During a GVT round, new-color ("red") send stamps feed min_red
	// (Algorithm 2 line 4 / paper §3).
	if w.mstate != wIdle && ev.Stamp.T < w.minRed {
		w.minRed = ev.Stamp.T
	}
	if class == event.Regional {
		wi := w.eng.routing.Worker(ev.Dst) % top.WorkersPerNode
		w.node.workers[wi].deposit(w.proc, ev)
	} else {
		w.node.enqueueRemote(w.proc, ev)
	}
}

// rollback undoes every processed event of l with stamp >= s: restores the
// earliest popped snapshot, re-enqueues the undone events and sends
// anti-messages for everything they sent.
func (w *worker) rollback(l *lp, s vtime.Stamp, straggler bool) {
	h := l.history
	idx := len(h)
	for idx > 0 && !h[idx-1].ev.Stamp.Before(s) {
		idx--
	}
	if idx == len(h) {
		return // nothing at or after s
	}
	popped := h[idx:]
	l.history = h[:idx]

	// Restore LP state to just before the earliest undone event: rewind to
	// the nearest snapshot at or before it, then coast-forward (re-execute
	// with sends suppressed) across the snapshot-less gap.
	j := idx
	for j > 0 && !h[j].hasSnap {
		j--
	}
	base := &h[j]
	if !base.hasSnap {
		panic("core: no snapshot found below rollback target")
	}
	l.model.Restore(base.snapping)
	l.rng.Restore(base.snapRNG)
	l.seq = base.snapSeq
	for i := j; i < idx; i++ {
		re := replayCtx{w: w, lp: l, ev: h[i].ev}
		l.model.OnEvent(&re, h[i].ev)
	}
	// Recompute the snapshot cadence for the truncated history.
	l.sinceSnap = idx - j
	if l.sinceSnap >= w.eng.cfg.CheckpointInterval {
		l.sinceSnap = 0
	}

	cfg := &w.eng.cfg
	w.proc.Advance(sim.Time(len(popped)) * (w.node.cost.RollbackPerEvent + w.node.cost.QueueOp))
	w.uncommitted -= len(popped)
	w.st.Rollbacks++
	w.st.RolledBack += int64(len(popped))
	if straggler {
		w.st.Stragglers++
	} else {
		w.st.AntiRollbck++
	}
	if h := w.eng.hRollbackDepth; h != nil {
		h.Observe(int64(len(popped)))
	}
	if t := cfg.Trace; t != nil {
		t.Rollback(trace.Rollback{
			Worker: uint32(w.gidx), LP: uint32(l.id), Anti: !straggler,
			Depth: uint32(len(popped)),
			From:  popped[0].ev.Stamp.T, To: popped[len(popped)-1].ev.Stamp.T,
			AtNanos: int64(w.proc.Now()),
		})
	}

	// Re-enqueue the undone events and collect cancellations.
	var antis []*event.Event
	debug := w.eng.poolDebug
	for i := range popped {
		entry := &popped[i]
		w.pending.Push(entry.ev)
		for _, out := range entry.sent {
			if debug {
				w.assertLive(out, "rollback anti-copy")
			}
			antis = append(antis, out.AntiCopyInto(w.newEvent()))
		}
		w.putSentBuf(entry.sent)
		entry.sent = nil
		entry.snapping = nil
	}
	for _, a := range antis {
		w.route(a)
	}
}

// applyGVT installs a newly computed GVT: fossil-collect every LP's
// history below it and commit those events.
func (w *worker) applyGVT(g float64) {
	cfg := &w.eng.cfg
	var freed int64
	for _, l := range w.lps {
		// Commit every entry below the new GVT (in stamp order).
		cut := 0
		for cut < len(l.history) && l.history[cut].ev.Stamp.T < g {
			entry := &l.history[cut]
			if !entry.committed {
				e := entry.ev
				l.checksum = l.checksum.Mix(uint32(l.id), e.Stamp.T, e.Stamp.Src, e.Stamp.Seq)
				if cfg.Trace != nil {
					cfg.Trace.Commit(trace.Commit{
						LP: uint32(l.id), T: e.Stamp.T, Src: e.Stamp.Src, Seq: e.Stamp.Seq,
					})
				}
				entry.committed = true
				l.committed++
				w.st.Committed++
				w.uncommitted--
			}
			cut++
		}
		// Free the longest committed prefix that leaves the remaining
		// history self-sufficient: the first retained entry must carry a
		// snapshot, since it may become the coast-forward base for a
		// rollback at or above GVT.
		free := 0
		for b := cut; b >= 1; b-- {
			if b == len(l.history) || l.history[b].hasSnap {
				free = b
				break
			}
		}
		if free > 0 {
			freed += int64(free)
			// The freed prefix is fully committed: recycle each entry's
			// event and its sent-list backing array. The sent events
			// themselves belong to their receivers (they are freed — or
			// already were — by the receiver's own fossil collection).
			for i := 0; i < free; i++ {
				entry := &l.history[i]
				w.freeEvent(entry.ev)
				w.putSentBuf(entry.sent)
				entry.sent = nil
			}
			l.history = append(l.history[:0], l.history[free:]...)
			if len(l.history) == 0 {
				// The whole history was freed: the next processed event
				// must carry a snapshot, or a later rollback would find no
				// coast-forward base.
				l.sinceSnap = 0
			}
		}
		// Stashed anti-messages below GVT can never match anything now.
		for i := 0; i < len(l.pendingAnti); {
			if l.pendingAnti[i].Stamp.T < g {
				w.freeEvent(l.pendingAnti[i])
				l.pendingAnti = append(l.pendingAnti[:i], l.pendingAnti[i+1:]...)
			} else {
				i++
			}
		}
	}
	if freed > 0 {
		w.uncommitted -= int(freed)
		w.proc.Advance(sim.Time(freed) * w.node.cost.FossilPerEvent)
	}
	w.gvtView = g
	w.st.GVTRounds++
	w.idleRounds++ // reset on the next productive pass
	// Execute planned migrations now: below-g history is committed and
	// fossil-collected, so pack ships pure committed state.
	if len(w.migOut) > 0 {
		w.executeMigrations(g)
	}
}

// gvtPoll advances the worker's side of the configured GVT algorithm by
// one main-loop pass. The interval counter advances with processed events
// (see processBatch); idle passes contribute a small fraction so a fully
// drained cluster still reaches its final GVT rounds.
func (w *worker) gvtPoll(worked bool) {
	if worked {
		w.idleRounds = 0
	} else {
		// Credit idle passes toward the interval only when this worker has
		// nothing left inside the horizon — the end-of-run state where GVT
		// rounds are the only way to make progress. Transient starvation
		// (messages on the way) must not inflate the round cadence, and a
		// drained worker whose triggers are not helping (GVT rounds keep
		// completing while it stays drained) backs off exponentially so it
		// cannot stall the workers that still have events to process.
		next := w.pending.Peek()
		if next == nil || next.Stamp.T > w.eng.cfg.EndTime {
			w.idlePasses++
			shift := w.idleRounds
			if shift > 6 {
				shift = 6
			}
			if w.idlePasses >= 64<<shift {
				w.idlePasses = 0
				w.passes++
			}
		}
	}
	switch w.eng.cfg.GVT {
	case GVTBarrier:
		w.barrierPoll()
	case GVTSamadi:
		w.samadiPoll()
	default:
		w.matternPoll()
	}
}
