package core

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// histEntry records one processed event together with everything needed to
// undo it: the state snapshots taken just before processing (on snapshot
// entries) and the events it sent.
type histEntry struct {
	ev *event.Event
	// hasSnap marks entries preceded by a state snapshot. With
	// CheckpointInterval k, every k-th entry carries one; rollback to a
	// snapshot-less entry coast-forwards from the nearest earlier snapshot.
	hasSnap bool
	// committed marks entries already counted/checksummed at fossil
	// collection but retained because a later rollback may need to
	// coast-forward across them.
	committed bool
	snapping  any       // model snapshot before ev (hasSnap only)
	snapRNG   rng.State // RNG state before ev (hasSnap only)
	snapSeq   uint64    // tie-break sequence counter before ev (hasSnap only)
	sent      []*event.Event
}

// lp is one logical process: model + rollback machinery.
type lp struct {
	id    event.LPID
	model Model
	rng   *rng.Stream

	// seq is the tie-break sequence number for events this LP sends. It is
	// part of rolled-back state so re-execution regenerates identical
	// stamps (deterministic commit order).
	seq uint64

	// history holds processed, not-yet-fossil-collected events in
	// ascending stamp order.
	history []histEntry

	// sinceSnap counts processed events since the last snapshot entry.
	sinceSnap int

	// pendingAnti stashes anti-messages that arrived before their
	// positives.
	pendingAnti []*event.Event

	// checksum chains committed events in commit (stamp) order.
	checksum stats.Checksum

	// committed counts this LP's committed events; commitMark is the
	// count at the balancer's last look, so committed-commitMark is the
	// LP's "heat" since then. Both travel with the LP on migration.
	committed  int64
	commitMark int64
}

func newLP(id event.LPID, model Model, stream *rng.Stream) *lp {
	return &lp{
		id:       id,
		model:    model,
		rng:      stream,
		checksum: stats.NewChecksum(),
	}
}

// lastStamp returns the stamp of the most recent processed event, or the
// zero stamp if none remain in history. Fossil collection only removes
// entries below GVT, and no straggler may arrive below GVT, so the zero
// stamp is a safe floor after fossil collection.
func (l *lp) lastStamp() vtime.Stamp {
	if len(l.history) == 0 {
		return vtime.ZeroStamp
	}
	return l.history[len(l.history)-1].ev.Stamp
}

// lvt returns the LP's local virtual time (time of last processed event).
func (l *lp) lvt() vtime.Time {
	if len(l.history) == 0 {
		return 0
	}
	return l.history[len(l.history)-1].ev.Stamp.T
}

// init runs the model's Init hook, capturing its sends as initial events.
func (l *lp) init(w *worker) {
	ctx := &initCtx{lp: l, w: w}
	l.model.Init(ctx)
}

// takeAnti removes and returns a stashed anti-message matching pos, if any.
func (l *lp) takeAnti(pos *event.Event) *event.Event {
	for i, a := range l.pendingAnti {
		if a.Matches(pos) {
			l.pendingAnti = append(l.pendingAnti[:i], l.pendingAnti[i+1:]...)
			return a
		}
	}
	return nil
}

// findProcessed returns the history index of the event matching anti, or -1.
func (l *lp) findProcessed(anti *event.Event) int {
	for i := range l.history {
		if l.history[i].ev.Matches(anti) {
			return i
		}
	}
	return -1
}

// initCtx is the Context used during Model.Init: sends become initial
// events placed directly into the destination worker's pending set (there
// is no transit before the simulation starts).
type initCtx struct {
	lp *lp
	w  *worker
}

func (c *initCtx) Self() event.LPID { return c.lp.id }
func (c *initCtx) Now() vtime.Time  { return 0 }
func (c *initCtx) RNG() *rng.Stream { return c.lp.rng }
func (c *initCtx) NumLPs() int      { return c.w.eng.cfg.Topology.TotalLPs() }
func (c *initCtx) Spin(int)         {} // no CPU time passes before start

func (c *initCtx) Send(dst event.LPID, delay vtime.Time, kind uint16, data []byte) {
	if delay < 0 {
		panic(fmt.Sprintf("core: negative delay %v from LP %d in Init", delay, c.lp.id))
	}
	eng := c.w.eng
	l := c.lp
	l.seq++
	ev := &event.Event{
		Stamp:    vtime.Stamp{T: delay, Src: uint32(l.id), Seq: l.seq},
		SendTime: 0,
		Src:      l.id,
		Dst:      dst,
		MatchID:  eng.nextMatchID(),
		Color:    event.White,
		Kind:     kind,
		Data:     data,
	}
	dn, dw := eng.cfg.Topology.WorkerOf(dst)
	eng.nodes[dn].workers[dw].pending.Push(ev)
}

// execCtx is the Context used while processing an event.
type execCtx struct {
	w    *worker
	lp   *lp
	ev   *event.Event
	sent []*event.Event
}

func (c *execCtx) Self() event.LPID { return c.lp.id }
func (c *execCtx) Now() vtime.Time  { return c.ev.Stamp.T }
func (c *execCtx) RNG() *rng.Stream { return c.lp.rng }
func (c *execCtx) NumLPs() int      { return c.w.eng.cfg.Topology.TotalLPs() }
func (c *execCtx) Spin(units int)   { c.w.proc.Advance(c.w.node.cost.EPGCost(units)) }

// replayCtx coast-forwards an already-processed event after a partial
// state restore: model effects replay deterministically, but sends are
// suppressed (the original messages are still valid) — only the sequence
// counter advances, keeping subsequent stamps identical.
type replayCtx struct {
	w  *worker
	lp *lp
	ev *event.Event
}

func (c *replayCtx) Self() event.LPID { return c.lp.id }
func (c *replayCtx) Now() vtime.Time  { return c.ev.Stamp.T }
func (c *replayCtx) RNG() *rng.Stream { return c.lp.rng }
func (c *replayCtx) NumLPs() int      { return c.w.eng.cfg.Topology.TotalLPs() }
func (c *replayCtx) Spin(units int)   { c.w.proc.Advance(c.w.node.cost.EPGCost(units)) }

func (c *replayCtx) Send(event.LPID, vtime.Time, uint16, []byte) {
	c.lp.seq++
}

func (c *execCtx) Send(dst event.LPID, delay vtime.Time, kind uint16, data []byte) {
	if delay < 0 {
		panic(fmt.Sprintf("core: negative delay %v from LP %d at t=%v", delay, c.lp.id, c.ev.Stamp.T))
	}
	l := c.lp
	l.seq++
	// The engine's hottest allocation site: recycle through the node
	// pool instead of allocating per event.
	ev := c.w.newEvent()
	ev.Stamp = vtime.Stamp{T: c.ev.Stamp.T + delay, Src: uint32(l.id), Seq: l.seq}
	ev.SendTime = c.ev.Stamp.T
	ev.Src = l.id
	ev.Dst = dst
	ev.MatchID = c.w.eng.nextMatchID()
	ev.Kind = kind
	ev.Data = data
	c.sent = append(c.sent, ev)
}
