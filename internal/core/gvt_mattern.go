package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Mattern's asynchronous GVT (paper Algorithm 2) and Controlled
// Asynchronous GVT (Algorithm 3).
//
// Two kinds of control message are used, as in the paper: a shared-memory
// structure per node (nodeCM) that workers accumulate into, and an MPI
// token (gvtToken) that circulates in a ring of nodes. A round has three
// token phases: A accumulates in-flight white-message counts (repeating
// laps until the cumulative total is zero), B reduces each node's minimum
// unprocessed time and minimum red send stamp, and C broadcasts the new
// GVT (plus, for CA-GVT, the next round's synchronization flag).
//
// Workers keep processing events throughout — the asynchrony that wins on
// computation-dominated workloads. CA-GVT adds three synchronization
// points (Algorithm 3 lines 4, 14 and 30) when the observed efficiency of
// the previous round fell below the threshold; the first and last align
// the whole cluster (node barrier + MPI barrier), the middle one aligns
// each node's workers (the cross-node alignment there is provided by the
// token protocol itself, which avoids a circular wait with token B).

// Node CM phases.
const (
	phOpen      = iota // accepting red transitions for the current round
	phWhiteDone        // no white messages remain in flight cluster-wide
	phGVTReady         // the round's GVT is published
)

// Worker-side phases.
const (
	wIdle = iota // white, counting passes until the next round
	wRed         // flushed counters, waiting for phWhiteDone
	wDone        // contributed minima, waiting for phGVTReady
)

// Ring token phases.
const (
	tokWhite  = iota // phase A: accumulate white counts
	tokReduce        // phase B: reduce minima
	tokGVT           // phase C: broadcast GVT
)

// gvtToken is the inter-node control message.
type gvtToken struct {
	phase  int
	uid    uint64  // lap identity stamped by the master (liveness dedup)
	count  int64   // cumulative white sent-received (phase A)
	minLVT float64 // phase B
	minRed float64 // phase B
	gvt    float64 // phase C
	sync   bool    // phase C: CA-GVT's SyncFlag for the next round
}

// wireSize stays at the original 48-byte frame: the uid rides in the
// slack of the padded struct a real implementation would send.
func (t *gvtToken) wireSize() int { return 48 }

// tokContrib memoizes what one node folded into one specific token lap,
// so a watchdog-resent duplicate re-applies the identical contribution
// without touching live CM state (whose delta was already consumed).
type tokContrib struct {
	phase  int
	delta  int64   // tokWhite: the white delta this node added
	minLVT float64 // tokReduce: the post-fold minima this node forwarded
	minRed float64
}

// nodeCM is the node-level shared control message.
type nodeCM struct {
	mu      sim.Mutex
	workers int

	phase       int
	roundStart  bool  // some worker initiated the round
	redCount    int   // workers that turned red
	whiteDelta  int64 // accumulated sent−received; carries across rounds
	minLVT      float64
	minRed      float64
	contributed int
	gvt         float64
	acked       int
	syncCur     bool // this round runs with CA barriers
	syncNext    bool // decided by the master at round end
}

func (cm *nodeCM) init(n *node, workers int) {
	cm.workers = workers
	cm.mu.Name = "nodeCM"
	cm.mu.HoldCost = n.cost.RegionalLockHold
	cm.minLVT = vtime.Inf
	cm.minRed = vtime.Inf
}

// reset prepares the CM for the next round. whiteDelta deliberately
// carries over: white receipts recorded while a worker was still red
// belong to the next epoch's accounting.
func (cm *nodeCM) reset() {
	cm.phase = phOpen
	cm.roundStart = false
	cm.redCount = 0
	cm.minLVT = vtime.Inf
	cm.minRed = vtime.Inf
	cm.contributed = 0
	cm.acked = 0
	cm.syncCur = cm.syncNext
}

// takeDelta atomically removes the node's accumulated white delta.
func (n *node) takeDelta(p *sim.Proc) int64 {
	cm := &n.cm
	cm.mu.Lock(p)
	p.Advance(n.cost.GVTBookkeeping)
	d := cm.whiteDelta
	cm.whiteDelta = 0
	cm.mu.Unlock(p)
	return d
}

// flushOldReceipts pays receipts of the draining epoch recorded since the
// flip into the CM (Algorithm 2's in-flight white accounting).
func (w *worker) flushOldReceipts() {
	if w.recvC[w.drainSlot] == 0 {
		return
	}
	cm := &w.node.cm
	cm.mu.Lock(w.proc)
	w.proc.Advance(w.node.cost.GVTBookkeeping)
	cm.whiteDelta -= w.recvC[w.drainSlot]
	cm.mu.Unlock(w.proc)
	w.recvC[w.drainSlot] = 0
}

// matternPoll is the worker-side state machine, one step per main-loop
// pass. Unlike barrierPoll it never blocks (except at CA sync points), so
// event processing continues while the GVT computes in the background.
func (w *worker) matternPoll() {
	cm := &w.node.cm
	p := w.proc
	cost := &w.node.cost
	ca := w.eng.cfg.GVT == GVTControlled
	st := &workerBarrierStats{wait: &w.st.BarrierWait, w: w}
	isCommLeader := w.commRole() == commPumpAndGVT

	switch w.mstate {
	case wIdle:
		if cm.phase != phOpen {
			return // previous round still cleaning up
		}
		// Once any worker initiates a round, the rest join promptly: the
		// round cannot complete until every worker has flushed its
		// counters, and in synchronous CA rounds the first barrier
		// (Algorithm 3 line 4) additionally requires everyone.
		if w.passes < w.eng.cfg.GVTInterval && !cm.roundStart {
			return
		}
		cm.roundStart = true
		w.passes = 0
		w.setPhase(trace.PhaseGVT)
		// syncCur is set by CA's efficiency control or by the watchdog's
		// barrier fallback (which also applies to plain Mattern).
		if cm.syncCur {
			w.node.syncPoint(p, isCommLeader, true, st)
		}
		slot := uint8(w.epoch & 3)
		cm.mu.Lock(p)
		p.Advance(cost.GVTBookkeeping)
		cm.whiteDelta += w.sentC[slot] - w.recvC[slot]
		cm.redCount++
		cm.mu.Unlock(p)
		w.sentC[slot], w.recvC[slot] = 0, 0
		w.drainSlot = slot
		w.epoch++
		w.minRed = vtime.Inf
		w.mstate = wRed

	case wRed:
		w.flushOldReceipts()
		if cm.phase < phWhiteDone {
			return
		}
		w.setPhase(trace.PhaseGVT)
		if cm.syncCur {
			// Algorithm 3 line 14: align before contributing minima.
			w.node.syncPoint(p, isCommLeader, false, st)
		}
		cm.mu.Lock(p)
		p.Advance(cost.GVTBookkeeping)
		if lm := w.localMin(); lm < cm.minLVT {
			cm.minLVT = lm
		}
		if w.minRed < cm.minRed {
			cm.minRed = w.minRed
		}
		cm.contributed++
		cm.mu.Unlock(p)
		w.mstate = wDone

	case wDone:
		w.flushOldReceipts()
		if cm.phase < phGVTReady {
			return
		}
		w.setPhase(trace.PhaseGVT)
		// No flip back: the round's new epoch is the stable epoch until
		// the next round drains it.
		w.applyGVT(cm.gvt)
		if cm.syncCur {
			w.st.SyncRounds++
			// Algorithm 3 line 30: align after fossil collection.
			w.node.syncPoint(p, isCommLeader, true, st)
		}
		if ca {
			// Algorithm 3 line 31: computeEfficiency() every round — the
			// overhead that costs CA-GVT a few percent against pure
			// Mattern on computation-dominated models.
			p.Advance(cost.EffCompute)
		}
		cm.mu.Lock(p)
		cm.acked++
		cm.mu.Unlock(p)
		w.mstate = wIdle
	}
}

// masterState drives node 0's side of the ring protocol.
type masterState int

const (
	msIdle masterState = iota
	msWaitA
	msWaitContrib
	msWaitB
	msWaitC
	msCleanup
)

// matternCommPoll advances the comm role of Mattern/CA-GVT by one step.
// It is called by the dedicated MPI thread, or by worker 0 in
// combined/shared modes (where the worker-side poll handles sync points).
func (n *node) matternCommPoll(p *sim.Proc) bool {
	cm := &n.cm
	ca := n.eng.cfg.GVT == GVTControlled
	dedicated := n.eng.cfg.Comm == CommDedicated
	worked := false

	// The dedicated comm thread participates in the sync points of CA (or
	// watchdog-forced) synchronous rounds.
	if dedicated && cm.syncCur {
		if cm.roundStart && !n.sync1Done && cm.phase == phOpen {
			n.syncPoint(p, true, true, nil)
			n.sync1Done = true
			worked = true
		}
		if cm.phase >= phWhiteDone && !n.sync2Done {
			n.syncPoint(p, true, false, nil)
			n.sync2Done = true
			worked = true
		}
		if cm.phase >= phGVTReady && !n.sync3Done {
			n.syncPoint(p, true, true, nil)
			n.sync3Done = true
			worked = true
		}
	}

	if n.id == 0 {
		worked = n.masterPoll(p, ca) || worked
		worked = n.watchdogPoll(p) || worked
	} else {
		worked = n.slavePoll(p) || worked
	}

	// Round cleanup: all workers acknowledged and every token obligation
	// of this node is met. A held token can only be the NEXT round's white
	// token (arriving early from a fast master), so it does not block
	// cleanup — it is serviced right after the reset.
	if cm.phase == phGVTReady && cm.acked == cm.workers &&
		(n.heldToken == nil || n.heldToken.phase == tokWhite) &&
		(n.id != 0 || n.master == msCleanup) &&
		(!cm.syncCur || !dedicated || n.sync3Done) {
		cm.reset()
		n.master = msIdle
		n.sync1Done, n.sync2Done, n.sync3Done = false, false, false
		n.wdRestartsRound = 0
		worked = true
	}
	return worked
}

// sendMasterToken stamps tok with a fresh lap uid, keeps a copy for
// watchdog resends, and sends it around the ring.
func (n *node) sendMasterToken(p *sim.Proc, tok *gvtToken) {
	n.tokenSeq++
	tok.uid = n.tokenSeq
	n.lastSent = *tok
	n.lastProgress = p.Now()
	n.rank.SendRing(p, tagToken, tok.wireSize(), tok)
}

// watchdogPoll is the GVT liveness watchdog (master only): when the ring
// has made no progress for the watchdog timeout — the token, or an ack
// chain behind it, died beyond the transport's retry budget — it resends
// the last token unchanged (same uid). Nodes that already served that lap
// re-apply their memoized contribution; the master discards the duplicate
// by uid if the original eventually arrives. After WatchdogFallbackAfter
// restarts within one round, the next round is forced synchronous: a
// barrier round re-aligns a cluster the asynchronous protocol keeps
// losing tokens on.
func (n *node) watchdogPoll(p *sim.Proc) bool {
	eng := n.eng
	if eng.wdTimeout <= 0 || eng.world.Size() == 1 {
		return false
	}
	switch n.master {
	case msWaitA, msWaitB, msWaitC:
	default:
		return false
	}
	if p.Now()-n.lastProgress <= eng.wdTimeout {
		return false
	}
	tok := n.lastSent
	n.rank.SendRing(p, tagToken, tok.wireSize(), &tok)
	n.lastProgress = p.Now()
	n.wdRestartsRound++
	eng.wdRestarts++
	tr := eng.cfg.Trace
	if tr != nil {
		tr.Fault(trace.Fault{Kind: trace.FaultWatchdogRestart, AtNanos: int64(p.Now())})
	}
	if n.wdRestartsRound >= eng.cfg.WatchdogFallbackAfter && !eng.wdForceSync {
		eng.wdForceSync = true
		eng.wdFallbacks++
		if tr != nil {
			tr.Fault(trace.Fault{Kind: trace.FaultWatchdogFallback, AtNanos: int64(p.Now())})
		}
	}
	return true
}

// masterPoll runs node 0's ring-master duties.
func (n *node) masterPoll(p *sim.Proc, ca bool) bool {
	cm := &n.cm
	eng := n.eng
	single := eng.world.Size() == 1

	switch n.master {
	case msIdle:
		if cm.phase != phOpen || cm.redCount != cm.workers {
			return false
		}
		if single {
			// No ring needed: the node CM is the global control message.
			if n.peekDelta() != 0 {
				return false // white messages still in flight
			}
			cm.phase = phWhiteDone
			n.master = msWaitContrib
			return true
		}
		tok := &gvtToken{phase: tokWhite, count: n.takeDelta(p), minLVT: vtime.Inf, minRed: vtime.Inf}
		n.sendMasterToken(p, tok)
		n.master = msWaitA
		return true

	case msWaitA:
		m, ok := n.rank.TryRecvRing(p, tagToken)
		if !ok {
			return false
		}
		tok := m.Payload.(*gvtToken)
		if tok.uid != n.tokenSeq {
			return true // stale duplicate of an earlier lap: drop it
		}
		n.lastProgress = p.Now()
		tok.count += n.takeDelta(p)
		if tok.count == 0 {
			cm.phase = phWhiteDone
			n.master = msWaitContrib
		} else if tok.count < 0 {
			for _, nd := range n.eng.nodes {
				fmt.Printf("node %d: phase=%d red=%d delta=%d contrib=%d acked=%d master=%d held=%v outbox=%d\n",
					nd.id, nd.cm.phase, nd.cm.redCount, nd.cm.whiteDelta, nd.cm.contributed, nd.cm.acked, nd.master, nd.heldToken != nil, len(nd.outbox))
				for _, w := range nd.workers {
					fmt.Printf("  w%d: epoch=%d slot=%d state=%d sC=%v rC=%v inbox=%d\n",
						w.idx, w.epoch, w.drainSlot, w.mstate, w.sentC, w.recvC, len(w.inbox))
				}
			}
			panic(fmt.Sprintf("core: negative in-flight white count %d", tok.count))
		} else {
			// Messages still in flight: another lap collects the receipts.
			n.sendMasterToken(p, tok)
		}
		return true

	case msWaitContrib:
		if cm.contributed != cm.workers {
			return false
		}
		if single {
			n.publishGVT(p, ca, vtime.Min(cm.minLVT, cm.minRed))
			n.master = msCleanup
			return true
		}
		tok := &gvtToken{phase: tokReduce, minLVT: cm.minLVT, minRed: cm.minRed}
		n.sendMasterToken(p, tok)
		n.master = msWaitB
		return true

	case msWaitB:
		m, ok := n.rank.TryRecvRing(p, tagToken)
		if !ok {
			return false
		}
		tok := m.Payload.(*gvtToken)
		if tok.uid != n.tokenSeq {
			return true // stale duplicate of an earlier lap: drop it
		}
		n.lastProgress = p.Now()
		n.publishGVT(p, ca, vtime.Min(tok.minLVT, tok.minRed))
		out := &gvtToken{phase: tokGVT, gvt: cm.gvt, sync: cm.syncNext}
		n.sendMasterToken(p, out)
		n.master = msWaitC
		return true

	case msWaitC:
		m, ok := n.rank.TryRecvRing(p, tagToken)
		if !ok {
			return false
		}
		if m.Payload.(*gvtToken).uid != n.tokenSeq {
			return true // stale duplicate of an earlier lap: drop it
		}
		n.lastProgress = p.Now()
		n.master = msCleanup
		return true
	}
	return false
}

// peekDelta reads the node's accumulated white delta without consuming it
// (single-node fast path).
func (n *node) peekDelta() int64 { return n.cm.whiteDelta }

// publishGVT finalizes a round at the master: computes CA's SyncFlag from
// the observed efficiency (Algorithm 3 lines 20–24) and publishes the GVT.
func (n *node) publishGVT(p *sim.Proc, ca bool, gvt float64) {
	cm := &n.cm
	eng := n.eng
	eff := eng.clusterEfficiency()
	sync := false
	if ca {
		p.Advance(n.cost.EffCompute)
		sync = eff < eng.cfg.CAThreshold
	}
	if eng.wdForceSync {
		// Watchdog barrier fallback: the next round runs synchronously
		// regardless of algorithm or observed efficiency.
		sync = true
		eng.wdForceSync = false
	}
	cm.gvt = gvt
	cm.syncNext = sync
	cm.phase = phGVTReady
	eng.onRoundComplete(gvt, cm.syncCur, eff)
}

// slavePoll runs a non-master node's ring duties: fold local state into
// tokens as their preconditions are met, then forward them.
func (n *node) slavePoll(p *sim.Proc) bool {
	cm := &n.cm
	tok := n.heldToken
	n.heldToken = nil
	if tok == nil {
		m, ok := n.rank.TryRecvRing(p, tagToken)
		if !ok {
			return false
		}
		tok = m.Payload.(*gvtToken)
	}
	if c, served := n.tokMemo[tok.uid]; served {
		// Watchdog-resent duplicate of a lap this node already folded:
		// re-apply the recorded contribution and forward. Live CM state is
		// untouched (its delta was consumed by the original); the master
		// discards the duplicate by uid if the original lap completed.
		switch c.phase {
		case tokWhite:
			tok.count += c.delta
		case tokReduce:
			tok.minLVT, tok.minRed = c.minLVT, c.minRed
		}
		n.rank.SendRing(p, tagToken, tok.wireSize(), tok)
		return true
	}
	switch tok.phase {
	case tokWhite:
		// Hold until this node has reset from the previous round (the
		// master can race ahead and start the next round's token before a
		// slow node finished cleaning up) AND every local worker has turned
		// red for the new round — otherwise the token would collect a stale
		// or incomplete delta.
		if cm.phase != phOpen || cm.redCount != cm.workers {
			n.heldToken = tok
			return false
		}
		d := n.takeDelta(p)
		tok.count += d
		n.memoize(tok.uid, tokContrib{phase: tokWhite, delta: d})
		n.rank.SendRing(p, tagToken, tok.wireSize(), tok)
		return true
	case tokReduce:
		cm.phase = phWhiteDone
		if cm.contributed != cm.workers {
			n.heldToken = tok // hold until every local worker contributed
			return true       // phase change counts as progress
		}
		if cm.minLVT < tok.minLVT {
			tok.minLVT = cm.minLVT
		}
		if cm.minRed < tok.minRed {
			tok.minRed = cm.minRed
		}
		n.memoize(tok.uid, tokContrib{phase: tokReduce, minLVT: tok.minLVT, minRed: tok.minRed})
		n.rank.SendRing(p, tagToken, tok.wireSize(), tok)
		return true
	case tokGVT:
		cm.gvt = tok.gvt
		cm.syncNext = tok.sync
		cm.phase = phGVTReady
		n.memoize(tok.uid, tokContrib{phase: tokGVT})
		n.rank.SendRing(p, tagToken, tok.wireSize(), tok)
		return true
	}
	panic("core: unknown token phase")
}

// memoize records a served token lap for duplicate re-application,
// pruning laps far behind the newest (a duplicate can only trail the
// ring by the watchdog's resend horizon).
func (n *node) memoize(uid uint64, c tokContrib) {
	if n.tokMemo == nil {
		n.tokMemo = make(map[uint64]tokContrib)
	}
	n.tokMemo[uid] = c
	if uid > n.memoMax {
		n.memoMax = uid
	}
	if len(n.tokMemo) > 256 {
		for k := range n.tokMemo {
			if k+128 < n.memoMax {
				delete(n.tokMemo, k)
			}
		}
	}
}
