package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Mattern's asynchronous GVT (paper Algorithm 2) and Controlled
// Asynchronous GVT (Algorithm 3).
//
// Two kinds of control message are used, as in the paper: a shared-memory
// structure per node (nodeCM) that workers accumulate into, and an MPI
// token (gvtToken) that circulates in a ring of nodes. A round has three
// token phases: A accumulates in-flight white-message counts (repeating
// laps until the cumulative total is zero), B reduces each node's minimum
// unprocessed time and minimum red send stamp, and C broadcasts the new
// GVT (plus, for CA-GVT, the next round's synchronization flag).
//
// Workers keep processing events throughout — the asynchrony that wins on
// computation-dominated workloads. CA-GVT adds three synchronization
// points (Algorithm 3 lines 4, 14 and 30) when the observed efficiency of
// the previous round fell below the threshold; the first and last align
// the whole cluster (node barrier + MPI barrier), the middle one aligns
// each node's workers (the cross-node alignment there is provided by the
// token protocol itself, which avoids a circular wait with token B).

// Node CM phases.
const (
	phOpen      = iota // accepting red transitions for the current round
	phWhiteDone        // no white messages remain in flight cluster-wide
	phGVTReady         // the round's GVT is published
)

// Worker-side phases.
const (
	wIdle = iota // white, counting passes until the next round
	wRed         // flushed counters, waiting for phWhiteDone
	wDone        // contributed minima, waiting for phGVTReady
)

// Ring token phases.
const (
	tokWhite  = iota // phase A: accumulate white counts
	tokReduce        // phase B: reduce minima
	tokGVT           // phase C: broadcast GVT
)

// gvtToken is the inter-node control message.
type gvtToken struct {
	phase  int
	count  int64   // cumulative white sent-received (phase A)
	minLVT float64 // phase B
	minRed float64 // phase B
	gvt    float64 // phase C
	sync   bool    // phase C: CA-GVT's SyncFlag for the next round
}

func (t *gvtToken) wireSize() int { return 48 }

// nodeCM is the node-level shared control message.
type nodeCM struct {
	mu      sim.Mutex
	workers int

	phase       int
	roundStart  bool  // some worker initiated the round
	redCount    int   // workers that turned red
	whiteDelta  int64 // accumulated sent−received; carries across rounds
	minLVT      float64
	minRed      float64
	contributed int
	gvt         float64
	acked       int
	syncCur     bool // this round runs with CA barriers
	syncNext    bool // decided by the master at round end
}

func (cm *nodeCM) init(eng *Engine, workers int) {
	cm.workers = workers
	cm.mu.Name = "nodeCM"
	cm.mu.HoldCost = eng.cfg.Cost.RegionalLockHold
	cm.minLVT = vtime.Inf
	cm.minRed = vtime.Inf
}

// reset prepares the CM for the next round. whiteDelta deliberately
// carries over: white receipts recorded while a worker was still red
// belong to the next epoch's accounting.
func (cm *nodeCM) reset() {
	cm.phase = phOpen
	cm.roundStart = false
	cm.redCount = 0
	cm.minLVT = vtime.Inf
	cm.minRed = vtime.Inf
	cm.contributed = 0
	cm.acked = 0
	cm.syncCur = cm.syncNext
}

// takeDelta atomically removes the node's accumulated white delta.
func (n *node) takeDelta(p *sim.Proc) int64 {
	cm := &n.cm
	cm.mu.Lock(p)
	p.Advance(n.eng.cfg.Cost.GVTBookkeeping)
	d := cm.whiteDelta
	cm.whiteDelta = 0
	cm.mu.Unlock(p)
	return d
}

// flushOldReceipts pays receipts of the draining epoch recorded since the
// flip into the CM (Algorithm 2's in-flight white accounting).
func (w *worker) flushOldReceipts() {
	if w.recvC[w.drainSlot] == 0 {
		return
	}
	cm := &w.node.cm
	cm.mu.Lock(w.proc)
	w.proc.Advance(w.eng.cfg.Cost.GVTBookkeeping)
	cm.whiteDelta -= w.recvC[w.drainSlot]
	cm.mu.Unlock(w.proc)
	w.recvC[w.drainSlot] = 0
}

// matternPoll is the worker-side state machine, one step per main-loop
// pass. Unlike barrierPoll it never blocks (except at CA sync points), so
// event processing continues while the GVT computes in the background.
func (w *worker) matternPoll() {
	cm := &w.node.cm
	p := w.proc
	cost := &w.eng.cfg.Cost
	ca := w.eng.cfg.GVT == GVTControlled
	st := &workerBarrierStats{wait: &w.st.BarrierWait, w: w}
	isCommLeader := w.commRole() == commPumpAndGVT

	switch w.mstate {
	case wIdle:
		if cm.phase != phOpen {
			return // previous round still cleaning up
		}
		// Once any worker initiates a round, the rest join promptly: the
		// round cannot complete until every worker has flushed its
		// counters, and in synchronous CA rounds the first barrier
		// (Algorithm 3 line 4) additionally requires everyone.
		if w.passes < w.eng.cfg.GVTInterval && !cm.roundStart {
			return
		}
		cm.roundStart = true
		w.passes = 0
		w.setPhase(trace.PhaseGVT)
		if ca && cm.syncCur {
			w.node.syncPoint(p, isCommLeader, true, st)
		}
		slot := uint8(w.epoch & 3)
		cm.mu.Lock(p)
		p.Advance(cost.GVTBookkeeping)
		cm.whiteDelta += w.sentC[slot] - w.recvC[slot]
		cm.redCount++
		cm.mu.Unlock(p)
		w.sentC[slot], w.recvC[slot] = 0, 0
		w.drainSlot = slot
		w.epoch++
		w.minRed = vtime.Inf
		w.mstate = wRed

	case wRed:
		w.flushOldReceipts()
		if cm.phase < phWhiteDone {
			return
		}
		w.setPhase(trace.PhaseGVT)
		if ca && cm.syncCur {
			// Algorithm 3 line 14: align before contributing minima.
			w.node.syncPoint(p, isCommLeader, false, st)
		}
		cm.mu.Lock(p)
		p.Advance(cost.GVTBookkeeping)
		if lm := w.localMin(); lm < cm.minLVT {
			cm.minLVT = lm
		}
		if w.minRed < cm.minRed {
			cm.minRed = w.minRed
		}
		cm.contributed++
		cm.mu.Unlock(p)
		w.mstate = wDone

	case wDone:
		w.flushOldReceipts()
		if cm.phase < phGVTReady {
			return
		}
		w.setPhase(trace.PhaseGVT)
		// No flip back: the round's new epoch is the stable epoch until
		// the next round drains it.
		w.applyGVT(cm.gvt)
		if ca {
			if cm.syncCur {
				w.st.SyncRounds++
				// Algorithm 3 line 30: align after fossil collection.
				w.node.syncPoint(p, isCommLeader, true, st)
			}
			// Algorithm 3 line 31: computeEfficiency() every round — the
			// overhead that costs CA-GVT a few percent against pure
			// Mattern on computation-dominated models.
			p.Advance(cost.EffCompute)
		}
		cm.mu.Lock(p)
		cm.acked++
		cm.mu.Unlock(p)
		w.mstate = wIdle
	}
}

// masterState drives node 0's side of the ring protocol.
type masterState int

const (
	msIdle masterState = iota
	msWaitA
	msWaitContrib
	msWaitB
	msWaitC
	msCleanup
)

// matternCommPoll advances the comm role of Mattern/CA-GVT by one step.
// It is called by the dedicated MPI thread, or by worker 0 in
// combined/shared modes (where the worker-side poll handles sync points).
func (n *node) matternCommPoll(p *sim.Proc) bool {
	cm := &n.cm
	ca := n.eng.cfg.GVT == GVTControlled
	dedicated := n.eng.cfg.Comm == CommDedicated
	worked := false

	// The dedicated comm thread participates in CA's sync points.
	if dedicated && ca && cm.syncCur {
		if cm.roundStart && !n.sync1Done && cm.phase == phOpen {
			n.syncPoint(p, true, true, nil)
			n.sync1Done = true
			worked = true
		}
		if cm.phase >= phWhiteDone && !n.sync2Done {
			n.syncPoint(p, true, false, nil)
			n.sync2Done = true
			worked = true
		}
		if cm.phase >= phGVTReady && !n.sync3Done {
			n.syncPoint(p, true, true, nil)
			n.sync3Done = true
			worked = true
		}
	}

	if n.id == 0 {
		worked = n.masterPoll(p, ca) || worked
	} else {
		worked = n.slavePoll(p) || worked
	}

	// Round cleanup: all workers acknowledged and every token obligation
	// of this node is met. A held token can only be the NEXT round's white
	// token (arriving early from a fast master), so it does not block
	// cleanup — it is serviced right after the reset.
	if cm.phase == phGVTReady && cm.acked == cm.workers &&
		(n.heldToken == nil || n.heldToken.phase == tokWhite) &&
		(n.id != 0 || n.master == msCleanup) &&
		(!ca || !cm.syncCur || !dedicated || n.sync3Done) {
		cm.reset()
		n.master = msIdle
		n.sync1Done, n.sync2Done, n.sync3Done = false, false, false
		worked = true
	}
	return worked
}

// masterPoll runs node 0's ring-master duties.
func (n *node) masterPoll(p *sim.Proc, ca bool) bool {
	cm := &n.cm
	eng := n.eng
	single := eng.world.Size() == 1

	switch n.master {
	case msIdle:
		if cm.phase != phOpen || cm.redCount != cm.workers {
			return false
		}
		if single {
			// No ring needed: the node CM is the global control message.
			if n.peekDelta() != 0 {
				return false // white messages still in flight
			}
			cm.phase = phWhiteDone
			n.master = msWaitContrib
			return true
		}
		tok := &gvtToken{phase: tokWhite, count: n.takeDelta(p), minLVT: vtime.Inf, minRed: vtime.Inf}
		n.rank.SendRing(p, tagToken, tok.wireSize(), tok)
		n.master = msWaitA
		return true

	case msWaitA:
		m, ok := n.rank.TryRecvRing(p, tagToken)
		if !ok {
			return false
		}
		tok := m.Payload.(*gvtToken)
		tok.count += n.takeDelta(p)
		if tok.count == 0 {
			cm.phase = phWhiteDone
			n.master = msWaitContrib
		} else if tok.count < 0 {
			for _, nd := range n.eng.nodes {
				fmt.Printf("node %d: phase=%d red=%d delta=%d contrib=%d acked=%d master=%d held=%v outbox=%d\n",
					nd.id, nd.cm.phase, nd.cm.redCount, nd.cm.whiteDelta, nd.cm.contributed, nd.cm.acked, nd.master, nd.heldToken != nil, len(nd.outbox))
				for _, w := range nd.workers {
					fmt.Printf("  w%d: epoch=%d slot=%d state=%d sC=%v rC=%v inbox=%d\n",
						w.idx, w.epoch, w.drainSlot, w.mstate, w.sentC, w.recvC, len(w.inbox))
				}
			}
			panic(fmt.Sprintf("core: negative in-flight white count %d", tok.count))
		} else {
			// Messages still in flight: another lap collects the receipts.
			n.rank.SendRing(p, tagToken, tok.wireSize(), tok)
		}
		return true

	case msWaitContrib:
		if cm.contributed != cm.workers {
			return false
		}
		if single {
			n.publishGVT(p, ca, vtime.Min(cm.minLVT, cm.minRed))
			n.master = msCleanup
			return true
		}
		tok := &gvtToken{phase: tokReduce, minLVT: cm.minLVT, minRed: cm.minRed}
		n.rank.SendRing(p, tagToken, tok.wireSize(), tok)
		n.master = msWaitB
		return true

	case msWaitB:
		m, ok := n.rank.TryRecvRing(p, tagToken)
		if !ok {
			return false
		}
		tok := m.Payload.(*gvtToken)
		n.publishGVT(p, ca, vtime.Min(tok.minLVT, tok.minRed))
		out := &gvtToken{phase: tokGVT, gvt: cm.gvt, sync: cm.syncNext}
		n.rank.SendRing(p, tagToken, out.wireSize(), out)
		n.master = msWaitC
		return true

	case msWaitC:
		if _, ok := n.rank.TryRecvRing(p, tagToken); !ok {
			return false
		}
		n.master = msCleanup
		return true
	}
	return false
}

// peekDelta reads the node's accumulated white delta without consuming it
// (single-node fast path).
func (n *node) peekDelta() int64 { return n.cm.whiteDelta }

// publishGVT finalizes a round at the master: computes CA's SyncFlag from
// the observed efficiency (Algorithm 3 lines 20–24) and publishes the GVT.
func (n *node) publishGVT(p *sim.Proc, ca bool, gvt float64) {
	cm := &n.cm
	eng := n.eng
	eff := eng.clusterEfficiency()
	sync := false
	if ca {
		p.Advance(eng.cfg.Cost.EffCompute)
		sync = eff < eng.cfg.CAThreshold
	}
	cm.gvt = gvt
	cm.syncNext = sync
	cm.phase = phGVTReady
	eng.onRoundComplete(gvt, cm.syncCur, eff)
}

// slavePoll runs a non-master node's ring duties: fold local state into
// tokens as their preconditions are met, then forward them.
func (n *node) slavePoll(p *sim.Proc) bool {
	cm := &n.cm
	tok := n.heldToken
	n.heldToken = nil
	if tok == nil {
		m, ok := n.rank.TryRecvRing(p, tagToken)
		if !ok {
			return false
		}
		tok = m.Payload.(*gvtToken)
	}
	switch tok.phase {
	case tokWhite:
		// Hold until this node has reset from the previous round (the
		// master can race ahead and start the next round's token before a
		// slow node finished cleaning up) AND every local worker has turned
		// red for the new round — otherwise the token would collect a stale
		// or incomplete delta.
		if cm.phase != phOpen || cm.redCount != cm.workers {
			n.heldToken = tok
			return false
		}
		tok.count += n.takeDelta(p)
		n.rank.SendRing(p, tagToken, tok.wireSize(), tok)
		return true
	case tokReduce:
		cm.phase = phWhiteDone
		if cm.contributed != cm.workers {
			n.heldToken = tok // hold until every local worker contributed
			return true       // phase change counts as progress
		}
		if cm.minLVT < tok.minLVT {
			tok.minLVT = cm.minLVT
		}
		if cm.minRed < tok.minRed {
			tok.minRed = cm.minRed
		}
		n.rank.SendRing(p, tagToken, tok.wireSize(), tok)
		return true
	case tokGVT:
		cm.gvt = tok.gvt
		cm.syncNext = tok.sync
		cm.phase = phGVTReady
		n.rank.SendRing(p, tagToken, tok.wireSize(), tok)
		return true
	}
	panic("core: unknown token phase")
}
