package core_test

import (
	"fmt"
	"testing"

	core "repro/internal/core"
)

// TestQueueParityAcrossModels: the calendar queue must commit a
// bit-identical event stream to the binary heap on PHOLD and the tandem
// queueing network — the two models with the most divergent timestamp
// distributions (dense uniform vs bursty service completions). This
// guards the calendar queue's bucket rotation against ordering drift
// that the aggregate counters of TestQueueKinds could miss.
func TestQueueParityAcrossModels(t *testing.T) {
	for _, m := range balanceModels(balanceTopology()) {
		if m.name != "phold" && m.name != "tandem" {
			continue
		}
		t.Run(m.name, func(t *testing.T) {
			runs := map[string]int64{}
			var sums []uint64
			for _, kind := range []string{"heap", "calendar"} {
				cfg := balanceConfig(m, "", core.GVTMattern)
				cfg.QueueKind = kind
				r := checkOracle(t, cfg)
				runs[kind] = r.Workers.Committed
				sums = append(sums, r.CommitChecksum)
			}
			if sums[0] != sums[1] {
				t.Errorf("calendar checksum %x != heap %x", sums[1], sums[0])
			}
			if runs["heap"] != runs["calendar"] {
				t.Errorf("calendar committed %d events, heap %d", runs["calendar"], runs["heap"])
			}
		})
	}
}

// TestCheckpointIntervalsAcrossModels extends the infrequent-snapshot
// coverage (TestCheckpointIntervals exercises PHOLD) to the remaining
// benchmark models: coast-forward replay after a rollback re-executes
// model code, so every model's event handler must be replay-safe.
func TestCheckpointIntervalsAcrossModels(t *testing.T) {
	for _, m := range balanceModels(balanceTopology()) {
		if m.name == "phold" {
			continue
		}
		for _, k := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/k=%d", m.name, k), func(t *testing.T) {
				cfg := balanceConfig(m, "", core.GVTMattern)
				cfg.CheckpointInterval = k
				checkOracle(t, cfg)
			})
		}
	}
}
