package core

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/fabric"
	"repro/internal/vtime"
)

// GVT safety invariant: a published GVT must never exceed the true minimum
// over every timestamp the simulation could still deliver — unprocessed
// pending events, mailbox deposits, stashed anti-messages, node outboxes,
// frames buffered inside the reliable transport, and packets in flight on
// the fabric. Fault injection is exactly the regime where a protocol bug
// would let a delayed or retransmitted message slip under the commit
// horizon, so the engine verifies the invariant after every round whenever
// a fault plan (or Config.CheckInvariants) is active.

// checkGVTInvariant panics if gvt exceeds the minimum observable timestamp.
// It runs in scheduler-callback context on the master node right after the
// round's GVT value is fixed, before workers resume from it — a consistent
// snapshot under the cooperative scheduler.
func (e *Engine) checkGVTInvariant(gvt float64) {
	if !e.invariants {
		return
	}
	min, where := e.minObservable()
	if gvt > min {
		panic(fmt.Sprintf("core: GVT invariant violated: published GVT %.9g exceeds %s = %.9g",
			gvt, where, min))
	}
}

// minObservable returns the minimum timestamp still observable anywhere in
// the cluster and a description of where it sits.
func (e *Engine) minObservable() (float64, string) {
	min := vtime.Inf
	where := "nothing observable"
	consider := func(t float64, loc string) {
		if t < min {
			min, where = t, loc
		}
	}
	for _, n := range e.nodes {
		for _, w := range n.workers {
			if ev := w.pending.Peek(); ev != nil {
				consider(ev.Stamp.T, "worker pending event")
			}
			for _, ev := range w.inbox {
				consider(ev.Stamp.T, "worker inbox")
			}
			for _, ev := range w.limbo {
				consider(ev.Stamp.T, "worker limbo (awaiting LP install)")
			}
			for _, m := range w.migIn {
				consider(m.minPayloadStamp(), "migration mailbox payload")
			}
			for _, l := range w.lps {
				for _, a := range l.pendingAnti {
					consider(a.Stamp.T, "stashed anti-message")
				}
			}
		}
		for _, ev := range n.outbox {
			consider(ev.Stamp.T, "node outbox")
		}
		for _, m := range n.outMigs {
			consider(m.minPayloadStamp(), "node migration outbox payload")
		}
	}
	// Messages inside the transport: out-of-order reassembly buffers and
	// unacked frames that may be retransmitted.
	e.world.ForEachBuffered(func(payload any) {
		switch v := payload.(type) {
		case *event.Event:
			consider(v.Stamp.T, "transport buffer")
		case *migMsg:
			consider(v.minPayloadStamp(), "transport buffer (migration)")
		}
	})
	// Packets on the wire. Frames the receiver will discard (acks, fabric
	// duplicates of already-accepted frames) cannot re-enter the simulation
	// and must not pin the minimum.
	e.world.Fabric().ForEachInFlight(func(pkt fabric.Packet) {
		if !e.world.PacketWillDeliver(pkt) {
			return
		}
		switch v := pkt.Payload.(type) {
		case *event.Event:
			consider(v.Stamp.T, "in-flight MPI packet")
		case *migMsg:
			consider(v.minPayloadStamp(), "in-flight migration packet")
		}
	})
	return min, where
}
