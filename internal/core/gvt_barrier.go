package core

import (
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Barrier GVT (paper Algorithm 1, "stop-synchronize-and-go").
//
// Each worker publishes msgCount = sent − received, meets the node-level
// pthread barrier, the MPI-responsible participant sums the node counts
// and allreduces them across nodes, and everyone loops until the cluster
// in-transit total is zero. Then local minima are reduced the same way
// into the new GVT. Workers do no event processing inside the round; the
// idle time parked at the barriers is the algorithm's cost (Figure 1).

// barrierPoll is the worker-side driver, called once per main-loop pass.
func (w *worker) barrierPoll() {
	if w.passes < w.eng.cfg.GVTInterval && !w.node.gvtReq {
		return
	}
	w.node.gvtReq = true
	w.passes = 0
	w.barrierWorkerRound()
}

// barrierWorkerRound executes one synchronous GVT round from the worker's
// perspective. The comm role (the dedicated MPI thread, or worker 0 in
// combined/shared modes) performs the MPI reductions between the two node
// barriers of each iteration.
func (w *worker) barrierWorkerRound() {
	n := w.node
	p := w.proc
	cost := &w.node.cost
	st := &workerBarrierStats{wait: &w.st.BarrierWait, w: w}
	comm := w.commRole() == commPumpAndGVT
	gvtStart := p.Now()
	w.setPhase(trace.PhaseGVT)

	for {
		// ReadMessages(): keep receiving so in-transit counts can drain.
		// Migration messages count like events, so they must be drainable
		// inside the round too or the transit total could never hit zero.
		if w.eng.migEnabled {
			w.drainMigrations()
		}
		w.drainInbox()
		n.msgCount[w.idx] = w.msgSent - w.msgRecv
		p.Advance(cost.BarrierEntry)
		n.barrierWait(p, n.gvtBar, st)
		if comm {
			n.commBarrierStep(p)
		}
		n.barrierWait(p, n.gvtBar2, st)
		if n.transit == 0 {
			break
		}
		if comm {
			// Keep remote messages moving or the transit count can never
			// reach zero.
			n.pump(p)
		}
	}

	// All in-transit messages received: reduce local minima into GVT.
	n.localMin[w.idx] = w.localMin()
	p.Advance(cost.BarrierEntry)
	n.barrierWait(p, n.gvtBar, st)
	if comm {
		n.commBarrierFinish(p)
	}
	n.barrierWait(p, n.gvtBar2, st)
	w.applyGVT(n.nodeGVT)
	w.st.GVTTime += p.Now() - gvtStart
}

// commBarrierRound is the dedicated MPI thread's side of a round.
func (n *node) commBarrierRound(p *sim.Proc) {
	for {
		n.barrierWait(p, n.gvtBar, nil)
		n.commBarrierStep(p)
		n.barrierWait(p, n.gvtBar2, nil)
		if n.transit == 0 {
			break
		}
		n.pump(p)
	}
	n.barrierWait(p, n.gvtBar, nil)
	n.commBarrierFinish(p)
	n.barrierWait(p, n.gvtBar2, nil)
}

// commBarrierStep sums the node's in-transit counts and allreduces them
// across nodes (Algorithm 1 lines 5–7).
func (n *node) commBarrierStep(p *sim.Proc) {
	p.Advance(n.cost.GVTBookkeeping)
	var sum int64
	for _, c := range n.msgCount {
		sum += c
	}
	n.transit = n.rank.AllreduceSum(p, sum)
}

// commBarrierFinish reduces node minima into the cluster GVT (lines
// 10–12) and publishes it. It also retires the round request: workers are
// parked at the exit barrier at this point, so no new round can race it.
func (n *node) commBarrierFinish(p *sim.Proc) {
	p.Advance(n.cost.GVTBookkeeping)
	min := vtime.Inf
	for _, v := range n.localMin {
		if v < min {
			min = v
		}
	}
	n.nodeGVT = n.rank.AllreduceMin(p, min)
	n.gvtReq = false
	if n.id == 0 {
		n.eng.onRoundComplete(n.nodeGVT, false, n.eng.clusterEfficiency())
	}
}
