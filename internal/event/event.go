// Package event defines the Time Warp event message: timestamps,
// anti-message matching identity, and the white/red coloring that Mattern's
// GVT algorithm (and CA-GVT) stamp onto messages in flight.
package event

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/vtime"
)

// LPID identifies a logical process globally.
type LPID uint32

// Color is the Mattern phase color carried by every message — generalized
// from the paper's two colors to the sender's GVT-epoch number mod 4. GVT
// round R drains (counts) the messages of epoch R-1; messages sent during
// the round belong to the new epoch and feed min_red. The generalization
// matters because round completion is staggered across nodes, so messages
// of three consecutive epochs can coexist; mod-4 keeps them distinct.
type Color uint8

const (
	// White is the initial epoch's color (paper terminology).
	White Color = iota
	// Red is the first round's in-progress color (paper terminology).
	Red
)

func (c Color) String() string {
	switch c {
	case White:
		return "white"
	case Red:
		return "red"
	default:
		return fmt.Sprintf("epoch%%4=%d", uint8(c))
	}
}

// Class describes a message's destination locality, which determines its
// transmission cost (paper §2: local, regional, remote).
type Class uint8

const (
	// Local messages are sent by an LP to itself: no interconnect crossing.
	Local Class = iota
	// Regional messages target a core in the same node: shared memory + lock.
	Regional
	// Remote messages cross the network to another node via MPI.
	Remote
)

func (c Class) String() string {
	switch c {
	case Local:
		return "local"
	case Regional:
		return "regional"
	default:
		return "remote"
	}
}

// Event is a time-stamped event message. The same structure represents
// positive messages and their anti-messages (Anti set, identical MatchID).
type Event struct {
	Stamp    vtime.Stamp // receive time + deterministic tie-break
	SendTime vtime.Time  // sender's LVT when the event was sent
	Src, Dst LPID
	MatchID  uint64 // engine-unique identity for anti-message annihilation
	AckID    uint64 // transport identity for Samadi acknowledgements (0 = none)
	Anti     bool
	Color    Color
	Kind     uint16 // model-defined discriminator
	Data     []byte // model payload (nil for PHOLD)

	freed bool // set while the event sits on a Pool free list
}

// Freed reports whether the event is currently on a pool free list. Any
// code holding a pointer for which this returns true has a use-after-
// recycle bug; the engine asserts this on every touch in PoolDebug mode.
func (e *Event) Freed() bool { return e.freed }

// RecvTime returns the stamp's primary timestamp.
func (e *Event) RecvTime() vtime.Time { return e.Stamp.T }

// Matches reports whether a and b are a positive/anti pair (or duplicates).
func (e *Event) Matches(o *Event) bool {
	return e.MatchID == o.MatchID && e.Src == o.Src
}

// AntiCopy returns the anti-message cancelling e.
func (e *Event) AntiCopy() *Event {
	a := *e
	a.Anti = true
	a.Data = nil
	return &a
}

// AntiCopyInto fills a (typically pool-recycled) with the anti-message
// cancelling e and returns it. Equivalent to AntiCopy without the heap
// allocation.
func (e *Event) AntiCopyInto(a *Event) *Event {
	*a = *e
	a.Anti = true
	a.Data = nil
	a.freed = false
	return a
}

func (e *Event) String() string {
	sign := "+"
	if e.Anti {
		sign = "-"
	}
	return fmt.Sprintf("%sev{%v %d->%d send=%.6g id=%d %v}",
		sign, e.Stamp, e.Src, e.Dst, e.SendTime, e.MatchID, e.Color)
}

// wireHeader is the fixed-size portion of the wire encoding.
const wireHeader = 8 + 4 + 8 + 8 + 4 + 4 + 8 + 8 + 1 + 1 + 2 + 4

// WireSize returns the encoded size in bytes, used by the network fabric to
// charge serialization and bandwidth costs.
func (e *Event) WireSize() int { return wireHeader + len(e.Data) }

// Encode appends the wire encoding of e to buf and returns the result.
// The engine moves events between simulated nodes by pointer (it is one
// process), but the codec exists so the fabric can charge realistic sizes
// and so traces can be written; it is exercised and round-trip tested.
func (e *Event) Encode(buf []byte) []byte {
	var tmp [wireHeader]byte
	b := tmp[:]
	binary.LittleEndian.PutUint64(b[0:], uint64(floatBits(e.Stamp.T)))
	binary.LittleEndian.PutUint32(b[8:], e.Stamp.Src)
	binary.LittleEndian.PutUint64(b[12:], e.Stamp.Seq)
	binary.LittleEndian.PutUint64(b[20:], uint64(floatBits(e.SendTime)))
	binary.LittleEndian.PutUint32(b[28:], uint32(e.Src))
	binary.LittleEndian.PutUint32(b[32:], uint32(e.Dst))
	binary.LittleEndian.PutUint64(b[36:], e.MatchID)
	binary.LittleEndian.PutUint64(b[44:], e.AckID)
	if e.Anti {
		b[52] = 1
	} else {
		b[52] = 0
	}
	b[53] = byte(e.Color)
	binary.LittleEndian.PutUint16(b[54:], e.Kind)
	binary.LittleEndian.PutUint32(b[56:], uint32(len(e.Data)))
	buf = append(buf, b...)
	return append(buf, e.Data...)
}

// Decode parses one event from buf, returning the event and the remaining
// bytes.
func Decode(buf []byte) (*Event, []byte, error) {
	if len(buf) < wireHeader {
		return nil, buf, fmt.Errorf("event: short buffer (%d bytes)", len(buf))
	}
	e := &Event{}
	e.Stamp.T = bitsFloat(binary.LittleEndian.Uint64(buf[0:]))
	e.Stamp.Src = binary.LittleEndian.Uint32(buf[8:])
	e.Stamp.Seq = binary.LittleEndian.Uint64(buf[12:])
	e.SendTime = bitsFloat(binary.LittleEndian.Uint64(buf[20:]))
	e.Src = LPID(binary.LittleEndian.Uint32(buf[28:]))
	e.Dst = LPID(binary.LittleEndian.Uint32(buf[32:]))
	e.MatchID = binary.LittleEndian.Uint64(buf[36:])
	e.AckID = binary.LittleEndian.Uint64(buf[44:])
	e.Anti = buf[52] != 0
	e.Color = Color(buf[53])
	e.Kind = binary.LittleEndian.Uint16(buf[54:])
	n := int(binary.LittleEndian.Uint32(buf[56:]))
	rest := buf[wireHeader:]
	if len(rest) < n {
		return nil, buf, fmt.Errorf("event: payload truncated (want %d, have %d)", n, len(rest))
	}
	if n > 0 {
		e.Data = append([]byte(nil), rest[:n]...)
	}
	return e, rest[n:], nil
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
