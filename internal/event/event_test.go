package event

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func sample() *Event {
	return &Event{
		Stamp:    vtime.Stamp{T: 12.5, Src: 3, Seq: 99},
		SendTime: 11.25,
		Src:      3,
		Dst:      42,
		MatchID:  777,
		Color:    Red,
		Kind:     5,
		Data:     []byte{1, 2, 3},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := sample()
	buf := e.Encode(nil)
	if len(buf) != e.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(buf), e.WireSize())
	}
	got, rest, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d leftover bytes", len(rest))
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("round trip:\n  in  %+v\n  out %+v", e, got)
	}
}

func TestEncodeDecodeNilData(t *testing.T) {
	e := sample()
	e.Data = nil
	got, _, err := Decode(e.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Data != nil {
		t.Fatalf("Data = %v, want nil", got.Data)
	}
}

func TestDecodeMultiple(t *testing.T) {
	a, b := sample(), sample()
	b.MatchID = 778
	b.Anti = true
	buf := b.Encode(a.Encode(nil))
	g1, rest, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, rest, err := Decode(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatal("leftover bytes")
	}
	if g1.MatchID != 777 || g2.MatchID != 778 || !g2.Anti {
		t.Fatal("multi-event decode mixed up events")
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer did not error")
	}
	e := sample()
	buf := e.Encode(nil)
	if _, _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Error("truncated payload did not error")
	}
}

func TestAntiCopy(t *testing.T) {
	e := sample()
	a := e.AntiCopy()
	if !a.Anti {
		t.Error("AntiCopy not anti")
	}
	if a.Data != nil {
		t.Error("AntiCopy carries payload")
	}
	if !a.Matches(e) || !e.Matches(a) {
		t.Error("anti does not match its positive")
	}
	if a.Stamp != e.Stamp || a.Dst != e.Dst {
		t.Error("AntiCopy changed identity fields")
	}
	if e.Anti {
		t.Error("AntiCopy mutated original")
	}
}

func TestMatches(t *testing.T) {
	a, b := sample(), sample()
	if !a.Matches(b) {
		t.Error("identical events do not match")
	}
	b.MatchID++
	if a.Matches(b) {
		t.Error("different MatchID matched")
	}
	b.MatchID--
	b.Src++
	if a.Matches(b) {
		t.Error("different Src matched")
	}
}

func TestClassAndColorStrings(t *testing.T) {
	if Local.String() != "local" || Regional.String() != "regional" || Remote.String() != "remote" {
		t.Error("Class strings wrong")
	}
	if White.String() != "white" || Red.String() != "red" {
		t.Error("Color strings wrong")
	}
}

func TestEventString(t *testing.T) {
	e := sample()
	if e.String() == "" || e.AntiCopy().String()[0] != '-' {
		t.Error("String() malformed")
	}
}

// Property: Encode/Decode round-trips arbitrary events, including special
// float values and empty payloads.
func TestCodecRoundTripProperty(t *testing.T) {
	prop := func(ts, st float64, src, dst uint32, seq, id uint64, anti bool, kind uint16, data []byte) bool {
		if math.IsNaN(ts) || math.IsNaN(st) {
			return true // NaN != NaN; identity is preserved bitwise but skip
		}
		e := &Event{
			Stamp:    vtime.Stamp{T: ts, Src: src, Seq: seq},
			SendTime: st,
			Src:      LPID(src),
			Dst:      LPID(dst),
			MatchID:  id,
			Anti:     anti,
			Color:    Color(uint8(kind) % 2),
			Kind:     kind,
			Data:     data,
		}
		got, rest, err := Decode(e.Encode(nil))
		if err != nil || len(rest) != 0 {
			return false
		}
		if len(data) == 0 {
			got.Data, e.Data = nil, nil
		}
		return reflect.DeepEqual(e, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	e := sample()
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = e.Encode(buf[:0])
	}
}

func BenchmarkDecode(b *testing.B) {
	buf := sample().Encode(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
