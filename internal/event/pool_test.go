package event

import (
	"strings"
	"testing"

	"repro/internal/vtime"
)

func TestPoolRecycles(t *testing.T) {
	p := NewPool(false)
	e := p.Get()
	if p.News != 1 || p.Gets != 0 {
		t.Fatalf("fresh Get: News=%d Gets=%d", p.News, p.Gets)
	}
	e.Stamp = vtime.Stamp{T: 3, Src: 7, Seq: 9}
	e.Data = []byte{1, 2, 3}
	p.Put(e)
	if !e.Freed() {
		t.Fatal("Put did not mark event freed")
	}
	if e.Data != nil {
		t.Fatal("Put retained payload reference")
	}
	got := p.Get()
	if got != e {
		t.Fatal("Get did not recycle the freed event")
	}
	if got.Freed() || got.Stamp != (vtime.Stamp{}) || got.Data != nil {
		t.Fatalf("recycled event not zeroed: %+v", got)
	}
	if p.Gets != 1 || p.Puts != 1 {
		t.Fatalf("counters: Gets=%d Puts=%d", p.Gets, p.Puts)
	}
}

func TestPoolDoubleFreePanics(t *testing.T) {
	for _, debug := range []bool{false, true} {
		p := NewPool(debug)
		e := p.Get()
		p.Put(e)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("debug=%v: double free did not panic", debug)
				}
				if !strings.Contains(r.(string), "double free") {
					t.Fatalf("debug=%v: unexpected panic %v", debug, r)
				}
			}()
			p.Put(e)
		}()
	}
}

// TestPoolPoisonDetectsUseAfterRecycle is the contract the core engine's
// PoolDebug mode relies on: writing through a pointer to a freed event is
// caught at the next Get, not silently absorbed.
func TestPoolPoisonDetectsUseAfterRecycle(t *testing.T) {
	p := NewPool(true)
	stale := p.Get()
	p.Put(stale)
	stale.MatchID = 42 // the bug: a write through a stale pointer

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("use-after-recycle was not detected")
		}
		if !strings.Contains(r.(string), "use-after-recycle") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	p.Get()
}

// TestPoolPoisonCleanReuse: an untouched freed event passes the poison
// check and comes back zeroed.
func TestPoolPoisonCleanReuse(t *testing.T) {
	p := NewPool(true)
	e := p.Get()
	e.Stamp.T = 5
	e.Kind = 3
	p.Put(e)
	got := p.Get()
	if got != e {
		t.Fatal("expected recycled event")
	}
	if got.Stamp.T != 0 || got.Kind != 0 || got.Anti || got.Freed() {
		t.Fatalf("recycled event not zeroed: %+v", got)
	}
}

func TestAntiCopyInto(t *testing.T) {
	e := &Event{Stamp: vtime.Stamp{T: 2, Src: 1, Seq: 4}, Src: 1, Dst: 2, MatchID: 99, Data: []byte{7}}
	var a Event
	got := e.AntiCopyInto(&a)
	want := e.AntiCopy()
	if got != &a {
		t.Fatal("AntiCopyInto did not return its argument")
	}
	if got.Stamp != want.Stamp || got.SendTime != want.SendTime ||
		got.Src != want.Src || got.Dst != want.Dst ||
		got.MatchID != want.MatchID || got.AckID != want.AckID ||
		got.Anti != want.Anti || got.Color != want.Color ||
		got.Kind != want.Kind || got.Data != nil {
		t.Fatalf("AntiCopyInto = %+v, want %+v", got, want)
	}
	if !got.Anti || !got.Matches(e) {
		t.Fatalf("anti does not match original: %+v", got)
	}
}
