package event

import "fmt"

// Pool is a free list of Event objects. Time Warp churns through events
// at a furious rate — every processed event is eventually either
// annihilated by an anti-message or fossil-collected when GVT passes it —
// so the engine gives each simulated node one Pool and recycles events at
// exactly those two points instead of leaving them to the garbage
// collector. The pool is deliberately unsynchronized: the cooperative
// kernel guarantees at most one goroutine touches a node at any instant.
//
// In debug mode every freed event is filled with poison values and the
// poison is re-verified when the event is handed out again, so a write
// through a stale pointer (use-after-recycle) panics at the Get that
// would otherwise silently corrupt a live event.
type Pool struct {
	free  []*Event
	debug bool

	// Stats, all monotone counters.
	News uint64 // events allocated fresh because the free list was empty
	Gets uint64 // events handed out (recycled; excludes News)
	Puts uint64 // events returned to the free list
}

// NewPool returns an empty pool. With debug set, freed events are
// poisoned and verified on reuse.
func NewPool(debug bool) *Pool { return &Pool{debug: debug} }

// Poison sentinels: values no live event carries (negative virtual time,
// out-of-range LP IDs) so an intact poison pattern proves nothing wrote
// to the event while it sat on the free list.
const (
	poisonTime  = -271828.1828459045
	poisonID    = 0xDEADBEEF
	poisonMatch = 0xFEEDFACECAFEBEEF
	poisonKind  = 0xDEAD
	poisonColor = 0xEE
)

// Get returns a zeroed event, recycling from the free list when possible.
func (p *Pool) Get() *Event {
	n := len(p.free)
	if n == 0 {
		p.News++
		return &Event{}
	}
	e := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	if p.debug {
		p.checkPoison(e)
	}
	*e = Event{}
	p.Gets++
	return e
}

// Put returns e to the free list. Double frees panic in every mode; in
// debug mode the event is additionally poisoned.
func (p *Pool) Put(e *Event) {
	if e == nil {
		return
	}
	if e.freed {
		panic(fmt.Sprintf("event: double free of %v", e))
	}
	if p.debug {
		p.poison(e)
	} else {
		e.Data = nil // don't pin model payloads while pooled
	}
	e.freed = true
	p.free = append(p.free, e)
	p.Puts++
}

// Len returns the current free-list depth.
func (p *Pool) Len() int { return len(p.free) }

func (p *Pool) poison(e *Event) {
	e.Stamp.T = poisonTime
	e.Stamp.Src = poisonID
	e.Stamp.Seq = poisonMatch
	e.SendTime = poisonTime
	e.Src = poisonID
	e.Dst = poisonID
	e.MatchID = poisonMatch
	e.AckID = poisonMatch
	e.Anti = true
	e.Color = poisonColor
	e.Kind = poisonKind
	e.Data = nil
}

func (p *Pool) checkPoison(e *Event) {
	ok := e.Stamp.T == poisonTime &&
		e.Stamp.Src == poisonID &&
		e.Stamp.Seq == poisonMatch &&
		e.SendTime == poisonTime &&
		e.Src == poisonID &&
		e.Dst == poisonID &&
		e.MatchID == poisonMatch &&
		e.AckID == poisonMatch &&
		e.Anti &&
		e.Color == poisonColor &&
		e.Kind == poisonKind &&
		e.Data == nil
	if !ok {
		panic(fmt.Sprintf("event: freed event was written through a stale pointer (use-after-recycle): %v", e))
	}
}
