package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/vtime"
)

func ev(t float64, src uint32, seq uint64) *event.Event {
	return &event.Event{
		Stamp:   vtime.Stamp{T: t, Src: src, Seq: seq},
		Src:     event.LPID(src),
		MatchID: seq,
	}
}

func kinds() []string { return []string{"heap", "calendar"} }

func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown kind did not panic")
		}
	}()
	New("splay")
}

func TestPushPopOrdered(t *testing.T) {
	for _, kind := range kinds() {
		q := New(kind)
		times := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
		for i, tt := range times {
			q.Push(ev(tt, 0, uint64(i)))
		}
		if q.Len() != len(times) {
			t.Fatalf("[%s] Len = %d", kind, q.Len())
		}
		prev := -1.0
		for q.Len() > 0 {
			e := q.Pop()
			if e.Stamp.T < prev {
				t.Fatalf("[%s] popped out of order: %v after %v", kind, e.Stamp.T, prev)
			}
			prev = e.Stamp.T
		}
		if q.Pop() != nil || q.Peek() != nil {
			t.Fatalf("[%s] empty queue returned non-nil", kind)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	for _, kind := range kinds() {
		q := New(kind)
		q.Push(ev(2, 0, 0))
		q.Push(ev(1, 0, 1))
		if q.Peek().Stamp.T != 1 || q.Len() != 2 {
			t.Fatalf("[%s] Peek broken", kind)
		}
		if q.Pop().Stamp.T != 1 || q.Len() != 1 {
			t.Fatalf("[%s] Pop after Peek broken", kind)
		}
	}
}

func TestTieBreakOrdering(t *testing.T) {
	for _, kind := range kinds() {
		q := New(kind)
		q.Push(ev(1, 2, 0))
		q.Push(ev(1, 1, 5))
		q.Push(ev(1, 1, 3))
		want := []vtime.Stamp{{T: 1, Src: 1, Seq: 3}, {T: 1, Src: 1, Seq: 5}, {T: 1, Src: 2, Seq: 0}}
		for i, w := range want {
			if got := q.Pop().Stamp; got != w {
				t.Fatalf("[%s] pop #%d = %v, want %v", kind, i, got, w)
			}
		}
	}
}

func TestRemoveMatching(t *testing.T) {
	for _, kind := range kinds() {
		q := New(kind)
		pos := ev(5, 1, 100)
		q.Push(ev(1, 0, 1))
		q.Push(pos)
		q.Push(ev(9, 2, 3))

		anti := pos.AntiCopy()
		got := q.RemoveMatching(anti)
		if got != pos {
			t.Fatalf("[%s] RemoveMatching = %v, want the positive", kind, got)
		}
		if q.Len() != 2 {
			t.Fatalf("[%s] Len after remove = %d", kind, q.Len())
		}
		if q.RemoveMatching(anti) != nil {
			t.Fatalf("[%s] second RemoveMatching found a ghost", kind)
		}
		// Heap order must survive removal.
		if q.Pop().Stamp.T != 1 || q.Pop().Stamp.T != 9 {
			t.Fatalf("[%s] order broken after removal", kind)
		}
	}
}

func TestRemoveMatchingRequiresOppositeSign(t *testing.T) {
	for _, kind := range kinds() {
		q := New(kind)
		anti := ev(5, 1, 100).AntiCopy()
		q.Push(anti) // an anti waiting in queue
		// A second identical anti must NOT annihilate the first.
		if q.RemoveMatching(anti.AntiCopy()) != nil {
			t.Fatalf("[%s] anti annihilated anti", kind)
		}
		// The positive does annihilate it.
		if q.RemoveMatching(ev(5, 1, 100)) == nil {
			t.Fatalf("[%s] positive failed to annihilate anti", kind)
		}
	}
}

func TestStragglerReinsertion(t *testing.T) {
	// Calendar queues must accept events earlier than the last pop.
	for _, kind := range kinds() {
		q := New(kind)
		for i := 0; i < 20; i++ {
			q.Push(ev(float64(i), 0, uint64(i)))
		}
		for i := 0; i < 10; i++ {
			q.Pop()
		}
		q.Push(ev(0.5, 9, 99)) // straggler far in the past
		if got := q.Pop().Stamp.T; got != 0.5 {
			t.Fatalf("[%s] straggler not surfaced: got %v", kind, got)
		}
	}
}

func TestLargeRandomAgainstSort(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, kind := range kinds() {
		q := New(kind)
		const n = 5000
		times := make([]float64, n)
		for i := range times {
			times[i] = r.Float64() * 1000
			q.Push(ev(times[i], uint32(i%7), uint64(i)))
		}
		sort.Float64s(times)
		for i := 0; i < n; i++ {
			e := q.Pop()
			if e == nil {
				t.Fatalf("[%s] queue ran dry at %d", kind, i)
			}
			if e.Stamp.T != times[i] {
				t.Fatalf("[%s] pop #%d = %v, want %v", kind, i, e.Stamp.T, times[i])
			}
		}
	}
}

func TestInterleavedPushPop(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for _, kind := range kinds() {
		q := New(kind)
		var popped []float64
		pending := 0
		for step := 0; step < 20000; step++ {
			if pending == 0 || r.Intn(3) != 0 {
				q.Push(ev(r.Float64()*100, uint32(step%5), uint64(step)))
				pending++
			} else {
				popped = append(popped, q.Pop().Stamp.T)
				pending--
			}
		}
		for q.Len() > 0 {
			popped = append(popped, q.Pop().Stamp.T)
		}
		// Once all pushes stop, the drain must be sorted; interleaved pops
		// can go "backwards" only when a smaller push arrived after a pop,
		// so just validate the final drain segment.
		tail := popped[len(popped)-pending:]
		if !sort.Float64sAreSorted(tail) {
			t.Fatalf("[%s] final drain not sorted", kind)
		}
	}
}

func TestMinStampHelper(t *testing.T) {
	q := NewHeap()
	if MinStamp(q) != vtime.InfStamp {
		t.Error("empty MinStamp not Inf")
	}
	q.Push(ev(3, 1, 2))
	if MinStamp(q).T != 3 {
		t.Error("MinStamp wrong")
	}
}

// Property: both queues drain any batch in exactly stamp-sorted order.
func TestDrainSortedProperty(t *testing.T) {
	prop := func(raw []float64, srcs []uint32) bool {
		for _, kind := range kinds() {
			q := New(kind)
			n := len(raw)
			if n > 200 {
				n = 200
			}
			stamps := make([]vtime.Stamp, 0, n)
			for i := 0; i < n; i++ {
				tt := raw[i]
				if tt < 0 {
					tt = -tt
				}
				if tt > 1e12 || tt != tt {
					tt = 1
				}
				var src uint32
				if len(srcs) > 0 {
					src = srcs[i%len(srcs)] % 16
				}
				s := vtime.Stamp{T: tt, Src: src, Seq: uint64(i)}
				stamps = append(stamps, s)
				q.Push(&event.Event{Stamp: s, Src: event.LPID(src), MatchID: uint64(i)})
			}
			sort.Slice(stamps, func(i, j int) bool { return stamps[i].Before(stamps[j]) })
			for i := 0; i < n; i++ {
				if got := q.Pop().Stamp; got != stamps[i] {
					return false
				}
			}
			if q.Pop() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: RemoveMatching never changes the relative order of the
// remaining events.
func TestRemoveMatchingPreservesOrderProperty(t *testing.T) {
	prop := func(raw []float64, pick uint8) bool {
		n := len(raw)
		if n == 0 {
			return true
		}
		if n > 100 {
			n = 100
		}
		for _, kind := range kinds() {
			q := New(kind)
			events := make([]*event.Event, n)
			for i := 0; i < n; i++ {
				tt := raw[i]
				if tt < 0 {
					tt = -tt
				}
				if tt > 1e12 || tt != tt {
					tt = float64(i)
				}
				events[i] = ev(tt, uint32(i%4), uint64(i))
				q.Push(events[i])
			}
			victim := events[int(pick)%n]
			if q.RemoveMatching(victim.AntiCopy()) != victim {
				return false
			}
			rest := make([]*event.Event, 0, n-1)
			for _, e := range events {
				if e != victim {
					rest = append(rest, e)
				}
			}
			sort.Slice(rest, func(i, j int) bool { return rest[i].Stamp.Before(rest[j].Stamp) })
			for _, want := range rest {
				if q.Pop() != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func benchQueue(b *testing.B, kind string) {
	r := rand.New(rand.NewSource(1))
	q := New(kind)
	// Steady-state hold model: keep ~4096 events, push+pop per iteration.
	for i := 0; i < 4096; i++ {
		q.Push(ev(r.Float64()*100, 0, uint64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.Pop()
		e.Stamp.T += r.Float64() * 10
		q.Push(e)
	}
}

func BenchmarkHeapHold(b *testing.B)     { benchQueue(b, "heap") }
func BenchmarkCalendarHold(b *testing.B) { benchQueue(b, "calendar") }
