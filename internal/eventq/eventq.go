// Package eventq provides pending-event-set implementations for the Time
// Warp engine: the data structure holding each worker's unprocessed events
// ordered by receive stamp. Two implementations are provided — a binary
// min-heap (ROSS's default splay tree stand-in; O(log n), robust) and a
// calendar queue (amortized O(1) under stationary loads) — behind a common
// interface, so the engine and the ablation benchmarks can swap them.
package eventq

import (
	"sort"

	"repro/internal/event"
	"repro/internal/vtime"
)

// Queue is a pending event set ordered by event stamp.
type Queue interface {
	// Push inserts an event.
	Push(*event.Event)
	// Pop removes and returns the minimum-stamp event, or nil if empty.
	Pop() *event.Event
	// Peek returns the minimum-stamp event without removing it, or nil.
	Peek() *event.Event
	// Len returns the number of queued events.
	Len() int
	// RemoveMatching removes the first event matching (annihilating) anti
	// and returns it, or nil if no match is queued. Used for anti-message
	// annihilation against unprocessed positives (and vice versa).
	RemoveMatching(anti *event.Event) *event.Event
	// RemoveFor removes every event destined to lp and returns them in
	// stamp order. Used when an LP migrates: its pending events travel
	// with it.
	RemoveFor(lp event.LPID) []*event.Event
}

// New returns a queue of the named kind ("heap" or "calendar").
func New(kind string) Queue {
	switch kind {
	case "", "heap":
		return NewHeap()
	case "calendar":
		return NewCalendar()
	default:
		panic("eventq: unknown queue kind " + kind)
	}
}

// Heap is a binary min-heap pending event set.
type Heap struct {
	ev []*event.Event
}

// NewHeap returns an empty heap queue.
func NewHeap() *Heap { return &Heap{} }

// Len returns the number of queued events.
func (h *Heap) Len() int { return len(h.ev) }

func (h *Heap) less(i, j int) bool { return h.ev[i].Stamp.Before(h.ev[j].Stamp) }

// Push inserts e.
func (h *Heap) Push(e *event.Event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// Peek returns the minimum event or nil.
func (h *Heap) Peek() *event.Event {
	if len(h.ev) == 0 {
		return nil
	}
	return h.ev[0]
}

// Pop removes and returns the minimum event or nil.
func (h *Heap) Pop() *event.Event {
	if len(h.ev) == 0 {
		return nil
	}
	return h.removeAt(0)
}

func (h *Heap) removeAt(i int) *event.Event {
	removed := h.ev[i]
	n := len(h.ev) - 1
	h.ev[i] = h.ev[n]
	h.ev[n] = nil
	h.ev = h.ev[:n]
	if i < n {
		h.fixDown(i)
		h.fixUp(i)
	}
	return removed
}

func (h *Heap) fixUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *Heap) fixDown(i int) {
	n := len(h.ev)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(l, min) {
			min = l
		}
		if r < n && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h.ev[i], h.ev[min] = h.ev[min], h.ev[i]
		i = min
	}
}

// RemoveMatching removes and returns the first queued event annihilating
// anti (same MatchID and Src, opposite sign), or nil.
func (h *Heap) RemoveMatching(anti *event.Event) *event.Event {
	for i, e := range h.ev {
		if e.Matches(anti) && e.Anti != anti.Anti {
			return h.removeAt(i)
		}
	}
	return nil
}

// RemoveFor removes every event destined to lp, returned in stamp order.
func (h *Heap) RemoveFor(lp event.LPID) []*event.Event {
	var taken []*event.Event
	keep := h.ev[:0]
	for _, e := range h.ev {
		if e.Dst == lp {
			taken = append(taken, e)
		} else {
			keep = append(keep, e)
		}
	}
	if len(taken) == 0 {
		return nil
	}
	for i := len(keep); i < len(h.ev); i++ {
		h.ev[i] = nil
	}
	h.ev = keep
	// Re-heapify the survivors bottom-up.
	for i := len(h.ev)/2 - 1; i >= 0; i-- {
		h.fixDown(i)
	}
	sortByStamp(taken)
	return taken
}

// sortByStamp orders events by the total stamp order.
func sortByStamp(evs []*event.Event) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].Stamp.Before(evs[j].Stamp) })
}

// MinStamp returns the stamp of the minimum event, or vtime.InfStamp if
// the queue is empty. (Convenience for GVT local-minimum computation.)
func MinStamp(q Queue) vtime.Stamp {
	if e := q.Peek(); e != nil {
		return e.Stamp
	}
	return vtime.InfStamp
}
