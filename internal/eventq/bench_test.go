package eventq

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/vtime"
)

// Hot-path microbenchmarks for the pending event set. The churn pattern
// mirrors the engine's steady state: the queue holds ~holdSize events
// and each "processed" event schedules a successor at a later stamp (the
// classic hold model). The pooled variants recycle popped events through
// an event.Pool the way the engine recycles at annihilation and fossil
// collection; the alloc variants allocate a fresh Event per push, the
// pre-pool behaviour. The delta is the allocs/op the pool removes.

const holdSize = 512

func seedQueue(q Queue, rng *rand.Rand, pool *event.Pool) {
	for i := 0; i < holdSize; i++ {
		e := &event.Event{}
		if pool != nil {
			e = pool.Get()
		}
		e.Stamp = vtime.Stamp{T: rng.Float64() * 100, Src: uint32(i), Seq: uint64(i)}
		e.Dst = event.LPID(i)
		q.Push(e)
	}
}

func benchChurn(b *testing.B, kind string, pool *event.Pool) {
	q := New(kind)
	rng := rand.New(rand.NewSource(1))
	seedQueue(q, rng, pool)
	seq := uint64(holdSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.Pop()
		next := e.Stamp.T + rng.Float64()*10
		if pool != nil {
			pool.Put(e)
			e = pool.Get()
		} else {
			e = &event.Event{}
		}
		seq++
		e.Stamp = vtime.Stamp{T: next, Src: uint32(i % holdSize), Seq: seq}
		e.Dst = event.LPID(i % holdSize)
		q.Push(e)
	}
	b.StopTimer()
	reportEventsPerSec(b)
}

func reportEventsPerSec(b *testing.B) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "events/s")
	}
}

func BenchmarkHeapChurn(b *testing.B) {
	b.Run("alloc", func(b *testing.B) { benchChurn(b, "heap", nil) })
	b.Run("pooled", func(b *testing.B) { benchChurn(b, "heap", event.NewPool(false)) })
}

func BenchmarkCalendarChurn(b *testing.B) {
	b.Run("alloc", func(b *testing.B) { benchChurn(b, "calendar", nil) })
	b.Run("pooled", func(b *testing.B) { benchChurn(b, "calendar", event.NewPool(false)) })
}

// BenchmarkRollbackStorm measures the rollback hot path in isolation:
// each iteration "sends" a batch of events into the queue, then rolls
// them back — producing one anti-message per sent event and
// annihilating it against the queue. Pre-PR this allocated a fresh
// Event per send AND per anti-copy (event.AntiCopy); the pooled variant
// recycles both through event.Pool via AntiCopyInto, which is what the
// engine's rollback path does.
func BenchmarkRollbackStorm(b *testing.B) {
	const batch = 64
	bench := func(b *testing.B, pool *event.Pool) {
		q := NewHeap()
		antis := make([]*event.Event, 0, batch)
		var seq uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Send phase: enqueue a batch of positives.
			for k := 0; k < batch; k++ {
				var e *event.Event
				if pool != nil {
					e = pool.Get()
				} else {
					e = &event.Event{}
				}
				seq++
				e.Stamp = vtime.Stamp{T: float64(seq), Src: uint32(k), Seq: seq}
				e.Src = event.LPID(k)
				e.MatchID = seq
				q.Push(e)
				// Roll back: emit the cancelling anti-message.
				if pool != nil {
					antis = append(antis, e.AntiCopyInto(pool.Get()))
				} else {
					antis = append(antis, e.AntiCopy())
				}
			}
			// Annihilation phase: each anti cancels its positive.
			for _, a := range antis {
				hit := q.RemoveMatching(a)
				if hit == nil {
					b.Fatal("anti found no match")
				}
				if pool != nil {
					pool.Put(hit)
					pool.Put(a)
				}
			}
			antis = antis[:0]
		}
		b.StopTimer()
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(b.N)*batch/s, "events/s")
		}
	}
	b.Run("alloc", func(b *testing.B) { bench(b, nil) })
	b.Run("pooled", func(b *testing.B) { bench(b, event.NewPool(false)) })
}

// BenchmarkRemoveMatching measures annihilation probes against a
// populated queue — the anti-message hot path during rollback storms.
func BenchmarkRemoveMatching(b *testing.B) {
	for _, kind := range []string{"heap", "calendar"} {
		b.Run(kind, func(b *testing.B) {
			pool := event.NewPool(false)
			q := New(kind)
			rng := rand.New(rand.NewSource(1))
			seedQueue(q, rng, pool)
			// Every queued event gets a MatchID so probes can hit; the
			// probe anti must carry the target's MatchID, Src and stamp
			// (the calendar buckets by receive time).
			var matchSeq uint64
			byID := make(map[uint64]*event.Event, holdSize)
			for e := q.Pop(); e != nil; e = q.Pop() {
				matchSeq++
				e.MatchID = matchSeq
				byID[matchSeq] = e
			}
			for _, e := range byID {
				q.Push(e)
			}
			anti := &event.Event{Anti: true}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				target := byID[uint64(i%holdSize)+1]
				anti.MatchID = target.MatchID
				anti.Src = target.Src
				anti.Stamp = target.Stamp
				hit := q.RemoveMatching(anti)
				if hit == nil {
					b.Fatalf("MatchID %d not found", target.MatchID)
				}
				q.Push(hit)
			}
			b.StopTimer()
			reportEventsPerSec(b)
		})
	}
}
