package eventq

import (
	"sort"

	"repro/internal/event"
)

// Calendar is a calendar-queue pending event set (Brown 1988): a ring of
// time buckets, each one "day" wide, sorted lazily within a bucket. Under
// stationary event-time distributions enqueue/dequeue are amortized O(1).
// It resizes (doubling/halving the bucket count and rescaling the day
// width) when the population drifts outside the configured band.
type Calendar struct {
	buckets   [][]*event.Event
	width     float64 // virtual-time width of one bucket
	bucketIdx int     // current dequeue bucket
	yearStart float64 // start time of the current year's bucketIdx
	n         int
	lastPrio  float64 // monotone floor for dequeues (stamps can repeat)
}

const (
	calInitBuckets = 8
	calMinWidth    = 1e-9
)

// NewCalendar returns an empty calendar queue.
func NewCalendar() *Calendar {
	c := &Calendar{}
	c.initialize(calInitBuckets, 1.0, 0)
	return c
}

func (c *Calendar) initialize(nbuckets int, width, start float64) {
	c.buckets = make([][]*event.Event, nbuckets)
	c.width = width
	c.bucketIdx = int(start/width) % nbuckets
	if c.bucketIdx < 0 {
		c.bucketIdx = 0
	}
	c.yearStart = float64(int(start/width)) * width
	c.lastPrio = start
}

// Len returns the number of queued events.
func (c *Calendar) Len() int { return c.n }

func (c *Calendar) bucketFor(t float64) int {
	i := int(t / c.width)
	i %= len(c.buckets)
	if i < 0 {
		i += len(c.buckets)
	}
	return i
}

// Push inserts e.
func (c *Calendar) Push(e *event.Event) {
	t := e.Stamp.T
	if t < c.lastPrio {
		// Event in the "past" relative to the dequeue cursor (a straggler
		// being re-enqueued): rewind the cursor so dequeues see it.
		c.lastPrio = t
		c.bucketIdx = c.bucketFor(t)
		c.yearStart = float64(int(t/c.width)) * c.width
	}
	i := c.bucketFor(t)
	c.buckets[i] = append(c.buckets[i], e)
	c.n++
	if c.n > 2*len(c.buckets) && len(c.buckets) < 1<<20 {
		c.resize(2 * len(c.buckets))
	}
}

// Peek returns the minimum event without removing it, or nil.
func (c *Calendar) Peek() *event.Event {
	if c.n == 0 {
		return nil
	}
	i, pos := c.findMin()
	return c.buckets[i][pos]
}

// Pop removes and returns the minimum event, or nil.
func (c *Calendar) Pop() *event.Event {
	if c.n == 0 {
		return nil
	}
	i, pos := c.findMin()
	b := c.buckets[i]
	e := b[pos]
	b[pos] = b[len(b)-1]
	b[len(b)-1] = nil
	c.buckets[i] = b[:len(b)-1]
	c.n--
	c.lastPrio = e.Stamp.T
	// Advance the dequeue cursor to the popped event's year so subsequent
	// scans start near the action instead of at a stale year.
	c.bucketIdx = c.bucketFor(e.Stamp.T)
	c.yearStart = float64(int(e.Stamp.T/c.width)) * c.width
	if c.n > calInitBuckets && c.n < len(c.buckets)/2 {
		c.resize(len(c.buckets) / 2)
	}
	return e
}

// findMin locates the bucket and position of the minimum event. It scans
// the calendar year starting at the dequeue cursor; if the year is empty it
// falls back to a direct scan (rare, only when events are far apart).
func (c *Calendar) findMin() (bucket, pos int) {
	nb := len(c.buckets)
	idx := c.bucketIdx
	year := c.yearStart
	for scanned := 0; scanned < nb; scanned++ {
		i := (idx + scanned) % nb
		limit := year + float64(scanned+1)*c.width
		if p, ok := minInBucketBelow(c.buckets[i], limit); ok {
			return i, p
		}
	}
	// Direct search across all buckets.
	best, bestPos := -1, -1
	for i, b := range c.buckets {
		for p, e := range b {
			if best == -1 || e.Stamp.Before(c.buckets[best][bestPos].Stamp) {
				best, bestPos = i, p
			}
		}
	}
	return best, bestPos
}

// minInBucketBelow returns the index of the minimum-stamp event in b whose
// time is < limit, if any.
func minInBucketBelow(b []*event.Event, limit float64) (int, bool) {
	best := -1
	for i, e := range b {
		if e.Stamp.T >= limit {
			continue
		}
		if best == -1 || e.Stamp.Before(b[best].Stamp) {
			best = i
		}
	}
	return best, best != -1
}

// RemoveMatching removes the first event annihilating anti, or nil.
func (c *Calendar) RemoveMatching(anti *event.Event) *event.Event {
	i := c.bucketFor(anti.Stamp.T)
	b := c.buckets[i]
	for p, e := range b {
		if e.Matches(anti) && e.Anti != anti.Anti {
			b[p] = b[len(b)-1]
			b[len(b)-1] = nil
			c.buckets[i] = b[:len(b)-1]
			c.n--
			return e
		}
	}
	return nil
}

// RemoveFor removes every event destined to lp, returned in stamp order.
// Unlike RemoveMatching this must scan the whole calendar: a migrating
// LP's pending events are spread across many buckets.
func (c *Calendar) RemoveFor(lp event.LPID) []*event.Event {
	var taken []*event.Event
	for i, b := range c.buckets {
		keep := b[:0]
		for _, e := range b {
			if e.Dst == lp {
				taken = append(taken, e)
			} else {
				keep = append(keep, e)
			}
		}
		for p := len(keep); p < len(b); p++ {
			b[p] = nil
		}
		c.buckets[i] = keep
	}
	c.n -= len(taken)
	sortByStamp(taken)
	return taken
}

// resize rebuilds the calendar with nbuckets buckets and a day width set
// from a sample of inter-event gaps.
func (c *Calendar) resize(nbuckets int) {
	all := make([]*event.Event, 0, c.n)
	for _, b := range c.buckets {
		all = append(all, b...)
	}
	width := c.sampleWidth(all)
	start := c.lastPrio
	c.initialize(nbuckets, width, start)
	c.n = 0
	for _, e := range all {
		c.Push(e)
	}
}

// sampleWidth estimates a bucket width: ~3x the average gap between
// consecutive event times in a sample, the classic calendar-queue rule.
func (c *Calendar) sampleWidth(all []*event.Event) float64 {
	if len(all) < 2 {
		return 1.0
	}
	sample := make([]float64, 0, 32)
	stride := len(all)/32 + 1
	for i := 0; i < len(all); i += stride {
		sample = append(sample, all[i].Stamp.T)
	}
	sort.Float64s(sample)
	gaps := 0.0
	count := 0
	for i := 1; i < len(sample); i++ {
		gaps += sample[i] - sample[i-1]
		count++
	}
	if count == 0 || gaps <= 0 {
		return 1.0
	}
	w := 3.0 * gaps / float64(count)
	if w < calMinWidth {
		w = calMinWidth
	}
	return w
}
