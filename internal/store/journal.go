package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Journal is the warm-restart job log: one NDJSON line per lifecycle
// edge ("begin" when a job is admitted, "end" when it settles), each
// append fsynced. After a crash, begins without a matching end are the
// jobs that were queued or running — OpenJournal surfaces them for
// re-submission. Because results are content-addressed, replay is
// idempotent: a job that actually completed (its result reached the
// store before the crash, even if the "end" record didn't) re-enters as
// a cache hit with zero re-execution; only genuinely interrupted work
// re-runs.
//
// The journal is per-daemon state: daemons sharing a store directory
// must use distinct journal paths (OpenJournal compacts the file at
// startup, which would drop a sibling's live appends).
type Journal struct {
	path string
	fs   FS
	log  *slog.Logger

	mu sync.Mutex
	f  File

	pending   []Pending
	retirable map[string]bool // replayed hashes with an un-ended begin on disk
	appends   atomic.Int64
	errs      atomic.Int64
}

// journalRecord is one NDJSON line.
type journalRecord struct {
	Op   string          `json:"op"` // "begin" | "end"
	Hash string          `json:"hash"`
	Spec json.RawMessage `json:"spec,omitempty"`  // begin only
	End  string          `json:"state,omitempty"` // end only: terminal state
}

// Pending is a journaled job that never reached a terminal state: the
// warm-restart work list.
type Pending struct {
	Hash string
	Spec json.RawMessage
}

// JournalStats is a point-in-time snapshot of journal accounting.
type JournalStats struct {
	Path string `json:"path"`
	// Recovered is how many pending jobs the startup replay found.
	Recovered int   `json:"recovered"`
	Appends   int64 `json:"appends"`
	Errors    int64 `json:"errors"`
}

// OpenJournal opens (creating if needed) the journal at path, replays
// it, compacts it down to the still-pending begins, and reopens it for
// appending. Call Pending for the replayed work list.
func OpenJournal(path string, fsys FS, logger *slog.Logger) (*Journal, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	if logger == nil {
		logger = obs.NopLogger()
	}
	j := &Journal{path: path, fs: fsys, log: logger}
	if err := j.fs.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	pending, err := j.replay()
	if err != nil {
		return nil, err
	}
	j.pending = pending
	j.retirable = make(map[string]bool, len(pending))
	for _, p := range pending {
		j.retirable[p.Hash] = true
	}
	if err := j.compact(pending); err != nil {
		return nil, err
	}
	f, err := j.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	j.f = f
	if len(pending) > 0 {
		j.log.Info("journal replay found interrupted jobs", "path", path, "pending", len(pending))
	}
	return j, nil
}

// replay reads the journal and returns begins without a matching end,
// in original admission order. Unparseable lines — typically one torn
// tail line from a crash mid-append — are skipped: losing one record
// costs at most one redundant (and cache-absorbed) re-submission.
func (j *Journal) replay() ([]Pending, error) {
	data, err := j.fs.ReadFile(j.path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	open := make(map[string]int) // hash → index into order; -1 = ended
	var order []Pending
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			j.log.Warn("journal: skipping unparseable line", "error", err.Error())
			continue
		}
		switch rec.Op {
		case "begin":
			if i, ok := open[rec.Hash]; !ok || i == -1 {
				open[rec.Hash] = len(order)
				order = append(order, Pending{Hash: rec.Hash, Spec: rec.Spec})
			}
		case "end":
			if i, ok := open[rec.Hash]; ok && i >= 0 {
				order[i].Hash = "" // tombstone, filtered below
				open[rec.Hash] = -1
			}
		}
	}
	out := order[:0]
	for _, p := range order {
		if p.Hash != "" {
			out = append(out, p)
		}
	}
	return out, nil
}

// compact rewrites the journal to hold only the pending begins, via the
// same temp + fsync + rename publish protocol as store entries.
func (j *Journal) compact(pending []Pending) error {
	tmp, err := j.fs.CreateTemp(filepath.Dir(j.path), "journal-*")
	if err != nil {
		return fmt.Errorf("store: journal compact: %w", err)
	}
	name := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		j.fs.Remove(name)
		return fmt.Errorf("store: journal compact: %w", err)
	}
	for _, p := range pending {
		line, err := json.Marshal(journalRecord{Op: "begin", Hash: p.Hash, Spec: p.Spec})
		if err != nil {
			return fail(err)
		}
		if _, err := tmp.Write(append(line, '\n')); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		j.fs.Remove(name)
		return fmt.Errorf("store: journal compact: %w", err)
	}
	if err := j.fs.Rename(name, j.path); err != nil {
		j.fs.Remove(name)
		return fmt.Errorf("store: journal compact: %w", err)
	}
	return nil
}

// Pending returns the jobs the startup replay found interrupted.
func (j *Journal) Pending() []Pending {
	out := make([]Pending, len(j.pending))
	copy(out, j.pending)
	return out
}

// Begin journals a job admission. spec must be its canonical JSON.
func (j *Journal) Begin(hash string, spec json.RawMessage) error {
	return j.append(journalRecord{Op: "begin", Hash: hash, Spec: spec})
}

// End journals a job reaching terminal state.
func (j *Journal) End(hash, state string) error {
	return j.append(journalRecord{Op: "end", Hash: hash, End: state})
}

// Retire ends a replayed-pending job that settled without re-executing —
// a warm-restart submission absorbed by the cache or store. Without it
// the job's lone begin would replay on every subsequent restart. Hashes
// the replay did not find pending are a no-op, so ordinary cache hits
// stay journal-free.
func (j *Journal) Retire(hash string) error {
	j.mu.Lock()
	ok := j.retirable[hash]
	delete(j.retirable, hash)
	j.mu.Unlock()
	if !ok {
		return nil
	}
	return j.End(hash, "done")
}

// append writes one fsynced NDJSON line. Failures are counted and
// returned but must not fail the job they describe — a lost journal
// line costs at most one redundant restart re-submission.
func (j *Journal) append(rec journalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		j.errs.Add(1)
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		j.errs.Add(1)
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.errs.Add(1)
		return err
	}
	j.appends.Add(1)
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// Stats returns a snapshot of journal accounting.
func (j *Journal) Stats() JournalStats {
	return JournalStats{
		Path:      j.path,
		Recovered: len(j.pending),
		Appends:   j.appends.Load(),
		Errors:    j.errs.Load(),
	}
}
