package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// testHash fabricates a valid content address from an index.
func testHash(i int) string { return fmt.Sprintf("%064x", i) }

func openTestStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, Options{Dir: dir})
	payload := []byte(`{"report":"canonical bytes"}`)
	h := testHash(1)

	if _, ok := s.Get(h); ok {
		t.Fatal("hit before any put")
	}
	if err := s.Put(h, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(h)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("get = (%q, %v), want stored payload", got, ok)
	}

	// A second store on the same directory — a restarted daemon — sees
	// the entry: that is the whole point of the store.
	s2 := openTestStore(t, Options{Dir: dir})
	got, ok = s2.Get(h)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("entry did not survive a reopen")
	}
	st := s2.Stats()
	if st.Entries != 1 || st.Bytes != int64(len(payload)) {
		t.Fatalf("reopen scan: %+v", st)
	}

	st = s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 put", st)
	}
}

func TestInvalidHashRejected(t *testing.T) {
	s := openTestStore(t, Options{})
	for _, h := range []string{"", "abc", strings.Repeat("Z", 64), "../../../../etc/passwd" + strings.Repeat("a", 41)} {
		if _, ok := s.Get(h); ok {
			t.Fatalf("Get(%q) hit", h)
		}
		if err := s.Put(h, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted", h)
		}
	}
}

// TestCorruptEntryQuarantined: a flipped payload bit must read as a
// miss, move the entry to quarantine, and leave the slot writable
// again.
func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, Options{Dir: dir})
	h := testHash(2)
	payload := []byte("precious deterministic result")
	if err := s.Put(h, payload); err != nil {
		t.Fatal(err)
	}

	path := s.objectPath(h)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(h); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry still in place")
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", h)); err != nil {
		t.Fatalf("quarantine copy missing: %v", err)
	}

	// The slot is a plain miss now, and rewritable.
	if _, ok := s.Get(h); ok {
		t.Fatal("hit after quarantine")
	}
	if err := s.Put(h, payload); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(h); !ok || !bytes.Equal(got, payload) {
		t.Fatal("rewrite after quarantine failed")
	}
}

// TestTruncatedEntryQuarantined: a header shorter than the frame (the
// shape a torn write would have without the rename protocol) is corrupt.
func TestTruncatedEntryQuarantined(t *testing.T) {
	s := openTestStore(t, Options{})
	h := testHash(3)
	if err := s.Put(h, []byte("full entry")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.objectPath(h), []byte("simdstore"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(h); ok {
		t.Fatal("truncated entry served as a hit")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
}

func TestEvictionUnderBudget(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 100)
	s := openTestStore(t, Options{MaxBytes: 250})
	for i := 0; i < 4; i++ {
		if err := s.Put(testHash(10+i), payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so eviction order (oldest first) is well defined
		// on filesystems with coarse timestamps.
		time.Sleep(10 * time.Millisecond)
	}
	st := s.Stats()
	if st.Bytes > 250 {
		t.Fatalf("bytes %d over the 250 budget", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	// The newest entry must have survived.
	if _, ok := s.Get(testHash(13)); !ok {
		t.Fatal("newest entry was evicted")
	}
	// The oldest must be gone.
	if _, ok := s.Get(testHash(10)); ok {
		t.Fatal("oldest entry survived a budget of 2.5 entries")
	}
}

func TestOversizedPayloadNotStored(t *testing.T) {
	s := openTestStore(t, Options{MaxBytes: 10})
	if err := s.Put(testHash(4), bytes.Repeat([]byte("y"), 100)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testHash(4)); ok {
		t.Fatal("payload larger than the whole budget was stored")
	}
}

// TestDegradeOnWriteFailures: ENOSPC-style write failures past the
// threshold trip degraded mode; operations are then skipped without
// touching the disk; a probe succeeds once the fault clears and the
// store recovers.
func TestDegradeOnWriteFailures(t *testing.T) {
	ffs := newFaultFS()
	s := openTestStore(t, Options{FS: ffs, FailThreshold: 2, ProbeEvery: 2})
	payload := []byte("p")

	ffs.setFail(func(op, path string) error {
		if op == "write" {
			return syscall.ENOSPC
		}
		return nil
	})
	for i := 0; i < 2; i++ {
		if err := s.Put(testHash(20+i), payload); err == nil {
			t.Fatal("Put succeeded under an injected ENOSPC")
		}
	}
	if !s.Degraded() {
		t.Fatal("store not degraded after FailThreshold write failures")
	}
	if st := s.Stats(); st.DegradedEvents != 1 || st.PutErrors != 2 {
		t.Fatalf("stats %+v", st)
	}

	// Degraded: the next (odd) operation is skipped entirely.
	before := ffs.opCount()
	if err := s.Put(testHash(30), payload); err != nil {
		t.Fatalf("skipped put returned %v", err)
	}
	if ffs.opCount() != before {
		t.Fatal("degraded put touched the filesystem outside a probe turn")
	}
	if st := s.Stats(); st.Skipped == 0 {
		t.Fatal("skip not counted")
	}

	// Fault clears; the next operation is a probe turn (ProbeEvery=2)
	// and recovers the store.
	ffs.setFail(nil)
	if err := s.Put(testHash(31), payload); err != nil {
		t.Fatalf("probe put failed: %v", err)
	}
	if s.Degraded() {
		t.Fatal("store still degraded after a successful probe")
	}
	if _, ok := s.Get(testHash(31)); !ok {
		t.Fatal("probe-written entry unreadable")
	}
}

// TestDegradeOnReadFailures: infrastructure errors on the read side
// (EIO, permission loss) count toward degradation too — but a plain
// missing entry never does.
func TestDegradeOnReadFailures(t *testing.T) {
	ffs := newFaultFS()
	s := openTestStore(t, Options{FS: ffs, FailThreshold: 3, ProbeEvery: 2})

	// Healthy misses don't degrade, ever.
	for i := 0; i < 10; i++ {
		s.Get(testHash(40 + i))
	}
	if s.Degraded() {
		t.Fatal("plain misses tripped degradation")
	}

	ffs.setFail(func(op, path string) error {
		if op == "readfile" && strings.Contains(path, "objects") {
			return syscall.EIO
		}
		return nil
	})
	for i := 0; i < 3; i++ {
		s.Get(testHash(50 + i))
	}
	if !s.Degraded() {
		t.Fatal("EIO reads did not degrade the store")
	}

	ffs.setFail(nil)
	// Next get is skipped (probe tick 1), the one after probes and recovers.
	s.Get(testHash(60))
	s.Get(testHash(61))
	if s.Degraded() {
		t.Fatal("store did not recover after reads healed")
	}
}

// TestCorruptionBurstDegrades: a run of checksum failures is a failing
// disk and must degrade like any infrastructure fault.
func TestCorruptionBurstDegrades(t *testing.T) {
	s := openTestStore(t, Options{FailThreshold: 3})
	for i := 0; i < 3; i++ {
		if err := s.Put(testHash(70+i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		h := testHash(70 + i)
		if err := os.WriteFile(s.objectPath(h), []byte(entryMagic+strings.Repeat("0", 64)+"\nnot the payload"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		s.Get(testHash(70 + i))
	}
	if !s.Degraded() {
		t.Fatal("corruption burst did not degrade the store")
	}
	if st := s.Stats(); st.Quarantined != 3 {
		t.Fatalf("quarantined = %d, want 3", st.Quarantined)
	}
}

// TestSharedDirTwoStores: two Store instances on one directory — the
// two-daemons-one-host deployment — put and get concurrently under
// -race, exercising the flock-guarded publish and eviction paths.
func TestSharedDirTwoStores(t *testing.T) {
	dir := t.TempDir()
	a := openTestStore(t, Options{Dir: dir})
	b := openTestStore(t, Options{Dir: dir})

	const n = 32
	payload := func(i int) []byte { return []byte(fmt.Sprintf("result-%03d", i)) }
	var wg sync.WaitGroup
	for _, s := range []*Store{a, b} {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				// Both daemons race to publish the same content — the
				// concurrent-downloader shape. Same hash, same bytes.
				if err := s.Put(testHash(100+i), payload(i)); err != nil {
					t.Errorf("put %d: %v", i, err)
				}
				s.Get(testHash(100 + i%max(i, 1)))
			}
		}()
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		for _, s := range []*Store{a, b} {
			got, ok := s.Get(testHash(100 + i))
			if !ok || !bytes.Equal(got, payload(i)) {
				t.Fatalf("entry %d: (%q, %v)", i, got, ok)
			}
		}
	}
	if a.Degraded() || b.Degraded() {
		t.Fatal("healthy shared-dir operation degraded a store")
	}
}

// TestPutRepublishDoesNotDoubleCount: republishing an existing hash
// (journal replay, or a twin daemon racing on the same content)
// replaces the object file in place — entry and byte accounting must
// track the disk, not the number of Put calls.
func TestPutRepublishDoesNotDoubleCount(t *testing.T) {
	s := openTestStore(t, Options{Dir: t.TempDir()})
	payload := []byte("same bytes every time")
	for i := 0; i < 5; i++ {
		if err := s.Put(testHash(1), payload); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Puts != 5 {
		t.Fatalf("puts = %d, want 5", st.Puts)
	}
	if st.Entries != 1 || st.Bytes != int64(len(payload)) {
		t.Fatalf("entries=%d bytes=%d after republish, want 1/%d", st.Entries, st.Bytes, len(payload))
	}

	// Replacing with a different-sized payload accounts for the delta.
	bigger := append(append([]byte(nil), payload...), []byte("-grown")...)
	if err := s.Put(testHash(1), bigger); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Entries != 1 || st.Bytes != int64(len(bigger)) {
		t.Fatalf("entries=%d bytes=%d after resize, want 1/%d", st.Entries, st.Bytes, len(bigger))
	}
}

// TestSharedDirNeverDoubleCountsBytes: two daemons hammer the same
// content addresses in one directory. Only the publisher that actually
// creates an entry may count it, so the combined accounting equals the
// on-disk truth exactly — and no single daemon's view ever exceeds it.
func TestSharedDirNeverDoubleCountsBytes(t *testing.T) {
	dir := t.TempDir()
	a := openTestStore(t, Options{Dir: dir})
	b := openTestStore(t, Options{Dir: dir})

	const n, rounds = 16, 4
	payload := func(i int) []byte { return []byte(fmt.Sprintf("shared-result-%03d", i)) }
	var wg sync.WaitGroup
	for _, s := range []*Store{a, b} {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < n; i++ {
					if err := s.Put(testHash(500+i), payload(i)); err != nil {
						t.Errorf("put %d: %v", i, err)
					}
				}
			}
		}()
	}
	wg.Wait()

	diskEntries, diskBytes := a.scan()
	if diskEntries != n {
		t.Fatalf("disk holds %d entries, want %d", diskEntries, n)
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.Entries+sb.Entries != diskEntries || sa.Bytes+sb.Bytes != diskBytes {
		t.Fatalf("combined accounting entries=%d bytes=%d, disk truth %d/%d (a=%+d/%d b=%d/%d)",
			sa.Entries+sb.Entries, sa.Bytes+sb.Bytes, diskEntries, diskBytes,
			sa.Entries, sa.Bytes, sb.Entries, sb.Bytes)
	}
	for name, st := range map[string]Stats{"a": sa, "b": sb} {
		if st.Entries > diskEntries || st.Bytes > diskBytes {
			t.Fatalf("store %s counted entries=%d bytes=%d, more than disk %d/%d",
				name, st.Entries, st.Bytes, diskEntries, diskBytes)
		}
		if st.Puts != n*rounds {
			t.Fatalf("store %s puts = %d, want %d", name, st.Puts, n*rounds)
		}
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open accepted an empty directory")
	}
}
