package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTestJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestJournalCleanRunLeavesNothingPending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j := openTestJournal(t, path)
	spec := json.RawMessage(`{"model":"phold","seed":1}`)
	if err := j.Begin(testHash(1), spec); err != nil {
		t.Fatal(err)
	}
	if err := j.End(testHash(1), "done"); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := openTestJournal(t, path)
	if p := j2.Pending(); len(p) != 0 {
		t.Fatalf("pending = %v after a clean begin/end", p)
	}
	// Compaction emptied the file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("compacted journal not empty: %q", data)
	}
}

func TestJournalReplaysInterruptedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j := openTestJournal(t, path)
	specA := json.RawMessage(`{"seed":1}`)
	specB := json.RawMessage(`{"seed":2}`)
	if err := j.Begin(testHash(1), specA); err != nil {
		t.Fatal(err)
	}
	if err := j.Begin(testHash(2), specB); err != nil {
		t.Fatal(err)
	}
	if err := j.End(testHash(1), "done"); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, hash 2 never ended.

	j2 := openTestJournal(t, path)
	p := j2.Pending()
	if len(p) != 1 || p[0].Hash != testHash(2) || string(p[0].Spec) != string(specB) {
		t.Fatalf("pending = %+v, want just hash 2", p)
	}
	st := j2.Stats()
	if st.Recovered != 1 {
		t.Fatalf("recovered = %d, want 1", st.Recovered)
	}

	// Compaction preserved the pending begin across a further reopen
	// with no new activity.
	j2.Close()
	j3 := openTestJournal(t, path)
	if p := j3.Pending(); len(p) != 1 || p[0].Hash != testHash(2) {
		t.Fatalf("pending after second reopen = %+v", p)
	}
}

// TestJournalTornTailLine: a crash mid-append leaves a partial final
// line; replay must skip it and keep every complete record.
func TestJournalTornTailLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j := openTestJournal(t, path)
	if err := j.Begin(testHash(1), json.RawMessage(`{"seed":1}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"end","ha`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := openTestJournal(t, path)
	if p := j2.Pending(); len(p) != 1 || p[0].Hash != testHash(1) {
		t.Fatalf("pending = %+v, want the intact begin", p)
	}
}

func TestJournalEndWithoutBeginIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j := openTestJournal(t, path)
	if err := j.End(testHash(9), "done"); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2 := openTestJournal(t, path)
	if p := j2.Pending(); len(p) != 0 {
		t.Fatalf("pending = %+v from a stray end", p)
	}
}

func TestJournalReBeginAfterEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j := openTestJournal(t, path)
	h := testHash(5)
	if err := j.Begin(h, json.RawMessage(`{"seed":5}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.End(h, "failed"); err != nil {
		t.Fatal(err)
	}
	if err := j.Begin(h, json.RawMessage(`{"seed":5}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2 := openTestJournal(t, path)
	if p := j2.Pending(); len(p) != 1 || p[0].Hash != h {
		t.Fatalf("pending = %+v, want the re-begun job", p)
	}
}

func TestJournalAppendCountsErrors(t *testing.T) {
	ffs := newFaultFS()
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j, err := OpenJournal(path, ffs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	ffs.setFail(func(op, p string) error {
		if op == "write" && strings.Contains(p, "journal.ndjson") {
			return os.ErrPermission
		}
		return nil
	})
	if err := j.Begin(testHash(1), json.RawMessage(`{}`)); err == nil {
		t.Fatal("append under permission loss succeeded")
	}
	if st := j.Stats(); st.Errors != 1 {
		t.Fatalf("errors = %d, want 1", st.Errors)
	}
}
