package store

import (
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem seam the store runs on. Production uses OSFS;
// tests inject failpoints (ENOSPC, permission loss, corruption bursts)
// by wrapping it, which is how the degradation paths are exercised
// without real disk faults.
//
// The surface is deliberately the handful of calls the store and the
// journal actually make, so a fault wrapper can reason about every
// operation by name.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// CreateTemp creates a new unique file in dir for the write-then-
	// rename publish protocol. The file must live on the same filesystem
	// as the final path so Rename stays atomic.
	CreateTemp(dir, pattern string) (File, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	// Lock takes an exclusive cross-process advisory lock on f (flock on
	// Unix); Unlock releases it. Lock blocks until the lock is granted.
	Lock(f File) error
	Unlock(f File) error
}

// File is the open-file surface the store needs: ordinary reads and
// writes plus Sync for the publish protocol's fsync and Fd for advisory
// locking.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Name() string
	Fd() uintptr
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (OSFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error                   { return os.Remove(name) }
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (OSFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }
func (OSFS) Lock(f File) error                          { return flock(f.Fd()) }
func (OSFS) Unlock(f File) error                        { return funlock(f.Fd()) }
