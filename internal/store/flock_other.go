//go:build !unix

package store

// Non-Unix hosts get no cross-process advisory locking: a single daemon
// per store directory remains safe (publishes are atomic renames), and
// multi-daemon sharing is a documented Unix-only deployment.
func flock(fd uintptr) error   { return nil }
func funlock(fd uintptr) error { return nil }
