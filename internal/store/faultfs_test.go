package store

import (
	"io/fs"
	"os"
	"sync"
)

// faultFS wraps the real filesystem with a failpoint: every operation
// asks fail(op, path) first and returns its error when non-nil. It is
// how the tests produce ENOSPC, permission loss and I/O errors on
// demand, deterministically.
type faultFS struct {
	real FS

	mu   sync.Mutex
	fail func(op, path string) error
	ops  []string // every operation attempted, for assertions
}

func newFaultFS() *faultFS { return &faultFS{real: OSFS{}} }

// setFail installs (or clears, with nil) the failpoint.
func (f *faultFS) setFail(fn func(op, path string) error) {
	f.mu.Lock()
	f.fail = fn
	f.mu.Unlock()
}

func (f *faultFS) check(op, path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops = append(f.ops, op)
	if f.fail == nil {
		return nil
	}
	return f.fail(op, path)
}

func (f *faultFS) opCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ops)
}

func (f *faultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.check("mkdirall", path); err != nil {
		return err
	}
	return f.real.MkdirAll(path, perm)
}

func (f *faultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.check("createtemp", dir); err != nil {
		return nil, err
	}
	file, err := f.real.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.check("openfile", name); err != nil {
		return nil, err
	}
	file, err := f.real.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	if err := f.check("readfile", name); err != nil {
		return nil, err
	}
	return f.real.ReadFile(name)
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if err := f.check("rename", newpath); err != nil {
		return err
	}
	return f.real.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error {
	if err := f.check("remove", name); err != nil {
		return err
	}
	return f.real.Remove(name)
}

func (f *faultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.check("readdir", name); err != nil {
		return nil, err
	}
	return f.real.ReadDir(name)
}

func (f *faultFS) Stat(name string) (fs.FileInfo, error) {
	if err := f.check("stat", name); err != nil {
		return nil, err
	}
	return f.real.Stat(name)
}

func (f *faultFS) Lock(file File) error {
	if err := f.check("lock", file.Name()); err != nil {
		return err
	}
	if ff, ok := file.(*faultFile); ok {
		return f.real.Lock(ff.File)
	}
	return f.real.Lock(file)
}

func (f *faultFS) Unlock(file File) error {
	if ff, ok := file.(*faultFile); ok {
		return f.real.Unlock(ff.File)
	}
	return f.real.Unlock(file)
}

// faultFile intercepts writes and syncs — the calls a filling disk
// fails with ENOSPC.
type faultFile struct {
	File
	fs *faultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.check("write", f.Name()); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.fs.check("sync", f.Name()); err != nil {
		return err
	}
	return f.File.Sync()
}
