//go:build unix

package store

import "syscall"

// flock takes a blocking exclusive advisory lock on fd. Advisory locks
// coordinate the daemons sharing a store directory (publish, eviction,
// quarantine); readers need no lock because entries are published by
// atomic rename and never modified in place.
func flock(fd uintptr) error {
	for {
		err := syscall.Flock(int(fd), syscall.LOCK_EX)
		if err != syscall.EINTR {
			return err
		}
	}
}

func funlock(fd uintptr) error {
	return syscall.Flock(int(fd), syscall.LOCK_UN)
}
