// Package store is the persistence layer under the simd result cache: a
// disk-backed content-addressed store (spec hash → canonical report
// bytes) plus a job journal for warm restarts.
//
// Durability protocol. An entry is published by writing a temp file in
// the store root, fsyncing it, and atomically renaming it into place —
// a reader therefore sees either nothing or a complete entry, never a
// torn write, even across kill -9. Each entry embeds a SHA-256 checksum
// of its payload; a checksum mismatch on read (bit rot, a torn sector
// that survived rename, a hostile edit) quarantines the entry and
// reports a miss, so corruption can only cost a re-execution, never a
// wrong result.
//
// Sharing protocol. Multiple daemons on one host may point at the same
// directory. Mutating maintenance — the rename publishing an entry,
// eviction sweeps, quarantine moves — happens under an exclusive
// advisory flock on <dir>/lock, closing the classic concurrent-
// downloader race (two daemons completing the same spec publish the
// same bytes; the flock serializes the renames and the sweep that might
// otherwise double-delete). Reads take no lock: entries are immutable
// once published.
//
// Degradation protocol. Disk trouble must not fail requests: the store
// counts consecutive infrastructure failures (ENOSPC, permission loss,
// I/O errors, a corruption burst) and past Options.FailThreshold it
// trips into degraded mode, where operations are skipped — the daemon
// keeps serving from its in-memory cache. Every ProbeEvery-th operation
// while degraded is attempted for real; the first success recovers the
// store. The FS seam lets tests inject every one of these faults
// deterministically.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// entryMagic heads every stored entry; bump the version when the format
// changes so old files quarantine instead of misparsing.
const entryMagic = "simdstore v1\n"

// hashLen is the hex length of a SHA-256 content address.
const hashLen = 64

// Options configures Open.
type Options struct {
	// Dir is the store directory, created if absent.
	Dir string
	// MaxBytes bounds the payload bytes kept on disk; oldest entries are
	// evicted past it (<= 0: unbounded).
	MaxBytes int64
	// FailThreshold is how many consecutive infrastructure failures trip
	// degraded mode (default 3).
	FailThreshold int
	// ProbeEvery is how often a degraded store retries the disk: every
	// Nth skipped operation runs for real as a recovery probe (default 8).
	ProbeEvery int
	// FS is the filesystem seam (default: the real OS filesystem).
	FS FS
	// Logger receives store lifecycle logs; nil discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = 8
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// Store is a disk-backed content-addressed result store. All methods
// are safe for concurrent use, and multiple processes may share one
// directory (see the package comment for the locking protocol).
type Store struct {
	opts Options
	fs   FS
	log  *slog.Logger
	lock File // <dir>/lock, held open for flock

	mu          sync.Mutex // guards the failure/probe state below
	consecFails int
	probeTick   int

	degraded atomic.Bool

	hits, misses, puts, putErrors   atomic.Int64
	quarantined, evictions, skipped atomic.Int64
	degradedEvents                  atomic.Int64
	entries, bytes                  atomic.Int64 // this process's view; re-seeded by scans
}

// Stats is a point-in-time snapshot of store accounting. Entries and
// Bytes are this process's view (seeded by a directory scan at Open and
// on every eviction sweep); with multiple daemons sharing the directory
// they are approximate between sweeps.
type Stats struct {
	Dir      string `json:"dir"`
	Entries  int64  `json:"entries"`
	Bytes    int64  `json:"bytes"`
	MaxBytes int64  `json:"max_bytes"`

	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Puts        int64 `json:"puts"`
	PutErrors   int64 `json:"put_errors"`
	Quarantined int64 `json:"quarantined"`
	Evictions   int64 `json:"evictions"`
	// Skipped counts operations bypassed while degraded.
	Skipped int64 `json:"skipped"`

	Degraded bool `json:"degraded"`
	// DegradedEvents counts ok→degraded transitions.
	DegradedEvents int64 `json:"degraded_events"`
}

// Open opens (creating if needed) the store directory. Startup errors
// are returned, not degraded over: a store that cannot even create its
// directory is an operator mistake, unlike a disk that sours later.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("store: empty directory")
	}
	s := &Store{opts: opts, fs: opts.FS, log: opts.Logger}
	for _, d := range []string{opts.Dir, s.objectsDir(), s.quarantineDir()} {
		if err := s.fs.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	lock, err := s.fs.OpenFile(filepath.Join(opts.Dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: lock file: %w", err)
	}
	s.lock = lock
	n, b := s.scan()
	s.entries.Store(n)
	s.bytes.Store(b)
	s.log.Info("store opened", "dir", opts.Dir, "entries", n, "bytes", b,
		"max_bytes", opts.MaxBytes)
	return s, nil
}

// Close releases the lock file handle.
func (s *Store) Close() error {
	if s.lock != nil {
		return s.lock.Close()
	}
	return nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.opts.Dir }

func (s *Store) objectsDir() string    { return filepath.Join(s.opts.Dir, "objects") }
func (s *Store) quarantineDir() string { return filepath.Join(s.opts.Dir, "quarantine") }

// objectPath shards entries by the first two hex digits so no single
// directory grows unbounded.
func (s *Store) objectPath(hash string) string {
	return filepath.Join(s.objectsDir(), hash[:2], hash)
}

// validHash accepts exactly the lowercase-hex SHA-256 form, which also
// forecloses path traversal through a hostile "hash".
func validHash(h string) bool {
	if len(h) != hashLen {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// encode frames a payload with the magic and its checksum.
func encode(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	buf := make([]byte, 0, len(entryMagic)+hashLen+1+len(payload))
	buf = append(buf, entryMagic...)
	buf = append(buf, hex.EncodeToString(sum[:])...)
	buf = append(buf, '\n')
	return append(buf, payload...)
}

// errCorrupt distinguishes checksum/format failures (quarantine the
// entry) from infrastructure failures (count toward degradation).
var errCorrupt = errors.New("store: corrupt entry")

// decode verifies the frame and returns the payload.
func decode(b []byte) ([]byte, error) {
	headerLen := len(entryMagic) + hashLen + 1
	if len(b) < headerLen || string(b[:len(entryMagic)]) != entryMagic || b[headerLen-1] != '\n' {
		return nil, fmt.Errorf("%w: bad header", errCorrupt)
	}
	want := string(b[len(entryMagic) : headerLen-1])
	payload := b[headerLen:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", errCorrupt)
	}
	return payload, nil
}

// Get returns the stored payload for hash. Every failure — absent
// entry, unreadable disk, corrupt frame — is a miss: the caller
// re-executes and the result is still correct, just slower.
func (s *Store) Get(hash string) ([]byte, bool) {
	if !validHash(hash) {
		s.misses.Add(1)
		return nil, false
	}
	if s.degraded.Load() && !s.probeTurn() {
		s.skipped.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	data, err := s.fs.ReadFile(s.objectPath(hash))
	if err != nil {
		s.misses.Add(1)
		if errors.Is(err, fs.ErrNotExist) {
			s.ok() // the disk answered; absence is a healthy miss
			return nil, false
		}
		s.fail("get", err)
		return nil, false
	}
	payload, err := decode(data)
	if err != nil {
		s.quarantine(hash)
		s.misses.Add(1)
		// A corrupt entry is a disk telling lies; a burst of them should
		// trip degradation like any other infrastructure failure.
		s.fail("get", err)
		return nil, false
	}
	s.ok()
	s.hits.Add(1)
	return payload, true
}

// Put durably stores payload under hash (temp file + fsync + atomic
// rename, under the cross-process lock), then enforces the byte budget.
// Errors are returned for logging but the store has already absorbed
// them into its degradation accounting — callers keep serving.
func (s *Store) Put(hash string, payload []byte) error {
	if !validHash(hash) {
		return fmt.Errorf("store: invalid hash %q", hash)
	}
	if s.opts.MaxBytes > 0 && int64(len(payload)) > s.opts.MaxBytes {
		return nil // larger than the whole budget: never storable
	}
	if s.degraded.Load() && !s.probeTurn() {
		s.skipped.Add(1)
		return nil
	}
	oldPayload, replaced, err := s.write(hash, payload)
	if err != nil {
		s.putErrors.Add(1)
		s.fail("put", err)
		return err
	}
	s.ok()
	s.puts.Add(1)
	// Content-addressed entries are immutable in principle, but two
	// daemons sharing a directory (or a journal replay) can republish
	// the same hash. The object file is simply replaced, so account for
	// the delta only — never double-count entries or bytes.
	if replaced {
		s.bytes.Add(int64(len(payload)) - oldPayload)
	} else {
		s.entries.Add(1)
		s.bytes.Add(int64(len(payload)))
	}
	s.evict()
	return nil
}

// write runs the publish protocol for one entry. It reports whether an
// entry for hash already existed (and its old payload size), observed
// under the cross-process lock immediately before the rename, so the
// caller can keep entry/byte accounting replace-aware.
func (s *Store) write(hash string, payload []byte) (oldPayload int64, replaced bool, err error) {
	if err := s.fs.MkdirAll(filepath.Dir(s.objectPath(hash)), 0o755); err != nil {
		return 0, false, err
	}
	tmp, err := s.fs.CreateTemp(s.opts.Dir, "tmp-*")
	if err != nil {
		return 0, false, err
	}
	name := tmp.Name()
	cleanup := func() { tmp.Close(); s.fs.Remove(name) }
	if _, err := tmp.Write(encode(payload)); err != nil {
		cleanup()
		return 0, false, err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return 0, false, err
	}
	if err := tmp.Close(); err != nil {
		s.fs.Remove(name)
		return 0, false, err
	}
	if err := s.fs.Lock(s.lock); err != nil {
		s.fs.Remove(name)
		return 0, false, err
	}
	defer s.fs.Unlock(s.lock)
	if st, statErr := s.fs.Stat(s.objectPath(hash)); statErr == nil {
		replaced = true
		if oldPayload = st.Size() - int64(len(entryMagic)+hashLen+1); oldPayload < 0 {
			oldPayload = 0
		}
	}
	if err := s.fs.Rename(name, s.objectPath(hash)); err != nil {
		s.fs.Remove(name)
		return 0, false, err
	}
	return oldPayload, replaced, nil
}

// quarantine moves a corrupt entry aside so it stops answering reads
// but stays available for inspection.
func (s *Store) quarantine(hash string) {
	if err := s.fs.Lock(s.lock); err == nil {
		defer s.fs.Unlock(s.lock)
	}
	dst := filepath.Join(s.quarantineDir(), hash)
	if err := s.fs.Rename(s.objectPath(hash), dst); err != nil {
		// Another daemon may have quarantined it first; just drop it.
		s.fs.Remove(s.objectPath(hash))
	}
	s.quarantined.Add(1)
	s.entries.Add(-1)
	s.log.Warn("store quarantined corrupt entry", "hash", hash, "to", dst)
}

// entryInfo is one on-disk entry seen by a scan.
type entryInfo struct {
	path    string
	payload int64 // payload bytes (frame minus header)
	mtime   int64
}

// walk lists every object entry. Read errors are ignored: a scan is
// advisory bookkeeping, not correctness.
func (s *Store) walk() []entryInfo {
	var out []entryInfo
	shards, err := s.fs.ReadDir(s.objectsDir())
	if err != nil {
		return nil
	}
	headerLen := int64(len(entryMagic) + hashLen + 1)
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := s.fs.ReadDir(filepath.Join(s.objectsDir(), sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			info, err := f.Info()
			if err != nil {
				continue
			}
			payload := info.Size() - headerLen
			if payload < 0 {
				payload = 0
			}
			out = append(out, entryInfo{
				path:    filepath.Join(s.objectsDir(), sh.Name(), f.Name()),
				payload: payload,
				mtime:   info.ModTime().UnixNano(),
			})
		}
	}
	return out
}

// scan recounts entries and payload bytes from disk.
func (s *Store) scan() (entries, bytes int64) {
	for _, e := range s.walk() {
		entries++
		bytes += e.payload
	}
	return entries, bytes
}

// evict enforces MaxBytes, removing oldest entries first. It rescans
// under the cross-process lock so two daemons sharing the directory
// cannot both act on a stale view.
func (s *Store) evict() {
	if s.opts.MaxBytes <= 0 || s.bytes.Load() <= s.opts.MaxBytes {
		return
	}
	if err := s.fs.Lock(s.lock); err != nil {
		return // budget enforcement waits for a healthier moment
	}
	defer s.fs.Unlock(s.lock)
	entries := s.walk()
	var total int64
	for _, e := range entries {
		total += e.payload
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime < entries[j].mtime })
	n := int64(len(entries))
	for _, e := range entries {
		if total <= s.opts.MaxBytes {
			break
		}
		if err := s.fs.Remove(e.path); err != nil {
			continue
		}
		total -= e.payload
		n--
		s.evictions.Add(1)
	}
	s.entries.Store(n)
	s.bytes.Store(total)
}

// probeTurn decides whether a degraded store should try the disk for
// real this time. Deterministic (every Nth operation) so tests don't
// race a clock.
func (s *Store) probeTurn() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probeTick++
	return s.probeTick%s.opts.ProbeEvery == 0
}

// ok records a successful disk interaction, recovering a degraded
// store.
func (s *Store) ok() {
	s.mu.Lock()
	s.consecFails = 0
	s.mu.Unlock()
	if s.degraded.CompareAndSwap(true, false) {
		s.log.Info("store recovered from degraded mode", "dir", s.opts.Dir)
	}
}

// fail records an infrastructure failure, tripping degraded mode past
// the threshold.
func (s *Store) fail(op string, err error) {
	s.mu.Lock()
	s.consecFails++
	trip := s.consecFails >= s.opts.FailThreshold && !s.degraded.Load()
	s.mu.Unlock()
	s.log.Warn("store operation failed", "op", op, "error", err.Error())
	if trip && s.degraded.CompareAndSwap(false, true) {
		s.degradedEvents.Add(1)
		s.log.Error("store degraded: bypassing disk, serving memory-only",
			"dir", s.opts.Dir, "consecutive_failures", s.opts.FailThreshold)
	}
}

// Degraded reports whether the store is currently bypassing the disk.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// Stats returns a snapshot of store accounting.
func (s *Store) Stats() Stats {
	return Stats{
		Dir:            s.opts.Dir,
		Entries:        s.entries.Load(),
		Bytes:          s.bytes.Load(),
		MaxBytes:       s.opts.MaxBytes,
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Puts:           s.puts.Load(),
		PutErrors:      s.putErrors.Load(),
		Quarantined:    s.quarantined.Load(),
		Evictions:      s.evictions.Load(),
		Skipped:        s.skipped.Load(),
		Degraded:       s.degraded.Load(),
		DegradedEvents: s.degradedEvents.Load(),
	}
}
