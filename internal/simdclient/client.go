// Package simdclient is the small HTTP client shared by everything
// that talks to a simd daemon or a simdcluster router: the simtop
// monitor, the cluster's health checks and proxy bookkeeping, the
// public SDK in pkg/client, and the smoke tests' curl-free assertions.
// It deliberately stays generic — callers decode into their own wire
// types — so it imports nothing above the obs metrics parser and
// creates no dependency cycles.
//
// Failures are typed so callers can tell the two very different "it
// didn't work" stories apart: a *StatusError means a reachable server
// answered with a non-2xx status (the daemon is up but unhappy), while
// IsUnreachable reports a transport-level failure — refused connection,
// reset, DNS — meaning nothing answered at all. The simtop banner and
// the cluster health gate branch on exactly this distinction.
package simdclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Client talks to one daemon or router base URL.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8080" (any
	// trailing slash is trimmed by New).
	Base string
	// HTTP is the underlying client; New installs a 10s timeout. Replace
	// it (or zero its Timeout) before streaming endpoints like /events.
	HTTP *http.Client
}

// New returns a client for the given base URL.
func New(base string) *Client {
	return &Client{
		Base: strings.TrimRight(base, "/"),
		HTTP: &http.Client{Timeout: 10 * time.Second},
	}
}

// StatusError is a reachable server's non-2xx answer: the HTTP exchange
// itself worked. Callers that treat certain statuses as protocol
// answers (429 with Retry-After, 409 not-ready) branch on Code.
type StatusError struct {
	Method string
	Path   string
	Code   int
	// Body is a bounded snippet of the response body, for error messages.
	Body string
}

func (e *StatusError) Error() string {
	if e.Body == "" {
		return fmt.Sprintf("%s %s: HTTP %d", e.Method, e.Path, e.Code)
	}
	return fmt.Sprintf("%s %s: HTTP %d: %s", e.Method, e.Path, e.Code, e.Body)
}

// IsUnreachable reports whether err is a transport-level failure —
// connection refused or reset, DNS failure, client timeout — rather
// than an HTTP answer (*StatusError) or a body-decode problem. The Go
// HTTP client wraps every transport failure in *url.Error, so that is
// the discriminator. Note a cancelled request context also surfaces
// this way; callers that cancel should check ctx.Err() first.
func IsUnreachable(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue)
}

// Do issues method on Base+path under ctx and returns the status code,
// the full response body and the headers without interpreting them.
// body is marshalled as JSON ([]byte and json.RawMessage pass through
// verbatim; nil sends no body). A transport failure returns status 0
// and an error for which IsUnreachable is true. Non-2xx statuses are
// NOT errors here — Do is the raw exchange the typed helpers build on.
func (c *Client) Do(ctx context.Context, method, path string, body any) (int, []byte, http.Header, error) {
	var rd io.Reader
	if body != nil {
		var payload []byte
		switch b := body.(type) {
		case []byte:
			payload = b
		case json.RawMessage:
			payload = b
		default:
			var err error
			if payload, err = json.Marshal(body); err != nil {
				return 0, nil, nil, err
			}
		}
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, resp.Header, err
}

// GetJSON fetches Base+path and decodes the JSON body into v. Any
// non-200 status is a *StatusError carrying the status and a body
// snippet.
func (c *Client) GetJSON(path string, v any) error {
	return c.GetJSONCtx(context.Background(), path, v)
}

// GetJSONCtx is GetJSON under a request context.
func (c *Client) GetJSONCtx(ctx context.Context, path string, v any) error {
	code, data, _, err := c.Do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return &StatusError{Method: http.MethodGet, Path: path, Code: code, Body: truncate(data)}
	}
	return json.Unmarshal(data, v)
}

// PostJSON posts body (marshalled as JSON; []byte and json.RawMessage
// pass through verbatim) to Base+path and, when the response carries a
// JSON body and v is non-nil, decodes it into v. It returns the HTTP
// status code and its headers; a transport failure returns status 0.
// Non-2xx statuses are not errors — callers branch on the code (429
// with Retry-After is a protocol answer, not a failure).
func (c *Client) PostJSON(path string, body any, v any) (int, http.Header, error) {
	code, data, hdr, err := c.Do(context.Background(), http.MethodPost, path, body)
	if err != nil {
		return code, hdr, err
	}
	if v != nil && len(data) > 0 {
		if err := json.Unmarshal(data, v); err != nil {
			return code, hdr, fmt.Errorf("POST %s: %d with undecodable body %q: %w", path, code, truncate(data), err)
		}
	}
	return code, hdr, nil
}

// Delete issues a DELETE to Base+path (the job-cancel verb), decoding a
// JSON body into v when non-nil. Returns the status code.
func (c *Client) Delete(path string, v any) (int, error) {
	code, data, _, err := c.Do(context.Background(), http.MethodDelete, path, nil)
	if err != nil {
		return code, err
	}
	if v != nil && len(data) > 0 {
		if err := json.Unmarshal(data, v); err != nil {
			return code, err
		}
	}
	return code, nil
}

// GetRaw fetches Base+path and returns the status, body bytes and
// headers without interpreting them — the shape proxies need.
func (c *Client) GetRaw(path string) (int, []byte, http.Header, error) {
	code, data, hdr, err := c.Do(context.Background(), http.MethodGet, path, nil)
	return code, data, hdr, err
}

// Metrics fetches and parses Base+/metrics (Prometheus text
// exposition).
func (c *Client) Metrics() (*obs.Snapshot, error) {
	code, data, _, err := c.Do(context.Background(), http.MethodGet, "/metrics", nil)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, &StatusError{Method: http.MethodGet, Path: "/metrics", Code: code, Body: truncate(data)}
	}
	return obs.ParseText(bytes.NewReader(data))
}

// Health is the slice of a /healthz document shared by daemon and
// router: enough for gating and attribution.
type Health struct {
	Status string `json:"status"`
	NodeID string `json:"node_id"`
}

// Health fetches Base+/healthz. A reachable daemon that answers
// anything but 200 is a *StatusError — health gating wants a hard
// signal, and the monitor wants to render "answered 500" differently
// from "nothing listening".
func (c *Client) Health() (Health, error) {
	var h Health
	err := c.GetJSON("/healthz", &h)
	return h, err
}

// RetryAfterHint parses a Retry-After header (integer seconds form)
// from h; ok is false when absent or unparseable.
func RetryAfterHint(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// Retry runs fn up to attempts times with capped exponential backoff
// (base doubling up to cap between tries), returning the first success
// or the last error. onRetry, when non-nil, observes each failure
// before the sleep — simtop uses it to report poll blips. A daemon that
// is still starting, or mid-restart, shouldn't kill its client on the
// first refused connection.
func Retry(attempts int, base, cap time.Duration, fn func() error, onRetry func(attempt int, err error, delay time.Duration)) error {
	if attempts < 1 {
		attempts = 1
	}
	delay := base
	var err error
	for i := 1; ; i++ {
		if err = fn(); err == nil {
			return nil
		}
		if i >= attempts {
			return err
		}
		if onRetry != nil {
			onRetry(i, err, delay)
		}
		time.Sleep(delay)
		delay *= 2
		if delay > cap {
			delay = cap
		}
	}
}

// WaitHealthy polls /healthz with backoff until the daemon answers,
// returning its health document — the "node is up only after /healthz
// passes" gate the cluster lifecycle builds on.
func (c *Client) WaitHealthy(attempts int) (Health, error) {
	var h Health
	err := Retry(attempts, 100*time.Millisecond, 2*time.Second, func() error {
		var e error
		h, e = c.Health()
		return e
	}, nil)
	return h, err
}

// truncate bounds an error-message body echo.
func truncate(b []byte) string {
	const max = 200
	s := strings.TrimSpace(string(b))
	if len(s) > max {
		return s[:max] + "..."
	}
	return s
}
