// Package simdclient is the small HTTP client shared by everything
// that talks to a simd daemon or a simdcluster router: the simtop
// monitor, the cluster's health checks and proxy bookkeeping, and the
// smoke tests' curl-free assertions. It deliberately stays generic —
// callers decode into their own wire types — so it imports nothing
// above the obs metrics parser and creates no dependency cycles.
package simdclient

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Client talks to one daemon or router base URL.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8080" (any
	// trailing slash is trimmed by New).
	Base string
	// HTTP is the underlying client; New installs a 10s timeout. Replace
	// it (or zero its Timeout) before streaming endpoints like /events.
	HTTP *http.Client
}

// New returns a client for the given base URL.
func New(base string) *Client {
	return &Client{
		Base: strings.TrimRight(base, "/"),
		HTTP: &http.Client{Timeout: 10 * time.Second},
	}
}

// GetJSON fetches Base+path and decodes the JSON body into v. Any
// non-200 status is an error carrying the status line.
func (c *Client) GetJSON(path string, v any) error {
	resp, err := c.HTTP.Get(c.Base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// PostJSON posts body (marshalled as JSON; []byte and json.RawMessage
// pass through verbatim) to Base+path and, when the response carries a
// JSON body and v is non-nil, decodes it into v. It returns the HTTP
// status code and its headers; a transport failure returns status 0.
// Non-2xx statuses are not errors — callers branch on the code (429
// with Retry-After is a protocol answer, not a failure).
func (c *Client) PostJSON(path string, body any, v any) (int, http.Header, error) {
	var payload []byte
	switch b := body.(type) {
	case nil:
	case []byte:
		payload = b
	case json.RawMessage:
		payload = b
	default:
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return 0, nil, err
		}
	}
	resp, err := c.HTTP.Post(c.Base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, resp.Header, err
	}
	if v != nil && len(data) > 0 {
		if err := json.Unmarshal(data, v); err != nil {
			return resp.StatusCode, resp.Header, fmt.Errorf("POST %s: %d with undecodable body %q: %w", path, resp.StatusCode, truncate(data), err)
		}
	}
	return resp.StatusCode, resp.Header, nil
}

// Delete issues a DELETE to Base+path (the job-cancel verb), decoding a
// JSON body into v when non-nil. Returns the status code.
func (c *Client) Delete(path string, v any) (int, error) {
	req, err := http.NewRequest(http.MethodDelete, c.Base+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if v != nil && len(data) > 0 {
		if err := json.Unmarshal(data, v); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// GetRaw fetches Base+path and returns the status, body bytes and
// headers without interpreting them — the shape proxies need.
func (c *Client) GetRaw(path string) (int, []byte, http.Header, error) {
	resp, err := c.HTTP.Get(c.Base + path)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, resp.Header, err
}

// Metrics fetches and parses Base+/metrics (Prometheus text
// exposition).
func (c *Client) Metrics() (*obs.Snapshot, error) {
	resp, err := c.HTTP.Get(c.Base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return obs.ParseText(resp.Body)
}

// Health is the slice of a /healthz document shared by daemon and
// router: enough for gating and attribution.
type Health struct {
	Status string `json:"status"`
	NodeID string `json:"node_id"`
}

// Health fetches Base+/healthz. A reachable daemon that answers
// anything but 200 is an error — health gating wants a hard signal.
func (c *Client) Health() (Health, error) {
	var h Health
	err := c.GetJSON("/healthz", &h)
	return h, err
}

// RetryAfterHint parses a Retry-After header (integer seconds form)
// from h; ok is false when absent or unparseable.
func RetryAfterHint(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// Retry runs fn up to attempts times with capped exponential backoff
// (base doubling up to cap between tries), returning the first success
// or the last error. onRetry, when non-nil, observes each failure
// before the sleep — simtop uses it to report poll blips. A daemon that
// is still starting, or mid-restart, shouldn't kill its client on the
// first refused connection.
func Retry(attempts int, base, cap time.Duration, fn func() error, onRetry func(attempt int, err error, delay time.Duration)) error {
	if attempts < 1 {
		attempts = 1
	}
	delay := base
	var err error
	for i := 1; ; i++ {
		if err = fn(); err == nil {
			return nil
		}
		if i >= attempts {
			return err
		}
		if onRetry != nil {
			onRetry(i, err, delay)
		}
		time.Sleep(delay)
		delay *= 2
		if delay > cap {
			delay = cap
		}
	}
}

// WaitHealthy polls /healthz with backoff until the daemon answers,
// returning its health document — the "node is up only after /healthz
// passes" gate the cluster lifecycle builds on.
func (c *Client) WaitHealthy(attempts int) (Health, error) {
	var h Health
	err := Retry(attempts, 100*time.Millisecond, 2*time.Second, func() error {
		var e error
		h, e = c.Health()
		return e
	}, nil)
	return h, err
}

// truncate bounds an error-message body echo.
func truncate(b []byte) string {
	const max = 200
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}
