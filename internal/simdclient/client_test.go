package simdclient

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetPostDelete(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /doc", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"n": 7}`))
	})
	mux.HandleFunc("POST /echo", func(w http.ResponseWriter, r *http.Request) {
		var in map[string]any
		json.NewDecoder(r.Body).Decode(&in)
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(in)
	})
	mux.HandleFunc("DELETE /doc", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"gone": true}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL + "/") // trailing slash must be trimmed

	var doc struct {
		N int `json:"n"`
	}
	if err := c.GetJSON("/doc", &doc); err != nil || doc.N != 7 {
		t.Fatalf("GetJSON: %+v err %v", doc, err)
	}
	if err := c.GetJSON("/missing", &doc); err == nil {
		t.Fatal("GetJSON on 404 must error")
	}

	var echo map[string]any
	code, hdr, err := c.PostJSON("/echo", map[string]any{"k": "v"}, &echo)
	if err != nil || code != http.StatusTooManyRequests || echo["k"] != "v" {
		t.Fatalf("PostJSON: code %d echo %v err %v", code, echo, err)
	}
	if d, ok := RetryAfterHint(hdr); !ok || d != 3*time.Second {
		t.Fatalf("RetryAfterHint = %v, %v", d, ok)
	}
	if _, ok := RetryAfterHint(http.Header{}); ok {
		t.Fatal("RetryAfterHint on empty header must be !ok")
	}

	var del struct {
		Gone bool `json:"gone"`
	}
	if code, err := c.Delete("/doc", &del); err != nil || code != http.StatusOK || !del.Gone {
		t.Fatalf("Delete: code %d %+v err %v", code, del, err)
	}

	code, body, _, err := c.GetRaw("/doc")
	if err != nil || code != http.StatusOK || string(body) != `{"n": 7}` {
		t.Fatalf("GetRaw: %d %q %v", code, body, err)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok","node_id":"n2"}`))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("# TYPE x_total counter\nx_total 41\n"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL)

	h, err := c.Health()
	if err != nil || h.Status != "ok" || h.NodeID != "n2" {
		t.Fatalf("Health: %+v err %v", h, err)
	}
	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Get("x_total"); !ok || v != 41 {
		t.Fatalf("metrics x_total = %v, %v", v, ok)
	}
}

func TestRetryBacksOffThenSucceeds(t *testing.T) {
	var calls, retries atomic.Int64
	err := Retry(5, time.Millisecond, 4*time.Millisecond, func() error {
		if calls.Add(1) < 3 {
			return errors.New("not yet")
		}
		return nil
	}, func(attempt int, err error, delay time.Duration) {
		retries.Add(1)
		if delay <= 0 || delay > 4*time.Millisecond {
			t.Errorf("delay %v outside the cap", delay)
		}
	})
	if err != nil || calls.Load() != 3 || retries.Load() != 2 {
		t.Fatalf("err %v calls %d retries %d", err, calls.Load(), retries.Load())
	}

	boom := errors.New("boom")
	if err := Retry(2, time.Millisecond, time.Millisecond, func() error { return boom }, nil); !errors.Is(err, boom) {
		t.Fatalf("exhausted Retry returned %v, want the last error", err)
	}
}

func TestWaitHealthyGates(t *testing.T) {
	var ready atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !ready.Load() {
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()
	c := New(ts.URL)

	if _, err := c.WaitHealthy(1); err == nil {
		t.Fatal("WaitHealthy must fail while the daemon is down")
	}
	time.AfterFunc(50*time.Millisecond, func() { ready.Store(true) })
	h, err := c.WaitHealthy(20)
	if err != nil || h.Status != "ok" {
		t.Fatalf("WaitHealthy: %+v err %v", h, err)
	}
}
