package simdclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetPostDelete(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /doc", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"n": 7}`))
	})
	mux.HandleFunc("POST /echo", func(w http.ResponseWriter, r *http.Request) {
		var in map[string]any
		json.NewDecoder(r.Body).Decode(&in)
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(in)
	})
	mux.HandleFunc("DELETE /doc", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"gone": true}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL + "/") // trailing slash must be trimmed

	var doc struct {
		N int `json:"n"`
	}
	if err := c.GetJSON("/doc", &doc); err != nil || doc.N != 7 {
		t.Fatalf("GetJSON: %+v err %v", doc, err)
	}
	err := c.GetJSON("/missing", &doc)
	if err == nil {
		t.Fatal("GetJSON on 404 must error")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("GetJSON on 404 returned %v, want *StatusError with code 404", err)
	}
	if IsUnreachable(err) {
		t.Fatal("an HTTP 404 answer must not read as unreachable")
	}

	var echo map[string]any
	code, hdr, err := c.PostJSON("/echo", map[string]any{"k": "v"}, &echo)
	if err != nil || code != http.StatusTooManyRequests || echo["k"] != "v" {
		t.Fatalf("PostJSON: code %d echo %v err %v", code, echo, err)
	}
	if d, ok := RetryAfterHint(hdr); !ok || d != 3*time.Second {
		t.Fatalf("RetryAfterHint = %v, %v", d, ok)
	}
	if _, ok := RetryAfterHint(http.Header{}); ok {
		t.Fatal("RetryAfterHint on empty header must be !ok")
	}

	var del struct {
		Gone bool `json:"gone"`
	}
	if code, err := c.Delete("/doc", &del); err != nil || code != http.StatusOK || !del.Gone {
		t.Fatalf("Delete: code %d %+v err %v", code, del, err)
	}

	code, body, _, err := c.GetRaw("/doc")
	if err != nil || code != http.StatusOK || string(body) != `{"n": 7}` {
		t.Fatalf("GetRaw: %d %q %v", code, body, err)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok","node_id":"n2"}`))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("# TYPE x_total counter\nx_total 41\n"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL)

	h, err := c.Health()
	if err != nil || h.Status != "ok" || h.NodeID != "n2" {
		t.Fatalf("Health: %+v err %v", h, err)
	}
	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Get("x_total"); !ok || v != 41 {
		t.Fatalf("metrics x_total = %v, %v", v, ok)
	}
}

func TestTypedErrorsDistinguishUnreachableFromStatus(t *testing.T) {
	// A server that answers 500: reachable, but erroring.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "internal meltdown", http.StatusInternalServerError)
	}))
	c := New(ts.URL)
	_, err := c.Health()
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
		t.Fatalf("Health against a 500 returned %v, want *StatusError 500", err)
	}
	if se.Body == "" || IsUnreachable(err) {
		t.Fatalf("StatusError should carry a body snippet and not read unreachable: %+v", se)
	}
	if _, err := c.Metrics(); !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
		t.Fatalf("Metrics against a 500 returned %v, want *StatusError 500", err)
	}

	// The same URL with the server gone: nothing listening.
	ts.Close()
	_, err = c.Health()
	if err == nil || !IsUnreachable(err) {
		t.Fatalf("Health against a dead server returned %v, want an unreachable transport error", err)
	}
	if errors.As(err, &se) {
		t.Fatalf("a refused connection must not be a *StatusError: %v", err)
	}
}

func TestDoHonorsContext(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer ts.Close()
	defer close(block)
	c := New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, _, err := c.Do(ctx, http.MethodGet, "/slow", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do under an expired context returned %v, want DeadlineExceeded", err)
	}
}

func TestRetryAfterHintParse(t *testing.T) {
	mk := func(v string) http.Header {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return h
	}
	cases := []struct {
		header string
		want   time.Duration
		ok     bool
	}{
		{"", 0, false},
		{"3", 3 * time.Second, true},
		{"0", 0, true},
		{"-2", 0, false},
		{"soon", 0, false},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0, false}, // HTTP-date form: unsupported, not a crash
		{"1.5", 0, false},
	}
	for _, tc := range cases {
		if d, ok := RetryAfterHint(mk(tc.header)); d != tc.want || ok != tc.ok {
			t.Errorf("RetryAfterHint(%q) = %v, %v; want %v, %v", tc.header, d, ok, tc.want, tc.ok)
		}
	}
}

func TestRetryBacksOffThenSucceeds(t *testing.T) {
	var calls, retries atomic.Int64
	err := Retry(5, time.Millisecond, 4*time.Millisecond, func() error {
		if calls.Add(1) < 3 {
			return errors.New("not yet")
		}
		return nil
	}, func(attempt int, err error, delay time.Duration) {
		retries.Add(1)
		if delay <= 0 || delay > 4*time.Millisecond {
			t.Errorf("delay %v outside the cap", delay)
		}
	})
	if err != nil || calls.Load() != 3 || retries.Load() != 2 {
		t.Fatalf("err %v calls %d retries %d", err, calls.Load(), retries.Load())
	}

	boom := errors.New("boom")
	if err := Retry(2, time.Millisecond, time.Millisecond, func() error { return boom }, nil); !errors.Is(err, boom) {
		t.Fatalf("exhausted Retry returned %v, want the last error", err)
	}
}

func TestWaitHealthyGates(t *testing.T) {
	var ready atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !ready.Load() {
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()
	c := New(ts.URL)

	if _, err := c.WaitHealthy(1); err == nil {
		t.Fatal("WaitHealthy must fail while the daemon is down")
	}
	time.AfterFunc(50*time.Millisecond, func() { ready.Store(true) })
	h, err := c.WaitHealthy(20)
	if err != nil || h.Status != "ok" {
		t.Fatalf("WaitHealthy: %+v err %v", h, err)
	}
}
