// Reliable transport: sequence numbers, ack/retransmit with exponential
// backoff, and duplicate suppression layered under Send/Recv, per
// (src, dst) link — the role TCP plays under real MPI. It exists so the
// simulator keeps MPI's exactly-once in-order delivery contract when the
// fabric is running a fault plan (drops, duplicates, reordering jitter).
//
// Disabled (the default) it costs nothing: packets travel with Ctl=0 and
// the receive path is unchanged, keeping fault-free runs byte-identical.
package mpi

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Packet control codes (fabric.Packet.Ctl).
const (
	ctlRaw  uint8 = iota // legacy unsequenced packet
	ctlData              // sequenced payload, expects an ack
	ctlAck               // acknowledgement, Seq = acked sequence number
	// ctlSkip is a payload-less tombstone for a sequence slot whose data
	// frame was abandoned after its retry budget: it tells the receiver to
	// advance its in-order cursor past the lost payload, so one abandoned
	// frame cannot wedge the link forever. Tombstones retry without limit
	// (they are what keeps the link alive) and are acked like any frame.
	ctlSkip
)

// ackWire is the wire size charged for an ack frame (seq + header).
const ackWire = 12

// ReliableParams tunes the retransmission machinery.
type ReliableParams struct {
	// BaseRTO is the initial retransmission timeout. Zero derives
	// 8 x the fabric one-way latency (a loose RTT estimate plus slack).
	BaseRTO sim.Time
	// MaxRTO caps the exponential backoff. Zero derives 8 x BaseRTO.
	MaxRTO sim.Time
	// RetryLimit bounds retransmissions per packet; 0 means unlimited.
	// When exhausted the packet is abandoned and counted (the layer above
	// — e.g. the GVT watchdog — must recover).
	RetryLimit int
	// TagRetryLimit overrides RetryLimit for specific tags.
	TagRetryLimit map[int]int
}

// TransportStats is a snapshot of one rank's (or the whole world's)
// reliable-transport counters.
type TransportStats struct {
	// Retransmits counts data frames re-sent after an RTO expiry.
	Retransmits int64
	// Exhausted counts data frames abandoned after RetryLimit retries.
	Exhausted int64
	// DupsSuppressed counts received duplicate data frames discarded.
	DupsSuppressed int64
	// AcksSent and AcksRecv count ack frames.
	AcksSent int64
	AcksRecv int64
}

func (s TransportStats) add(o TransportStats) TransportStats {
	s.Retransmits += o.Retransmits
	s.Exhausted += o.Exhausted
	s.DupsSuppressed += o.DupsSuppressed
	s.AcksSent += o.AcksSent
	s.AcksRecv += o.AcksRecv
	return s
}

// relPending is one unacknowledged data frame awaiting ack or RTO.
type relPending struct {
	pkt      fabric.Packet
	attempts int
	rto      sim.Time
}

// sendLink is the sender half of one directed link.
type sendLink struct {
	nextSeq uint64
	unacked map[uint64]*relPending
}

// recvLink is the receiver half: in-order reassembly and dup suppression.
type recvLink struct {
	expected uint64 // next in-order sequence number (first frame is 1)
	buffer   map[uint64]fabric.Packet
}

// reliable is a rank's transport state.
type reliable struct {
	params ReliableParams
	send   map[int]*sendLink // by destination rank
	recv   map[int]*recvLink // by source rank
	stats  TransportStats
}

// EnableReliable turns on the reliable transport for every rank. Must be
// called before any traffic; calling it twice panics. RTO defaults are
// derived from the fabric latency when unset.
func (w *World) EnableReliable(params ReliableParams) {
	if params.BaseRTO == 0 {
		params.BaseRTO = 8 * w.fabric.Params().Latency
	}
	if params.BaseRTO <= 0 {
		panic(fmt.Sprintf("mpi: non-positive retransmission timeout %v", params.BaseRTO))
	}
	if params.MaxRTO == 0 {
		params.MaxRTO = 8 * params.BaseRTO
	}
	if params.MaxRTO < params.BaseRTO {
		panic(fmt.Sprintf("mpi: MaxRTO %v below BaseRTO %v", params.MaxRTO, params.BaseRTO))
	}
	for _, r := range w.ranks {
		if r.rel != nil {
			panic("mpi: reliable transport already enabled")
		}
		r.rel = &reliable{
			params: params,
			send:   make(map[int]*sendLink),
			recv:   make(map[int]*recvLink),
		}
	}
}

// Reliable reports whether the reliable transport is enabled.
func (w *World) Reliable() bool {
	return len(w.ranks) > 0 && w.ranks[0].rel != nil
}

// TransportStats returns this rank's reliable-transport counters
// (all zero when the transport is disabled).
func (r *Rank) TransportStats() TransportStats {
	if r.rel == nil {
		return TransportStats{}
	}
	return r.rel.stats
}

// TransportStats aggregates the transport counters across all ranks.
func (w *World) TransportStats() TransportStats {
	var s TransportStats
	for _, r := range w.ranks {
		s = s.add(r.TransportStats())
	}
	return s
}

// retryLimit returns the retransmission budget for a tag (0 = unlimited).
func (t *reliable) retryLimit(tag int) int {
	if lim, ok := t.params.TagRetryLimit[tag]; ok {
		return lim
	}
	return t.params.RetryLimit
}

// sendData sequences pkt, records it as unacked, transmits, and arms the
// retransmission timer. Runs under the rank's MPI lock.
func (r *Rank) sendData(pkt fabric.Packet) {
	t := r.rel
	link := t.send[pkt.Dst]
	if link == nil {
		link = &sendLink{unacked: make(map[uint64]*relPending)}
		t.send[pkt.Dst] = link
	}
	link.nextSeq++
	pkt.Seq = link.nextSeq
	pkt.Ctl = ctlData
	pd := &relPending{pkt: pkt, rto: t.params.BaseRTO}
	link.unacked[pkt.Seq] = pd
	r.world.fabric.Send(pkt)
	r.armRetransmit(link, pd)
}

// armRetransmit schedules the next RTO expiry for pd. The timer fires in
// scheduler-callback context (the simulated NIC/progress engine), so
// retransmissions cost wire time but no thread CPU.
func (r *Rank) armRetransmit(link *sendLink, pd *relPending) {
	seq := pd.pkt.Seq
	r.world.env.After(pd.rto, func() {
		cur, ok := link.unacked[seq]
		if !ok || cur != pd {
			return // acked in the meantime
		}
		if lim := r.rel.retryLimit(pd.pkt.Tag); lim > 0 && pd.attempts >= lim && pd.pkt.Ctl == ctlData {
			// Budget exhausted: abandon the payload but not the sequence
			// slot — convert the frame to a skip tombstone so the
			// receiver's in-order cursor can move past the loss.
			r.rel.stats.Exhausted++
			pd.pkt.Ctl = ctlSkip
			pd.pkt.Size = ackWire
			pd.pkt.Payload = nil
		}
		pd.attempts++
		r.rel.stats.Retransmits++
		if pd.rto *= 2; pd.rto > r.rel.params.MaxRTO {
			pd.rto = r.rel.params.MaxRTO
		}
		r.world.fabric.Send(pd.pkt)
		r.armRetransmit(link, pd)
	})
}

// receive dispatches an arriving packet by control code. Runs in
// scheduler-callback context as the fabric delivery handler.
func (r *Rank) receive(pkt fabric.Packet) {
	if r.rel == nil || pkt.Ctl == ctlRaw {
		r.deliver(pkt)
		return
	}
	switch pkt.Ctl {
	case ctlAck:
		r.rel.stats.AcksRecv++
		if link := r.rel.send[pkt.Src]; link != nil {
			delete(link.unacked, pkt.Seq)
		}
	case ctlData, ctlSkip:
		t := r.rel
		link := t.recv[pkt.Src]
		if link == nil {
			link = &recvLink{expected: 1, buffer: make(map[uint64]fabric.Packet)}
			t.recv[pkt.Src] = link
		}
		// Ack every arrival, duplicates included: the original ack may
		// have been the frame the fabric lost.
		t.stats.AcksSent++
		r.world.fabric.Send(fabric.Packet{
			Src: r.id, Dst: pkt.Src, Tag: pkt.Tag, Size: ackWire, Ctl: ctlAck, Seq: pkt.Seq,
		})
		if pkt.Seq < link.expected {
			t.stats.DupsSuppressed++
			return
		}
		if _, dup := link.buffer[pkt.Seq]; dup {
			t.stats.DupsSuppressed++
			return
		}
		link.buffer[pkt.Seq] = pkt
		for {
			next, ok := link.buffer[link.expected]
			if !ok {
				break
			}
			delete(link.buffer, link.expected)
			link.expected++
			if next.Ctl == ctlData {
				r.deliver(next) // skip tombstones advance the cursor only
			}
		}
	default:
		panic(fmt.Sprintf("mpi: unknown packet control code %d from %d", pkt.Ctl, pkt.Src))
	}
}

// ForEachBuffered visits the payload of every message held anywhere inside
// this rank's receive path or awaiting acknowledgement on its send path:
// the unconsumed stash, out-of-order reassembly buffers, and unacked
// frames whose retransmission could still re-enter the system. An unacked
// frame the receiver has already accepted (its ack was lost, not the data)
// is excluded — retransmits of it are discarded as duplicates. Used by GVT
// invariant checks; visit order is unspecified.
func (r *Rank) ForEachBuffered(fn func(payload any)) {
	for i := r.head; i < len(r.stash); i++ {
		fn(r.stash[i].Payload)
	}
	if r.rel == nil {
		return
	}
	for _, link := range r.rel.recv {
		for _, pkt := range link.buffer {
			fn(pkt.Payload)
		}
	}
	for _, link := range r.rel.send {
		for _, pd := range link.unacked {
			if !r.world.PacketWillDeliver(pd.pkt) {
				continue
			}
			fn(pd.pkt.Payload)
		}
	}
}

// ForEachBuffered visits buffered payloads across every rank.
func (w *World) ForEachBuffered(fn func(payload any)) {
	for _, r := range w.ranks {
		r.ForEachBuffered(fn)
	}
}

// PacketWillDeliver reports whether an in-flight packet would reach the
// application if it arrived now: acks, skip tombstones and duplicates of
// frames the receiver has already accepted (fabric-duplicated or
// retransmitted) are discarded by the transport and can never re-enter
// the simulation. Used by GVT invariant checks to decide which in-flight
// timestamps actually bound the commit horizon.
func (w *World) PacketWillDeliver(pkt fabric.Packet) bool {
	if pkt.Dst < 0 || pkt.Dst >= len(w.ranks) {
		return false
	}
	r := w.ranks[pkt.Dst]
	if r.rel == nil || pkt.Ctl == ctlRaw {
		return true
	}
	if pkt.Ctl != ctlData {
		return false
	}
	link := r.rel.recv[pkt.Src]
	if link == nil {
		return true
	}
	if pkt.Seq < link.expected {
		return false
	}
	if _, buffered := link.buffer[pkt.Seq]; buffered {
		return false
	}
	return true
}
