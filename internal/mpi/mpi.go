// Package mpi provides the message-passing layer the paper's simulator
// uses for inter-node communication: ranks (one per node/process),
// point-to-point eager sends, non-blocking probes, source-matched blocking
// receives, rank-0-rooted collectives (barrier, allreduce), and the ring
// circulation Mattern's control message travels on.
//
// Every operation charges sender/receiver CPU time and serializes on the
// rank's MPI lock — the "threaded MPI performance is inherently limited by
// the lock contention among threads" effect ([2], paper §1) that motivates
// the dedicated MPI thread.
package mpi

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Reserved tags for collective operations. User tags must be >= TagUser.
const (
	tagBarrierArrive = iota
	tagBarrierRelease
	tagReduceArrive
	tagReduceResult
	// TagUser is the first tag available to applications.
	TagUser
)

// Costs models the CPU-side cost of MPI operations (mpich eager protocol
// on a ~1.3 GHz KNL core).
type Costs struct {
	// Send is the CPU time consumed by MPI_Send (eager copy + progress).
	Send sim.Time
	// Recv is the CPU time to match and copy out one received message.
	Recv sim.Time
	// Poll is the CPU time of one MPI_Iprobe that finds nothing.
	Poll sim.Time
	// LockHold is the extra critical-section entry cost of the MPI
	// big lock (cache-line transfer under MPI_THREAD_MULTIPLE).
	LockHold sim.Time
}

// DefaultCosts returns KNL-flavoured defaults.
func DefaultCosts() Costs {
	return Costs{
		Send:     4250 * sim.Nanosecond,
		Recv:     2250 * sim.Nanosecond,
		Poll:     500 * sim.Nanosecond,
		LockHold: 300 * sim.Nanosecond,
	}
}

// Message is a received message.
type Message struct {
	Src     int
	Tag     int
	Size    int
	Payload any
}

// World is an MPI communicator over a fabric: n ranks, one per node.
type World struct {
	env    *sim.Env
	fabric *fabric.Fabric
	costs  Costs
	ranks  []*Rank
}

// NewWorld creates a world of n ranks over a fresh fabric.
func NewWorld(env *sim.Env, n int, net fabric.Params, costs Costs) *World {
	w := &World{
		env:    env,
		fabric: fabric.New(env, n, net),
		costs:  costs,
	}
	for i := 0; i < n; i++ {
		r := &Rank{
			world: w,
			id:    i,
			lock:  &sim.Mutex{Name: fmt.Sprintf("mpi-lock-%d", i), HoldCost: costs.LockHold},
			cond:  sim.Cond{Name: fmt.Sprintf("mpi-recv-%d", i)},
		}
		w.ranks = append(w.ranks, r)
		id := i
		w.fabric.Attach(id, func(pkt fabric.Packet) { w.ranks[id].receive(pkt) })
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Fabric exposes the underlying fabric (for statistics).
func (w *World) Fabric() *fabric.Fabric { return w.fabric }

// Rank is one MPI process. Multiple simulated threads of a node may share
// a Rank; all calls serialize on the rank's MPI lock.
type Rank struct {
	world *World
	id    int
	lock  *sim.Mutex
	cond  sim.Cond
	// stash holds delivered-but-unconsumed messages; head avoids O(n)
	// shifting when messages are consumed in arrival order (the common
	// case for event traffic under backlog).
	stash []Message
	head  int
	// rel is the reliable-transport state; nil when disabled.
	rel *reliable
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// LockStats returns (acquisitions, contended acquisitions, total wait).
func (r *Rank) LockStats() (int64, int64, sim.Time) {
	return r.lock.Acquires, r.lock.Contended, r.lock.WaitTime
}

// deliver runs in scheduler-callback context when a packet arrives.
func (r *Rank) deliver(pkt fabric.Packet) {
	r.stash = append(r.stash, Message{Src: pkt.Src, Tag: pkt.Tag, Size: pkt.Size, Payload: pkt.Payload})
	r.cond.Broadcast(r.world.env)
}

// compact reclaims consumed slots once they dominate the stash.
func (r *Rank) compact() {
	if r.head > 256 && r.head > len(r.stash)/2 {
		n := copy(r.stash, r.stash[r.head:])
		for i := n; i < len(r.stash); i++ {
			r.stash[i] = Message{}
		}
		r.stash = r.stash[:n]
		r.head = 0
	}
}

// Send performs an eager send of payload to rank dst with the given tag,
// charging wire size bytes for the bandwidth term.
func (r *Rank) Send(p *sim.Proc, dst, tag, size int, payload any) {
	if dst == r.id {
		panic("mpi: send to self")
	}
	r.lock.Lock(p)
	p.Advance(r.world.costs.Send)
	pkt := fabric.Packet{Src: r.id, Dst: dst, Tag: tag, Size: size, Payload: payload}
	if r.rel != nil {
		r.sendData(pkt)
	} else {
		r.world.fabric.Send(pkt)
	}
	r.lock.Unlock(p)
}

// take removes the first stashed message satisfying match.
func (r *Rank) take(match func(*Message) bool) (Message, bool) {
	for i := r.head; i < len(r.stash); i++ {
		if !match(&r.stash[i]) {
			continue
		}
		m := r.stash[i]
		if i == r.head {
			r.stash[i] = Message{}
			r.head++
		} else {
			r.stash = append(r.stash[:i], r.stash[i+1:]...)
		}
		r.compact()
		return m, true
	}
	return Message{}, false
}

// TryRecv polls for any message with the given tag (MPI_Iprobe +
// MPI_Recv). It returns ok=false when none is available.
func (r *Rank) TryRecv(p *sim.Proc, tag int) (Message, bool) {
	r.lock.Lock(p)
	p.Advance(r.world.costs.Poll)
	m, ok := r.take(func(m *Message) bool { return m.Tag == tag })
	if ok {
		p.Advance(r.world.costs.Recv)
	}
	r.lock.Unlock(p)
	return m, ok
}

// RecvFrom blocks until a message with the given source and tag arrives.
// Matching by source keeps successive collective rounds from mixing.
func (r *Rank) RecvFrom(p *sim.Proc, src, tag int) Message {
	for {
		r.lock.Lock(p)
		p.Advance(r.world.costs.Poll)
		m, ok := r.take(func(m *Message) bool { return m.Src == src && m.Tag == tag })
		if ok {
			p.Advance(r.world.costs.Recv)
			r.lock.Unlock(p)
			return m
		}
		r.lock.Unlock(p)
		r.cond.Wait(p)
	}
}

// Barrier blocks until every rank has entered it (rank-0-rooted
// gather/release). All ranks must call it via exactly one thread each.
func (r *Rank) Barrier(p *sim.Proc) {
	n := r.world.Size()
	if n == 1 {
		return
	}
	if r.id == 0 {
		for src := 1; src < n; src++ {
			r.RecvFrom(p, src, tagBarrierArrive)
		}
		for dst := 1; dst < n; dst++ {
			r.Send(p, dst, tagBarrierRelease, 8, nil)
		}
	} else {
		r.Send(p, 0, tagBarrierArrive, 8, nil)
		r.RecvFrom(p, 0, tagBarrierRelease)
	}
}

// AllreduceSum returns the sum of every rank's val (rank-0-rooted).
func (r *Rank) AllreduceSum(p *sim.Proc, val int64) int64 {
	n := r.world.Size()
	if n == 1 {
		return val
	}
	if r.id == 0 {
		total := val
		for src := 1; src < n; src++ {
			total += int64Payload(r.RecvFrom(p, src, tagReduceArrive))
		}
		for dst := 1; dst < n; dst++ {
			r.Send(p, dst, tagReduceResult, 8, total)
		}
		return total
	}
	r.Send(p, 0, tagReduceArrive, 8, val)
	return int64Payload(r.RecvFrom(p, 0, tagReduceResult))
}

// AllreduceMin returns the minimum of every rank's val (rank-0-rooted).
func (r *Rank) AllreduceMin(p *sim.Proc, val float64) float64 {
	n := r.world.Size()
	if n == 1 {
		return val
	}
	if r.id == 0 {
		min := val
		for src := 1; src < n; src++ {
			if v := float64Payload(r.RecvFrom(p, src, tagReduceArrive)); v < min {
				min = v
			}
		}
		for dst := 1; dst < n; dst++ {
			r.Send(p, dst, tagReduceResult, 8, min)
		}
		return min
	}
	r.Send(p, 0, tagReduceArrive, 8, val)
	return float64Payload(r.RecvFrom(p, 0, tagReduceResult))
}

// int64Payload asserts an allreduce payload, diagnosing tag collisions.
func int64Payload(m Message) int64 {
	v, ok := m.Payload.(int64)
	if !ok {
		panic(fmt.Sprintf("mpi: allreduce expected int64 payload, got %T from src %d tag %d (reserved-tag collision?)",
			m.Payload, m.Src, m.Tag))
	}
	return v
}

// float64Payload asserts an allreduce payload, diagnosing tag collisions.
func float64Payload(m Message) float64 {
	v, ok := m.Payload.(float64)
	if !ok {
		panic(fmt.Sprintf("mpi: allreduce expected float64 payload, got %T from src %d tag %d (reserved-tag collision?)",
			m.Payload, m.Src, m.Tag))
	}
	return v
}

// SendRing forwards a token to the next rank in the ring.
func (r *Rank) SendRing(p *sim.Proc, tag, size int, payload any) {
	next := (r.id + 1) % r.world.Size()
	if next == r.id {
		panic("mpi: ring of one rank")
	}
	r.Send(p, next, tag, size, payload)
}

// TryRecvRing polls for a ring token from the previous rank.
func (r *Rank) TryRecvRing(p *sim.Proc, tag int) (Message, bool) {
	prev := (r.id - 1 + r.world.Size()) % r.world.Size()
	r.lock.Lock(p)
	p.Advance(r.world.costs.Poll)
	m, ok := r.take(func(m *Message) bool { return m.Src == prev && m.Tag == tag })
	if ok {
		p.Advance(r.world.costs.Recv)
	}
	r.lock.Unlock(p)
	return m, ok
}
