package mpi

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func newWorld(env *sim.Env, n int) *World {
	return NewWorld(env, n, fabric.Params{Latency: 100, BytesPerSec: 0}, Costs{
		Send: 10, Recv: 5, Poll: 1, LockHold: 0,
	})
}

func TestSendRecvFrom(t *testing.T) {
	env := sim.NewEnv()
	w := newWorld(env, 2)
	var got Message
	env.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, TagUser, 64, "hello")
	})
	env.Spawn("r1", func(p *sim.Proc) {
		got = w.Rank(1).RecvFrom(p, 0, TagUser)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Payload != "hello" || got.Src != 0 || got.Size != 64 {
		t.Errorf("got %+v", got)
	}
}

func TestSendToSelfPanics(t *testing.T) {
	env := sim.NewEnv()
	w := newWorld(env, 2)
	env.Spawn("r0", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("send to self did not panic")
			}
		}()
		w.Rank(0).Send(p, 0, TagUser, 8, nil)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTryRecv(t *testing.T) {
	env := sim.NewEnv()
	w := newWorld(env, 2)
	env.Spawn("r0", func(p *sim.Proc) {
		p.Advance(50)
		w.Rank(0).Send(p, 1, TagUser, 8, 42)
	})
	env.Spawn("r1", func(p *sim.Proc) {
		if _, ok := w.Rank(1).TryRecv(p, TagUser); ok {
			t.Error("TryRecv found a message before any send")
		}
		p.Advance(1000)
		m, ok := w.Rank(1).TryRecv(p, TagUser)
		if !ok || m.Payload != 42 {
			t.Errorf("TryRecv after delivery: %+v ok=%v", m, ok)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRecvFromMatchesSourceAndTag(t *testing.T) {
	env := sim.NewEnv()
	w := newWorld(env, 3)
	var order []string
	env.Spawn("r1", func(p *sim.Proc) {
		w.Rank(1).Send(p, 0, TagUser, 8, "from1")
	})
	env.Spawn("r2", func(p *sim.Proc) {
		w.Rank(2).Send(p, 0, TagUser+1, 8, "from2-other-tag")
		w.Rank(2).Send(p, 0, TagUser, 8, "from2")
	})
	env.Spawn("r0", func(p *sim.Proc) {
		// Ask for rank 2 first even though rank 1's message arrives too.
		m := w.Rank(0).RecvFrom(p, 2, TagUser)
		order = append(order, m.Payload.(string))
		m = w.Rank(0).RecvFrom(p, 1, TagUser)
		order = append(order, m.Payload.(string))
		m = w.Rank(0).RecvFrom(p, 2, TagUser+1)
		order = append(order, m.Payload.(string))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"from2", "from1", "from2-other-tag"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBarrierAllRanks(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		env := sim.NewEnv()
		w := newWorld(env, n)
		released := make([]sim.Time, n)
		for i := 0; i < n; i++ {
			i := i
			env.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				p.Advance(sim.Time(i * 1000)) // stagger arrivals
				w.Rank(i).Barrier(p)
				released[i] = p.Now()
			})
		}
		if err := env.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		last := sim.Time((n - 1) * 1000)
		for i, ts := range released {
			if ts < last {
				t.Errorf("n=%d: rank %d released at %v before last arrival %v", n, i, ts, last)
			}
		}
	}
}

func TestBarrierRepeats(t *testing.T) {
	env := sim.NewEnv()
	w := newWorld(env, 3)
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		env.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			for round := 0; round < 10; round++ {
				p.Advance(sim.Time(1 + i*7))
				w.Rank(i).Barrier(p)
				counts[i]++
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 10 {
			t.Errorf("rank %d completed %d rounds", i, c)
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		env := sim.NewEnv()
		w := newWorld(env, n)
		results := make([]int64, n)
		for i := 0; i < n; i++ {
			i := i
			env.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				results[i] = w.Rank(i).AllreduceSum(p, int64(i+1))
			})
		}
		if err := env.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := int64(n * (n + 1) / 2)
		for i, r := range results {
			if r != want {
				t.Errorf("n=%d rank %d: sum = %d, want %d", n, i, r, want)
			}
		}
	}
}

func TestAllreduceMin(t *testing.T) {
	env := sim.NewEnv()
	n := 4
	w := newWorld(env, n)
	vals := []float64{3.5, 1.25, 9, 2}
	results := make([]float64, n)
	for i := 0; i < n; i++ {
		i := i
		env.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			results[i] = w.Rank(i).AllreduceMin(p, vals[i])
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != 1.25 {
			t.Errorf("rank %d: min = %v, want 1.25", i, r)
		}
	}
}

func TestConsecutiveCollectivesDoNotMix(t *testing.T) {
	env := sim.NewEnv()
	n := 3
	w := newWorld(env, n)
	sums := make([][]int64, n)
	for i := 0; i < n; i++ {
		i := i
		env.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			// Rank 2 races ahead into the next round while rank 0 is slow.
			for round := 0; round < 5; round++ {
				p.Advance(sim.Time((3 - i) * 500))
				sums[i] = append(sums[i], w.Rank(i).AllreduceSum(p, int64(round*10+i)))
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		want := int64(round*10) + int64(round*10+1) + int64(round*10+2)
		for i := 0; i < n; i++ {
			if sums[i][round] != want {
				t.Errorf("round %d rank %d: %d, want %d", round, i, sums[i][round], want)
			}
		}
	}
}

func TestRingCirculation(t *testing.T) {
	env := sim.NewEnv()
	n := 4
	w := newWorld(env, n)
	var total int
	env.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).SendRing(p, TagUser, 16, 1)
		for {
			if m, ok := w.Rank(0).TryRecvRing(p, TagUser); ok {
				total = m.Payload.(int)
				return
			}
			p.Advance(10)
		}
	})
	for i := 1; i < n; i++ {
		i := i
		env.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			for {
				if m, ok := w.Rank(i).TryRecvRing(p, TagUser); ok {
					w.Rank(i).SendRing(p, TagUser, 16, m.Payload.(int)+1)
					return
				}
				p.Advance(10)
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Errorf("token accumulated %d, want %d", total, n)
	}
}

func TestMPILockSerializesThreads(t *testing.T) {
	// Two simulated threads of rank 0 send at the same instant: the MPI
	// lock must serialize their Send CPU time (10 each).
	env := sim.NewEnv()
	w := newWorld(env, 2)
	var done []sim.Time
	for i := 0; i < 2; i++ {
		env.Spawn(fmt.Sprintf("thr%d", i), func(p *sim.Proc) {
			w.Rank(0).Send(p, 1, TagUser, 8, nil)
			done = append(done, p.Now())
		})
	}
	env.Spawn("sink", func(p *sim.Proc) {
		w.Rank(1).RecvFrom(p, 0, TagUser)
		w.Rank(1).RecvFrom(p, 0, TagUser)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done[0] != 10 || done[1] != 20 {
		t.Errorf("send completion times = %v, want [10 20]", done)
	}
	if _, contended, _ := w.Rank(0).LockStats(); contended != 1 {
		t.Errorf("contended = %d, want 1", contended)
	}
}
