package mpi

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// lossyWorld builds a 2-rank world over a faulty fabric with the reliable
// transport enabled.
func lossyWorld(t *testing.T, plan *fabric.FaultPlan, rp ReliableParams) (*sim.Env, *World) {
	t.Helper()
	env := sim.NewEnv()
	w := NewWorld(env, 2, fabric.Params{Latency: 100}, Costs{Send: 10, Recv: 5, Poll: 1, LockHold: 1})
	if err := w.Fabric().SetFaults(plan, 99); err != nil {
		t.Fatal(err)
	}
	w.EnableReliable(rp)
	return env, w
}

func TestReliableExactlyOnceInOrder(t *testing.T) {
	plan := &fabric.FaultPlan{Link: fabric.LinkFaults{Drop: 0.3, Duplicate: 0.3, Jitter: 400}}
	env, w := lossyWorld(t, plan, ReliableParams{})
	const n = 300
	var got []int
	env.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			w.Rank(0).Send(p, 1, TagUser, 64, i)
		}
	})
	env.Spawn("receiver", func(p *sim.Proc) {
		for len(got) < n {
			m := w.Rank(1).RecvFrom(p, 0, TagUser)
			got = append(got, m.Payload.(int))
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d carried payload %d: order or dedup broken", i, v)
		}
	}
	st := w.TransportStats()
	if st.Retransmits == 0 {
		t.Fatalf("30%% drop over %d sends produced no retransmits: %+v", n, st)
	}
	if st.DupsSuppressed == 0 {
		t.Fatalf("30%% duplication produced no suppressed dups: %+v", st)
	}
	if st.AcksSent == 0 || st.AcksRecv == 0 {
		t.Fatalf("no acks flowed: %+v", st)
	}
	if st.Exhausted != 0 {
		t.Fatalf("unlimited retries must never exhaust: %+v", st)
	}
}

func TestReliableNoFaultsPassThrough(t *testing.T) {
	// Reliable transport over a perfect wire: no retransmits, no dups,
	// one ack per data frame.
	env, w := lossyWorld(t, &fabric.FaultPlan{}, ReliableParams{})
	var got []int
	env.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			w.Rank(0).Send(p, 1, TagUser, 8, i)
		}
	})
	env.Spawn("receiver", func(p *sim.Proc) {
		for len(got) < 50 {
			m := w.Rank(1).RecvFrom(p, 0, TagUser)
			got = append(got, m.Payload.(int))
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	st := w.TransportStats()
	if st.Retransmits != 0 || st.DupsSuppressed != 0 {
		t.Fatalf("perfect wire: %+v", st)
	}
	if st.AcksSent != 50 {
		t.Fatalf("AcksSent = %d, want 50", st.AcksSent)
	}
}

func TestReliableRetryExhaustion(t *testing.T) {
	// A link partitioned for 3ms with a finite retry budget: the first
	// frame's payload is abandoned (Exhausted), but its sequence slot is
	// tombstoned rather than leaked, so the link recovers — a frame sent
	// after the partition still reaches the receiver in order.
	plan := &fabric.FaultPlan{Windows: []fabric.Window{
		{Src: 0, Dst: 1, Every: 1 << 40, Open: 3_000_000, Drop: 1},
	}}
	env, w := lossyWorld(t, plan, ReliableParams{RetryLimit: 3})
	var got any
	env.Spawn("sender", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, TagUser, 8, "lost")
		p.Advance(4_000_000) // outlive the partition window
		w.Rank(0).Send(p, 1, TagUser, 8, "recovered")
	})
	env.Spawn("receiver", func(p *sim.Proc) {
		got = w.Rank(1).RecvFrom(p, 0, TagUser).Payload
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	st := w.TransportStats()
	if st.Exhausted != 1 {
		t.Fatalf("Exhausted = %d, want 1 (stats %+v)", st.Exhausted, st)
	}
	if st.Retransmits < 3 {
		t.Fatalf("Retransmits = %d, want >= 3 (budget plus tombstone resends)", st.Retransmits)
	}
	if got != "recovered" {
		t.Fatalf("first delivery = %v, want the post-partition frame (abandoned payload must be skipped)", got)
	}
}

func TestReliableCollectivesUnderLoss(t *testing.T) {
	env := sim.NewEnv()
	const n = 4
	w := NewWorld(env, n, fabric.Params{Latency: 100}, Costs{Send: 10, Recv: 5, Poll: 1, LockHold: 1})
	plan := &fabric.FaultPlan{Link: fabric.LinkFaults{Drop: 0.25, Duplicate: 0.2, Jitter: 300}}
	if err := w.Fabric().SetFaults(plan, 5); err != nil {
		t.Fatal(err)
	}
	w.EnableReliable(ReliableParams{})
	sums := make([]int64, n)
	mins := make([]float64, n)
	for i := 0; i < n; i++ {
		i := i
		env.Spawn("rank", func(p *sim.Proc) {
			r := w.Rank(i)
			r.Barrier(p)
			sums[i] = r.AllreduceSum(p, int64(i+1))
			mins[i] = r.AllreduceMin(p, float64(10-i))
			r.Barrier(p)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if sums[i] != 10 {
			t.Fatalf("rank %d sum = %d, want 10", i, sums[i])
		}
		if mins[i] != 7 {
			t.Fatalf("rank %d min = %v, want 7", i, mins[i])
		}
	}
}

func TestReliableDeterminism(t *testing.T) {
	run := func() (TransportStats, sim.Time) {
		plan := &fabric.FaultPlan{Link: fabric.LinkFaults{Drop: 0.3, Duplicate: 0.2, Jitter: 500}}
		env, w := lossyWorld(t, plan, ReliableParams{})
		done := 0
		env.Spawn("sender", func(p *sim.Proc) {
			for i := 0; i < 200; i++ {
				w.Rank(0).Send(p, 1, TagUser, 32, i)
			}
		})
		env.Spawn("receiver", func(p *sim.Proc) {
			for done < 200 {
				w.Rank(1).RecvFrom(p, 0, TagUser)
				done++
			}
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return w.TransportStats(), env.Now()
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%+v, %v) vs (%+v, %v)", s1, t1, s2, t2)
	}
}

func TestForEachBuffered(t *testing.T) {
	// Partition the link for 1ms so the sent frame sits unacked in the
	// send buffer at the moment of the scan.
	plan := &fabric.FaultPlan{Windows: []fabric.Window{
		{Src: 0, Dst: 1, Every: 1 << 40, Open: 1_000_000, Drop: 1},
	}}
	env, w := lossyWorld(t, plan, ReliableParams{})
	var seen []any
	env.Spawn("sender", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, TagUser, 8, "held")
		w.ForEachBuffered(func(payload any) { seen = append(seen, payload) })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != "held" {
		t.Fatalf("buffered payloads = %v, want [held]", seen)
	}
}

func TestAllreducePayloadDiagnostics(t *testing.T) {
	env := sim.NewEnv()
	w := NewWorld(env, 2, fabric.Params{Latency: 100}, Costs{Send: 10, Recv: 5, Poll: 1, LockHold: 1})
	var msg string
	env.Spawn("rank0", func(p *sim.Proc) {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		w.Rank(0).AllreduceSum(p, 1)
	})
	env.Spawn("rank1", func(p *sim.Proc) {
		// A misbehaving rank sends a float64 on the reduce tag.
		w.Rank(1).Send(p, 0, tagReduceArrive, 8, 3.14)
	})
	env.Run() // rank0 dies mid-collective; scheduler outcome irrelevant
	for _, want := range []string{"mpi: allreduce expected int64", "float64", "src 1", "tag 2"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q missing %q", msg, want)
		}
	}
}
