// Package repro's benchmark harness: one testing.B benchmark per figure
// of the paper's evaluation (Figures 3-12), plus the text tables and
// substrate microbenchmarks. Each benchmark iteration executes a complete
// scaled-down simulation run of that figure's decisive configuration and
// reports two custom metrics:
//
//	virt-ev/s   committed events per *virtual* second (the paper's metric)
//	efficiency  committed / processed
//
// The benchmarks are sized for iteration speed, not figure-quality data;
// use `go run ./cmd/experiments` to regenerate the figures at full scale.
package repro

import (
	"io"
	"math"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/phold"
	"repro/internal/seq"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// benchTopology is the scaled-down cluster used by the figure benchmarks.
func benchTopology(nodes int) cluster.Topology {
	return cluster.Topology{Nodes: nodes, WorkersPerNode: 4, LPsPerWorker: 16}
}

// benchRun executes one full simulation and reports the paper's metrics.
func benchRun(b *testing.B, nodes int, gvt core.GVTKind, comm core.CommMode,
	base phold.Phase, mixed *phold.MixedModel, interval int) {
	b.Helper()
	top := benchTopology(nodes)
	if nodes == 1 {
		base.RemotePct = 0
		if mixed != nil {
			mixed.Comm.RemotePct = 0
		}
	}
	end := vtime.Time(15)
	if mixed != nil {
		mixed.EndTime = end
	}
	cfg := core.Config{
		Topology:    top,
		GVT:         gvt,
		GVTInterval: interval,
		Comm:        comm,
		EndTime:     end,
		Seed:        1,
		Model:       phold.New(phold.Params{Topology: top, Base: base, Mixed: mixed}),
	}
	var rate, eff float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.New(cfg).Run()
		if err != nil {
			b.Fatal(err)
		}
		rate = r.EventRate()
		eff = r.Efficiency()
	}
	b.ReportMetric(rate, "virt-ev/s")
	b.ReportMetric(eff, "efficiency")
}

func comp() phold.Phase { return phold.ComputationDominated() }
func comm() phold.Phase { return phold.CommunicationDominated() }

func mixed(x, y float64) *phold.MixedModel {
	return &phold.MixedModel{Comm: phold.CommunicationDominated(), CompFrac: x, CommFrac: y}
}

// --- Figure 3: dedicated vs combined MPI thread, computation-dominated ---

func BenchmarkFig3DedicatedMPIComp(b *testing.B) {
	b.Run("mattern/dedicated", func(b *testing.B) {
		benchRun(b, 4, core.GVTMattern, core.CommDedicated, comp(), nil, 8)
	})
	b.Run("mattern/combined", func(b *testing.B) {
		benchRun(b, 4, core.GVTMattern, core.CommCombined, comp(), nil, 8)
	})
	b.Run("barrier/dedicated", func(b *testing.B) {
		benchRun(b, 4, core.GVTBarrier, core.CommDedicated, comp(), nil, 8)
	})
	b.Run("barrier/combined", func(b *testing.B) {
		benchRun(b, 4, core.GVTBarrier, core.CommCombined, comp(), nil, 8)
	})
}

// --- Figure 4: dedicated vs combined MPI thread, communication-dominated ---

func BenchmarkFig4DedicatedMPIComm(b *testing.B) {
	b.Run("mattern/dedicated", func(b *testing.B) {
		benchRun(b, 4, core.GVTMattern, core.CommDedicated, comm(), nil, 8)
	})
	b.Run("mattern/combined", func(b *testing.B) {
		benchRun(b, 4, core.GVTMattern, core.CommCombined, comm(), nil, 8)
	})
	b.Run("barrier/dedicated", func(b *testing.B) {
		benchRun(b, 4, core.GVTBarrier, core.CommDedicated, comm(), nil, 8)
	})
	b.Run("barrier/combined", func(b *testing.B) {
		benchRun(b, 4, core.GVTBarrier, core.CommCombined, comm(), nil, 8)
	})
}

// --- Figure 5: Mattern vs Barrier, computation-dominated ---

func BenchmarkFig5MatternVsBarrierComp(b *testing.B) {
	b.Run("mattern", func(b *testing.B) {
		benchRun(b, 4, core.GVTMattern, core.CommDedicated, comp(), nil, 4)
	})
	b.Run("barrier", func(b *testing.B) {
		benchRun(b, 4, core.GVTBarrier, core.CommDedicated, comp(), nil, 4)
	})
}

// --- Figure 6: Mattern vs Barrier, communication-dominated ---

func BenchmarkFig6MatternVsBarrierComm(b *testing.B) {
	b.Run("mattern", func(b *testing.B) {
		benchRun(b, 4, core.GVTMattern, core.CommDedicated, comm(), nil, 4)
	})
	b.Run("barrier", func(b *testing.B) {
		benchRun(b, 4, core.GVTBarrier, core.CommDedicated, comm(), nil, 4)
	})
}

// --- Figure 8: three-way, computation-dominated ---

func BenchmarkFig8ThreeWayComp(b *testing.B) {
	for _, g := range []core.GVTKind{core.GVTMattern, core.GVTBarrier, core.GVTControlled} {
		g := g
		b.Run(g.String(), func(b *testing.B) {
			benchRun(b, 4, g, core.CommDedicated, comp(), nil, 4)
		})
	}
}

// --- Figure 9: three-way, communication-dominated ---

func BenchmarkFig9ThreeWayComm(b *testing.B) {
	for _, g := range []core.GVTKind{core.GVTMattern, core.GVTBarrier, core.GVTControlled} {
		g := g
		b.Run(g.String(), func(b *testing.B) {
			benchRun(b, 4, g, core.CommDedicated, comm(), nil, 4)
		})
	}
}

// --- Figures 10-12: mixed models ---

func benchMixed(b *testing.B, x, y float64) {
	for _, g := range []core.GVTKind{core.GVTMattern, core.GVTBarrier, core.GVTControlled} {
		g := g
		b.Run(g.String(), func(b *testing.B) {
			benchRun(b, 4, g, core.CommDedicated, comp(), mixed(x, y), 4)
		})
	}
}

func BenchmarkFig10Mixed1015(b *testing.B) { benchMixed(b, 10, 15) }
func BenchmarkFig11Mixed1510(b *testing.B) { benchMixed(b, 15, 10) }
func BenchmarkFig12Mixed55(b *testing.B)   { benchMixed(b, 5, 5) }

// --- Text tables: the single-node baseline and the sequential engine ---

func BenchmarkSequentialBaseline(b *testing.B) {
	top := benchTopology(1)
	base := comp()
	base.RemotePct = 0
	factory := phold.New(phold.Params{Topology: top, Base: base})
	b.ReportAllocs()
	var processed int64
	for i := 0; i < b.N; i++ {
		r := seq.New(factory, top.TotalLPs(), 15, 1).Run()
		processed = r.Processed
	}
	b.ReportMetric(float64(processed), "events")
}

// --- Ablations ---

func BenchmarkAblationSharedMPI(b *testing.B) {
	for _, m := range []core.CommMode{core.CommDedicated, core.CommCombined, core.CommShared} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			benchRun(b, 4, core.GVTMattern, m, comm(), nil, 8)
		})
	}
}

func BenchmarkAblationQueueKind(b *testing.B) {
	for _, kind := range []string{"heap", "calendar"} {
		kind := kind
		b.Run(kind, func(b *testing.B) {
			top := benchTopology(2)
			cfg := core.Config{
				Topology: top, GVT: core.GVTMattern, GVTInterval: 4,
				Comm: core.CommDedicated, EndTime: 15, Seed: 1, QueueKind: kind,
				Model: phold.New(phold.Params{Topology: top, Base: comp()}),
			}
			for i := 0; i < b.N; i++ {
				if _, err := core.New(cfg).Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationGVTInterval(b *testing.B) {
	for _, iv := range []int{2, 4, 8, 16} {
		iv := iv
		b.Run(core.GVTMattern.String()+"-"+itoa(iv), func(b *testing.B) {
			benchRun(b, 2, core.GVTMattern, core.CommDedicated, comm(), nil, iv)
		})
	}
}

// --- Telemetry overhead: sampler/trace on vs off ---

// telemetryRun executes one CA-GVT mixed run with the given telemetry
// attachments and returns its result.
func telemetryRun(b *testing.B, rec *metrics.Recorder, tw *trace.Writer) *stats.Run {
	b.Helper()
	top := benchTopology(2)
	m := mixed(10, 15)
	m.EndTime = 15
	cfg := core.Config{
		Topology:    top,
		GVT:         core.GVTControlled,
		GVTInterval: 4,
		Comm:        core.CommDedicated,
		EndTime:     15,
		Seed:        1,
		Metrics:     rec,
		Trace:       tw,
		Model:       phold.New(phold.Params{Topology: top, Base: comp(), Mixed: m}),
	}
	r, err := core.New(cfg).Run()
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTelemetry compares the committed-event rate with the sampler
// and trace off, sampler on, and sampler+trace on. Telemetry records
// outside simulated cost, so the virtual-time rate must stay within the
// 5% acceptance bound — the "overhead-pct" metric reports the measured
// drift against the bare run, and the benchmark fails if it reaches 5%.
func BenchmarkTelemetry(b *testing.B) {
	baseline := telemetryRun(b, nil, nil).EventRate()
	if baseline <= 0 {
		b.Fatal("bare run has no event rate")
	}
	check := func(b *testing.B, r *stats.Run) {
		rate := r.EventRate()
		drift := math.Abs(rate-baseline) / baseline
		if drift >= 0.05 {
			b.Fatalf("telemetry overhead %.2f%% >= 5%% (rate %.4g vs bare %.4g)",
				100*drift, rate, baseline)
		}
		b.ReportMetric(rate, "virt-ev/s")
		b.ReportMetric(100*drift, "overhead-pct")
	}
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		var r *stats.Run
		for i := 0; i < b.N; i++ {
			r = telemetryRun(b, nil, nil)
		}
		check(b, r)
	})
	b.Run("sampler", func(b *testing.B) {
		b.ReportAllocs()
		var r *stats.Run
		for i := 0; i < b.N; i++ {
			r = telemetryRun(b, metrics.NewRecorder(), nil)
		}
		check(b, r)
	})
	b.Run("sampler+trace", func(b *testing.B) {
		b.ReportAllocs()
		var r *stats.Run
		for i := 0; i < b.N; i++ {
			r = telemetryRun(b, metrics.NewRecorder(), trace.NewWriter(io.Discard))
		}
		check(b, r)
	})
	// progress+bridge reproduces the simd daemon's live-metrics path: a
	// per-round OnProgress hook that folds deltas into an atomic
	// Prometheus-style registry and appends to a mutex-guarded stream
	// history (what Job.publish does). The <5% bound gates the
	// observability bridge the same way it gates the sampler.
	b.Run("progress+bridge", func(b *testing.B) {
		b.ReportAllocs()
		var r *stats.Run
		for i := 0; i < b.N; i++ {
			reg := obs.NewRegistry()
			rounds := reg.Counter("simd_engine_gvt_rounds_total", "")
			processed := reg.Counter("simd_engine_events_processed_total", "")
			committed := reg.Counter("simd_engine_events_committed_total", "")
			rollbacks := reg.Counter("simd_engine_rollbacks_total", "")
			advance := reg.Histogram("simd_engine_gvt_advance", "", obs.ExpBuckets(0.0625, 2, 12))
			var mu sync.Mutex
			var history []metrics.ProgressUpdate
			var prev metrics.ProgressUpdate
			rec := metrics.NewRecorder()
			clamp := func(v int64) int64 {
				if v < 0 {
					return 0
				}
				return v
			}
			rec.OnProgress = func(u metrics.ProgressUpdate) {
				rounds.Inc()
				processed.Add(clamp(u.Processed - prev.Processed))
				committed.Add(clamp(u.Committed - prev.Committed))
				rollbacks.Add(clamp(u.Rollbacks - prev.Rollbacks))
				if d := u.GVT - prev.GVT; d >= 0 {
					advance.Observe(d)
				}
				prev = u
				mu.Lock()
				history = append(history, u)
				mu.Unlock()
			}
			r = telemetryRun(b, rec, nil)
			if len(history) == 0 || rounds.Value() == 0 {
				b.Fatal("progress bridge never fired")
			}
		}
		check(b, r)
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func BenchmarkAblationCheckpointInterval(b *testing.B) {
	for _, k := range []int{1, 4, 16} {
		k := k
		b.Run("k="+itoa(k), func(b *testing.B) {
			top := benchTopology(2)
			cfg := core.Config{
				Topology: top, GVT: core.GVTMattern, GVTInterval: 4,
				Comm: core.CommDedicated, EndTime: 15, Seed: 1,
				CheckpointInterval: k,
				Model:              phold.New(phold.Params{Topology: top, Base: comm()}),
			}
			var rate float64
			for i := 0; i < b.N; i++ {
				r, err := core.New(cfg).Run()
				if err != nil {
					b.Fatal(err)
				}
				rate = r.EventRate()
			}
			b.ReportMetric(rate, "virt-ev/s")
		})
	}
}

func BenchmarkAblationSamadiGVT(b *testing.B) {
	for _, g := range []core.GVTKind{core.GVTMattern, core.GVTSamadi} {
		g := g
		b.Run(g.String(), func(b *testing.B) {
			benchRun(b, 2, g, core.CommDedicated, comm(), nil, 4)
		})
	}
}
