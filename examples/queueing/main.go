// Queueing: an open tandem queueing network (internal/models/tandem) —
// jobs arrive at stage 0, pass through a pipeline of single-server FIFO
// queues laid out across workers and nodes, and leave at the last stage.
//
// Run with: go run ./examples/queueing
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/models/tandem"
	"repro/internal/seq"
)

func main() {
	// 32 stages over 2 nodes x 4 workers: the pipeline repeatedly crosses
	// worker and node boundaries, exercising regional and remote messaging.
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 4, LPsPerWorker: 4}
	stages := top.TotalLPs()
	params := tandem.Params{}
	params.Defaults()
	factory := tandem.New(params)
	cfg := core.Config{
		Topology:    top,
		GVT:         core.GVTControlled,
		GVTInterval: 25,
		Comm:        core.CommDedicated,
		EndTime:     400,
		Seed:        99,
		Model:       factory,
	}

	r, err := core.New(cfg).Run()
	if err != nil {
		log.Fatal(err)
	}

	oracle := seq.New(factory, stages, cfg.EndTime, cfg.Seed)
	ref := oracle.Run()
	if ref.Checksum != r.CommitChecksum {
		log.Fatal("oracle check FAILED")
	}

	fmt.Printf("tandem network: %d stages, %g time units, rho=%.2f\n",
		stages, float64(cfg.EndTime), params.ServiceMean/params.Interarrival)
	fmt.Println("stage  served  utilization")
	for i := 0; i < stages; i++ {
		st := oracle.Model(i).(*tandem.Model).State()
		fmt.Printf("%5d  %6d  %10.1f%%\n", i, st.Served, 100*st.Utilization(float64(cfg.EndTime)))
	}
	fmt.Printf("\nengine: %d committed events, efficiency %.1f%%, %d rollbacks (oracle check OK)\n",
		r.Workers.Committed, 100*r.Efficiency(), r.Workers.Rollbacks)
}
