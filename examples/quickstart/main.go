// Quickstart: implement a custom model (a ring of LPs passing tokens),
// run it on the simulated cluster under Time Warp with CA-GVT, and verify
// the optimistic execution against the sequential oracle.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/seq"
)

// ringModel is one LP in a token ring: on receiving a token it spins a
// little, increments its hop counter and forwards the token to the next
// LP after a random delay.
type ringModel struct {
	self event.LPID
	hops int64 // rollback-protected state
}

func (m *ringModel) Init(ctx core.Context) {
	// Every fourth LP injects a token at a random start time.
	if int(m.self)%4 == 0 {
		ctx.Send(m.self, 0.5+ctx.RNG().Exp(1.0), 0, nil)
	}
}

func (m *ringModel) OnEvent(ctx core.Context, ev *event.Event) {
	ctx.Spin(2000) // ~2K FLOPs of "work" per hop
	m.hops++
	next := event.LPID((int(m.self) + 1) % ctx.NumLPs())
	ctx.Send(next, 0.2+ctx.RNG().Exp(0.8), 0, nil)
}

// Snapshot/Restore make the state rollback-safe: the engine snapshots
// before every event and restores on rollback.
func (m *ringModel) Snapshot() any { return m.hops }
func (m *ringModel) Restore(s any) { m.hops = s.(int64) }

func main() {
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 4, LPsPerWorker: 8}
	cfg := core.Config{
		Topology:    top,
		GVT:         core.GVTControlled, // CA-GVT: adapts sync/async per round
		GVTInterval: 25,
		Comm:        core.CommDedicated, // one MPI thread per node
		EndTime:     50,
		Seed:        2024,
		Model: func(lp event.LPID, total int) core.Model {
			return &ringModel{self: lp}
		},
	}

	r, err := core.New(cfg).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Time Warp run on the simulated cluster:")
	fmt.Println(r)

	// The committed event stream must be identical to a sequential run.
	ref := seq.New(cfg.Model, top.TotalLPs(), cfg.EndTime, cfg.Seed).Run()
	fmt.Printf("\nsequential oracle: %d events\n", ref.Processed)
	if ref.Checksum == r.CommitChecksum {
		fmt.Println("oracle check: OK — optimistic execution matched sequential execution exactly")
	} else {
		log.Fatal("oracle check FAILED")
	}
}
