// PCS: the classic Personal Communication Services benchmark
// (internal/models/pcs) — cellular towers, Poisson call arrivals,
// exponential durations, in-progress handoffs — run under CA-GVT and
// verified against the sequential oracle.
//
// Run with: go run ./examples/pcs
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/models/pcs"
	"repro/internal/seq"
)

func main() {
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 4, LPsPerWorker: 16}
	params := pcs.Params{GridW: 16, GridH: 8}
	params.Defaults()
	factory := pcs.New(params)
	cfg := core.Config{
		Topology:    top,
		GVT:         core.GVTControlled,
		GVTInterval: 25,
		Comm:        core.CommDedicated,
		EndTime:     120,
		Seed:        31,
		Model:       factory,
	}

	r, err := core.New(cfg).Run()
	if err != nil {
		log.Fatal(err)
	}
	oracle := seq.New(factory, top.TotalLPs(), cfg.EndTime, cfg.Seed)
	ref := oracle.Run()
	if ref.Checksum != r.CommitChecksum {
		log.Fatal("oracle check FAILED")
	}

	var tot pcs.TowerState
	var worstBlocked int64
	for i := 0; i < top.TotalLPs(); i++ {
		st := oracle.Model(i).(*pcs.Model).State()
		tot.Completed += st.Completed
		tot.Blocked += st.Blocked
		tot.Dropped += st.Dropped
		if st.Blocked > worstBlocked {
			worstBlocked = st.Blocked
		}
	}
	attempted := tot.Completed + tot.Blocked + tot.Dropped
	fmt.Printf("PCS: %d towers x %d channels over %g time units\n",
		top.TotalLPs(), params.Channels, float64(cfg.EndTime))
	fmt.Printf("  calls completed %d, blocked %d (%.2f%%), handoff-dropped %d (%.2f%%)\n",
		tot.Completed, tot.Blocked, 100*float64(tot.Blocked)/float64(attempted),
		tot.Dropped, 100*float64(tot.Dropped)/float64(attempted))
	fmt.Printf("  busiest tower: %d blocked calls\n", worstBlocked)
	fmt.Printf("\nengine: %d committed events, efficiency %.1f%%, %d rollbacks (oracle check OK)\n",
		r.Workers.Committed, 100*r.Efficiency(), r.Workers.Rollbacks)
}
