// Epidemic: a stochastic SIR (susceptible/infected/recovered) epidemic
// over a grid of regions (internal/models/epidemic), run optimistically on
// the simulated cluster and verified against the sequential oracle.
//
// Run with: go run ./examples/epidemic
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/models/epidemic"
	"repro/internal/seq"
)

func main() {
	top := cluster.Topology{Nodes: 2, WorkersPerNode: 4, LPsPerWorker: 16}
	factory := epidemic.New(epidemic.Params{GridW: 16, GridH: 8})
	cfg := core.Config{
		Topology:    top,
		GVT:         core.GVTMattern,
		GVTInterval: 25,
		Comm:        core.CommDedicated,
		EndTime:     60, // 60 simulated days
		Seed:        7,
		Model:       factory,
	}

	r, err := core.New(cfg).Run()
	if err != nil {
		log.Fatal(err)
	}

	// Read the final epidemic state from the oracle (same committed
	// stream, verified below) so the curve can be printed.
	oracle := seq.New(factory, top.TotalLPs(), cfg.EndTime, cfg.Seed)
	ref := oracle.Run()

	var tot epidemic.Region
	for i := 0; i < top.TotalLPs(); i++ {
		st := oracle.Model(i).(*epidemic.Model).State()
		tot.S += st.S
		tot.I += st.I
		tot.R += st.R
	}
	fmt.Printf("epidemic after %g days over %d regions:\n", float64(cfg.EndTime), top.TotalLPs())
	fmt.Printf("  susceptible %d, infected %d, recovered %d\n", tot.S, tot.I, tot.R)
	fmt.Printf("\nengine: %d committed events, efficiency %.1f%%, %d rollbacks, rate %.3g ev/s\n",
		r.Workers.Committed, 100*r.Efficiency(), r.Workers.Rollbacks, r.EventRate())

	if ref.Checksum != r.CommitChecksum {
		log.Fatal("oracle check FAILED")
	}
	fmt.Println("oracle check: OK")
}
