// Adaptive: watch CA-GVT switch between asynchronous and synchronous
// operation as a mixed workload alternates between computation-dominated
// and communication-dominated phases (the paper's §6 behaviour: it
// "detects the lower efficiency ... switches to the synchronous mode",
// then switches back when efficiency recovers).
//
// The example runs the paper's 10-15 mixed model under all three GVT
// algorithms, prints CA-GVT's per-round mode trace, and compares rates.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/phold"
	"repro/internal/vtime"
)

func main() {
	top := cluster.Topology{Nodes: 4, WorkersPerNode: 8, LPsPerWorker: 32}
	end := vtime.Time(60)
	model := phold.New(phold.Params{
		Topology: top,
		Base:     phold.ComputationDominated(),
		Mixed: &phold.MixedModel{
			Comm:     phold.CommunicationDominated(),
			CompFrac: 10, CommFrac: 15, EndTime: end,
		},
	})

	base := core.Config{
		Topology:    top,
		GVTInterval: 25,
		CAThreshold: 0.80,
		Comm:        core.CommDedicated,
		EndTime:     end,
		Seed:        5,
		Model:       model,
	}

	fmt.Println("mixed 10-15 PHOLD model,", top.Nodes, "nodes: committed event rate by algorithm")
	rates := map[core.GVTKind]float64{}
	for _, g := range []core.GVTKind{core.GVTMattern, core.GVTBarrier, core.GVTControlled} {
		cfg := base
		cfg.GVT = g
		eng := core.New(cfg)
		eng.TraceRounds = g == core.GVTControlled
		r, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		rates[g] = r.EventRate()
		fmt.Printf("  %-8v rate=%.4g ev/s efficiency=%.1f%% rollbacks=%d sync-rounds=%d/%d\n",
			g, r.EventRate(), 100*r.Efficiency(), r.Workers.Rollbacks, r.SyncRounds, r.GVTRounds)

		if g == core.GVTControlled {
			fmt.Println("\n  CA-GVT mode trace (async '.' / sync 'S' per GVT round):")
			line := "  "
			for _, tr := range eng.RoundTraces() {
				if tr.Sync {
					line += "S"
				} else {
					line += "."
				}
				if len(line) >= 66 {
					fmt.Println(line)
					line = "  "
				}
			}
			if len(line) > 2 {
				fmt.Println(line)
			}
			fmt.Println()
		}
	}

	fmt.Printf("CA-GVT vs Mattern: %+.1f%%   CA-GVT vs Barrier: %+.1f%%\n",
		100*(rates[core.GVTControlled]/rates[core.GVTMattern]-1),
		100*(rates[core.GVTControlled]/rates[core.GVTBarrier]-1))
	fmt.Println("(the paper reports CA-GVT ahead of both on mixed models, by ~7-8%)")
}
