// Command simtop is a terminal monitor for a running simd daemon: it
// polls /metrics, /stats and /jobs and renders a refreshing one-screen
// view — queue pressure, worker utilization, cache effectiveness, live
// engine rates (committed events/sec, rollbacks/sec, GVT rounds/sec)
// and per-job GVT progress — the way top does for processes.
//
// Examples:
//
//	simtop                                  # watch http://127.0.0.1:8080 at 1s
//	simtop -addr http://10.0.0.7:8080 -interval 2s
//	simtop -once                            # render a single frame and exit
//	                                        # (scriptable: used by the obs smoke test)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/simd"
	"repro/internal/simdclient"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "simd base URL")
		interval = flag.Duration("interval", time.Second, "poll/refresh interval")
		once     = flag.Bool("once", false, "render one frame without clearing the screen and exit")
		rows     = flag.Int("jobs", 12, "job rows to show (most recent first)")
	)
	flag.Parse()
	if err := run(*addr, *interval, *once, *rows); err != nil {
		fmt.Fprintln(os.Stderr, "simtop:", err)
		os.Exit(1)
	}
}

// clusterStats is the slice of a simdcluster /stats document beyond the
// plain daemon shape: per-node attribution. Against a single daemon it
// decodes empty and the cluster line is simply not rendered.
type clusterStats struct {
	simd.Stats
	Nodes []struct {
		ID    string `json:"node_id"`
		State string `json:"state"`
	} `json:"nodes"`
}

// frame is one poll of the daemon (or cluster router).
type frame struct {
	at      time.Time
	stats   clusterStats
	jobs    []simd.JobStatus
	metrics *obs.Snapshot
	// health is /healthz's status: "ok", "degraded" (persistent store
	// bypassed, results memory-only), or "" when the probe failed.
	health string
	// healthErr is the health probe's failure, when it had one. A
	// *simdclient.StatusError here means the daemon is up but its
	// health endpoint is answering 5xx — a different banner from
	// "degraded", and from nothing listening at all.
	healthErr error
}

// poll fetches one frame from the daemon.
func poll(c *simdclient.Client) (*frame, error) {
	f := &frame{at: time.Now()}
	if err := c.GetJSON("/stats", &f.stats); err != nil {
		return nil, err
	}
	if hz, err := c.Health(); err == nil {
		f.health = hz.Status // best-effort: an old daemon without the field still renders
	} else {
		f.healthErr = err
	}
	var list struct {
		Jobs []simd.JobStatus `json:"jobs"`
	}
	if err := c.GetJSON("/jobs", &list); err != nil {
		return nil, err
	}
	f.jobs = list.Jobs
	var err error
	f.metrics, err = c.Metrics()
	return f, err
}

// backoffCap bounds the retry delay between failed polls.
const backoffCap = 5 * time.Second

// pollRetry polls with capped exponential backoff, so a daemon that is
// still starting — or mid-restart — doesn't kill the monitor on the
// first refused connection.
func pollRetry(c *simdclient.Client, attempts int) (*frame, error) {
	var f *frame
	err := simdclient.Retry(attempts, 250*time.Millisecond, backoffCap,
		func() error {
			var e error
			f, e = poll(c)
			return e
		},
		func(attempt int, err error, delay time.Duration) {
			fmt.Fprintf(os.Stderr, "simtop: poll failed (attempt %d/%d): %s; retrying in %s\n",
				attempt, attempts, describeErr(err), delay)
		})
	return f, err
}

// describeErr turns a poll failure into an operator-facing diagnosis:
// "nothing is listening" and "the daemon answered 500" demand different
// reactions, and the typed simdclient errors let us tell them apart.
func describeErr(err error) string {
	var se *simdclient.StatusError
	switch {
	case errors.As(err, &se):
		return fmt.Sprintf("daemon answered HTTP %d on %s", se.Code, se.Path)
	case simdclient.IsUnreachable(err):
		return fmt.Sprintf("daemon unreachable (down or restarting?): %v", err)
	}
	return err.Error()
}

func run(base string, interval time.Duration, once bool, rows int) error {
	client := simdclient.New(base)

	cur, err := pollRetry(client, 6)
	if err != nil {
		return err
	}
	if once {
		fmt.Print(render(base, nil, cur, rows))
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	fmt.Print("\x1b[2J") // clear once; frames then repaint from home
	var prev *frame
	delay, failures := interval, 0
	for {
		fmt.Print("\x1b[H" + render(base, prev, cur, rows) + "\x1b[0J")
		select {
		case <-sig:
			fmt.Println()
			return nil
		case <-time.After(delay):
		}
		next, err := poll(client)
		if err != nil {
			// Keep the last frame on screen, report the blip, and back off
			// — the daemon may be restarting; hammering it helps nobody.
			failures++
			delay = interval << uint(failures-1)
			if delay > backoffCap || delay < interval {
				delay = backoffCap
			}
			fmt.Printf("\x1b[Hsimtop: poll failed: %s (retry %d in %s)\x1b[0K\n", describeErr(err), failures, delay)
			continue
		}
		prev, cur = cur, next
		delay, failures = interval, 0
	}
}

// rate computes a per-second delta of a counter between frames.
func rate(prev, cur *frame, name string) float64 {
	if prev == nil {
		return 0
	}
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return 0
	}
	a, _ := prev.metrics.Get(name)
	b, _ := cur.metrics.Get(name)
	if b < a {
		return 0 // daemon restarted; counters reset
	}
	return (b - a) / dt
}

// render builds one full frame as a string.
func render(base string, prev, cur *frame, rows int) string {
	var b strings.Builder
	st := cur.stats

	buildLabel := "unknown"
	for _, s := range cur.metrics.Samples {
		if s.Name == "simd_build_info" {
			buildLabel = s.Labels["revision"] + " (" + s.Labels["go_version"] + ")"
			break
		}
	}
	fmt.Fprintf(&b, "simtop — %s   up %s   build %s\x1b[0K\n",
		base, fmtDur(time.Duration(st.UptimeSeconds*float64(time.Second))), buildLabel)
	var se *simdclient.StatusError
	switch {
	case cur.health == "degraded":
		// Reverse video: the one condition an operator must not miss.
		b.WriteString("\x1b[7m DEGRADED — persistent store bypassed; results are memory-only \x1b[0m\x1b[0K\n")
	case errors.As(cur.healthErr, &se):
		// /stats answered but /healthz didn't: the daemon is up and
		// actively failing its own health check — worse than degraded.
		fmt.Fprintf(&b, "\x1b[7m UNHEALTHY — /healthz answered HTTP %d \x1b[0m\x1b[0K\n", se.Code)
	case cur.healthErr != nil && simdclient.IsUnreachable(cur.healthErr):
		b.WriteString("\x1b[7m UNHEALTHY — /healthz probe got no answer \x1b[0m\x1b[0K\n")
	}
	if len(st.Nodes) > 0 {
		// Watching a cluster router: show member attribution.
		up := 0
		parts := make([]string, 0, len(st.Nodes))
		for _, n := range st.Nodes {
			if n.State == "up" {
				up++
			}
			parts = append(parts, fmt.Sprintf("%s:%s", n.ID, n.State))
		}
		fmt.Fprintf(&b, "cluster  %d/%d nodes up   %s\x1b[0K\n", up, len(st.Nodes), strings.Join(parts, "  "))
	}
	b.WriteString("\x1b[0K\n")

	by := st.ByState
	fmt.Fprintf(&b, "jobs     queued %-4d running %-4d done %-5d failed %-4d cancelled %-4d\x1b[0K\n",
		by["queued"], by["running"], by["done"], by["failed"], by["cancelled"])
	fmt.Fprintf(&b, "queue    %s %d/%d   workers %d/%d busy   rejected(429) %d\x1b[0K\n",
		bar(st.QueueLen, st.QueueCap, 20), st.QueueLen, st.QueueCap,
		st.WorkersBusy, st.Workers, st.Rejected)

	c := st.Cache
	ratio := 0.0
	if c.Hits+c.Misses > 0 {
		ratio = 100 * float64(c.Hits) / float64(c.Hits+c.Misses)
	}
	fmt.Fprintf(&b, "cache    hits %d  misses %d  ratio %.1f%%   %s / %s   evictions %d   dedup %d\x1b[0K\n",
		c.Hits, c.Misses, ratio, fmtBytes(c.Bytes), fmtBytes(c.Budget), c.Evictions, st.DedupHits)

	if sc := st.Store; sc != nil {
		mode := "ok"
		if sc.Degraded {
			mode = "DEGRADED"
		}
		fmt.Fprintf(&b, "store    %s   hits %d  misses %d  puts %d   %s / %s   quarantined %d  evictions %d\x1b[0K\n",
			mode, sc.Hits, sc.Misses, sc.Puts, fmtBytes(sc.Bytes), fmtBytes(sc.MaxBytes),
			sc.Quarantined, sc.Evictions)
	}

	fmt.Fprintf(&b, "engine   %s rounds/s   %s committed ev/s   %s processed ev/s   %s rollbacks/s\x1b[0K\n\n",
		fmtRate(rate(prev, cur, "simd_engine_gvt_rounds_total")),
		fmtRate(rate(prev, cur, "simd_engine_events_committed_total")),
		fmtRate(rate(prev, cur, "simd_engine_events_processed_total")),
		fmtRate(rate(prev, cur, "simd_engine_rollbacks_total")))

	fmt.Fprintf(&b, "%-8s %-10s %8s %12s %8s %10s\x1b[0K\n",
		"JOB", "STATE", "ROUNDS", "GVT", "EFF", "ELAPSED")
	jobs := append([]simd.JobStatus(nil), cur.jobs...)
	// Most recent first; running jobs are naturally near the top since
	// IDs are sequential.
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID > jobs[j].ID })
	if len(jobs) > rows {
		jobs = jobs[:rows]
	}
	for _, j := range jobs {
		fmt.Fprintf(&b, "%-8s %-10s %8d %12.2f %8.2f %10s\x1b[0K\n",
			j.ID, string(j.State), j.Rounds, j.GVT, j.Efficiency, elapsed(j, cur.at))
	}
	if len(jobs) == 0 {
		b.WriteString("(no jobs yet — POST a JobSpec to /jobs)\x1b[0K\n")
	}
	return b.String()
}

// elapsed is the job's wall-clock age in its current phase: run time for
// started jobs (frozen at finish), queue age otherwise.
func elapsed(j simd.JobStatus, now time.Time) string {
	switch {
	case j.StartedAt != nil && j.FinishedAt != nil:
		return fmtDur(j.FinishedAt.Sub(*j.StartedAt))
	case j.StartedAt != nil:
		return fmtDur(now.Sub(*j.StartedAt))
	case j.FinishedAt != nil: // born done (cache hit) or cancelled while queued
		return fmtDur(0)
	}
	return fmtDur(now.Sub(j.SubmittedAt))
}

// bar renders a [####....] utilization bar.
func bar(n, max, width int) string {
	if max <= 0 {
		max = 1
	}
	fill := n * width / max
	if fill > width {
		fill = width
	}
	return "[" + strings.Repeat("#", fill) + strings.Repeat(".", width-fill) + "]"
}

func fmtDur(d time.Duration) string {
	d = d.Round(time.Second)
	if d >= time.Hour {
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
	if d >= time.Minute {
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	}
	return fmt.Sprintf("%ds", int(d.Seconds()))
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return fmt.Sprintf("%.1f", v)
}
